package apq

import (
	"strings"
	"testing"
)

func smallTPCH(t *testing.T) *DB {
	t.Helper()
	return LoadTPCH(0.25, 7)
}

func TestQuickstartFlow(t *testing.T) {
	db := smallTPCH(t)
	eng := NewEngine(db, TwoSocketMachine())
	q := TPCHQuery(6)
	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := res.Scalar(0)
	if err != nil {
		t.Fatal(err)
	}
	if sum <= 0 {
		t.Fatalf("Q6 sum = %d", sum)
	}
	if res.MakespanNs() <= 0 {
		t.Fatal("no makespan")
	}
	if u := res.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %f", u)
	}
}

func TestCustomTables(t *testing.T) {
	db := NewDB()
	err := db.AddTable("metrics").
		Int64("value", []int64{10, 20, 30}).
		String("label", []string{"a", "b", "a"}).
		Done()
	if err != nil {
		t.Fatal(err)
	}
	if db.Catalog().MustTable("metrics").Rows() != 3 {
		t.Fatal("rows wrong")
	}
	// Length mismatch surfaces as an error at Done.
	err = db.AddTable("bad").
		Int64("a", []int64{1, 2}).
		Int64("b", []int64{1}).
		Done()
	if err == nil {
		t.Fatal("mismatched columns accepted")
	}
}

func TestAdaptiveSessionConverges(t *testing.T) {
	db := LoadTPCH(2, 3)
	eng := NewEngine(db, TwoSocketMachine())
	sess := eng.NewAdaptiveSession(TPCHQuery(6),
		WithConvergenceConfig(DefaultConvergenceConfig(8)),
		WithResultVerification())
	rep, err := sess.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup() < 1.5 {
		t.Fatalf("speedup = %.2f", rep.Speedup())
	}
	if !sess.Done() {
		t.Fatal("session not done after Converge")
	}
	if sess.BestQuery().MaxDOP() < 2 {
		t.Fatal("best plan not parallel")
	}
	if len(sess.Attempts()) != rep.TotalRuns {
		t.Fatal("attempts mismatch")
	}
}

func TestHeuristicWorkStealVectorwisePlans(t *testing.T) {
	db := smallTPCH(t)
	eng := NewEngine(db, TwoSocketMachine())
	q := TPCHQuery(14)
	serialRes, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}

	hp, err := eng.HeuristicPlan(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hp.MaxDOP() != 32 {
		t.Fatalf("HP DOP = %d, want machine cores", hp.MaxDOP())
	}
	hpRes, err := eng.Execute(hp)
	if err != nil {
		t.Fatal(err)
	}
	if !ResultsEqual(serialRes, hpRes) {
		t.Fatal("HP diverges")
	}

	ws, err := eng.WorkStealingPlan(q, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ws.MaxDOP() != 64 {
		t.Fatalf("WS DOP = %d", ws.MaxDOP())
	}
	wsRes, err := eng.Execute(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !ResultsEqual(serialRes, wsRes) {
		t.Fatal("WS diverges")
	}

	vw, err := eng.VectorwisePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	vwRes, err := eng.ExecuteVectorwise(vw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ResultsEqual(serialRes, vwRes) {
		t.Fatal("VW diverges")
	}
}

func TestQueryIntrospection(t *testing.T) {
	q := TPCHQuery(14)
	if !strings.Contains(q.String(), "likeselect") {
		t.Fatal("plan text missing likeselect")
	}
	if !strings.Contains(q.Dot(), "digraph") {
		t.Fatal("dot output missing digraph")
	}
	st := q.Stats()
	if st.Selects == 0 || st.Joins == 0 || st.MaxDOP != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if Serial(q).MaxDOP() != 1 {
		t.Fatal("serial copy not serial")
	}
}

func TestTPCHAndTPCDSQueryLists(t *testing.T) {
	if len(TPCHQueryNumbers()) != 9 {
		t.Fatalf("tpch queries = %v", TPCHQueryNumbers())
	}
	if len(TPCDSQueryNumbers()) != 5 {
		t.Fatalf("tpcds queries = %v", TPCDSQueryNumbers())
	}
	if TPCHClassification()[6] != "simple" {
		t.Fatal("classification wrong")
	}
	db := LoadTPCDS(1, 1)
	eng := NewEngine(db, TwoSocketMachine())
	for _, n := range TPCDSQueryNumbers() {
		if _, err := eng.Execute(TPCDSQuery(n)); err != nil {
			t.Fatalf("TPC-DS Q%d: %v", n, err)
		}
	}
}

func TestQ6ParameterSweep(t *testing.T) {
	db := smallTPCH(t)
	eng := NewEngine(db, TwoSocketMachine())
	p := Q6Params{ShipLo: 0, ShipDays: 2556, DiscLo: 0, DiscHi: 10, QtyBelow: 100}
	res, err := eng.Execute(TPCHQ6(p))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Scalar(0)
	if v == 0 {
		t.Fatal("full-range Q6 returned zero")
	}
}

func TestRunConcurrentOnEngine(t *testing.T) {
	db := smallTPCH(t)
	eng := NewEngine(db, TwoSocketMachine())
	mix := []*Query{TPCHQuery(6), TPCHQuery(14)}
	res, err := eng.RunConcurrent(4, mix, ConcurrentOptions{Repeats: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.N() != 8 {
		t.Fatalf("completed %d", res.Overall.N())
	}
}

func TestVectorwiseConcurrentAdmission(t *testing.T) {
	db := smallTPCH(t)
	eng := NewEngine(db, TwoSocketMachine())
	q, err := eng.VectorwisePlan(TPCHQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunConcurrent(4, []*Query{q}, ConcurrentOptions{Repeats: 1, Vectorwise: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.N() != 4 {
		t.Fatalf("completed %d", res.Overall.N())
	}
	if VectorwiseAdmissionMaxCores(3, 8, 32) != 4 {
		t.Fatal("admission policy wrong")
	}
}

func TestSaturateCoresSlowsQueries(t *testing.T) {
	db := smallTPCH(t)
	idle := NewEngine(db, TwoSocketMachine())
	idleRes, err := idle.Execute(TPCHQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	loaded := NewEngine(db, TwoSocketMachine())
	loaded.SaturateCores(0, 50_000, 1e10)
	loadedRes, err := loaded.Execute(TPCHQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	if loadedRes.MakespanNs() <= idleRes.MakespanNs() {
		t.Fatal("background load had no effect")
	}
	if loaded.NowNs() <= 0 {
		t.Fatal("clock did not advance")
	}
}

func TestNoiseOptionAffectsTiming(t *testing.T) {
	db := smallTPCH(t)
	clean := NewEngine(db, TwoSocketMachine())
	noisy := NewEngine(db, TwoSocketMachine(), WithNoise(DefaultNoise()), WithSeed(3))
	cr, err := clean.Execute(TPCHQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	nr, err := noisy.Execute(TPCHQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	if cr.MakespanNs() == nr.MakespanNs() {
		t.Fatal("noise had no effect")
	}
	if !ResultsEqual(cr, nr) {
		t.Fatal("noise changed results")
	}
}

func TestResultAccessorsErrors(t *testing.T) {
	db := smallTPCH(t)
	eng := NewEngine(db, TwoSocketMachine())
	res, err := eng.Execute(TPCHQuery(9)) // (keys col, sums col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Scalar(0); err == nil {
		t.Fatal("Scalar on column result succeeded")
	}
	col, err := res.Column(1)
	if err != nil || len(col) == 0 {
		t.Fatalf("Column: %v len %d", err, len(col))
	}
	if _, err := res.Column(99); err == nil {
		t.Fatal("out-of-range column succeeded")
	}
	tg := res.Tomograph(60)
	if !strings.Contains(tg, "parallelism usage") {
		t.Fatal("tomograph missing summary")
	}
}

func TestAdaptiveCacheWorkflow(t *testing.T) {
	db := LoadTPCH(1, 5)
	eng := NewEngine(db, TwoSocketMachine())
	cache := eng.NewAdaptiveCache()
	builds := 0
	builder := func() *Query { builds++; return TPCHQuery(6) }

	var first *Result
	converged := false
	for i := 0; i < 400 && !converged; i++ {
		res, done, err := cache.Execute("q6", builder)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
		} else if !ResultsEqual(first, res) {
			t.Fatalf("invocation %d diverged", i)
		}
		converged = done
	}
	if !converged || !cache.Converged("q6") {
		t.Fatal("cache never converged")
	}
	if builds != 1 {
		t.Fatalf("builder called %d times", builds)
	}
	rep := cache.Report("q6")
	if rep == nil || rep.Speedup() < 1.2 {
		t.Fatalf("report = %+v", rep)
	}
	cache.Evict("q6")
	if cache.Converged("q6") {
		t.Fatal("evict failed")
	}
}

func TestStringColumnRendering(t *testing.T) {
	db := LoadTPCDS(1, 2)
	eng := NewEngine(db, TwoSocketMachine())
	res, err := eng.Execute(TPCDSQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	cats, err := res.StringColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) == 0 || cats[0] == "" {
		t.Fatalf("categories = %v", cats)
	}
}
