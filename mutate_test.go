package apq_test

import (
	"testing"

	apq "repro"
)

// TestDBAppendDeleteCopyOnWrite exercises the public mutation API: appends
// and tail deletes return new DBs while the original stays untouched, and
// queries against the mutated DB see the new rows.
func TestDBAppendDeleteCopyOnWrite(t *testing.T) {
	db := apq.LoadTPCH(0.1, 42)
	before := db.Catalog().MustTable("nation").Rows()

	tab := db.Catalog().MustTable("nation")
	cols := map[string]apq.ColumnAppend{}
	for _, name := range tab.ColumnNames() {
		col := tab.MustColumn(name)
		if col.Data().IsString() {
			cols[name] = apq.ColumnAppend{Strs: []string{col.Data().StringAt(0), col.Data().StringAt(1)}}
		} else {
			cols[name] = apq.ColumnAppend{Ints: []int64{col.At(0), col.At(1)}}
		}
	}
	grown, err := db.AppendRows("nation", cols)
	if err != nil {
		t.Fatal(err)
	}
	if got := grown.Catalog().MustTable("nation").Rows(); got != before+2 {
		t.Fatalf("grown nation has %d rows, want %d", got, before+2)
	}
	if got := db.Catalog().MustTable("nation").Rows(); got != before {
		t.Fatalf("append mutated the original DB: %d rows, want %d", got, before)
	}

	shrunk, err := grown.DeleteTail("nation", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := shrunk.Catalog().MustTable("nation").Rows(); got != before {
		t.Fatalf("shrunk nation has %d rows, want %d", got, before)
	}
	if _, err := db.AppendRows("nation", nil); err == nil {
		t.Fatal("empty append succeeded")
	}
	if _, err := db.DeleteTail("nation", before+1); err == nil {
		t.Fatal("over-long tail delete succeeded")
	}

	// Queries on both snapshots run and disagree only where they should:
	// engines over distinct catalogs are independent.
	eng := apq.NewEngine(db, apq.TwoSocketMachine())
	if _, err := eng.Execute(apq.TPCHQuery(6)); err != nil {
		t.Fatal(err)
	}
	eng2 := apq.NewEngine(grown, apq.TwoSocketMachine())
	if _, err := eng2.Execute(apq.TPCHQuery(6)); err != nil {
		t.Fatal(err)
	}
}

// TestServerAdminWrappers drives the runtime mutation + tenant lifecycle
// through the public Server methods.
func TestServerAdminWrappers(t *testing.T) {
	db := apq.LoadTPCH(0.1, 42)
	s, err := apq.NewServer(apq.ServerConfig{
		DB:         db,
		Machine:    apq.TwoSocketMachine(),
		DBIdentity: apq.DBIdentity("tpch", 0.1, 42),
		Shards:     1,
		Drift:      apq.DefaultDrift(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tab := db.Catalog().MustTable("nation")
	cols := map[string]apq.ColumnAppend{}
	for _, name := range tab.ColumnNames() {
		col := tab.MustColumn(name)
		if col.Data().IsString() {
			cols[name] = apq.ColumnAppend{Strs: []string{col.Data().StringAt(0)}}
		} else {
			cols[name] = apq.ColumnAppend{Ints: []int64{col.At(0)}}
		}
	}
	mut, err := s.AppendRows("", "nation", cols)
	if err != nil {
		t.Fatal(err)
	}
	if mut.Epoch != 1 {
		t.Fatalf("append epoch %d, want 1", mut.Epoch)
	}
	mut, err = s.DeleteTail("", "nation", 1)
	if err != nil {
		t.Fatal(err)
	}
	if mut.Epoch != 2 {
		t.Fatalf("truncate epoch %d, want 2", mut.Epoch)
	}

	// NewServer's built-in factory generates runtime tenants from the spec.
	if _, err := s.AddTenant(apq.TenantSpec{Name: "rt", SF: 0.1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveTenant("rt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveTenant("rt"); err == nil {
		t.Fatal("second removal of the same tenant succeeded")
	}
}
