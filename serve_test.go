package apq_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	apq "repro"
)

func TestNewServerServesQueries(t *testing.T) {
	s, err := apq.NewServer(apq.ServerConfig{
		DB:         apq.LoadTPCH(0.5, 42),
		Machine:    apq.TwoSocketMachine(),
		DBIdentity: apq.DBIdentity("tpch", 0.5, 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var prev struct {
		Session   string  `json:"session"`
		State     string  `json:"state"`
		Run       int     `json:"run"`
		LatencyNs float64 `json:"latency_ns"`
	}
	serialNs := 0.0
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/query", "application/json",
			bytes.NewReader([]byte(`{"query":6}`)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&prev); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if prev.Run != i {
			t.Fatalf("request %d executed run %d — session state not kept alive", i, prev.Run)
		}
		if i == 0 {
			serialNs = prev.LatencyNs
		}
	}
	if prev.LatencyNs >= serialNs {
		t.Fatalf("run 4 latency %.0fns did not improve on serial %.0fns", prev.LatencyNs, serialNs)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- apq.Serve(ctx, addr, apq.ServerConfig{
			DB:      apq.LoadTPCH(0.2, 42),
			Machine: apq.TwoSocketMachine(),
		})
	}()
	// Wait for the listener, then issue one request and shut down.
	url := "http://" + addr
	var ok bool
	for i := 0; i < 100; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			ok = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		cancel()
		t.Fatal("server never became healthy")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}

func TestFingerprints(t *testing.T) {
	db := apq.DBIdentity("tpch", 1, 42)
	if db != "tpch:sf=1:seed=42" {
		t.Fatalf("unexpected identity %q", db)
	}
	if apq.FingerprintNamed(db, "tpch:q6") != apq.FingerprintNamed(db, "tpch:q6") {
		t.Fatal("named fingerprint unstable")
	}
	if apq.FingerprintNamed(db, "tpch:q6") == apq.FingerprintNamed(db, "tpch:q14") {
		t.Fatal("named fingerprint collision")
	}
	q := apq.SelectSumQuery("lineitem", "l_quantity", apq.Between(10, 500))
	q2 := apq.SelectSumQuery("lineitem", "l_quantity", apq.Between(10, 500))
	if apq.FingerprintQuery(db, q) != apq.FingerprintQuery(db, q2) {
		t.Fatal("structurally identical builder queries must fingerprint equal")
	}
	q3 := apq.SelectSumQuery("lineitem", "l_quantity", apq.Between(10, 400))
	if apq.FingerprintQuery(db, q) == apq.FingerprintQuery(db, q3) {
		t.Fatal("different predicates must fingerprint differently")
	}
	if apq.FingerprintQuery(apq.DBIdentity("tpch", 2, 42), q) == apq.FingerprintQuery(db, q) {
		t.Fatal("different datasets must fingerprint differently")
	}
}

// ExampleServe shows the one-call daemon entry point.
func ExampleDBIdentity() {
	fmt.Println(apq.DBIdentity("tpch", 1, 42))
	// Output: tpch:sf=1:seed=42
}
