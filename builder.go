package apq

import (
	"repro/internal/algebra"
	"repro/internal/plan"
)

// Pred is a range predicate over int64 column values.
type Pred = algebra.Range

// Predicate constructors.
func Between(lo, hi int64) Pred  { return algebra.Between(lo, hi) }
func HalfOpen(lo, hi int64) Pred { return algebra.HalfOpen(lo, hi) }
func Eq(v int64) Pred            { return algebra.Eq(v) }
func LessThan(hi int64) Pred     { return algebra.LessThan(hi) }
func AtMost(hi int64) Pred       { return algebra.AtMost(hi) }
func GreaterThan(lo int64) Pred  { return algebra.GreaterThan(lo) }
func AtLeast(lo int64) Pred      { return algebra.AtLeast(lo) }

// AggrFunc selects an aggregate function.
type AggrFunc = algebra.AggrFunc

// Aggregate functions.
const (
	Sum   = algebra.AggrSum
	Count = algebra.AggrCount
	Min   = algebra.AggrMin
	Max   = algebra.AggrMax
)

// CalcOp selects a vectorized arithmetic operator.
type CalcOp = algebra.CalcOp

// Arithmetic operators.
const (
	Add = algebra.CalcAdd
	Sub = algebra.CalcSub
	Mul = algebra.CalcMul
	Div = algebra.CalcDiv
)

// Var names an intermediate value inside a QueryBuilder.
type Var = plan.VarID

// QueryBuilder composes custom serial query plans against a DB's tables —
// the public face of the engine's MAL-like plan DSL. Build serial plans
// here; parallelization is the engine's job (adaptive, heuristic, or
// work-stealing).
type QueryBuilder struct {
	b *plan.Builder
}

// NewQueryBuilder returns an empty builder.
func NewQueryBuilder() *QueryBuilder { return &QueryBuilder{b: plan.NewBuilder()} }

// Bind references table.column.
func (qb *QueryBuilder) Bind(table, column string) Var { return qb.b.Bind(table, column) }

// Const produces a scalar constant.
func (qb *QueryBuilder) Const(v int64) Var { return qb.b.Const(v) }

// Select scans col with pred, producing row ids.
func (qb *QueryBuilder) Select(col Var, pred Pred) Var { return qb.b.Select(col, pred) }

// SelectCand refines existing row ids against col with pred.
func (qb *QueryBuilder) SelectCand(col, cands Var, pred Pred) Var {
	return qb.b.SelectCand(col, cands, pred)
}

// LikeContains selects rows whose string contains pattern (anti inverts).
func (qb *QueryBuilder) LikeContains(col Var, pattern string, anti bool) Var {
	return qb.b.LikeSelect(col, pattern, algebra.LikeContains, anti)
}

// LikePrefix selects rows whose string starts with pattern (anti inverts).
func (qb *QueryBuilder) LikePrefix(col Var, pattern string, anti bool) Var {
	return qb.b.LikeSelect(col, pattern, algebra.LikePrefix, anti)
}

// Fetch reconstructs tuples: values of col at the given row ids.
func (qb *QueryBuilder) Fetch(oids, col Var) Var { return qb.b.Fetch(oids, col) }

// FetchPos gathers col values at zero-based positions.
func (qb *QueryBuilder) FetchPos(pos, col Var) Var { return qb.b.FetchPos(pos, col) }

// Join hash-joins outer against inner, returning (outer positions, inner
// row ids).
func (qb *QueryBuilder) Join(outer, inner Var) (Var, Var) { return qb.b.Join(outer, inner) }

// Calc computes a op b element-wise.
func (qb *QueryBuilder) Calc(op CalcOp, a, b Var) Var { return qb.b.CalcVV(op, a, b) }

// CalcScalar computes (scalar op v) when scalarLeft, else (v op scalar).
func (qb *QueryBuilder) CalcScalar(op CalcOp, scalar int64, v Var, scalarLeft bool) Var {
	return qb.b.CalcSV(op, scalar, v, scalarLeft)
}

// CalcWithScalarVar computes (s op v) / (v op s) with s a scalar variable.
func (qb *QueryBuilder) CalcWithScalarVar(op CalcOp, s, v Var, scalarLeft bool) Var {
	return qb.b.CalcSSV(op, s, v, scalarLeft)
}

// CalcSS computes a op b over two scalars.
func (qb *QueryBuilder) CalcSS(op CalcOp, a, b Var) Var { return qb.b.CalcSS(op, a, b) }

// GroupBy groups a key column; GroupKeys and AggrGrouped consume it.
func (qb *QueryBuilder) GroupBy(keys Var) Var { return qb.b.GroupBy(keys) }

// GroupKeys extracts the distinct keys.
func (qb *QueryBuilder) GroupKeys(groups Var) Var { return qb.b.GroupKeys(groups) }

// AggrGrouped aggregates vals per group.
func (qb *QueryBuilder) AggrGrouped(f AggrFunc, vals, groups Var) Var {
	return qb.b.AggrGrouped(f, vals, groups)
}

// Aggr computes a scalar aggregate over a column.
func (qb *QueryBuilder) Aggr(f AggrFunc, vals Var) Var { return qb.b.Aggr(f, vals) }

// Sort sorts a column, returning (sorted values, permutation row ids).
func (qb *QueryBuilder) Sort(col Var, desc bool) (Var, Var) { return qb.b.Sort(col, desc) }

// Union combines values with the exchange union operator.
func (qb *QueryBuilder) Union(vars ...Var) Var { return qb.b.Pack(vars...) }

// Build finalizes the query with the given result values.
func (qb *QueryBuilder) Build(results ...Var) *Query {
	qb.b.Result(results...)
	return &Query{p: qb.b.Plan()}
}

// SelectSumQuery is a convenience: sum(col) over rows of table where col is
// within pred — the micro-benchmark shape used throughout the paper's
// operator-level analysis (§4.1).
func SelectSumQuery(table, column string, pred Pred) *Query {
	qb := NewQueryBuilder()
	c := qb.Bind(table, column)
	s := qb.Select(c, pred)
	f := qb.Fetch(s, c)
	sum := qb.Aggr(Sum, f)
	return qb.Build(sum)
}

// JoinSumQuery is a convenience micro-benchmark: join outer and inner key
// columns, fetch the inner payload at the matches and sum it — the join
// plan of the paper's §4.1.2 analysis.
func JoinSumQuery(outerTable, outerCol, innerTable, innerCol, payloadCol string) *Query {
	qb := NewQueryBuilder()
	outer := qb.Bind(outerTable, outerCol)
	inner := qb.Bind(innerTable, innerCol)
	payload := qb.Bind(innerTable, payloadCol)
	_, ro := qb.Join(outer, inner)
	vals := qb.Fetch(ro, payload)
	sum := qb.Aggr(Sum, vals)
	return qb.Build(sum)
}
