package apq

import (
	"testing"
)

func buildEventsDB(t *testing.T, n int) *DB {
	t.Helper()
	ts := make([]int64, n)
	val := make([]int64, n)
	kinds := make([]string, n)
	names := []string{"read", "write", "delete"}
	for i := 0; i < n; i++ {
		ts[i] = int64(i)
		val[i] = int64(i % 100)
		kinds[i] = names[i%3]
	}
	db := NewDB()
	if err := db.AddTable("events").
		Int64("ts", ts).Int64("value", val).String("kind", kinds).Done(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQueryBuilderEndToEnd(t *testing.T) {
	db := buildEventsDB(t, 9_000)
	eng := NewEngine(db, TwoSocketMachine())

	qb := NewQueryBuilder()
	ts := qb.Bind("events", "ts")
	val := qb.Bind("events", "value")
	kind := qb.Bind("events", "kind")
	sel := qb.Select(ts, Between(1000, 7999))
	sel2 := qb.SelectCand(val, sel, AtLeast(10))
	v := qb.Fetch(sel2, val)
	k := qb.Fetch(sel2, kind)
	g := qb.GroupBy(k)
	sums := qb.AggrGrouped(Sum, v, g)
	keys := qb.GroupKeys(g)
	total := qb.Aggr(Sum, v)
	q := qb.Build(keys, sums, total)

	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	names, err := res.StringColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("groups = %v", names)
	}
	sumsCol, err := res.Column(1)
	if err != nil {
		t.Fatal(err)
	}
	total0, err := res.Scalar(2)
	if err != nil {
		t.Fatal(err)
	}
	var check int64
	for _, s := range sumsCol {
		check += s
	}
	if check != total0 {
		t.Fatalf("group sums %d != total %d", check, total0)
	}
	// Ground truth.
	var want int64
	for i := 1000; i < 8000; i++ {
		if int64(i%100) >= 10 {
			want += int64(i % 100)
		}
	}
	if total0 != want {
		t.Fatalf("total = %d, want %d", total0, want)
	}
}

func TestQueryBuilderLikeAndUnion(t *testing.T) {
	db := buildEventsDB(t, 3_000)
	eng := NewEngine(db, TwoSocketMachine())

	qb := NewQueryBuilder()
	kind := qb.Bind("events", "kind")
	val := qb.Bind("events", "value")
	reads := qb.LikePrefix(kind, "read", false)
	writes := qb.LikePrefix(kind, "write", false)
	both := qb.Union(reads, writes)
	v := qb.Fetch(both, val)
	cnt := qb.Aggr(Count, v)
	q := qb.Build(cnt)

	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Scalar(0)
	if got != 2000 {
		t.Fatalf("count = %d, want 2000", got)
	}

	// Anti-LIKE counts the complement.
	qb2 := NewQueryBuilder()
	kind2 := qb2.Bind("events", "kind")
	val2 := qb2.Bind("events", "value")
	notRead := qb2.LikeContains(kind2, "read", true)
	v2 := qb2.Fetch(notRead, val2)
	q2 := qb2.Build(qb2.Aggr(Count, v2))
	res2, err := eng.Execute(q2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res2.Scalar(0); got != 2000 {
		t.Fatalf("anti count = %d, want 2000", got)
	}
}

func TestQueryBuilderScalarArithmeticAndSort(t *testing.T) {
	db := buildEventsDB(t, 2_000)
	eng := NewEngine(db, TwoSocketMachine())

	qb := NewQueryBuilder()
	val := qb.Bind("events", "value")
	sum := qb.Aggr(Sum, val)
	cnt := qb.Aggr(Count, val)
	avg := qb.CalcSS(Div, sum, cnt)
	scaled := qb.CalcScalar(Mul, 3, val, true)
	deltas := qb.CalcWithScalarVar(Sub, avg, scaled, true)
	sorted, _ := qb.Sort(deltas, false)
	mn := qb.Aggr(Min, sorted)
	mx := qb.Aggr(Max, sorted)
	q := qb.Build(avg, mn, mx)

	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	avgV, _ := res.Scalar(0)
	mnV, _ := res.Scalar(1)
	mxV, _ := res.Scalar(2)
	if avgV != 49 { // mean of 0..99 floored
		t.Fatalf("avg = %d", avgV)
	}
	if mnV != avgV-3*99 || mxV != avgV {
		t.Fatalf("min/max = %d/%d", mnV, mxV)
	}
}

func TestSelectSumAndJoinSumHelpers(t *testing.T) {
	db := buildEventsDB(t, 5_000)
	eng := NewEngine(db, TwoSocketMachine())
	q := SelectSumQuery("events", "value", AtLeast(90))
	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Scalar(0)
	want := int64(5_000 / 100 * (90 + 91 + 92 + 93 + 94 + 95 + 96 + 97 + 98 + 99))
	if got != want {
		t.Fatalf("select-sum = %d, want %d", got, want)
	}

	// JoinSumQuery over a tiny dimension.
	dim := NewDB()
	if err := dim.AddTable("d").
		Int64("k", []int64{0, 1, 2}).Int64("v", []int64{10, 20, 30}).Done(); err != nil {
		t.Fatal(err)
	}
	if err := dim.AddTable("f").
		Int64("k", []int64{2, 1, 1, 0}).Done(); err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(dim, TwoSocketMachine())
	jq := JoinSumQuery("f", "k", "d", "k", "v")
	res2, err := eng2.Execute(jq)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res2.Scalar(0); got != 30+20+20+10 {
		t.Fatalf("join-sum = %d", got)
	}
}

func TestBuilderQueriesSurviveAdaptation(t *testing.T) {
	db := buildEventsDB(t, 120_000)
	eng := NewEngine(db, TwoSocketMachine())
	q := SelectSumQuery("events", "value", AtLeast(50))
	sess := eng.NewAdaptiveSession(q,
		WithConvergenceConfig(DefaultConvergenceConfig(8)),
		WithResultVerification())
	rep, err := sess.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup() < 1.5 {
		t.Fatalf("speedup = %.2f", rep.Speedup())
	}
}

func TestPredicateConstructors(t *testing.T) {
	cases := []struct {
		p    Pred
		v    int64
		want bool
	}{
		{Between(1, 3), 3, true},
		{HalfOpen(1, 3), 3, false},
		{Eq(5), 5, true},
		{LessThan(5), 5, false},
		{AtMost(5), 5, true},
		{GreaterThan(5), 5, false},
		{AtLeast(5), 5, true},
	}
	for i, c := range cases {
		if c.p.Matches(c.v) != c.want {
			t.Fatalf("case %d wrong", i)
		}
	}
}
