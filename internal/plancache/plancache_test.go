package plancache

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/tpch"
)

func newEngine(t *testing.T) *exec.Engine {
	t.Helper()
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	return exec.NewEngine(cat, sim.TwoSocket(), cost.Default())
}

func q6() func() (*plan.Plan, error) {
	return func() (*plan.Plan, error) { return tpch.Query(6) }
}

func TestFingerprintStability(t *testing.T) {
	a := Fingerprint("tpch:sf=1:seed=42", "tpch:q6")
	b := Fingerprint("tpch:sf=1:seed=42", "tpch:q6")
	if a != b {
		t.Fatalf("fingerprint not stable: %s vs %s", a, b)
	}
	if Fingerprint("tpch:sf=2:seed=42", "tpch:q6") == a {
		t.Fatal("different DB identity must change the fingerprint")
	}
	if Fingerprint("tpch:sf=1:seed=42", "tpch:q14") == a {
		t.Fatal("different query must change the fingerprint")
	}
}

func TestPlanFingerprintDistinguishesPlans(t *testing.T) {
	p6, p14 := tpch.MustQuery(6), tpch.MustQuery(14)
	if PlanFingerprint("db", p6) != PlanFingerprint("db", p6.Clone()) {
		t.Fatal("structurally identical plans must fingerprint equal")
	}
	if PlanFingerprint("db", p6) == PlanFingerprint("db", p14) {
		t.Fatal("different plans must fingerprint differently")
	}
}

func TestInvokeStepsSessionAndServesBestPlan(t *testing.T) {
	eng := newEngine(t)
	c := New(eng, Config{})
	fp := Fingerprint("test-db", "tpch:q6")

	builds := 0
	build := func() (*plan.Plan, error) {
		builds++
		return tpch.Query(6)
	}
	var first, last *Result
	for i := 0; i < 400; i++ {
		r, err := c.Invoke(fp, "tpch:q6", build, exec.JobOptions{})
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if i == 0 {
			first = r
			if !r.Created {
				t.Fatal("first invocation should create the session")
			}
		} else if r.Created {
			t.Fatalf("invocation %d re-created the session", i)
		}
		// Mutated plans must keep producing the serial plan's results.
		if !exec.ResultsEqual(first.Values, r.Values) {
			t.Fatalf("invocation %d results diverged from serial", i)
		}
		last = r
		if r.Invocation.Converged {
			break
		}
	}
	if builds != 1 {
		t.Fatalf("serial plan built %d times, want 1", builds)
	}
	if !last.Invocation.Converged {
		t.Fatal("session never converged")
	}
	rep := last.Entry.Session.Report()
	if rep.GMENs >= first.Invocation.LatencyNs {
		t.Fatalf("GME %.0fns did not improve on serial %.0fns", rep.GMENs, first.Invocation.LatencyNs)
	}
	// Converged invocations execute the cached global-minimum plan.
	r, err := c.Invoke(fp, "tpch:q6", build, exec.JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Invocation.Converged {
		t.Fatal("post-convergence invocation should report converged")
	}
	if r.Invocation.DOP != rep.BestPlan.MaxDOP() {
		t.Fatalf("served DOP %d, best plan DOP %d", r.Invocation.DOP, rep.BestPlan.MaxDOP())
	}
	if got := len(last.Entry.Trace()); got < 2 {
		t.Fatalf("trace has %d invocations", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits < 2 || st.Entries != 1 || st.Converged != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestMaxEntriesEvictsLRUPreferringConverged(t *testing.T) {
	eng := newEngine(t)
	c := New(eng, Config{MaxEntries: 2})
	build := func(n int) func() (*plan.Plan, error) {
		return func() (*plan.Plan, error) { return tpch.Query(n) }
	}
	// Converge q6 fully so it becomes the preferred victim.
	fp6 := Fingerprint("db", "q6")
	for i := 0; i < 400; i++ {
		r, err := c.Invoke(fp6, "q6", build(6), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Invocation.Converged {
			break
		}
	}
	if !c.GetFingerprint(fp6).Session.Done() {
		t.Fatal("q6 did not converge")
	}
	fp14 := Fingerprint("db", "q14")
	if _, err := c.Invoke(fp14, "q14", build(14), exec.JobOptions{}); err != nil {
		t.Fatal(err)
	}
	// Touch q6 so q14 is the LRU entry — but q6 is converged, so inserting a
	// third entry must still evict q6 (converged preferred over adapting).
	if _, err := c.Invoke(fp6, "q6", build(6), exec.JobOptions{}); err != nil {
		t.Fatal(err)
	}
	fp4 := Fingerprint("db", "q4")
	if _, err := c.Invoke(fp4, "q4", build(4), exec.JobOptions{}); err != nil {
		t.Fatal(err)
	}
	if c.GetFingerprint(fp6) != nil {
		t.Fatal("expected converged q6 to be evicted")
	}
	if c.GetFingerprint(fp14) == nil || c.GetFingerprint(fp4) == nil {
		t.Fatal("adapting entries should survive")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("unexpected stats after eviction: %+v", st)
	}
}

// TestTenantQuotaScopedEviction: an over-quota tenant evicts only its own
// sessions (converged preferred), while another tenant's converged session —
// the victim the tenant-blind global policy would pick — survives untouched.
func TestTenantQuotaScopedEviction(t *testing.T) {
	eng := newEngine(t)
	c := New(eng, Config{})
	c.SetTenantQuota("t1", 2)
	build := func(n int) func() (*plan.Plan, error) {
		return func() (*plan.Plan, error) { return tpch.Query(n) }
	}
	converge := func(tenant, fp, q string, n int) {
		t.Helper()
		for i := 0; i < 400; i++ {
			r, err := c.InvokeTenant(tenant, fp, q, build(n), exec.JobOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if r.Invocation.Converged {
				return
			}
		}
		t.Fatalf("%s/%s did not converge", tenant, q)
	}

	// Tenant t2 holds a fully converged session — the globally preferred
	// victim if eviction were tenant-blind.
	fpOther := Fingerprint("db-t2", "q6")
	converge("t2", fpOther, "q6", 6)

	// t1: a converged session plus an adapting one, then a third insert
	// that pushes t1 over its quota of 2.
	fpA, fpB, fpC := Fingerprint("db-t1", "q6"), Fingerprint("db-t1", "q14"), Fingerprint("db-t1", "q4")
	converge("t1", fpA, "q6", 6)
	if _, err := c.InvokeTenant("t1", fpB, "q14", build(14), exec.JobOptions{}); err != nil {
		t.Fatal(err)
	}
	// Touch t1's converged session so it is MRU: conversion preference must
	// beat recency inside the tenant, exactly like the global policy.
	if _, err := c.InvokeTenant("t1", fpA, "q6", build(6), exec.JobOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InvokeTenant("t1", fpC, "q4", build(4), exec.JobOptions{}); err != nil {
		t.Fatal(err)
	}

	if c.GetFingerprint(fpA) != nil {
		t.Fatal("t1's converged session should be its quota-overflow victim")
	}
	if c.GetFingerprint(fpB) == nil || c.GetFingerprint(fpC) == nil {
		t.Fatal("t1's adapting sessions should survive its overflow")
	}
	if e := c.GetFingerprint(fpOther); e == nil || !e.Session.Done() {
		t.Fatal("t2's converged session must never pay for t1's overflow")
	}
	ts := c.TenantStats()
	if st := ts["t1"]; st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("t1 stats: %+v (want 2 entries, 1 eviction)", st)
	}
	if st := ts["t2"]; st.Entries != 1 || st.Evictions != 0 || st.Converged != 1 {
		t.Fatalf("t2 stats: %+v (want untouched converged session)", st)
	}
	// Global counters fold the per-tenant ones.
	if st := c.Stats(); st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("global stats: %+v", st)
	}
}

func TestThrottledInvocationsDoNotFeedConvergence(t *testing.T) {
	eng := newEngine(t)
	c := New(eng, Config{})
	fp := Fingerprint("db", "q6")

	// A throttled first invocation serves results but must not count as an
	// adaptive run: its latency reflects the 1-core budget, not the plan.
	r, err := c.Invoke(fp, "q6", q6(), exec.JobOptions{MaxCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Invocation.Throttled || r.Invocation.Run != -1 {
		t.Fatalf("throttled invocation recorded as run %d (throttled=%v)",
			r.Invocation.Run, r.Invocation.Throttled)
	}
	if got := len(c.GetFingerprint(fp).Session.Attempts()); got != 0 {
		t.Fatalf("throttled invocation produced %d adaptive runs, want 0", got)
	}

	// Unthrottled invocations adapt; a full budget equal to the machine is
	// not throttling.
	if _, err := c.Invoke(fp, "q6", q6(), exec.JobOptions{}); err != nil {
		t.Fatal(err)
	}
	cores := eng.Machine().Config().LogicalCores()
	r, err = c.Invoke(fp, "q6", q6(), exec.JobOptions{MaxCores: cores})
	if err != nil {
		t.Fatal(err)
	}
	if r.Invocation.Throttled || r.Invocation.Run != 1 {
		t.Fatalf("full-budget invocation: run %d throttled=%v, want run 1 unthrottled",
			r.Invocation.Run, r.Invocation.Throttled)
	}
	// A throttled invocation mid-adaptation serves the current plan and
	// leaves the convergence history untouched.
	before := len(c.GetFingerprint(fp).Session.Attempts())
	r, err = c.Invoke(fp, "q6", q6(), exec.JobOptions{MaxCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Invocation.Throttled {
		t.Fatal("2-core budget on a 32-core machine must throttle")
	}
	if got := len(c.GetFingerprint(fp).Session.Attempts()); got != before {
		t.Fatalf("throttled invocation advanced the session: %d -> %d runs", before, got)
	}
}

func TestTraceIsBounded(t *testing.T) {
	cat := tpch.Generate(tpch.Config{SF: 0.2, Seed: 42})
	eng := exec.NewEngine(cat, sim.TwoSocket(), cost.Default())
	c := New(eng, Config{})
	fp := Fingerprint("db", "q6")
	total := maxTraceInvocations + 50
	for i := 0; i < total; i++ {
		if _, err := c.Invoke(fp, "q6", q6(), exec.JobOptions{}); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	e := c.GetFingerprint(fp)
	if got := len(e.Trace()); got > maxTraceInvocations || got < maxTraceInvocations*3/4 {
		t.Fatalf("trace has %d records, want between %d and %d",
			got, maxTraceInvocations*3/4, maxTraceInvocations)
	}
	if e.Hits() != int64(total) {
		t.Fatalf("hits %d, want %d", e.Hits(), total)
	}
	// The retained window is the most recent one.
	tr := e.Trace()
	if !tr[len(tr)-1].Converged {
		t.Fatal("newest retained invocation should be from the converged phase")
	}
}

func TestFailingSessionIsEvicted(t *testing.T) {
	eng := newEngine(t)
	c := New(eng, Config{})
	fp := Fingerprint("db", "bad")
	bad := func() (*plan.Plan, error) {
		b := plan.NewBuilder()
		col := b.Bind("nosuchtable", "c")
		b.Result(b.Aggr(algebra.AggrSum, b.Fetch(b.Select(col, algebra.FullRange()), col)))
		return b.Plan(), nil
	}
	if _, err := c.Invoke(fp, "bad", bad, exec.JobOptions{}); err == nil {
		t.Fatal("expected execution error for missing table")
	}
	if c.GetFingerprint(fp) != nil {
		t.Fatal("failed session must not stay cached")
	}
	if st := c.Stats(); st.Entries != 0 || st.Evictions != 1 {
		t.Fatalf("unexpected stats after failure: %+v", st)
	}
	// The failure must not poison later queries.
	if _, err := c.Invoke(Fingerprint("db", "q6"), "q6", q6(), exec.JobOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictAndList(t *testing.T) {
	eng := newEngine(t)
	c := New(eng, Config{})
	fp := Fingerprint("db", "q6")
	if _, err := c.Invoke(fp, "q6", q6(), exec.JobOptions{}); err != nil {
		t.Fatal(err)
	}
	list := c.List()
	if len(list) != 1 || list[0].ID != "s1" || list[0].Query != "q6" {
		t.Fatalf("unexpected list: %+v", list)
	}
	if c.Get("s1") == nil {
		t.Fatal("Get by id failed")
	}
	c.Evict(fp)
	if c.Get("s1") != nil || c.GetFingerprint(fp) != nil {
		t.Fatal("entry survived Evict")
	}
}
