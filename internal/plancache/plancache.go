// Package plancache keeps live adaptive-parallelization sessions alive
// between query invocations. It is the serving-layer descendant of the
// paper's plan-administration component (§2, Figure 2): adaptive
// parallelization only pays off because plans are cached and re-invoked —
// every execution profiles the plan and morphs its most expensive operator,
// so the speedup is amortized across repeated submissions. The cache maps a
// query fingerprint (query identity + database identity) to its live
// adaptive session, so repeated submissions of the same query keep stepping
// the convergence algorithm and later callers get the current best plan.
//
// The cache is *adaptive* in a second sense: it is capacity-bounded and
// evicts least-recently-used entries, preferring converged sessions (whose
// learned plan is cheap to re-derive) over still-adapting ones (whose
// accumulated convergence state is expensive to lose).
//
// Concurrency: the cache's maps and per-entry bookkeeping are guarded by a
// mutex, but *stepping a session executes on the discrete-event machine*,
// which is single-threaded. Callers must serialize Invoke calls (the
// internal/server shard owns one cache and serializes through its
// engine-ownership lock); the cache documents rather than hides this
// constraint so the engine-ownership boundary stays visible.
//
// Tenancy: one cache holds sessions from many tenants without collision —
// fingerprints incorporate each tenant's dataset identity — so entries
// carry a tenant tag purely for accounting: per-tenant quotas
// (SetTenantQuota) scope an over-quota tenant's eviction to its own
// sessions, and TenantStats breaks the counters down for /stats. Evicted
// sessions always Release their plan compilations back to the engine's
// buffer pool regardless of tenant.
package plancache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
)

// Fingerprint derives the cache key for a query against a database. db
// identifies the dataset (e.g. "tpch:sf=1:seed=42"); query identifies the
// template (e.g. "tpch:q6", or a hash of a builder-spec plan's text). The
// same query against a different database must adapt separately — learned
// range partitions depend on the data volume.
func Fingerprint(db, query string) string {
	h := sha256.Sum256([]byte(db + "\x00" + query))
	return hex.EncodeToString(h[:16])
}

// PlanFingerprint fingerprints an ad-hoc builder-spec plan by its rendered
// text, which is deterministic for a given plan structure.
func PlanFingerprint(db string, p *plan.Plan) string {
	return Fingerprint(db, "spec:"+p.String())
}

// Config tunes the cache.
type Config struct {
	// MaxEntries bounds the number of live sessions (0 = unlimited). When
	// full, the least-recently-used converged entry is evicted; if every
	// entry is still adapting, the least-recently-used overall goes.
	MaxEntries int
	// IDPrefix namespaces session ids: prefix "s" yields s1, s2, ...
	// (the default); the engine shard pool gives each shard its own prefix
	// (e.g. "s2.") so ids stay unique across shards.
	IDPrefix string
	// Mutation and Convergence tune the sessions the cache creates.
	Mutation    core.MutationConfig
	Convergence core.ConvergenceConfig
	// Staleness arms post-convergence staleness detection on every session
	// the cache creates or restores: converged sessions whose serving runs
	// drift out of the band reopen convergence instead of pinning a stale
	// plan (core.StalenessConfig). The zero value disables detection.
	// Throttled and frozen invocations never feed the detector — their
	// latencies reflect the core budget or the breaker, not the plan.
	Staleness core.StalenessConfig
	// Persist, when set, is the write-behind persistence hook: it fires
	// once when a session converges (from the invocation that observed the
	// done transition) and again when a converged entry is evicted, so the
	// persistent convergence store always holds the session's final state.
	// It never fires on the converged serving path — persistence costs
	// nothing on hot requests — and never for unconverged or failed
	// sessions. The hook may be called with the cache's internal lock held:
	// it must not call back into the cache, and should only hand the entry
	// off (e.g. enqueue on a store.Synchronizer).
	Persist func(*Entry)
	// Drift arms per-tenant workload-drift detection (drift.go): converged
	// sessions whose serving latency no longer matches the query mix they
	// converged under reopen sized to their observed core budget. The zero
	// value disables detection.
	Drift DriftConfig
}

// maxTraceInvocations bounds the per-entry invocation log: a long-lived
// daemon serving one hot query forever must not grow memory per request.
// The cap comfortably covers a full convergence (upper bound ~cores×8 runs
// on the largest built-in machine) plus a window of converged serving.
// When full, the oldest quarter is dropped in one copy so the steady-state
// trim cost is amortized O(1) per invocation.
const maxTraceInvocations = 1024

// Invocation records one served request against an entry — the convergence
// trace the server exposes at /sessions/{id}/trace. Only the most recent
// maxTraceInvocations records are retained.
type Invocation struct {
	// Run is the index of the most recent adaptive run at serve time (the
	// serial run is 0; -1 when throttled before any run). Invocations
	// served after convergence repeat the final run index.
	Run int `json:"run"`
	// LatencyNs is the virtual execution time of this invocation.
	LatencyNs float64 `json:"latency_ns"`
	// Converged reports whether the session had converged when served.
	Converged bool `json:"converged"`
	// MaxCores is the admission-control core budget applied (0 = unlimited).
	MaxCores int `json:"max_cores"`
	// DOP is the executed plan's degree of parallelism.
	DOP int `json:"dop"`
	// Throttled marks an invocation served under a reduced core budget
	// while the session was still adapting: it executed the current plan
	// but did NOT count as an adaptive run — a throttled latency reflects
	// the budget, not the plan, and would poison the convergence algorithm.
	Throttled bool `json:"throttled,omitempty"`
	// Frozen marks an invocation served in degraded (breaker-open) mode:
	// the session was neither stepped nor fed to staleness detection.
	Frozen bool `json:"frozen,omitempty"`
	// Reopened marks the invocation whose serving observation tripped
	// staleness detection and reopened the session's convergence.
	Reopened bool `json:"reopened,omitempty"`
	// DriftReopened marks the invocation whose serving observation tripped
	// the workload-drift detector and reopened the session's convergence
	// sized to its observed core budget.
	DriftReopened bool `json:"drift_reopened,omitempty"`
}

// Entry is one live adaptive session keyed by fingerprint.
type Entry struct {
	// ID is the server-visible session id ("s1", "s2", ...).
	ID string
	// Fingerprint is the cache key.
	Fingerprint string
	// Query is the human-readable query identity used at creation.
	Query string
	// Tenant tags the entry with the tenant that created it ("" = the
	// server's default dataset). Tenants never collide on fingerprints —
	// the fingerprint incorporates the dataset identity — so the tag exists
	// for quota accounting and tenant-scoped eviction, not correctness.
	Tenant string
	// Session is the live adaptation. Step it only via Cache.Invoke.
	Session *core.Session

	cache       *Cache // guards the fields below via cache.mu
	seq         int    // creation order, for stable listings
	hits        int64
	lastUsed    int64 // logical clock ticks from the cache
	invocations []Invocation

	// inflight marks an invocation executing this entry's session outside
	// the cache lock. An eviction that lands mid-flight unlinks the entry
	// immediately but defers persistence and plan release to the
	// invocation's completion (evictPending/persistPending) — releasing a
	// session whose plans are mid-execution would race with the engine.
	inflight       bool
	evictPending   bool
	persistPending bool

	// Workload-drift state (drift.go). Touched only by the caller-serialized
	// invocation stream (and lifecycle operations holding the same shard
	// lock), like the session itself — not guarded by cache.mu.
	driftOut    []bool  // ring: was each recent converged serving out of band
	driftIdx    int     // next ring slot
	driftLen    int     // filled ring slots
	driftOuts   int     // out-of-band count within the ring
	driftBudget int     // core budget of the most recent out-of-band serving
	convShare   float64 // entry's mix share at convergence (-1 = unrecorded)
}

// Hits returns how many invocations the entry has served.
func (e *Entry) Hits() int64 {
	e.cache.mu.Lock()
	defer e.cache.mu.Unlock()
	return e.hits
}

// Trace returns a copy of the per-invocation records.
func (e *Entry) Trace() []Invocation {
	e.cache.mu.Lock()
	defer e.cache.mu.Unlock()
	return append([]Invocation(nil), e.invocations...)
}

// Stats aggregates cache behavior for the /stats endpoint.
type Stats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Converged int   `json:"converged"`
	// Rehydrated counts sessions restored from the persistent convergence
	// store at startup (lifetime count; restored entries can still be
	// evicted later).
	Rehydrated int64 `json:"rehydrated,omitempty"`
	// Reconvergences counts staleness-triggered convergence reopens across
	// the cache's lifetime (including sessions since evicted).
	Reconvergences int64 `json:"reconvergences,omitempty"`
	// DataReopens counts sessions reopened warm by dataset epoch bumps
	// (lifecycle.go).
	DataReopens int64 `json:"data_reopens,omitempty"`
	// DriftReopens counts workload-drift-triggered convergence reopens
	// (drift.go).
	DriftReopens int64 `json:"drift_reopens,omitempty"`
	// WarmSeeds counts sessions rehydrated as warm seeds from store records
	// whose dataset epoch no longer matched the live dataset.
	WarmSeeds int64 `json:"warm_seeds,omitempty"`
}

// Cache maps query fingerprints to live adaptive sessions.
type Cache struct {
	mu   sync.Mutex
	eng  *exec.Engine
	cfg  Config
	byFP map[string]*Entry
	byID map[string]*Entry
	seq  int
	tick int64

	hits, misses, evictions, rehydrated, reconvergences int64
	dataReopens, driftReopens, warmSeeds                int64

	// mixes holds each tenant's sliding query-mix signature (drift.go),
	// guarded by mu like the other maps.
	mixes map[string]*mixWindow

	// quotas bounds live sessions per tenant tag (missing or 0 = unlimited);
	// tenantEntries tracks each tag's live session count (kept in step with
	// byFP so quota checks are O(1), not map scans); tenantStats accumulates
	// per-tenant counters for the /stats breakdown.
	quotas        map[string]int
	tenantEntries map[string]int
	tenantStats   map[string]*Stats
}

// New creates a cache over eng. Zero-valued mutation/convergence configs
// fall back to the engine defaults.
func New(eng *exec.Engine, cfg Config) *Cache {
	if cfg.Convergence.Cores == 0 {
		cfg.Convergence = core.DefaultConvergenceConfig(eng.Machine().Config().LogicalCores())
	}
	if cfg.Mutation == (core.MutationConfig{}) {
		cfg.Mutation = core.DefaultMutationConfig()
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "s"
	}
	cfg.Drift = cfg.Drift.withDefaults()
	return &Cache{eng: eng, cfg: cfg, byFP: map[string]*Entry{}, byID: map[string]*Entry{}}
}

// Result is one served invocation's outcome.
type Result struct {
	Entry      *Entry
	Values     []exec.Value
	Profile    *exec.Profile
	Invocation Invocation
	// Created reports whether this invocation instantiated the session.
	Created bool
}

// SetTenantQuota bounds the number of live sessions the given tenant tag may
// hold in this cache (0 removes the bound). When a tenant exceeds its quota,
// the overflow evicts that tenant's own least-recently-used session
// (converged first) — never another tenant's.
func (c *Cache) SetTenantQuota(tenant string, maxSessions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.quotas == nil {
		c.quotas = map[string]int{}
	}
	c.quotas[tenant] = maxSessions
}

// Invoke serves one invocation of the query identified by fp. The builder is
// called only when the fingerprint is new. While the session is adapting,
// the invocation IS an adaptive run (executed under opts' core budget); once
// converged, the global-minimum plan is executed directly.
//
// Invoke executes on the single-threaded virtual-time machine — callers
// must serialize it (see the package comment).
func (c *Cache) Invoke(fp, query string, build func() (*plan.Plan, error), opts exec.JobOptions) (*Result, error) {
	return c.InvokeTenant("", fp, query, build, opts)
}

// InvokeTenant is Invoke with a tenant tag: the session created on a miss is
// tagged with tenant for quota enforcement and the per-tenant stats
// breakdown. opts carries the tenant's catalog when the engine's own dataset
// is not the one being queried.
func (c *Cache) InvokeTenant(tenant, fp, query string, build func() (*plan.Plan, error), opts exec.JobOptions) (*Result, error) {
	return c.invoke(tenant, fp, query, build, opts, false)
}

// InvokeTenantFrozen serves one invocation in degraded mode: a converged
// session executes its best plan but its latency is NOT fed to staleness
// detection, and a still-adapting session executes its current plan without
// stepping the adaptation. The per-shard health breaker uses this while
// open — a degraded shard keeps answering queries from learned state but
// stops all exploration and reopening until the breaker half-opens.
func (c *Cache) InvokeTenantFrozen(tenant, fp, query string, build func() (*plan.Plan, error), opts exec.JobOptions) (*Result, error) {
	return c.invoke(tenant, fp, query, build, opts, true)
}

func (c *Cache) invoke(tenant, fp, query string, build func() (*plan.Plan, error), opts exec.JobOptions, frozen bool) (*Result, error) {
	c.mu.Lock()
	e, ok := c.byFP[fp]
	if !ok {
		p, err := build()
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		c.seq++
		e = &Entry{
			ID:          fmt.Sprintf("%s%d", c.cfg.IDPrefix, c.seq),
			Fingerprint: fp,
			Query:       query,
			Tenant:      tenant,
			Session:     core.NewSession(c.eng, p, c.cfg.Mutation, c.cfg.Convergence),
			cache:       c,
			seq:         c.seq,
			convShare:   -1,
		}
		e.Session.SetStaleness(c.cfg.Staleness)
		c.byFP[fp] = e
		c.byID[e.ID] = e
		c.misses++
		c.tenantCounterLocked(tenant).Misses++
		if c.tenantEntries == nil {
			c.tenantEntries = map[string]int{}
		}
		c.tenantEntries[tenant]++
		c.evictOverflowLocked(e)
	} else {
		c.hits++
		c.tenantCounterLocked(e.Tenant).Hits++
	}
	c.tick++
	e.lastUsed = c.tick
	e.hits++
	e.inflight = true
	created := !ok
	share := -1.0
	if c.cfg.Drift.enabled() {
		share = c.observeMixLocked(e.Tenant, fp)
	}
	c.mu.Unlock()

	// Engine execution happens outside the map lock so that Entry's
	// mutex-guarded accessors (Hits, Trace) and the cache's read methods
	// stay callable from other goroutines during a run. (Callers that
	// funnel every read through the same serializer as Invoke — like the
	// apqd run-loop — still observe them blocked behind the execution.)
	var (
		values  []exec.Value
		profile *exec.Profile
		dop     int
	)
	cores := c.eng.Machine().Config().LogicalCores()
	// An invocation is throttled when its core budget is below what the
	// session's convergence instance is sized to — not below the whole
	// machine: a session reopened for drift (or on a shrunken machine) is
	// sized to the budget it actually serves under, and runs at that budget
	// are its full-fidelity reality, so they must step the adaptation and
	// feed staleness detection.
	target := cores
	if cc := e.Session.Convergence().Config().Cores; cc > 0 && cc < target {
		target = cc
	}
	throttled := opts.MaxCores > 0 && opts.MaxCores < target
	reopened := false
	drifted := false
	switch {
	case !e.Session.Done() && (throttled || frozen):
		// Admission throttled this invocation while the session is still
		// adapting — or the shard breaker froze adaptation: execute the
		// current plan but do not step the session. A throttled latency
		// reflects the core budget, not the plan's quality, and feeding
		// it to the convergence algorithm could converge the session
		// prematurely onto a suboptimal plan; a frozen invocation serves
		// from learned state while the shard recovers. Adaptation
		// advances on unthrottled, unfrozen invocations (under the
		// Vectorwise admission policy the first active client always has
		// the full machine).
		cur := e.Session.Current()
		var err error
		values, profile, err = c.eng.ExecuteOpts(cur, opts)
		if err != nil {
			c.dropEntry(e)
			return nil, err
		}
		dop = cur.MaxDOP()
	case !e.Session.Done():
		if _, err := e.Session.StepWith(opts); err != nil {
			// A failing session would error on every future invocation;
			// evict it so the next request starts clean from the serial
			// plan instead of replaying the broken state forever.
			c.dropEntry(e)
			return nil, err
		}
		if e.Session.Done() {
			// This invocation observed the done transition: snapshot the
			// entry's mix share so drift detection can later compare the
			// serving mix against the one it converged under.
			e.convShare = share
			if c.cfg.Persist != nil {
				// The session's state is final from here on, so persist it
				// now. Still on the cold path — converged serving below
				// never reaches this.
				c.cfg.Persist(e)
			}
		}
		att := e.Session.Attempts()
		last := att[len(att)-1]
		values, profile = last.Results, last.Profile
		// Report the plan this invocation actually executed — on the run
		// that triggers convergence that is the final adaptive plan, not
		// necessarily the global-minimum plan served from here on.
		dop = last.Plan.MaxDOP()
	default:
		best := e.Session.Best()
		var err error
		values, profile, err = c.eng.ExecuteOpts(best, opts)
		if err != nil {
			c.dropEntry(e)
			return nil, err
		}
		dop = best.MaxDOP()
		if !frozen && !throttled {
			// A full-budget converged serving run feeds staleness
			// detection: sustained out-of-band latency reopens the
			// session's convergence, and the next unfrozen invocation
			// resumes adapting. (Throttled and frozen latencies reflect
			// the budget or the breaker, not the plan, and are skipped.)
			reopened = e.Session.ObserveServed(profile.Makespan())
		}
		if !frozen && !reopened && c.cfg.Drift.enabled() {
			// Every unfrozen converged serving — including throttled ones
			// staleness detection must skip — feeds the workload-drift
			// detector: a session mostly serving under a small budget with
			// a shifted mix share reopens sized to that budget.
			drifted = c.observeDrift(e, profile.Makespan(), opts.MaxCores, cores, share)
		}
	}

	inv := Invocation{
		Run:           len(e.Session.Attempts()) - 1, // -1: throttled before the first adaptive run
		LatencyNs:     profile.Makespan(),
		Converged:     e.Session.Done() || reopened || drifted, // converged at serve time
		MaxCores:      opts.MaxCores,
		DOP:           dop,
		Throttled:     throttled && !e.Session.Done() && !reopened && !drifted,
		Frozen:        frozen,
		Reopened:      reopened,
		DriftReopened: drifted,
	}
	c.mu.Lock()
	e.inflight = false
	if reopened {
		c.reconvergences++
		c.tenantCounterLocked(e.Tenant).Reconvergences++
	}
	if drifted {
		c.driftReopens++
		c.tenantCounterLocked(e.Tenant).DriftReopens++
	}
	if len(e.invocations) >= maxTraceInvocations {
		keep := maxTraceInvocations * 3 / 4
		e.invocations = append(e.invocations[:0], e.invocations[len(e.invocations)-keep:]...)
	}
	e.invocations = append(e.invocations, inv)
	if e.evictPending {
		// An eviction unlinked the entry while this invocation was
		// executing; its deferred half runs now that the session is idle.
		e.evictPending = false
		if e.persistPending && c.cfg.Persist != nil && e.Session.Done() {
			c.cfg.Persist(e)
		}
		e.persistPending = false
		e.Session.Release()
	}
	c.mu.Unlock()
	return &Result{Entry: e, Values: values, Profile: profile, Invocation: inv, Created: created}, nil
}

// Restore inserts an already-converged session rehydrated from the
// persistent convergence store, so the first invocation of fp is a cache
// hit served from the learned plan instead of a cold re-adaptation. The
// caller is responsible for identity checks (the session must have been
// built against this cache's engine dataset). Restores count as rehydrated
// sessions, not as misses; a fingerprint already live in the cache wins
// over the store and Restore returns nil. Restored entries participate in
// eviction like any other entry, including tenant quotas.
func (c *Cache) Restore(tenant, fp, query string, sess *core.Session) *Entry {
	if sess == nil || !sess.Done() {
		return nil
	}
	sess.SetStaleness(c.cfg.Staleness)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byFP[fp]; ok {
		return nil
	}
	c.seq++
	e := &Entry{
		ID:          fmt.Sprintf("%s%d", c.cfg.IDPrefix, c.seq),
		Fingerprint: fp,
		Query:       query,
		Tenant:      tenant,
		Session:     sess,
		cache:       c,
		seq:         c.seq,
		convShare:   -1,
	}
	c.byFP[fp] = e
	c.byID[e.ID] = e
	c.rehydrated++
	c.tenantCounterLocked(tenant).Rehydrated++
	if c.tenantEntries == nil {
		c.tenantEntries = map[string]int{}
	}
	c.tenantEntries[tenant]++
	c.tick++
	e.lastUsed = c.tick
	c.evictOverflowLocked(e)
	return e
}

// tenantCounterLocked returns (creating if needed) the counter record for a
// tenant tag. Only Hits/Misses/Evictions accumulate here; Entries and
// Converged are computed on read.
func (c *Cache) tenantCounterLocked(tenant string) *Stats {
	if c.tenantStats == nil {
		c.tenantStats = map[string]*Stats{}
	}
	st, ok := c.tenantStats[tenant]
	if !ok {
		st = &Stats{}
		c.tenantStats[tenant] = st
	}
	return st
}

// dropEntry removes a failed entry (counted as an eviction). A failed
// entry's state is suspect, so it is never persisted on the way out — even
// when an eviction raced the failed run and left its persistence pending.
func (c *Cache) dropEntry(e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.inflight = false
	if e.evictPending {
		e.evictPending, e.persistPending = false, false
		e.Session.Release()
		return
	}
	if c.byFP[e.Fingerprint] == e {
		c.removeLocked(e, false)
	}
}

// removeLocked unlinks an entry, counts the eviction (globally and for the
// entry's tenant), and releases the session's compilations back to the
// engine's buffer pool. With persist set, a converged entry is handed to
// the persistence hook first (with c.mu held — see Config.Persist), so an
// evicted-then-reinvoked query rehydrates hot after the next restart.
func (c *Cache) removeLocked(e *Entry, persist bool) {
	delete(c.byFP, e.Fingerprint)
	delete(c.byID, e.ID)
	c.evictions++
	c.tenantCounterLocked(e.Tenant).Evictions++
	c.tenantEntries[e.Tenant]--
	if e.inflight {
		// The entry is mid-invocation on another goroutine: its session and
		// the plans it executes are live. Unlink now, but leave persistence
		// and plan release to the invocation's completion.
		e.evictPending = true
		e.persistPending = persist
		return
	}
	if persist && c.cfg.Persist != nil && e.Session.Done() {
		c.cfg.Persist(e)
	}
	e.Session.Release()
}

// evictOverflowLocked enforces the eviction policy after inserting keep,
// which is never evicted. Two bounds apply, in order:
//
//  1. The inserting tenant's quota: while keep's tenant holds more sessions
//     than SetTenantQuota allows, that tenant's own LRU session goes
//     (converged first). Other tenants' sessions are untouchable here — an
//     over-quota tenant can only ever evict itself.
//  2. The global MaxEntries bound, preferring victims from tenants that are
//     over their own quota, then converged LRU entries, then LRU overall.
func (c *Cache) evictOverflowLocked(keep *Entry) {
	if q := c.quotas[keep.Tenant]; q > 0 {
		for c.tenantEntries[keep.Tenant] > q {
			victim := c.lruLocked(keep, true, func(e *Entry) bool { return e.Tenant == keep.Tenant })
			if victim == nil {
				victim = c.lruLocked(keep, false, func(e *Entry) bool { return e.Tenant == keep.Tenant })
			}
			if victim == nil {
				return
			}
			c.removeLocked(victim, true)
		}
	}
	if c.cfg.MaxEntries <= 0 {
		return
	}
	for len(c.byFP) > c.cfg.MaxEntries {
		victim := c.lruLocked(keep, false, c.overQuotaLocked)
		if victim == nil {
			victim = c.lruLocked(keep, true, nil)
		}
		if victim == nil {
			victim = c.lruLocked(keep, false, nil)
		}
		if victim == nil {
			return
		}
		// The evicted session's plan compilations (and their arena buffers)
		// go back to the engine pool instead of lingering until the
		// engine's schedule-cache overflow.
		c.removeLocked(victim, true)
	}
}

// overQuotaLocked reports whether e's tenant currently exceeds its quota.
func (c *Cache) overQuotaLocked(e *Entry) bool {
	q := c.quotas[e.Tenant]
	return q > 0 && c.tenantEntries[e.Tenant] > q
}

func (c *Cache) lruLocked(keep *Entry, convergedOnly bool, eligible func(*Entry) bool) *Entry {
	var victim *Entry
	for _, e := range c.byFP {
		if e == keep || (convergedOnly && !e.Session.Done()) {
			continue
		}
		if eligible != nil && !eligible(e) {
			continue
		}
		if victim == nil || e.lastUsed < victim.lastUsed {
			victim = e
		}
	}
	return victim
}

// Get returns the entry with the given session id, or nil.
func (c *Cache) Get(id string) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byID[id]
}

// GetFingerprint returns the entry with the given fingerprint, or nil.
func (c *Cache) GetFingerprint(fp string) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byFP[fp]
}

// List returns the entries ordered by session id creation order.
func (c *Cache) List() []*Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Entry, 0, len(c.byID))
	for _, e := range c.byID {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Evict removes the entry with the given fingerprint.
func (c *Cache) Evict(fp string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byFP[fp]; ok {
		c.removeLocked(e, true)
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Entries:        len(c.byFP),
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		Rehydrated:     c.rehydrated,
		Reconvergences: c.reconvergences,
		DataReopens:    c.dataReopens,
		DriftReopens:   c.driftReopens,
		WarmSeeds:      c.warmSeeds,
	}
	for _, e := range c.byFP {
		if e.Session.Done() {
			st.Converged++
		}
	}
	return st
}

// TenantStats snapshots the per-tenant slice of the cache counters, keyed by
// tenant tag. Every tenant that ever touched the cache appears, even with
// zero live entries (its hit/miss/eviction history remains meaningful).
func (c *Cache) TenantStats() map[string]Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Stats, len(c.tenantStats))
	for t, st := range c.tenantStats {
		out[t] = *st
	}
	for _, e := range c.byFP {
		st := out[e.Tenant]
		st.Entries++
		if e.Session.Done() {
			st.Converged++
		}
		out[e.Tenant] = st
	}
	return out
}
