package plancache

import (
	"fmt"

	"repro/internal/core"
)

// Dataset-epoch and tenant-lifecycle operations (ROADMAP items 5a and 5d).
// All three touch engine state through the sessions they reopen or release
// (plan retirement returns arena buffers to the engine pool), so — like
// Invoke — the caller must hold the engine-ownership lock of the shard this
// cache belongs to. The internal/server mutation path holds every shard's
// lock while it swaps a tenant's catalog and calls these.

// ReopenTenantForData marks every one of tenant's sessions stale after a
// dataset epoch bump and reopens them warm (core.Session.ReopenForData):
// converged sessions re-baseline their learned plan on the new data with a
// bounded instance, still-adapting sessions fold their partial instance and
// continue from the best plan so far. Sessions with no plan to seed from are
// dropped without persistence. Returns how many sessions were reopened warm
// and how many dropped.
func (c *Cache) ReopenTenantForData(tenant string, extraRuns int) (reopened, dropped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var victims []*Entry
	for _, e := range c.byFP {
		if e.Tenant != tenant {
			continue
		}
		before := e.Session.DataReopens()
		if !e.Session.ReopenForData(extraRuns) {
			victims = append(victims, e)
			continue
		}
		if e.Session.DataReopens() > before {
			reopened++
		}
		e.resetDrift()
	}
	for _, e := range victims {
		// Old-epoch state with no plan: not worth persisting.
		c.removeLocked(e, false)
		dropped++
	}
	c.dataReopens += int64(reopened)
	c.tenantCounterLocked(tenant).DataReopens += int64(reopened)
	return reopened, dropped
}

// RestoreWarm inserts a session rehydrated from a store record whose dataset
// epoch no longer matches the live dataset: the caller has already reopened
// it warm (ReopenForData), so unlike Restore the session need not be Done —
// it serves as a warm seed and re-converges on the request stream. Counted
// as a warm seed, not a rehydration.
func (c *Cache) RestoreWarm(tenant, fp, query string, sess *core.Session) *Entry {
	if sess == nil || sess.Best() == nil {
		return nil
	}
	sess.SetStaleness(c.cfg.Staleness)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byFP[fp]; ok {
		return nil
	}
	c.seq++
	e := &Entry{
		ID:          fmt.Sprintf("%s%d", c.cfg.IDPrefix, c.seq),
		Fingerprint: fp,
		Query:       query,
		Tenant:      tenant,
		Session:     sess,
		cache:       c,
		seq:         c.seq,
		convShare:   -1,
	}
	c.byFP[fp] = e
	c.byID[e.ID] = e
	c.warmSeeds++
	c.tenantCounterLocked(tenant).WarmSeeds++
	if c.tenantEntries == nil {
		c.tenantEntries = map[string]int{}
	}
	c.tenantEntries[tenant]++
	c.tick++
	e.lastUsed = c.tick
	c.evictOverflowLocked(e)
	return e
}

// EvictTenant removes every session belonging to tenant — the tenant-removal
// drain. With persist set, converged sessions are handed to the persistence
// hook on the way out, so a later re-add of the same dataset rehydrates hot.
// The tenant's mix signature and quota are dropped with its sessions.
// Returns how many sessions were removed.
func (c *Cache) EvictTenant(tenant string, persist bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var victims []*Entry
	for _, e := range c.byFP {
		if e.Tenant == tenant {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		c.removeLocked(e, persist)
	}
	delete(c.mixes, tenant)
	delete(c.quotas, tenant)
	return len(victims)
}
