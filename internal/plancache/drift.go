package plancache

import "math"

// Workload-drift detection (ROADMAP item 5b). Staleness detection
// (core.StalenessConfig) deliberately ignores throttled servings: a converged
// plan executed under an admission core budget below its width is slow
// because of the budget, not the machine, so feeding those latencies to the
// staleness detector would reopen sessions on every busy period. But when the
// *workload mix* shifts — a query that converged as the tenant's dominant
// (and therefore mostly unthrottled) query becomes a minority query that
// mostly serves under small budgets — that throttled latency IS the session's
// new reality, and the wide plan it converged on is the wrong plan for it.
//
// The drift detector fills exactly that gap. Per tenant, the cache tracks a
// sliding query-mix signature (the share each fingerprint holds of the
// tenant's recent invocations); per entry, it snapshots the entry's own share
// at convergence time and watches a window of post-convergence servings —
// throttled or not — against the converged expectation. When a sustained
// fraction of the window is out of band AND the entry's mix share has moved
// materially from its convergence-time share, the session reopens via
// core.Session.ReopenForDrift, sized to the core budget it has actually been
// serving under, and re-converges onto a plan that fits the new regime.
//
// Both gates are necessary: the out-of-band window alone would trip on any
// transient busy burst (and a machine change is staleness detection's job);
// the mix-share gate alone would trip on harmless mix shifts whose latencies
// still meet expectations.

// DriftConfig parameterizes per-tenant workload-drift detection.
type DriftConfig struct {
	// Band is the tolerated relative deviation of an observed converged
	// serving run (throttled or not) from the converged expectation.
	// Band <= 0 disables drift detection.
	Band float64
	// Window is how many recent converged servings of an entry are watched
	// (default 8). Unlike staleness detection the rule is windowed, not
	// consecutive: under admission interleaving, unthrottled servings of the
	// wide plan stay in band and would reset any consecutive counter.
	Window int
	// Trip is how many of the Window servings must be out of band to trip a
	// reopen (default 6).
	Trip int
	// MixWindow is the length of the per-tenant query-mix ring the share
	// signature is computed over (default 64 invocations).
	MixWindow int
	// MixDelta is the minimum absolute change of the entry's mix share
	// (current vs convergence-time) required to attribute out-of-band
	// latency to workload drift (default 0.2).
	MixDelta float64
}

// DefaultDriftConfig mirrors the staleness band with a 6-of-8 window over a
// 64-invocation mix signature.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Band: 0.35, Window: 8, Trip: 6, MixWindow: 64, MixDelta: 0.2}
}

// enabled reports whether drift detection is active.
func (d DriftConfig) enabled() bool { return d.Band > 0 }

// withDefaults fills the zero fields of an enabled config.
func (d DriftConfig) withDefaults() DriftConfig {
	if !d.enabled() {
		return d
	}
	if d.Window <= 0 {
		d.Window = 8
	}
	if d.Trip <= 0 || d.Trip > d.Window {
		d.Trip = d.Window * 3 / 4
		if d.Trip < 1 {
			d.Trip = 1
		}
	}
	if d.MixWindow <= 0 {
		d.MixWindow = 64
	}
	if d.MixDelta <= 0 {
		d.MixDelta = 0.2
	}
	return d
}

// mixWindow is one tenant's sliding query-mix signature: a ring of the last
// MixWindow invocation fingerprints with per-fingerprint counts maintained
// incrementally, so share lookups are O(1).
type mixWindow struct {
	ring   []string
	next   int
	filled int
	counts map[string]int
}

func newMixWindow(n int) *mixWindow {
	return &mixWindow{ring: make([]string, n), counts: make(map[string]int)}
}

// observe records one invocation of fp and returns fp's share of the window.
func (m *mixWindow) observe(fp string) float64 {
	if m.filled == len(m.ring) {
		old := m.ring[m.next]
		if m.counts[old] <= 1 {
			delete(m.counts, old)
		} else {
			m.counts[old]--
		}
	} else {
		m.filled++
	}
	m.ring[m.next] = fp
	m.counts[fp]++
	m.next = (m.next + 1) % len(m.ring)
	return float64(m.counts[fp]) / float64(m.filled)
}

// observeMixLocked feeds one invocation of fp into tenant's mix signature and
// returns fp's current share. Caller holds c.mu.
func (c *Cache) observeMixLocked(tenant, fp string) float64 {
	if c.mixes == nil {
		c.mixes = make(map[string]*mixWindow)
	}
	m, ok := c.mixes[tenant]
	if !ok {
		m = newMixWindow(c.cfg.Drift.MixWindow)
		c.mixes[tenant] = m
	}
	return m.observe(fp)
}

// observeDrift feeds one converged serving run into the entry's drift window
// and reopens the session when both the latency and the mix-share gates
// trip. ns is the serving latency, maxCores the admission budget it ran under
// (0 = unlimited), logical the machine's logical core count, share the
// entry's current mix share. Runs on the invocation path outside c.mu — the
// drift fields are only ever touched by the (caller-serialized) invocation
// stream, like the session itself.
func (c *Cache) observeDrift(e *Entry, ns float64, maxCores, logical int, share float64) bool {
	d := c.cfg.Drift
	expect := e.Session.ExpectNs()
	if expect <= 0 || ns <= 0 {
		return false
	}
	if e.convShare < 0 {
		// Restored (or pre-drift-era) session: no convergence-time share was
		// recorded. Adopt the current share as the baseline — drift is then
		// judged against the mix as it stood when serving resumed.
		e.convShare = share
	}
	out := math.Abs(ns-expect)/expect > d.Band
	if e.driftOut == nil {
		e.driftOut = make([]bool, d.Window)
	}
	if e.driftLen == d.Window {
		if e.driftOut[e.driftIdx] {
			e.driftOuts--
		}
	} else {
		e.driftLen++
	}
	e.driftOut[e.driftIdx] = out
	e.driftIdx = (e.driftIdx + 1) % d.Window
	if out {
		e.driftOuts++
		b := maxCores
		if b <= 0 || b > logical {
			b = logical
		}
		e.driftBudget = b
	}
	if e.driftOuts < d.Trip {
		return false
	}
	if math.Abs(share-e.convShare) < d.MixDelta {
		return false
	}
	if !e.Session.ReopenForDrift(ns, e.driftBudget) {
		return false
	}
	e.resetDrift()
	return true
}

// resetDrift clears the entry's drift window and convergence-time share; the
// next done-transition records a fresh share.
func (e *Entry) resetDrift() {
	e.driftOut = nil
	e.driftIdx, e.driftLen, e.driftOuts, e.driftBudget = 0, 0, 0, 0
	e.convShare = -1
}
