package plancache

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sim"
)

// TestCacheStalenessReopensAndPersistsNewConvergence drives the full
// serving-layer staleness loop: converge through the cache, lose half the
// machine, watch the converged serving path trip the detector, re-converge
// on the shrunken machine, and verify the persistence hook fires again for
// the new convergence (the store is updated only on done transitions).
func TestCacheStalenessReopensAndPersistsNewConvergence(t *testing.T) {
	eng := newEngine(t)
	var persisted atomic.Int64
	c := New(eng, Config{
		Staleness: core.DefaultStalenessConfig(),
		Persist:   func(*Entry) { persisted.Add(1) },
	})
	fp := Fingerprint("test-db", "tpch:q6")
	invoke := func() *Result {
		t.Helper()
		r, err := c.Invoke(fp, "tpch:q6", q6(), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	var r *Result
	for i := 0; i < 400; i++ {
		if r = invoke(); r.Invocation.Converged {
			break
		}
	}
	if !r.Invocation.Converged {
		t.Fatal("session never converged")
	}
	if got := persisted.Load(); got != 1 {
		t.Fatalf("persisted %d times before the fault, want 1", got)
	}
	for i := 0; i < 3; i++ {
		if r = invoke(); r.Invocation.Reopened {
			t.Fatal("in-band converged serving reopened the session")
		}
	}

	// Losing half the machine costs the DOP-8 plan only ~20% (NUMA) — within
	// the band. Take the machine down to 4 cores: a 3×+ blowout.
	eng.Machine().InjectFault(sim.FaultEvent{Kind: sim.FaultCoreLoss, Socket: 0, Count: 16})
	eng.Machine().InjectFault(sim.FaultEvent{Kind: sim.FaultCoreLoss, Socket: 1, Count: 12})

	var staleNs float64
	reopened := false
	for i := 0; i < 10; i++ {
		r = invoke()
		staleNs = r.Invocation.LatencyNs
		if r.Invocation.Reopened {
			reopened = true
			break
		}
	}
	if !reopened {
		t.Fatalf("staleness never tripped through the converged serving path (stale %.0f)", staleNs)
	}
	if !r.Invocation.Converged {
		t.Fatal("the tripping invocation was served converged and must say so")
	}
	if st := c.Stats(); st.Reconvergences != 1 {
		t.Fatalf("cache reconvergences = %d, want 1", st.Reconvergences)
	}
	if ts := c.TenantStats()[""]; ts.Reconvergences != 1 {
		t.Fatalf("tenant reconvergences = %d, want 1", ts.Reconvergences)
	}

	// Subsequent invocations are adaptive runs again and re-converge.
	for i := 0; i < 300; i++ {
		if r = invoke(); r.Invocation.Converged {
			break
		}
	}
	if !r.Invocation.Converged {
		t.Fatal("re-convergence did not halt within 300 invocations")
	}
	if got := persisted.Load(); got != 2 {
		t.Fatalf("persisted %d times after re-convergence, want 2 (once per convergence)", got)
	}
	post := invoke()
	if post.Invocation.LatencyNs >= staleNs {
		t.Fatalf("re-converged serving (%.0f ns) does not beat the stale plan (%.0f ns)",
			post.Invocation.LatencyNs, staleNs)
	}
	t.Logf("stale %.0f ns → re-converged %.0f ns", staleNs, post.Invocation.LatencyNs)
}

// TestFrozenInvocationsServeWithoutSteppingOrReopening pins degraded-mode
// semantics: frozen invocations execute from the session's current state but
// never advance adaptation and never feed staleness detection.
func TestFrozenInvocationsServeWithoutSteppingOrReopening(t *testing.T) {
	eng := newEngine(t)
	c := New(eng, Config{Staleness: core.DefaultStalenessConfig()})
	fp := Fingerprint("test-db", "tpch:q6")
	frozen := func() *Result {
		t.Helper()
		r, err := c.InvokeTenantFrozen("", fp, "tpch:q6", q6(), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Frozen while adapting: the serial plan executes, the session does not
	// step — run index stays at -1 (no adaptive run has happened).
	for i := 0; i < 3; i++ {
		r := frozen()
		if !r.Invocation.Frozen {
			t.Fatalf("frozen invocation %d not marked frozen", i)
		}
		if r.Invocation.Run != -1 {
			t.Fatalf("frozen invocation %d advanced adaptation to run %d", i, r.Invocation.Run)
		}
	}

	// Thaw and converge normally.
	var r *Result
	for i := 0; i < 400; i++ {
		var err error
		if r, err = c.Invoke(fp, "tpch:q6", q6(), exec.JobOptions{}); err != nil {
			t.Fatal(err)
		}
		if r.Invocation.Converged {
			break
		}
	}
	if !r.Invocation.Converged {
		t.Fatal("session never converged")
	}

	// Frozen after convergence on a faulted machine: serving latencies blow
	// out, but frozen invocations must not trip staleness detection.
	eng.Machine().InjectFault(sim.FaultEvent{Kind: sim.FaultCoreLoss, Socket: 0, Count: 16})
	eng.Machine().InjectFault(sim.FaultEvent{Kind: sim.FaultCoreLoss, Socket: 1, Count: 12})
	for i := 0; i < 8; i++ {
		r := frozen()
		if r.Invocation.Reopened || !r.Invocation.Converged {
			t.Fatalf("frozen invocation %d reopened convergence", i)
		}
	}
	if st := c.Stats(); st.Reconvergences != 0 {
		t.Fatalf("frozen servings caused %d reconvergences", st.Reconvergences)
	}
}

// TestEvictionRacesInFlightReconvergence is the satellite race test: while a
// staleness-reopened session is re-converging on the serialized invoke path,
// another goroutine hammers the cache's concurrent surface — stats, listings,
// traces, and evictions. Evictions that land mid-invocation must defer the
// session release until the run completes (go test -race covers the file).
func TestEvictionRacesInFlightReconvergence(t *testing.T) {
	eng := newEngine(t)
	var persisted atomic.Int64
	c := New(eng, Config{
		Staleness: core.DefaultStalenessConfig(),
		Persist:   func(*Entry) { persisted.Add(1) },
	})
	fp := Fingerprint("test-db", "tpch:q6")
	invoke := func() *Result {
		t.Helper()
		r, err := c.Invoke(fp, "tpch:q6", q6(), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Converge, fault, and trip the reopen deterministically first.
	var r *Result
	for i := 0; i < 400; i++ {
		if r = invoke(); r.Invocation.Converged {
			break
		}
	}
	if !r.Invocation.Converged {
		t.Fatal("session never converged")
	}
	eng.Machine().InjectFault(sim.FaultEvent{Kind: sim.FaultCoreLoss, Socket: 0, Count: 16})
	eng.Machine().InjectFault(sim.FaultEvent{Kind: sim.FaultCoreLoss, Socket: 1, Count: 12})
	reopened := false
	for i := 0; i < 10 && !reopened; i++ {
		reopened = invoke().Invocation.Reopened
	}
	if !reopened {
		t.Fatal("staleness never tripped")
	}

	// Now race the in-flight re-convergence against the concurrent surface.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Stats()
			c.TenantStats()
			for _, e := range c.List() {
				e.Hits()
				e.Trace()
			}
			if e := c.GetFingerprint(fp); e != nil {
				_ = e.Session.Done()
			}
			if i%7 == 6 {
				c.Evict(fp)
			}
		}
	}()
	for i := 0; i < 150; i++ {
		invoke()
	}
	close(stop)
	wg.Wait()

	// The cache survived the churn coherently: the fingerprint still (or
	// again) resolves, serves, and the eviction counter shows the race
	// actually exercised evictions.
	final := invoke()
	if final.Entry == nil || final.Invocation.LatencyNs <= 0 {
		t.Fatal("cache incoherent after eviction churn")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("churn never evicted — the race was not exercised")
	}
	if st.Entries != 1 {
		t.Fatalf("expected the single fingerprint live, got %d entries", st.Entries)
	}
	t.Logf("evictions %d, reconvergences %d, persists %d", st.Evictions, st.Reconvergences, persisted.Load())
}
