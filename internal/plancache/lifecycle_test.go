package plancache

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// appendTail grows table by n rows recycling its own values, so the append is
// schema-correct for any table.
func appendTail(t *testing.T, cat *storage.Catalog, table string, n int) *storage.Catalog {
	t.Helper()
	tab := cat.MustTable(table)
	cols := map[string]storage.ColumnAppend{}
	for _, name := range tab.ColumnNames() {
		col := tab.MustColumn(name)
		if col.Data().IsString() {
			vals := make([]string, n)
			for i := range vals {
				vals[i] = col.Data().StringAt((i * 7) % col.Len())
			}
			cols[name] = storage.ColumnAppend{Strs: vals}
		} else {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = col.At((i * 7) % col.Len())
			}
			cols[name] = storage.ColumnAppend{Ints: vals}
		}
	}
	ncat, err := cat.AppendRows(table, cols)
	if err != nil {
		t.Fatal(err)
	}
	return ncat
}

// TestReopenTenantForData: an epoch bump reopens only the bumped tenant's
// sessions; they re-converge warm against the new catalog and results match
// a fresh serial execution on the mutated data.
func TestReopenTenantForData(t *testing.T) {
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	eng := exec.NewEngine(cat, sim.TwoSocket(), cost.Default())
	c := New(eng, Config{Staleness: core.DefaultStalenessConfig()})
	fpA := Fingerprint("db-a", "tpch:q6")
	fpB := Fingerprint("db-b", "tpch:q6")
	for i := 0; i < 400; i++ {
		if _, err := c.InvokeTenant("a", fpA, "tpch:q6", q6(), exec.JobOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.InvokeTenant("b", fpB, "tpch:q6", q6(), exec.JobOptions{}); err != nil {
			t.Fatal(err)
		}
		if c.GetFingerprint(fpA).Session.Done() && c.GetFingerprint(fpB).Session.Done() {
			break
		}
	}
	if !c.GetFingerprint(fpA).Session.Done() || !c.GetFingerprint(fpB).Session.Done() {
		t.Fatal("sessions did not converge")
	}

	ncat := appendTail(t, cat, "lineitem", 50_000)
	reopened, dropped := c.ReopenTenantForData("a", 0)
	if reopened != 1 || dropped != 0 {
		t.Fatalf("reopened=%d dropped=%d, want 1/0", reopened, dropped)
	}
	if c.GetFingerprint(fpA).Session.Done() {
		t.Fatal("tenant a session still done after epoch bump")
	}
	if !c.GetFingerprint(fpB).Session.Done() {
		t.Fatal("tenant b session was collaterally reopened")
	}
	if st := c.Stats(); st.DataReopens != 1 {
		t.Fatalf("Stats.DataReopens = %d, want 1", st.DataReopens)
	}

	var last *Result
	for i := 0; i < 100; i++ {
		r, err := c.InvokeTenant("a", fpA, "tpch:q6", q6(), exec.JobOptions{Catalog: ncat})
		if err != nil {
			t.Fatal(err)
		}
		last = r
		if r.Entry.Session.Done() {
			break
		}
	}
	if !c.GetFingerprint(fpA).Session.Done() {
		t.Fatal("tenant a did not re-converge warm")
	}
	want, _, err := exec.NewEngine(ncat, sim.TwoSocket(), cost.Default()).Execute(tpch.MustQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	if !exec.ResultsEqual(last.Values, want) {
		t.Fatal("post-churn results differ from serial execution on the mutated data")
	}
}

// TestEvictTenantPersistsAndPurges: the tenant-removal drain flushes the
// tenant's converged sessions through the persistence hook, releases its
// entries and mix signature, and leaves other tenants alone.
func TestEvictTenantPersistsAndPurges(t *testing.T) {
	eng := newEngine(t)
	persisted := map[string]int{}
	c := New(eng, Config{
		Drift:   DefaultDriftConfig(),
		Persist: func(e *Entry) { persisted[e.Tenant]++ },
	})
	fpA := Fingerprint("db-a", "tpch:q6")
	fpB := Fingerprint("db-b", "tpch:q6")
	for i := 0; i < 400; i++ {
		if _, err := c.InvokeTenant("a", fpA, "tpch:q6", q6(), exec.JobOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.InvokeTenant("b", fpB, "tpch:q6", q6(), exec.JobOptions{}); err != nil {
			t.Fatal(err)
		}
		if c.GetFingerprint(fpA).Session.Done() && c.GetFingerprint(fpB).Session.Done() {
			break
		}
	}
	base := persisted["a"] // done-transition persist

	if n := c.EvictTenant("a", true); n != 1 {
		t.Fatalf("EvictTenant removed %d entries, want 1", n)
	}
	if persisted["a"] != base+1 {
		t.Fatalf("eviction persisted %d times, want %d", persisted["a"], base+1)
	}
	if c.GetFingerprint(fpA) != nil {
		t.Fatal("tenant a entry survived eviction")
	}
	if c.GetFingerprint(fpB) == nil {
		t.Fatal("tenant b entry was collaterally evicted")
	}
	if _, ok := c.mixes["a"]; ok {
		t.Fatal("tenant a mix signature survived eviction")
	}
	if n := c.EvictTenant("a", true); n != 0 {
		t.Fatalf("second eviction removed %d entries", n)
	}
}

// TestRestoreWarmSeedsNonDoneSession: a store record whose epoch mismatches
// rehydrates as a warm seed — a non-done session the request stream then
// re-converges — and counts as a warm seed, not a rehydration.
func TestRestoreWarmSeedsNonDoneSession(t *testing.T) {
	eng := newEngine(t)

	// Build a converged session out-of-band, snapshot, restore, reopen warm:
	// the store rehydration path for an epoch-mismatched record.
	donor := core.NewSession(eng, tpch.MustQuery(6), core.DefaultMutationConfig(), core.ConvergenceConfig{})
	if _, err := donor.Converge(); err != nil {
		t.Fatal(err)
	}
	snap, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.RestoreSession(eng, core.DefaultMutationConfig(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.ReopenForData(0) {
		t.Fatal("restored session refused data reopen")
	}

	c := New(eng, Config{})
	fp := Fingerprint("test-db", "tpch:q6")
	if e := c.RestoreWarm("", fp, "tpch:q6", sess); e == nil {
		t.Fatal("RestoreWarm rejected the warm seed")
	}
	if c.RestoreWarm("", fp, "tpch:q6", sess) != nil {
		t.Fatal("duplicate RestoreWarm succeeded")
	}
	st := c.Stats()
	if st.WarmSeeds != 1 || st.Rehydrated != 0 {
		t.Fatalf("WarmSeeds=%d Rehydrated=%d, want 1/0", st.WarmSeeds, st.Rehydrated)
	}

	// The warm seed serves immediately (cache hit) and re-converges on the
	// request stream in bounded runs.
	for i := 0; i < 100; i++ {
		r, err := c.Invoke(fp, "tpch:q6", q6(), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Created {
			t.Fatal("warm seed missed — invocation created a new session")
		}
		if r.Entry.Session.Done() {
			return
		}
	}
	t.Fatal("warm seed did not re-converge within 100 runs")
}
