package plancache

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/tpch"
)

func q14() func() (*plan.Plan, error) {
	return func() (*plan.Plan, error) { return tpch.Query(14) }
}

func TestMixWindowShares(t *testing.T) {
	m := newMixWindow(4)
	if got := m.observe("a"); got != 1.0 {
		t.Fatalf("first observation share = %v, want 1", got)
	}
	m.observe("b")
	m.observe("a")
	if got := m.observe("a"); got != 0.75 {
		t.Fatalf("share = %v, want 0.75", got)
	}
	// Ring full: the oldest "a" falls out as "c" enters.
	if got := m.observe("c"); got != 0.25 {
		t.Fatalf("share(c) = %v, want 0.25", got)
	}
	if got := m.counts["a"]; got != 2 {
		t.Fatalf("count(a) = %d after eviction, want 2", got)
	}
	m.observe("c")
	m.observe("c")
	m.observe("c")
	if got := m.counts["a"]; got != 0 {
		t.Fatalf("count(a) = %d, want 0 (fully evicted)", got)
	}
}

// TestDriftDetectorReopensUnderBudget is the workload-drift acceptance path:
// a query converges as its tenant's only (unthrottled) query, the mix then
// rotates so it serves throttled under a small admission budget, and the
// drift detector — not staleness, which must skip throttled runs — reopens it
// sized to that budget. Post-reopen it re-converges and keeps serving
// correct results.
func TestDriftDetectorReopensUnderBudget(t *testing.T) {
	eng := newEngine(t)
	c := New(eng, Config{
		Staleness: core.DefaultStalenessConfig(),
		Drift:     DriftConfig{Band: 0.35, Window: 8, Trip: 6, MixWindow: 16, MixDelta: 0.2},
	})
	fp6 := Fingerprint("test-db", "tpch:q6")
	fp14 := Fingerprint("test-db", "tpch:q14")

	var firstVals []exec.Value
	for i := 0; i < 400; i++ {
		r, err := c.Invoke(fp6, "tpch:q6", q6(), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstVals = r.Values
		}
		if r.Entry.Session.Done() {
			break
		}
	}
	e6 := c.GetFingerprint(fp6)
	if !e6.Session.Done() {
		t.Fatal("q6 did not converge")
	}
	if e6.convShare != 1.0 {
		t.Fatalf("convergence-time share = %v, want 1.0", e6.convShare)
	}

	// Rotate the mix: q14 dominates, q6 becomes a minority query served
	// under a 2-core admission budget.
	drifted := false
	budget := 2
	for i := 0; i < 200 && !drifted; i++ {
		for j := 0; j < 3; j++ {
			if _, err := c.Invoke(fp14, "tpch:q14", q14(), exec.JobOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		r, err := c.Invoke(fp6, "tpch:q6", q6(), exec.JobOptions{MaxCores: budget})
		if err != nil {
			t.Fatal(err)
		}
		if r.Invocation.Reopened {
			t.Fatal("staleness reopened on a throttled serving — must be skipped")
		}
		drifted = r.Invocation.DriftReopened
	}
	if !drifted {
		t.Fatal("drift detector never tripped")
	}
	if e6.Session.Done() {
		t.Fatal("session still done after drift reopen")
	}
	if got := e6.Session.Convergence().Config().Cores; got != budget {
		t.Fatalf("reopened instance sized to %d cores, want the observed budget %d", got, budget)
	}
	if st := c.Stats(); st.DriftReopens != 1 {
		t.Fatalf("Stats.DriftReopens = %d, want 1", st.DriftReopens)
	}

	// Re-converge under the budget; results must stay identical.
	for i := 0; i < 400 && !e6.Session.Done(); i++ {
		r, err := c.Invoke(fp6, "tpch:q6", q6(), exec.JobOptions{MaxCores: budget})
		if err != nil {
			t.Fatal(err)
		}
		if !exec.ResultsEqual(firstVals, r.Values) {
			t.Fatal("post-drift results diverge")
		}
	}
	if !e6.Session.Done() {
		t.Fatal("did not re-converge under the budget")
	}
	ts := c.TenantStats()
	if ts[""].DriftReopens != 1 {
		t.Fatalf("tenant DriftReopens = %d, want 1", ts[""].DriftReopens)
	}
}

// TestDriftIgnoresStableMix: out-of-band latency alone (mix share unchanged)
// must not trip the drift detector — that case belongs to staleness/admission,
// not workload drift.
func TestDriftIgnoresStableMix(t *testing.T) {
	eng := newEngine(t)
	c := New(eng, Config{
		Drift: DriftConfig{Band: 0.35, Window: 4, Trip: 3, MixWindow: 8, MixDelta: 0.2},
	})
	fp := Fingerprint("test-db", "tpch:q6")
	for i := 0; i < 400; i++ {
		r, err := c.Invoke(fp, "tpch:q6", q6(), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Entry.Session.Done() {
			break
		}
	}
	e := c.GetFingerprint(fp)
	if !e.Session.Done() {
		t.Fatal("did not converge")
	}
	// Throttled servings, far out of band — but the mix is 100% this query
	// before and after, so the share gate must hold the reopen back.
	for i := 0; i < 20; i++ {
		r, err := c.Invoke(fp, "tpch:q6", q6(), exec.JobOptions{MaxCores: 2})
		if err != nil {
			t.Fatal(err)
		}
		if r.Invocation.DriftReopened {
			t.Fatal("drift tripped without a mix change")
		}
	}
	if !e.Session.Done() {
		t.Fatal("session reopened without a mix change")
	}
}
