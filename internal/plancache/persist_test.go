package plancache

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/store"
	"repro/internal/tpch"
)

const testDB = "tpch:sf=0.5:seed=42"

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d / m
}

func buildQ(qn int) func() (*plan.Plan, error) {
	return func() (*plan.Plan, error) { return tpch.Query(qn) }
}

func convergeFP(t *testing.T, c *Cache, fp, query string, qn int) *Result {
	t.Helper()
	var last *Result
	for i := 0; i < 600; i++ {
		r, err := c.Invoke(fp, query, buildQ(qn), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		last = r
		if r.Invocation.Converged {
			return r
		}
	}
	t.Fatalf("%s did not converge; last %+v", query, last.Invocation)
	return nil
}

func TestPersistHookFiresOnConvergenceAndEvictionOnly(t *testing.T) {
	eng := newEngine(t)
	var persisted []string
	c := New(eng, Config{Persist: func(e *Entry) {
		persisted = append(persisted, e.Fingerprint)
	}})
	fp := Fingerprint(testDB, "tpch:q6")
	convergeFP(t, c, fp, "tpch:q6", 6)
	if len(persisted) != 1 || persisted[0] != fp {
		t.Fatalf("persist after convergence: %v", persisted)
	}
	// Hot serving must not re-persist.
	for i := 0; i < 50; i++ {
		if _, err := c.Invoke(fp, "tpch:q6", q6(), exec.JobOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(persisted) != 1 {
		t.Fatalf("hot serving re-persisted: %v", persisted)
	}
	// Eviction of the converged entry persists its final state once more.
	c.Evict(fp)
	if len(persisted) != 2 {
		t.Fatalf("eviction did not persist: %v", persisted)
	}
	// An unconverged session's eviction does not persist.
	fp14 := Fingerprint(testDB, "tpch:q14")
	if _, err := c.Invoke(fp14, "tpch:q14", buildQ(14), exec.JobOptions{}); err != nil {
		t.Fatal(err)
	}
	c.Evict(fp14)
	if len(persisted) != 2 {
		t.Fatalf("unconverged eviction persisted: %v", persisted)
	}
}

// TestPersistRehydrateServeBitIdentical is the round-trip property test:
// converge sessions through a cache wired to a real store, restart the
// store, rehydrate a second cache on a fresh engine, and require serving
// that is bit-identical to the never-restarted twin with identical
// convergence state. Two queries cover both mutation shapes (q6 converges
// through basic operator splits; q14's join side exercises the medium
// exchange-union mutation).
func TestPersistRehydrateServeBitIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sy := store.NewSynchronizer(st)

	engA := newEngine(t)
	cacheA := New(engA, Config{})
	cacheA.cfg.Persist = func(e *Entry) {
		snap, err := e.Session.Snapshot()
		if err != nil {
			t.Errorf("snapshot %s: %v", e.Fingerprint, err)
			return
		}
		sy.Enqueue(store.NewRecord(e.Fingerprint, testDB, e.Tenant, e.Query, 0, snap, engA.Params()))
	}

	queries := map[string]int{"tpch:q6": 6, "tpch:q14": 14}
	for q, n := range queries {
		convergeFP(t, cacheA, Fingerprint(testDB, q), q, n)
	}
	if err := sy.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the store, rehydrate a fresh cache on a fresh
	// engine over the same dataset.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != len(queries) {
		t.Fatalf("store has %d records, want %d", st2.Len(), len(queries))
	}
	engB := newEngine(t)
	cacheB := New(engB, Config{})
	for _, rec := range st2.Records() {
		if rec.DBIdentity != testDB {
			t.Fatalf("record %s has identity %q", rec.Fingerprint, rec.DBIdentity)
		}
		sess, err := rec.RestoreSession(engB, cacheB.cfg.Mutation)
		if err != nil {
			t.Fatal(err)
		}
		if cacheB.Restore(rec.Tenant, rec.Fingerprint, rec.Query, sess) == nil {
			t.Fatalf("Restore rejected record %s", rec.Fingerprint)
		}
	}
	if got := cacheB.Stats().Rehydrated; got != int64(len(queries)) {
		t.Fatalf("Rehydrated = %d, want %d", got, len(queries))
	}

	for q, n := range queries {
		fp := Fingerprint(testDB, q)
		n := n
		// First post-restart invocation: a hit on the rehydrated session,
		// served converged.
		rB, err := cacheB.Invoke(fp, q, buildQ(n), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rB.Created || !rB.Invocation.Converged {
			t.Fatalf("%s: first post-restart invocation not served from rehydrated session: %+v", q, rB.Invocation)
		}
		rA, err := cacheA.Invoke(fp, q, buildQ(n), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Bit-identical serving.
		if !exec.ResultsEqual(rA.Values, rB.Values) {
			t.Fatalf("%s: results diverge after rehydration", q)
		}
		if rA.Invocation.DOP != rB.Invocation.DOP {
			t.Fatalf("%s: DOP diverges: twin %+v restored %+v", q, rA.Invocation, rB.Invocation)
		}
		// Steady-state latency matches exactly from the second restored
		// invocation on (the first pays the plan's one-time compilation,
		// which the twin paid during adaptation). The compare carries a
		// ulp-scale tolerance: the twin engine's virtual clock sits much
		// further along, so its makespan subtraction rounds differently.
		rA2, err := cacheA.Invoke(fp, q, buildQ(n), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rB2, err := cacheB.Invoke(fp, q, buildQ(n), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(rA2.Invocation.LatencyNs, rB2.Invocation.LatencyNs) > 1e-9 {
			t.Fatalf("%s: steady-state latency diverges: twin %+v restored %+v", q, rA2.Invocation, rB2.Invocation)
		}
		// Identical convergence state vs the never-restarted twin.
		sA := cacheA.GetFingerprint(fp).Session
		sB := cacheB.GetFingerprint(fp).Session
		repA, repB := sA.Report(), sB.Report()
		if repA.TotalRuns != repB.TotalRuns || repA.GMERun != repB.GMERun ||
			repA.GMENs != repB.GMENs || repA.SerialNs != repB.SerialNs {
			t.Fatalf("%s: convergence state diverges: %+v vs %+v", q, repA, repB)
		}
		if !reflect.DeepEqual(repA.History, repB.History) || !reflect.DeepEqual(repA.Outliers, repB.Outliers) {
			t.Fatalf("%s: history/outliers diverge", q)
		}
		if repA.BestPlan.String() != repB.BestPlan.String() {
			t.Fatalf("%s: best plans diverge:\n%s\nvs\n%s", q, repA.BestPlan, repB.BestPlan)
		}
	}
}
