package cluster

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/store"
)

// ReplicationStats is the replicator's slice of the cluster stats block.
type ReplicationStats struct {
	// QueueDepth is the write-behind backlog not yet shipped.
	QueueDepth int `json:"queue_depth"`
	// ReplicaSet is how many distinct sessions (tenant+fingerprint) this
	// node can seed a joining or recovering peer with.
	ReplicaSet int `json:"replica_set"`
	// RecordsSent counts record deliveries (records × peers).
	RecordsSent int64 `json:"records_sent"`
	// RecordsApplied counts replicated records this node accepted from
	// peers and applied to its own cache.
	RecordsApplied int64 `json:"records_applied"`
	// SendFailures counts batches a peer never acknowledged (retries
	// exhausted or breaker open); the peer catches up via a sync push when
	// its breaker closes.
	SendFailures int64 `json:"send_failures"`
	// SyncPushes counts full replica-set pushes (peer join, peer recovery).
	SyncPushes int64 `json:"sync_pushes"`
}

// replicator ships convergence records to every peer, write-behind: the
// serve path enqueues and returns, a single background goroutine drains the
// queue in batches, encodes each batch once as an APQXPORT document (the
// same bytes the plan-export surface writes to disk) and POSTs it to each
// live peer's /cluster/replicate. It also keeps the replica set — the
// latest record per session — to push whole to a peer that joins or
// recovers, covering everything the peer missed. The shape deliberately
// mirrors the store.Synchronizer: convergence is rare and replication must
// never sit on the serve path.
type replicator struct {
	c    *Coordinator
	mu   sync.Mutex
	cond *sync.Cond
	// queue is the unshipped backlog; set maps tenant+fingerprint to the
	// newest record for that session.
	queue  []store.Record
	set    map[string]store.Record
	closed bool
	done   chan struct{}

	sent     atomic.Int64
	applied  atomic.Int64
	failures atomic.Int64
	syncs    atomic.Int64
}

func newReplicator(c *Coordinator) *replicator {
	r := &replicator{c: c, set: make(map[string]store.Record), done: make(chan struct{})}
	r.cond = sync.NewCond(&r.mu)
	go r.run()
	return r
}

// replicaKey identifies a session: the fingerprint already encodes the DB
// identity, but two tenants over identical datasets share fingerprints, so
// the tenant tag disambiguates.
func replicaKey(rec *store.Record) string {
	return rec.Tenant + "\x00" + rec.Fingerprint
}

// enqueue hands one record to the write-behind goroutine; never blocks on
// the network.
func (r *replicator) enqueue(rec store.Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.queue = append(r.queue, rec)
	r.set[replicaKey(&rec)] = rec
	r.cond.Signal()
}

func (r *replicator) run() {
	defer close(r.done)
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if len(r.queue) == 0 && r.closed {
			r.mu.Unlock()
			return
		}
		batch := r.queue
		r.queue = nil
		r.mu.Unlock()
		// A burst of convergences coalesces into one document per peer.
		r.broadcast(batch)
	}
}

func (r *replicator) broadcast(batch []store.Record) {
	payload, err := store.EncodeRecords(batch)
	if err != nil {
		r.failures.Add(1)
		return
	}
	for _, p := range r.c.peerList() {
		if open, _, _ := p.brk.snapshot(); open {
			// The peer is deaf; don't stall the queue proving it. The sync
			// push on breaker close replays everything it missed.
			r.failures.Add(1)
			continue
		}
		r.send(p, payload, len(batch))
	}
}

// send delivers one document to one peer with the coordinator's bounded
// jittered retries.
func (r *replicator) send(p *peerState, payload []byte, n int) {
	for attempt := 0; attempt <= r.c.retries; attempt++ {
		if attempt > 0 && !r.c.backoff(context.Background(), attempt) {
			break
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.c.peerTimeout)
		err := p.rem.replicate(ctx, payload)
		cancel()
		if err == nil {
			r.sent.Add(int64(n))
			return
		}
	}
	r.failures.Add(1)
}

// syncTo pushes the full replica set to one peer — the join seed and the
// recovery catch-up. Sorted by session key so identical sets encode to
// identical documents.
func (r *replicator) syncTo(p *peerState) {
	r.mu.Lock()
	if len(r.set) == 0 {
		r.mu.Unlock()
		return
	}
	keys := make([]string, 0, len(r.set))
	for k := range r.set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]store.Record, 0, len(keys))
	for _, k := range keys {
		recs = append(recs, r.set[k])
	}
	r.mu.Unlock()
	payload, err := store.EncodeRecords(recs)
	if err != nil {
		r.failures.Add(1)
		return
	}
	r.syncs.Add(1)
	r.send(p, payload, len(recs))
}

func (r *replicator) stats() ReplicationStats {
	r.mu.Lock()
	depth, set := len(r.queue), len(r.set)
	r.mu.Unlock()
	return ReplicationStats{
		QueueDepth:     depth,
		ReplicaSet:     set,
		RecordsSent:    r.sent.Load(),
		RecordsApplied: r.applied.Load(),
		SendFailures:   r.failures.Load(),
		SyncPushes:     r.syncs.Load(),
	}
}

// close drains the queue (one final best-effort broadcast) and stops the
// goroutine.
func (r *replicator) close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	<-r.done
}
