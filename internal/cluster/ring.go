// Package cluster federates apqd daemons into one serving surface: a
// consistent-hash ring routes query fingerprints to owning nodes, an HTTP
// remote-shard client carries them there, per-peer breakers and bounded
// jittered retries absorb node failure, and a write-behind replicator ships
// converged plans peer-to-peer so the node a fingerprint fails over to
// re-converges warm instead of cold.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// vnodes is the number of virtual points each node contributes to the ring.
// More points smooth the ownership split between a handful of real nodes;
// 64 keeps the worst-case imbalance across 2–8 nodes under a few percent
// while the ring stays small enough to rebuild on every membership change.
const vnodes = 64

type ringPoint struct {
	hash uint64
	node string
}

// ring is a consistent-hash ring over node names. Ownership of a
// fingerprint is the first virtual point clockwise from the fingerprint's
// hash; the failover order is the subsequent distinct nodes in ring order.
// The consistent-hashing property is the membership contract: a node
// joining or leaving re-pins only the fingerprints whose owning arc moved,
// never the whole keyspace. Not safe for concurrent mutation — the
// coordinator guards it with its own lock.
type ring struct {
	points  []ringPoint
	members map[string]bool
}

func newRing() *ring {
	return &ring{members: make(map[string]bool)}
}

// ringHash must be deterministic across processes (every node computes
// ownership independently from the same names) and well-distributed over
// similar short strings — vnode labels differ by one suffix character, and
// FNV-style hashes cluster badly on those, skewing ownership several-fold.
// SHA-256 truncated to 64 bits costs a few hundred nanoseconds per routed
// request, far below one HTTP hop.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// add inserts a node's virtual points. Adding a member twice is a no-op.
func (r *ring) add(node string) {
	if r.members[node] {
		return
	}
	r.members[node] = true
	for i := 0; i < vnodes; i++ {
		r.points = append(r.points, ringPoint{ringHash(fmt.Sprintf("%s#%d", node, i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishing odds, but membership must be deterministic
		// across nodes regardless) break by name.
		return r.points[i].node < r.points[j].node
	})
}

// remove deletes a node's virtual points. Removing a non-member is a no-op.
func (r *ring) remove(node string) {
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// nodes returns the members in sorted order.
func (r *ring) nodes() []string {
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// sequence returns the distinct nodes in ring order starting at fp's
// position: sequence(fp)[0] owns fp, and the rest is the failover order a
// coordinator walks when the owner is down. Every member appears exactly
// once. Empty ring returns nil.
func (r *ring) sequence(fp string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(fp)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.members))
	out := make([]string, 0, len(r.members))
	for i := 0; len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// owner returns the first node in fp's failover sequence that alive admits
// (nil alive = first owner unconditionally), or "" on an empty ring or when
// no member is alive.
func (r *ring) owner(fp string, alive func(string) bool) string {
	for _, n := range r.sequence(fp) {
		if alive == nil || alive(n) {
			return n
		}
	}
	return ""
}
