package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// Peer names one remote daemon in the federation.
type Peer struct {
	// Name is the node's stable identity on the hash ring. Every node in
	// the federation must agree on every name — ring ownership is computed
	// independently on each node from the same names.
	Name string `json:"name"`
	// URL is the peer's base address (http://host:port).
	URL string `json:"url"`
}

// Config shapes a federation coordinator.
type Config struct {
	// Self is this node's own ring name (required).
	Self string
	// Peers is the initial remote membership; join/leave mutate it live.
	Peers []Peer
	// PeerTimeout bounds each remote attempt (default 2s).
	PeerTimeout time.Duration
	// Retries is how many times a failed remote attempt is retried on the
	// same peer before failing over (default 2; negative = never retry).
	Retries int
	// RetryBase is the first retry's backoff; subsequent retries double it,
	// jittered, capped at one second (default 25ms).
	RetryBase time.Duration
	// BreakerFailures is the consecutive-failure count that opens a peer's
	// breaker (default 3).
	BreakerFailures int
	// BreakerCooldown is how long an open peer breaker holds before
	// admitting a half-open probe attempt, pre-jitter (default 2s).
	BreakerCooldown time.Duration
	// ProbeInterval is the background health-probe cadence for breaker-open
	// peers; 0 defaults to 500ms, negative disables the prober.
	ProbeInterval time.Duration
	// NowFn and RandFn are test seams (clock and jitter source), same shape
	// as the per-shard breaker's. Defaults: time.Now, math/rand.
	NowFn  func() time.Time
	RandFn func() float64
}

// Coordinator federates the local daemon with its peers: it fronts the
// local HTTP surface, routes /query requests to the fingerprint's owning
// node on the consistent-hash ring, retries remote failures with jittered
// exponential backoff, trips a per-peer breaker after repeated failure —
// the per-shard breaker model lifted one level, from engine replica to
// whole node — and fails the fingerprint over to the next surviving node in
// ring order. A write-behind replicator ships every convergence record to
// the peers, so the failover target serves the re-pinned fingerprint from a
// warm replicated plan instead of re-converging cold.
type Coordinator struct {
	self        string
	local       *server.Server
	peerTimeout time.Duration
	retries     int
	retryBase   time.Duration
	brkFailures int
	brkCooldown time.Duration
	probeEvery  time.Duration
	nowFn       func() time.Time

	randMu sync.Mutex
	randFn func() float64

	mu    sync.RWMutex
	ring  *ring
	peers map[string]*peerState

	repl      *replicator
	handler   http.Handler
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	servedLocal atomic.Int64
	forwarded   atomic.Int64
	retried     atomic.Int64
	failovers   atomic.Int64
	recovered   atomic.Int64
	// resultBytesProxied counts APQRESULT payload bytes relayed verbatim
	// from remote owners to this node's clients.
	resultBytesProxied atomic.Int64
}

type peerState struct {
	rem *Remote
	brk peerBreaker
}

// peerBreaker is the per-shard breaker model one level up: consecutive
// serve-path failures against a peer open it, an open breaker routes the
// peer's fingerprints to the next ring node without a network hop, and
// after a jittered cooldown one request (or the background health probe)
// is admitted half-open — success closes it, returning ownership.
type peerBreaker struct {
	mu        sync.Mutex
	nowFn     func() time.Time
	randFn    func() float64
	threshold int
	cooldown  time.Duration
	failures  int
	open      bool
	openedAt  time.Time
	scale     float64
	trips     int64
}

func (b *peerBreaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	return b.nowFn().Sub(b.openedAt) >= time.Duration(float64(b.cooldown)*b.scale)
}

func (b *peerBreaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open {
		// A failure while open (the half-open probe lost) restarts the
		// cooldown with fresh jitter.
		b.openedAt = b.nowFn()
		b.scale = 1 + 0.5*b.randFn()
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.failures = 0
		b.open = true
		b.openedAt = b.nowFn()
		// Same jitter shape as the shard breaker: nodes that tripped on one
		// burst must not all probe the peer back in one burst.
		b.scale = 1 + 0.5*b.randFn()
		b.trips++
	}
}

func (b *peerBreaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.open = false
	b.failures = 0
}

func (b *peerBreaker) snapshot() (open bool, failures int, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open, b.failures, b.trips
}

// New builds a coordinator fronting local. The caller owns local's
// lifecycle; Close stops only the federation machinery.
func New(local *server.Server, cfg Config) (*Coordinator, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self node name is required")
	}
	c := &Coordinator{
		self:        cfg.Self,
		local:       local,
		peerTimeout: cfg.PeerTimeout,
		retries:     cfg.Retries,
		retryBase:   cfg.RetryBase,
		brkFailures: cfg.BreakerFailures,
		brkCooldown: cfg.BreakerCooldown,
		probeEvery:  cfg.ProbeInterval,
		nowFn:       cfg.NowFn,
		randFn:      cfg.RandFn,
		ring:        newRing(),
		peers:       make(map[string]*peerState),
		stop:        make(chan struct{}),
	}
	if c.peerTimeout <= 0 {
		c.peerTimeout = 2 * time.Second
	}
	if c.retries < 0 {
		c.retries = 0
	} else if cfg.Retries == 0 {
		c.retries = 2
	}
	if c.retryBase <= 0 {
		c.retryBase = 25 * time.Millisecond
	}
	if c.brkFailures <= 0 {
		c.brkFailures = 3
	}
	if c.brkCooldown <= 0 {
		c.brkCooldown = 2 * time.Second
	}
	if c.probeEvery == 0 {
		c.probeEvery = 500 * time.Millisecond
	}
	if c.nowFn == nil {
		c.nowFn = time.Now
	}
	if c.randFn == nil {
		c.randFn = rand.Float64
	}
	c.ring.add(c.self)
	c.repl = newReplicator(c)
	for _, p := range cfg.Peers {
		if err := c.AddPeer(p.Name, p.URL); err != nil {
			c.repl.close()
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/cluster/replicate", c.handleReplicate)
	mux.HandleFunc("/admin/peers", c.handlePeers)
	mux.Handle("/", local.Handler())
	c.handler = mux
	if c.probeEvery > 0 {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Handler is the federated HTTP surface: /query routes across the ring,
// /cluster/replicate and /admin/peers are the federation's own endpoints,
// everything else passes through to the local daemon.
func (c *Coordinator) Handler() http.Handler { return c.handler }

// Observe feeds one convergence record into the write-behind replicator —
// the server.Config.OnRecord subscription point.
func (c *Coordinator) Observe(rec store.Record) { c.repl.enqueue(rec) }

// Close stops the prober and the replicator (flushing its queue best-effort)
// and releases peer connections. The local server is not closed.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		c.wg.Wait()
		c.repl.close()
		for _, p := range c.peerList() {
			p.rem.Retire()
		}
	})
}

// rand draws from the jitter seam; the lock makes a deterministic test seam
// safe under the prober/replicator/serve-path concurrency.
func (c *Coordinator) rand() float64 {
	c.randMu.Lock()
	defer c.randMu.Unlock()
	return c.randFn()
}

// AddPeer joins a node to the ring and pushes it the full replica set, so a
// joining (or rejoining) node starts warm. Fingerprints whose ring arc the
// newcomer now owns re-pin to it on their next request; all others keep
// their placement — the consistent-hashing minimal-movement property.
func (c *Coordinator) AddPeer(name, url string) error {
	if name == "" || url == "" {
		return errors.New("cluster: peer needs both a name and a url")
	}
	if name == c.self {
		return fmt.Errorf("cluster: peer %q collides with this node's own name", name)
	}
	c.mu.Lock()
	if _, ok := c.peers[name]; ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: peer %q already joined", name)
	}
	p := &peerState{rem: NewRemote(name, url)}
	p.brk = peerBreaker{
		nowFn:     c.nowFn,
		randFn:    c.rand,
		threshold: c.brkFailures,
		cooldown:  c.brkCooldown,
	}
	c.peers[name] = p
	c.ring.add(name)
	c.mu.Unlock()
	c.repl.syncTo(p)
	return nil
}

// RemovePeer detaches a node: its virtual points leave the ring, so the
// fingerprints it owned re-pin to their next-in-sequence survivors.
func (c *Coordinator) RemovePeer(name string) error {
	c.mu.Lock()
	p, ok := c.peers[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown peer %q", name)
	}
	delete(c.peers, name)
	c.ring.remove(name)
	c.mu.Unlock()
	p.rem.Retire()
	return nil
}

func (c *Coordinator) peerList() []*peerState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*peerState, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].rem.name < out[j].rem.name })
	return out
}

// handleQuery is the federated serve path. Requests another coordinator
// already routed (forwarded marker) and non-POSTs serve locally untouched.
// Everything else resolves to a routing fingerprint and walks the ring.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost || r.Header.Get(server.ForwardedHeader) != "" {
		c.serveLocal(w, r, nil)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, code, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	var req server.QueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		// Undecodable bodies are not routable; the local serve path owns the
		// canonical 400.
		c.serveLocal(w, r, body)
		return
	}
	fp, err := c.local.RouteFingerprint(r.Header.Get("X-APQ-Tenant"), &req)
	if err != nil {
		// Resolution failures (unknown tenant, bad spec) are not routing
		// decisions either — serve locally for the canonical error reply.
		c.serveLocal(w, r, body)
		return
	}
	c.route(w, r, body, &req, fp)
}

// serveLocal replays the request into the local daemon's own handler; body
// non-nil restores an already-consumed request body.
func (c *Coordinator) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	if body != nil {
		r = r.Clone(r.Context())
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}
	c.servedLocal.Add(1)
	c.local.Handler().ServeHTTP(w, r)
}

// route walks fp's ring sequence: the owner first, then the failover order.
// A node is skipped while its breaker is open; a remote owner that fails
// its bounded retries fails the fingerprint over to the next survivor. The
// local node always terminates the walk — worst case every peer is down
// and the fingerprint serves here from its replicated warm seed.
func (c *Coordinator) route(w http.ResponseWriter, r *http.Request, body []byte, req *server.QueryRequest, fp string) {
	c.mu.RLock()
	seq := c.ring.sequence(fp)
	states := make([]*peerState, len(seq))
	for i, node := range seq {
		states[i] = c.peers[node] // nil for self
	}
	c.mu.RUnlock()
	// A results-negotiated request is proxied raw: the owner's APQRESULT
	// bytes relay to the client verbatim instead of being re-encoded, so a
	// forwarded columnar reply is bit-identical to the owner-local one —
	// the PR 9 twin guarantee extended to result payloads.
	wantRes := server.WantsResult(r.Header.Get("Accept"), req)
	for i, node := range seq {
		if node == c.self {
			if i > 0 {
				c.failovers.Add(1)
			}
			c.serveLocal(w, r, body)
			return
		}
		p := states[i]
		if p == nil || !p.brk.allow() {
			continue
		}
		var (
			resp  *server.QueryResponse
			hresp *http.Response
			err   error
		)
		if wantRes {
			hresp, err = c.invokeResultRetry(r, p, body)
		} else {
			resp, err = c.invokeRetry(r, p, req)
		}
		if err == nil {
			if i > 0 {
				c.failovers.Add(1)
			}
			c.forwarded.Add(1)
			if wantRes {
				w.Header().Set("Content-Type", hresp.Header.Get("Content-Type"))
				n, _ := io.Copy(w, hresp.Body)
				hresp.Body.Close()
				c.resultBytesProxied.Add(n)
				return
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		var be *server.BackendError
		if errors.As(err, &be) && be.Code < 500 {
			// The owning node answered and the request itself is at fault
			// (unknown tenant, over quota, bad spec): proxy the reply back
			// verbatim — failing over a bad request would cascade it across
			// every node in the ring.
			if i > 0 {
				c.failovers.Add(1)
			}
			c.forwarded.Add(1)
			if be.RetryAfter != "" {
				w.Header().Set("Retry-After", be.RetryAfter)
			}
			writeJSON(w, be.Code, map[string]string{"error": be.Msg})
			return
		}
		// 5xx or unreachable: the node is the problem, not the request.
		// Fall through to the next node in ring order.
	}
	// Unreachable while self is a ring member; kept as the defensive
	// backstop.
	c.failovers.Add(1)
	c.serveLocal(w, r, body)
}

// invokeRetry runs one request against one peer with bounded retries. Each
// attempt gets its own PeerTimeout deadline under the client's context;
// retry n sleeps base·2^(n-1) scaled by the breaker-style 1+0.5·rand()
// jitter first. Sub-500 BackendErrors return immediately (the peer
// answered; retrying a bad request cannot fix it) and do not feed the
// breaker; everything else counts a breaker failure, and a breaker that
// opens mid-retry aborts the loop so failover starts without burning the
// remaining attempts.
func (c *Coordinator) invokeRetry(r *http.Request, p *peerState, req *server.QueryRequest) (*server.QueryResponse, error) {
	frozen := r.Header.Get(server.FrozenHeader) == "1"
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.retried.Add(1)
			if !c.backoff(r.Context(), attempt) {
				break
			}
		}
		actx, cancel := context.WithTimeout(r.Context(), c.peerTimeout)
		var resp *server.QueryResponse
		var err error
		if frozen {
			resp, err = p.rem.InvokeFrozen(actx, req)
		} else {
			resp, err = p.rem.Invoke(actx, req)
		}
		cancel()
		if err == nil {
			p.brk.success()
			return resp, nil
		}
		var be *server.BackendError
		if errors.As(err, &be) && be.Code < 500 {
			return nil, err
		}
		lastErr = err
		p.brk.failure()
		if !p.brk.allow() {
			break
		}
	}
	return nil, lastErr
}

// cancelBody ties a streamed response body to its per-attempt context: the
// deadline must stay armed while the coordinator relays the stream, and
// Close releases it.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b cancelBody) Close() error {
	b.cancel()
	return b.ReadCloser.Close()
}

// invokeResultRetry is invokeRetry for results-negotiated requests: the
// peer's raw APQRESULT response comes back still streaming (the caller
// relays and closes it), under the same per-attempt deadlines, bounded
// retries, and breaker bookkeeping.
func (c *Coordinator) invokeResultRetry(r *http.Request, p *peerState, body []byte) (*http.Response, error) {
	frozen := r.Header.Get(server.FrozenHeader) == "1"
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.retried.Add(1)
			if !c.backoff(r.Context(), attempt) {
				break
			}
		}
		actx, cancel := context.WithTimeout(r.Context(), c.peerTimeout)
		hresp, err := p.rem.InvokeResult(actx, body, frozen)
		if err == nil {
			p.brk.success()
			hresp.Body = cancelBody{ReadCloser: hresp.Body, cancel: cancel}
			return hresp, nil
		}
		cancel()
		var be *server.BackendError
		if errors.As(err, &be) && be.Code < 500 {
			return nil, err
		}
		lastErr = err
		p.brk.failure()
		if !p.brk.allow() {
			break
		}
	}
	return nil, lastErr
}

// backoff sleeps retry attempt n's delay (n is 1-based); false means the
// request's context or the coordinator died first.
func (c *Coordinator) backoff(ctx context.Context, n int) bool {
	d := c.retryBase << (n - 1)
	if d > time.Second {
		d = time.Second
	}
	d = time.Duration(float64(d) * (1 + 0.5*c.rand()))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-c.stop:
		return false
	}
}

// probeLoop pings breaker-open peers' /healthz in the background. A healthy
// reply closes the breaker — ring ownership re-pins back — and re-seeds the
// recovered peer with the full replica set, covering every record it was
// deaf to while down.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for _, p := range c.peerList() {
			open, _, _ := p.brk.snapshot()
			if !open {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), c.peerTimeout)
			h, err := p.rem.Health(ctx)
			cancel()
			if err == nil && h.OK {
				p.brk.success()
				c.recovered.Add(1)
				c.repl.syncTo(p)
			}
		}
	}
}

// handleReplicate is the replication intake: an APQXPORT document from a
// peer's replicator, applied record by record through the same identity
// gates as disk rehydration. Records that don't belong here (unknown
// tenant, foreign DB identity, stale identity) are skipped, not errors —
// membership may lag.
func (c *Coordinator) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicationBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": fmt.Sprintf("bad replication body: %v", err)})
		return
	}
	recs, err := store.DecodeRecords(body, "replication payload")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	applied := 0
	for _, rec := range recs {
		if c.local.ApplyRecord(rec) {
			applied++
		}
	}
	c.repl.applied.Add(int64(applied))
	writeJSON(w, http.StatusOK, map[string]int{"received": len(recs), "applied": applied})
}

// handlePeers is the membership surface: GET lists, POST {"name","url"}
// joins, DELETE ?name= leaves.
func (c *Coordinator) handlePeers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, c.Stats())
	case http.MethodPost:
		var p Peer
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&p); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad peer body: %v", err)})
			return
		}
		if err := c.AddPeer(p.Name, p.URL); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"joined": p.Name, "nodes": c.Nodes()})
	case http.MethodDelete:
		name := r.URL.Query().Get("name")
		if err := c.RemovePeer(name); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"left": name, "nodes": c.Nodes()})
	default:
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET, POST or DELETE"})
	}
}

// maxReplicationBody bounds one replication intake document; generous —
// a full replica-set sync push from a large peer must fit.
const maxReplicationBody = 16 << 20

// Nodes returns the current ring membership, sorted, self included.
func (c *Coordinator) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.nodes()
}

// PeerStatus is one remote node's health as this coordinator sees it.
type PeerStatus struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Breaker is "closed" (serving) or "open" (failed over away).
	Breaker string `json:"breaker"`
	// Failures is the current consecutive-failure count while closed.
	Failures int `json:"consecutive_failures,omitempty"`
	// Trips counts breaker openings since the peer joined.
	Trips int64 `json:"trips"`
}

// Stats is the GET /stats "cluster" block.
type Stats struct {
	Self  string       `json:"self"`
	Nodes []string     `json:"nodes"`
	Peers []PeerStatus `json:"peers"`
	// ServedLocal counts requests this node answered from its own pool
	// (owned here, forwarded here by a peer, or failed over to here).
	ServedLocal int64 `json:"served_local"`
	// Forwarded counts requests routed to a remote owner.
	Forwarded int64 `json:"forwarded"`
	// Retries counts remote attempts beyond each request's first.
	Retries int64 `json:"retries"`
	// Failovers counts requests served by a node other than the ring owner.
	Failovers int64 `json:"failovers"`
	// PeersRecovered counts breaker-open peers the health probe brought
	// back.
	PeersRecovered int64 `json:"peers_recovered"`
	// ResultBytesProxied counts APQRESULT payload bytes relayed verbatim
	// from remote owners to this node's clients.
	ResultBytesProxied int64            `json:"result_bytes_proxied"`
	Replication        ReplicationStats `json:"replication"`
}

// Stats snapshots the coordinator; wired into the local daemon's GET /stats
// as the "cluster" block.
func (c *Coordinator) Stats() Stats {
	s := Stats{
		Self:               c.self,
		Nodes:              c.Nodes(),
		ServedLocal:        c.servedLocal.Load(),
		Forwarded:          c.forwarded.Load(),
		Retries:            c.retried.Load(),
		Failovers:          c.failovers.Load(),
		PeersRecovered:     c.recovered.Load(),
		ResultBytesProxied: c.resultBytesProxied.Load(),
		Replication:        c.repl.stats(),
	}
	for _, p := range c.peerList() {
		open, failures, trips := p.brk.snapshot()
		st := PeerStatus{Name: p.rem.name, URL: p.rem.base, Breaker: "closed", Failures: failures, Trips: trips}
		if open {
			st.Breaker = "open"
		}
		s.Peers = append(s.Peers, st)
	}
	return s
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
