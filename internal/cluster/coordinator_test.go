package cluster

import (
	"context"
	"testing"
	"time"
)

// fakeClock is a hand-advanced nowFn.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestPeerBreakerLifecycle pins the clock and the jitter seam and walks the
// whole cycle: closed under sparse failures, open at the threshold, held
// through the jittered cooldown, half-open admit, failed probe restarting
// the cooldown, successful probe closing.
func TestPeerBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := peerBreaker{
		nowFn:     clk.now,
		randFn:    func() float64 { return 1 }, // jitter scale pinned to 1.5
		threshold: 3,
		cooldown:  2 * time.Second,
	}
	if !b.allow() {
		t.Fatal("new breaker must be closed")
	}
	b.failure()
	b.failure()
	if open, failures, trips := b.snapshot(); open || failures != 2 || trips != 0 {
		t.Fatalf("after 2 failures: open=%v failures=%d trips=%d", open, failures, trips)
	}
	// A success wipes the streak: only consecutive failures trip.
	b.success()
	b.failure()
	b.failure()
	if open, _, _ := b.snapshot(); open {
		t.Fatal("streak should have reset on success")
	}
	b.failure()
	if open, _, trips := b.snapshot(); !open || trips != 1 {
		t.Fatalf("3rd consecutive failure should trip: open=%v trips=%d", open, trips)
	}
	// Jittered cooldown = 2s * 1.5 = 3s.
	clk.advance(2900 * time.Millisecond)
	if b.allow() {
		t.Fatal("breaker admitted before the jittered cooldown elapsed")
	}
	clk.advance(200 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker must admit a half-open attempt after cooldown")
	}
	// The half-open attempt fails: cooldown restarts from now.
	b.failure()
	if b.allow() {
		t.Fatal("failed half-open probe must re-arm the cooldown")
	}
	if _, _, trips := b.snapshot(); trips != 1 {
		t.Fatalf("re-armed cooldown is not a new trip: trips=%d", trips)
	}
	clk.advance(3100 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker must admit again after the re-armed cooldown")
	}
	b.success()
	if open, failures, _ := b.snapshot(); open || failures != 0 {
		t.Fatalf("success must close and reset: open=%v failures=%d", open, failures)
	}
}

// TestBackoffDelays: the jittered exponential schedule doubles per attempt
// from RetryBase and honours context cancellation.
func TestBackoffDelays(t *testing.T) {
	c := &Coordinator{
		retryBase: 10 * time.Millisecond,
		randFn:    func() float64 { return 0 }, // jitter scale pinned to 1.0
		stop:      make(chan struct{}),
	}
	for n, want := range map[int]time.Duration{1: 10 * time.Millisecond, 2: 20 * time.Millisecond, 3: 40 * time.Millisecond} {
		start := time.Now()
		if !c.backoff(context.Background(), n) {
			t.Fatalf("backoff(%d) aborted without cancellation", n)
		}
		if got := time.Since(start); got < want {
			t.Fatalf("backoff(%d) slept %v, want >= %v", n, got, want)
		}
	}
	// The cap: attempt 30 would be base<<29 without it.
	start := time.Now()
	if !c.backoff(context.Background(), 30) {
		t.Fatal("capped backoff aborted without cancellation")
	}
	if got := time.Since(start); got > 5*time.Second {
		t.Fatalf("backoff cap failed: slept %v", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if c.backoff(ctx, 1) {
		t.Fatal("backoff must report cancellation")
	}
}

// TestConfigValidation: a coordinator rejects nameless nodes and membership
// collisions.
func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty Self must be rejected")
	}
	for _, peers := range [][]Peer{
		{{Name: "", URL: "http://x"}},
		{{Name: "b", URL: ""}},
		{{Name: "a", URL: "http://x"}},                               // collides with self
		{{Name: "b", URL: "http://x"}, {Name: "b", URL: "http://y"}}, // duplicate
	} {
		c, err := New(nil, Config{Self: "a", Peers: peers, ProbeInterval: -1})
		if err == nil {
			c.Close()
			t.Fatalf("peers %v must be rejected", peers)
		}
	}
}
