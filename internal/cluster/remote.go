package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
)

// Remote is the HTTP implementation of server.ShardBackend: a whole peer
// daemon addressed as one shard. Invoke POSTs the query to the peer's
// /query with the forwarded marker set, so the peer serves it locally
// instead of re-routing (no forwarding loops); non-200 replies come back as
// *server.BackendError carrying the peer's status, body, and Retry-After
// hint, and transport failures come back raw — the coordinator's cue to
// retry or fail over.
type Remote struct {
	name string
	base string
	hc   *http.Client
}

// NewRemote builds a client for the peer daemon at baseURL (scheme://host:
// port, no trailing slash needed). Per-request deadlines come from the
// caller's context; the client itself sets none.
func NewRemote(name, baseURL string) *Remote {
	return &Remote{
		name: name,
		base: strings.TrimRight(baseURL, "/"),
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     30 * time.Second,
		}},
	}
}

// Name returns the peer's node name.
func (r *Remote) Name() string { return r.name }

// URL returns the peer's base URL.
func (r *Remote) URL() string { return r.base }

func (r *Remote) invoke(ctx context.Context, req *server.QueryRequest, frozen bool) (*server.QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode request for %s: %w", r.name, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", r.name, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(server.ForwardedHeader, "1")
	if frozen {
		hreq.Header.Set(server.FrozenHeader, "1")
	}
	hresp, err := r.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s unreachable: %w", r.name, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, r.backendError(hresp)
	}
	var resp server.QueryResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("cluster: %s sent a malformed reply: %w", r.name, err)
	}
	return &resp, nil
}

// InvokeResult executes one query on the peer and returns the raw HTTP
// response carrying the peer's APQRESULT reply. body is the client's
// original request bytes, forwarded verbatim so the owner decodes exactly
// what this node decoded. The caller streams hresp.Body to its own client
// untouched — one encoder produced the bytes, so a forwarded reply is
// bit-identical to the owner-local one — and must Close it. A non-200 reply
// is consumed and returned as *server.BackendError.
func (r *Remote) InvokeResult(ctx context.Context, body []byte, frozen bool) (*http.Response, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", r.name, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", server.ResultContentType)
	hreq.Header.Set(server.ForwardedHeader, "1")
	if frozen {
		hreq.Header.Set(server.FrozenHeader, "1")
	}
	hresp, err := r.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s unreachable: %w", r.name, err)
	}
	if hresp.StatusCode != http.StatusOK {
		defer hresp.Body.Close()
		return nil, r.backendError(hresp)
	}
	return hresp, nil
}

// backendError converts a peer's non-200 reply into a *server.BackendError,
// preserving the status, the error body, and the Retry-After hint so the
// coordinator can proxy the reply to the client byte-compatibly.
func (r *Remote) backendError(hresp *http.Response) *server.BackendError {
	msg := fmt.Sprintf("%s replied %s", r.name, hresp.Status)
	raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<16))
	var eresp struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &eresp) == nil && eresp.Error != "" {
		msg = eresp.Error
	}
	return &server.BackendError{
		Code:       hresp.StatusCode,
		Msg:        msg,
		RetryAfter: hresp.Header.Get("Retry-After"),
	}
}

// Invoke executes one query on the peer at full fidelity.
func (r *Remote) Invoke(ctx context.Context, req *server.QueryRequest) (*server.QueryResponse, error) {
	return r.invoke(ctx, req, false)
}

// InvokeFrozen executes one query on the peer from learned state only.
func (r *Remote) InvokeFrozen(ctx context.Context, req *server.QueryRequest) (*server.QueryResponse, error) {
	return r.invoke(ctx, req, true)
}

// Stats fetches the peer's GET /stats snapshot.
func (r *Remote) Stats(ctx context.Context) (*server.StatsResponse, error) {
	var resp server.StatsResponse
	if err := r.getJSON(ctx, "/stats", &resp, http.StatusOK); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches the peer's GET /healthz report. A degraded peer answers
// 503 with a body — that decodes and returns like a 200 (OK=false tells the
// story); only an unreachable peer is an error.
func (r *Remote) Health(ctx context.Context) (*server.HealthResponse, error) {
	var resp server.HealthResponse
	if err := r.getJSON(ctx, "/healthz", &resp, http.StatusOK, http.StatusServiceUnavailable); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (r *Remote) getJSON(ctx context.Context, path string, out any, okCodes ...int) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+path, nil)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", r.name, err)
	}
	hresp, err := r.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("cluster: %s unreachable: %w", r.name, err)
	}
	defer hresp.Body.Close()
	ok := false
	for _, c := range okCodes {
		ok = ok || hresp.StatusCode == c
	}
	if !ok {
		return r.backendError(hresp)
	}
	if err := json.NewDecoder(hresp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: %s sent a malformed reply: %w", r.name, err)
	}
	return nil
}

// replicate ships an APQXPORT document to the peer's replication intake.
func (r *Remote) replicate(ctx context.Context, payload []byte) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/cluster/replicate", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", r.name, err)
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	hresp, err := r.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("cluster: %s unreachable: %w", r.name, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return r.backendError(hresp)
	}
	io.Copy(io.Discard, io.LimitReader(hresp.Body, 1<<16))
	return nil
}

// Retire releases the client's pooled connections. The remote daemon keeps
// running — retiring a remote shard is a local decision.
func (r *Remote) Retire() error {
	r.hc.CloseIdleConnections()
	return nil
}

// Remote must satisfy the seam it transports.
var _ server.ShardBackend = (*Remote)(nil)
