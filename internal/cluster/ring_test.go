package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func sampleFPs(n int) []string {
	fps := make([]string, n)
	for i := range fps {
		fps[i] = fmt.Sprintf("fp-%04d", i)
	}
	return fps
}

// TestRingSequence: every fingerprint's sequence enumerates each member
// exactly once, starting with the owner, and ownership is independent of
// the order members were added (all nodes must compute the same ring from
// the same names).
func TestRingSequence(t *testing.T) {
	r := newRing()
	for _, n := range []string{"a", "b", "c"} {
		r.add(n)
	}
	r2 := newRing()
	for _, n := range []string{"c", "a", "b"} {
		r2.add(n)
	}
	for _, fp := range sampleFPs(500) {
		seq := r.sequence(fp)
		if len(seq) != 3 {
			t.Fatalf("sequence(%q) = %v, want 3 distinct nodes", fp, seq)
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("sequence(%q) = %v repeats %q", fp, seq, n)
			}
			seen[n] = true
		}
		if got := r.owner(fp, nil); got != seq[0] {
			t.Fatalf("owner(%q) = %q, want sequence head %q", fp, got, seq[0])
		}
		if got := r2.sequence(fp); !reflect.DeepEqual(got, seq) {
			t.Fatalf("sequence(%q) differs by add order: %v vs %v", fp, got, seq)
		}
	}
}

// TestRingOwnerFailover: owner() with an aliveness predicate walks the
// failover order, skipping dead nodes.
func TestRingOwnerFailover(t *testing.T) {
	r := newRing()
	for _, n := range []string{"a", "b", "c"} {
		r.add(n)
	}
	fp := "fp-failover"
	seq := r.sequence(fp)
	dead := map[string]bool{seq[0]: true}
	if got := r.owner(fp, func(n string) bool { return !dead[n] }); got != seq[1] {
		t.Fatalf("owner with %q dead = %q, want %q", seq[0], got, seq[1])
	}
	dead[seq[1]] = true
	if got := r.owner(fp, func(n string) bool { return !dead[n] }); got != seq[2] {
		t.Fatalf("owner with two dead = %q, want %q", got, seq[2])
	}
	if got := r.owner(fp, func(string) bool { return false }); got != "" {
		t.Fatalf("owner with all dead = %q, want empty", got)
	}
}

// TestRingMinimalMovement is the membership contract behind join/leave
// re-pinning: adding a node re-pins only the fingerprints the newcomer now
// owns (everything that moves moves TO it), and removing it restores the
// previous ownership exactly.
func TestRingMinimalMovement(t *testing.T) {
	r := newRing()
	r.add("a")
	r.add("b")
	fps := sampleFPs(2000)
	before := make(map[string]string, len(fps))
	for _, fp := range fps {
		before[fp] = r.owner(fp, nil)
	}
	r.add("c")
	moved := 0
	for _, fp := range fps {
		now := r.owner(fp, nil)
		if now != before[fp] {
			moved++
			if now != "c" {
				t.Fatalf("fp %q moved %q -> %q, not to the joining node", fp, before[fp], now)
			}
		}
	}
	if moved == 0 || moved > len(fps)/2 {
		// c should take roughly a third; anything over half means the join
		// reshuffled fingerprints it didn't need to.
		t.Fatalf("join moved %d of %d fingerprints, want (0, %d]", moved, len(fps), len(fps)/2)
	}
	r.remove("c")
	for _, fp := range fps {
		if got := r.owner(fp, nil); got != before[fp] {
			t.Fatalf("fp %q did not return to %q after leave (got %q)", fp, before[fp], got)
		}
	}
}

// TestRingBalance: vnodes keep the split between a few real nodes from
// degenerating — every member owns a meaningful share.
func TestRingBalance(t *testing.T) {
	r := newRing()
	for _, n := range []string{"a", "b", "c", "d"} {
		r.add(n)
	}
	counts := map[string]int{}
	fps := sampleFPs(4000)
	for _, fp := range fps {
		counts[r.owner(fp, nil)]++
	}
	for n, c := range counts {
		if c < len(fps)/10 {
			t.Fatalf("node %q owns %d of %d fingerprints — ring is badly imbalanced: %v", n, c, len(fps), counts)
		}
	}
}
