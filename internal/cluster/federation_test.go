package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tpch"
)

// The federation dataset is SF 0.2: big enough that a full-range select_rows
// result (12k values) spans APQRESULT chunk frames, so the forwarded-bytes
// twin test exercises chunk boundaries over the wire.
const testIdentity = "tpch:sf=0.2:seed=42"

// newEngineServer builds one single-shard serving core over its own engine.
// Every call generates the same dataset, so two nodes (or a node and its
// standalone twin) are deterministically identical.
func newEngineServer(t *testing.T, onRecord func(store.Record)) *server.Server {
	t.Helper()
	cat := tpch.Generate(tpch.Config{SF: 0.2, Seed: 42})
	s, err := server.New(server.Config{
		Engine:     exec.NewEngine(cat, sim.TwoSocket(), cost.Default()),
		DBIdentity: testIdentity,
		Benchmark:  "tpch",
		OnRecord:   onRecord,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

type fedNode struct {
	name  string
	srv   *server.Server
	coord *Coordinator
	hs    *http.Server
	url   string
}

// startNode brings up one federated node on ln: serving core, coordinator,
// and a real HTTP listener, with convergence records wired into the
// replicator the way the apq wiring does it.
func startNode(t *testing.T, name string, ln net.Listener, peers []Peer, ccfg Config) *fedNode {
	t.Helper()
	var ptr atomic.Pointer[Coordinator]
	srv := newEngineServer(t, func(rec store.Record) {
		if c := ptr.Load(); c != nil {
			c.Observe(rec)
		}
	})
	ccfg.Self = name
	ccfg.Peers = peers
	coord, err := New(srv, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ptr.Store(coord)
	t.Cleanup(coord.Close)
	hs := &http.Server{Handler: coord.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return &fedNode{
		name:  name,
		srv:   srv,
		coord: coord,
		hs:    hs,
		url:   "http://" + ln.Addr().String(),
	}
}

// twoNodes wires an A/B federation over pre-allocated loopback listeners
// (each node's config must name the other's URL before either exists).
func twoNodes(t *testing.T, ccfg Config) (*fedNode, *fedNode) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lnA.Close()
		t.Fatal(err)
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	a := startNode(t, "a", lnA, []Peer{{Name: "b", URL: urlB}}, ccfg)
	b := startNode(t, "b", lnB, []Peer{{Name: "a", URL: urlA}}, ccfg)
	return a, b
}

func selectSumReq(lo int64) server.QueryRequest {
	hi := lo + 7
	return server.QueryRequest{SelectSum: &server.SelectSumSpec{
		Table: "lineitem", Column: "l_quantity", Lo: &lo, Hi: &hi,
	}}
}

// remoteOwnedQuery finds a select_sum whose fingerprint node owner owns on
// the ring as this coordinator computes it.
func remoteOwnedQuery(t *testing.T, c *Coordinator, owner string) server.QueryRequest {
	t.Helper()
	for lo := int64(1); lo <= 64; lo++ {
		req := selectSumReq(lo)
		fp, err := c.local.RouteFingerprint("", &req)
		if err != nil {
			t.Fatal(err)
		}
		c.mu.RLock()
		got := c.ring.owner(fp, nil)
		c.mu.RUnlock()
		if got == owner {
			return req
		}
	}
	t.Fatalf("no select_sum candidate hashed to node %q", owner)
	return server.QueryRequest{}
}

func postJSON(t *testing.T, client *http.Client, url string, req server.QueryRequest) (server.QueryResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s/query: %v", url, err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decode reply: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return qr, resp.StatusCode
}

// TestRemoteTwinBitIdentical is the tentpole's first acceptance test: the
// same request sequence driven through a standalone server and through a
// federation entry node that forwards every request to the remote owner
// must produce identical responses field for field — session IDs, latencies,
// run numbers, convergence state — and identical per-run convergence
// traces. The remote transport is a routing layer, not a different engine.
func TestRemoteTwinBitIdentical(t *testing.T) {
	a, b := twoNodes(t, Config{ProbeInterval: -1})
	standalone := newEngineServer(t, nil)
	ts := httptest.NewServer(standalone.Handler())
	defer ts.Close()

	req := remoteOwnedQuery(t, a.coord, "b")
	client := &http.Client{}
	var session string
	converged := 0
	for i := 0; i < 4000; i++ {
		viaCluster, codeC := postJSON(t, client, a.url, req)
		direct, codeD := postJSON(t, client, ts.URL, req)
		if codeC != http.StatusOK || codeD != http.StatusOK {
			t.Fatalf("request %d: cluster=%d standalone=%d", i, codeC, codeD)
		}
		if !reflect.DeepEqual(viaCluster, direct) {
			t.Fatalf("request %d: twin divergence:\ncluster:    %+v\nstandalone: %+v", i, viaCluster, direct)
		}
		session = direct.Session
		if direct.State == "converged" {
			// A few extra servings past convergence: the hot path must stay
			// identical too.
			if converged++; converged > 3 {
				break
			}
		}
	}
	if converged == 0 {
		t.Fatal("query never converged within 4000 requests")
	}
	if stats := a.coord.Stats(); stats.Forwarded == 0 {
		t.Fatal("entry node never forwarded — the twin test compared two local serves")
	}
	// The convergence histories: byte-identical trace documents from the
	// owning node and the standalone twin.
	trace := func(base string) []byte {
		resp, err := client.Get(base + "/sessions/" + session + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET trace on %s: %d", base, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if got, want := trace(b.url), trace(ts.URL); !bytes.Equal(got, want) {
		t.Fatalf("convergence traces diverge:\nowner:      %s\nstandalone: %s", got, want)
	}
}

// remoteOwnedRowsQuery finds a select_rows spanning multiple APQRESULT chunk
// frames whose fingerprint the named node owns. hi stays at the column
// maximum and lo stays small so every candidate selects more than one
// chunk's worth of rows.
func remoteOwnedRowsQuery(t *testing.T, c *Coordinator, owner string) server.QueryRequest {
	t.Helper()
	hi := int64(50)
	for lo := int64(1); lo <= 12; lo++ {
		lo := lo
		req := server.QueryRequest{SelectRows: &server.SelectSumSpec{
			Table: "lineitem", Column: "l_quantity", Lo: &lo, Hi: &hi,
		}}
		fp, err := c.local.RouteFingerprint("", &req)
		if err != nil {
			t.Fatal(err)
		}
		c.mu.RLock()
		got := c.ring.owner(fp, nil)
		c.mu.RUnlock()
		if got == owner {
			return req
		}
	}
	t.Fatalf("no select_rows candidate hashed to node %q", owner)
	return server.QueryRequest{}
}

// postResultBytes POSTs a results-negotiated /query and returns the raw
// APQRESULT reply bytes.
func postResultBytes(t *testing.T, client *http.Client, url string, req server.QueryRequest) []byte {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s/query: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s/query: status %d: %s", url, resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != server.ResultContentType {
		t.Fatalf("POST %s/query: Content-Type %q, want %q", url, ct, server.ResultContentType)
	}
	return raw
}

// TestRemoteTwinForwardedResultBytes extends the twin guarantee to result
// payloads: the APQRESULT stream an entry node proxies verbatim from the
// remote owner must be bit-identical — chunk boundaries included — to what a
// standalone server produces for the same request sequence, and (once
// converged) to what the owner serves locally.
func TestRemoteTwinForwardedResultBytes(t *testing.T) {
	a, b := twoNodes(t, Config{ProbeInterval: -1})
	standalone := newEngineServer(t, nil)
	ts := httptest.NewServer(standalone.Handler())
	defer ts.Close()

	req := remoteOwnedRowsQuery(t, a.coord, "b")
	req.Results = true
	client := &http.Client{}
	converged := 0
	for i := 0; i < 4000; i++ {
		viaCluster := postResultBytes(t, client, a.url, req)
		direct := postResultBytes(t, client, ts.URL, req)
		if !bytes.Equal(viaCluster, direct) {
			t.Fatalf("request %d: forwarded APQRESULT differs from the standalone twin (%d vs %d bytes)",
				i, len(viaCluster), len(direct))
		}
		p, err := server.DecodeResult(viaCluster)
		if err != nil {
			t.Fatalf("request %d: forwarded reply does not decode: %v", i, err)
		}
		if n := p.Values[0].Len(); n <= 8192 {
			t.Fatalf("result carries %d values — too small to span a chunk boundary", n)
		}
		if p.Meta.State == "converged" {
			if converged++; converged > 2 {
				break
			}
		}
	}
	if converged == 0 {
		t.Fatal("query never converged within 4000 requests")
	}
	// Owner-local vs forwarded, converged: the proxy adds and removes
	// nothing. (Converged servings are idempotent, so the extra owner-local
	// request does not perturb the twin sequence.)
	ownerLocal := postResultBytes(t, client, b.url, req)
	forwarded := postResultBytes(t, client, a.url, req)
	if !bytes.Equal(ownerLocal, forwarded) {
		t.Fatalf("forwarded APQRESULT differs from owner-local bytes (%d vs %d)", len(forwarded), len(ownerLocal))
	}
	stats := a.coord.Stats()
	if stats.Forwarded == 0 {
		t.Fatal("entry node never forwarded — the twin test compared two local serves")
	}
	if stats.ResultBytesProxied == 0 {
		t.Fatal("coordinator proxied no result bytes despite forwarded APQRESULT replies")
	}
}

// TestFailoverKillNodeMidTraffic is the tentpole's chaos acceptance test: a
// remotely-owned query converges through the entry node, the owning node
// dies, and every subsequent request still answers 200 — the fingerprint
// re-pins to the survivor, which serves it converged from the replicated
// plan (fewer requests to re-converge than the cold convergence took: zero).
func TestFailoverKillNodeMidTraffic(t *testing.T) {
	a, b := twoNodes(t, Config{
		Retries:         2,
		RetryBase:       time.Millisecond,
		BreakerFailures: 1,
		BreakerCooldown: 100 * time.Millisecond,
		ProbeInterval:   -1,
	})
	req := remoteOwnedQuery(t, a.coord, "b")
	client := &http.Client{}
	coldRuns := 0
	for i := 0; i < 4000; i++ {
		qr, code := postJSON(t, client, a.url, req)
		if code != http.StatusOK {
			t.Fatalf("converge request %d: status %d", i, code)
		}
		coldRuns++
		if qr.State == "converged" {
			break
		}
	}
	if coldRuns < 2 || coldRuns >= 4000 {
		t.Fatalf("implausible cold convergence: %d requests", coldRuns)
	}
	// The owner's converged record must land on the entry node before the
	// kill — that replica is what failover serves from.
	deadline := time.Now().Add(10 * time.Second)
	for a.coord.Stats().Replication.RecordsApplied == 0 {
		if time.Now().After(deadline) {
			t.Fatal("owner's converged plan never replicated to the entry node")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the owner mid-traffic.
	b.hs.Close()
	b.srv.Close()

	for i := 0; i < 30; i++ {
		qr, code := postJSON(t, client, a.url, req)
		if code != http.StatusOK {
			// The acceptance bar: zero client-visible errors beyond the
			// bounded retry window — and the retries are inside the request,
			// so the client sees none at all.
			t.Fatalf("failover request %d: status %d", i, code)
		}
		if qr.State != "converged" {
			t.Fatalf("failover request %d served %q — survivor should hold the replicated converged plan (0 warm runs < %d cold runs)", i, qr.State, coldRuns)
		}
	}
	stats := a.coord.Stats()
	if stats.Failovers == 0 {
		t.Fatal("no failovers counted despite the owner being dead")
	}
	var trips int64
	for _, p := range stats.Peers {
		if p.Name == "b" {
			trips = p.Trips
		}
	}
	if trips == 0 {
		t.Fatal("peer breaker never tripped on the dead node")
	}
}

// TestAdminPeersJoinLeave: runtime membership. A node that converged alone
// pushes its replica set to a joining peer; fingerprints the newcomer owns
// re-pin to it; leaving pins them back.
func TestAdminPeersJoinLeave(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lnA.Close()
		t.Fatal(err)
	}
	a := startNode(t, "a", lnA, nil, Config{ProbeInterval: -1})
	b := startNode(t, "b", lnB, nil, Config{ProbeInterval: -1})

	// Converge something on the lone node so the join has a replica set to
	// push.
	client := &http.Client{}
	req := selectSumReq(3)
	for i := 0; i < 4000; i++ {
		qr, code := postJSON(t, client, a.url, req)
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if qr.State == "converged" {
			break
		}
	}

	// Join b via the admin surface.
	joinBody := fmt.Sprintf(`{"name":"b","url":%q}`, b.url)
	resp, err := client.Post(a.url+"/admin/peers", "application/json", bytes.NewReader([]byte(joinBody)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: status %d", resp.StatusCode)
	}
	if got := a.coord.Nodes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("membership after join: %v", got)
	}
	// The join push seeds the newcomer with the converged plan.
	deadline := time.Now().Add(10 * time.Second)
	for b.coord.Stats().Replication.RecordsApplied == 0 {
		if time.Now().After(deadline) {
			t.Fatal("join never pushed the replica set to the new peer")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fingerprint b now owns routes remotely...
	bReq := remoteOwnedQuery(t, a.coord, "b")
	before := a.coord.Stats().Forwarded
	if _, code := postJSON(t, client, a.url, bReq); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if after := a.coord.Stats().Forwarded; after != before+1 {
		t.Fatalf("request for b-owned fingerprint was not forwarded (forwarded %d -> %d)", before, after)
	}

	// ...and pins back home once b leaves.
	dreq, _ := http.NewRequest(http.MethodDelete, a.url+"/admin/peers?name=b", nil)
	resp, err = client.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: status %d", resp.StatusCode)
	}
	if got := a.coord.Nodes(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("membership after leave: %v", got)
	}
	before = a.coord.Stats().Forwarded
	if _, code := postJSON(t, client, a.url, bReq); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if after := a.coord.Stats().Forwarded; after != before {
		t.Fatal("fingerprint still forwarding after its owner left")
	}
}

// TestReplicateIntake: the replication endpoint rejects hostile documents
// and skips well-formed records that don't belong on this node.
func TestReplicateIntake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a := startNode(t, "a", ln, nil, Config{ProbeInterval: -1})
	client := &http.Client{}

	resp, err := client.Post(a.url+"/cluster/replicate", "application/octet-stream", bytes.NewReader([]byte("not an export document")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage intake: status %d, want 400", resp.StatusCode)
	}

	resp, err = client.Get(a.url + "/cluster/replicate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET intake: status %d, want 405", resp.StatusCode)
	}

	// A valid document whose record names a tenant this node doesn't run:
	// received but not applied.
	rec := store.Record{
		Fingerprint: "fp-foreign", DBIdentity: testIdentity, Tenant: "ghost",
		Query: "tpch:q6", PlanBytes: []byte{1, 2, 3}, History: []float64{10, 5},
		Cores: 4, HasCost: true, CostParams: cost.Default(),
	}
	doc, err := store.EncodeRecords([]store.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Post(a.url+"/cluster/replicate", "application/octet-stream", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Received int `json:"received"`
		Applied  int `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Received != 1 || out.Applied != 0 {
		t.Fatalf("foreign record intake: status %d, %+v (want 200, received 1, applied 0)", resp.StatusCode, out)
	}
}
