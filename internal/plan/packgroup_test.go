package plan

import (
	"testing"

	"repro/internal/algebra"
)

// buildSlicedGroup returns a plan shaped like the basic mutation's output:
// one select, a fetch cloned over nParts tiling partitions of the select's
// oids, and a pack of the clone results.
func buildSlicedGroup(nParts int) (*Plan, int) {
	p := New()
	col := p.NewVar(KindColumn, "col")
	p.Append(&Instr{Op: OpBind, Aux: BindAux{Table: "t", Column: "c"}, Rets: []VarID{col}, Part: FullPart()})
	oids := p.NewVar(KindOids, "oids")
	p.Append(&Instr{Op: OpSelect, Aux: SelectAux{Pred: algebra.AtLeast(1)}, Args: []VarID{col}, Rets: []VarID{oids}, Part: FullPart()})
	parts := FullPart().SplitN(nParts)
	cloneRets := make([]VarID, nParts)
	for i, pt := range parts {
		cloneRets[i] = p.NewVar(KindColumn, "")
		p.Append(&Instr{Op: OpFetch, Args: []VarID{oids, col}, Rets: []VarID{cloneRets[i]}, Part: pt})
	}
	packed := p.NewVar(KindColumn, "packed")
	packIdx := len(p.Instrs)
	p.Append(&Instr{Op: OpPack, Args: cloneRets, Rets: []VarID{packed}, Part: FullPart()})
	p.Append(&Instr{Op: OpResult, Args: []VarID{packed}, Part: FullPart()})
	return p, packIdx
}

func TestPackGroupsSliced(t *testing.T) {
	p, packIdx := buildSlicedGroup(4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	groups := p.PackGroups()
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	g := groups[0]
	if g.Pack != packIdx || !g.Sliced || len(g.Clones) != 4 {
		t.Fatalf("group = %+v", g)
	}
	for i, ci := range g.Clones {
		if p.Instrs[packIdx].Args[i] != p.Instrs[ci].Rets[0] {
			t.Fatalf("clone %d out of pack-argument order", i)
		}
	}
}

func TestPackGroupsPropagated(t *testing.T) {
	// The medium mutation's residue: full-range fetch clones over distinct
	// oid inputs, sharing the target, packed in partition order.
	p := New()
	col := p.NewVar(KindColumn, "col")
	p.Append(&Instr{Op: OpBind, Aux: BindAux{Table: "t", Column: "c"}, Rets: []VarID{col}, Part: FullPart()})
	parts := FullPart().SplitN(2)
	cloneRets := make([]VarID, 2)
	for i, pt := range parts {
		oids := p.NewVar(KindOids, "")
		p.Append(&Instr{Op: OpSelect, Aux: SelectAux{Pred: algebra.AtLeast(1)}, Args: []VarID{col}, Rets: []VarID{oids}, Part: pt})
		cloneRets[i] = p.NewVar(KindColumn, "")
		p.Append(&Instr{Op: OpFetch, Args: []VarID{oids, col}, Rets: []VarID{cloneRets[i]}, Part: FullPart()})
	}
	packed := p.NewVar(KindColumn, "packed")
	packIdx := len(p.Instrs)
	p.Append(&Instr{Op: OpPack, Args: cloneRets, Rets: []VarID{packed}, Part: FullPart()})
	p.Append(&Instr{Op: OpResult, Args: []VarID{packed}, Part: FullPart()})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	groups := p.PackGroups()
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	if g := groups[0]; g.Pack != packIdx || g.Sliced || len(g.Clones) != 2 {
		t.Fatalf("group = %+v", g)
	}
}

func TestPackGroupsRejectsUnsafeShapes(t *testing.T) {
	// Partition-order violation: pack args swapped against partition order.
	p, packIdx := buildSlicedGroup(2)
	pk := p.Instrs[packIdx]
	pk.Args[0], pk.Args[1] = pk.Args[1], pk.Args[0]
	if got := p.PackGroups(); len(got) != 0 {
		t.Fatalf("out-of-order pack accepted: %+v", got)
	}

	// Gap in the tiling: drop the middle clone of a 4-way split.
	p, packIdx = buildSlicedGroup(4)
	pk = p.Instrs[packIdx]
	pk.Args = []VarID{pk.Args[0], pk.Args[2], pk.Args[3]}
	if got := p.PackGroups(); len(got) != 0 {
		t.Fatalf("gapped pack accepted: %+v", got)
	}

	// Duplicate input: one clone packed twice.
	p, packIdx = buildSlicedGroup(2)
	pk = p.Instrs[packIdx]
	pk.Args = []VarID{pk.Args[0], pk.Args[0]}
	if got := p.PackGroups(); len(got) != 0 {
		t.Fatalf("duplicated pack input accepted: %+v", got)
	}

	// Non-materializing producers: an oid pack over select clones is never a
	// group (select output sizes are data-dependent).
	p = New()
	col := p.NewVar(KindColumn, "col")
	p.Append(&Instr{Op: OpBind, Aux: BindAux{Table: "t", Column: "c"}, Rets: []VarID{col}, Part: FullPart()})
	l, r := FullPart().Split()
	s1, s2 := p.NewVar(KindOids, ""), p.NewVar(KindOids, "")
	p.Append(&Instr{Op: OpSelect, Aux: SelectAux{Pred: algebra.AtLeast(1)}, Args: []VarID{col}, Rets: []VarID{s1}, Part: l})
	p.Append(&Instr{Op: OpSelect, Aux: SelectAux{Pred: algebra.AtLeast(1)}, Args: []VarID{col}, Rets: []VarID{s2}, Part: r})
	packed := p.NewVar(KindOids, "packed")
	p.Append(&Instr{Op: OpPack, Args: []VarID{s1, s2}, Rets: []VarID{packed}, Part: FullPart()})
	p.Append(&Instr{Op: OpResult, Args: []VarID{packed}, Part: FullPart()})
	if got := p.PackGroups(); len(got) != 0 {
		t.Fatalf("oid pack accepted as group: %+v", got)
	}
}
