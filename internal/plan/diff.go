package plan

// Structural plan diffing for incremental compilation.
//
// A mutation clones its input plan, removes a few instructions, appends
// their replacements (with freshly allocated result variables), and restores
// topological order — so a mutated child shares almost all of its structure
// with its parent. ComputeDiff recovers that sharing after the fact: it
// matches child instructions to parent instructions that are structurally
// identical AND whose whole producing subtree matched, so a matched
// instruction is guaranteed to compute the same value over the same inputs
// in both plans. Consumers of the diff (the execution engine) can then reuse
// the parent's per-instruction compilation — validation, dependency edges,
// pack-group analysis — and recompile only the mutated subtree.

// Diff maps the instructions of a child plan onto a parent plan.
type Diff struct {
	// ParentOf[ci] is the parent instruction index child instruction ci is
	// matched to, or -1 when ci is new or mutated (or consumes a mutated
	// subtree).
	ParentOf []int32
	// ChildOf[pi] is the inverse mapping: the child index parent instruction
	// pi survived as, or -1 when it was removed or mutated.
	ChildOf []int32
	// Matched counts the matched instruction pairs.
	Matched int
}

// instrEqual reports structural identity: same opcode, aux parameters,
// partition range, and identical argument/result variable lists. Comments
// are cosmetic provenance and ignored. Variable identity is meaningful
// because mutations clone the variable table: a child's variable v < parent
// NVars IS the parent's v.
func instrEqual(a, b *Instr) bool {
	if a.Op != b.Op || a.Aux != b.Aux || a.Part != b.Part ||
		len(a.Args) != len(b.Args) || len(a.Rets) != len(b.Rets) {
		return false
	}
	for i, v := range a.Args {
		if b.Args[i] != v {
			return false
		}
	}
	for i, v := range a.Rets {
		if b.Rets[i] != v {
			return false
		}
	}
	return true
}

// ComputeDiff matches child instructions against parent. The match is
// subtree-deep: an instruction only matches when it is structurally
// identical to a parent instruction and every argument is produced by a
// matched instruction — the inductive fingerprint that makes a match mean
// "same value at runtime". Both plans must be individually consistent
// (child is validated by the engine before the diff is trusted); ComputeDiff
// itself never panics on malformed input, it just matches less.
//
// Cost is O(instructions + edges) with no hashing: candidates are located
// through the SSA result variable (unique per plan), result-less
// instructions (OpResult) through the single result marker.
func ComputeDiff(parent, child *Plan) *Diff {
	d := &Diff{
		ParentOf: make([]int32, len(child.Instrs)),
		ChildOf:  make([]int32, len(parent.Instrs)),
	}
	for i := range d.ChildOf {
		d.ChildOf[i] = -1
	}
	// Parent lookup: producing instruction per variable, and the result
	// marker. Child variables are a superset of parent variables (Clone
	// copies the table, mutations only append), so parent indices apply.
	producerOf := make([]int32, parent.NVars())
	for i := range producerOf {
		producerOf[i] = -1
	}
	parentResult := int32(-1)
	for i, in := range parent.Instrs {
		for _, r := range in.Rets {
			producerOf[r] = int32(i)
		}
		if in.Op == OpResult {
			parentResult = int32(i)
		}
	}
	// producerMatched[v] reports that child v's producer is a matched
	// instruction — the inductive step. Child plans are topologically
	// ordered (def before use), so producers are classified before their
	// consumers are visited.
	producerMatched := make([]bool, child.NVars())
	for ci, in := range child.Instrs {
		d.ParentOf[ci] = -1
		pi := int32(-1)
		switch {
		case len(in.Rets) > 0:
			if r := in.Rets[0]; int(r) < len(producerOf) {
				pi = producerOf[r]
			}
		case in.Op == OpResult:
			pi = parentResult
		}
		if pi < 0 || !instrEqual(in, parent.Instrs[pi]) {
			continue
		}
		subtree := true
		for _, a := range in.Args {
			if int(a) >= len(producerMatched) || !producerMatched[a] {
				subtree = false
				break
			}
		}
		if !subtree {
			continue
		}
		d.ParentOf[ci] = pi
		d.ChildOf[pi] = int32(ci)
		d.Matched++
		for _, r := range in.Rets {
			producerMatched[r] = true
		}
	}
	return d
}

// ValidateIncremental validates the child plan reusing d against its
// validated parent: the global structural scan (def-before-use ordering, SSA
// single assignment, partition sanity via checkInstr) still covers every
// instruction, but the per-operator kind/aux checks run only for unmatched
// instructions — a matched instruction is byte-identical to one the parent
// validated over the same variable kinds.
func (p *Plan) ValidateIncremental(d *Diff) error {
	if d == nil || len(d.ParentOf) != len(p.Instrs) {
		return p.Validate()
	}
	defined := make([]bool, p.NVars())
	assigned := make([]bool, p.NVars())
	for i, in := range p.Instrs {
		for _, a := range in.Args {
			if int(a) >= p.NVars() {
				return errUnknownVar(i, in, int(a))
			}
			if !defined[a] {
				return errUseBeforeDef(p, i, in, a)
			}
		}
		for _, r := range in.Rets {
			if int(r) >= p.NVars() {
				return errUnknownRet(i, in, int(r))
			}
			if assigned[r] {
				return errReassigned(p, i, in, r)
			}
			assigned[r] = true
			defined[r] = true
		}
		if d.ParentOf[i] >= 0 {
			continue // matched: parent ran checkInstr on the identical instr
		}
		if err := p.checkInstr(i, in); err != nil {
			return err
		}
	}
	return nil
}
