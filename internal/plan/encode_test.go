package plan

import (
	"bytes"
	"testing"

	"repro/internal/algebra"
)

// testPlan builds a plan exercising every aux type, multi-ret instructions,
// non-full parts, and comments — the surface the canonical form must cover.
func testPlan() *Plan {
	b := NewBuilder()
	col := b.Bind("lineitem", "l_quantity")
	sel := b.Select(col, algebra.Between(1, 24))
	vals := b.Fetch(sel, col)
	sum := b.Aggr(algebra.AggrSum, vals)
	b.Result(sum)
	p := b.Plan()
	// Decorate with the features mutation produces: parts and comments.
	lo, hi := FullPart().Split()
	p.Instrs[1].Part = lo
	p.Instrs[2].Part = hi
	p.Instrs[2].Comment = "clone of fetch #2"
	return p
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := testPlan()
	enc := Encode(p)
	q, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q.String(), p.String(); got != want {
		t.Fatalf("decoded plan differs:\n got:\n%s\nwant:\n%s", got, want)
	}
	if q.NVars() != p.NVars() {
		t.Fatalf("NVars: got %d, want %d", q.NVars(), p.NVars())
	}
	for v := 0; v < p.NVars(); v++ {
		if q.KindOf(VarID(v)) != p.KindOf(VarID(v)) {
			t.Fatalf("var %d kind: got %v, want %v", v, q.KindOf(VarID(v)), p.KindOf(VarID(v)))
		}
	}
	for i, in := range p.Instrs {
		qi := q.Instrs[i]
		if qi.Op != in.Op || qi.Part != in.Part || qi.Comment != in.Comment {
			t.Fatalf("instr %d: got %+v, want %+v", i, qi, in)
		}
		if qi.Aux != in.Aux {
			t.Fatalf("instr %d aux: got %#v, want %#v", i, qi.Aux, in.Aux)
		}
	}
	// Canonical: re-encoding the decoded plan is bit-identical.
	if re := Encode(q); !bytes.Equal(re, enc) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(re), len(enc))
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("decoded plan fails validation: %v", err)
	}
}

func TestEncodeCoversEveryAux(t *testing.T) {
	p := New()
	c1 := p.NewVar(KindColumn, "a")
	c2 := p.NewVar(KindColumn, "b")
	oids := p.NewVar(KindOids, "o")
	sc := p.NewVar(KindScalar, "s")
	gr := p.NewVar(KindGroups, "g")
	p.Append(&Instr{Op: OpBind, Rets: []VarID{c1}, Part: FullPart(), Aux: BindAux{Table: "t", Column: "c"}})
	p.Append(&Instr{Op: OpConst, Rets: []VarID{sc}, Part: FullPart(), Aux: ConstAux{Value: -7}})
	p.Append(&Instr{Op: OpSelect, Args: []VarID{c1}, Rets: []VarID{oids}, Part: FullPart(),
		Aux: SelectAux{Pred: algebra.Range{Lo: algebra.NoLow, Hi: 5, HiIncl: true}}})
	p.Append(&Instr{Op: OpLikeSelect, Args: []VarID{c1}, Rets: []VarID{oids}, Part: FullPart(),
		Aux: LikeAux{Pattern: "x%", Kind: algebra.LikePrefix, Anti: true}})
	p.Append(&Instr{Op: OpCalcSV, Args: []VarID{c1}, Rets: []VarID{c2}, Part: FullPart(),
		Aux: CalcAux{Op: algebra.CalcMul, Scalar: 3, ScalarLeft: true}})
	p.Append(&Instr{Op: OpGroupBy, Args: []VarID{c1}, Rets: []VarID{gr}, Part: FullPart()})
	p.Append(&Instr{Op: OpAggr, Args: []VarID{c2}, Rets: []VarID{sc}, Part: FullPart(),
		Aux: AggrAux{Func: algebra.AggrMax}})
	p.Append(&Instr{Op: OpSort, Args: []VarID{c1}, Rets: []VarID{c2, oids}, Part: FullPart(),
		Aux: SortAux{Desc: true}})
	enc := Encode(p)
	q, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range p.Instrs {
		if q.Instrs[i].Aux != in.Aux {
			t.Fatalf("instr %d aux: got %#v, want %#v", i, q.Instrs[i].Aux, in.Aux)
		}
	}
	if re := Encode(q); !bytes.Equal(re, enc) {
		t.Fatal("re-encode differs")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("NOTAPLAN"),
		"bad version": append([]byte("APQP"), 99),
		"truncated":   Encode(testPlan())[:10],
		"trailing":    append(Encode(testPlan()), 0xFF),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted invalid input", name)
		}
	}
	// Flip every byte of a valid encoding one at a time: decoding must
	// either fail cleanly or produce a structurally sane plan — never panic.
	enc := Encode(testPlan())
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on corrupt byte %d: %v", i, r)
				}
			}()
			p, err := Decode(mut)
			if err == nil {
				_ = p.String() // must at least be printable without panicking
			}
		}()
	}
}
