package plan

import "fmt"

// TopoSort reorders the instruction list into a valid topological order of
// the dataflow graph (def before use), stable with respect to the current
// order: among ready instructions the earliest-listed runs first. Mutations
// use it to restore the def-before-use invariant after rewiring consumers;
// stability keeps pack-argument partition order intact.
//
// The edge structures are flat slices (producer table indexed by variable,
// dependent lists carved out of one counted slab): TopoSort runs once per
// mutation on the adaptive cold path, where map-based bookkeeping was a
// measurable allocator.
//
// It returns an error if the graph has a cycle (which would indicate a bug
// in a mutation).
func (p *Plan) TopoSort() error {
	n := len(p.Instrs)
	producer := p.Producers()
	indeg := make([]int32, n)
	// Count edges per producer, then carve dependents out of one slab.
	edgeCount := make([]int32, n+1)
	countEdges := func(visit func(src, dst int32)) {
		for i, in := range p.Instrs {
			seen := int32(-1)
			for _, a := range in.Args {
				src := producer[a]
				if src == seen {
					continue // consecutive duplicate, cheap skip
				}
				seen = src
				visit(src, int32(i))
			}
		}
	}
	for i, in := range p.Instrs {
		for _, a := range in.Args {
			src := producer[a]
			if src < 0 {
				return fmt.Errorf("plan: instr %d (%s) consumes unproduced var %s", i, in.Op, p.NameOf(a))
			}
			if src == int32(i) {
				return fmt.Errorf("plan: instr %d (%s) consumes its own output", i, in.Op)
			}
		}
	}
	countEdges(func(src, dst int32) {
		if src == dst {
			return
		}
		edgeCount[src+1]++
	})
	for i := 0; i < n; i++ {
		edgeCount[i+1] += edgeCount[i]
	}
	edges := make([]int32, edgeCount[n])
	fill := make([]int32, n)
	countEdges(func(src, dst int32) {
		if src == dst {
			return
		}
		edges[edgeCount[src]+fill[src]] = dst
		fill[src]++
	})
	// indeg counts DISTINCT producers per consumer; duplicate edges (one
	// instruction consuming two results of the same producer through
	// non-consecutive args) are deduplicated against the dependent list.
	dependents := func(src int32) []int32 { return edges[edgeCount[src] : edgeCount[src]+fill[src]] }
	for src := int32(0); src < int32(n); src++ {
		deps := dependents(src)
		w := 0
		for _, d := range deps {
			dup := false
			for _, e := range deps[:w] {
				if e == d {
					dup = true
					break
				}
			}
			if !dup {
				deps[w] = d
				w++
				indeg[d]++
			}
		}
		fill[src] = int32(w)
	}

	// Stable Kahn's algorithm: a min-ordered ready list by original index.
	var ready []int32
	for i := int32(0); i < int32(n); i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]*Instr, 0, n)
	for len(ready) > 0 {
		// Pop the smallest original index for stability.
		min := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[min] {
				min = i
			}
		}
		idx := ready[min]
		ready = append(ready[:min], ready[min+1:]...)
		out = append(out, p.Instrs[idx])
		for _, d := range dependents(idx) {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(out) != n {
		return fmt.Errorf("plan: dependency cycle involving %d instructions", n-len(out))
	}
	p.Instrs = out
	return nil
}
