package plan

import "fmt"

// TopoSort reorders the instruction list into a valid topological order of
// the dataflow graph (def before use), stable with respect to the current
// order: among ready instructions the earliest-listed runs first. Mutations
// use it to restore the def-before-use invariant after rewiring consumers;
// stability keeps pack-argument partition order intact.
//
// It returns an error if the graph has a cycle (which would indicate a bug
// in a mutation).
func (p *Plan) TopoSort() error {
	n := len(p.Instrs)
	producer := make(map[VarID]int, n)
	for i, in := range p.Instrs {
		for _, r := range in.Rets {
			producer[r] = i
		}
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, in := range p.Instrs {
		seen := map[int]bool{}
		for _, a := range in.Args {
			src, ok := producer[a]
			if !ok {
				return fmt.Errorf("plan: instr %d (%s) consumes unproduced var %s", i, in.Op, p.NameOf(a))
			}
			if src == i {
				return fmt.Errorf("plan: instr %d (%s) consumes its own output", i, in.Op)
			}
			if !seen[src] {
				seen[src] = true
				indeg[i]++
				dependents[src] = append(dependents[src], i)
			}
		}
	}
	// Stable Kahn's algorithm: a min-ordered ready list by original index.
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]*Instr, 0, n)
	for len(ready) > 0 {
		// Pop the smallest original index for stability.
		min := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[min] {
				min = i
			}
		}
		idx := ready[min]
		ready = append(ready[:min], ready[min+1:]...)
		out = append(out, p.Instrs[idx])
		for _, d := range dependents[idx] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(out) != n {
		return fmt.Errorf("plan: dependency cycle involving %d instructions", n-len(out))
	}
	p.Instrs = out
	return nil
}
