package plan

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
)

// buildQ6ish builds a small serial plan shaped like TPC-H Q6: select,
// refine, two fetches, a multiply and a scalar sum.
func buildQ6ish() *Plan {
	b := NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	disc := b.Bind("lineitem", "l_discount")
	price := b.Bind("lineitem", "l_extendedprice")
	s1 := b.Select(ship, algebra.Between(100, 200))
	s2 := b.SelectCand(disc, s1, algebra.Between(5, 7))
	d := b.Fetch(s2, disc)
	pr := b.Fetch(s2, price)
	rev := b.CalcVV(algebra.CalcMul, pr, d)
	sum := b.Aggr(algebra.AggrSum, rev)
	b.Result(sum)
	return b.Plan()
}

func TestBuilderProducesValidPlan(t *testing.T) {
	p := buildQ6ish()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 10 {
		t.Fatalf("instr count = %d", len(p.Instrs))
	}
	if got := p.Results(); len(got) != 1 {
		t.Fatalf("results = %v", got)
	}
	if p.MaxDOP() != 1 {
		t.Fatalf("serial plan MaxDOP = %d", p.MaxDOP())
	}
	if p.CountOps(OpSelect) != 1 || p.CountOps(OpSelectCand) != 1 || p.CountOps(OpFetch) != 2 {
		t.Fatal("CountOps wrong")
	}
}

func TestBuilderKindCheckPanics(t *testing.T) {
	b := NewBuilder()
	col := b.Bind("t", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("Fetch(col, col) did not panic on kind mismatch")
		}
	}()
	b.Fetch(col, col) // first arg must be oids
}

func TestProducerConsumers(t *testing.T) {
	p := buildQ6ish()
	// Var of the first select is consumed by the selectcand.
	sel := p.Instrs[3]
	if sel.Op != OpSelect {
		t.Fatalf("instr 3 is %s", sel.Op)
	}
	v := sel.Rets[0]
	if got := p.Producer(v); got != 3 {
		t.Fatalf("Producer = %d", got)
	}
	cons := p.Consumers(v)
	if len(cons) != 1 || p.Instrs[cons[0]].Op != OpSelectCand {
		t.Fatalf("Consumers = %v", cons)
	}
	if p.Producer(VarID(9999)) != -1 {
		// Producer of an unknown var: the call must not panic. (VarID 9999
		// is out of range; Producer scans rets only.)
		t.Fatal("Producer of unknown var should be -1")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildQ6ish()
	cp := p.Clone()
	cp.Instrs[3].Part, _ = FullPart().Split()
	cp.Instrs[3].Args[0] = VarID(0)
	cp.NewVar(KindScalar, "extra")
	if !p.Instrs[3].Part.IsFull() {
		t.Fatal("mutating clone changed original Part")
	}
	if p.NVars() == cp.NVars() {
		t.Fatal("NewVar on clone changed original (or clone shares var table)")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("original corrupted: %v", err)
	}
}

func TestValidateCatchesUseBeforeDef(t *testing.T) {
	p := New()
	v := p.NewVar(KindColumn, "x")
	o := p.NewVar(KindOids, "o")
	p.Append(&Instr{Op: OpSelect, Args: []VarID{v}, Rets: []VarID{o},
		Aux: SelectAux{}, Part: FullPart()})
	if err := p.Validate(); err == nil {
		t.Fatal("use-before-def not caught")
	}
}

func TestValidateCatchesSSAViolation(t *testing.T) {
	p := New()
	v := p.NewVar(KindScalar, "x")
	p.Append(&Instr{Op: OpConst, Aux: ConstAux{Value: 1}, Rets: []VarID{v}, Part: FullPart()})
	p.Append(&Instr{Op: OpConst, Aux: ConstAux{Value: 2}, Rets: []VarID{v}, Part: FullPart()})
	if err := p.Validate(); err == nil {
		t.Fatal("double assignment not caught")
	}
}

func TestValidateCatchesMixedPack(t *testing.T) {
	p := New()
	c := p.NewVar(KindColumn, "c")
	o := p.NewVar(KindOids, "o")
	s := p.NewVar(KindOids, "s")
	out := p.NewVar(KindOids, "out")
	p.Append(&Instr{Op: OpBind, Aux: BindAux{"t", "c"}, Rets: []VarID{c}, Part: FullPart()})
	p.Append(&Instr{Op: OpSelect, Aux: SelectAux{}, Args: []VarID{c}, Rets: []VarID{o}, Part: FullPart()})
	p.Append(&Instr{Op: OpSelect, Aux: SelectAux{}, Args: []VarID{c}, Rets: []VarID{s}, Part: FullPart()})
	p.Append(&Instr{Op: OpPack, Args: []VarID{o, c}, Rets: []VarID{out}, Part: FullPart()})
	if err := p.Validate(); err == nil {
		t.Fatal("mixed-kind pack not caught")
	}
}

func TestValidateCatchesPartitionOnNonPartitionable(t *testing.T) {
	p := New()
	s := p.NewVar(KindScalar, "s")
	half, _ := FullPart().Split()
	p.Append(&Instr{Op: OpConst, Aux: ConstAux{Value: 1}, Rets: []VarID{s}, Part: half})
	if err := p.Validate(); err == nil {
		t.Fatal("partition on const not caught")
	}
}

func TestValidateCatchesMissingAux(t *testing.T) {
	p := New()
	c := p.NewVar(KindColumn, "c")
	o := p.NewVar(KindOids, "o")
	p.Append(&Instr{Op: OpBind, Aux: BindAux{"t", "c"}, Rets: []VarID{c}, Part: FullPart()})
	p.Append(&Instr{Op: OpSelect, Args: []VarID{c}, Rets: []VarID{o}, Part: FullPart()})
	if err := p.Validate(); err == nil {
		t.Fatal("missing SelectAux not caught")
	}
}

func TestPartSplitAndResolve(t *testing.T) {
	full := FullPart()
	if !full.IsFull() {
		t.Fatal("FullPart not full")
	}
	l, r := full.Split()
	if l.String() != "[0/2,1/2)" || r.String() != "[1/2,2/2)" {
		t.Fatalf("split = %s %s", l, r)
	}
	ll, lr := l.Split()
	lo, hi := ll.Resolve(10)
	if lo != 0 || hi != 2 {
		t.Fatalf("ll.Resolve(10) = [%d,%d)", lo, hi)
	}
	lo, hi = lr.Resolve(10)
	if lo != 2 || hi != 5 {
		t.Fatalf("lr.Resolve(10) = [%d,%d)", lo, hi)
	}
	if !ll.Before(lr) || lr.Before(ll) {
		t.Fatal("Before ordering wrong")
	}
	if !l.Before(r) {
		t.Fatal("halves not ordered")
	}
}

// Property: any sequence of binary splits covers every position exactly once
// at any input length — partition boundaries stay aligned (Figure 8).
func TestPartSplitCoverageProperty(t *testing.T) {
	f := func(nRaw uint16, splitSeq []uint8) bool {
		n := int(nRaw)%1000 + 1
		parts := []Part{FullPart()}
		for _, s := range splitSeq {
			if len(splitSeq) > 12 {
				splitSeq = splitSeq[:12]
			}
			i := int(s) % len(parts)
			l, r := parts[i].Split()
			parts = append(parts[:i], append([]Part{l, r}, parts[i+1:]...)...)
			if len(parts) > 40 {
				break
			}
		}
		covered := make([]int, n)
		for _, p := range parts {
			lo, hi := p.Resolve(n)
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartSplitN(t *testing.T) {
	parts := FullPart().SplitN(8)
	if len(parts) != 8 {
		t.Fatalf("SplitN(8) returned %d parts", len(parts))
	}
	covered := make([]int, 64)
	for _, p := range parts {
		lo, hi := p.Resolve(64)
		if hi-lo != 8 {
			t.Fatalf("power-of-two SplitN uneven: [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("position %d covered %d times", i, c)
		}
	}
	// Non power of two still covers exactly.
	parts5 := FullPart().SplitN(5)
	if len(parts5) != 5 {
		t.Fatalf("SplitN(5) returned %d parts", len(parts5))
	}
	cov := make([]int, 37)
	for _, p := range parts5 {
		lo, hi := p.Resolve(37)
		for i := lo; i < hi; i++ {
			cov[i]++
		}
	}
	for i, c := range cov {
		if c != 1 {
			t.Fatalf("SplitN(5): position %d covered %d times", i, c)
		}
	}
	if got := FullPart().SplitN(1); len(got) != 1 || !got[0].IsFull() {
		t.Fatal("SplitN(1) should be identity")
	}
}

func TestStringAndDot(t *testing.T) {
	p := buildQ6ish()
	p.Instrs[3].Part, _ = FullPart().Split()
	p.Instrs[3].Comment = "clone of select"
	s := p.String()
	for _, want := range []string{"select", "pred=", "part=[0/2,1/2)", "# clone of select", "lineitem.l_shipdate"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	dot := p.Dot()
	for _, want := range []string{"digraph plan", "n3 ->", "label=\"select"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot() missing %q", want)
		}
	}
}

func TestMaxDOPCountsWidestPack(t *testing.T) {
	p := New()
	c := p.NewVar(KindColumn, "c")
	p.Append(&Instr{Op: OpBind, Aux: BindAux{"t", "c"}, Rets: []VarID{c}, Part: FullPart()})
	var oids []VarID
	for i := 0; i < 3; i++ {
		o := p.NewVar(KindOids, "")
		p.Append(&Instr{Op: OpSelect, Aux: SelectAux{}, Args: []VarID{c}, Rets: []VarID{o}, Part: FullPart()})
		oids = append(oids, o)
	}
	out := p.NewVar(KindOids, "")
	p.Append(&Instr{Op: OpPack, Args: oids, Rets: []VarID{out}, Part: FullPart()})
	if p.MaxDOP() != 3 {
		t.Fatalf("MaxDOP = %d", p.MaxDOP())
	}
}
