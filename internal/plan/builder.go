package plan

import (
	"fmt"

	"repro/internal/algebra"
)

// Builder is a typed DSL for composing serial plans, mirroring how the
// paper's system receives an optimal serial MAL plan from the SQL compiler.
// Every method appends an instruction and returns its result variable(s),
// checking kinds eagerly so query definitions fail fast at construction.
type Builder struct {
	p *Plan
}

// NewBuilder returns a builder over a fresh plan.
func NewBuilder() *Builder { return &Builder{p: New()} }

// Plan finalizes and returns the built plan.
func (b *Builder) Plan() *Plan { return b.p }

func (b *Builder) want(v VarID, k Kind, ctx string) {
	if b.p.KindOf(v) != k {
		panic(fmt.Sprintf("plan: %s expects %s, got %s (%s)", ctx, k, b.p.KindOf(v), b.p.NameOf(v)))
	}
}

func (b *Builder) emit(op OpCode, aux any, args []VarID, retKinds []Kind, names ...string) []VarID {
	rets := make([]VarID, len(retKinds))
	for i, k := range retKinds {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		rets[i] = b.p.NewVar(k, name)
	}
	b.p.Append(&Instr{Op: op, Args: args, Rets: rets, Aux: aux, Part: FullPart()})
	return rets
}

// Bind binds table.column as a column variable.
func (b *Builder) Bind(table, column string) VarID {
	return b.emit(OpBind, BindAux{Table: table, Column: column}, nil,
		[]Kind{KindColumn}, table+"."+column)[0]
}

// Const produces a scalar constant.
func (b *Builder) Const(v int64) VarID {
	return b.emit(OpConst, ConstAux{Value: v}, nil, []Kind{KindScalar}, fmt.Sprintf("c%d", v))[0]
}

// Select scans col with pred, producing candidates.
func (b *Builder) Select(col VarID, pred algebra.Range) VarID {
	b.want(col, KindColumn, "select")
	return b.emit(OpSelect, SelectAux{Pred: pred}, []VarID{col}, []Kind{KindOids})[0]
}

// SelectCand refines cands against col with pred.
func (b *Builder) SelectCand(col, cands VarID, pred algebra.Range) VarID {
	b.want(col, KindColumn, "selectcand col")
	b.want(cands, KindOids, "selectcand cands")
	return b.emit(OpSelectCand, SelectAux{Pred: pred}, []VarID{col, cands}, []Kind{KindOids})[0]
}

// LikeSelect scans a string column with a LIKE pattern.
func (b *Builder) LikeSelect(col VarID, pattern string, kind algebra.LikeKind, anti bool) VarID {
	b.want(col, KindColumn, "likeselect")
	return b.emit(OpLikeSelect, LikeAux{Pattern: pattern, Kind: kind, Anti: anti},
		[]VarID{col}, []Kind{KindOids})[0]
}

// Fetch reconstructs tuples: values of col at oids.
func (b *Builder) Fetch(oids, col VarID) VarID {
	b.want(oids, KindOids, "fetch oids")
	b.want(col, KindColumn, "fetch col")
	return b.emit(OpFetch, nil, []VarID{oids, col}, []Kind{KindColumn})[0]
}

// FetchPos gathers col values at zero-based positions.
func (b *Builder) FetchPos(pos, col VarID) VarID {
	b.want(pos, KindOids, "fetchpos pos")
	b.want(col, KindColumn, "fetchpos col")
	return b.emit(OpFetchPos, nil, []VarID{pos, col}, []Kind{KindColumn})[0]
}

// Join hash-joins outer against inner, returning (louter, rinner) oids.
func (b *Builder) Join(outer, inner VarID) (VarID, VarID) {
	b.want(outer, KindColumn, "join outer")
	b.want(inner, KindColumn, "join inner")
	rets := b.emit(OpJoin, nil, []VarID{outer, inner}, []Kind{KindOids, KindOids})
	return rets[0], rets[1]
}

// CalcVV computes a op b element-wise.
func (b *Builder) CalcVV(op algebra.CalcOp, a, c VarID) VarID {
	b.want(a, KindColumn, "calcvv a")
	b.want(c, KindColumn, "calcvv b")
	return b.emit(OpCalcVV, CalcAux{Op: op}, []VarID{a, c}, []Kind{KindColumn})[0]
}

// CalcSV computes (scalar op v) when scalarLeft, else (v op scalar).
func (b *Builder) CalcSV(op algebra.CalcOp, scalar int64, v VarID, scalarLeft bool) VarID {
	b.want(v, KindColumn, "calcsv v")
	return b.emit(OpCalcSV, CalcAux{Op: op, Scalar: scalar, ScalarLeft: scalarLeft},
		[]VarID{v}, []Kind{KindColumn})[0]
}

// CalcSSV computes (s op v) when scalarLeft, else (v op s), with s a scalar
// variable.
func (b *Builder) CalcSSV(op algebra.CalcOp, s, v VarID, scalarLeft bool) VarID {
	b.want(s, KindScalar, "calcssv s")
	b.want(v, KindColumn, "calcssv v")
	return b.emit(OpCalcSSV, CalcAux{Op: op, ScalarLeft: scalarLeft},
		[]VarID{s, v}, []Kind{KindColumn})[0]
}

// CalcSS computes a op b over scalars.
func (b *Builder) CalcSS(op algebra.CalcOp, a, c VarID) VarID {
	b.want(a, KindScalar, "calcss a")
	b.want(c, KindScalar, "calcss b")
	return b.emit(OpCalcSS, CalcAux{Op: op}, []VarID{a, c}, []Kind{KindScalar})[0]
}

// GroupBy groups keys.
func (b *Builder) GroupBy(keys VarID) VarID {
	b.want(keys, KindColumn, "groupby")
	return b.emit(OpGroupBy, nil, []VarID{keys}, []Kind{KindGroups})[0]
}

// GroupKeys extracts distinct keys from a groups value.
func (b *Builder) GroupKeys(groups VarID) VarID {
	b.want(groups, KindGroups, "groupkeys")
	return b.emit(OpGroupKeys, nil, []VarID{groups}, []Kind{KindColumn})[0]
}

// AggrGrouped aggregates vals per group.
func (b *Builder) AggrGrouped(f algebra.AggrFunc, vals, groups VarID) VarID {
	b.want(vals, KindColumn, "aggrgrouped vals")
	b.want(groups, KindGroups, "aggrgrouped groups")
	return b.emit(OpAggrGrouped, AggrAux{Func: f}, []VarID{vals, groups}, []Kind{KindColumn})[0]
}

// Aggr computes a scalar aggregate.
func (b *Builder) Aggr(f algebra.AggrFunc, vals VarID) VarID {
	b.want(vals, KindColumn, "aggr")
	return b.emit(OpAggr, AggrAux{Func: f}, []VarID{vals}, []Kind{KindScalar})[0]
}

// Sort sorts col, returning (sorted, permutation oids).
func (b *Builder) Sort(col VarID, desc bool) (VarID, VarID) {
	b.want(col, KindColumn, "sort")
	rets := b.emit(OpSort, SortAux{Desc: desc}, []VarID{col}, []Kind{KindColumn, KindOids})
	return rets[0], rets[1]
}

// Pack combines values with the exchange union operator. All inputs must
// share a kind; oids pack to oids, columns and scalars pack to a column.
// Serial plans use it for union-style queries (e.g. TPC-H Q19's OR arms).
func (b *Builder) Pack(vars ...VarID) VarID {
	if len(vars) == 0 {
		panic("plan: Pack with no inputs")
	}
	k := b.p.KindOf(vars[0])
	out := KindColumn
	if k == KindOids {
		out = KindOids
	}
	return b.emit(OpPack, nil, vars, []Kind{out})[0]
}

// Result marks the query outputs.
func (b *Builder) Result(vars ...VarID) {
	b.emit(OpResult, nil, vars, nil)
}
