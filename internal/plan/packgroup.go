package plan

// Pack-group identification for the zero-copy exchange.
//
// A pack group is an exchange union whose inputs are exactly the sibling
// clones of one materializing instruction — the shapes the two mutation
// schemes produce. For such a pack the executor can pre-size one shared
// result buffer, let each clone write its disjoint range in place, and serve
// the pack as an O(1) view with a dense head instead of a concatenating
// copy. Only materializing operators with positionally determined output
// ranges qualify: fetches and calcs, whose output length equals their
// (sliced) anchor input length. Selects do not — their output size is
// data-dependent, so oid packs keep copying (and keep their §2.3 cost, which
// is what drives the medium mutation).

// PackGroupMaterializing reports whether op is a materializing operator
// whose clones may share one exchange result buffer.
func PackGroupMaterializing(op OpCode) bool {
	switch op {
	case OpFetch, OpFetchPos, OpCalcVV, OpCalcSV, OpCalcSSV:
		return true
	}
	return false
}

// PackGroup describes one safe-to-share exchange union.
type PackGroup struct {
	// Pack is the instruction index of the exchange union.
	Pack int
	// Clones are the instruction indices of the sibling clones, in pack
	// argument order (= partition order, the §2.3 ordering invariant).
	Clones []int
	// Sliced distinguishes the two clone shapes. True: the clones share all
	// arguments and their Parts tile the full anchor range (the basic
	// mutation, Figure 3) — write offsets follow from Part.Resolve on the
	// shared anchor. False: every clone covers its own full anchor (the
	// propagated clones the medium mutation leaves behind, Figure 5) —
	// write offsets are the runtime prefix sums of the anchor lengths.
	Sliced bool
}

// Producers returns the producing instruction index per variable (-1 for
// unproduced variables). It is the slice-based lookup the compilation paths
// share — a map would re-hash every variable on every (re)compile.
func (p *Plan) Producers() []int32 {
	producer := make([]int32, p.NVars())
	for i := range producer {
		producer[i] = -1
	}
	for i, in := range p.Instrs {
		for _, r := range in.Rets {
			producer[r] = int32(i)
		}
	}
	return producer
}

// PackGroups identifies every pack group in the plan. Packs that mix clone
// families, consume non-materializing producers, or whose partitions do not
// tile the full range are not groups — the executor packs them by copying,
// exactly as before.
func (p *Plan) PackGroups() []PackGroup {
	producer := p.Producers()
	var out []PackGroup
	claimed := make([]bool, len(p.Instrs)) // clone instruction already in a group
	for k := range p.Instrs {
		g, ok := p.PackGroupAt(k, producer, claimed)
		if !ok {
			continue
		}
		for _, c := range g.Clones {
			claimed[c] = true
		}
		out = append(out, g)
	}
	return out
}

// PackGroupAt evaluates whether the pack at instruction index k roots a pack
// group, given the plan's producer index (see Producers) and the claim state
// of earlier groups. It mirrors one step of PackGroups' greedy plan-order
// scan: on success the CALLER must mark the returned clones claimed before
// evaluating later packs. The incremental compiler uses it to re-evaluate
// only the packs a mutation touched.
func (p *Plan) PackGroupAt(k int, producer []int32, claimed []bool) (PackGroup, bool) {
	pk := p.Instrs[k]
	if pk.Op != OpPack || len(pk.Args) < 2 {
		return PackGroup{}, false
	}
	if len(pk.Rets) != 1 || p.KindOf(pk.Rets[0]) != KindColumn || p.KindOf(pk.Args[0]) != KindColumn {
		return PackGroup{}, false
	}
	return p.packGroupAt(k, pk, producer, claimed)
}

func (p *Plan) packGroupAt(k int, pk *Instr, producer []int32, claimed []bool) (PackGroup, bool) {
	clones := make([]int, 0, len(pk.Args))
	seen := make(map[VarID]bool, len(pk.Args))
	var proto *Instr
	for _, a := range pk.Args {
		if seen[a] {
			return PackGroup{}, false // duplicated input: ranges would overlap
		}
		seen[a] = true
		ci := int(producer[a])
		if ci < 0 || claimed[ci] {
			return PackGroup{}, false
		}
		c := p.Instrs[ci]
		if len(c.Rets) != 1 || !PackGroupMaterializing(c.Op) {
			return PackGroup{}, false
		}
		if proto == nil {
			proto = c
		} else if c.Op != proto.Op || c.Aux != proto.Aux {
			return PackGroup{}, false
		}
		clones = append(clones, ci)
	}

	// Sliced shape: identical argument lists, Parts tiling the full range in
	// pack-argument order.
	if sameArgs(p.Instrs[clones[0]], p.Instrs, clones) {
		prev := p.Instrs[clones[0]].Part
		if prev.LoNum != 0 {
			return PackGroup{}, false
		}
		for _, ci := range clones[1:] {
			cur := p.Instrs[ci].Part
			// prev.Hi == cur.Lo under cross-multiplication: contiguous, in
			// partition order.
			if prev.HiNum*cur.Den != cur.LoNum*prev.Den {
				return PackGroup{}, false
			}
			prev = cur
		}
		if prev.HiNum != prev.Den {
			return PackGroup{}, false
		}
		return PackGroup{Pack: k, Clones: clones, Sliced: true}, true
	}

	// Propagated shape: full-range clones whose non-anchor arguments agree
	// (shared fetch target / calc operand), anchors per clone.
	anchor := make(map[int]bool)
	for _, ai := range SliceArgs(proto.Op) {
		anchor[ai] = true
	}
	for _, ci := range clones {
		c := p.Instrs[ci]
		if !c.Part.IsFull() || len(c.Args) != len(proto.Args) {
			return PackGroup{}, false
		}
		for ai, a := range c.Args {
			if !anchor[ai] && a != proto.Args[ai] {
				return PackGroup{}, false
			}
		}
	}
	return PackGroup{Pack: k, Clones: clones, Sliced: false}, true
}

// sameArgs reports whether every clone has the prototype's exact argument
// list.
func sameArgs(proto *Instr, instrs []*Instr, clones []int) bool {
	for _, ci := range clones {
		c := instrs[ci]
		if len(c.Args) != len(proto.Args) {
			return false
		}
		for i, a := range c.Args {
			if a != proto.Args[i] {
				return false
			}
		}
	}
	return true
}
