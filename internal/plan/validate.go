package plan

import (
	"fmt"
)

// Validate checks structural invariants: def-before-use ordering (the
// instruction list must be a topological order of the dataflow graph), SSA
// single assignment, kind agreement for every operator, pack homogeneity,
// and partition sanity. Mutations call Validate on their output in tests;
// the engine calls it once per plan before execution.
func (p *Plan) Validate() error {
	defined := make([]bool, p.NVars())
	assigned := make([]bool, p.NVars())
	for i, in := range p.Instrs {
		for _, a := range in.Args {
			if int(a) >= p.NVars() {
				return errUnknownVar(i, in, int(a))
			}
			if !defined[a] {
				return errUseBeforeDef(p, i, in, a)
			}
		}
		for _, r := range in.Rets {
			if int(r) >= p.NVars() {
				return errUnknownRet(i, in, int(r))
			}
			if assigned[r] {
				return errReassigned(p, i, in, r)
			}
			assigned[r] = true
			defined[r] = true
		}
		if err := p.checkInstr(i, in); err != nil {
			return err
		}
	}
	return nil
}

func errUnknownVar(i int, in *Instr, v int) error {
	return fmt.Errorf("plan: instr %d (%s) references unknown var %d", i, in.Op, v)
}

func errUseBeforeDef(p *Plan, i int, in *Instr, v VarID) error {
	return fmt.Errorf("plan: instr %d (%s) uses %s before definition", i, in.Op, p.NameOf(v))
}

func errUnknownRet(i int, in *Instr, v int) error {
	return fmt.Errorf("plan: instr %d (%s) returns unknown var %d", i, in.Op, v)
}

func errReassigned(p *Plan, i int, in *Instr, v VarID) error {
	return fmt.Errorf("plan: instr %d (%s) reassigns %s (SSA violation)", i, in.Op, p.NameOf(v))
}

func (p *Plan) checkInstr(i int, in *Instr) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("plan: instr %d (%s): %s", i, in.Op, fmt.Sprintf(format, args...))
	}
	argKinds := func(kinds ...Kind) error {
		if len(in.Args) != len(kinds) {
			return fail("want %d args, got %d", len(kinds), len(in.Args))
		}
		for j, k := range kinds {
			if p.KindOf(in.Args[j]) != k {
				return fail("arg %d is %s, want %s", j, p.KindOf(in.Args[j]), k)
			}
		}
		return nil
	}
	retKinds := func(kinds ...Kind) error {
		if len(in.Rets) != len(kinds) {
			return fail("want %d rets, got %d", len(kinds), len(in.Rets))
		}
		for j, k := range kinds {
			if p.KindOf(in.Rets[j]) != k {
				return fail("ret %d is %s, want %s", j, p.KindOf(in.Rets[j]), k)
			}
		}
		return nil
	}

	if in.Part.Den == 0 {
		return fail("zero partition denominator")
	}
	if in.Part.LoNum > in.Part.HiNum || in.Part.HiNum > in.Part.Den {
		return fail("malformed partition %s", in.Part)
	}
	if !in.Part.IsFull() && SliceArgs(in.Op) == nil {
		return fail("partition %s on non-partitionable operator", in.Part)
	}

	switch in.Op {
	case OpBind:
		if _, ok := in.Aux.(BindAux); !ok {
			return fail("missing BindAux")
		}
		if err := argKinds(); err != nil {
			return err
		}
		return retKinds(KindColumn)
	case OpConst:
		if _, ok := in.Aux.(ConstAux); !ok {
			return fail("missing ConstAux")
		}
		return retKinds(KindScalar)
	case OpSelect:
		if _, ok := in.Aux.(SelectAux); !ok {
			return fail("missing SelectAux")
		}
		if err := argKinds(KindColumn); err != nil {
			return err
		}
		return retKinds(KindOids)
	case OpSelectCand:
		if _, ok := in.Aux.(SelectAux); !ok {
			return fail("missing SelectAux")
		}
		if err := argKinds(KindColumn, KindOids); err != nil {
			return err
		}
		return retKinds(KindOids)
	case OpLikeSelect:
		if _, ok := in.Aux.(LikeAux); !ok {
			return fail("missing LikeAux")
		}
		if err := argKinds(KindColumn); err != nil {
			return err
		}
		return retKinds(KindOids)
	case OpFetch:
		if err := argKinds(KindOids, KindColumn); err != nil {
			return err
		}
		return retKinds(KindColumn)
	case OpFetchPos:
		if err := argKinds(KindOids, KindColumn); err != nil {
			return err
		}
		return retKinds(KindColumn)
	case OpJoin:
		if err := argKinds(KindColumn, KindColumn); err != nil {
			return err
		}
		return retKinds(KindOids, KindOids)
	case OpCalcVV:
		if _, ok := in.Aux.(CalcAux); !ok {
			return fail("missing CalcAux")
		}
		if err := argKinds(KindColumn, KindColumn); err != nil {
			return err
		}
		return retKinds(KindColumn)
	case OpCalcSV:
		if _, ok := in.Aux.(CalcAux); !ok {
			return fail("missing CalcAux")
		}
		if err := argKinds(KindColumn); err != nil {
			return err
		}
		return retKinds(KindColumn)
	case OpCalcSSV:
		if _, ok := in.Aux.(CalcAux); !ok {
			return fail("missing CalcAux")
		}
		if err := argKinds(KindScalar, KindColumn); err != nil {
			return err
		}
		return retKinds(KindColumn)
	case OpCalcSS:
		if _, ok := in.Aux.(CalcAux); !ok {
			return fail("missing CalcAux")
		}
		if err := argKinds(KindScalar, KindScalar); err != nil {
			return err
		}
		return retKinds(KindScalar)
	case OpGroupBy:
		if err := argKinds(KindColumn); err != nil {
			return err
		}
		return retKinds(KindGroups)
	case OpGroupKeys:
		if err := argKinds(KindGroups); err != nil {
			return err
		}
		return retKinds(KindColumn)
	case OpAggrGrouped:
		if _, ok := in.Aux.(AggrAux); !ok {
			return fail("missing AggrAux")
		}
		if err := argKinds(KindColumn, KindGroups); err != nil {
			return err
		}
		return retKinds(KindColumn)
	case OpAggr:
		if _, ok := in.Aux.(AggrAux); !ok {
			return fail("missing AggrAux")
		}
		if err := argKinds(KindColumn); err != nil {
			return err
		}
		return retKinds(KindScalar)
	case OpMergeAggr:
		if _, ok := in.Aux.(AggrAux); !ok {
			return fail("missing AggrAux")
		}
		if err := argKinds(KindColumn); err != nil {
			return err
		}
		return retKinds(KindScalar)
	case OpGroupMerge:
		if _, ok := in.Aux.(AggrAux); !ok {
			return fail("missing AggrAux")
		}
		if err := argKinds(KindColumn, KindColumn); err != nil {
			return err
		}
		return retKinds(KindColumn, KindColumn)
	case OpPack:
		if len(in.Args) == 0 {
			return fail("pack with no inputs")
		}
		first := p.KindOf(in.Args[0])
		for _, a := range in.Args {
			if p.KindOf(a) != first {
				return fail("pack over mixed kinds %s and %s", first, p.KindOf(a))
			}
		}
		switch first {
		case KindOids:
			return retKinds(KindOids)
		case KindColumn, KindScalar:
			return retKinds(KindColumn)
		default:
			return fail("pack over %s", first)
		}
	case OpSort:
		if _, ok := in.Aux.(SortAux); !ok {
			return fail("missing SortAux")
		}
		if err := argKinds(KindColumn); err != nil {
			return err
		}
		return retKinds(KindColumn, KindOids)
	case OpMergeSorted:
		if _, ok := in.Aux.(SortAux); !ok {
			return fail("missing SortAux")
		}
		if len(in.Args) == 0 {
			return fail("mergesorted with no inputs")
		}
		for _, a := range in.Args {
			if p.KindOf(a) != KindColumn {
				return fail("mergesorted arg is %s", p.KindOf(a))
			}
		}
		return retKinds(KindColumn)
	case OpResult:
		if len(in.Rets) != 0 {
			return fail("result must not return")
		}
		return nil
	}
	return fail("unknown opcode")
}
