package plan

import (
	"repro/internal/algebra"
)

// BindAux parameterizes OpBind.
type BindAux struct {
	Table, Column string
}

// ConstAux parameterizes OpConst.
type ConstAux struct {
	Value int64
}

// SelectAux parameterizes OpSelect / OpSelectCand.
type SelectAux struct {
	Pred algebra.Range
}

// LikeAux parameterizes OpLikeSelect.
type LikeAux struct {
	Pattern string
	Kind    algebra.LikeKind
	Anti    bool
}

// CalcAux parameterizes the calc operators. Scalar/ScalarLeft are used by
// OpCalcSV; ScalarLeft alone by OpCalcSSV.
type CalcAux struct {
	Op         algebra.CalcOp
	Scalar     int64
	ScalarLeft bool
}

// AggrAux parameterizes aggregation operators. For OpMergeAggr and
// OpGroupMerge, Func is the original aggregate; merge semantics derive from
// it (count partials merge by summation).
type AggrAux struct {
	Func algebra.AggrFunc
}

// SortAux parameterizes OpSort / OpMergeSorted.
type SortAux struct {
	Desc bool
}
