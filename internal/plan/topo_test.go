package plan

import (
	"testing"

	"repro/internal/algebra"
)

func TestTopoSortRestoresOrder(t *testing.T) {
	p := buildQ6ish()
	// Scramble: move the result instruction first and a bind last.
	n := len(p.Instrs)
	p.Instrs[0], p.Instrs[n-1] = p.Instrs[n-1], p.Instrs[0]
	if err := p.Validate(); err == nil {
		t.Fatal("scrambled plan unexpectedly valid")
	}
	if err := p.TopoSort(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("TopoSort did not restore def-before-use: %v", err)
	}
}

func TestTopoSortIsStable(t *testing.T) {
	p := buildQ6ish()
	var before []OpCode
	for _, in := range p.Instrs {
		before = append(before, in.Op)
	}
	if err := p.TopoSort(); err != nil {
		t.Fatal(err)
	}
	for i, in := range p.Instrs {
		if in.Op != before[i] {
			t.Fatalf("already-sorted plan reordered at %d: %s -> %s", i, before[i], in.Op)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	p := New()
	a := p.NewVar(KindColumn, "a")
	b := p.NewVar(KindColumn, "b")
	// a needs b, b needs a.
	p.Append(&Instr{Op: OpFetchPos, Args: []VarID{b, b}, Rets: []VarID{a}, Part: FullPart()})
	p.Append(&Instr{Op: OpFetchPos, Args: []VarID{a, a}, Rets: []VarID{b}, Part: FullPart()})
	if err := p.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestTopoSortUnproducedVar(t *testing.T) {
	p := New()
	ghost := p.NewVar(KindColumn, "ghost")
	o := p.NewVar(KindOids, "o")
	p.Append(&Instr{Op: OpSelect, Aux: SelectAux{Pred: algebra.FullRange()},
		Args: []VarID{ghost}, Rets: []VarID{o}, Part: FullPart()})
	if err := p.TopoSort(); err == nil {
		t.Fatal("unproduced variable not detected")
	}
}

func TestTopoSortSelfReference(t *testing.T) {
	p := New()
	v := p.NewVar(KindColumn, "v")
	p.Append(&Instr{Op: OpFetchPos, Args: []VarID{v, v}, Rets: []VarID{v}, Part: FullPart()})
	if err := p.TopoSort(); err == nil {
		t.Fatal("self-reference not detected")
	}
}
