package plan

import (
	"encoding/binary"
	"fmt"

	"repro/internal/algebra"
)

// Canonical plan serialization. The persistent convergence store keeps a
// converged session's best plan on disk and ships it between daemons, so the
// encoding must be (a) complete — every field execution depends on,
// including the SSA ret vars that ComputeDiff and the executor key on, and
// (b) canonical — one plan has exactly one byte representation, so
// export/import round trips are bit-identical and fingerprint-keyed records
// dedupe by content.
//
// The format is versioned independently of the store's record format:
// encodeVersion only changes when the plan representation itself grows (a
// new opcode aux, say), and Decode rejects versions it does not know with an
// error, never a guess.

// encodeVersion is the current canonical-form version.
const encodeVersion = 1

// encodeMagic guards against feeding arbitrary bytes to Decode.
var encodeMagic = [4]byte{'A', 'P', 'Q', 'P'}

// Aux discriminators of the canonical form. Append-only: renumbering any of
// these is a format break and requires bumping encodeVersion.
const (
	auxNone uint8 = iota
	auxBind
	auxConst
	auxSelect
	auxLike
	auxCalc
	auxAggr
	auxSort
)

// Encode renders p in the canonical binary form. Encoding is deterministic:
// structurally identical plans (same vars, instructions, auxes, parts,
// comments) produce identical bytes.
func Encode(p *Plan) []byte {
	// Rough size: header + per-var and per-instr payloads; the buffer grows
	// as needed, this only avoids early re-allocations.
	buf := make([]byte, 0, 64+8*len(p.kinds)+32*len(p.Instrs))
	buf = append(buf, encodeMagic[:]...)
	buf = append(buf, encodeVersion)
	buf = appendUvarint(buf, uint64(len(p.kinds)))
	for v := range p.kinds {
		buf = append(buf, uint8(p.kinds[v]))
		buf = appendString(buf, p.names[v])
	}
	buf = appendUvarint(buf, uint64(len(p.Instrs)))
	for _, in := range p.Instrs {
		buf = append(buf, uint8(in.Op))
		buf = appendUvarint(buf, uint64(len(in.Args)))
		for _, a := range in.Args {
			buf = appendUvarint(buf, uint64(a))
		}
		buf = appendUvarint(buf, uint64(len(in.Rets)))
		for _, r := range in.Rets {
			buf = appendUvarint(buf, uint64(r))
		}
		buf = appendUvarint(buf, in.Part.LoNum)
		buf = appendUvarint(buf, in.Part.HiNum)
		buf = appendUvarint(buf, in.Part.Den)
		buf = appendString(buf, in.Comment)
		buf = appendAux(buf, in.Aux)
	}
	return buf
}

func appendAux(buf []byte, aux any) []byte {
	switch a := aux.(type) {
	case nil:
		return append(buf, auxNone)
	case BindAux:
		buf = append(buf, auxBind)
		buf = appendString(buf, a.Table)
		return appendString(buf, a.Column)
	case ConstAux:
		buf = append(buf, auxConst)
		return appendVarint(buf, a.Value)
	case SelectAux:
		buf = append(buf, auxSelect)
		buf = appendVarint(buf, a.Pred.Lo)
		buf = appendVarint(buf, a.Pred.Hi)
		return append(buf, boolByte(a.Pred.LoIncl), boolByte(a.Pred.HiIncl))
	case LikeAux:
		buf = append(buf, auxLike)
		buf = appendString(buf, a.Pattern)
		return append(buf, uint8(a.Kind), boolByte(a.Anti))
	case CalcAux:
		buf = append(buf, auxCalc)
		buf = append(buf, uint8(a.Op))
		buf = appendVarint(buf, a.Scalar)
		return append(buf, boolByte(a.ScalarLeft))
	case AggrAux:
		return append(buf, auxAggr, uint8(a.Func))
	case SortAux:
		return append(buf, auxSort, boolByte(a.Desc))
	}
	// Unknown aux types cannot round-trip; panicking here would let a future
	// operator silently corrupt the store, so fail loudly at encode time.
	panic(fmt.Sprintf("plan: Encode: unknown aux type %T", aux))
}

// Decode parses the canonical form back into a plan. The result is
// structurally identical to the encoded plan: re-encoding it reproduces the
// input bytes exactly.
func Decode(data []byte) (*Plan, error) {
	d := &decoder{buf: data}
	var magic [4]byte
	for i := range magic {
		b, err := d.byte()
		if err != nil {
			return nil, fmt.Errorf("plan: decode: %w", err)
		}
		magic[i] = b
	}
	if magic != encodeMagic {
		return nil, fmt.Errorf("plan: decode: bad magic %q (not a canonical plan)", magic[:])
	}
	ver, err := d.byte()
	if err != nil {
		return nil, fmt.Errorf("plan: decode: %w", err)
	}
	if ver != encodeVersion {
		return nil, fmt.Errorf("plan: decode: unsupported plan-format version %d (this build reads %d)", ver, encodeVersion)
	}
	p, err := d.plan()
	if err != nil {
		return nil, fmt.Errorf("plan: decode: %w", err)
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("plan: decode: %d trailing bytes after plan", len(d.buf)-d.off)
	}
	return p, nil
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) plan() (*Plan, error) {
	nvars, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nvars > uint64(len(d.buf)) {
		return nil, fmt.Errorf("var count %d exceeds input", nvars)
	}
	p := New()
	for i := uint64(0); i < nvars; i++ {
		kb, err := d.byte()
		if err != nil {
			return nil, err
		}
		if Kind(kb) > KindGroups {
			return nil, fmt.Errorf("var %d: unknown kind %d", i, kb)
		}
		name, err := d.string()
		if err != nil {
			return nil, err
		}
		p.NewVar(Kind(kb), name)
	}
	ninstrs, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ninstrs > uint64(len(d.buf)) {
		return nil, fmt.Errorf("instruction count %d exceeds input", ninstrs)
	}
	for i := uint64(0); i < ninstrs; i++ {
		in, err := d.instr(nvars)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		p.Append(in)
	}
	return p, nil
}

func (d *decoder) instr(nvars uint64) (*Instr, error) {
	op, err := d.byte()
	if err != nil {
		return nil, err
	}
	if OpCode(op) > OpResult {
		return nil, fmt.Errorf("unknown opcode %d", op)
	}
	in := &Instr{Op: OpCode(op)}
	if in.Args, err = d.varList(nvars); err != nil {
		return nil, fmt.Errorf("args: %w", err)
	}
	if in.Rets, err = d.varList(nvars); err != nil {
		return nil, fmt.Errorf("rets: %w", err)
	}
	if in.Part.LoNum, err = d.uvarint(); err != nil {
		return nil, err
	}
	if in.Part.HiNum, err = d.uvarint(); err != nil {
		return nil, err
	}
	if in.Part.Den, err = d.uvarint(); err != nil {
		return nil, err
	}
	if in.Part.Den == 0 || in.Part.HiNum > in.Part.Den || in.Part.LoNum > in.Part.HiNum {
		return nil, fmt.Errorf("invalid part [%d/%d,%d/%d)", in.Part.LoNum, in.Part.Den, in.Part.HiNum, in.Part.Den)
	}
	if in.Comment, err = d.string(); err != nil {
		return nil, err
	}
	if in.Aux, err = d.aux(); err != nil {
		return nil, err
	}
	return in, nil
}

func (d *decoder) varList(nvars uint64) ([]VarID, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(d.buf)) {
		return nil, fmt.Errorf("list length %d exceeds input", n)
	}
	out := make([]VarID, n)
	for i := range out {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if v >= nvars {
			return nil, fmt.Errorf("variable %d out of range (plan has %d)", v, nvars)
		}
		out[i] = VarID(v)
	}
	return out, nil
}

func (d *decoder) aux() (any, error) {
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case auxNone:
		return nil, nil
	case auxBind:
		var a BindAux
		if a.Table, err = d.string(); err != nil {
			return nil, err
		}
		if a.Column, err = d.string(); err != nil {
			return nil, err
		}
		return a, nil
	case auxConst:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return ConstAux{Value: v}, nil
	case auxSelect:
		var a SelectAux
		if a.Pred.Lo, err = d.varint(); err != nil {
			return nil, err
		}
		if a.Pred.Hi, err = d.varint(); err != nil {
			return nil, err
		}
		if a.Pred.LoIncl, err = d.bool(); err != nil {
			return nil, err
		}
		if a.Pred.HiIncl, err = d.bool(); err != nil {
			return nil, err
		}
		return a, nil
	case auxLike:
		var a LikeAux
		if a.Pattern, err = d.string(); err != nil {
			return nil, err
		}
		kb, err := d.byte()
		if err != nil {
			return nil, err
		}
		a.Kind = algebra.LikeKind(kb)
		if a.Anti, err = d.bool(); err != nil {
			return nil, err
		}
		return a, nil
	case auxCalc:
		var a CalcAux
		ob, err := d.byte()
		if err != nil {
			return nil, err
		}
		a.Op = algebra.CalcOp(ob)
		if a.Scalar, err = d.varint(); err != nil {
			return nil, err
		}
		if a.ScalarLeft, err = d.bool(); err != nil {
			return nil, err
		}
		return a, nil
	case auxAggr:
		fb, err := d.byte()
		if err != nil {
			return nil, err
		}
		return AggrAux{Func: algebra.AggrFunc(fb)}, nil
	case auxSort:
		desc, err := d.bool()
		if err != nil {
			return nil, err
		}
		return SortAux{Desc: desc}, nil
	}
	return nil, fmt.Errorf("unknown aux discriminator %d", kind)
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("truncated at offset %d", d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) bool() (bool, error) {
	b, err := d.byte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("invalid bool byte %d", b)
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.off) {
		return "", fmt.Errorf("string length %d exceeds input at offset %d", n, d.off)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
