package plan

import (
	"fmt"
	"strings"
)

// String renders the plan as MAL-flavoured text, one instruction per line,
// with partition annotations — the format Figure 7's listing uses.
func (p *Plan) String() string {
	var sb strings.Builder
	for i, in := range p.Instrs {
		fmt.Fprintf(&sb, "%3d: ", i)
		if len(in.Rets) > 0 {
			rets := make([]string, len(in.Rets))
			for j, r := range in.Rets {
				rets[j] = p.NameOf(r)
			}
			fmt.Fprintf(&sb, "(%s) := ", strings.Join(rets, ", "))
		}
		sb.WriteString(in.Op.String())
		sb.WriteString("(")
		args := make([]string, len(in.Args))
		for j, a := range in.Args {
			args[j] = p.NameOf(a)
		}
		sb.WriteString(strings.Join(args, ", "))
		sb.WriteString(")")
		if aux := auxString(in.Aux); aux != "" {
			fmt.Fprintf(&sb, " %s", aux)
		}
		if !in.Part.IsFull() {
			fmt.Fprintf(&sb, " part=%s", in.Part)
		}
		if in.Comment != "" {
			fmt.Fprintf(&sb, "  # %s", in.Comment)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func auxString(aux any) string {
	switch a := aux.(type) {
	case nil:
		return ""
	case BindAux:
		return fmt.Sprintf("%s.%s", a.Table, a.Column)
	case ConstAux:
		return fmt.Sprintf("=%d", a.Value)
	case SelectAux:
		return fmt.Sprintf("pred=%s", rangeString(a.Pred))
	case LikeAux:
		neg := ""
		if a.Anti {
			neg = "!"
		}
		return fmt.Sprintf("%slike=%q", neg, a.Pattern)
	case CalcAux:
		return fmt.Sprintf("op=%s", a.Op)
	case AggrAux:
		return fmt.Sprintf("f=%s", a.Func)
	case SortAux:
		if a.Desc {
			return "desc"
		}
		return "asc"
	}
	return fmt.Sprintf("%v", aux)
}

// Dot renders the dataflow graph in Graphviz format, the visual companion to
// Figure 7 ("rectangles represent operators, edges the dependencies").
func (p *Plan) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph plan {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	for i, in := range p.Instrs {
		label := in.Op.String()
		if !in.Part.IsFull() {
			label += "\\n" + in.Part.String()
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\"];\n", i, label)
	}
	producer := make(map[VarID]int)
	for i, in := range p.Instrs {
		for _, r := range in.Rets {
			producer[r] = i
		}
	}
	for i, in := range p.Instrs {
		seen := map[int]bool{}
		for _, a := range in.Args {
			if src, ok := producer[a]; ok && !seen[src] {
				fmt.Fprintf(&sb, "  n%d -> n%d;\n", src, i)
				seen[src] = true
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func rangeString(r any) string {
	return strings.ReplaceAll(fmt.Sprintf("%+v", r), " ", "")
}
