package plan

import (
	"testing"

	"repro/internal/algebra"
)

// diffBasePlan builds select → fetch → aggr → result over one bound column.
func diffBasePlan() *Plan {
	b := NewBuilder()
	col := b.Bind("t", "v")
	sel := b.Select(col, algebra.AtLeast(10))
	vals := b.Fetch(sel, col)
	sum := b.Aggr(algebra.AggrSum, vals)
	b.Result(sum)
	return b.Plan()
}

func TestComputeDiffIdentity(t *testing.T) {
	p := diffBasePlan()
	cp := p.Clone()
	d := ComputeDiff(p, cp)
	if d.Matched != len(p.Instrs) {
		t.Fatalf("clone should match fully: %d of %d", d.Matched, len(p.Instrs))
	}
	for ci, pi := range d.ParentOf {
		if int(pi) != ci {
			t.Fatalf("instr %d matched to %d on an unchanged clone", ci, pi)
		}
		if int(d.ChildOf[pi]) != ci {
			t.Fatalf("inverse mapping broken at %d", ci)
		}
	}
}

// A mutation-shaped child: the fetch is replaced by two sliced clones and a
// pack (fresh variables), the aggregate is rewired to the pack. Everything
// upstream of the mutation must match; the mutation products and every
// instruction consuming them must not.
func TestComputeDiffMutationShape(t *testing.T) {
	p := diffBasePlan()
	cp := p.Clone()
	// Locate the fetch and the aggr.
	var fetchIdx, aggrIdx int
	for i, in := range cp.Instrs {
		switch in.Op {
		case OpFetch:
			fetchIdx = i
		case OpAggr:
			aggrIdx = i
		}
	}
	fetch := cp.Instrs[fetchIdx]
	parts := FullPart().SplitN(2)
	cloneRets := make([]VarID, 2)
	newInstrs := make([]*Instr, 0, len(cp.Instrs)+2)
	for i, in := range cp.Instrs {
		if i == fetchIdx {
			for k, pt := range parts {
				cloneRets[k] = cp.NewVar(KindColumn, "")
				newInstrs = append(newInstrs, &Instr{Op: OpFetch, Args: append([]VarID(nil), fetch.Args...),
					Rets: []VarID{cloneRets[k]}, Part: pt})
			}
			continue
		}
		newInstrs = append(newInstrs, in)
	}
	packed := cp.NewVar(KindColumn, "")
	// Insert the pack before the aggregate and rewire it.
	out := make([]*Instr, 0, len(newInstrs)+1)
	for _, in := range newInstrs {
		if in == cp.Instrs[aggrIdx] {
			out = append(out, &Instr{Op: OpPack, Args: append([]VarID(nil), cloneRets...),
				Rets: []VarID{packed}, Part: FullPart()})
			in.Args = []VarID{packed}
		}
		out = append(out, in)
	}
	cp.Instrs = out
	if err := cp.Validate(); err != nil {
		t.Fatalf("mutated child invalid: %v", err)
	}

	d := ComputeDiff(p, cp)
	for ci, in := range cp.Instrs {
		pi := d.ParentOf[ci]
		switch in.Op {
		case OpBind, OpSelect:
			if pi < 0 {
				t.Fatalf("upstream %s should match, got -1", in.Op)
			}
			if !instrEqual(in, p.Instrs[pi]) {
				t.Fatalf("%s matched to a non-identical instruction", in.Op)
			}
		case OpFetch, OpPack:
			if pi >= 0 {
				t.Fatalf("mutated %s matched parent %d", in.Op, pi)
			}
		case OpAggr, OpResult:
			// The aggr's args changed (OpAggr) or its producer subtree did
			// (OpResult consumes the rewired aggregate's output... the result
			// var itself is unchanged but produced by an unmatched instr).
			if in.Op == OpAggr && pi >= 0 {
				t.Fatalf("rewired aggr matched parent %d", pi)
			}
			if in.Op == OpResult && pi >= 0 {
				t.Fatalf("result over a mutated subtree matched parent %d", pi)
			}
		}
	}
	if d.Matched == 0 || d.Matched >= len(cp.Instrs) {
		t.Fatalf("expected a partial match, got %d of %d", d.Matched, len(cp.Instrs))
	}
	// The removed fetch must have no child image.
	if d.ChildOf[fetchIdx] >= 0 {
		t.Fatalf("removed fetch still mapped to child %d", d.ChildOf[fetchIdx])
	}
}

// ValidateIncremental must still catch structural corruption in matched
// regions (def-before-use, SSA) while skipping only per-operator checks.
func TestValidateIncrementalCatchesCorruption(t *testing.T) {
	p := diffBasePlan()
	cp := p.Clone()
	d := ComputeDiff(p, cp)
	if err := cp.ValidateIncremental(d); err != nil {
		t.Fatalf("valid clone rejected: %v", err)
	}
	// Swap two instructions to break def-before-use; the diff is stale but
	// the global scan must still reject the plan.
	cp.Instrs[1], cp.Instrs[2] = cp.Instrs[2], cp.Instrs[1]
	if err := cp.ValidateIncremental(ComputeDiff(p, cp)); err == nil {
		t.Fatal("def-before-use violation not caught")
	}
}
