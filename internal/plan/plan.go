// Package plan implements the query-plan representation of the engine: an
// SSA list of operators over typed variables, forming a dataflow graph — the
// same properties MonetDB's MAL gives the paper ("its plan representation
// allows identification of individual expensive operators", §2). Plans are
// value-like: mutations clone a plan and rewrite instructions, never touching
// the original, so the plan history kept by adaptive parallelization stays
// valid.
//
// Every partitionable instruction carries a Part — a binary-rational range
// over its anchor input. Partition boundaries are dyadic fractions, so
// repeated splits stay aligned on the base column (Figure 8) no matter the
// runtime input length: floor(n·k/2^m) boundaries of a coarse split always
// coincide with boundaries of its refinements.
//
// Ownership invariants: a *Plan handed to the executor is immutable from
// that point on — the execution engine caches compilation state keyed by
// plan object identity, and ComputeDiff matches instructions structurally
// between a parent and its mutated clone, both of which are only sound
// because no instruction is ever rewritten in place after submission.
// Clone slab-allocates its instructions; the clone owns the slab.
package plan

import (
	"fmt"
)

// VarID names an SSA variable within one plan.
type VarID int

// Kind is the runtime type of a variable.
type Kind int

// Variable kinds.
const (
	KindColumn Kind = iota // materialized column view (values)
	KindOids               // selection vector of absolute head oids
	KindScalar             // single int64
	KindGroups             // group-by result (keys + gids)
)

func (k Kind) String() string {
	switch k {
	case KindColumn:
		return "col"
	case KindOids:
		return "oids"
	case KindScalar:
		return "scalar"
	case KindGroups:
		return "groups"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// OpCode enumerates plan operators.
type OpCode int

// Operators. The names follow the MAL operators they model.
const (
	// OpBind binds a base table column (sql.bind). Aux: BindAux.
	OpBind OpCode = iota
	// OpConst produces a scalar constant. Aux: ConstAux.
	OpConst
	// OpSelect scans a column with a range predicate → oids (algebra.uselect).
	// Args: [col]. Aux: SelectAux. Partitionable on arg 0.
	OpSelect
	// OpSelectCand refines candidates against a column (algebra.subselect
	// with a candidate list). Args: [col, cands]. Aux: SelectAux.
	// Partitionable on arg 1 (the candidate list).
	OpSelectCand
	// OpLikeSelect scans a string column with a LIKE pattern → oids
	// (batstr.like + uselect). Args: [col]. Aux: LikeAux. Partitionable on
	// arg 0.
	OpLikeSelect
	// OpFetch is tuple reconstruction (algebra.leftfetchjoin). Args:
	// [oids, col] → col. Partitionable on arg 0.
	OpFetch
	// OpJoin is a hash join building on the inner, probing the outer
	// (algebra.join). Args: [outer(col), inner(col)] → [louter(oids),
	// rinner(oids)]. Partitionable on arg 0 (the outer), per §2.1.
	OpJoin
	// OpFetchPos gathers arg1 values at zero-based positions arg0.
	// Args: [pos(oids), col] → col. Partitionable on arg 0.
	OpFetchPos
	// OpCalcVV is element-wise arithmetic (batcalc.*). Args: [a, b] → col.
	// Aux: CalcAux. Partitionable on args 0 and 1 jointly.
	OpCalcVV
	// OpCalcSV is arithmetic with a scalar constant operand. Args: [v] →
	// col. Aux: CalcAux (Scalar, ScalarLeft). Partitionable on arg 0.
	OpCalcSV
	// OpCalcSSV is arithmetic between a scalar variable and a column.
	// Args: [s(scalar), v(col)] → col. Aux: CalcAux (ScalarLeft).
	// Partitionable on arg 1.
	OpCalcSSV
	// OpCalcSS is scalar-scalar arithmetic (calc.*). Args: [a, b] → scalar.
	// Aux: CalcAux.
	OpCalcSS
	// OpGroupBy groups a key column (group.subgroup). Args: [keys] →
	// groups. Parallelized only via the advanced mutation.
	OpGroupBy
	// OpGroupKeys extracts the distinct keys of a groups value. Args:
	// [groups] → col.
	OpGroupKeys
	// OpAggrGrouped aggregates values per group (aggr.subsum). Args:
	// [vals, groups] → col. Aux: AggrAux.
	OpAggrGrouped
	// OpAggr is a scalar aggregate (aggr.sum). Args: [vals] → scalar. Aux:
	// AggrAux. Parallelized via the advanced mutation (partials + merge).
	OpAggr
	// OpMergeAggr merges packed partial scalar aggregates. Args: [partials
	// (col)] → scalar. Aux: AggrAux (the ORIGINAL aggregate; merge
	// semantics are derived from it).
	OpMergeAggr
	// OpGroupMerge re-groups packed per-partition (keys, partial) pairs.
	// Args: [keys(col), partials(col)] → [keys(col), aggs(col)]. Aux:
	// AggrAux.
	OpGroupMerge
	// OpPack is the exchange union operator (mat.pack). Variadic args of
	// one kind: all-oids → oids, all-columns → col, all-scalars → col.
	OpPack
	// OpSort sorts a column (algebra.sort). Args: [col] → [sorted(col),
	// perm(oids)]. Aux: SortAux.
	OpSort
	// OpMergeSorted merges pre-sorted runs. Variadic col args → col. Aux:
	// SortAux.
	OpMergeSorted
	// OpResult marks query outputs (sql.exportValue); variadic args.
	OpResult
)

var opNames = map[OpCode]string{
	OpBind:        "bind",
	OpConst:       "const",
	OpSelect:      "select",
	OpSelectCand:  "selectcand",
	OpLikeSelect:  "likeselect",
	OpFetch:       "fetch",
	OpJoin:        "join",
	OpFetchPos:    "fetchpos",
	OpCalcVV:      "calcvv",
	OpCalcSV:      "calcsv",
	OpCalcSSV:     "calcssv",
	OpCalcSS:      "calcss",
	OpGroupBy:     "groupby",
	OpGroupKeys:   "groupkeys",
	OpAggrGrouped: "aggrgrouped",
	OpAggr:        "aggr",
	OpMergeAggr:   "mergeaggr",
	OpGroupMerge:  "groupmerge",
	OpPack:        "pack",
	OpSort:        "sort",
	OpMergeSorted: "mergesorted",
	OpResult:      "result",
}

func (op OpCode) String() string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// SliceArgs returns the argument indices that a Part slices for op, or nil
// when the operator is not range-partitionable by the basic mutation.
// GroupBy, Aggr and Sort are handled by the advanced mutation instead and
// report their anchor here too (the advanced mutation slices the same way).
func SliceArgs(op OpCode) []int {
	switch op {
	case OpSelect, OpLikeSelect, OpFetch, OpJoin, OpFetchPos, OpCalcSV, OpSort, OpAggr, OpGroupBy, OpAggrGrouped:
		return []int{0}
	case OpSelectCand, OpCalcSSV:
		return []int{1}
	case OpCalcVV:
		return []int{0, 1}
	}
	return nil
}

// BasicPartitionable reports whether the basic mutation (Figure 3) applies.
func BasicPartitionable(op OpCode) bool {
	switch op {
	case OpSelect, OpSelectCand, OpLikeSelect, OpFetch, OpJoin, OpFetchPos, OpCalcVV, OpCalcSV, OpCalcSSV:
		return true
	}
	return false
}

// AdvancedPartitionable reports whether the advanced mutation (Figure 6 —
// operators without the filtering property) applies.
func AdvancedPartitionable(op OpCode) bool {
	switch op {
	case OpGroupBy, OpAggr, OpSort:
		return true
	}
	return false
}

// Part is a dyadic-rational sub-range [LoNum/Den, HiNum/Den) over an
// instruction's anchor input. Den is always a power of two so that nested
// splits remain aligned with every coarser boundary.
type Part struct {
	LoNum, HiNum, Den uint64
}

// FullPart covers the whole input.
func FullPart() Part { return Part{LoNum: 0, HiNum: 1, Den: 1} }

// IsFull reports whether p covers the whole input.
func (p Part) IsFull() bool { return p.LoNum == 0 && p.HiNum == p.Den }

// Split halves p into two aligned sub-ranges.
func (p Part) Split() (Part, Part) {
	lo2, hi2, den2 := p.LoNum*2, p.HiNum*2, p.Den*2
	mid := (lo2 + hi2) / 2
	return Part{LoNum: lo2, HiNum: mid, Den: den2}, Part{LoNum: mid, HiNum: hi2, Den: den2}
}

// SplitN cuts p into n aligned pieces (used by the static heuristic
// parallelizer, which uses fixed equal partitions). n is rounded up to a
// power of two internally to preserve dyadic alignment; the returned slice
// still has exactly n non-empty-by-construction ranges obtained by merging
// surplus leaves, except that when n is already a power of two the pieces
// are exactly equal.
func (p Part) SplitN(n int) []Part {
	if n <= 1 {
		return []Part{p}
	}
	pow := 1
	for pow < n {
		pow *= 2
	}
	den := p.Den * uint64(pow)
	lo := p.LoNum * uint64(pow)
	hi := p.HiNum * uint64(pow)
	span := hi - lo
	out := make([]Part, 0, n)
	for i := 0; i < n; i++ {
		a := lo + span*uint64(i)/uint64(n)
		b := lo + span*uint64(i+1)/uint64(n)
		out = append(out, Part{LoNum: a, HiNum: b, Den: den})
	}
	return out
}

// Resolve maps p onto a concrete input length, returning positional bounds
// [lo, hi). Floor arithmetic keeps boundaries of nested splits coincident.
func (p Part) Resolve(n int) (lo, hi int) {
	un := uint64(n)
	lo = int(un * p.LoNum / p.Den)
	hi = int(un * p.HiNum / p.Den)
	return lo, hi
}

// Before reports partition order: p entirely precedes q.
func (p Part) Before(q Part) bool {
	// Compare LoNum/Den cross-multiplied.
	return p.LoNum*q.Den < q.LoNum*p.Den
}

func (p Part) String() string {
	if p.IsFull() {
		return "full"
	}
	return fmt.Sprintf("[%d/%d,%d/%d)", p.LoNum, p.Den, p.HiNum, p.Den)
}

// Instr is one plan instruction. Args and Rets reference plan variables;
// Aux carries operator parameters; Part restricts the anchor input range.
type Instr struct {
	Op   OpCode
	Args []VarID
	Rets []VarID
	Aux  any
	Part Part
	// Comment is free-form provenance recorded by mutations ("clone of
	// select #4"), surfaced by the pretty-printer.
	Comment string
}

func (in *Instr) clone() *Instr {
	cp := *in
	cp.Args = append([]VarID(nil), in.Args...)
	cp.Rets = append([]VarID(nil), in.Rets...)
	return &cp
}

// Plan is an ordered SSA instruction list. The order is a topological order
// of the dataflow graph (def before use); Validate enforces it.
type Plan struct {
	Instrs []*Instr
	kinds  []Kind
	names  []string
}

// New returns an empty plan.
func New() *Plan { return &Plan{} }

// NewVar allocates a fresh variable of kind k. The name is cosmetic.
func (p *Plan) NewVar(k Kind, name string) VarID {
	id := VarID(len(p.kinds))
	p.kinds = append(p.kinds, k)
	p.names = append(p.names, name)
	return id
}

// NVars returns the number of variables.
func (p *Plan) NVars() int { return len(p.kinds) }

// KindOf returns the kind of v.
func (p *Plan) KindOf(v VarID) Kind { return p.kinds[v] }

// NameOf returns the cosmetic name of v.
func (p *Plan) NameOf(v VarID) string {
	if n := p.names[v]; n != "" {
		return n
	}
	return fmt.Sprintf("X_%d", int(v))
}

// Append adds an instruction at the end.
func (p *Plan) Append(in *Instr) { p.Instrs = append(p.Instrs, in) }

// Clone deep-copies the plan. The copy is slab-allocated — one block for
// the instruction structs, one for every Args/Rets list — so cloning costs
// O(1) allocations instead of 3 per instruction: mutations clone on every
// adaptive step, which made per-instruction cloning the single largest
// allocator on the exploration cold path. Appending to a cloned
// instruction's Args (pack splicing) reallocates that list out of the slab,
// exactly like any full slice; the slab is never shared between plans.
func (p *Plan) Clone() *Plan {
	cp := &Plan{
		Instrs: make([]*Instr, len(p.Instrs)),
		kinds:  append([]Kind(nil), p.kinds...),
		names:  append([]string(nil), p.names...),
	}
	nvar := 0
	for _, in := range p.Instrs {
		nvar += len(in.Args) + len(in.Rets)
	}
	slab := make([]Instr, len(p.Instrs))
	vars := make([]VarID, 0, nvar)
	for i, in := range p.Instrs {
		slab[i] = *in
		lo := len(vars)
		vars = append(vars, in.Args...)
		slab[i].Args = vars[lo:len(vars):len(vars)]
		lo = len(vars)
		vars = append(vars, in.Rets...)
		slab[i].Rets = vars[lo:len(vars):len(vars)]
		cp.Instrs[i] = &slab[i]
	}
	return cp
}

// Producer returns the index of the instruction producing v, or -1.
func (p *Plan) Producer(v VarID) int {
	for i, in := range p.Instrs {
		for _, r := range in.Rets {
			if r == v {
				return i
			}
		}
	}
	return -1
}

// Consumers returns the indices of instructions consuming v, in plan order.
func (p *Plan) Consumers(v VarID) []int {
	var out []int
	for i, in := range p.Instrs {
		for _, a := range in.Args {
			if a == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Results returns the variables marked as query outputs.
func (p *Plan) Results() []VarID {
	for _, in := range p.Instrs {
		if in.Op == OpResult {
			return append([]VarID(nil), in.Args...)
		}
	}
	return nil
}

// CountOps returns how many instructions have the given opcode — the plan
// statistics of Table 5 (#select operators, #join operators).
func (p *Plan) CountOps(op OpCode) int {
	n := 0
	for _, in := range p.Instrs {
		if in.Op == op {
			n++
		}
	}
	return n
}

// MaxDOP returns the plan's degree of parallelism: the largest number of
// sibling clones any pack combines (1 for a serial plan).
func (p *Plan) MaxDOP() int {
	dop := 1
	for _, in := range p.Instrs {
		if in.Op == OpPack && len(in.Args) > dop {
			dop = len(in.Args)
		}
	}
	return dop
}
