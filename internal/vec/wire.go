package vec

import "encoding/binary"

// Little-endian int64 framing for columnar payloads on the wire. The result
// wire format (internal/server's APQRESULT) streams published immutable
// vector buffers straight to the socket; these helpers are the only
// byte-level encoding of a vector's tail, kept here so the wire layer never
// reaches into vector internals.

// AppendInt64LE appends vals to dst in little-endian byte order and returns
// the extended slice. It never retains vals.
func AppendInt64LE(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// Int64LE decodes n little-endian int64 values from src into a fresh slice.
// src must hold at least n*8 bytes (callers validate lengths first).
func Int64LE(src []byte, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(src[i*8:]))
	}
	return out
}
