// Package vec provides the typed columnar payloads that every other layer of
// the engine builds on: immutable int64 value vectors (dates, decimals and
// dictionary codes are all carried as int64, mirroring MonetDB's lng-centric
// BAT tails), string dictionaries, and order-preserving concatenation used by
// the exchange-union (pack) operator.
//
// Vectors are deliberately immutable after construction: range partitioning
// in the paper (§2.3) is "creating read only slices on the base or the
// intermediate column ... no data copying involved", and immutability is what
// makes zero-copy slicing safe under simulated parallel execution.
//
// Ownership invariants: constructors take ownership of their value slice —
// the caller must not modify it afterwards — and Builder is the write-once
// bridge for shared result buffers: exchange-union clones write disjoint
// ranges of one owned buffer, and Publish freezes it into an immutable
// Vector (possibly a dense head view) that may alias the buffer forever;
// the buffer may only be recycled if the published vector never escaped to
// a query result (the executor's escape analysis enforces this).
package vec

import "fmt"

// Vector is an immutable columnar payload. When dict is non-nil the values
// are codes into the dictionary and the logical type is string; otherwise the
// values are int64 payloads (integers, fixed-point decimals, or day numbers).
type Vector struct {
	vals []int64
	dict *Dict
}

// NewInt64 wraps vals in a Vector. The caller must not modify vals afterwards.
func NewInt64(vals []int64) *Vector {
	return &Vector{vals: vals}
}

// NewDictCoded wraps dictionary codes in a Vector bound to dict. The caller
// must not modify vals afterwards.
func NewDictCoded(vals []int64, dict *Dict) *Vector {
	if dict == nil {
		panic("vec: NewDictCoded requires a dictionary")
	}
	return &Vector{vals: vals, dict: dict}
}

// Len reports the number of values.
func (v *Vector) Len() int { return len(v.vals) }

// At returns the value at position i.
func (v *Vector) At(i int) int64 { return v.vals[i] }

// Values exposes the backing slice for read-only scans. Callers must treat
// the returned slice as immutable.
func (v *Vector) Values() []int64 { return v.vals }

// Dict returns the dictionary for string-typed vectors, or nil.
func (v *Vector) Dict() *Dict { return v.dict }

// IsString reports whether the vector carries dictionary-coded strings.
func (v *Vector) IsString() bool { return v.dict != nil }

// Slice returns a zero-copy view of positions [lo, hi). It shares the
// backing array with the receiver.
func (v *Vector) Slice(lo, hi int) *Vector {
	if lo < 0 || hi < lo || hi > len(v.vals) {
		panic(fmt.Sprintf("vec: slice [%d,%d) out of range for length %d", lo, hi, len(v.vals)))
	}
	return &Vector{vals: v.vals[lo:hi:hi], dict: v.dict}
}

// StringAt renders position i as a string for dictionary-coded vectors.
func (v *Vector) StringAt(i int) string {
	if v.dict == nil {
		return fmt.Sprintf("%d", v.vals[i])
	}
	return v.dict.Value(v.vals[i])
}

// Bytes reports the payload size in bytes (8 bytes per value), the unit the
// cost model charges for sequential scans.
func (v *Vector) Bytes() int64 { return int64(len(v.vals)) * 8 }

// Concat concatenates the parts in argument order into a freshly allocated
// vector. It is the kernel of the exchange-union (pack) operator; argument
// order must follow partition order so that packed outputs preserve the
// ordering invariant from §2.3 of the paper. All parts must share the same
// dictionary (or all have none).
func Concat(parts ...*Vector) *Vector {
	total := 0
	var dict *Dict
	for i, p := range parts {
		total += p.Len()
		if i == 0 {
			dict = p.dict
		} else if p.dict != dict {
			panic("vec: Concat over mixed dictionaries")
		}
	}
	out := make([]int64, 0, total)
	for _, p := range parts {
		out = append(out, p.vals...)
	}
	return &Vector{vals: out, dict: dict}
}

// ConcatInt64 concatenates raw int64 slices in order into a new slice.
func ConcatInt64(parts ...[]int64) []int64 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int64, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Equal reports whether two vectors hold identical values (dictionaries are
// compared by rendered strings so logically equal string vectors compare
// equal even across distinct dictionary instances).
func Equal(a, b *Vector) bool {
	if a.Len() != b.Len() {
		return false
	}
	if a.dict == nil && b.dict == nil {
		for i, v := range a.vals {
			if b.vals[i] != v {
				return false
			}
		}
		return true
	}
	if a.dict == nil || b.dict == nil {
		return false
	}
	for i := range a.vals {
		if a.StringAt(i) != b.StringAt(i) {
			return false
		}
	}
	return true
}
