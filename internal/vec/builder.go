package vec

import "fmt"

// Builder assembles a Vector in place over one owned int64 buffer before
// publishing it as immutable. It exists for the zero-copy exchange: the
// executor pre-sizes one result buffer for the sibling partition clones of a
// materializing operator, each clone writes its disjoint [lo,hi) range
// exactly once, and the downstream pack publishes the whole buffer as a view
// instead of concatenating copies.
//
// The write-once discipline preserves the package's immutable-after-publish
// contract: WriteRange hands out a writable window only while the builder is
// unpublished, View freezes the written range it covers, and Publish freezes
// the whole buffer. Writing to a range after a View over it, or calling
// WriteRange after Publish, is a contract violation; the cheap-to-check
// cases panic.
type Builder struct {
	vals      []int64
	dict      *Dict
	published bool
}

// NewBuilder allocates a builder for n values.
func NewBuilder(n int) *Builder {
	return &Builder{vals: make([]int64, n)}
}

// NewBuilderOver wraps a caller-owned buffer; len(buf) is the logical vector
// length. The caller transfers ownership: it must not read or write buf
// except through the builder until every vector published from it is dead
// (the executor's arena relies on exactly this to recycle buffers across
// invocations of a cached plan).
func NewBuilderOver(buf []int64) *Builder {
	return &Builder{vals: buf}
}

// Len reports the builder's logical length.
func (b *Builder) Len() int { return len(b.vals) }

// BindDict marks the buffer as carrying dictionary codes for d. All ranges
// of one builder share the dictionary (pack inputs must, §2.3).
func (b *Builder) BindDict(d *Dict) {
	if b.dict != nil && b.dict != d {
		panic("vec: Builder rebound to a different dictionary")
	}
	b.dict = d
}

// WriteRange returns the writable window for positions [lo, hi). Each range
// must be written by exactly one owner, exactly once, before it is viewed.
func (b *Builder) WriteRange(lo, hi int) []int64 {
	if b.published {
		panic("vec: WriteRange on a published Builder")
	}
	if lo < 0 || hi < lo || hi > len(b.vals) {
		panic(fmt.Sprintf("vec: builder range [%d,%d) out of range for length %d", lo, hi, len(b.vals)))
	}
	return b.vals[lo:hi:hi]
}

// View publishes positions [lo, hi) as an immutable vector sharing the
// builder's buffer. The range must already be fully written; the caller must
// not write it again.
func (b *Builder) View(lo, hi int) *Vector {
	if lo < 0 || hi < lo || hi > len(b.vals) {
		panic(fmt.Sprintf("vec: builder view [%d,%d) out of range for length %d", lo, hi, len(b.vals)))
	}
	return &Vector{vals: b.vals[lo:hi:hi], dict: b.dict}
}

// Publish freezes the builder and returns the whole buffer as an immutable
// vector. Further WriteRange calls panic; Views taken earlier stay valid —
// they alias the same now-immutable buffer.
func (b *Builder) Publish() *Vector {
	b.published = true
	return &Vector{vals: b.vals, dict: b.dict}
}
