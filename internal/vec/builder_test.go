package vec

import "testing"

func TestBuilderRangesAndPublish(t *testing.T) {
	b := NewBuilder(5)
	copy(b.WriteRange(0, 2), []int64{1, 2})
	copy(b.WriteRange(2, 5), []int64{3, 4, 5})
	part := b.View(0, 2)
	if part.Len() != 2 || part.At(1) != 2 {
		t.Fatalf("view = %v", part.Values())
	}
	whole := b.Publish()
	for i := int64(0); i < 5; i++ {
		if whole.At(int(i)) != i+1 {
			t.Fatalf("published = %v", whole.Values())
		}
	}
	// The published vector and earlier views alias one buffer: the pack
	// output must be bit-identical to the concat of its parts.
	if !Equal(whole, Concat(b.View(0, 2), b.View(2, 5))) {
		t.Fatal("published buffer differs from concatenated views")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WriteRange after Publish did not panic")
		}
	}()
	b.WriteRange(0, 1)
}

func TestBuilderOverReusesBuffer(t *testing.T) {
	buf := make([]int64, 4)
	b := NewBuilderOver(buf)
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	copy(b.WriteRange(0, 4), []int64{9, 8, 7, 6})
	v := b.Publish()
	if v.At(0) != 9 || &buf[0] != &v.Values()[0] {
		t.Fatal("NewBuilderOver must publish over the caller's buffer")
	}
}

func TestBuilderDict(t *testing.T) {
	d := NewDict()
	c := d.Code("x")
	b := NewBuilder(1)
	b.BindDict(d)
	b.WriteRange(0, 1)[0] = c
	if got := b.Publish().StringAt(0); got != "x" {
		t.Fatalf("StringAt = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rebinding a different dictionary did not panic")
		}
	}()
	b2 := NewBuilder(1)
	b2.BindDict(d)
	b2.BindDict(NewDict())
}
