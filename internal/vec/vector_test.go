package vec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewInt64Basics(t *testing.T) {
	v := NewInt64([]int64{3, 1, 4, 1, 5})
	if v.Len() != 5 {
		t.Fatalf("Len = %d, want 5", v.Len())
	}
	if v.At(2) != 4 {
		t.Fatalf("At(2) = %d, want 4", v.At(2))
	}
	if v.Bytes() != 40 {
		t.Fatalf("Bytes = %d, want 40", v.Bytes())
	}
	if v.IsString() {
		t.Fatal("int64 vector reported as string")
	}
	if v.StringAt(0) != "3" {
		t.Fatalf("StringAt(0) = %q, want \"3\"", v.StringAt(0))
	}
}

func TestSliceIsZeroCopy(t *testing.T) {
	backing := []int64{0, 10, 20, 30, 40}
	v := NewInt64(backing)
	s := v.Slice(1, 4)
	if s.Len() != 3 || s.At(0) != 10 || s.At(2) != 30 {
		t.Fatalf("slice contents wrong: %v", s.Values())
	}
	// Shares backing storage: mutating the original array is visible, which
	// proves no copy happened (vectors are treated as immutable elsewhere).
	backing[1] = 99
	if s.At(0) != 99 {
		t.Fatal("Slice copied data; expected zero-copy view")
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	v := NewInt64([]int64{1, 2, 3})
	for _, bounds := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d,%d) did not panic", bounds[0], bounds[1])
				}
			}()
			v.Slice(bounds[0], bounds[1])
		}()
	}
}

func TestSliceEmpty(t *testing.T) {
	v := NewInt64([]int64{1, 2, 3})
	s := v.Slice(2, 2)
	if s.Len() != 0 {
		t.Fatalf("empty slice has length %d", s.Len())
	}
}

func TestConcatOrderPreserving(t *testing.T) {
	a := NewInt64([]int64{1, 2})
	b := NewInt64([]int64{3})
	c := NewInt64([]int64{})
	d := NewInt64([]int64{4, 5})
	got := Concat(a, b, c, d)
	want := []int64{1, 2, 3, 4, 5}
	if got.Len() != len(want) {
		t.Fatalf("Concat length = %d, want %d", got.Len(), len(want))
	}
	for i, w := range want {
		if got.At(i) != w {
			t.Fatalf("Concat[%d] = %d, want %d", i, got.At(i), w)
		}
	}
}

// Property: concatenating an arbitrary partitioning of a vector reproduces
// the vector — the ordering invariant the pack operator relies on (§2.3).
func TestConcatOfPartitionsIsIdentity(t *testing.T) {
	f := func(vals []int64, seed int64) bool {
		v := NewInt64(vals)
		rng := rand.New(rand.NewSource(seed))
		// Cut [0,len) into random contiguous pieces.
		var cuts []int
		prev := 0
		for prev < len(vals) {
			step := 1 + rng.Intn(len(vals)-prev)
			prev += step
			cuts = append(cuts, prev)
		}
		var parts []*Vector
		lo := 0
		for _, hi := range cuts {
			parts = append(parts, v.Slice(lo, hi))
			lo = hi
		}
		return Equal(Concat(parts...), v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatMixedDictionariesPanics(t *testing.T) {
	d1, d2 := NewDict(), NewDict()
	a := NewDictCoded([]int64{d1.Code("x")}, d1)
	b := NewDictCoded([]int64{d2.Code("y")}, d2)
	defer func() {
		if recover() == nil {
			t.Fatal("Concat over mixed dictionaries did not panic")
		}
	}()
	Concat(a, b)
}

func TestConcatInt64(t *testing.T) {
	got := ConcatInt64([]int64{1}, nil, []int64{2, 3})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("ConcatInt64 = %v", got)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(NewInt64([]int64{1, 2}), NewInt64([]int64{1, 2})) {
		t.Fatal("equal vectors reported unequal")
	}
	if Equal(NewInt64([]int64{1, 2}), NewInt64([]int64{1, 3})) {
		t.Fatal("unequal values reported equal")
	}
	if Equal(NewInt64([]int64{1}), NewInt64([]int64{1, 1})) {
		t.Fatal("unequal lengths reported equal")
	}
	d1, d2 := NewDict(), NewDict()
	d1.Code("pad") // force different codes for the same strings
	a := NewDictCoded([]int64{d1.Code("a"), d1.Code("b")}, d1)
	b := NewDictCoded([]int64{d2.Code("a"), d2.Code("b")}, d2)
	if !Equal(a, b) {
		t.Fatal("logically equal string vectors reported unequal across dictionaries")
	}
	if Equal(a, NewInt64([]int64{1, 2})) {
		t.Fatal("string vector equal to int vector")
	}
}

func TestDictCodeLookupValue(t *testing.T) {
	d := NewDict()
	c1 := d.Code("PROMO BRUSHED STEEL")
	c2 := d.Code("STANDARD POLISHED TIN")
	if c1 == c2 {
		t.Fatal("distinct strings received identical codes")
	}
	if again := d.Code("PROMO BRUSHED STEEL"); again != c1 {
		t.Fatalf("re-interning returned %d, want %d", again, c1)
	}
	if got, ok := d.Lookup("STANDARD POLISHED TIN"); !ok || got != c2 {
		t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, c2)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup of missing value succeeded")
	}
	if d.Value(c1) != "PROMO BRUSHED STEEL" {
		t.Fatalf("Value(c1) = %q", d.Value(c1))
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestDictMatch(t *testing.T) {
	d := NewDict()
	promo := d.Code("PROMO BRUSHED STEEL")
	std := d.Code("STANDARD POLISHED TIN")
	promo2 := d.Code("PROMO ANODIZED COPPER")

	sub := d.MatchSubstring("BRUSHED")
	if !sub[promo] || sub[std] || sub[promo2] {
		t.Fatalf("MatchSubstring = %v", sub)
	}
	pre := d.MatchPrefix("PROMO")
	if !pre[promo] || !pre[promo2] || pre[std] {
		t.Fatalf("MatchPrefix = %v", pre)
	}
}

func TestDictCodedVectorStrings(t *testing.T) {
	d := NewDict()
	codes := []int64{d.Code("a"), d.Code("b"), d.Code("a")}
	v := NewDictCoded(codes, d)
	if !v.IsString() {
		t.Fatal("dict-coded vector not recognised as string")
	}
	if v.StringAt(2) != "a" {
		t.Fatalf("StringAt(2) = %q", v.StringAt(2))
	}
	if v.Dict() != d {
		t.Fatal("Dict() did not return the bound dictionary")
	}
	s := v.Slice(1, 3)
	if s.Dict() != d {
		t.Fatal("slice lost its dictionary")
	}
}

func TestNewDictCodedNilDictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDictCoded(nil) did not panic")
		}
	}()
	NewDictCoded([]int64{0}, nil)
}
