package vec

import "strings"

// Dict is an append-only string dictionary. Codes are assigned densely in
// insertion order, which keeps dictionary-coded columns cache-friendly and
// makes LIKE-style predicates a dictionary scan followed by a code-membership
// scan (the standard column-store trick the paper's batstr.like relies on).
type Dict struct {
	values []string
	index  map[string]int64
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{index: make(map[string]int64)}
}

// Code interns s and returns its code.
func (d *Dict) Code(s string) int64 {
	if c, ok := d.index[s]; ok {
		return c
	}
	c := int64(len(d.values))
	d.values = append(d.values, s)
	d.index[s] = c
	return c
}

// Lookup returns the code for s and whether it is present.
func (d *Dict) Lookup(s string) (int64, bool) {
	c, ok := d.index[s]
	return c, ok
}

// Value returns the string for code c.
func (d *Dict) Value(c int64) string { return d.values[c] }

// Len reports the number of distinct values.
func (d *Dict) Len() int { return len(d.values) }

// MatchSubstring returns the set of codes whose value contains pattern, as a
// dense membership bitmap indexed by code. A LIKE '%pat%' select over a
// dictionary-coded column is a scan over this bitmap.
func (d *Dict) MatchSubstring(pattern string) []bool {
	out := make([]bool, len(d.values))
	for i, v := range d.values {
		out[i] = strings.Contains(v, pattern)
	}
	return out
}

// MatchPrefix returns the membership bitmap for LIKE 'pat%'.
func (d *Dict) MatchPrefix(pattern string) []bool {
	out := make([]bool, len(d.values))
	for i, v := range d.values {
		out[i] = strings.HasPrefix(v, pattern)
	}
	return out
}
