package tpch

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/plan"
)

// The paper's query subset (Table 4) plus Q13/Q17 used by Figure 1.
//
// Deviations from official TPC-H, mirroring the paper's own modifications
// ("the adaptively parallelized group-by operator implementation at present
// supports single attribute group-by queries. Hence, we modify some queries
// so that they have a single attribute group-by representation", §4.2.1):
//
//   - every group-by groups a single attribute;
//   - Q4 counts matching lineitems per order priority rather than distinct
//     orders (no EXISTS de-duplication);
//   - Q8 reports per-year total and per-year single-nation revenue as two
//     grouped outputs instead of their ratio per year;
//   - Q9 keeps supply cost on part (no partsupp table) and groups by the
//     supplier nation key;
//   - Q13 excludes customers with zero orders from the distribution;
//   - Q17's correlated per-part average is simplified to the global average
//     quantity of the brand/container selection (scalar dependency kept);
//   - Q19's three OR arms use disjoint brand filters unioned by an exchange
//     union, with a shared quantity window;
//   - Q22 keeps one phone country-code prefix and skips the NOT EXISTS
//     anti-join, reporting count and balance sum of above-average customers.
//
// Since AP, HP, work-stealing and the Vectorwise comparator all execute the
// same plans, every comparison remains apples-to-apples (the paper makes
// the same argument).

// QueryNumbers lists the implemented TPC-H query numbers.
func QueryNumbers() []int { return []int{4, 6, 8, 9, 13, 14, 17, 19, 22} }

// Classification returns the paper's Table 4 labels.
func Classification() map[int]string {
	return map[int]string{
		4: "complex", 6: "simple", 8: "complex", 9: "complex",
		13: "complex", 14: "simple", 17: "complex", 19: "complex", 22: "complex",
	}
}

// Query builds the serial plan for TPC-H query n.
func Query(n int) (*plan.Plan, error) {
	switch n {
	case 4:
		return Q4(), nil
	case 6:
		return Q6(Q6Default()), nil
	case 8:
		return Q8(), nil
	case 9:
		return Q9(), nil
	case 13:
		return Q13(), nil
	case 14:
		return Q14(), nil
	case 17:
		return Q17(), nil
	case 19:
		return Q19(), nil
	case 22:
		return Q22(), nil
	}
	return nil, fmt.Errorf("tpch: query %d not implemented", n)
}

// MustQuery is Query that panics on unknown numbers.
func MustQuery(n int) *plan.Plan {
	p, err := Query(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Q6Params parameterizes Q6 for the selectivity/size sweeps of Figure 14
// and Table 2 (the paper varies selectivity via l_quantity).
type Q6Params struct {
	ShipLo, ShipDays int64
	DiscLo, DiscHi   int64
	QtyBelow         int64
}

// Q6Default returns the standard parameters (~2% output selectivity).
func Q6Default() Q6Params {
	return Q6Params{ShipLo: 365, ShipDays: 365, DiscLo: 5, DiscHi: 7, QtyBelow: 24}
}

// Q6 — forecasting revenue change: predicate-only scan over lineitem with a
// scalar sum (the paper's "simple" query).
func Q6(p Q6Params) *plan.Plan {
	b := plan.NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	disc := b.Bind("lineitem", "l_discount")
	qty := b.Bind("lineitem", "l_quantity")
	price := b.Bind("lineitem", "l_extendedprice")

	s1 := b.Select(ship, algebra.HalfOpen(p.ShipLo, p.ShipLo+p.ShipDays))
	s2 := b.SelectCand(disc, s1, algebra.Between(p.DiscLo, p.DiscHi))
	s3 := b.SelectCand(qty, s2, algebra.LessThan(p.QtyBelow))
	d := b.Fetch(s3, disc)
	pr := b.Fetch(s3, price)
	rev := b.CalcVV(algebra.CalcMul, pr, d)
	sum := b.Aggr(algebra.AggrSum, rev)
	b.Result(sum)
	return b.Plan()
}

// Q4 — order priority checking: date-windowed orders joined with late
// lineitems, counted per priority.
func Q4() *plan.Plan {
	b := plan.NewBuilder()
	odate := b.Bind("orders", "o_orderdate")
	okey := b.Bind("orders", "o_orderkey")
	oprio := b.Bind("orders", "o_orderpriority")
	lrec := b.Bind("lineitem", "l_receiptdate")
	lcom := b.Bind("lineitem", "l_commitdate")
	lok := b.Bind("lineitem", "l_orderkey")

	osel := b.Select(odate, algebra.HalfOpen(700, 790))
	diff := b.CalcVV(algebra.CalcSub, lrec, lcom)
	lsel := b.Select(diff, algebra.GreaterThan(0))
	lokf := b.Fetch(lsel, lok)
	okeys := b.Fetch(osel, okey)
	_, ro := b.Join(lokf, okeys)
	priof := b.Fetch(osel, oprio)
	priom := b.FetchPos(ro, priof)
	g := b.GroupBy(priom)
	cnt := b.AggrGrouped(algebra.AggrCount, priom, g)
	keys := b.GroupKeys(g)
	b.Result(keys, cnt)
	return b.Plan()
}

// Q8 — national market share: part-type filter, lineitem–part join,
// lineitem–orders join for the year, lineitem–supplier join for the nation
// filter; per-year denominator and single-nation numerator.
func Q8() *plan.Plan {
	b := plan.NewBuilder()
	ptype := b.Bind("part", "p_type")
	ppk := b.Bind("part", "p_partkey")
	lpk := b.Bind("lineitem", "l_partkey")
	lok := b.Bind("lineitem", "l_orderkey")
	lsk := b.Bind("lineitem", "l_suppkey")
	price := b.Bind("lineitem", "l_extendedprice")
	disc := b.Bind("lineitem", "l_discount")
	okey := b.Bind("orders", "o_orderkey")
	oyear := b.Bind("orders", "o_year")
	ssk := b.Bind("supplier", "s_suppkey")
	snk := b.Bind("supplier", "s_nationkey")

	psel := b.LikeSelect(ptype, "ECONOMY ANODIZED", algebra.LikeContains, false)
	pk := b.Fetch(psel, ppk)
	lo, _ := b.Join(lpk, pk)
	pricej := b.Fetch(lo, price)
	discj := b.Fetch(lo, disc)
	rev := b.CalcVV(algebra.CalcMul, pricej, b.CalcSV(algebra.CalcSub, 100, discj, true))
	lokj := b.Fetch(lo, lok)
	lo2, ro2 := b.Join(lokj, okey)
	year2 := b.Fetch(ro2, oyear)
	rev2 := b.FetchPos(lo2, rev)
	lskj := b.Fetch(lo, lsk)
	lsk2 := b.FetchPos(lo2, lskj)
	lo3, ro3 := b.Join(lsk2, ssk)
	nat := b.Fetch(ro3, snk)
	rev3 := b.FetchPos(lo3, rev2)
	year3 := b.FetchPos(lo3, year2)
	natsel := b.Select(nat, algebra.Eq(7))
	revN := b.Fetch(natsel, rev3)
	yearN := b.Fetch(natsel, year3)

	gden := b.GroupBy(year2)
	den := b.AggrGrouped(algebra.AggrSum, rev2, gden)
	dkeys := b.GroupKeys(gden)
	gnum := b.GroupBy(yearN)
	num := b.AggrGrouped(algebra.AggrSum, revN, gnum)
	nkeys := b.GroupKeys(gnum)
	b.Result(dkeys, den, nkeys, num)
	return b.Plan()
}

// Q9 — product type profit: part-name filter, lineitem–part and
// lineitem–supplier joins, profit summed per supplier nation.
func Q9() *plan.Plan {
	b := plan.NewBuilder()
	pname := b.Bind("part", "p_name")
	ppk := b.Bind("part", "p_partkey")
	pscost := b.Bind("part", "p_supplycost")
	lpk := b.Bind("lineitem", "l_partkey")
	lsk := b.Bind("lineitem", "l_suppkey")
	price := b.Bind("lineitem", "l_extendedprice")
	disc := b.Bind("lineitem", "l_discount")
	qty := b.Bind("lineitem", "l_quantity")
	ssk := b.Bind("supplier", "s_suppkey")
	snk := b.Bind("supplier", "s_nationkey")

	psel := b.LikeSelect(pname, "green", algebra.LikeContains, false)
	pk := b.Fetch(psel, ppk)
	lo, ro := b.Join(lpk, pk)
	pricej := b.Fetch(lo, price)
	discj := b.Fetch(lo, disc)
	qtyj := b.Fetch(lo, qty)
	rev := b.CalcVV(algebra.CalcMul, pricej, b.CalcSV(algebra.CalcSub, 100, discj, true))
	scostf := b.Fetch(psel, pscost)
	scostj := b.FetchPos(ro, scostf)
	cost := b.CalcSV(algebra.CalcMul, 100, b.CalcVV(algebra.CalcMul, scostj, qtyj), true)
	profit := b.CalcVV(algebra.CalcSub, rev, cost)
	lskj := b.Fetch(lo, lsk)
	lo2, ro2 := b.Join(lskj, ssk)
	nat := b.Fetch(ro2, snk)
	profit2 := b.FetchPos(lo2, profit)
	g := b.GroupBy(nat)
	sums := b.AggrGrouped(algebra.AggrSum, profit2, g)
	keys := b.GroupKeys(g)
	b.Result(keys, sums)
	return b.Plan()
}

// Q13 — customer order-count distribution: anti-LIKE on order comments, a
// per-customer count, then the distribution of counts.
func Q13() *plan.Plan {
	b := plan.NewBuilder()
	ocomment := b.Bind("orders", "o_comment")
	ocust := b.Bind("orders", "o_custkey")

	osel := b.LikeSelect(ocomment, "special", algebra.LikeContains, true)
	ock := b.Fetch(osel, ocust)
	g := b.GroupBy(ock)
	cnt := b.AggrGrouped(algebra.AggrCount, ock, g)
	g2 := b.GroupBy(cnt)
	dist := b.AggrGrouped(algebra.AggrCount, cnt, g2)
	keys2 := b.GroupKeys(g2)
	b.Result(keys2, dist)
	return b.Plan()
}

// Q14 — promotion effect: date-windowed lineitems joined with part; the
// PROMO revenue share, mirroring the Figure 7 plan.
func Q14() *plan.Plan {
	b := plan.NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	lpk := b.Bind("lineitem", "l_partkey")
	price := b.Bind("lineitem", "l_extendedprice")
	disc := b.Bind("lineitem", "l_discount")
	ppk := b.Bind("part", "p_partkey")
	ptype := b.Bind("part", "p_type")

	t := b.Select(ship, algebra.HalfOpen(1000, 1030))
	lpkt := b.Fetch(t, lpk)
	pricet := b.Fetch(t, price)
	disct := b.Fetch(t, disc)
	rev := b.CalcVV(algebra.CalcMul, pricet, b.CalcSV(algebra.CalcSub, 100, disct, true))
	lo, ro := b.Join(lpkt, ppk)
	revj := b.FetchPos(lo, rev)
	ptypej := b.Fetch(ro, ptype)
	promo := b.LikeSelect(ptypej, "PROMO", algebra.LikePrefix, false)
	promoRev := b.Fetch(promo, revj)
	s1 := b.Aggr(algebra.AggrSum, promoRev)
	s2 := b.Aggr(algebra.AggrSum, revj)
	ratio := b.CalcSS(algebra.CalcDiv, b.CalcSS(algebra.CalcMul, b.Const(1_000_000), s1), s2)
	b.Result(ratio)
	return b.Plan()
}

// Q17 — small-quantity-order revenue: brand/container filter, join with
// lineitem, quantities below the (simplified, global) 1/5 average, summed
// price divided by 7.
func Q17() *plan.Plan {
	b := plan.NewBuilder()
	pbrand := b.Bind("part", "p_brand")
	pcont := b.Bind("part", "p_container")
	ppk := b.Bind("part", "p_partkey")
	lpk := b.Bind("lineitem", "l_partkey")
	qty := b.Bind("lineitem", "l_quantity")
	price := b.Bind("lineitem", "l_extendedprice")

	bsel := b.LikeSelect(pbrand, "Brand#23", algebra.LikeContains, false)
	contf := b.Fetch(bsel, pcont)
	csel := b.LikeSelect(contf, "MED", algebra.LikePrefix, false)
	pkf := b.Fetch(bsel, ppk)
	pk := b.Fetch(csel, pkf)
	lo, _ := b.Join(lpk, pk)
	qtyj := b.Fetch(lo, qty)
	sumq := b.Aggr(algebra.AggrSum, qtyj)
	cntq := b.Aggr(algebra.AggrCount, qtyj)
	t1 := b.CalcSV(algebra.CalcMul, 5, qtyj, true)
	t2 := b.CalcSSV(algebra.CalcMul, cntq, t1, true)
	d := b.CalcSSV(algebra.CalcSub, sumq, t2, true)
	qsel := b.Select(d, algebra.GreaterThan(0))
	pricej := b.Fetch(lo, price)
	cheap := b.Fetch(qsel, pricej)
	s := b.Aggr(algebra.AggrSum, cheap)
	out := b.CalcSS(algebra.CalcDiv, s, b.Const(7))
	b.Result(out)
	return b.Plan()
}

// Q19 — discounted revenue: three brand arms unioned with an exchange
// union, joined with lineitem under a quantity window.
func Q19() *plan.Plan {
	b := plan.NewBuilder()
	pbrand := b.Bind("part", "p_brand")
	ppk := b.Bind("part", "p_partkey")
	lpk := b.Bind("lineitem", "l_partkey")
	qty := b.Bind("lineitem", "l_quantity")
	price := b.Bind("lineitem", "l_extendedprice")
	disc := b.Bind("lineitem", "l_discount")

	var arms []plan.VarID
	for _, brand := range []string{"Brand#12", "Brand#23", "Brand#34"} {
		bsel := b.LikeSelect(pbrand, brand, algebra.LikeContains, false)
		arms = append(arms, b.Fetch(bsel, ppk))
	}
	pk := b.Pack(arms...)
	lo, _ := b.Join(lpk, pk)
	qtyj := b.Fetch(lo, qty)
	qsel := b.Select(qtyj, algebra.Between(1, 30))
	pricej := b.Fetch(lo, price)
	discj := b.Fetch(lo, disc)
	rev := b.CalcVV(algebra.CalcMul, pricej, b.CalcSV(algebra.CalcSub, 100, discj, true))
	out := b.Fetch(qsel, rev)
	s := b.Aggr(algebra.AggrSum, out)
	b.Result(s)
	return b.Plan()
}

// Q22 — global sales opportunity: phone-prefix filter and the
// above-average-balance scalar dependency.
func Q22() *plan.Plan {
	b := plan.NewBuilder()
	cphone := b.Bind("customer", "c_phone")
	cacct := b.Bind("customer", "c_acctbal")

	csel := b.LikeSelect(cphone, "13-", algebra.LikePrefix, false)
	bal := b.Fetch(csel, cacct)
	possel := b.Select(bal, algebra.GreaterThan(0))
	posbal := b.Fetch(possel, bal)
	sumb := b.Aggr(algebra.AggrSum, posbal)
	cntb := b.Aggr(algebra.AggrCount, posbal)
	t := b.CalcSSV(algebra.CalcMul, cntb, bal, true)
	d := b.CalcSSV(algebra.CalcSub, sumb, t, true)
	rich := b.Select(d, algebra.LessThan(0))
	richbal := b.Fetch(rich, bal)
	cnt := b.Aggr(algebra.AggrCount, richbal)
	s := b.Aggr(algebra.AggrSum, richbal)
	b.Result(cnt, s)
	return b.Plan()
}
