package tpch

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/heuristic"
	"repro/internal/plan"
	"repro/internal/sim"
)

func testMachine() sim.Config {
	return sim.Config{
		Name: "test", Sockets: 2, PhysCoresPerSocket: 4, SMT: 2, SpeedFactor: 1,
		L3PerSocket: 64 << 10, BWPerSocket: 1e9, SMTFactor: 0.55, NUMAFactor: 1.2,
	}
}

var testCat = Generate(Config{SF: 0.5, Seed: 11})

func TestGenerateShapes(t *testing.T) {
	cat := testCat
	li := cat.MustTable("lineitem")
	if li.Rows() != 30_000 {
		t.Fatalf("lineitem rows = %d", li.Rows())
	}
	if cat.MustTable("orders").Rows() != 7_500 {
		t.Fatalf("orders rows = %d", cat.MustTable("orders").Rows())
	}
	if cat.LargestTable().Name() != "lineitem" {
		t.Fatal("lineitem not the largest table")
	}
	// Foreign keys in range.
	nPart := cat.MustTable("part").Rows()
	for _, v := range li.MustColumn("l_partkey").Values() {
		if v < 0 || v >= int64(nPart) {
			t.Fatalf("l_partkey %d out of range", v)
		}
	}
	nOrd := cat.MustTable("orders").Rows()
	for _, v := range li.MustColumn("l_orderkey").Values() {
		if v < 0 || v >= int64(nOrd) {
			t.Fatalf("l_orderkey %d out of range", v)
		}
	}
	// Discount 0..10, quantity 1..50, shipdate after orderdate.
	odate := cat.MustTable("orders").MustColumn("o_orderdate").Values()
	ship := li.MustColumn("l_shipdate").Values()
	okey := li.MustColumn("l_orderkey").Values()
	for i, v := range li.MustColumn("l_discount").Values() {
		if v < 0 || v > 10 {
			t.Fatalf("discount %d", v)
		}
		if ship[i] <= odate[okey[i]] {
			t.Fatalf("shipdate %d not after orderdate %d", ship[i], odate[okey[i]])
		}
	}
	// PROMO parts ~1/6 of part types.
	ptype := cat.MustTable("part").MustColumn("p_type")
	oids, _ := algebra.SelectLike(ptype, "PROMO", algebra.LikePrefix, false)
	frac := float64(len(oids)) / float64(nPart)
	if frac < 0.08 || frac > 0.25 {
		t.Fatalf("PROMO fraction = %f", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{SF: 0.1, Seed: 5})
	b := Generate(Config{SF: 0.1, Seed: 5})
	av := a.MustTable("lineitem").MustColumn("l_extendedprice").Values()
	bv := b.MustTable("lineitem").MustColumn("l_extendedprice").Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("generation not deterministic")
		}
	}
	c := Generate(Config{SF: 0.1, Seed: 6})
	cv := c.MustTable("lineitem").MustColumn("l_extendedprice").Values()
	same := true
	for i := range av {
		if av[i] != cv[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateDefaultSF(t *testing.T) {
	cat := Generate(Config{Seed: 1})
	if cat.MustTable("lineitem").Rows() != lineitemPerSF {
		t.Fatal("default SF != 1")
	}
}

func TestAllQueriesBuildAndValidate(t *testing.T) {
	for _, n := range QueryNumbers() {
		p, err := Query(n)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Q%d invalid: %v", n, err)
		}
	}
	if _, err := Query(3); err == nil {
		t.Fatal("unknown query accepted")
	}
	cls := Classification()
	if cls[6] != "simple" || cls[9] != "complex" {
		t.Fatal("classification wrong")
	}
	if len(cls) != len(QueryNumbers()) {
		t.Fatal("classification incomplete")
	}
}

func TestAllQueriesExecuteSerially(t *testing.T) {
	eng := exec.NewEngine(testCat, testMachine(), cost.Default())
	for _, n := range QueryNumbers() {
		res, prof, err := eng.Execute(MustQuery(n))
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		if len(res) == 0 {
			t.Fatalf("Q%d produced no results", n)
		}
		if prof.Makespan() <= 0 {
			t.Fatalf("Q%d zero makespan", n)
		}
	}
}

// Q6 ground truth computed directly.
func TestQ6GroundTruth(t *testing.T) {
	cat := testCat
	li := cat.MustTable("lineitem")
	ship := li.MustColumn("l_shipdate").Values()
	disc := li.MustColumn("l_discount").Values()
	qty := li.MustColumn("l_quantity").Values()
	price := li.MustColumn("l_extendedprice").Values()
	p := Q6Default()
	var want int64
	for i := range ship {
		if ship[i] >= p.ShipLo && ship[i] < p.ShipLo+p.ShipDays &&
			disc[i] >= p.DiscLo && disc[i] <= p.DiscHi && qty[i] < p.QtyBelow {
			want += price[i] * disc[i]
		}
	}
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	res, _, err := eng.Execute(Q6(p))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Scalar != want {
		t.Fatalf("Q6 = %d, want %d", res[0].Scalar, want)
	}
	if want == 0 {
		t.Fatal("degenerate ground truth (no matches)")
	}
}

// Q14 ground truth: promo revenue ratio.
func TestQ14GroundTruth(t *testing.T) {
	cat := testCat
	li := cat.MustTable("lineitem")
	ship := li.MustColumn("l_shipdate").Values()
	lpk := li.MustColumn("l_partkey").Values()
	price := li.MustColumn("l_extendedprice").Values()
	disc := li.MustColumn("l_discount").Values()
	ptype := cat.MustTable("part").MustColumn("p_type")
	var promo, total int64
	for i := range ship {
		if ship[i] >= 1000 && ship[i] < 1030 {
			rev := price[i] * (100 - disc[i])
			total += rev
			if ptype.Data().Dict().MatchPrefix("PROMO")[ptype.At(int(lpk[i]))] {
				promo += rev
			}
		}
	}
	want := int64(0)
	if total != 0 {
		want = 1_000_000 * promo / total
	}
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	res, _, err := eng.Execute(Q14())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Scalar != want {
		t.Fatalf("Q14 = %d, want %d", res[0].Scalar, want)
	}
	if promo == 0 || total == 0 {
		t.Fatal("degenerate Q14 ground truth")
	}
}

// Q13 ground truth: order-count distribution.
func TestQ13GroundTruth(t *testing.T) {
	cat := testCat
	ord := cat.MustTable("orders")
	comments := ord.MustColumn("o_comment")
	cust := ord.MustColumn("o_custkey").Values()
	member := comments.Dict().MatchSubstring("special")
	perCust := map[int64]int64{}
	var order []int64
	for i, c := range cust {
		if member[comments.At(i)] {
			continue
		}
		if _, seen := perCust[c]; !seen {
			order = append(order, c)
		}
		perCust[c]++
	}
	dist := map[int64]int64{}
	for _, c := range order {
		dist[perCust[c]]++
	}
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	res, _, err := eng.Execute(Q13())
	if err != nil {
		t.Fatal(err)
	}
	keys, counts := res[0].Col, res[1].Col
	if keys.Len() != len(dist) {
		t.Fatalf("distribution size %d, want %d", keys.Len(), len(dist))
	}
	for i := 0; i < keys.Len(); i++ {
		if counts.At(i) != dist[keys.At(i)] {
			t.Fatalf("dist[%d] = %d, want %d", keys.At(i), counts.At(i), dist[keys.At(i)])
		}
	}
}

// Every query: heuristic parallelization must match serial results (full
// engine-level equivalence across all nine plans).
func TestQueriesHeuristicEquivalence(t *testing.T) {
	for _, n := range QueryNumbers() {
		serial := MustQuery(n)
		eng := exec.NewEngine(testCat, testMachine(), cost.Default())
		want, _, err := eng.Execute(serial)
		if err != nil {
			t.Fatalf("Q%d serial: %v", n, err)
		}
		hp, err := heuristic.Parallelize(serial, testCat, heuristic.Config{Partitions: 8})
		if err != nil {
			t.Fatalf("Q%d HP: %v", n, err)
		}
		eng2 := exec.NewEngine(testCat, testMachine(), cost.Default())
		got, _, err := eng2.Execute(hp)
		if err != nil {
			t.Fatalf("Q%d HP exec: %v", n, err)
		}
		if !exec.ResultsEqual(want, got) {
			t.Fatalf("Q%d: HP results diverge", n)
		}
	}
}

// Every query: a few adaptive mutation steps must preserve results.
func TestQueriesAdaptiveEquivalence(t *testing.T) {
	for _, n := range QueryNumbers() {
		eng := exec.NewEngine(testCat, testMachine(), cost.Default())
		s := core.NewSession(eng, MustQuery(n), core.DefaultMutationConfig(),
			core.DefaultConvergenceConfig(4))
		s.VerifyResults = true
		for i := 0; i < 8; i++ {
			cont, err := s.Step()
			if err != nil {
				t.Fatalf("Q%d step %d: %v", n, i, err)
			}
			if !cont {
				break
			}
		}
	}
}

func TestQ6SelectivityKnob(t *testing.T) {
	eng := exec.NewEngine(testCat, testMachine(), cost.Default())
	loSel := Q6Params{ShipLo: 0, ShipDays: 2556, DiscLo: 0, DiscHi: 10, QtyBelow: 100}
	hiSel := Q6Params{ShipLo: 0, ShipDays: 2556, DiscLo: 0, DiscHi: 10, QtyBelow: -1}
	resLo, _, err := eng.Execute(Q6(loSel))
	if err != nil {
		t.Fatal(err)
	}
	resHi, _, err := eng.Execute(Q6(hiSel))
	if err != nil {
		t.Fatal(err)
	}
	if resLo[0].Scalar == 0 {
		t.Fatal("0%% selectivity variant returned nothing")
	}
	if resHi[0].Scalar != 0 {
		t.Fatal("100%% selectivity variant returned rows")
	}
	if plan.KindScalar != resLo[0].Kind {
		t.Fatal("Q6 result not scalar")
	}
}
