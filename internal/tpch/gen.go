// Package tpch provides a dbgen-like synthetic TPC-H subset — schema,
// value distributions and foreign-key relationships mirroring the benchmark
// at 1/100 linear scale (DESIGN.md §2) — plus plan builders for the query
// subset the paper evaluates (Table 4: simple Q6 and Q14; complex Q4, Q8,
// Q9, Q19, Q22; and Q13/Q17 for Figure 1).
//
// Scaling: TPC-H SF1 has 6,000,000 lineitem rows; here SF1 generates 60,000
// (1/100). All other tables keep their official ratios. Values follow the
// spec's shapes: uniform dates over 7 years, discounts 0–10%, quantities
// 1–50, PROMO-prefixed part types in 1/5 of parts, and so on. Dictionary
// strings are drawn from the spec's vocabularies.
package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/storage"
	"repro/internal/vec"
)

// Scale factors: rows per table at SF1 (1/100 of official TPC-H).
const (
	lineitemPerSF = 60_000
	ordersPerSF   = 15_000
	customerPerSF = 1_500
	partPerSF     = 2_000
	supplierPerSF = 100
	nations       = 25
	// Dates span 1992-01-01 .. 1998-12-31 as day numbers 0..2555.
	dateLo, dateHi = 0, 2556
)

// Part-type vocabulary (TPC-H §4.2.2.13): Types1 x Types2 x Types3.
var (
	types1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	types2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	types3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

	colors = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
		"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
		"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green",
		"grey", "honeydew", "hot", "hotpink", "indian", "ivory", "khaki"}

	containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

	brands = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#14", "Brand#15",
		"Brand#21", "Brand#22", "Brand#23", "Brand#24", "Brand#25",
		"Brand#31", "Brand#32", "Brand#33", "Brand#34", "Brand#35",
		"Brand#41", "Brand#42", "Brand#43", "Brand#44", "Brand#45",
		"Brand#51", "Brand#52", "Brand#53", "Brand#54", "Brand#55"}

	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

	commentFill = []string{"carefully final deposits", "quickly ironic packages",
		"furiously regular accounts", "slyly bold requests", "pending foxes",
		"express theodolites", "unusual asymptotes", "silent waters"}
)

// Config controls generation.
type Config struct {
	// SF is the scale factor; SF1 ≈ 60k lineitem rows (1/100 scale).
	SF float64
	// Seed makes generation deterministic.
	Seed int64
}

// Generate builds the catalog.
func Generate(cfg Config) *storage.Catalog {
	if cfg.SF <= 0 {
		cfg.SF = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7c4a7d))
	nLine := int(float64(lineitemPerSF) * cfg.SF)
	nOrd := int(float64(ordersPerSF) * cfg.SF)
	nCust := int(float64(customerPerSF) * cfg.SF)
	nPart := int(float64(partPerSF) * cfg.SF)
	nSupp := int(float64(supplierPerSF) * cfg.SF)
	if nSupp < 10 {
		nSupp = 10
	}

	cat := storage.NewCatalog()
	cat.MustAdd(genNation(rng))
	cat.MustAdd(genSupplier(rng, nSupp))
	cat.MustAdd(genPart(rng, nPart))
	cat.MustAdd(genCustomer(rng, nCust))
	orders := genOrders(rng, nOrd, nCust)
	cat.MustAdd(orders)
	cat.MustAdd(genLineitem(rng, nLine, orders, nPart, nSupp))
	return cat
}

func intCol(name string, vals []int64) *storage.Column {
	return storage.NewIntColumn(name, vals)
}

func strCol(name string, d *vec.Dict, codes []int64) *storage.Column {
	return storage.NewColumn(name, 0, vec.NewDictCoded(codes, d))
}

func genNation(rng *rand.Rand) *storage.Table {
	t := storage.NewTable("nation")
	keys := make([]int64, nations)
	regions := make([]int64, nations)
	d := vec.NewDict()
	names := make([]int64, nations)
	for i := 0; i < nations; i++ {
		keys[i] = int64(i)
		regions[i] = int64(i % 5)
		names[i] = d.Code(fmt.Sprintf("NATION_%02d", i))
	}
	t.MustAddColumn(intCol("n_nationkey", keys))
	t.MustAddColumn(intCol("n_regionkey", regions))
	t.MustAddColumn(strCol("n_name", d, names))
	return t
}

func genSupplier(rng *rand.Rand, n int) *storage.Table {
	t := storage.NewTable("supplier")
	keys := make([]int64, n)
	nk := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = int64(i)
		nk[i] = int64(rng.Intn(nations))
	}
	t.MustAddColumn(intCol("s_suppkey", keys))
	t.MustAddColumn(intCol("s_nationkey", nk))
	return t
}

func genPart(rng *rand.Rand, n int) *storage.Table {
	t := storage.NewTable("part")
	keys := make([]int64, n)
	size := make([]int64, n)
	retail := make([]int64, n)
	supplycost := make([]int64, n)

	typeDict := vec.NewDict()
	typeCodes := make([]int64, n)
	nameDict := vec.NewDict()
	nameCodes := make([]int64, n)
	brandDict := vec.NewDict()
	brandCodes := make([]int64, n)
	contDict := vec.NewDict()
	contCodes := make([]int64, n)

	for i := 0; i < n; i++ {
		keys[i] = int64(i)
		size[i] = int64(1 + rng.Intn(50))
		retail[i] = int64(90000 + rng.Intn(20000)) // cents
		supplycost[i] = int64(100 + rng.Intn(900)) // cents
		ptype := types1[rng.Intn(len(types1))] + " " +
			types2[rng.Intn(len(types2))] + " " + types3[rng.Intn(len(types3))]
		typeCodes[i] = typeDict.Code(ptype)
		name := colors[rng.Intn(len(colors))] + " " + colors[rng.Intn(len(colors))]
		nameCodes[i] = nameDict.Code(name)
		brandCodes[i] = brandDict.Code(brands[rng.Intn(len(brands))])
		cont := containers1[rng.Intn(len(containers1))] + " " + containers2[rng.Intn(len(containers2))]
		contCodes[i] = contDict.Code(cont)
	}
	t.MustAddColumn(intCol("p_partkey", keys))
	t.MustAddColumn(intCol("p_size", size))
	t.MustAddColumn(intCol("p_retailprice", retail))
	t.MustAddColumn(intCol("p_supplycost", supplycost))
	t.MustAddColumn(strCol("p_type", typeDict, typeCodes))
	t.MustAddColumn(strCol("p_name", nameDict, nameCodes))
	t.MustAddColumn(strCol("p_brand", brandDict, brandCodes))
	t.MustAddColumn(strCol("p_container", contDict, contCodes))
	return t
}

func genCustomer(rng *rand.Rand, n int) *storage.Table {
	t := storage.NewTable("customer")
	keys := make([]int64, n)
	nk := make([]int64, n)
	acct := make([]int64, n)
	phoneDict := vec.NewDict()
	phones := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = int64(i)
		nk[i] = int64(rng.Intn(nations))
		acct[i] = int64(rng.Intn(1100000)) - 100000 // −1000.00 .. +9999.99 cents
		cc := 10 + nk[i]
		phones[i] = phoneDict.Code(fmt.Sprintf("%d-%03d-%03d", cc, rng.Intn(1000), rng.Intn(1000)))
	}
	t.MustAddColumn(intCol("c_custkey", keys))
	t.MustAddColumn(intCol("c_nationkey", nk))
	t.MustAddColumn(intCol("c_acctbal", acct))
	t.MustAddColumn(strCol("c_phone", phoneDict, phones))
	return t
}

func genOrders(rng *rand.Rand, n, nCust int) *storage.Table {
	t := storage.NewTable("orders")
	keys := make([]int64, n)
	cust := make([]int64, n)
	date := make([]int64, n)
	year := make([]int64, n)
	prioDict := vec.NewDict()
	prio := make([]int64, n)
	commentDict := vec.NewDict()
	comment := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = int64(i)
		cust[i] = int64(rng.Intn(nCust))
		date[i] = int64(dateLo + rng.Intn(dateHi-dateLo-121))
		year[i] = 1992 + date[i]/365
		prio[i] = prioDict.Code(priorities[rng.Intn(len(priorities))])
		c := commentFill[rng.Intn(len(commentFill))]
		if rng.Float64() < 0.02 {
			c = c + " special requests " + commentFill[rng.Intn(len(commentFill))]
		}
		comment[i] = commentDict.Code(c)
	}
	t.MustAddColumn(intCol("o_orderkey", keys))
	t.MustAddColumn(intCol("o_custkey", cust))
	t.MustAddColumn(intCol("o_orderdate", date))
	t.MustAddColumn(intCol("o_year", year))
	t.MustAddColumn(strCol("o_orderpriority", prioDict, prio))
	t.MustAddColumn(strCol("o_comment", commentDict, comment))
	return t
}

func genLineitem(rng *rand.Rand, n int, orders *storage.Table, nPart, nSupp int) *storage.Table {
	t := storage.NewTable("lineitem")
	okey := make([]int64, n)
	pkey := make([]int64, n)
	skey := make([]int64, n)
	qty := make([]int64, n)
	price := make([]int64, n)
	disc := make([]int64, n)
	tax := make([]int64, n)
	ship := make([]int64, n)
	commit := make([]int64, n)
	receipt := make([]int64, n)
	flagDict := vec.NewDict()
	flag := make([]int64, n)

	odate := orders.MustColumn("o_orderdate").Values()
	nOrd := orders.Rows()
	for i := 0; i < n; i++ {
		o := rng.Intn(nOrd)
		okey[i] = int64(o)
		pkey[i] = int64(rng.Intn(nPart))
		skey[i] = int64(rng.Intn(nSupp))
		qty[i] = int64(1 + rng.Intn(50))
		price[i] = qty[i] * int64(90000+rng.Intn(20000)) / 10 // cents
		disc[i] = int64(rng.Intn(11))                         // 0..10 percent
		tax[i] = int64(rng.Intn(9))
		ship[i] = odate[o] + int64(1+rng.Intn(121))
		commit[i] = odate[o] + int64(30+rng.Intn(61))
		receipt[i] = ship[i] + int64(1+rng.Intn(30))
		f := "N"
		if receipt[i] <= 1275 { // ~ returns allowed in the first half
			if rng.Float64() < 0.5 {
				f = "R"
			} else {
				f = "A"
			}
		}
		flag[i] = flagDict.Code(f)
	}
	t.MustAddColumn(intCol("l_orderkey", okey))
	t.MustAddColumn(intCol("l_partkey", pkey))
	t.MustAddColumn(intCol("l_suppkey", skey))
	t.MustAddColumn(intCol("l_quantity", qty))
	t.MustAddColumn(intCol("l_extendedprice", price))
	t.MustAddColumn(intCol("l_discount", disc))
	t.MustAddColumn(intCol("l_tax", tax))
	t.MustAddColumn(intCol("l_shipdate", ship))
	t.MustAddColumn(intCol("l_commitdate", commit))
	t.MustAddColumn(intCol("l_receiptdate", receipt))
	t.MustAddColumn(strCol("l_returnflag", flagDict, flag))
	return t
}
