package exec

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Partitioned intermediates must keep global alignment: a select over a
// partitioned calc/fetch output has to produce absolute row ids usable
// against base columns (§2.3 alignment; the exec layer re-seqs fetch clones
// and algebra inherits view heads for calc).
func TestPartitionedIntermediateAlignment(t *testing.T) {
	n := 8_000
	a := make([]int64, n)
	c := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(i)
		c[i] = int64(i * 2)
	}
	tab := storage.NewTable("t")
	tab.MustAddColumn(storage.NewIntColumn("a", a))
	tab.MustAddColumn(storage.NewIntColumn("c", c))
	cat := storage.NewCatalog()
	cat.MustAdd(tab)

	// Serial: diff = a - (a) = 0... use c - a = i; select(diff >= 6000)
	// then fetch from base column c at the resulting GLOBAL row ids.
	build := func(split bool) *plan.Plan {
		b := plan.NewBuilder()
		av := b.Bind("t", "a")
		cv := b.Bind("t", "c")
		diff := b.CalcVV(algebra.CalcSub, cv, av) // = i
		sel := b.Select(diff, algebra.AtLeast(6000))
		out := b.Fetch(sel, cv)
		sum := b.Aggr(algebra.AggrSum, out)
		b.Result(sum)
		p := b.Plan()
		if split {
			// Partition the calc in two by hand (what the basic mutation
			// does): its clones' outputs must stay globally aligned.
			for i, in := range p.Instrs {
				if in.Op == plan.OpCalcVV {
					l, r := plan.FullPart().Split()
					clone := &plan.Instr{Op: in.Op, Args: append([]plan.VarID(nil), in.Args...),
						Rets: []plan.VarID{p.NewVar(plan.KindColumn, "")}, Aux: in.Aux, Part: r}
					in.Part = l
					packed := p.NewVar(plan.KindColumn, "")
					pk := &plan.Instr{Op: plan.OpPack, Args: []plan.VarID{in.Rets[0], clone.Rets[0]},
						Rets: []plan.VarID{packed}, Part: plan.FullPart()}
					// Rewire the select to the pack.
					for _, in2 := range p.Instrs {
						if in2.Op == plan.OpSelect {
							in2.Args[0] = packed
						}
					}
					p.Instrs = append(p.Instrs[:i+1], append([]*plan.Instr{clone, pk}, p.Instrs[i+1:]...)...)
					break
				}
			}
			if err := p.TopoSort(); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}

	eng := NewEngine(cat, testMachine(), cost.Default())
	want, _, err := eng.Execute(build(false))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eng.Execute(build(true))
	if err != nil {
		t.Fatal(err)
	}
	if !ResultsEqual(want, got) {
		t.Fatalf("partitioned calc misaligned: %v vs %v", got, want)
	}
	if want[0].Scalar == 0 {
		t.Fatal("degenerate test: empty selection")
	}
	// The same split plan through the copying exchange (seed behavior) must
	// agree with the zero-copy default bit for bit.
	gotCopy, _, err := eng.ExecuteOpts(build(true), JobOptions{CopyExchange: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ResultsEqual(want, gotCopy) {
		t.Fatalf("copying exchange misaligned: %v vs %v", gotCopy, want)
	}
}

func TestProfileOpTotals(t *testing.T) {
	cat := testCatalog(10_000)
	eng := NewEngine(cat, testMachine(), cost.Default())
	_, prof, err := eng.Execute(q6Plan())
	if err != nil {
		t.Fatal(err)
	}
	totals := prof.OpTotals()
	if totals[plan.OpSelect].Calls != 1 || totals[plan.OpFetch].Calls != 2 {
		t.Fatalf("op totals wrong: %+v", totals)
	}
	var sum float64
	for _, e := range totals {
		sum += e.Ns
	}
	if sum <= 0 || sum != prof.TotalBusyNs() {
		t.Fatalf("op totals %f != busy %f", sum, prof.TotalBusyNs())
	}
	durs := prof.DurationByInstr()
	if len(durs) != 10 {
		t.Fatalf("per-instr durations = %d", len(durs))
	}
}

func TestEngineVirtualTimeAdvancesAcrossExecutions(t *testing.T) {
	cat := testCatalog(5_000)
	eng := NewEngine(cat, testMachine(), cost.Default())
	_, p1, err := eng.Execute(q6Plan())
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := eng.Execute(q6Plan())
	if err != nil {
		t.Fatal(err)
	}
	if p2.StartNs < p1.EndNs {
		t.Fatalf("second execution started at %f before first ended %f", p2.StartNs, p1.EndNs)
	}
}

func TestEmptyProfileTomograph(t *testing.T) {
	p := &Profile{}
	if got := p.Tomograph(10); got == "" {
		t.Fatal("empty profile tomograph empty string")
	}
	if p.Utilization() != 0 || p.TotalBusyNs() != 0 {
		t.Fatal("empty profile has nonzero metrics")
	}
	if i, d := p.MostExpensive(); i != -1 || d != 0 {
		t.Fatalf("MostExpensive on empty = (%d,%f)", i, d)
	}
}
