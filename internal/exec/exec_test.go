package exec

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testMachine() sim.Config {
	return sim.Config{
		Name:               "test",
		Sockets:            2,
		PhysCoresPerSocket: 4,
		SMT:                2,
		SpeedFactor:        1,
		L3PerSocket:        64 << 10,
		BWPerSocket:        1e9,
		SMTFactor:          0.55,
		NUMAFactor:         1.2,
	}
}

// testCatalog builds a small lineitem-like table with deterministic values.
func testCatalog(n int) *storage.Catalog {
	ship := make([]int64, n)
	disc := make([]int64, n)
	price := make([]int64, n)
	qty := make([]int64, n)
	for i := 0; i < n; i++ {
		ship[i] = int64(i % 365)
		disc[i] = int64(i % 11)
		price[i] = int64(100 + i%900)
		qty[i] = int64(1 + i%50)
	}
	t := storage.NewTable("lineitem")
	t.MustAddColumn(storage.NewIntColumn("l_shipdate", ship))
	t.MustAddColumn(storage.NewIntColumn("l_discount", disc))
	t.MustAddColumn(storage.NewIntColumn("l_extendedprice", price))
	t.MustAddColumn(storage.NewIntColumn("l_quantity", qty))
	cat := storage.NewCatalog()
	cat.MustAdd(t)
	return cat
}

// q6Plan builds the TPC-H-Q6-shaped plan used across exec tests.
func q6Plan() *plan.Plan {
	b := plan.NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	disc := b.Bind("lineitem", "l_discount")
	price := b.Bind("lineitem", "l_extendedprice")
	s1 := b.Select(ship, algebra.Between(100, 200))
	s2 := b.SelectCand(disc, s1, algebra.Between(5, 7))
	d := b.Fetch(s2, disc)
	pr := b.Fetch(s2, price)
	rev := b.CalcVV(algebra.CalcMul, pr, d)
	sum := b.Aggr(algebra.AggrSum, rev)
	b.Result(sum)
	return b.Plan()
}

// q6Expected computes the expected Q6 answer directly.
func q6Expected(cat *storage.Catalog) int64 {
	t := cat.MustTable("lineitem")
	ship := t.MustColumn("l_shipdate").Values()
	disc := t.MustColumn("l_discount").Values()
	price := t.MustColumn("l_extendedprice").Values()
	var sum int64
	for i := range ship {
		if ship[i] >= 100 && ship[i] <= 200 && disc[i] >= 5 && disc[i] <= 7 {
			sum += price[i] * disc[i]
		}
	}
	return sum
}

func TestExecuteSerialPlanCorrectness(t *testing.T) {
	cat := testCatalog(10_000)
	eng := NewEngine(cat, testMachine(), cost.Default())
	res, prof, err := eng.Execute(q6Plan())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Kind != plan.KindScalar {
		t.Fatalf("results = %v", res)
	}
	if want := q6Expected(cat); res[0].Scalar != want {
		t.Fatalf("Q6 = %d, want %d", res[0].Scalar, want)
	}
	if prof.Makespan() <= 0 {
		t.Fatal("zero makespan")
	}
	if len(prof.Ops) != 10 {
		t.Fatalf("profiled %d ops, want 10", len(prof.Ops))
	}
}

func TestExecutePartitionedPlanMatchesSerial(t *testing.T) {
	cat := testCatalog(10_000)
	eng := NewEngine(cat, testMachine(), cost.Default())
	serialRes, _, err := eng.Execute(q6Plan())
	if err != nil {
		t.Fatal(err)
	}

	// Hand-build a parallelized plan: the first select split in two with a
	// pack combining the clone outputs (the basic mutation's shape).
	b := plan.NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	disc := b.Bind("lineitem", "l_discount")
	price := b.Bind("lineitem", "l_extendedprice")
	s1 := b.Select(ship, algebra.Between(100, 200))
	s1b := b.Select(ship, algebra.Between(100, 200))
	p := b.Plan()
	left, right := plan.FullPart().Split()
	p.Instrs[3].Part = left
	p.Instrs[4].Part = right
	// Continue building on the raw plan: pack + rest.
	packed := p.NewVar(plan.KindOids, "packed")
	p.Append(&plan.Instr{Op: plan.OpPack, Args: []plan.VarID{s1, s1b}, Rets: []plan.VarID{packed}, Part: plan.FullPart()})
	s2 := p.NewVar(plan.KindOids, "s2")
	p.Append(&plan.Instr{Op: plan.OpSelectCand, Aux: plan.SelectAux{Pred: algebra.Between(5, 7)},
		Args: []plan.VarID{disc, packed}, Rets: []plan.VarID{s2}, Part: plan.FullPart()})
	d := p.NewVar(plan.KindColumn, "d")
	p.Append(&plan.Instr{Op: plan.OpFetch, Args: []plan.VarID{s2, disc}, Rets: []plan.VarID{d}, Part: plan.FullPart()})
	pr := p.NewVar(plan.KindColumn, "pr")
	p.Append(&plan.Instr{Op: plan.OpFetch, Args: []plan.VarID{s2, price}, Rets: []plan.VarID{pr}, Part: plan.FullPart()})
	rev := p.NewVar(plan.KindColumn, "rev")
	p.Append(&plan.Instr{Op: plan.OpCalcVV, Aux: plan.CalcAux{Op: algebra.CalcMul},
		Args: []plan.VarID{pr, d}, Rets: []plan.VarID{rev}, Part: plan.FullPart()})
	sum := p.NewVar(plan.KindScalar, "sum")
	p.Append(&plan.Instr{Op: plan.OpAggr, Aux: plan.AggrAux{Func: algebra.AggrSum},
		Args: []plan.VarID{rev}, Rets: []plan.VarID{sum}, Part: plan.FullPart()})
	p.Append(&plan.Instr{Op: plan.OpResult, Args: []plan.VarID{sum}, Part: plan.FullPart()})

	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(cat, testMachine(), cost.Default())
	parRes, prof, err := eng2.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ResultsEqual(serialRes, parRes) {
		t.Fatalf("partitioned result %v != serial %v", parRes, serialRes)
	}
	if prof.Makespan() <= 0 {
		t.Fatal("no makespan")
	}
}

func TestProfilerMostExpensive(t *testing.T) {
	cat := testCatalog(50_000)
	eng := NewEngine(cat, testMachine(), cost.Default())
	_, prof, err := eng.Execute(q6Plan())
	if err != nil {
		t.Fatal(err)
	}
	idx, dur := prof.MostExpensive()
	if idx < 0 || dur <= 0 {
		t.Fatalf("MostExpensive = (%d, %f)", idx, dur)
	}
	// The full-table select over l_shipdate (instr 3) dominates this plan:
	// it is the only full scan; everything downstream is selectivity-reduced.
	if op := q6Plan().Instrs[idx].Op; op != plan.OpSelect {
		t.Fatalf("most expensive op = %s, want select", op)
	}
}

func TestProfileUtilizationBounds(t *testing.T) {
	cat := testCatalog(20_000)
	eng := NewEngine(cat, testMachine(), cost.Default())
	_, prof, err := eng.Execute(q6Plan())
	if err != nil {
		t.Fatal(err)
	}
	u := prof.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %f", u)
	}
	// A serial plan on a 16-thread machine cannot exceed 1/16 + slack.
	if u > 0.15 {
		t.Fatalf("serial plan utilization %f suspiciously high", u)
	}
}

func TestTomographRendering(t *testing.T) {
	cat := testCatalog(20_000)
	eng := NewEngine(cat, testMachine(), cost.Default())
	_, prof, err := eng.Execute(q6Plan())
	if err != nil {
		t.Fatal(err)
	}
	tg := prof.Tomograph(60)
	if !strings.Contains(tg, "core") || !strings.Contains(tg, "parallelism usage") {
		t.Fatalf("tomograph missing sections:\n%s", tg)
	}
	if !strings.Contains(tg, "S") {
		t.Fatalf("tomograph missing select glyphs:\n%s", tg)
	}
}

func TestConcurrentJobsShareMachine(t *testing.T) {
	cat := testCatalog(30_000)
	eng := NewEngine(cat, testMachine(), cost.Default())

	// Run one job in isolation for a baseline.
	iso := NewEngine(cat, testMachine(), cost.Default())
	_, isoProf, err := iso.Execute(q6Plan())
	if err != nil {
		t.Fatal(err)
	}

	// Saturate the machine with 16 concurrent copies.
	var jobs []*PlanJob
	for i := 0; i < 16; i++ {
		j, err := eng.Submit(q6Plan(), JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	eng.Run()
	for i, j := range jobs {
		if !j.Done || j.Err != nil {
			t.Fatalf("job %d: done=%v err=%v", i, j.Done, j.Err)
		}
	}
	// At least one concurrent execution must be slower than isolation
	// (resource contention), and results stay correct.
	want := q6Expected(cat)
	slower := false
	for _, j := range jobs {
		if j.Results()[0].Scalar != want {
			t.Fatalf("concurrent job wrong result")
		}
		if j.Profile.Makespan() > isoProf.Makespan()*1.01 {
			slower = true
		}
	}
	if !slower {
		t.Fatal("16 concurrent jobs showed no contention at all")
	}
}

func TestJobMaxCoresAdmissionControl(t *testing.T) {
	cat := testCatalog(30_000)

	run := func(maxCores int) float64 {
		eng := NewEngine(cat, testMachine(), cost.Default())
		// A fan of independent selects that could run 8-wide.
		b := plan.NewBuilder()
		ship := b.Bind("lineitem", "l_shipdate")
		var outs []plan.VarID
		for i := 0; i < 8; i++ {
			outs = append(outs, b.Select(ship, algebra.Between(int64(i), int64(i+40))))
		}
		pk := b.Plan().NewVar(plan.KindOids, "pk")
		b.Plan().Append(&plan.Instr{Op: plan.OpPack, Args: outs, Rets: []plan.VarID{pk}, Part: plan.FullPart()})
		b.Plan().Append(&plan.Instr{Op: plan.OpResult, Args: []plan.VarID{pk}, Part: plan.FullPart()})
		j, err := eng.Submit(b.Plan(), JobOptions{MaxCores: maxCores})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if j.Err != nil {
			t.Fatal(j.Err)
		}
		return j.Profile.Makespan()
	}
	wide := run(0)
	narrow := run(1)
	if narrow <= wide*2 {
		t.Fatalf("MaxCores=1 (%.0f) not much slower than unlimited (%.0f)", narrow, wide)
	}
}

func TestSubmitRejectsInvalidPlan(t *testing.T) {
	cat := testCatalog(10)
	eng := NewEngine(cat, testMachine(), cost.Default())
	p := plan.New()
	v := p.NewVar(plan.KindColumn, "x")
	o := p.NewVar(plan.KindOids, "o")
	p.Append(&plan.Instr{Op: plan.OpSelect, Args: []plan.VarID{v}, Rets: []plan.VarID{o},
		Aux: plan.SelectAux{}, Part: plan.FullPart()})
	if _, err := eng.Submit(p, JobOptions{}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestExecuteMissingTableFails(t *testing.T) {
	cat := storage.NewCatalog()
	eng := NewEngine(cat, testMachine(), cost.Default())
	b := plan.NewBuilder()
	c := b.Bind("ghost", "col")
	s := b.Select(c, algebra.FullRange())
	b.Result(s)
	_, _, err := eng.Execute(b.Plan())
	if err == nil {
		t.Fatal("missing table did not fail")
	}
}

func TestValueEqualAndString(t *testing.T) {
	a := ScalarValue(5)
	if !a.Equal(ScalarValue(5)) || a.Equal(ScalarValue(6)) {
		t.Fatal("scalar equality wrong")
	}
	if a.Equal(OidsValue([]int64{5})) {
		t.Fatal("cross-kind equality")
	}
	o1, o2 := OidsValue([]int64{1, 2}), OidsValue([]int64{1, 2})
	if !o1.Equal(o2) || o1.Equal(OidsValue([]int64{1})) || o1.Equal(OidsValue([]int64{1, 3})) {
		t.Fatal("oid equality wrong")
	}
	c1 := ColValue(storage.NewIntColumn("a", []int64{1}))
	c2 := ColValue(storage.NewIntColumn("b", []int64{1}))
	if !c1.Equal(c2) {
		t.Fatal("column equality wrong")
	}
	g1, _ := algebra.GroupBy(storage.NewIntColumn("k", []int64{1, 1, 2}))
	g2, _ := algebra.GroupBy(storage.NewIntColumn("k", []int64{1, 1, 2}))
	if !GroupsValue(g1).Equal(GroupsValue(g2)) {
		t.Fatal("groups equality wrong")
	}
	for _, v := range []Value{a, o1, c1, GroupsValue(g1)} {
		if v.String() == "" {
			t.Fatal("empty String()")
		}
	}
	if !ResultsEqual([]Value{a}, []Value{ScalarValue(5)}) || ResultsEqual([]Value{a}, nil) {
		t.Fatal("ResultsEqual wrong")
	}
}
