package exec

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/plan"
)

// partitionedFetchPlan builds the basic-mutation shape: one select feeding
// nParts sliced fetch clones whose pack feeds an aggregate. The pack's
// inputs are exactly the sibling partitions of one instruction — a sliced
// pack group.
func partitionedFetchPlan(nParts int) *plan.Plan {
	p := plan.New()
	col := p.NewVar(plan.KindColumn, "col")
	p.Append(&plan.Instr{Op: plan.OpBind, Aux: plan.BindAux{Table: "lineitem", Column: "l_extendedprice"},
		Rets: []plan.VarID{col}, Part: plan.FullPart()})
	oids := p.NewVar(plan.KindOids, "oids")
	p.Append(&plan.Instr{Op: plan.OpSelect, Aux: plan.SelectAux{Pred: algebra.AtLeast(300)},
		Args: []plan.VarID{col}, Rets: []plan.VarID{oids}, Part: plan.FullPart()})
	parts := plan.FullPart().SplitN(nParts)
	cloneRets := make([]plan.VarID, nParts)
	for i, pt := range parts {
		cloneRets[i] = p.NewVar(plan.KindColumn, "")
		p.Append(&plan.Instr{Op: plan.OpFetch, Args: []plan.VarID{oids, col},
			Rets: []plan.VarID{cloneRets[i]}, Part: pt})
	}
	packed := p.NewVar(plan.KindColumn, "packed")
	p.Append(&plan.Instr{Op: plan.OpPack, Args: cloneRets, Rets: []plan.VarID{packed}, Part: plan.FullPart()})
	sum := p.NewVar(plan.KindScalar, "sum")
	p.Append(&plan.Instr{Op: plan.OpAggr, Aux: plan.AggrAux{Func: algebra.AggrSum},
		Args: []plan.VarID{packed}, Rets: []plan.VarID{sum}, Part: plan.FullPart()})
	p.Append(&plan.Instr{Op: plan.OpResult, Args: []plan.VarID{sum}, Part: plan.FullPart()})
	return p
}

// propagatedFetchPlan builds the medium-mutation residue: sliced select
// clones each feeding a full-range fetch clone, packed in partition order —
// a propagated pack group whose offsets are only known at run time.
func propagatedFetchPlan(nParts int) *plan.Plan {
	p := plan.New()
	col := p.NewVar(plan.KindColumn, "col")
	p.Append(&plan.Instr{Op: plan.OpBind, Aux: plan.BindAux{Table: "lineitem", Column: "l_extendedprice"},
		Rets: []plan.VarID{col}, Part: plan.FullPart()})
	parts := plan.FullPart().SplitN(nParts)
	cloneRets := make([]plan.VarID, nParts)
	for i, pt := range parts {
		oids := p.NewVar(plan.KindOids, "")
		p.Append(&plan.Instr{Op: plan.OpSelect, Aux: plan.SelectAux{Pred: algebra.AtLeast(300)},
			Args: []plan.VarID{col}, Rets: []plan.VarID{oids}, Part: pt})
		cloneRets[i] = p.NewVar(plan.KindColumn, "")
		p.Append(&plan.Instr{Op: plan.OpFetch, Args: []plan.VarID{oids, col},
			Rets: []plan.VarID{cloneRets[i]}, Part: plan.FullPart()})
	}
	packed := p.NewVar(plan.KindColumn, "packed")
	p.Append(&plan.Instr{Op: plan.OpPack, Args: cloneRets, Rets: []plan.VarID{packed}, Part: plan.FullPart()})
	sum := p.NewVar(plan.KindScalar, "sum")
	p.Append(&plan.Instr{Op: plan.OpAggr, Aux: plan.AggrAux{Func: algebra.AggrSum},
		Args: []plan.VarID{packed}, Rets: []plan.VarID{sum}, Part: plan.FullPart()})
	p.Append(&plan.Instr{Op: plan.OpResult, Args: []plan.VarID{sum}, Part: plan.FullPart()})
	return p
}

func workByInstr(prof *Profile) map[int]algebra.Work {
	out := make(map[int]algebra.Work, len(prof.Ops))
	for _, o := range prof.Ops {
		out[o.Instr] = o.Work
	}
	return out
}

// The zero-copy exchange must be invisible in values and in every non-pack
// operator's Work; the pack itself must report zero data movement where the
// copying path reported full movement.
func TestZeroCopyExchangeEquivalence(t *testing.T) {
	cat := testCatalog(10_000)
	for name, build := range map[string]func() *plan.Plan{
		"sliced":     func() *plan.Plan { return partitionedFetchPlan(4) },
		"propagated": func() *plan.Plan { return propagatedFetchPlan(4) },
	} {
		p := build()
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		shared := NewEngine(cat, testMachine(), cost.Default())
		copying := NewEngine(cat, testMachine(), cost.Default())

		sres, sprof, err := shared.ExecuteOpts(p, JobOptions{})
		if err != nil {
			t.Fatalf("%s shared: %v", name, err)
		}
		cres, cprof, err := copying.ExecuteOpts(p, JobOptions{CopyExchange: true})
		if err != nil {
			t.Fatalf("%s copying: %v", name, err)
		}
		if !ResultsEqual(sres, cres) {
			t.Fatalf("%s: zero-copy results %v != copying results %v", name, sres, cres)
		}
		if sres[0].Scalar == 0 {
			t.Fatalf("%s: degenerate plan (empty selection)", name)
		}

		sw, cw := workByInstr(sprof), workByInstr(cprof)
		packSeen := false
		for i, in := range p.Instrs {
			if in.Op == plan.OpPack {
				packSeen = true
				if sw[i].BytesSeqRead != 0 || sw[i].BytesWritten != 0 || sw[i].MemClaimBytes != 0 {
					t.Fatalf("%s: view pack moved data: %+v", name, sw[i])
				}
				if cw[i].BytesWritten == 0 {
					t.Fatalf("%s: copying pack reported no movement: %+v", name, cw[i])
				}
				if sw[i].TuplesIn != cw[i].TuplesIn || sw[i].TuplesOut != cw[i].TuplesOut {
					t.Fatalf("%s: pack tuple counts diverge: %+v vs %+v", name, sw[i], cw[i])
				}
				continue
			}
			if sw[i] != cw[i] {
				t.Fatalf("%s: instr %d (%s) Work diverges: %+v vs %+v", name, i, in.Op, sw[i], cw[i])
			}
		}
		if !packSeen {
			t.Fatalf("%s: no pack profiled", name)
		}
		if sprof.Makespan() > cprof.Makespan() {
			t.Fatalf("%s: zero-copy makespan %f exceeds copying %f", name, sprof.Makespan(), cprof.Makespan())
		}
	}
}

// Repeated invocations of one cached plan must produce identical virtual
// timelines: arena recycling and shared buffers change ownership, never the
// Work-derived schedule.
func TestZeroCopyDeterministicTimelines(t *testing.T) {
	cat := testCatalog(10_000)
	p := propagatedFetchPlan(4)
	eng := NewEngine(cat, testMachine(), cost.Default())
	_, first, err := eng.Execute(p) // cold: builds schedule + arena
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		res, prof, err := eng.Execute(p) // hot: recycled arena, view pack
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].Scalar == 0 {
			t.Fatalf("run %d results: %v", run, res)
		}
		if prof.Makespan() != first.Makespan() {
			t.Fatalf("run %d makespan %f != first %f", run, prof.Makespan(), first.Makespan())
		}
		if len(prof.Ops) != len(first.Ops) {
			t.Fatalf("run %d ops %d != first %d", run, len(prof.Ops), len(first.Ops))
		}
		for k := range prof.Ops {
			a, b := prof.Ops[k], first.Ops[k]
			if a.Instr != b.Instr || a.Work != b.Work || a.Duration() != b.Duration() || a.Core != b.Core {
				t.Fatalf("run %d op %d diverges: %+v vs %+v", run, k, a, b)
			}
		}
	}
}

// Partitioned fetch clones keep their global head alignment when writing the
// shared buffer: a select over the packed value must see absolute row ids
// (the §2.3 invariant the reseq test pins for the copying path).
func TestZeroCopyPreservesAlignment(t *testing.T) {
	cat := testCatalog(8_000)
	serial := q6Plan()
	eng := NewEngine(cat, testMachine(), cost.Default())
	want, _, err := eng.Execute(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		got, _, err := eng.Execute(partitionedFetchPlan(n))
		if err != nil {
			t.Fatal(err)
		}
		got2, _, err := eng.Execute(propagatedFetchPlan(n))
		if err != nil {
			t.Fatal(err)
		}
		if !ResultsEqual(got, got2) {
			t.Fatalf("n=%d: sliced %v != propagated %v", n, got, got2)
		}
	}
	_ = want
}

// The fetch→pack hot path of a cached plan must not allocate per request
// once its arena is warm: the seed materialized every clone output and the
// pack copy (hundreds of KB and dozens of allocations per execution).
func TestFetchPackHotPathAllocations(t *testing.T) {
	cat := testCatalog(20_000)
	eng := NewEngine(cat, testMachine(), cost.Default())
	p := partitionedFetchPlan(8)
	for i := 0; i < 3; i++ { // warm schedule + arena
		if _, _, err := eng.Execute(p); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := eng.Execute(p); err != nil {
			t.Fatal(err)
		}
	})
	// The plan has 13 instructions; the seed path allocated clone outputs,
	// the pack concatenation, per-task objects and scheduling state on top
	// (≈70 allocations for this shape). The budget leaves room for the
	// small per-run residue (job, profile, results) without letting buffer
	// allocation creep back in.
	if allocs > 30 {
		t.Fatalf("fetch→pack hot path allocates %.1f objects per run (budget 30)", allocs)
	}
}
