package exec

import (
	"fmt"
	"sync"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vec"
)

// Engine hosts plan executions on one simulated machine. Multiple plans may
// be in flight simultaneously (the concurrent-workload experiments); they
// compete for the machine's cores and memory bandwidth exactly as the
// paper's concurrent clients do.
type Engine struct {
	cat    *storage.Catalog
	mach   *sim.Machine
	params cost.Params

	schedMu   sync.Mutex
	sched     map[*plan.Plan]*planSchedule
	schedFifo []*plan.Plan
}

// NewEngine creates an engine over the catalog with a fresh machine.
func NewEngine(cat *storage.Catalog, machineCfg sim.Config, params cost.Params) *Engine {
	return &Engine{
		cat:    cat,
		mach:   sim.NewMachine(machineCfg),
		params: params,
		sched:  make(map[*plan.Plan]*planSchedule),
	}
}

// Per-instruction output-buffer classes the arena recycles. bufNone marks
// instructions whose outputs either escape (query results), are owned by a
// pack group's shared buffer, or have no recyclable Into kernel.
const (
	bufNone uint8 = iota
	bufOids       // ret 0 is an oid vector (select / selectcand / oid pack)
	bufCol        // ret 0 is a column payload (fetch / calc / scalar pack)
)

// schedGroup is one planned pack group (plan.PackGroup resolved against the
// dependency graph): the exchange union whose clones write disjoint ranges
// of one shared result buffer so the pack becomes a view.
type schedGroup struct {
	pack      int32
	clones    []int32
	sliced    bool
	anchorArg int8
	// recycle reports that neither the pack's nor any clone's result is a
	// query result, so the shared buffer may return to the arena and be
	// rewritten by the next invocation.
	recycle bool
	parts   []plan.Part // per clone, for sliced-shape offsets
	// anchorVar / anchorProducer / anchorRet locate each clone's anchor
	// value for propagated-shape offsets (prefix sums of anchor lengths,
	// resolvable once every anchor's producer has evaluated).
	anchorVar      []plan.VarID
	anchorProducer []int32
	anchorRet      []int8
}

// planSchedule is the per-plan execution scaffolding that is identical
// across runs of the same (immutable) plan object: validation outcome, the
// argument-dependency graph, initial unresolved-producer counts, the
// zero-copy exchange plan (pack groups and recyclable output buffers), and
// the arena of run-state buffers the next invocation reuses. The
// plan-session cache executes one plan object per request once a query
// converges, so caching this removes both the per-run O(instrs × args)
// graph rebuild and the hot path's result-buffer allocations.
type planSchedule struct {
	pending []int32   // unresolved argument-producer count per instruction
	waiters [][]int32 // waiters[i] = instructions waiting on producer i
	roots   []int32   // instructions with no unresolved producers

	groups    []schedGroup
	cloneOf   []int32 // instr -> pack-group index it is a clone of, or -1
	memberOf  []int32 // instr -> clone position within its group
	packGroup []int32 // instr -> pack-group index it is the pack of, or -1
	outBuf    []uint8 // instr -> recyclable output-buffer class

	arenaMu sync.Mutex
	arena   *jobArena // idle arena of the last completed invocation
}

func (s *planSchedule) takeArena() *jobArena {
	s.arenaMu.Lock()
	a := s.arena
	s.arena = nil
	s.arenaMu.Unlock()
	return a
}

func (s *planSchedule) putArena(a *jobArena) {
	s.arenaMu.Lock()
	s.arena = a
	s.arenaMu.Unlock()
}

// maxCachedSchedules bounds the schedule cache; adaptive sessions retire
// mutated plans constantly, so stale entries must not accumulate.
const maxCachedSchedules = 256

// scheduleFor returns the cached schedule for p, validating and building it
// on first sight of the plan object. Plans must not be mutated in place
// after submission (mutation always clones).
func (e *Engine) scheduleFor(p *plan.Plan) (*planSchedule, error) {
	e.schedMu.Lock()
	if s, ok := e.sched[p]; ok {
		e.schedMu.Unlock()
		return s, nil
	}
	e.schedMu.Unlock()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Instrs)
	s := &planSchedule{
		pending:   make([]int32, n),
		waiters:   make([][]int32, n),
		cloneOf:   make([]int32, n),
		memberOf:  make([]int32, n),
		packGroup: make([]int32, n),
		outBuf:    make([]uint8, n),
	}
	producer := make(map[plan.VarID]int32)
	retIndex := make(map[plan.VarID]int8)
	for i, in := range p.Instrs {
		for ri, r := range in.Rets {
			producer[r] = int32(i)
			retIndex[r] = int8(ri)
		}
	}
	for i, in := range p.Instrs {
		seen := int32(-1)
		for _, a := range in.Args {
			if src, ok := producer[a]; ok && src != seen {
				// Duplicate producers of one instruction are rare; dedupe
				// against the full waiter set only when they occur.
				dup := false
				for _, w := range s.waiters[src] {
					if w == int32(i) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				seen = src
				s.pending[i]++
				s.waiters[src] = append(s.waiters[src], int32(i))
			}
		}
		if s.pending[i] == 0 {
			s.roots = append(s.roots, int32(i))
		}
	}
	s.planBuffers(p, producer, retIndex)
	e.schedMu.Lock()
	if len(e.schedFifo) >= maxCachedSchedules {
		for _, old := range e.schedFifo[:maxCachedSchedules/2] {
			delete(e.sched, old)
		}
		e.schedFifo = append(e.schedFifo[:0], e.schedFifo[maxCachedSchedules/2:]...)
	}
	e.sched[p] = s
	e.schedFifo = append(e.schedFifo, p)
	e.schedMu.Unlock()
	return s, nil
}

// planBuffers computes the zero-copy exchange plan: the plan's pack groups
// (shared clone buffers, view packs) and the per-instruction output buffers
// the arena may recycle across invocations. Anything whose output reaches
// the query result is excluded — result values escape to callers, so their
// buffers must stay immutable forever and are allocated fresh each run.
func (s *planSchedule) planBuffers(p *plan.Plan, producer map[plan.VarID]int32, retIndex map[plan.VarID]int8) {
	for i := range s.cloneOf {
		s.cloneOf[i], s.memberOf[i], s.packGroup[i] = -1, -1, -1
	}
	resultArg := make(map[plan.VarID]bool)
	for _, in := range p.Instrs {
		if in.Op == plan.OpResult {
			for _, a := range in.Args {
				resultArg[a] = true
			}
		}
	}
	for _, g := range p.PackGroups() {
		pk := p.Instrs[g.Pack]
		sg := schedGroup{
			pack:    int32(g.Pack),
			sliced:  g.Sliced,
			recycle: !resultArg[pk.Rets[0]],
		}
		proto := p.Instrs[g.Clones[0]]
		sg.anchorArg = int8(plan.SliceArgs(proto.Op)[0])
		for _, ci := range g.Clones {
			c := p.Instrs[ci]
			if resultArg[c.Rets[0]] {
				sg.recycle = false
			}
			av := c.Args[sg.anchorArg]
			prod := int32(-1)
			if pi, ok := producer[av]; ok {
				prod = pi
			}
			sg.clones = append(sg.clones, int32(ci))
			sg.parts = append(sg.parts, c.Part)
			sg.anchorVar = append(sg.anchorVar, av)
			sg.anchorProducer = append(sg.anchorProducer, prod)
			sg.anchorRet = append(sg.anchorRet, retIndex[av])
		}
		gi := int32(len(s.groups))
		s.groups = append(s.groups, sg)
		s.packGroup[g.Pack] = gi
		for m, ci := range g.Clones {
			s.cloneOf[ci] = gi
			s.memberOf[ci] = int32(m)
		}
	}
	for i, in := range p.Instrs {
		if s.cloneOf[i] >= 0 {
			continue // group clones write the shared buffer instead
		}
		if len(in.Rets) == 0 || resultArg[in.Rets[0]] {
			continue
		}
		switch in.Op {
		case plan.OpSelect, plan.OpSelectCand:
			s.outBuf[i] = bufOids
		case plan.OpFetch, plan.OpFetchPos, plan.OpCalcVV, plan.OpCalcSV, plan.OpCalcSSV:
			s.outBuf[i] = bufCol
		case plan.OpPack:
			switch p.KindOf(in.Rets[0]) {
			case plan.KindOids:
				s.outBuf[i] = bufOids
			case plan.KindColumn:
				if p.KindOf(in.Args[0]) == plan.KindScalar {
					// Scalar partial packs own their gathered slice
					// (PackScalarsOwned); column packs either become views
					// (group) or concatenate into a fresh vector.
					s.outBuf[i] = bufCol
				}
			}
		}
	}
}

// groupRun is the per-invocation state of one pack group: the shared buffer
// builder, each clone's write offset, and how much each clone wrote. A group
// is disabled for the run when its offsets cannot be resolved at first use
// (an anchor not evaluated yet); its members then materialize privately and
// the pack falls back to copying — results are identical either way.
type groupRun struct {
	bld      *vec.Builder
	offs     []int // len = clones+1; clone m writes [offs[m], offs[m+1])
	written  []int // values actually written per clone; -1 = pending
	total    int
	disabled bool
}

// jobArena holds every run-state buffer of one plan invocation. It is
// checked out of the plan's schedule at submit and returned at completion,
// so repeated invocations of a cached plan (the converged serving path)
// allocate almost nothing: dependency counters, the task slab, kernel
// output buffers and shared exchange buffers are all rewritten in place.
// Failed jobs never return their arena (their simulated tasks may still
// drain), so a fresh one is built on the next invocation.
type jobArena struct {
	env       []Value
	pending   []int32
	evald     []bool // instruction evaluated (results exist in its task slab)
	tasks     []instrTask
	args      []Value    // resolveArgs scratch
	bufs      [][]int64  // per-instruction recycled output buffers
	groupBufs [][]int64  // per-group shared exchange buffers
	groupRuns []groupRun // per-group run state
	oidParts  [][]int64  // evalPack scratch
	colParts  []*storage.Column
}

// prepare sizes the arena for the plan and resets per-run state.
func (a *jobArena) prepare(s *planSchedule, p *plan.Plan) {
	n := len(p.Instrs)
	if cap(a.env) < p.NVars() {
		a.env = make([]Value, p.NVars())
	}
	a.env = a.env[:p.NVars()]
	if cap(a.pending) < n {
		a.pending = make([]int32, n)
	}
	a.pending = a.pending[:n]
	copy(a.pending, s.pending)
	if cap(a.evald) < n {
		a.evald = make([]bool, n)
	}
	a.evald = a.evald[:n]
	for i := range a.evald {
		a.evald[i] = false
	}
	if cap(a.tasks) < n {
		a.tasks = make([]instrTask, n)
	}
	a.tasks = a.tasks[:n]
	if cap(a.bufs) < n {
		a.bufs = make([][]int64, n)
	}
	a.bufs = a.bufs[:n]
	if len(a.groupBufs) < len(s.groups) {
		a.groupBufs = make([][]int64, len(s.groups))
	}
	if cap(a.groupRuns) < len(s.groups) {
		a.groupRuns = make([]groupRun, len(s.groups))
	}
	a.groupRuns = a.groupRuns[:len(s.groups)]
	for i := range a.groupRuns {
		gr := &a.groupRuns[i]
		gr.bld = nil
		gr.offs = gr.offs[:0]
		gr.written = gr.written[:0]
		gr.total = 0
		gr.disabled = false
	}
}

// release drops the run's value references (so an idle arena does not pin
// intermediate columns) and hands the arena back to the schedule.
func (a *jobArena) release(s *planSchedule) {
	for i := range a.env {
		a.env[i] = Value{}
	}
	for i := range a.tasks {
		// The whole slab entry: retv holds result values and j keeps the
		// dead PlanJob (and through it the run's results and profile)
		// reachable for as long as the schedule stays cached.
		a.tasks[i] = instrTask{}
	}
	for i := range a.args {
		a.args[i] = Value{}
	}
	for i := range a.colParts {
		a.colParts[i] = nil
	}
	for i := range a.oidParts {
		a.oidParts[i] = nil
	}
	s.putArena(a)
}

// Machine exposes the simulated machine (for workload drivers that inject
// background load or need the virtual clock).
func (e *Engine) Machine() *sim.Machine { return e.mach }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// Params returns the engine's cost parameters.
func (e *Engine) Params() cost.Params { return e.params }

// PlanJob is one in-flight plan execution.
type PlanJob struct {
	Plan    *plan.Plan
	Profile *Profile
	Err     error
	Done    bool
	// OnDone, when set, fires at virtual completion time.
	OnDone func(*PlanJob)

	eng          *Engine
	sched        *planSchedule
	arena        *jobArena
	simJob       *sim.Job
	env          []Value
	pending      []int32 // unresolved argument-producer count per instruction
	waiters      [][]int32
	results      []Value
	costParams   cost.Params
	completed    int
	copyExchange bool
}

// JobOptions configures a plan submission.
type JobOptions struct {
	// MaxCores caps the job's simultaneous operator executions (admission
	// control, §4.2.4); 0 = unlimited.
	MaxCores int
	// CostParams overrides the engine's cost model for this job (used by
	// the Vectorwise comparator). Nil uses the engine default.
	CostParams *cost.Params
	// CopyExchange forces exchange unions to materialize concatenated
	// copies (the seed behavior) even where a zero-copy pack group is
	// planned. Equivalence tests and A/B benchmarks use it; production
	// paths leave it false and get the shared-buffer exchange.
	CopyExchange bool
}

// Submit schedules p for execution starting at the machine's current virtual
// time. Call Engine.Run (or Machine().Run()) to drive the simulation. The
// plan's validation, dependency graph and buffer plan are cached per plan
// object, so repeated submissions of a cached plan (the converged serving
// path) pay only a counter-slice copy and reuse the previous invocation's
// arena buffers.
func (e *Engine) Submit(p *plan.Plan, opts JobOptions) (*PlanJob, error) {
	sched, err := e.scheduleFor(p)
	if err != nil {
		return nil, err
	}
	a := sched.takeArena()
	if a == nil {
		a = &jobArena{}
	}
	a.prepare(sched, p)
	j := &PlanJob{
		Plan:         p,
		Profile:      &Profile{StartNs: e.mach.Now(), Machine: e.mach.Config(), Ops: make([]OpExec, 0, len(p.Instrs))},
		eng:          e,
		sched:        sched,
		arena:        a,
		simJob:       e.mach.NewJob(opts.MaxCores),
		env:          a.env,
		pending:      a.pending,
		waiters:      sched.waiters,
		copyExchange: opts.CopyExchange,
	}
	params := e.params
	if opts.CostParams != nil {
		params = *opts.CostParams
	}
	j.costParams = params
	for _, i := range sched.roots {
		j.submitInstr(int(i))
	}
	return j, nil
}

func (j *PlanJob) fail(err error) {
	if j.Err == nil {
		j.Err = err
	}
	j.Done = true
	if j.OnDone != nil {
		j.OnDone(j)
		j.OnDone = nil
	}
}

// instrTask carries one scheduled instruction through the simulator: the
// sim task, its evaluated results, and the profiling state, in a single
// slab entry of the job's arena (it implements sim.TaskHooks, so no
// per-task closures, and results live inline, so no per-task ret slices).
// retv's capacity bounds an opcode's result count; submitInstr enforces it
// so an overflow can never silently re-allocate the slice away from the
// slab.
type instrTask struct {
	sim.Task
	j       *PlanJob
	idx     int32
	core    int32
	startNs float64
	work    algebra.Work
	retv    [2]Value
}

// TaskStarted implements sim.TaskHooks.
func (it *instrTask) TaskStarted(now float64, core int) {
	it.startNs = now
	it.core = int32(core)
}

// TaskCompleted implements sim.TaskHooks: results become visible, waiting
// instructions are released, and the op is profiled.
func (it *instrTask) TaskCompleted(now float64, core int) {
	j := it.j
	idx := int(it.idx)
	in := j.Plan.Instrs[idx]
	j.Profile.Ops = append(j.Profile.Ops, OpExec{
		Instr: idx, Op: in.Op, StartNs: it.startNs, EndNs: now, Core: int(it.core), Work: it.work,
	})
	for k, r := range in.Rets {
		j.env[r] = it.retv[k]
	}
	if in.Op == plan.OpResult {
		j.results = make([]Value, len(in.Args))
		for k, a := range in.Args {
			j.results[k] = j.env[a]
		}
	}
	for _, dep := range j.waiters[idx] {
		j.pending[dep]--
		if j.pending[dep] == 0 {
			j.submitInstr(int(dep))
		}
	}
	j.completed++
	if j.completed == len(j.Plan.Instrs) && !j.Done {
		j.Profile.EndNs = now
		j.Done = true
		if j.OnDone != nil {
			j.OnDone(j)
			j.OnDone = nil
		}
		if j.arena != nil {
			a := j.arena
			j.arena = nil
			a.release(j.sched)
		}
	}
}

// submitInstr evaluates instruction idx immediately (results become visible
// only at virtual completion) and schedules its virtual duration.
func (j *PlanJob) submitInstr(idx int) {
	if j.Err != nil {
		return
	}
	in := j.Plan.Instrs[idx]
	it := &j.arena.tasks[idx]
	*it = instrTask{j: j, idx: int32(idx)}
	rets, w, everr := evalInstr(j, j.Plan, idx, in, it.retv[:0])
	if everr != nil {
		j.fail(everr)
		return
	}
	if len(rets) > len(it.retv) {
		// Appending past retv's capacity would have silently moved the
		// results off the slab; no current opcode returns more than two.
		j.fail(fmt.Errorf("exec: %s returned %d values, slab holds %d", in.Op, len(rets), len(it.retv)))
		return
	}
	it.work = w
	j.arena.evald[idx] = true
	est := j.costParams.ForWork(in.Op, w, j.eng.mach.L3SharePerSocket())
	home := 0
	if sockets := j.eng.mach.Config().Sockets; sockets > 1 {
		if !in.Part.IsFull() {
			// Range partitions are spread across sockets by their position
			// in the partitioning, mimicking the memory-mapped round-robin
			// placement the paper observes minimal NUMA effects under [14].
			home = int(uint64(sockets) * in.Part.LoNum / in.Part.Den)
			if home >= sockets {
				home = sockets - 1
			}
		} else {
			// Propagated clones and serial operators: spread round-robin so
			// no single socket's bandwidth serves the whole plan.
			home = idx % sockets
		}
	}
	it.Task = sim.Task{
		Label:      in.Op.String(),
		Job:        j.simJob,
		BaseNs:     est.Ns,
		MemFrac:    est.MemFrac,
		Bytes:      est.Bytes,
		HomeSocket: home,
		Hooks:      it,
	}
	j.eng.mach.Submit(&it.Task)
}

// Results returns the values of the plan's result instruction (valid once
// Done).
func (j *PlanJob) Results() []Value { return j.results }

// Run drives the machine until all submitted work drains.
func (e *Engine) Run() { e.mach.Run() }

// Execute runs p from the engine's current virtual time and returns its
// results and profile. It drives the machine only until this plan
// completes, so background jobs (concurrent load) may continue to exist.
func (e *Engine) Execute(p *plan.Plan) ([]Value, *Profile, error) {
	return e.ExecuteOpts(p, JobOptions{})
}

// ExecuteOpts is Execute with per-job options (core budgets from admission
// control, comparator cost calibrations).
func (e *Engine) ExecuteOpts(p *plan.Plan, opts JobOptions) ([]Value, *Profile, error) {
	job, err := e.Submit(p, opts)
	if err != nil {
		return nil, nil, err
	}
	e.mach.RunUntil(func() bool { return job.Done })
	if job.Err != nil {
		return nil, nil, job.Err
	}
	if !job.Done {
		return nil, nil, fmt.Errorf("exec: plan did not complete")
	}
	return job.Results(), job.Profile, nil
}
