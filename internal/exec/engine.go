package exec

import (
	"fmt"
	"sync"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Engine hosts plan executions on one simulated machine. Multiple plans may
// be in flight simultaneously (the concurrent-workload experiments); they
// compete for the machine's cores and memory bandwidth exactly as the
// paper's concurrent clients do.
type Engine struct {
	cat    *storage.Catalog
	mach   *sim.Machine
	params cost.Params

	schedMu   sync.Mutex
	sched     map[*plan.Plan]*planSchedule
	schedFifo []*plan.Plan
}

// NewEngine creates an engine over the catalog with a fresh machine.
func NewEngine(cat *storage.Catalog, machineCfg sim.Config, params cost.Params) *Engine {
	return &Engine{
		cat:    cat,
		mach:   sim.NewMachine(machineCfg),
		params: params,
		sched:  make(map[*plan.Plan]*planSchedule),
	}
}

// planSchedule is the per-plan execution scaffolding that is identical
// across runs of the same (immutable) plan object: validation outcome, the
// argument-dependency graph, and initial unresolved-producer counts. The
// plan-session cache executes one plan object per request once a query
// converges, so caching this turns the per-run O(instrs × args) graph
// rebuild into a single slice copy.
type planSchedule struct {
	pending []int32   // unresolved argument-producer count per instruction
	waiters [][]int32 // waiters[i] = instructions waiting on producer i
	roots   []int32   // instructions with no unresolved producers
}

// maxCachedSchedules bounds the schedule cache; adaptive sessions retire
// mutated plans constantly, so stale entries must not accumulate.
const maxCachedSchedules = 256

// scheduleFor returns the cached schedule for p, validating and building it
// on first sight of the plan object. Plans must not be mutated in place
// after submission (mutation always clones).
func (e *Engine) scheduleFor(p *plan.Plan) (*planSchedule, error) {
	e.schedMu.Lock()
	if s, ok := e.sched[p]; ok {
		e.schedMu.Unlock()
		return s, nil
	}
	e.schedMu.Unlock()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &planSchedule{
		pending: make([]int32, len(p.Instrs)),
		waiters: make([][]int32, len(p.Instrs)),
	}
	producer := make(map[plan.VarID]int32)
	for i, in := range p.Instrs {
		for _, r := range in.Rets {
			producer[r] = int32(i)
		}
	}
	for i, in := range p.Instrs {
		seen := int32(-1)
		for _, a := range in.Args {
			if src, ok := producer[a]; ok && src != seen {
				// Duplicate producers of one instruction are rare; dedupe
				// against the full waiter set only when they occur.
				dup := false
				for _, w := range s.waiters[src] {
					if w == int32(i) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				seen = src
				s.pending[i]++
				s.waiters[src] = append(s.waiters[src], int32(i))
			}
		}
		if s.pending[i] == 0 {
			s.roots = append(s.roots, int32(i))
		}
	}
	e.schedMu.Lock()
	if len(e.schedFifo) >= maxCachedSchedules {
		for _, old := range e.schedFifo[:maxCachedSchedules/2] {
			delete(e.sched, old)
		}
		e.schedFifo = append(e.schedFifo[:0], e.schedFifo[maxCachedSchedules/2:]...)
	}
	e.sched[p] = s
	e.schedFifo = append(e.schedFifo, p)
	e.schedMu.Unlock()
	return s, nil
}

// Machine exposes the simulated machine (for workload drivers that inject
// background load or need the virtual clock).
func (e *Engine) Machine() *sim.Machine { return e.mach }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// Params returns the engine's cost parameters.
func (e *Engine) Params() cost.Params { return e.params }

// PlanJob is one in-flight plan execution.
type PlanJob struct {
	Plan    *plan.Plan
	Profile *Profile
	Err     error
	Done    bool
	// OnDone, when set, fires at virtual completion time.
	OnDone func(*PlanJob)

	eng        *Engine
	simJob     *sim.Job
	env        []Value
	pending    []int32 // unresolved argument-producer count per instruction
	waiters    [][]int32
	results    []Value
	costParams cost.Params
	completed  int
	argScratch []Value // reused per evalInstr call; never retained by kernels
}

// JobOptions configures a plan submission.
type JobOptions struct {
	// MaxCores caps the job's simultaneous operator executions (admission
	// control, §4.2.4); 0 = unlimited.
	MaxCores int
	// CostParams overrides the engine's cost model for this job (used by
	// the Vectorwise comparator). Nil uses the engine default.
	CostParams *cost.Params
}

// Submit schedules p for execution starting at the machine's current virtual
// time. Call Engine.Run (or Machine().Run()) to drive the simulation. The
// plan's validation and dependency graph are cached per plan object, so
// repeated submissions of a cached plan (the converged serving path) pay
// only a counter-slice copy.
func (e *Engine) Submit(p *plan.Plan, opts JobOptions) (*PlanJob, error) {
	sched, err := e.scheduleFor(p)
	if err != nil {
		return nil, err
	}
	j := &PlanJob{
		Plan:    p,
		Profile: &Profile{StartNs: e.mach.Now(), Machine: e.mach.Config(), Ops: make([]OpExec, 0, len(p.Instrs))},
		eng:     e,
		simJob:  e.mach.NewJob(opts.MaxCores),
		env:     make([]Value, p.NVars()),
		pending: make([]int32, len(p.Instrs)),
		waiters: sched.waiters,
	}
	copy(j.pending, sched.pending)
	params := e.params
	if opts.CostParams != nil {
		params = *opts.CostParams
	}
	j.costParams = params
	for _, i := range sched.roots {
		j.submitInstr(int(i))
	}
	return j, nil
}

func (j *PlanJob) fail(err error) {
	if j.Err == nil {
		j.Err = err
	}
	j.Done = true
	if j.OnDone != nil {
		j.OnDone(j)
		j.OnDone = nil
	}
}

// instrTask carries one scheduled instruction through the simulator: the
// sim task, its evaluated results, and the profiling state, in a single
// allocation (it implements sim.TaskHooks, so no per-task closures).
type instrTask struct {
	sim.Task
	j       *PlanJob
	idx     int32
	core    int32
	startNs float64
	work    algebra.Work
	rets    []Value
}

// TaskStarted implements sim.TaskHooks.
func (it *instrTask) TaskStarted(now float64, core int) {
	it.startNs = now
	it.core = int32(core)
}

// TaskCompleted implements sim.TaskHooks: results become visible, waiting
// instructions are released, and the op is profiled.
func (it *instrTask) TaskCompleted(now float64, core int) {
	j := it.j
	idx := int(it.idx)
	in := j.Plan.Instrs[idx]
	j.Profile.Ops = append(j.Profile.Ops, OpExec{
		Instr: idx, Op: in.Op, StartNs: it.startNs, EndNs: now, Core: int(it.core), Work: it.work,
	})
	for k, r := range in.Rets {
		j.env[r] = it.rets[k]
	}
	if in.Op == plan.OpResult {
		j.results = make([]Value, len(in.Args))
		for k, a := range in.Args {
			j.results[k] = j.env[a]
		}
	}
	for _, dep := range j.waiters[idx] {
		j.pending[dep]--
		if j.pending[dep] == 0 {
			j.submitInstr(int(dep))
		}
	}
	j.completed++
	if j.completed == len(j.Plan.Instrs) && !j.Done {
		j.Profile.EndNs = now
		j.Done = true
		if j.OnDone != nil {
			j.OnDone(j)
			j.OnDone = nil
		}
	}
}

// submitInstr evaluates instruction idx immediately (results become visible
// only at virtual completion) and schedules its virtual duration.
func (j *PlanJob) submitInstr(idx int) {
	if j.Err != nil {
		return
	}
	in := j.Plan.Instrs[idx]
	rets, w, everr := evalInstr(j, j.Plan, in)
	if everr != nil {
		j.fail(everr)
		return
	}
	est := j.costParams.ForWork(in.Op, w, j.eng.mach.L3SharePerSocket())
	home := 0
	if sockets := j.eng.mach.Config().Sockets; sockets > 1 {
		if !in.Part.IsFull() {
			// Range partitions are spread across sockets by their position
			// in the partitioning, mimicking the memory-mapped round-robin
			// placement the paper observes minimal NUMA effects under [14].
			home = int(uint64(sockets) * in.Part.LoNum / in.Part.Den)
			if home >= sockets {
				home = sockets - 1
			}
		} else {
			// Propagated clones and serial operators: spread round-robin so
			// no single socket's bandwidth serves the whole plan.
			home = idx % sockets
		}
	}
	it := &instrTask{j: j, idx: int32(idx), work: w, rets: rets}
	it.Task = sim.Task{
		Label:      in.Op.String(),
		Job:        j.simJob,
		BaseNs:     est.Ns,
		MemFrac:    est.MemFrac,
		Bytes:      est.Bytes,
		HomeSocket: home,
		Hooks:      it,
	}
	j.eng.mach.Submit(&it.Task)
}

// Results returns the values of the plan's result instruction (valid once
// Done).
func (j *PlanJob) Results() []Value { return j.results }

// Run drives the machine until all submitted work drains.
func (e *Engine) Run() { e.mach.Run() }

// Execute runs p from the engine's current virtual time and returns its
// results and profile. It drives the machine only until this plan
// completes, so background jobs (concurrent load) may continue to exist.
func (e *Engine) Execute(p *plan.Plan) ([]Value, *Profile, error) {
	return e.ExecuteOpts(p, JobOptions{})
}

// ExecuteOpts is Execute with per-job options (core budgets from admission
// control, comparator cost calibrations).
func (e *Engine) ExecuteOpts(p *plan.Plan, opts JobOptions) ([]Value, *Profile, error) {
	job, err := e.Submit(p, opts)
	if err != nil {
		return nil, nil, err
	}
	e.mach.RunUntil(func() bool { return job.Done })
	if job.Err != nil {
		return nil, nil, job.Err
	}
	if !job.Done {
		return nil, nil, fmt.Errorf("exec: plan did not complete")
	}
	return job.Results(), job.Profile, nil
}
