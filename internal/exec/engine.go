package exec

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Engine hosts plan executions on one simulated machine. Multiple plans may
// be in flight simultaneously (the concurrent-workload experiments); they
// compete for the machine's cores and memory bandwidth exactly as the
// paper's concurrent clients do.
type Engine struct {
	cat    *storage.Catalog
	mach   *sim.Machine
	params cost.Params
}

// NewEngine creates an engine over the catalog with a fresh machine.
func NewEngine(cat *storage.Catalog, machineCfg sim.Config, params cost.Params) *Engine {
	return &Engine{cat: cat, mach: sim.NewMachine(machineCfg), params: params}
}

// Machine exposes the simulated machine (for workload drivers that inject
// background load or need the virtual clock).
func (e *Engine) Machine() *sim.Machine { return e.mach }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// Params returns the engine's cost parameters.
func (e *Engine) Params() cost.Params { return e.params }

// PlanJob is one in-flight plan execution.
type PlanJob struct {
	Plan    *plan.Plan
	Profile *Profile
	Err     error
	Done    bool
	// OnDone, when set, fires at virtual completion time.
	OnDone func(*PlanJob)

	eng        *Engine
	simJob     *sim.Job
	env        []Value
	pending    []int // unresolved argument-producer count per instruction
	waiters    map[int][]int
	results    []Value
	costParams cost.Params
	completed  int
}

// JobOptions configures a plan submission.
type JobOptions struct {
	// MaxCores caps the job's simultaneous operator executions (admission
	// control, §4.2.4); 0 = unlimited.
	MaxCores int
	// CostParams overrides the engine's cost model for this job (used by
	// the Vectorwise comparator). Nil uses the engine default.
	CostParams *cost.Params
}

// Submit schedules p for execution starting at the machine's current virtual
// time. Call Engine.Run (or Machine().Run()) to drive the simulation.
func (e *Engine) Submit(p *plan.Plan, opts JobOptions) (*PlanJob, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	j := &PlanJob{
		Plan:    p,
		Profile: &Profile{StartNs: e.mach.Now(), Machine: e.mach.Config()},
		eng:     e,
		simJob:  e.mach.NewJob(opts.MaxCores),
		env:     make([]Value, p.NVars()),
		pending: make([]int, len(p.Instrs)),
		waiters: make(map[int][]int),
	}
	params := e.params
	if opts.CostParams != nil {
		params = *opts.CostParams
	}
	// Build the dependency graph: instruction i waits for the producers of
	// its arguments.
	producer := make(map[plan.VarID]int)
	for i, in := range p.Instrs {
		for _, r := range in.Rets {
			producer[r] = i
		}
	}
	for i, in := range p.Instrs {
		seen := map[int]bool{}
		for _, a := range in.Args {
			if src, ok := producer[a]; ok && !seen[src] {
				seen[src] = true
				j.pending[i]++
				j.waiters[src] = append(j.waiters[src], i)
			}
		}
	}
	j.costParams = params
	for i := range p.Instrs {
		if j.pending[i] == 0 {
			j.submitInstr(i)
		}
	}
	return j, nil
}

func (j *PlanJob) fail(err error) {
	if j.Err == nil {
		j.Err = err
	}
	j.Done = true
	if j.OnDone != nil {
		j.OnDone(j)
		j.OnDone = nil
	}
}

// submitInstr evaluates instruction idx immediately (results become visible
// only at virtual completion) and schedules its virtual duration.
func (j *PlanJob) submitInstr(idx int) {
	if j.Err != nil {
		return
	}
	in := j.Plan.Instrs[idx]
	rets, w, everr := evalInstr(j.eng.cat, j.Plan, in, j.env)
	if everr != nil {
		j.fail(everr)
		return
	}
	est := j.costParams.ForWork(in.Op, w, j.eng.mach.L3SharePerSocket())
	home := 0
	if sockets := j.eng.mach.Config().Sockets; sockets > 1 {
		if !in.Part.IsFull() {
			// Range partitions are spread across sockets by their position
			// in the partitioning, mimicking the memory-mapped round-robin
			// placement the paper observes minimal NUMA effects under [14].
			home = int(uint64(sockets) * in.Part.LoNum / in.Part.Den)
			if home >= sockets {
				home = sockets - 1
			}
		} else {
			// Propagated clones and serial operators: spread round-robin so
			// no single socket's bandwidth serves the whole plan.
			home = idx % sockets
		}
	}
	task := &sim.Task{
		Label:      in.Op.String(),
		Job:        j.simJob,
		BaseNs:     est.Ns,
		MemFrac:    est.MemFrac,
		Bytes:      est.Bytes,
		HomeSocket: home,
	}
	var startNs float64
	var coreID int
	task.OnStart = func(now float64, core int) {
		startNs = now
		coreID = core
	}
	task.OnComplete = func(now float64, core int) {
		j.Profile.Ops = append(j.Profile.Ops, OpExec{
			Instr: idx, Op: in.Op, StartNs: startNs, EndNs: now, Core: coreID, Work: w,
		})
		for k, r := range in.Rets {
			j.env[r] = rets[k]
		}
		if in.Op == plan.OpResult {
			j.results = make([]Value, len(in.Args))
			for k, a := range in.Args {
				j.results[k] = j.env[a]
			}
		}
		for _, dep := range j.waiters[idx] {
			j.pending[dep]--
			if j.pending[dep] == 0 {
				j.submitInstr(dep)
			}
		}
		j.completed++
		if j.completed == len(j.Plan.Instrs) && !j.Done {
			j.Profile.EndNs = now
			j.Done = true
			if j.OnDone != nil {
				j.OnDone(j)
				j.OnDone = nil
			}
		}
	}
	j.eng.mach.Submit(task)
}

// Results returns the values of the plan's result instruction (valid once
// Done).
func (j *PlanJob) Results() []Value { return j.results }

// Run drives the machine until all submitted work drains.
func (e *Engine) Run() { e.mach.Run() }

// Execute runs p from the engine's current virtual time and returns its
// results and profile. It drives the machine only until this plan
// completes, so background jobs (concurrent load) may continue to exist.
func (e *Engine) Execute(p *plan.Plan) ([]Value, *Profile, error) {
	return e.ExecuteOpts(p, JobOptions{})
}

// ExecuteOpts is Execute with per-job options (core budgets from admission
// control, comparator cost calibrations).
func (e *Engine) ExecuteOpts(p *plan.Plan, opts JobOptions) ([]Value, *Profile, error) {
	job, err := e.Submit(p, opts)
	if err != nil {
		return nil, nil, err
	}
	e.mach.RunUntil(func() bool { return job.Done })
	if job.Err != nil {
		return nil, nil, job.Err
	}
	if !job.Done {
		return nil, nil, fmt.Errorf("exec: plan did not complete")
	}
	return job.Results(), job.Profile, nil
}
