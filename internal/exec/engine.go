package exec

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vec"
)

// Engine hosts plan executions on one simulated machine. Multiple plans may
// be in flight simultaneously (the concurrent-workload experiments); they
// compete for the machine's cores and memory bandwidth exactly as the
// paper's concurrent clients do.
type Engine struct {
	cat    *storage.Catalog
	mach   *sim.Machine
	params cost.Params

	schedMu   sync.Mutex
	sched     map[*plan.Plan]*planSchedule
	schedFifo []*plan.Plan

	// recycler is the engine-level size-classed buffer pool serving arenas
	// of retired (mutated, one-shot) plans back to new ones — see
	// recycler.go for the ownership discipline.
	recycler bufRecycler

	fullCompiles, derivedCompiles, retiredPlans atomic.Int64
}

// NewEngine creates an engine over the catalog with a fresh machine.
func NewEngine(cat *storage.Catalog, machineCfg sim.Config, params cost.Params) *Engine {
	return &Engine{
		cat:    cat,
		mach:   sim.NewMachine(machineCfg),
		params: params,
		sched:  make(map[*plan.Plan]*planSchedule),
	}
}

// Per-instruction output-buffer classes the arena recycles. bufNone marks
// instructions whose outputs either escape (query results), are owned by a
// pack group's shared buffer, or have no recyclable Into kernel.
const (
	bufNone uint8 = iota
	bufOids       // ret 0 is an oid vector (select / selectcand / oid pack)
	bufCol        // ret 0 is a column payload (fetch / calc / scalar pack)
)

// schedGroup is one planned pack group (plan.PackGroup resolved against the
// dependency graph): the exchange union whose clones write disjoint ranges
// of one shared result buffer so the pack becomes a view.
type schedGroup struct {
	pack      int32
	clones    []int32
	sliced    bool
	anchorArg int8
	// parentGroup is the parent schedule's group this one was remapped from
	// during incremental derivation (-1 otherwise); arena adoption uses it
	// to hand the parent's shared exchange buffer to the child group.
	parentGroup int32
	// recycle reports that neither the pack's nor any clone's result is a
	// query result, so the shared buffer may return to the arena and be
	// rewritten by the next invocation.
	recycle bool
	parts   []plan.Part // per clone, for sliced-shape offsets
	// anchorVar / anchorProducer / anchorRet locate each clone's anchor
	// value for propagated-shape offsets (prefix sums of anchor lengths,
	// resolvable once every anchor's producer has evaluated).
	anchorVar      []plan.VarID
	anchorProducer []int32
	anchorRet      []int8
}

// planSchedule is the per-plan execution scaffolding that is identical
// across runs of the same (immutable) plan object: validation outcome, the
// argument-dependency graph, initial unresolved-producer counts, the
// zero-copy exchange plan (pack groups and recyclable output buffers), and
// the arena of run-state buffers the next invocation reuses. The
// plan-session cache executes one plan object per request once a query
// converges, so caching this removes both the per-run O(instrs × args)
// graph rebuild and the hot path's result-buffer allocations.
type planSchedule struct {
	pending []int32   // unresolved argument-producer count per instruction
	waiters [][]int32 // waiters[i] = instructions waiting on producer i
	roots   []int32   // instructions with no unresolved producers

	groups    []schedGroup
	cloneOf   []int32 // instr -> pack-group index it is a clone of, or -1
	memberOf  []int32 // instr -> clone position within its group
	packGroup []int32 // instr -> pack-group index it is the pack of, or -1
	outBuf    []uint8 // instr -> recyclable output-buffer class

	arenaMu sync.Mutex
	arena   *jobArena // idle arena of the last completed invocation
}

func (s *planSchedule) takeArena() *jobArena {
	s.arenaMu.Lock()
	a := s.arena
	s.arena = nil
	s.arenaMu.Unlock()
	return a
}

func (s *planSchedule) putArena(a *jobArena) {
	s.arenaMu.Lock()
	s.arena = a
	s.arenaMu.Unlock()
}

// maxCachedSchedules bounds the schedule cache; adaptive sessions retire
// mutated plans constantly, so stale entries must not accumulate.
const maxCachedSchedules = 256

// scheduleFor returns the cached schedule for p, validating and building it
// on first sight of the plan object. Plans must not be mutated in place
// after submission (mutation always clones).
//
// When opts names a DerivedFrom parent whose compilation is cached, the
// schedule is derived incrementally: a structural diff against the parent
// identifies the instructions the mutation left untouched, and their
// validation, dependency edges and pack-group analysis are reused — only the
// mutated subtree is recompiled. The derived schedule is bit-identical to a
// full recompilation (pinned by core's A/B equivalence test against
// JobOptions.FullRecompile).
func (e *Engine) scheduleFor(p *plan.Plan, opts JobOptions) (*planSchedule, error) {
	e.schedMu.Lock()
	if s, ok := e.sched[p]; ok {
		e.schedMu.Unlock()
		return s, nil
	}
	var parentPlan *plan.Plan
	var parentSched *planSchedule
	if opts.DerivedFrom != nil && opts.DerivedFrom != p && !opts.FullRecompile {
		if ps, ok := e.sched[opts.DerivedFrom]; ok {
			parentPlan, parentSched = opts.DerivedFrom, ps
		}
	}
	e.schedMu.Unlock()

	var s *planSchedule
	if parentSched != nil {
		if d := plan.ComputeDiff(parentPlan, p); d.Matched > 0 {
			ds, err := deriveSchedule(p, parentSched, d)
			if err != nil {
				return nil, err
			}
			s = ds
			e.derivedCompiles.Add(1)
			// Adopt the parent's idle arena: matched instructions inherit
			// their settled kernel buffers index-for-index (no pool round
			// trip, no append-regrowth on the child's first run); buffers
			// the mutation orphaned go to the pool. The parent plan will
			// typically be retired within a step or two; if it does run
			// again it simply rebuilds an arena.
			if a := parentSched.takeArena(); a != nil {
				a.remapTo(s, &e.recycler, d)
				s.putArena(a)
			}
		}
	}
	if s == nil {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		s = buildSchedule(p)
		e.fullCompiles.Add(1)
	}

	e.schedMu.Lock()
	if len(e.schedFifo) >= maxCachedSchedules {
		for _, old := range e.schedFifo[:maxCachedSchedules/2] {
			if os, ok := e.sched[old]; ok {
				delete(e.sched, old)
				if a := os.takeArena(); a != nil {
					e.recycler.putShell(a)
				}
			}
		}
		e.schedFifo = append(e.schedFifo[:0], e.schedFifo[maxCachedSchedules/2:]...)
	}
	e.sched[p] = s
	e.schedFifo = append(e.schedFifo, p)
	e.schedMu.Unlock()
	return s, nil
}

// Retire drops p's cached compilation and recycles its arena — dependency
// counters, task slab, kernel output buffers and shared exchange buffers —
// into the engine's size-classed pool, where the next (typically freshly
// mutated) plan's arena draws from. Adaptive sessions call it the moment a
// mutated plan is superseded; the serving layer calls it after one-shot
// serial executions. Retiring a plan that is later re-submitted is safe: it
// just compiles again.
func (e *Engine) Retire(p *plan.Plan) {
	if p == nil {
		return
	}
	e.schedMu.Lock()
	s, ok := e.sched[p]
	if ok {
		delete(e.sched, p)
		for i, q := range e.schedFifo {
			if q == p {
				e.schedFifo = append(e.schedFifo[:i], e.schedFifo[i+1:]...)
				break
			}
		}
	}
	e.schedMu.Unlock()
	if !ok {
		return
	}
	e.retiredPlans.Add(1)
	if a := s.takeArena(); a != nil {
		e.recycler.putShell(a)
	}
}

func newPlanSchedule(n int) *planSchedule {
	return &planSchedule{
		pending:   make([]int32, n),
		waiters:   make([][]int32, n),
		cloneOf:   make([]int32, n),
		memberOf:  make([]int32, n),
		packGroup: make([]int32, n),
		outBuf:    make([]uint8, n),
	}
}

// retIndexOf builds the per-variable result-position table (companion to
// plan.Producers).
func retIndexOf(p *plan.Plan) []int8 {
	retIndex := make([]int8, p.NVars())
	for _, in := range p.Instrs {
		for ri, r := range in.Rets {
			retIndex[r] = int8(ri)
		}
	}
	return retIndex
}

// buildSchedule compiles p from scratch: the argument-dependency graph
// (pending counts, waiter lists, roots) and the buffer plan.
func buildSchedule(p *plan.Plan) *planSchedule {
	s := newPlanSchedule(len(p.Instrs))
	producer := p.Producers()
	for i, in := range p.Instrs {
		s.addDeps(int32(i), in, producer)
		if s.pending[i] == 0 {
			s.roots = append(s.roots, int32(i))
		}
	}
	s.planBuffers(p, producer, retIndexOf(p), nil, nil)
	return s
}

// addDeps wires instruction i's argument-producer edges into the graph.
func (s *planSchedule) addDeps(i int32, in *plan.Instr, producer []int32) {
	seen := int32(-1)
	for _, a := range in.Args {
		if src := producer[a]; src >= 0 && src != seen {
			// Duplicate producers of one instruction are rare; dedupe
			// against the full waiter set only when they occur.
			dup := false
			for _, w := range s.waiters[src] {
				if w == i {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen = src
			s.pending[i]++
			s.waiters[src] = append(s.waiters[src], i)
		}
	}
}

// deriveSchedule compiles child incrementally against its parent's cached
// compilation. Matched instructions (structurally identical, matched
// producing subtree — see plan.ComputeDiff) reuse the parent's validation,
// pending counts and dependency edges; only the mutated subtree is validated
// and wired from scratch. The result is identical to buildSchedule's, edge
// for edge: waiter lists are re-sorted into the consumer order the full
// build emits, so the simulated timeline cannot diverge between the paths.
func deriveSchedule(child *plan.Plan, parent *planSchedule, d *plan.Diff) (*planSchedule, error) {
	if err := child.ValidateIncremental(d); err != nil {
		return nil, err
	}
	n := len(child.Instrs)
	s := newPlanSchedule(n)
	producer := child.Producers()
	// Surviving edges: a matched consumer keeps its pending count, a matched
	// producer keeps its edges to consumers that also survived.
	for ci := 0; ci < n; ci++ {
		pi := d.ParentOf[ci]
		if pi < 0 {
			continue
		}
		s.pending[ci] = parent.pending[pi]
		for _, w := range parent.waiters[pi] {
			if cw := d.ChildOf[w]; cw >= 0 {
				s.waiters[ci] = append(s.waiters[ci], cw)
			}
		}
	}
	// Mutated subtree: full dependency wiring (its edges may target matched
	// producers — e.g. fresh clones fanning out of a surviving select).
	for i, in := range child.Instrs {
		if d.ParentOf[i] < 0 {
			s.addDeps(int32(i), in, producer)
		}
	}
	for i := range s.waiters {
		slices.Sort(s.waiters[i])
	}
	for i := 0; i < n; i++ {
		if s.pending[i] == 0 {
			s.roots = append(s.roots, int32(i))
		}
	}
	s.planBuffers(child, producer, retIndexOf(child), parent, d)
	return s, nil
}

// planBuffers computes the zero-copy exchange plan: the plan's pack groups
// (shared clone buffers, view packs) and the per-instruction output buffers
// the arena may recycle across invocations. Anything whose output reaches
// the query result is excluded — result values escape to callers, so their
// buffers must stay immutable forever and are allocated fresh each run.
//
// With a parent compilation and diff, pack groups whose pack AND clones all
// survived the mutation are remapped from the parent instead of re-derived;
// the remap is exact because a matched pack's arguments — and hence its
// clone set, their partitions and anchors — are structurally identical (only
// the recycle flag is recomputed: result reachability may have changed).
// Packs the mutation touched, and matched packs the parent found no group
// for (claim state may differ), are evaluated from scratch in the same
// greedy plan order PackGroups uses, so the derived grouping is identical to
// a full recompilation's.
func (s *planSchedule) planBuffers(p *plan.Plan, producer []int32, retIndex []int8, parent *planSchedule, d *plan.Diff) {
	for i := range s.cloneOf {
		s.cloneOf[i], s.memberOf[i], s.packGroup[i] = -1, -1, -1
	}
	resultArg := make([]bool, p.NVars())
	for _, in := range p.Instrs {
		if in.Op == plan.OpResult {
			for _, a := range in.Args {
				resultArg[a] = true
			}
		}
	}
	claimed := make([]bool, len(p.Instrs))
	addGroup := func(sg schedGroup) {
		gi := int32(len(s.groups))
		s.groups = append(s.groups, sg)
		s.packGroup[sg.pack] = gi
		for m, ci := range sg.clones {
			claimed[ci] = true
			s.cloneOf[ci] = gi
			s.memberOf[ci] = int32(m)
		}
	}
	for k, in := range p.Instrs {
		if in.Op != plan.OpPack {
			continue
		}
		if parent != nil {
			if pi := d.ParentOf[k]; pi >= 0 {
				if pgi := parent.packGroup[pi]; pgi >= 0 {
					if sg, ok := remapGroup(&parent.groups[pgi], pgi, int32(k), d, claimed, p, resultArg); ok {
						addGroup(sg)
						continue
					}
					// Blocked remap (a clone claimed earlier): fall through
					// to fresh evaluation, which reaches the same verdict the
					// full build would.
				}
			}
		}
		g, ok := p.PackGroupAt(k, producer, claimed)
		if !ok {
			continue
		}
		addGroup(buildGroup(p, g, producer, retIndex, resultArg))
	}
	for i, in := range p.Instrs {
		if s.cloneOf[i] >= 0 {
			continue // group clones write the shared buffer instead
		}
		if len(in.Rets) == 0 || resultArg[in.Rets[0]] {
			continue
		}
		switch in.Op {
		case plan.OpSelect, plan.OpSelectCand:
			s.outBuf[i] = bufOids
		case plan.OpFetch, plan.OpFetchPos, plan.OpCalcVV, plan.OpCalcSV, plan.OpCalcSSV:
			s.outBuf[i] = bufCol
		case plan.OpPack:
			switch p.KindOf(in.Rets[0]) {
			case plan.KindOids:
				s.outBuf[i] = bufOids
			case plan.KindColumn:
				if p.KindOf(in.Args[0]) == plan.KindScalar {
					// Scalar partial packs own their gathered slice
					// (PackScalarsOwned); column packs either become views
					// (group) or concatenate into a fresh vector.
					s.outBuf[i] = bufCol
				}
			}
		}
	}
}

// buildGroup resolves a plan.PackGroup against the dependency indexes into
// the executor's schedGroup form.
func buildGroup(p *plan.Plan, g plan.PackGroup, producer []int32, retIndex []int8, resultArg []bool) schedGroup {
	pk := p.Instrs[g.Pack]
	sg := schedGroup{
		pack:        int32(g.Pack),
		sliced:      g.Sliced,
		recycle:     !resultArg[pk.Rets[0]],
		parentGroup: -1,
	}
	proto := p.Instrs[g.Clones[0]]
	sg.anchorArg = int8(plan.SliceArgs(proto.Op)[0])
	for _, ci := range g.Clones {
		c := p.Instrs[ci]
		if resultArg[c.Rets[0]] {
			sg.recycle = false
		}
		av := c.Args[sg.anchorArg]
		sg.clones = append(sg.clones, int32(ci))
		sg.parts = append(sg.parts, c.Part)
		sg.anchorVar = append(sg.anchorVar, av)
		sg.anchorProducer = append(sg.anchorProducer, producer[av])
		sg.anchorRet = append(sg.anchorRet, retIndex[av])
	}
	return sg
}

// remapGroup translates a parent pack group onto the child's instruction
// indexes. All of the pack's clones are matched by construction (a matched
// pack's argument producers are matched — ComputeDiff's subtree rule); the
// remap fails only when a clone was already claimed by an earlier child
// group, which is exactly when a fresh evaluation would refuse the group
// too. recycle is recomputed: the mutation may have changed which values
// reach the result.
func remapGroup(pg *schedGroup, pgi, pack int32, d *plan.Diff, claimed []bool, p *plan.Plan, resultArg []bool) (schedGroup, bool) {
	sg := schedGroup{
		pack:        pack,
		sliced:      pg.sliced,
		anchorArg:   pg.anchorArg,
		recycle:     !resultArg[p.Instrs[pack].Rets[0]],
		parentGroup: pgi,
		parts:       pg.parts,
		anchorVar:   pg.anchorVar,
		anchorRet:   pg.anchorRet,
	}
	sg.clones = make([]int32, len(pg.clones))
	sg.anchorProducer = make([]int32, len(pg.clones))
	for m, pci := range pg.clones {
		ci := d.ChildOf[pci]
		if ci < 0 || claimed[ci] {
			return schedGroup{}, false
		}
		sg.clones[m] = ci
		if resultArg[p.Instrs[ci].Rets[0]] {
			sg.recycle = false
		}
		prod := pg.anchorProducer[m]
		if prod >= 0 {
			prod = d.ChildOf[prod]
		}
		sg.anchorProducer[m] = prod
	}
	return sg, true
}

// groupRun is the per-invocation state of one pack group: the shared buffer
// builder, each clone's write offset, and how much each clone wrote. A group
// is disabled for the run when its offsets cannot be resolved at first use
// (an anchor not evaluated yet); its members then materialize privately and
// the pack falls back to copying — results are identical either way.
type groupRun struct {
	bld      *vec.Builder
	offs     []int // len = clones+1; clone m writes [offs[m], offs[m+1])
	written  []int // values actually written per clone; -1 = pending
	total    int
	disabled bool
}

// jobArena holds every run-state buffer of one plan invocation. It is
// checked out of the plan's schedule at submit and returned at completion,
// so repeated invocations of a cached plan (the converged serving path)
// allocate almost nothing: dependency counters, the task slab, kernel
// output buffers and shared exchange buffers are all rewritten in place.
// Failed jobs never return their arena (their simulated tasks may still
// drain), so a fresh one is built on the next invocation.
type jobArena struct {
	env       []Value
	pending   []int32
	evald     []bool // instruction evaluated (results exist in its task slab)
	tasks     []instrTask
	args      []Value    // resolveArgs scratch
	bufs      [][]int64  // per-instruction recycled output buffers
	groupBufs [][]int64  // per-group shared exchange buffers
	groupRuns []groupRun // per-group run state
	oidParts  [][]int64  // evalPack scratch
	colParts  []*storage.Column

	// outCols / argViews memoize the per-instruction column wrappers:
	// executing a cached plan is deterministic, so instruction idx wraps the
	// same buffer range under the same head sequence every run — the Column
	// and Vector objects can be reused instead of re-allocated. A cache hit
	// requires exact slice identity with the instruction's current buffer
	// (plus seq and dict), so a recycled or regrown buffer can never produce
	// a false hit. The cached wrappers alias only arena-owned or immutable
	// base storage, never result values.
	outCols  []outColCache
	argViews [][2]argViewCache
}

// outColCache memoizes one instruction's wrapped output column.
type outColCache struct {
	vals []int64
	dict *vec.Dict
	seq  int64
	col  *storage.Column
}

// argViewCache memoizes one sliced argument view (instruction × slice-arg
// position).
type argViewCache struct {
	src    *storage.Column
	lo, hi int
	col    *storage.Column
}

// sameInt64s reports exact slice identity (same backing position and
// length) — the cache-hit condition that makes buffer recycling safe.
func sameInt64s(a, b []int64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// prepare sizes the arena for the plan and resets per-run state.
func (a *jobArena) prepare(s *planSchedule, p *plan.Plan) {
	n := len(p.Instrs)
	if cap(a.env) < p.NVars() {
		a.env = make([]Value, p.NVars())
	}
	a.env = a.env[:p.NVars()]
	if cap(a.pending) < n {
		a.pending = make([]int32, n)
	}
	a.pending = a.pending[:n]
	copy(a.pending, s.pending)
	if cap(a.evald) < n {
		a.evald = make([]bool, n)
	}
	a.evald = a.evald[:n]
	for i := range a.evald {
		a.evald[i] = false
	}
	if cap(a.tasks) < n {
		a.tasks = make([]instrTask, n)
	}
	a.tasks = a.tasks[:n]
	if cap(a.bufs) < n {
		a.bufs = make([][]int64, n)
	}
	a.bufs = a.bufs[:n]
	if cap(a.outCols) < n {
		a.outCols = make([]outColCache, n)
	}
	a.outCols = a.outCols[:n]
	if cap(a.argViews) < n {
		a.argViews = make([][2]argViewCache, n)
	}
	a.argViews = a.argViews[:n]
	if len(a.groupBufs) < len(s.groups) {
		a.groupBufs = make([][]int64, len(s.groups))
	}
	if cap(a.groupRuns) < len(s.groups) {
		a.groupRuns = make([]groupRun, len(s.groups))
	}
	a.groupRuns = a.groupRuns[:len(s.groups)]
	for i := range a.groupRuns {
		gr := &a.groupRuns[i]
		gr.bld = nil
		gr.offs = gr.offs[:0]
		gr.written = gr.written[:0]
		gr.total = 0
		gr.disabled = false
	}
}

// remapTo rewires an idle parent arena onto a derived child schedule:
// matched instructions keep their settled kernel output buffers (moved
// index-for-index through the diff), remapped pack groups keep their shared
// exchange buffers, and whatever the mutation orphaned is filed into the
// engine recycler. Only dead intermediate state moves — result-reachable
// values were never arena-backed in the first place (escape analysis).
func (a *jobArena) remapTo(child *planSchedule, rec *bufRecycler, d *plan.Diff) {
	bufs := make([][]int64, len(d.ParentOf))
	outCols := make([]outColCache, len(d.ParentOf))
	argViews := make([][2]argViewCache, len(d.ParentOf))
	for ci, pi := range d.ParentOf {
		if pi >= 0 && int(pi) < len(a.bufs) {
			bufs[ci] = a.bufs[pi]
			a.bufs[pi] = nil
		}
		// Matched instructions keep their memoized column wrappers too: a
		// match means identical op/args/part over identical inputs, so the
		// wrappers hit on the child's first run.
		if pi >= 0 && int(pi) < len(a.outCols) {
			outCols[ci] = a.outCols[pi]
			argViews[ci] = a.argViews[pi]
		}
	}
	for _, buf := range a.bufs {
		if buf != nil {
			rec.putBuf(buf)
		}
	}
	a.bufs = bufs
	a.outCols = outCols
	a.argViews = argViews
	groupBufs := make([][]int64, len(child.groups))
	for gi := range child.groups {
		sg := &child.groups[gi]
		// A group that became result-reachable must allocate fresh; its
		// inherited buffer is better off in the pool.
		if sg.recycle && sg.parentGroup >= 0 && int(sg.parentGroup) < len(a.groupBufs) {
			groupBufs[gi] = a.groupBufs[sg.parentGroup]
			a.groupBufs[sg.parentGroup] = nil
		}
	}
	for _, buf := range a.groupBufs {
		if buf != nil {
			rec.putBuf(buf)
		}
	}
	a.groupBufs = groupBufs
}

// release drops the run's value references (so an idle arena does not pin
// intermediate columns) and hands the arena back to the schedule.
func (a *jobArena) release(s *planSchedule) {
	for i := range a.env {
		a.env[i] = Value{}
	}
	for i := range a.tasks {
		// The whole slab entry: retv holds result values and j keeps the
		// dead PlanJob (and through it the run's results and profile)
		// reachable for as long as the schedule stays cached.
		a.tasks[i] = instrTask{}
	}
	for i := range a.args {
		a.args[i] = Value{}
	}
	for i := range a.colParts {
		a.colParts[i] = nil
	}
	for i := range a.oidParts {
		a.oidParts[i] = nil
	}
	s.putArena(a)
}

// Machine exposes the simulated machine (for workload drivers that inject
// background load or need the virtual clock).
func (e *Engine) Machine() *sim.Machine { return e.mach }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// Params returns the engine's cost parameters.
func (e *Engine) Params() cost.Params { return e.params }

// PlanJob is one in-flight plan execution.
type PlanJob struct {
	Plan    *plan.Plan
	Profile *Profile
	Err     error
	Done    bool
	// OnDone, when set, fires at virtual completion time.
	OnDone func(*PlanJob)

	eng          *Engine
	cat          *storage.Catalog // bind-resolution catalog (tenant override or engine default)
	sched        *planSchedule
	arena        *jobArena
	simJob       *sim.Job
	env          []Value
	pending      []int32 // unresolved argument-producer count per instruction
	waiters      [][]int32
	results      []Value
	costParams   cost.Params
	completed    int
	copyExchange bool
}

// JobOptions configures a plan submission.
type JobOptions struct {
	// MaxCores caps the job's simultaneous operator executions (admission
	// control, §4.2.4); 0 = unlimited.
	MaxCores int
	// CostParams overrides the engine's cost model for this job (used by
	// the Vectorwise comparator). Nil uses the engine default.
	CostParams *cost.Params
	// CopyExchange forces exchange unions to materialize concatenated
	// copies (the seed behavior) even where a zero-copy pack group is
	// planned. Equivalence tests and A/B benchmarks use it; production
	// paths leave it false and get the shared-buffer exchange.
	CopyExchange bool
	// DerivedFrom names the plan this submission's plan was mutated from.
	// When the parent's compilation is cached, the plan compiles
	// incrementally: only the mutated subtree is re-validated and re-wired
	// (adaptive sessions set this on every exploration step). Ignored when
	// the plan's own compilation is already cached.
	DerivedFrom *plan.Plan
	// FullRecompile disables incremental derivation even when DerivedFrom
	// is usable — the A/B switch the cold-path equivalence tests flip to
	// prove derived and fully recompiled schedules behave identically.
	FullRecompile bool
	// Catalog, when non-nil, resolves this job's binds against a different
	// dataset than the engine's own — the multi-tenant serving path: one
	// engine (one simulated machine, one schedule cache, one buffer
	// recycler) executes plans over many independently-named catalogs.
	// Everything except bind resolution is tenant-agnostic: plan objects
	// are per-tenant (fingerprints incorporate the dataset identity), so the
	// schedule cache never mixes tenants, and recycled buffers carry no data
	// ownership — they are fully rewritten or appended from :0 by the next
	// job regardless of which catalog it reads.
	Catalog *storage.Catalog
}

// Submit schedules p for execution starting at the machine's current virtual
// time. Call Engine.Run (or Machine().Run()) to drive the simulation. The
// plan's validation, dependency graph and buffer plan are cached per plan
// object, so repeated submissions of a cached plan (the converged serving
// path) pay only a counter-slice copy and reuse the previous invocation's
// arena buffers.
func (e *Engine) Submit(p *plan.Plan, opts JobOptions) (*PlanJob, error) {
	sched, err := e.scheduleFor(p, opts)
	if err != nil {
		return nil, err
	}
	a := sched.takeArena()
	if a == nil {
		// First invocation of this plan object: check a retired arena shell
		// out of the engine recycler instead of growing everything from nil.
		a = e.recycler.getShell()
	}
	a.prepare(sched, p)
	cat := e.cat
	if opts.Catalog != nil {
		cat = opts.Catalog
	}
	j := &PlanJob{
		Plan:         p,
		Profile:      &Profile{StartNs: e.mach.Now(), Machine: e.mach.Config(), Ops: make([]OpExec, 0, len(p.Instrs))},
		eng:          e,
		cat:          cat,
		sched:        sched,
		arena:        a,
		simJob:       e.mach.NewJob(opts.MaxCores),
		env:          a.env,
		pending:      a.pending,
		waiters:      sched.waiters,
		copyExchange: opts.CopyExchange,
	}
	params := e.params
	if opts.CostParams != nil {
		params = *opts.CostParams
	}
	j.costParams = params
	for _, i := range sched.roots {
		j.submitInstr(int(i))
	}
	return j, nil
}

func (j *PlanJob) fail(err error) {
	if j.Err == nil {
		j.Err = err
	}
	j.Done = true
	if j.OnDone != nil {
		j.OnDone(j)
		j.OnDone = nil
	}
}

// instrTask carries one scheduled instruction through the simulator: the
// sim task, its evaluated results, and the profiling state, in a single
// slab entry of the job's arena (it implements sim.TaskHooks, so no
// per-task closures, and results live inline, so no per-task ret slices).
// retv's capacity bounds an opcode's result count; submitInstr enforces it
// so an overflow can never silently re-allocate the slice away from the
// slab.
type instrTask struct {
	sim.Task
	j       *PlanJob
	idx     int32
	core    int32
	startNs float64
	work    algebra.Work
	retv    [2]Value
}

// TaskStarted implements sim.TaskHooks.
func (it *instrTask) TaskStarted(now float64, core int) {
	it.startNs = now
	it.core = int32(core)
}

// TaskCompleted implements sim.TaskHooks: results become visible, waiting
// instructions are released, and the op is profiled.
func (it *instrTask) TaskCompleted(now float64, core int) {
	j := it.j
	idx := int(it.idx)
	in := j.Plan.Instrs[idx]
	j.Profile.Ops = append(j.Profile.Ops, OpExec{
		Instr: idx, Op: in.Op, StartNs: it.startNs, EndNs: now, Core: int(it.core), Work: it.work,
	})
	for k, r := range in.Rets {
		j.env[r] = it.retv[k]
	}
	if in.Op == plan.OpResult {
		j.results = make([]Value, len(in.Args))
		for k, a := range in.Args {
			j.results[k] = j.env[a]
		}
	}
	for _, dep := range j.waiters[idx] {
		j.pending[dep]--
		if j.pending[dep] == 0 {
			j.submitInstr(int(dep))
		}
	}
	j.completed++
	if j.completed == len(j.Plan.Instrs) && !j.Done {
		j.Profile.EndNs = now
		j.Done = true
		if j.OnDone != nil {
			j.OnDone(j)
			j.OnDone = nil
		}
		if j.arena != nil {
			a := j.arena
			j.arena = nil
			a.release(j.sched)
		}
	}
}

// submitInstr evaluates instruction idx immediately (results become visible
// only at virtual completion) and schedules its virtual duration.
func (j *PlanJob) submitInstr(idx int) {
	if j.Err != nil {
		return
	}
	in := j.Plan.Instrs[idx]
	it := &j.arena.tasks[idx]
	*it = instrTask{j: j, idx: int32(idx)}
	rets, w, everr := evalInstr(j, j.Plan, idx, in, it.retv[:0])
	if everr != nil {
		j.fail(everr)
		return
	}
	if len(rets) > len(it.retv) {
		// Appending past retv's capacity would have silently moved the
		// results off the slab; no current opcode returns more than two.
		j.fail(fmt.Errorf("exec: %s returned %d values, slab holds %d", in.Op, len(rets), len(it.retv)))
		return
	}
	it.work = w
	j.arena.evald[idx] = true
	est := j.costParams.ForWork(in.Op, w, j.eng.mach.L3SharePerSocket())
	home := 0
	if sockets := j.eng.mach.Config().Sockets; sockets > 1 {
		if !in.Part.IsFull() {
			// Range partitions are spread across sockets by their position
			// in the partitioning, mimicking the memory-mapped round-robin
			// placement the paper observes minimal NUMA effects under [14].
			home = int(uint64(sockets) * in.Part.LoNum / in.Part.Den)
			if home >= sockets {
				home = sockets - 1
			}
		} else {
			// Propagated clones and serial operators: spread round-robin so
			// no single socket's bandwidth serves the whole plan.
			home = idx % sockets
		}
	}
	it.Task = sim.Task{
		Label:      in.Op.String(),
		Job:        j.simJob,
		BaseNs:     est.Ns,
		MemFrac:    est.MemFrac,
		Bytes:      est.Bytes,
		HomeSocket: home,
		Hooks:      it,
	}
	j.eng.mach.Submit(&it.Task)
}

// Results returns the values of the plan's result instruction (valid once
// Done).
func (j *PlanJob) Results() []Value { return j.results }

// Run drives the machine until all submitted work drains.
func (e *Engine) Run() { e.mach.Run() }

// Execute runs p from the engine's current virtual time and returns its
// results and profile. It drives the machine only until this plan
// completes, so background jobs (concurrent load) may continue to exist.
func (e *Engine) Execute(p *plan.Plan) ([]Value, *Profile, error) {
	return e.ExecuteOpts(p, JobOptions{})
}

// ExecuteOpts is Execute with per-job options (core budgets from admission
// control, comparator cost calibrations).
func (e *Engine) ExecuteOpts(p *plan.Plan, opts JobOptions) ([]Value, *Profile, error) {
	job, err := e.Submit(p, opts)
	if err != nil {
		return nil, nil, err
	}
	e.mach.RunUntil(func() bool { return job.Done })
	if job.Err != nil {
		return nil, nil, job.Err
	}
	if !job.Done {
		return nil, nil, fmt.Errorf("exec: plan did not complete")
	}
	return job.Results(), job.Profile, nil
}
