package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/plan"
	"repro/internal/sim"
)

// OpExec is one profiled operator execution: execution time, memory claim
// and thread affiliation — the profiling data of §2 ("Run-time environment").
type OpExec struct {
	Instr   int // index into the executed plan's instruction list
	Op      plan.OpCode
	StartNs float64
	EndNs   float64
	Core    int
	Work    algebra.Work
}

// Duration returns the operator's virtual execution time.
func (o OpExec) Duration() float64 { return o.EndNs - o.StartNs }

// Profile collects one plan execution's measurements.
type Profile struct {
	Ops     []OpExec
	StartNs float64
	EndNs   float64
	Machine sim.Config
}

// Makespan returns the plan's response time in virtual ns.
func (p *Profile) Makespan() float64 { return p.EndNs - p.StartNs }

// TotalBusyNs returns the summed operator execution time (the "total CPU
// core time" of the paper's tomograph captions).
func (p *Profile) TotalBusyNs() float64 {
	var sum float64
	for _, o := range p.Ops {
		sum += o.Duration()
	}
	return sum
}

// Utilization returns multi-core utilization: the fraction of available
// hardware-thread time actually used during the query — the paper's
// "parallelism usage" (35.7% for AP vs 72.2% for HP on Q14, Figures 19/20).
// The denominator is logical cores so the ratio stays within [0, 1] under
// SMT.
func (p *Profile) Utilization() float64 {
	mk := p.Makespan()
	if mk <= 0 {
		return 0
	}
	return p.TotalBusyNs() / (mk * float64(p.Machine.LogicalCores()))
}

// MostExpensive returns the plan-instruction index with the longest
// execution time — the mutation target of adaptive parallelization — and
// that duration. Ties break toward the earliest instruction, which keeps
// adaptation deterministic.
func (p *Profile) MostExpensive() (instr int, dur float64) {
	instr = -1
	for _, o := range p.Ops {
		if o.Duration() > dur {
			dur = o.Duration()
			instr = o.Instr
		}
	}
	return instr, dur
}

// DurationByInstr returns per-instruction durations.
func (p *Profile) DurationByInstr() map[int]float64 {
	out := make(map[int]float64, len(p.Ops))
	for _, o := range p.Ops {
		out[o.Instr] += o.Duration()
	}
	return out
}

// OpTotals aggregates duration and invocation count per opcode, like the
// per-operator legends of Figures 19/20.
func (p *Profile) OpTotals() map[plan.OpCode]struct {
	Calls int
	Ns    float64
} {
	out := make(map[plan.OpCode]struct {
		Calls int
		Ns    float64
	})
	for _, o := range p.Ops {
		e := out[o.Op]
		e.Calls++
		e.Ns += o.Duration()
		out[o.Op] = e
	}
	return out
}

// tomographGlyph maps operators to the colour classes of Figures 19/20:
// select (green), join (blue), exchange union (brown), other.
func tomographGlyph(op plan.OpCode) byte {
	switch op {
	case plan.OpSelect, plan.OpSelectCand, plan.OpLikeSelect:
		return 'S'
	case plan.OpJoin:
		return 'J'
	case plan.OpPack:
		return 'U'
	case plan.OpFetch, plan.OpFetchPos:
		return 'f'
	case plan.OpGroupBy, plan.OpAggrGrouped, plan.OpAggr, plan.OpMergeAggr, plan.OpGroupMerge:
		return 'g'
	case plan.OpCalcVV, plan.OpCalcSV, plan.OpCalcSSV, plan.OpCalcSS:
		return 'c'
	}
	return '.'
}

// Tomograph renders an ASCII per-core execution timeline of the profile —
// the textual analogue of the paper's tomograph visualizations (Figures
// 19/20): one row per hardware thread that ran anything, one glyph per time
// bucket (S=select, J=join, U=exchange union, f=fetch, g=grouping, c=calc,
// space=idle), followed by the parallelism-usage summary line.
func (p *Profile) Tomograph(width int) string {
	if width <= 0 {
		width = 96
	}
	mk := p.Makespan()
	if mk <= 0 || len(p.Ops) == 0 {
		return "(empty profile)\n"
	}
	coreSet := map[int][]OpExec{}
	for _, o := range p.Ops {
		coreSet[o.Core] = append(coreSet[o.Core], o)
	}
	cores := make([]int, 0, len(coreSet))
	for c := range coreSet {
		cores = append(cores, c)
	}
	sort.Ints(cores)

	var sb strings.Builder
	for _, c := range cores {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, o := range coreSet[c] {
			lo := int(float64(width) * (o.StartNs - p.StartNs) / mk)
			hi := int(float64(width) * (o.EndNs - p.StartNs) / mk)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			g := tomographGlyph(o.Op)
			for i := lo; i < hi; i++ {
				row[i] = g
			}
		}
		fmt.Fprintf(&sb, "core %3d |%s|\n", c, string(row))
	}
	fmt.Fprintf(&sb, "%d operators; total core time %.3f ms; makespan %.3f ms; parallelism usage %.1f%%\n",
		len(p.Ops), p.TotalBusyNs()/1e6, mk/1e6, p.Utilization()*100)
	return sb.String()
}
