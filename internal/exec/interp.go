package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vec"
)

// sliceValue restricts a value to the positional range [lo,hi) — the runtime
// realization of an instruction's Part over its anchor input.
func sliceValue(v Value, lo, hi int) Value {
	switch v.Kind {
	case plan.KindColumn:
		return ColValue(v.Col.View(lo, hi))
	case plan.KindOids:
		return OidsValue(v.Oids[lo:hi])
	}
	panic(fmt.Sprintf("exec: cannot slice %s value", v.Kind))
}

// resolveArgs returns the instruction's argument values with its Part
// applied to the slice-able anchors. All sliced anchors of one instruction
// share the Part (they are positionally co-aligned by construction). The
// returned slice aliases the job's arena scratch: it is valid only until
// the next evalInstr call, which is fine because kernels never retain it.
// Column views are memoized per (instruction, slice-arg position) in the
// arena: repeated runs of a cached plan slice the same source columns at the
// same bounds, so the view objects are reused instead of re-allocated.
func resolveArgs(j *PlanJob, idx int, in *plan.Instr, env []Value) []Value {
	a := j.arena
	if cap(a.args) < len(in.Args) {
		a.args = make([]Value, len(in.Args)+8)
	}
	args := a.args[:len(in.Args)]
	for i, ai := range in.Args {
		args[i] = env[ai]
	}
	if in.Part.IsFull() {
		return args
	}
	for si, ai := range plan.SliceArgs(in.Op) {
		n := args[ai].Len()
		lo, hi := in.Part.Resolve(n)
		if args[ai].Kind == plan.KindColumn && si < 2 {
			vc := &a.argViews[idx][si]
			src := args[ai].Col
			if vc.col == nil || vc.src != src || vc.lo != lo || vc.hi != hi {
				*vc = argViewCache{src: src, lo: lo, hi: hi, col: src.View(lo, hi)}
			}
			args[ai] = ColValue(vc.col)
			continue
		}
		args[ai] = sliceValue(args[ai], lo, hi)
	}
	return args
}

// reseqPartitioned aligns a partitioned tuple-reconstruction output with its
// position space: a fetch clone over oid-list positions [lo,hi) produces the
// values for those positions, so its head sequence starts at lo. This keeps
// dynamically partitioned intermediates aligned on their conceptual full
// column (§2.3) — selects over them emit global row ids, and packs of
// sibling partitions reassemble the full intermediate exactly.
func reseqPartitioned(col *storage.Column, in *plan.Instr, anchor Value) *storage.Column {
	if in.Part.IsFull() {
		return col
	}
	lo, _ := in.Part.Resolve(anchor.Len())
	return storage.NewColumn(col.Name(), int64(lo), col.Data())
}

// reseqBase returns the head sequence reseqPartitioned would assign, without
// building an intermediate column — the shared-buffer clone path constructs
// its view column directly.
func reseqBase(in *plan.Instr, anchor Value) int64 {
	if in.Part.IsFull() {
		return 0
	}
	lo, _ := in.Part.Resolve(anchor.Len())
	return int64(lo)
}

// cloneShared resolves the shared write window for instruction idx when it
// is a clone member of an active pack group. On first use per run it sizes
// the group's shared buffer: sliced groups resolve their Parts against the
// common anchor, propagated groups take prefix sums of the sibling anchors'
// lengths (possible only once every anchor's producer has evaluated —
// otherwise the group is disabled for this run and every member
// materializes privately, which the pack then concatenates as before).
func (j *PlanJob) cloneShared(idx int) (gr *groupRun, m, lo, hi int, ok bool) {
	if j.copyExchange {
		return nil, 0, 0, 0, false
	}
	gi := j.sched.cloneOf[idx]
	if gi < 0 {
		return nil, 0, 0, 0, false
	}
	gr = &j.arena.groupRuns[gi]
	if gr.bld == nil && !gr.disabled {
		j.initGroup(gi, gr)
	}
	if gr.disabled {
		return nil, 0, 0, 0, false
	}
	m = int(j.sched.memberOf[idx])
	return gr, m, gr.offs[m], gr.offs[m+1], true
}

func (j *PlanJob) initGroup(gi int32, gr *groupRun) {
	sg := &j.sched.groups[gi]
	members := len(sg.clones)
	offs := gr.offs[:0]
	if sg.sliced {
		// All clones share the anchor variable; it is an argument of every
		// clone, so its producer has virtually completed and env holds it.
		n := j.env[sg.anchorVar[0]].Len()
		for m := 0; m < members; m++ {
			lo, _ := sg.parts[m].Resolve(n)
			offs = append(offs, lo)
		}
		offs = append(offs, n)
	} else {
		total := 0
		for m := 0; m < members; m++ {
			pr := sg.anchorProducer[m]
			if pr < 0 || !j.arena.evald[pr] {
				gr.disabled = true
				return
			}
			offs = append(offs, total)
			// The anchor may be evaluated but not yet virtually complete;
			// its value then lives in the producer's task slab, not env.
			total += j.arena.tasks[pr].retv[sg.anchorRet[m]].Len()
		}
		offs = append(offs, total)
	}
	gr.offs = offs
	gr.total = offs[members]
	if cap(gr.written) < members {
		gr.written = make([]int, members)
	}
	gr.written = gr.written[:members]
	for m := range gr.written {
		gr.written[m] = -1
	}
	var buf []int64
	if sg.recycle {
		buf = j.arena.groupBufs[gi]
	}
	if cap(buf) < gr.total {
		// The outgrown buffer backs only dead intermediates of a previous
		// invocation; file it for another plan before drawing a larger one
		// from the engine pool. Non-recycle (result-reachable) groups may
		// also DRAW from the pool — the checkout permanently transfers
		// ownership out (their buffer is never filed back), so published
		// results cannot alias pooled memory.
		if buf != nil {
			j.eng.recycler.putBuf(buf)
		}
		if got := j.eng.recycler.getBuf(gr.total); got != nil {
			buf = got
		} else {
			buf = make([]int64, gr.total)
		}
	}
	buf = buf[:gr.total]
	if sg.recycle {
		j.arena.groupBufs[gi] = buf
	}
	gr.bld = vec.NewBuilderOver(buf)
}

// packView returns the group's shared buffer as the pack output when every
// clone wrote its range densely; otherwise the caller concatenates the
// clones' (view) columns exactly like the copying path.
func (j *PlanJob) packView(idx int, args []Value) (*storage.Column, algebra.Work, bool) {
	if j.copyExchange {
		return nil, algebra.Work{}, false
	}
	gi := j.sched.packGroup[idx]
	if gi < 0 {
		return nil, algebra.Work{}, false
	}
	gr := &j.arena.groupRuns[gi]
	if gr.bld == nil || gr.disabled {
		return nil, algebra.Work{}, false
	}
	for m := range gr.written {
		if gr.written[m] != gr.offs[m+1]-gr.offs[m] {
			return nil, algebra.Work{}, false // boundary drop: fall back to copy
		}
	}
	col, w := algebra.PackColumnsView(args[0].Col.Name(), gr.bld.Publish(), int64(gr.total))
	return col, w, true
}

// colBuf returns the arena-recycled output buffer for instruction idx sized
// to n values, or nil when the instruction's output must be freshly
// allocated (it escapes as a query result, or no buffer was planned). Growth
// goes through the engine's size-classed recycler: the outgrown buffer
// (backing only dead intermediates of a previous invocation) is filed for
// other plans, the replacement is drawn from the pool when one fits. The
// pool hands buffers back zero-length; the kernel overwrites [0,n) fully, so
// no stale values from a previous query can surface.
func (j *PlanJob) colBuf(idx, n int) []int64 {
	if j.sched.outBuf[idx] != bufCol {
		return nil
	}
	buf := j.arena.bufs[idx]
	if cap(buf) < n {
		if buf != nil {
			j.eng.recycler.putBuf(buf)
		}
		if got := j.eng.recycler.getBuf(n); got != nil {
			buf = got[:n]
		} else {
			buf = make([]int64, n)
		}
		j.arena.bufs[idx] = buf
	}
	return buf[:n]
}

// oidBufIn / oidBufOut thread the arena's oid buffer through appending
// kernels (SelectInto and friends), which may grow it; the grown slice is
// stored back so the next invocation reuses the final capacity. hint is the
// kernel's own initial-capacity estimate: on an arena cold start (no buffer
// yet — the mutated-plan path) a buffer of that class is drawn from the
// engine recycler, zero-length — the kernels all append from length 0, so
// residual contents of a pooled buffer are never read. A warm arena keeps
// its settled buffer and never touches the pool again.
func (j *PlanJob) oidBufIn(idx, hint int) []int64 {
	if j.sched.outBuf[idx] != bufOids {
		return nil
	}
	buf := j.arena.bufs[idx]
	if buf == nil && hint > 0 {
		if got := j.eng.recycler.getBuf(hint); got != nil {
			buf = got
			j.arena.bufs[idx] = buf
		}
	}
	return buf
}

func (j *PlanJob) oidBufOut(idx int, out []int64) {
	if j.sched.outBuf[idx] == bufOids {
		j.arena.bufs[idx] = out
	}
}

// wrapCol builds the output column of a materializing kernel over vals.
func wrapCol(name string, seq int64, vals []int64, d *vec.Dict) *storage.Column {
	if d != nil {
		return storage.NewColumn(name, seq, vec.NewDictCoded(vals, d))
	}
	return storage.NewColumn(name, seq, vec.NewInt64(vals))
}

// cachedCol is wrapCol memoized in the arena per instruction: a cached
// plan's instruction wraps the identical buffer range under the identical
// head sequence every run, so the Column/Vector pair is reused. name is
// built only on a miss (calc names are formatted strings). The hit
// condition is exact slice identity, so recycled buffers cannot alias a
// stale wrapper; names are deterministic per instruction, so they need no
// comparison.
func (j *PlanJob) cachedCol(idx int, seq int64, vals []int64, d *vec.Dict, name func() string) *storage.Column {
	c := &j.arena.outCols[idx]
	if c.col != nil && c.seq == seq && c.dict == d && sameInt64s(c.vals, vals) {
		return c.col
	}
	col := wrapCol(name(), seq, vals, d)
	*c = outColCache{vals: vals, dict: d, seq: seq, col: col}
	return col
}

// evalInstr executes one instruction: it resolves arguments (applying the
// partition range), dispatches to the algebra kernel, and returns the result
// values (appended to dst, which aliases the instruction's task slab) plus
// the Work performed. Materializing instructions write into shared exchange
// buffers (pack-group clones), arena-recycled buffers (cached hot path), or
// fresh allocations (results and unplanned shapes) — the values and Work
// are identical in all three cases; only buffer ownership differs.
func evalInstr(j *PlanJob, p *plan.Plan, idx int, in *plan.Instr, dst []Value) ([]Value, algebra.Work, error) {
	cat, env := j.cat, j.env
	args := resolveArgs(j, idx, in, env)
	switch in.Op {
	case plan.OpBind:
		aux := in.Aux.(plan.BindAux)
		t, err := cat.Table(aux.Table)
		if err != nil {
			return nil, algebra.Work{}, err
		}
		c, err := t.Column(aux.Column)
		if err != nil {
			return nil, algebra.Work{}, err
		}
		return append(dst, ColValue(c)), algebra.Work{}, nil

	case plan.OpConst:
		return append(dst, ScalarValue(in.Aux.(plan.ConstAux).Value)), algebra.Work{}, nil

	case plan.OpSelect:
		// Hints mirror the kernels' initial-capacity estimates, so a pooled
		// buffer lands in the same size class a fresh allocation would.
		oids, w := algebra.SelectInto(j.oidBufIn(idx, args[0].Col.Len()/4+1), args[0].Col, in.Aux.(plan.SelectAux).Pred)
		j.oidBufOut(idx, oids)
		return append(dst, OidsValue(oids)), w, nil

	case plan.OpSelectCand:
		oids, w, _ := algebra.SelectWithCandsInto(j.oidBufIn(idx, len(args[1].Oids)/2+1), args[0].Col, in.Aux.(plan.SelectAux).Pred, args[1].Oids)
		j.oidBufOut(idx, oids)
		return append(dst, OidsValue(oids)), w, nil

	case plan.OpLikeSelect:
		aux := in.Aux.(plan.LikeAux)
		oids, w := algebra.SelectLike(args[0].Col, aux.Pattern, aux.Kind, aux.Anti)
		return append(dst, OidsValue(oids)), w, nil

	case plan.OpFetch:
		target := args[1].Col
		if gr, m, lo, hi, ok := j.cloneShared(idx); ok {
			n, w, _ := algebra.FetchInto(gr.bld.WriteRange(lo, hi), args[0].Oids, target)
			if d := target.Dict(); d != nil {
				gr.bld.BindDict(d)
			}
			gr.written[m] = n
			col := storage.NewBuilderColumn(target.Name(), reseqBase(in, env[in.Args[0]]), gr.bld, lo, lo+n)
			return append(dst, ColValue(col)), w, nil
		}
		if buf := j.colBuf(idx, len(args[0].Oids)); buf != nil {
			n, w, _ := algebra.FetchInto(buf, args[0].Oids, target)
			col := j.cachedCol(idx, reseqBase(in, env[in.Args[0]]), buf[:n], target.Dict(), target.Name)
			return append(dst, ColValue(col)), w, nil
		}
		col, w, _ := algebra.Fetch(args[0].Oids, target)
		col = reseqPartitioned(col, in, env[in.Args[0]])
		return append(dst, ColValue(col)), w, nil

	case plan.OpFetchPos:
		src := args[1].Col
		if gr, m, lo, hi, ok := j.cloneShared(idx); ok {
			w := algebra.FetchPositionsInto(gr.bld.WriteRange(lo, hi), args[0].Oids, src)
			if d := src.Dict(); d != nil {
				gr.bld.BindDict(d)
			}
			gr.written[m] = hi - lo
			col := storage.NewBuilderColumn(src.Name(), reseqBase(in, env[in.Args[0]]), gr.bld, lo, hi)
			return append(dst, ColValue(col)), w, nil
		}
		if buf := j.colBuf(idx, len(args[0].Oids)); buf != nil {
			w := algebra.FetchPositionsInto(buf, args[0].Oids, src)
			col := j.cachedCol(idx, reseqBase(in, env[in.Args[0]]), buf, src.Dict(), src.Name)
			return append(dst, ColValue(col)), w, nil
		}
		col, w := algebra.FetchPositions(args[0].Oids, src)
		col = reseqPartitioned(col, in, env[in.Args[0]])
		return append(dst, ColValue(col)), w, nil

	case plan.OpJoin:
		lo, ro, w := algebra.HashJoin(args[0].Col, args[1].Col)
		return append(dst, OidsValue(lo), OidsValue(ro)), w, nil

	case plan.OpCalcVV:
		aux := in.Aux.(plan.CalcAux)
		a, b := args[0].Col, args[1].Col
		if gr, m, lo, hi, ok := j.cloneShared(idx); ok {
			w := algebra.CalcVVInto(gr.bld.WriteRange(lo, hi), aux.Op, a, b)
			gr.written[m] = hi - lo
			col := storage.NewBuilderColumn(fmt.Sprintf("(%s%s%s)", a.Name(), aux.Op, b.Name()), a.Seq(), gr.bld, lo, hi)
			return append(dst, ColValue(col)), w, nil
		}
		if buf := j.colBuf(idx, a.Len()); buf != nil {
			w := algebra.CalcVVInto(buf, aux.Op, a, b)
			col := j.cachedCol(idx, a.Seq(), buf, nil, func() string {
				return fmt.Sprintf("(%s%s%s)", a.Name(), aux.Op, b.Name())
			})
			return append(dst, ColValue(col)), w, nil
		}
		col, w := algebra.CalcVV(aux.Op, a, b)
		return append(dst, ColValue(col)), w, nil

	case plan.OpCalcSV:
		aux := in.Aux.(plan.CalcAux)
		col, w := j.evalCalcScalar(idx, in, aux.Op, aux.Scalar, args[0].Col, aux.ScalarLeft)
		return append(dst, ColValue(col)), w, nil

	case plan.OpCalcSSV:
		aux := in.Aux.(plan.CalcAux)
		col, w := j.evalCalcScalar(idx, in, aux.Op, args[0].Scalar, args[1].Col, aux.ScalarLeft)
		return append(dst, ColValue(col)), w, nil

	case plan.OpCalcSS:
		aux := in.Aux.(plan.CalcAux)
		var out int64
		switch aux.Op {
		case algebra.CalcAdd:
			out = args[0].Scalar + args[1].Scalar
		case algebra.CalcSub:
			out = args[0].Scalar - args[1].Scalar
		case algebra.CalcMul:
			out = args[0].Scalar * args[1].Scalar
		case algebra.CalcDiv:
			if args[1].Scalar == 0 {
				out = 0
			} else {
				out = args[0].Scalar / args[1].Scalar
			}
		}
		return append(dst, ScalarValue(out)), algebra.Work{TuplesIn: 2, TuplesOut: 1}, nil

	case plan.OpGroupBy:
		g, w := algebra.GroupBy(args[0].Col)
		return append(dst, GroupsValue(g)), w, nil

	case plan.OpGroupKeys:
		g := args[0].Groups
		w := algebra.Work{BytesSeqRead: g.Keys.Bytes(), TuplesIn: int64(g.NGroups()), TuplesOut: int64(g.NGroups())}
		return append(dst, ColValue(g.Keys)), w, nil

	case plan.OpAggrGrouped:
		col, w := algebra.AggrGrouped(in.Aux.(plan.AggrAux).Func, args[0].Col, args[1].Groups)
		return append(dst, ColValue(col)), w, nil

	case plan.OpAggr:
		s, w := algebra.Aggr(in.Aux.(plan.AggrAux).Func, args[0].Col)
		return append(dst, ScalarValue(s)), w, nil

	case plan.OpMergeAggr:
		s, w := algebra.MergeScalars(in.Aux.(plan.AggrAux).Func, args[0].Col)
		return append(dst, ScalarValue(s)), w, nil

	case plan.OpGroupMerge:
		keys, aggs, w := algebra.GroupMerge(in.Aux.(plan.AggrAux).Func, args[0].Col, args[1].Col)
		return append(dst, ColValue(keys), ColValue(aggs)), w, nil

	case plan.OpPack:
		return evalPack(j, idx, in, args, dst)

	case plan.OpSort:
		sorted, perm, w := algebra.Sort(args[0].Col, in.Aux.(plan.SortAux).Desc)
		return append(dst, ColValue(sorted), OidsValue(perm)), w, nil

	case plan.OpMergeSorted:
		cols := j.colPartsScratch(len(args))
		for i, a := range args {
			cols[i] = a.Col
		}
		merged, w := algebra.MergeSortedRuns(cols, in.Aux.(plan.SortAux).Desc)
		return append(dst, ColValue(merged)), w, nil

	case plan.OpResult:
		return dst, algebra.Work{}, nil
	}
	return nil, algebra.Work{}, fmt.Errorf("exec: unknown opcode %s", in.Op)
}

// evalCalcScalar dispatches the scalar-operand calcs (OpCalcSV / OpCalcSSV)
// through the three buffer-ownership paths.
func (j *PlanJob) evalCalcScalar(idx int, in *plan.Instr, op algebra.CalcOp, scalar int64, v *storage.Column, scalarLeft bool) (*storage.Column, algebra.Work) {
	if gr, m, lo, hi, ok := j.cloneShared(idx); ok {
		w := algebra.CalcSVInto(gr.bld.WriteRange(lo, hi), op, scalar, v, scalarLeft)
		gr.written[m] = hi - lo
		return storage.NewBuilderColumn(fmt.Sprintf("(calc%s%s)", op, v.Name()), v.Seq(), gr.bld, lo, hi), w
	}
	if buf := j.colBuf(idx, v.Len()); buf != nil {
		w := algebra.CalcSVInto(buf, op, scalar, v, scalarLeft)
		col := j.cachedCol(idx, v.Seq(), buf, nil, func() string {
			return fmt.Sprintf("(calc%s%s)", op, v.Name())
		})
		return col, w
	}
	return algebra.CalcSV(op, scalar, v, scalarLeft)
}

// colPartsScratch / oidPartsScratch return the arena's variadic-argument
// gather buffers (kernels never retain them).
func (j *PlanJob) colPartsScratch(n int) []*storage.Column {
	a := j.arena
	if cap(a.colParts) < n {
		a.colParts = make([]*storage.Column, n)
	}
	return a.colParts[:n]
}

func (j *PlanJob) oidPartsScratch(n int) [][]int64 {
	a := j.arena
	if cap(a.oidParts) < n {
		a.oidParts = make([][]int64, n)
	}
	return a.oidParts[:n]
}

func evalPack(j *PlanJob, idx int, in *plan.Instr, args []Value, dst []Value) ([]Value, algebra.Work, error) {
	switch args[0].Kind {
	case plan.KindOids:
		parts := j.oidPartsScratch(len(args))
		total := 0
		for i, a := range args {
			parts[i] = a.Oids
			total += len(a.Oids)
		}
		out, w := algebra.PackOidsInto(j.oidBufIn(idx, total), parts)
		j.oidBufOut(idx, out)
		return append(dst, OidsValue(out)), w, nil
	case plan.KindColumn:
		if col, w, ok := j.packView(idx, args); ok {
			return append(dst, ColValue(col)), w, nil
		}
		cols := j.colPartsScratch(len(args))
		for i, a := range args {
			cols[i] = a.Col
		}
		out, w := algebra.PackColumns(cols)
		return append(dst, ColValue(out)), w, nil
	case plan.KindScalar:
		partials := j.colBuf(idx, len(args))
		if partials == nil {
			partials = make([]int64, len(args))
		}
		for i, a := range args {
			partials[i] = a.Scalar
		}
		// The gathered slice is owned by this instruction (arena or fresh),
		// so the pack may alias it instead of copying again.
		out, w := algebra.PackScalarsOwned("partials", partials)
		return append(dst, ColValue(out)), w, nil
	}
	return nil, algebra.Work{}, fmt.Errorf("exec: pack over %s", args[0].Kind)
}
