package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/plan"
	"repro/internal/storage"
)

// sliceValue restricts a value to the positional range [lo,hi) — the runtime
// realization of an instruction's Part over its anchor input.
func sliceValue(v Value, lo, hi int) Value {
	switch v.Kind {
	case plan.KindColumn:
		return ColValue(v.Col.View(lo, hi))
	case plan.KindOids:
		return OidsValue(v.Oids[lo:hi])
	}
	panic(fmt.Sprintf("exec: cannot slice %s value", v.Kind))
}

// resolveArgs returns the instruction's argument values with its Part
// applied to the slice-able anchors. All sliced anchors of one instruction
// share the Part (they are positionally co-aligned by construction). The
// returned slice aliases the job's scratch buffer: it is valid only until
// the next evalInstr call, which is fine because kernels never retain it.
func resolveArgs(j *PlanJob, in *plan.Instr, env []Value) []Value {
	if cap(j.argScratch) < len(in.Args) {
		j.argScratch = make([]Value, len(in.Args)+8)
	}
	args := j.argScratch[:len(in.Args)]
	for i, a := range in.Args {
		args[i] = env[a]
	}
	if in.Part.IsFull() {
		return args
	}
	for _, idx := range plan.SliceArgs(in.Op) {
		n := args[idx].Len()
		lo, hi := in.Part.Resolve(n)
		args[idx] = sliceValue(args[idx], lo, hi)
	}
	return args
}

// reseqPartitioned aligns a partitioned tuple-reconstruction output with its
// position space: a fetch clone over oid-list positions [lo,hi) produces the
// values for those positions, so its head sequence starts at lo. This keeps
// dynamically partitioned intermediates aligned on their conceptual full
// column (§2.3) — selects over them emit global row ids, and packs of
// sibling partitions reassemble the full intermediate exactly.
func reseqPartitioned(col *storage.Column, in *plan.Instr, anchor Value) *storage.Column {
	if in.Part.IsFull() {
		return col
	}
	lo, _ := in.Part.Resolve(anchor.Len())
	return storage.NewColumn(col.Name(), int64(lo), col.Data())
}

// evalInstr executes one instruction: it resolves arguments (applying the
// partition range), dispatches to the algebra kernel, and returns the result
// values aligned with in.Rets plus the Work performed.
func evalInstr(j *PlanJob, p *plan.Plan, in *plan.Instr) ([]Value, algebra.Work, error) {
	cat, env := j.eng.cat, j.env
	args := resolveArgs(j, in, env)
	switch in.Op {
	case plan.OpBind:
		aux := in.Aux.(plan.BindAux)
		t, err := cat.Table(aux.Table)
		if err != nil {
			return nil, algebra.Work{}, err
		}
		c, err := t.Column(aux.Column)
		if err != nil {
			return nil, algebra.Work{}, err
		}
		return []Value{ColValue(c)}, algebra.Work{}, nil

	case plan.OpConst:
		return []Value{ScalarValue(in.Aux.(plan.ConstAux).Value)}, algebra.Work{}, nil

	case plan.OpSelect:
		oids, w := algebra.Select(args[0].Col, in.Aux.(plan.SelectAux).Pred)
		return []Value{OidsValue(oids)}, w, nil

	case plan.OpSelectCand:
		oids, w, _ := algebra.SelectWithCands(args[0].Col, in.Aux.(plan.SelectAux).Pred, args[1].Oids)
		return []Value{OidsValue(oids)}, w, nil

	case plan.OpLikeSelect:
		aux := in.Aux.(plan.LikeAux)
		oids, w := algebra.SelectLike(args[0].Col, aux.Pattern, aux.Kind, aux.Anti)
		return []Value{OidsValue(oids)}, w, nil

	case plan.OpFetch:
		col, w, _ := algebra.Fetch(args[0].Oids, args[1].Col)
		col = reseqPartitioned(col, in, env[in.Args[0]])
		return []Value{ColValue(col)}, w, nil

	case plan.OpFetchPos:
		col, w := algebra.FetchPositions(args[0].Oids, args[1].Col)
		col = reseqPartitioned(col, in, env[in.Args[0]])
		return []Value{ColValue(col)}, w, nil

	case plan.OpJoin:
		lo, ro, w := algebra.HashJoin(args[0].Col, args[1].Col)
		return []Value{OidsValue(lo), OidsValue(ro)}, w, nil

	case plan.OpCalcVV:
		col, w := algebra.CalcVV(in.Aux.(plan.CalcAux).Op, args[0].Col, args[1].Col)
		return []Value{ColValue(col)}, w, nil

	case plan.OpCalcSV:
		aux := in.Aux.(plan.CalcAux)
		col, w := algebra.CalcSV(aux.Op, aux.Scalar, args[0].Col, aux.ScalarLeft)
		return []Value{ColValue(col)}, w, nil

	case plan.OpCalcSSV:
		aux := in.Aux.(plan.CalcAux)
		col, w := algebra.CalcSV(aux.Op, args[0].Scalar, args[1].Col, aux.ScalarLeft)
		return []Value{ColValue(col)}, w, nil

	case plan.OpCalcSS:
		aux := in.Aux.(plan.CalcAux)
		var out int64
		switch aux.Op {
		case algebra.CalcAdd:
			out = args[0].Scalar + args[1].Scalar
		case algebra.CalcSub:
			out = args[0].Scalar - args[1].Scalar
		case algebra.CalcMul:
			out = args[0].Scalar * args[1].Scalar
		case algebra.CalcDiv:
			if args[1].Scalar == 0 {
				out = 0
			} else {
				out = args[0].Scalar / args[1].Scalar
			}
		}
		return []Value{ScalarValue(out)}, algebra.Work{TuplesIn: 2, TuplesOut: 1}, nil

	case plan.OpGroupBy:
		g, w := algebra.GroupBy(args[0].Col)
		return []Value{GroupsValue(g)}, w, nil

	case plan.OpGroupKeys:
		g := args[0].Groups
		w := algebra.Work{BytesSeqRead: g.Keys.Bytes(), TuplesIn: int64(g.NGroups()), TuplesOut: int64(g.NGroups())}
		return []Value{ColValue(g.Keys)}, w, nil

	case plan.OpAggrGrouped:
		col, w := algebra.AggrGrouped(in.Aux.(plan.AggrAux).Func, args[0].Col, args[1].Groups)
		return []Value{ColValue(col)}, w, nil

	case plan.OpAggr:
		s, w := algebra.Aggr(in.Aux.(plan.AggrAux).Func, args[0].Col)
		return []Value{ScalarValue(s)}, w, nil

	case plan.OpMergeAggr:
		s, w := algebra.MergeScalars(in.Aux.(plan.AggrAux).Func, args[0].Col)
		return []Value{ScalarValue(s)}, w, nil

	case plan.OpGroupMerge:
		keys, aggs, w := algebra.GroupMerge(in.Aux.(plan.AggrAux).Func, args[0].Col, args[1].Col)
		return []Value{ColValue(keys), ColValue(aggs)}, w, nil

	case plan.OpPack:
		return evalPack(p, in, args)

	case plan.OpSort:
		sorted, perm, w := algebra.Sort(args[0].Col, in.Aux.(plan.SortAux).Desc)
		return []Value{ColValue(sorted), OidsValue(perm)}, w, nil

	case plan.OpMergeSorted:
		cols := make([]*storage.Column, len(args))
		for i, a := range args {
			cols[i] = a.Col
		}
		merged, w := algebra.MergeSortedRuns(cols, in.Aux.(plan.SortAux).Desc)
		return []Value{ColValue(merged)}, w, nil

	case plan.OpResult:
		return nil, algebra.Work{}, nil
	}
	return nil, algebra.Work{}, fmt.Errorf("exec: unknown opcode %s", in.Op)
}

func evalPack(p *plan.Plan, in *plan.Instr, args []Value) ([]Value, algebra.Work, error) {
	switch args[0].Kind {
	case plan.KindOids:
		parts := make([][]int64, len(args))
		for i, a := range args {
			parts[i] = a.Oids
		}
		out, w := algebra.PackOids(parts)
		return []Value{OidsValue(out)}, w, nil
	case plan.KindColumn:
		cols := make([]*storage.Column, len(args))
		for i, a := range args {
			cols[i] = a.Col
		}
		out, w := algebra.PackColumns(cols)
		return []Value{ColValue(out)}, w, nil
	case plan.KindScalar:
		partials := make([]int64, len(args))
		for i, a := range args {
			partials[i] = a.Scalar
		}
		out, w := algebra.PackScalars("partials", partials)
		return []Value{ColValue(out)}, w, nil
	}
	return nil, algebra.Work{}, fmt.Errorf("exec: pack over %s", args[0].Kind)
}
