package exec

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// The engine-level, size-classed buffer recycler — the cold path's answer to
// the per-plan arena. The arena only pays off once a plan OBJECT repeats
// (the converged serving path); the adaptive exploration phase retires a
// freshly mutated plan every step, so each converging run used to allocate
// its kernel output buffers, task slab and dependency counters from scratch
// and pin them on a dead schedule until cache eviction. The recycler closes
// that loop: when a plan is retired (Engine.Retire, schedule-cache eviction)
// its arena buffers return to per-size-class free lists on the engine, and
// the next mutated plan's arena draws from them. The engine is owned by one
// shard lock in the server (and is single-goroutine in the simulator), so
// the recycler's own mutex is uncontended; counters are atomics so /stats
// can read them without the engine lock.
//
// Ownership discipline is inherited from the arena's escape analysis:
// result-reachable values are NEVER backed by arena buffers (planBuffers
// excludes them), so everything an arena holds at retirement is dead
// intermediate state, safe to hand to another plan. Buffers are returned
// zero-length-reset — length 0 over the retained capacity, contents left as
// is — never zeroed wholesale: every consumer either appends from :0 (oid
// kernels) or extends to exactly the range it fully overwrites (column
// kernels), so stale values from a previous query are unreachable by
// construction. TestRecyclerNoStaleLeak pins that.
const (
	// recyclerMinBits: class 0 holds buffers with capacity < 2^7; classes
	// ascend by powers of two up to recyclerMaxBits.
	recyclerMinBits = 6
	recyclerMaxBits = 24 // largest pooled buffer: 16M values (128 MB)
	recyclerClasses = recyclerMaxBits - recyclerMinBits + 1
	// recyclerPerClass bounds each class's free list; recyclerMaxBytes
	// bounds total retained bytes so one giant workload cannot turn the
	// recycler into a leak.
	recyclerPerClass = 8
	recyclerMaxBytes = 256 << 20
	// recyclerMaxShells bounds retained arena shells (slabs of task/env/
	// dependency state whose capacity adapts to whatever plan checks out).
	recyclerMaxShells = 8
)

// putClass is the class whose free list a buffer of capacity c files under:
// floor(log2(c)) clamped to the class range, so every resident of class k
// has capacity >= 2^(recyclerMinBits+k).
func putClass(c int) int {
	if c <= 0 {
		return -1
	}
	b := bits.Len(uint(c)) - 1
	if b < recyclerMinBits {
		return -1 // tiny buffers are cheaper to reallocate than to pool
	}
	if b > recyclerMaxBits {
		return -1 // beyond the pooled range: let the GC have it
	}
	return b - recyclerMinBits
}

// getClass is the smallest class guaranteed to satisfy a request for n
// values: ceil(log2(n)) mapped into the class range.
func getClass(n int) int {
	if n <= 1 {
		return 0
	}
	b := bits.Len(uint(n - 1))
	if b < recyclerMinBits {
		return 0
	}
	if b > recyclerMaxBits {
		return -1 // larger than anything pooled
	}
	return b - recyclerMinBits
}

// classSize reports a class's guaranteed minimum capacity (for stats).
func classSize(k int) int { return 1 << (recyclerMinBits + k) }

type classCounters struct {
	hits, misses atomic.Int64
}

// bufRecycler is the engine's size-classed free store.
type bufRecycler struct {
	mu     sync.Mutex
	free   [recyclerClasses][][]int64
	shells []*jobArena
	bytes  int64 // retained buffer bytes (free lists only)

	class                  [recyclerClasses]classCounters
	shellHits, shellMisses atomic.Int64
	puts, drops            atomic.Int64
}

// getBuf returns a recycled buffer with capacity >= n, zero-length-reset, or
// nil on miss (the caller allocates). Misses and hits are counted per size
// class so /stats can show where the pool is working.
func (r *bufRecycler) getBuf(n int) []int64 {
	k := getClass(n)
	if k < 0 {
		return nil
	}
	r.mu.Lock()
	// The exact class satisfies by construction; the next class up is an
	// acceptable (≤4×) overshoot that saves an allocation.
	for c := k; c < recyclerClasses && c <= k+1; c++ {
		if l := len(r.free[c]); l > 0 {
			buf := r.free[c][l-1]
			r.free[c][l-1] = nil
			r.free[c] = r.free[c][:l-1]
			r.bytes -= int64(cap(buf)) * 8
			r.mu.Unlock()
			r.class[k].hits.Add(1)
			return buf[:0]
		}
	}
	r.mu.Unlock()
	r.class[k].misses.Add(1)
	return nil
}

// putBuf files buf's capacity for reuse. The buffer must be dead: nothing
// result-reachable may alias it (the arena escape analysis guarantees this
// for everything it recycles).
func (r *bufRecycler) putBuf(buf []int64) {
	k := putClass(cap(buf))
	if k < 0 {
		if cap(buf) > 0 {
			r.drops.Add(1)
		}
		return
	}
	r.mu.Lock()
	if len(r.free[k]) >= recyclerPerClass || r.bytes+int64(cap(buf))*8 > recyclerMaxBytes {
		r.mu.Unlock()
		r.drops.Add(1)
		return
	}
	r.free[k] = append(r.free[k], buf[:0])
	r.bytes += int64(cap(buf)) * 8
	r.mu.Unlock()
	r.puts.Add(1)
}

// getShell returns a retired arena shell — slabs (env, pending, task slab,
// evald flags, scratch) keep their capacity and are re-sized by prepare —
// or a fresh empty arena.
func (r *bufRecycler) getShell() *jobArena {
	r.mu.Lock()
	if l := len(r.shells); l > 0 {
		a := r.shells[l-1]
		r.shells[l-1] = nil
		r.shells = r.shells[:l-1]
		r.mu.Unlock()
		r.shellHits.Add(1)
		return a
	}
	r.mu.Unlock()
	r.shellMisses.Add(1)
	return &jobArena{}
}

// putShell strips a's kernel and exchange buffers into the size-classed
// free lists and retains the shell. Called only for arenas checked back
// into a retired schedule: their values are dead and their release() pass
// already dropped env/task references.
func (r *bufRecycler) putShell(a *jobArena) {
	for i, buf := range a.bufs {
		if buf != nil {
			a.bufs[i] = nil
			r.putBuf(buf)
		}
	}
	for i, buf := range a.groupBufs {
		if buf != nil {
			a.groupBufs[i] = nil
			r.putBuf(buf)
		}
	}
	for i := range a.groupRuns {
		a.groupRuns[i] = groupRun{}
	}
	// Wrapper caches are positional: a different plan checking out this
	// shell must never positionally collide with the old plan's columns.
	for i := range a.outCols {
		a.outCols[i] = outColCache{}
	}
	for i := range a.argViews {
		a.argViews[i] = [2]argViewCache{}
	}
	r.mu.Lock()
	if len(r.shells) < recyclerMaxShells {
		r.shells = append(r.shells, a)
	}
	r.mu.Unlock()
}

// RecyclerClassStats is one size class's hit/miss counters.
type RecyclerClassStats struct {
	// Size is the class's guaranteed minimum capacity in values.
	Size   int   `json:"size"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// RecyclerStats snapshots the engine buffer recycler for /stats.
type RecyclerStats struct {
	BufferHits    int64 `json:"buffer_hits"`
	BufferMisses  int64 `json:"buffer_misses"`
	ShellHits     int64 `json:"shell_hits"`
	ShellMisses   int64 `json:"shell_misses"`
	Puts          int64 `json:"puts"`
	Drops         int64 `json:"drops"`
	RetainedBytes int64 `json:"retained_bytes"`
	// Classes lists the size classes with any traffic, ascending.
	Classes []RecyclerClassStats `json:"classes,omitempty"`
}

// RecyclerStats snapshots the engine's buffer recycler counters. Counters
// are atomics: the snapshot is safe without the engine-ownership lock.
func (e *Engine) RecyclerStats() RecyclerStats {
	r := &e.recycler
	st := RecyclerStats{
		ShellHits:   r.shellHits.Load(),
		ShellMisses: r.shellMisses.Load(),
		Puts:        r.puts.Load(),
		Drops:       r.drops.Load(),
	}
	r.mu.Lock()
	st.RetainedBytes = r.bytes
	r.mu.Unlock()
	for k := range r.class {
		h, m := r.class[k].hits.Load(), r.class[k].misses.Load()
		st.BufferHits += h
		st.BufferMisses += m
		if h != 0 || m != 0 {
			st.Classes = append(st.Classes, RecyclerClassStats{Size: classSize(k), Hits: h, Misses: m})
		}
	}
	return st
}

// CompileStats counts plan compilations by kind for /stats.
type CompileStats struct {
	// Full counts from-scratch schedule builds; Derived counts incremental
	// parent→child derivations; Retired counts schedules dropped via Retire.
	Full    int64 `json:"full"`
	Derived int64 `json:"derived"`
	Retired int64 `json:"retired"`
}

// CompileStats snapshots the engine's compilation counters.
func (e *Engine) CompileStats() CompileStats {
	return CompileStats{
		Full:    e.fullCompiles.Load(),
		Derived: e.derivedCompiles.Load(),
		Retired: e.retiredPlans.Load(),
	}
}
