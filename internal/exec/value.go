// Package exec is the run-time environment of §2: a dataflow-graph scheduler
// ("an operator is scheduled for execution once all its input sources are
// available"), an interpreter executing operators, and a profiler gathering
// per-operator execution time, memory claims and thread affiliation.
// Execution happens on the simulated multi-core machine (internal/sim):
// operator results are computed for real; durations come from the cost
// model.
//
// Ownership invariants. Plans are immutable after submission (mutation
// clones), so each plan object's compilation — validation, dependency
// graph, zero-copy exchange plan — is cached once and reused every run.
// Buffer ownership is strictly layered: values reachable from a plan's
// result instruction escape to callers, are allocated fresh each run, and
// are never pooled or rewritten; every other run-state buffer belongs to
// exactly one layer at a time — the running job (arena checked out at
// Submit), the plan's schedule (idle arena between runs), or the
// engine-level size-classed recycler (after Engine.Retire) — with handoffs
// only at submit, completion, incremental derivation, and retirement.
// Recycled buffers are zero-length-reset, never zeroed: consumers append
// from :0 or fully overwrite, so they carry no data ownership and may serve
// any plan — including plans of other tenants (JobOptions.Catalog swaps
// bind resolution per job; the engine itself is tenant-agnostic). Engines
// are not goroutine-safe: the simulated machine is single-threaded, and
// callers (the server's shard locks) must serialize all executions on one
// engine.
//
// The escape rule above is load-bearing for the serving layer: a published
// result may be shared by many request goroutines at once (single-flight
// coalescing hands one run's values to every waiter) and streamed to
// sockets after the shard lock is released. That is sound only because
// result values are fresh per run and no later Evict, Retire, or recycler
// handoff ever reaches them — any future change to result-buffer lifetime
// must preserve this or teach the coalescer to copy.
package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Value is the runtime value of one plan variable.
type Value struct {
	Kind   plan.Kind
	Col    *storage.Column
	Oids   []int64
	Scalar int64
	Groups *algebra.Groups
}

// ColValue wraps a column.
func ColValue(c *storage.Column) Value { return Value{Kind: plan.KindColumn, Col: c} }

// OidsValue wraps a selection vector.
func OidsValue(o []int64) Value { return Value{Kind: plan.KindOids, Oids: o} }

// ScalarValue wraps a scalar.
func ScalarValue(s int64) Value { return Value{Kind: plan.KindScalar, Scalar: s} }

// GroupsValue wraps a group-by result.
func GroupsValue(g *algebra.Groups) Value { return Value{Kind: plan.KindGroups, Groups: g} }

// Len reports the cardinality of the value where meaningful.
func (v Value) Len() int {
	switch v.Kind {
	case plan.KindColumn:
		return v.Col.Len()
	case plan.KindOids:
		return len(v.Oids)
	case plan.KindGroups:
		return len(v.Groups.GIDs)
	}
	return 1
}

// Equal compares two values structurally; used by result-equivalence tests
// (the central mutation-correctness invariant).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case plan.KindScalar:
		return v.Scalar == o.Scalar
	case plan.KindOids:
		if len(v.Oids) != len(o.Oids) {
			return false
		}
		for i := range v.Oids {
			if v.Oids[i] != o.Oids[i] {
				return false
			}
		}
		return true
	case plan.KindColumn:
		if v.Col.Len() != o.Col.Len() {
			return false
		}
		for i := 0; i < v.Col.Len(); i++ {
			if v.Col.At(i) != o.Col.At(i) {
				return false
			}
		}
		return true
	case plan.KindGroups:
		if v.Groups.NGroups() != o.Groups.NGroups() || len(v.Groups.GIDs) != len(o.Groups.GIDs) {
			return false
		}
		for i := 0; i < v.Groups.Keys.Len(); i++ {
			if v.Groups.Keys.At(i) != o.Groups.Keys.At(i) {
				return false
			}
		}
		for i := range v.Groups.GIDs {
			if v.Groups.GIDs[i] != o.Groups.GIDs[i] {
				return false
			}
		}
		return true
	}
	return false
}

func (v Value) String() string {
	switch v.Kind {
	case plan.KindScalar:
		return fmt.Sprintf("%d", v.Scalar)
	case plan.KindOids:
		return fmt.Sprintf("oids[%d]", len(v.Oids))
	case plan.KindColumn:
		return fmt.Sprintf("col[%d]", v.Col.Len())
	case plan.KindGroups:
		return fmt.Sprintf("groups[%d]", v.Groups.NGroups())
	}
	return "?"
}

// ResultsEqual compares two result tuples.
func ResultsEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
