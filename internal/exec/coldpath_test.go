package exec

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/plan"
)

// resultFetchPlan builds a plan whose RESULT is a packed fetch column (plus
// the aggregate over it): the escape-analysis shapes whose buffers must
// never enter the recycler. sliced selects the basic-mutation clone shape,
// else the medium-mutation propagated shape.
func resultFetchPlan(nParts int, sliced bool) *plan.Plan {
	if sliced {
		p := partitionedFetchPlan(nParts)
		return addPackedResult(p)
	}
	return addPackedResult(propagatedFetchPlan(nParts))
}

// addPackedResult rewrites the plan's result instruction to also export the
// packed column itself.
func addPackedResult(p *plan.Plan) *plan.Plan {
	var packed plan.VarID = -1
	for _, in := range p.Instrs {
		if in.Op == plan.OpPack && p.KindOf(in.Rets[0]) == plan.KindColumn {
			packed = in.Rets[0]
		}
	}
	for _, in := range p.Instrs {
		if in.Op == plan.OpResult {
			in.Args = append(in.Args, packed)
		}
	}
	return p
}

// snapshotValues deep-copies result values out of whatever buffers back
// them, so later executions cannot silently rewrite the comparison basis.
func snapshotValues(vals []Value) []Value {
	out := make([]Value, len(vals))
	for i, v := range vals {
		switch v.Kind {
		case plan.KindColumn:
			cp := make([]int64, v.Col.Len())
			for k := range cp {
				cp[k] = v.Col.At(k)
			}
			out[i] = OidsValue(cp) // raw copy; compared element-wise below
		case plan.KindOids:
			out[i] = OidsValue(append([]int64(nil), v.Oids...))
		default:
			out[i] = v
		}
	}
	return out
}

func valuesMatchSnapshot(t *testing.T, label string, vals []Value, snap []Value) {
	t.Helper()
	for i, v := range vals {
		switch v.Kind {
		case plan.KindColumn:
			if v.Col.Len() != len(snap[i].Oids) {
				t.Fatalf("%s: result %d length changed: %d != %d", label, i, v.Col.Len(), len(snap[i].Oids))
			}
			for k := 0; k < v.Col.Len(); k++ {
				if v.Col.At(k) != snap[i].Oids[k] {
					t.Fatalf("%s: result %d value %d mutated after recycling: %d != %d",
						label, i, k, v.Col.At(k), snap[i].Oids[k])
				}
			}
		case plan.KindOids:
			if !v.Equal(snap[i]) {
				t.Fatalf("%s: result %d oids mutated after recycling", label, i)
			}
		case plan.KindScalar:
			if v.Scalar != snap[i].Scalar {
				t.Fatalf("%s: result %d scalar mutated after recycling: %d != %d", label, i, v.Scalar, snap[i].Scalar)
			}
		}
	}
}

// TestEscapeAnalysisSurvivesRecycling is the ISSUE 4 escape-analysis table:
// for every result-reachable buffer class — the packed exchange column of
// both mutation shapes, a direct fetch column, and the scalar aggregate —
// execute, retire the plan into the engine recycler, execute a DIFFERENT
// plan that draws from the pool, and verify the first plan's results are
// bit-for-bit intact: result-reachable buffers must never have entered the
// pool.
func TestEscapeAnalysisSurvivesRecycling(t *testing.T) {
	cat := testCatalog(20_000)
	cases := []struct {
		name  string
		build func() *plan.Plan
	}{
		{"sliced-pack-result", func() *plan.Plan { return resultFetchPlan(4, true) }},
		{"propagated-pack-result", func() *plan.Plan { return resultFetchPlan(4, false) }},
		{"direct-fetch-result", func() *plan.Plan {
			p := plan.New()
			col := p.NewVar(plan.KindColumn, "col")
			p.Append(&plan.Instr{Op: plan.OpBind, Aux: plan.BindAux{Table: "lineitem", Column: "l_extendedprice"},
				Rets: []plan.VarID{col}, Part: plan.FullPart()})
			oids := p.NewVar(plan.KindOids, "oids")
			p.Append(&plan.Instr{Op: plan.OpSelect, Aux: plan.SelectAux{Pred: algebra.AtLeast(300)},
				Args: []plan.VarID{col}, Rets: []plan.VarID{oids}, Part: plan.FullPart()})
			vals := p.NewVar(plan.KindColumn, "vals")
			p.Append(&plan.Instr{Op: plan.OpFetch, Args: []plan.VarID{oids, col},
				Rets: []plan.VarID{vals}, Part: plan.FullPart()})
			p.Append(&plan.Instr{Op: plan.OpResult, Args: []plan.VarID{oids, vals}, Part: plan.FullPart()})
			return p
		}},
		{"scalar-aggregate-result", func() *plan.Plan { return partitionedFetchPlan(8) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := NewEngine(cat, testMachine(), cost.Default())
			p1 := tc.build()
			if err := p1.Validate(); err != nil {
				t.Fatal(err)
			}
			res1, _, err := eng.Execute(p1)
			if err != nil {
				t.Fatal(err)
			}
			snap := snapshotValues(res1)
			// Retire p1: everything its arena held returns to the pool.
			eng.Retire(p1)
			// A different plan over another column now draws those buffers
			// and rewrites them with different data, twice (warm + hot).
			p2 := propagatedFetchPlan(8)
			for i := 0; i < 2; i++ {
				if _, _, err := eng.Execute(p2); err != nil {
					t.Fatal(err)
				}
			}
			valuesMatchSnapshot(t, tc.name, res1, snap)
		})
	}
}

// TestRecyclerNoStaleLeak is the zero-length-reset guard (ISSUE 4 satellite
// bugfix): pooled buffers keep their contents — only their LENGTH is reset —
// so a recycled buffer serving a shorter result must never surface values
// from the previous query. Two queries with different predicates run back to
// back on one engine (the wide one seeds the pool, the narrow one draws from
// it); the narrow query's results must match a virgin engine's bit for bit.
func TestRecyclerNoStaleLeak(t *testing.T) {
	cat := testCatalog(20_000)

	wide := plan.New()
	{
		col := wide.NewVar(plan.KindColumn, "col")
		wide.Append(&plan.Instr{Op: plan.OpBind, Aux: plan.BindAux{Table: "lineitem", Column: "l_extendedprice"},
			Rets: []plan.VarID{col}, Part: plan.FullPart()})
		oids := wide.NewVar(plan.KindOids, "oids")
		wide.Append(&plan.Instr{Op: plan.OpSelect, Aux: plan.SelectAux{Pred: algebra.AtLeast(100)}, // ~everything
			Args: []plan.VarID{col}, Rets: []plan.VarID{oids}, Part: plan.FullPart()})
		vals := wide.NewVar(plan.KindColumn, "vals")
		wide.Append(&plan.Instr{Op: plan.OpFetch, Args: []plan.VarID{oids, col},
			Rets: []plan.VarID{vals}, Part: plan.FullPart()})
		sum := wide.NewVar(plan.KindScalar, "sum")
		wide.Append(&plan.Instr{Op: plan.OpAggr, Aux: plan.AggrAux{Func: algebra.AggrSum},
			Args: []plan.VarID{vals}, Rets: []plan.VarID{sum}, Part: plan.FullPart()})
		wide.Append(&plan.Instr{Op: plan.OpResult, Args: []plan.VarID{sum}, Part: plan.FullPart()})
	}
	narrowBuild := func() *plan.Plan { return partitionedFetchPlan(4) } // AtLeast(300): strictly fewer rows

	// Virgin engine: the ground truth for the narrow query.
	virgin := NewEngine(cat, testMachine(), cost.Default())
	want, _, err := virgin.Execute(narrowBuild())
	if err != nil {
		t.Fatal(err)
	}

	// Shared engine: wide query first (pool seeded with long oid/value
	// buffers holding its data), then the narrow query drawing from the
	// pool. Any wholesale-length reuse or un-reset length would leak wide
	// rows into the narrow result.
	eng := NewEngine(cat, testMachine(), cost.Default())
	pw := wide
	if _, _, err := eng.Execute(pw); err != nil {
		t.Fatal(err)
	}
	eng.Retire(pw)
	got, _, err := eng.Execute(narrowBuild())
	if err != nil {
		t.Fatal(err)
	}
	if !ResultsEqual(want, got) {
		t.Fatalf("recycled buffers leaked prior query state: narrow query got %v on a shared engine, want %v", got, want)
	}
	if st := eng.RecyclerStats(); st.BufferHits == 0 {
		t.Fatalf("test exercised no pool hits (stats %+v); leak guard proved nothing", st)
	}
}
