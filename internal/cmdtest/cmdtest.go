// Package cmdtest builds and runs the repo's command binaries for smoke
// tests: every cmd must build, serve a trivial invocation, and exit
// non-zero on bad flags or query names.
package cmdtest

import (
	"context"
	"os/exec"
	"path"
	"path/filepath"
	"testing"
	"time"
)

// Build compiles the import path (e.g. "repro/cmd/apshell") into a temp dir
// and returns the binary path.
func Build(t *testing.T, importPath string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), path.Base(importPath))
	cmd := exec.Command("go", "build", "-o", bin, importPath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", importPath, err, out)
	}
	return bin
}

// Run executes the binary and returns its combined output and exit code.
// Hung binaries are killed after two minutes (plus a grace period for
// output pipes held by grandchildren).
func Run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.WaitDelay = 5 * time.Second
	out, err := cmd.CombinedOutput()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return string(out), ee.ExitCode()
		}
		t.Fatalf("run %s %v: %v\n%s", bin, args, err, out)
	}
	return string(out), 0
}
