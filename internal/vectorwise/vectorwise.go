// Package vectorwise simulates the comparator system of §4.2.4: Vectorwise
// 3.5.1, a pipelined vectorized columnar database with cost-model-based
// exchange-operator parallel plans and an admission-control scheme under
// concurrency. Per the paper's description:
//
//   - plans are statically parallelized with exchange operators whose
//     per-tuple overhead limits speed-up (§4.1.2 cites [30] for this);
//   - "resources are allocated based on the number of connected clients and
//     the system load. During a heavy concurrent workload the first client's
//     query gets all the resources, while the queries from the remaining
//     clients get less resources based on an admission control scheme" —
//     which the paper hypothesizes degrades later clients toward serial
//     execution.
//
// The simulation composes three existing mechanisms: a heuristic static
// plan at full machine DOP, the Vectorwise cost calibration (higher
// dispatch and per-tuple exchange cost on packs), and per-job core budgets
// from the admission policy.
package vectorwise

import (
	"repro/internal/cost"
	"repro/internal/heuristic"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Plan builds the statically parallelized Vectorwise-style plan: exchange
// parallelism at the machine's logical core count.
func Plan(p *plan.Plan, cat *storage.Catalog, cores int) (*plan.Plan, error) {
	return heuristic.Parallelize(p, cat, heuristic.Config{Partitions: cores})
}

// Params returns the Vectorwise cost calibration.
func Params() cost.Params { return cost.Vectorwise() }

// AdmissionMaxCores implements the admission-control scheme: the first
// active client keeps the full machine; later clients share what remains,
// degrading toward serial execution as the client count grows.
func AdmissionMaxCores(clientIndex, activeClients, cores int) int {
	if clientIndex == 0 || activeClients <= 1 {
		return cores
	}
	share := cores / activeClients
	if share < 1 {
		share = 1
	}
	return share
}

// Stats re-exports plan statistics for reporting parity with the other
// engines.
func Stats(p *plan.Plan) heuristic.PlanStats { return heuristic.Stats(p) }
