package vectorwise

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testCat(n int) *storage.Catalog {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 997)
	}
	t := storage.NewTable("data")
	t.MustAddColumn(storage.NewIntColumn("v", vals))
	cat := storage.NewCatalog()
	cat.MustAdd(t)
	return cat
}

func scanPlan() *plan.Plan {
	b := plan.NewBuilder()
	v := b.Bind("data", "v")
	s := b.Select(v, algebra.Between(100, 600))
	f := b.Fetch(s, v)
	sum := b.Aggr(algebra.AggrSum, f)
	b.Result(sum)
	return b.Plan()
}

func machine() sim.Config {
	return sim.Config{
		Name: "m", Sockets: 2, PhysCoresPerSocket: 4, SMT: 2, SpeedFactor: 1,
		L3PerSocket: 64 << 10, BWPerSocket: 1e9, SMTFactor: 0.55, NUMAFactor: 1.2,
	}
}

func TestVectorwisePlanCorrectness(t *testing.T) {
	cat := testCat(100_000)
	eng := exec.NewEngine(cat, machine(), cost.Default())
	want, _, err := eng.Execute(scanPlan())
	if err != nil {
		t.Fatal(err)
	}
	vw, err := Plan(scanPlan(), cat, machine().LogicalCores())
	if err != nil {
		t.Fatal(err)
	}
	eng2 := exec.NewEngine(cat, machine(), cost.Default())
	params := Params()
	job, err := eng2.Submit(vw, exec.JobOptions{CostParams: &params})
	if err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if !exec.ResultsEqual(want, job.Results()) {
		t.Fatal("Vectorwise plan diverges")
	}
}

func TestExchangeOverheadSlowsPacks(t *testing.T) {
	cat := testCat(200_000)
	vw, err := Plan(scanPlan(), cat, 16)
	if err != nil {
		t.Fatal(err)
	}
	run := func(params cost.Params) float64 {
		eng := exec.NewEngine(cat, machine(), cost.Default())
		job, err := eng.Submit(vw, exec.JobOptions{CostParams: &params})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if job.Err != nil {
			t.Fatal(job.Err)
		}
		return job.Profile.Makespan()
	}
	if vwT, monetT := run(Params()), run(cost.Default()); vwT <= monetT {
		t.Fatalf("exchange overhead missing: vw=%.0f monet=%.0f", vwT, monetT)
	}
}

func TestAdmissionControlPolicy(t *testing.T) {
	if AdmissionMaxCores(0, 32, 32) != 32 {
		t.Fatal("first client must get all cores")
	}
	if got := AdmissionMaxCores(5, 32, 32); got != 1 {
		t.Fatalf("late client under heavy load got %d cores, want 1", got)
	}
	if got := AdmissionMaxCores(1, 4, 32); got != 8 {
		t.Fatalf("client share = %d, want 8", got)
	}
	if got := AdmissionMaxCores(3, 1, 32); got != 32 {
		t.Fatal("single active client must get all cores")
	}
}

func TestStatsExported(t *testing.T) {
	cat := testCat(1000)
	vw, err := Plan(scanPlan(), cat, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s := Stats(vw); s.Selects != 8 {
		t.Fatalf("stats = %+v", s)
	}
}
