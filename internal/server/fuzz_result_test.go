package server

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/algebra"
	"repro/internal/exec"
)

// fuzzResultSeeds builds one canonical APQRESULT document per value shape
// plus truncation and bad-version variants. Shared by FuzzDecodeResult's
// inline seeds and the checked-in corpus generator, so the corpus can never
// drift from the live encoder.
func fuzzResultSeeds(tb testing.TB) map[string][]byte {
	tb.Helper()
	long := make([]int64, 2*resultChunkValues+5)
	for i := range long {
		long[i] = int64(i)
	}
	shapes := map[string][]exec.Value{
		"scalar":  {exec.ScalarValue(41)},
		"oids":    {exec.OidsValue([]int64{1, 2, 3})},
		"column":  {exec.ColValue(intColumn("l_quantity", 5, []int64{4, 5}))},
		"dict":    {exec.ColValue(dictColumn(tb, "flag", 2, []string{"A", "B", "A"}))},
		"groups":  {exec.GroupsValue(&algebra.Groups{Keys: intColumn("k", 1, []int64{10, 20}), GIDs: []int64{0, 1, 0}})},
		"chunked": {exec.ColValue(intColumn("big", 9, long))},
		"empty":   nil,
	}
	out := make(map[string][]byte, 2*len(shapes)+1)
	for name, vals := range shapes {
		doc, err := EncodeResult(&QueryResponse{Query: "fuzz:" + name, NumValues: len(vals)}, vals)
		if err != nil {
			tb.Fatal(err)
		}
		out["valid-"+name] = doc
		out["truncated-"+name] = doc[:len(doc)/2]
	}
	// A future version rejected by the version check, not the CRC: the
	// trailer is recomputed over the corrupted body.
	doc := out["valid-scalar"]
	bad := append([]byte{}, doc[:len(doc)-4]...)
	binary.LittleEndian.PutUint32(bad[len(resultMagic):], resultVersion+9)
	out["bad-version"] = reframe(bad)
	return out
}

// FuzzDecodeResult is the wire decoder's robustness contract: hostile bytes —
// lying length prefixes, truncated columns, bad versions, and CRC-valid
// garbage — must come back as an error, never a panic or a runaway
// allocation. And any input that does decode must be canonical: re-encoding
// the payload reproduces the input bit-for-bit, the property the cluster
// layer's verbatim result proxy rests on.
func FuzzDecodeResult(f *testing.F) {
	for _, seed := range fuzzResultSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte("APQRESULT"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := DecodeResult(data); err == nil {
			again, err := EncodeResult(&p.Meta, p.Values)
			if err != nil {
				t.Fatalf("decoded payload does not re-encode: %v", err)
			}
			if !bytes.Equal(again, data) {
				t.Fatalf("input decoded but is not the canonical encoding of its payload")
			}
		}
		// CRC-valid-but-hostile: re-frame the raw input with a correct
		// trailer. The checksum passes by construction, so every rejection
		// past this point is the structural validation's — the case a
		// malicious or buggy peer presents.
		framed := append([]byte{}, data...)
		var tr [4]byte
		binary.LittleEndian.PutUint32(tr[:], crc32.Checksum(framed, resultCRC))
		framed = append(framed, tr[:]...)
		if p, err := DecodeResult(framed); err == nil {
			again, err := EncodeResult(&p.Meta, p.Values)
			if err != nil || !bytes.Equal(again, framed) {
				t.Fatalf("re-framed input decoded but does not round-trip (err %v)", err)
			}
		}
	})
}

// TestGenerateResultFuzzCorpus regenerates the checked-in seed corpus from
// the live encoder (GEN_FUZZ_CORPUS=1), mirroring the store decoder's
// corpus workflow.
func TestGenerateResultFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeResult")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, seed := range fuzzResultSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
