package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tpch"
)

// newStoreServer builds a one-shard server over cat wired to st (nil = no
// persistence). The caller owns the store's lifetime: Close flushes the
// write-behind queue but does not close the store, so a test can reopen it.
func newStoreServer(t *testing.T, cat *storage.Catalog, st *store.Store, tenants []Tenant) *Server {
	t.Helper()
	s, err := New(Config{
		Engine:     exec.NewEngine(cat, sim.TwoSocket(), cost.Default()),
		DBIdentity: "tpch:sf=0.5:seed=42",
		Benchmark:  "tpch",
		Tenants:    tenants,
		Store:      st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// statsOf lifts the full /stats reply.
func statsOf(t *testing.T, s *Server) StatsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats status %d: %s", rec.Code, rec.Body.String())
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func relDiffF(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d / m
}

// TestServerRestartServesRehydratedPlan is the ISSUE 6 restart acceptance
// test: converge a query on a store-backed server, close it (flushing the
// write-behind queue), start a second server on the same store file, and
// require the FIRST post-restart request to be served from the rehydrated
// converged session — convergence state identical to a never-restarted twin,
// /stats reporting the rehydration.
func TestServerRestartServesRehydratedPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping store restart test in -short mode")
	}
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	path := filepath.Join(t.TempDir(), "conv.apqs")
	body := []byte(`{"query":6}`)

	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srvA := newStoreServer(t, cat, st, nil)
	twin := newStoreServer(t, cat, nil, nil)
	defer twin.Close()
	convergeQuery(t, srvA, body)
	convergeQuery(t, twin, body)
	srvA.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Fatalf("store holds %d records after restart, want 1", st2.Len())
	}
	srvB := newStoreServer(t, cat, st2, nil)
	defer srvB.Close()

	// The first post-restart request is a cache hit on the rehydrated
	// converged session — no adaptation, no creation.
	qrB := serveOnce(t, srvB, body)
	qrA := serveOnce(t, twin, body)
	if qrB.State != "converged" || !qrB.CacheHit {
		t.Fatalf("first post-restart request not served converged: %+v", qrB)
	}
	if qrA.DOP != qrB.DOP || qrA.NumValues != qrB.NumValues {
		t.Fatalf("restored serving diverges from twin: %+v vs %+v", qrA, qrB)
	}
	// Convergence state (run count, best/serial latency, speedup) must be
	// identical to the twin's — the history replayed, not re-learned.
	if qrA.Run != qrB.Run || qrA.BestLatencyNs != qrB.BestLatencyNs ||
		qrA.SerialLatencyNs != qrB.SerialLatencyNs || qrA.Speedup != qrB.Speedup {
		t.Fatalf("convergence state diverges from twin:\n%+v\nvs\n%+v", qrA, qrB)
	}
	// Steady-state virtual latency matches from the second restored
	// invocation on (the first pays the plan's one-time compilation; the
	// tolerance is ulp-scale rounding from differing virtual clock bases).
	qrA2, qrB2 := serveOnce(t, twin, body), serveOnce(t, srvB, body)
	if relDiffF(qrA2.LatencyNs, qrB2.LatencyNs) > 1e-9 {
		t.Fatalf("steady-state latency diverges: twin %v vs restored %v", qrA2.LatencyNs, qrB2.LatencyNs)
	}

	stats := statsOf(t, srvB)
	if stats.Store == nil {
		t.Fatal("/stats has no store block on a store-backed server")
	}
	if stats.Store.RehydratedSessions < 1 {
		t.Fatalf("rehydrated_sessions = %d, want >= 1", stats.Store.RehydratedSessions)
	}
	if stats.Store.Records != 1 || stats.Store.SkippedRecords != 0 {
		t.Fatalf("store stats: %+v", stats.Store)
	}
	// The store block is absent without a store.
	if twinStats := statsOf(t, twin); twinStats.Store != nil {
		t.Fatalf("store block present without a store: %+v", twinStats.Store)
	}
}

// TestServerRehydrationSkipsMismatchedRecords: records whose dataset identity
// or tenant no longer matches are skipped — counted, never merged, never
// fatal.
func TestServerRehydrationSkipsMismatchedRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping store rehydration test in -short mode")
	}
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	st, err := store.Open(filepath.Join(t.TempDir(), "conv.apqs"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Three foreign records: wrong dataset identity, unknown tenant, and an
	// undecodable plan under the right identity.
	for _, rec := range []store.Record{
		{Fingerprint: "f1", DBIdentity: "tpch:sf=9:seed=1", Query: "tpch:q6", PlanBytes: []byte("junk"), History: []float64{1}},
		{Fingerprint: "f2", DBIdentity: "tpch:sf=0.5:seed=42", Tenant: "ghost", Query: "tpch:q6", PlanBytes: []byte("junk"), History: []float64{1}},
		{Fingerprint: "f3", DBIdentity: "tpch:sf=0.5:seed=42", Query: "tpch:q6", PlanBytes: []byte("junk"), History: []float64{1}},
	} {
		if err := st.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	s := newStoreServer(t, cat, st, nil)
	defer s.Close()
	stats := statsOf(t, s)
	if stats.Store == nil || stats.Store.RehydratedSessions != 0 || stats.Store.SkippedRecords != 3 {
		t.Fatalf("store stats after foreign rehydration: %+v", stats.Store)
	}
	// The server still serves normally.
	if qr := serveOnce(t, s, []byte(`{"query":6}`)); qr.State == "" {
		t.Fatalf("serving broken after skipped rehydration: %+v", qr)
	}
}

// TestServerExportImportAcrossServers moves converged plans between two
// daemons through the export file: converge on A, export A's store, import
// into a fresh store, and serve converged from the first request on B.
func TestServerExportImportAcrossServers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping export/import test in -short mode")
	}
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	dir := t.TempDir()
	bodies := [][]byte{
		[]byte(`{"query":6}`),
		[]byte(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":12}}`),
	}

	stA, err := store.Open(filepath.Join(dir, "a.apqs"))
	if err != nil {
		t.Fatal(err)
	}
	srvA := newStoreServer(t, cat, stA, nil)
	for _, body := range bodies {
		convergeQuery(t, srvA, body)
	}
	srvA.Close()
	exp := filepath.Join(dir, "plans.apqx")
	if n, err := stA.Export(exp); err != nil || n != len(bodies) {
		t.Fatalf("export: n=%d err=%v", n, err)
	}
	if err := stA.Close(); err != nil {
		t.Fatal(err)
	}

	stB, err := store.Open(filepath.Join(dir, "b.apqs"))
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	if n, err := stB.Import(exp); err != nil || n != len(bodies) {
		t.Fatalf("import: n=%d err=%v", n, err)
	}
	srvB := newStoreServer(t, cat, stB, nil)
	defer srvB.Close()
	if stats := statsOf(t, srvB); stats.Store == nil || stats.Store.RehydratedSessions != int64(len(bodies)) {
		t.Fatalf("store stats after import: %+v", stats.Store)
	}
	for _, body := range bodies {
		if qr := serveOnce(t, srvB, body); qr.State != "converged" || !qr.CacheHit {
			t.Fatalf("%s: first request on importing server not converged: %+v", body, qr)
		}
	}
}

// TestServerMultiTenantRehydration: tenant-tagged records rehydrate into
// their tenant's sessions (identity-checked per tenant), and a record for a
// tenant the restarted server no longer carries is skipped.
func TestServerMultiTenantRehydration(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-tenant store test in -short mode")
	}
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	catAcme := tpch.Generate(tpch.Config{SF: 0.25, Seed: 7})
	tenants := []Tenant{{
		Name:       "acme",
		Catalog:    catAcme,
		DBIdentity: "tpch:sf=0.25:seed=7",
		Benchmark:  "tpch",
	}}
	path := filepath.Join(t.TempDir(), "conv.apqs")
	defBody := []byte(`{"query":6}`)
	acmeBody := []byte(`{"tenant":"acme","query":6}`)

	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srvA := newStoreServer(t, cat, st, tenants)
	convergeQuery(t, srvA, defBody)
	convergeQuery(t, srvA, acmeBody)
	srvA.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with the tenant: both sessions rehydrate, each into its own
	// tenant, and the first request per tenant serves converged.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srvB := newStoreServer(t, cat, st2, tenants)
	defer srvB.Close()
	for _, body := range [][]byte{defBody, acmeBody} {
		if qr := serveOnce(t, srvB, body); qr.State != "converged" || !qr.CacheHit {
			t.Fatalf("%s: first post-restart request not converged: %+v", body, qr)
		}
	}
	stats := statsOf(t, srvB)
	if stats.Store == nil || stats.Store.RehydratedSessions != 2 || stats.Store.SkippedRecords != 0 {
		t.Fatalf("store stats: %+v", stats.Store)
	}
	for _, tn := range stats.Tenants {
		if tn.Cache.Rehydrated != 1 {
			t.Fatalf("tenant %s rehydrated %d sessions, want 1", tn.Tenant, tn.Cache.Rehydrated)
		}
	}

	// Restart WITHOUT the tenant: the tenant-tagged record is skipped, the
	// default one still rehydrates.
	st3, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	srvC := newStoreServer(t, cat, st3, nil)
	defer srvC.Close()
	stats = statsOf(t, srvC)
	if stats.Store == nil || stats.Store.RehydratedSessions != 1 || stats.Store.SkippedRecords != 1 {
		t.Fatalf("store stats without tenant: %+v", stats.Store)
	}
	if qr := serveOnce(t, srvC, defBody); qr.State != "converged" {
		t.Fatalf("default session lost: %+v", qr)
	}
}

// TestServerStoreAllocStatsUnchanged guards the hot path: with a store wired
// in, a CONVERGED session's serving writes nothing — the write-behind queue
// stays empty and the record count stays flat while hot requests flow.
func TestServerStoreHotServingWritesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping store hot-path test in -short mode")
	}
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	st, err := store.Open(filepath.Join(t.TempDir(), "conv.apqs"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := newStoreServer(t, cat, st, nil)
	defer s.Close()
	body := []byte(`{"query":6}`)
	convergeQuery(t, s, body)
	// The write-behind queue is asynchronous: drain it so the counter below
	// is the settled post-convergence value.
	s.sync.Flush()
	written := statsOf(t, s).Store.RecordsWritten
	for i := 0; i < 100; i++ {
		serveOnce(t, s, body)
	}
	stats := statsOf(t, s)
	if stats.Store.RecordsWritten != written || stats.Store.WriteBehindQueueDepth != 0 {
		t.Fatalf("hot serving touched the store: wrote %d -> %d, queue %d",
			written, stats.Store.RecordsWritten, stats.Store.WriteBehindQueueDepth)
	}
	if written != 1 {
		t.Fatalf("convergence wrote %d records, want 1", written)
	}
}
