package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/vec"
)

// ---- wire round-trip ------------------------------------------------------

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func dictColumn(t testing.TB, name string, seq int64, vals []string) *storage.Column {
	t.Helper()
	d := vec.NewDict()
	codes := make([]int64, len(vals))
	for i, s := range vals {
		codes[i] = d.Code(s)
	}
	return storage.NewColumn(name, seq, vec.NewDictCoded(codes, d))
}

func intColumn(name string, seq int64, vals []int64) *storage.Column {
	return storage.NewColumn(name, seq, vec.NewInt64(vals))
}

// TestResultRoundTrip pins the codec's core property over every value kind:
// encode → decode reproduces the payload, and re-encoding the decoded payload
// reproduces the input bit-for-bit (the canonical-form guarantee the cluster
// proxy's bit-identity promise rests on).
func TestResultRoundTrip(t *testing.T) {
	long := make([]int64, 3*resultChunkValues+17) // spans 4 chunk frames
	for i := range long {
		long[i] = int64(i * 3)
	}
	cases := []struct {
		name string
		vals []exec.Value
	}{
		{"scalar", []exec.Value{exec.ScalarValue(-42)}},
		{"oids", []exec.Value{exec.OidsValue([]int64{0, 5, 9, 1 << 40})}},
		{"empty_oids", []exec.Value{exec.OidsValue(nil)}},
		{"column", []exec.Value{exec.ColValue(intColumn("l_quantity", 7, []int64{1, 2, 3}))}},
		{"dict_column", []exec.Value{exec.ColValue(dictColumn(t, "l_returnflag", 3, []string{"A", "N", "A", "R", "N"}))}},
		{"groups", []exec.Value{exec.GroupsValue(&algebra.Groups{
			Keys: dictColumn(t, "keys", 1, []string{"x", "y"}),
			GIDs: []int64{0, 1, 1, 0},
		})}},
		{"multi_chunk_column", []exec.Value{exec.ColValue(intColumn("big", 11, long))}},
		{"mixed", []exec.Value{
			exec.ScalarValue(7),
			exec.OidsValue([]int64{2, 4}),
			exec.ColValue(intColumn("c", 1, []int64{9, 8})),
		}},
		{"no_values", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			meta := QueryResponse{Query: "test:" + tc.name, State: "converged", NumValues: len(tc.vals)}
			raw, err := EncodeResult(&meta, tc.vals)
			if err != nil {
				t.Fatal(err)
			}
			p, err := DecodeResult(raw)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if p.Meta != meta {
				t.Fatalf("meta mismatch: %+v != %+v", p.Meta, meta)
			}
			if !exec.ResultsEqual(p.Values, tc.vals) {
				t.Fatalf("values mismatch after round trip")
			}
			again, err := EncodeResult(&p.Meta, p.Values)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, raw) {
				t.Fatalf("re-encode not bit-identical: %d vs %d bytes", len(again), len(raw))
			}
			// Dictionary survives the trip (Equal compares decoded values, so
			// check the dictionary identity explicitly).
			for i, v := range tc.vals {
				if v.Kind == p.Values[i].Kind && v.Col != nil && (v.Col.Dict() == nil) != (p.Values[i].Col.Dict() == nil) {
					t.Fatalf("value %d: dictionary presence changed across the wire", i)
				}
			}
		})
	}
}

// ---- hostile input --------------------------------------------------------

// reframe appends a valid CRC trailer to body, so corruption tests reach the
// validation they target instead of tripping the checksum first — the CRC
// only protects against corruption in flight, a hostile peer frames anything.
func reframe(body []byte) []byte {
	out := append([]byte{}, body...)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.Checksum(out, resultCRC))
	return append(out, tr[:]...)
}

func le32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func le64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// docPrefix renders magic+version+meta+nvalues — the frame everything after
// the metadata hangs off — with canonical metadata for the given response.
func docPrefix(t *testing.T, nvalues uint32) []byte {
	t.Helper()
	meta, err := json.Marshal(&QueryResponse{Query: "hostile"})
	if err != nil {
		t.Fatal(err)
	}
	b := append([]byte{}, resultMagic[:]...)
	b = le32(b, resultVersion)
	b = le32(b, uint32(len(meta)))
	b = append(b, meta...)
	return le32(b, nvalues)
}

// TestResultDecodeHostile drives DecodeResult through the failure table the
// fuzz target explores at random: every entry must error — never panic, never
// over-allocate — with the targeted validation, not an incidental one.
func TestResultDecodeHostile(t *testing.T) {
	valid, err := EncodeResult(&QueryResponse{Query: "hostile"}, []exec.Value{exec.OidsValue([]int64{1, 2, 3})})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"too_short", valid[:10]},
		{"crc_flip", func() []byte {
			b := append([]byte{}, valid...)
			b[len(b)/2] ^= 0xFF
			return b
		}()},
		{"truncated_crc", valid[:len(valid)-2]},
		{"bad_magic", func() []byte {
			b := append([]byte{}, valid[:len(valid)-4]...)
			b[0] = 'X'
			return reframe(b)
		}()},
		{"future_version", func() []byte {
			b := append([]byte{}, valid[:len(valid)-4]...)
			binary.LittleEndian.PutUint32(b[9:], resultVersion+1)
			return reframe(b)
		}()},
		{"meta_len_past_end", reframe(func() []byte {
			b := append([]byte{}, resultMagic[:]...)
			b = le32(b, resultVersion)
			return le32(b, 1<<30)
		}())},
		{"non_canonical_meta", reframe(func() []byte {
			meta := []byte(` {"query":"hostile"} `) // valid JSON, not json.Marshal output
			b := append([]byte{}, resultMagic[:]...)
			b = le32(b, resultVersion)
			b = le32(b, uint32(len(meta)))
			b = append(b, meta...)
			return le32(b, 0)
		}())},
		{"nvalues_lie", reframe(docPrefix(t, 1<<30))},
		{"unknown_kind", reframe(append(docPrefix(t, 1), 99))},
		{"int_stream_total_lie", reframe(func() []byte {
			b := append(docPrefix(t, 1), resKindOids)
			return le32(b, 1<<30)
		}())},
		{"non_canonical_chunk", reframe(func() []byte {
			// total 3, but a chunk of 2 — a boundary the encoder never emits.
			b := append(docPrefix(t, 1), resKindOids)
			b = le32(b, 3)
			b = le32(b, 2)
			b = le64(b, 1)
			b = le64(b, 2)
			b = le32(b, 1)
			return le64(b, 3)
		}())},
		{"truncated_column_name", reframe(func() []byte {
			b := append(docPrefix(t, 1), resKindColumn)
			return le32(b, 500) // name length pointing past the buffer
		}())},
		{"bad_dict_flag", reframe(func() []byte {
			b := append(docPrefix(t, 1), resKindColumn)
			b = le32(b, 1)
			b = append(b, 'c')
			b = le64(b, 1) // seq
			return append(b, 2)
		}())},
		{"dict_count_lie", reframe(func() []byte {
			b := append(docPrefix(t, 1), resKindColumn)
			b = le32(b, 1)
			b = append(b, 'c')
			b = le64(b, 1)
			b = append(b, 1)
			return le32(b, 1<<30)
		}())},
		{"dict_duplicate_entry", reframe(func() []byte {
			b := append(docPrefix(t, 1), resKindColumn)
			b = le32(b, 1)
			b = append(b, 'c')
			b = le64(b, 1)
			b = append(b, 1)
			b = le32(b, 2)
			for i := 0; i < 2; i++ {
				b = le32(b, 1)
				b = append(b, 'a')
			}
			b = le32(b, 0) // empty int-stream
			return b
		}())},
		{"dict_code_out_of_range", reframe(func() []byte {
			b := append(docPrefix(t, 1), resKindColumn)
			b = le32(b, 1)
			b = append(b, 'c')
			b = le64(b, 1)
			b = append(b, 1)
			b = le32(b, 1)
			b = le32(b, 1)
			b = append(b, 'a')
			b = le32(b, 1) // one value...
			b = le32(b, 1)
			return le64(b, 5) // ...coding entry 5 of a 1-entry dictionary
		}())},
		{"trailing_bytes", reframe(append(append([]byte{}, valid[:len(valid)-4]...), 0))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeResult(tc.data); err == nil {
				t.Fatalf("hostile document decoded without error")
			}
		})
	}
}

// ---- HTTP equivalence across serving paths --------------------------------

// postResultRaw POSTs a /query body negotiating APQRESULT via Accept and
// returns the raw reply bytes.
func postResultRaw(t *testing.T, url string, req QueryRequest, frozen bool) []byte {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", ResultContentType)
	if frozen {
		hreq.Header.Set(FrozenHeader, "1")
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != ResultContentType {
		t.Fatalf("Content-Type %q, want %q", ct, ResultContentType)
	}
	return raw.Bytes()
}

// TestServeResultEquivalence is the tentpole's proof obligation: for both
// ad-hoc shapes, the APQRESULT body decoded off the HTTP wire carries exactly
// the values the engine computed, on every serving path — cold (first
// adaptive run), hot (converged session), frozen (learned state only), and
// serial (cache bypass) — and every reply re-encodes bit-identically.
func TestServeResultEquivalence(t *testing.T) {
	s, ts := newTestServer(t, Config{Benchmark: "tpch"})
	lo, hiSum, hiRows := int64(1), int64(24), int64(50)
	shapes := []struct {
		name string
		req  QueryRequest
	}{
		{"select_sum", QueryRequest{SelectSum: &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Lo: &lo, Hi: &hiSum}}},
		{"select_rows", QueryRequest{SelectRows: &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Lo: &lo, Hi: &hiRows}}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			// Engine ground truth through the in-process seam (no wire).
			req := shape.req
			_, truth, derr := s.dispatch(context.Background(), "", &req, false)
			if derr != nil {
				t.Fatalf("dispatch: %v", derr.err)
			}
			if shape.name == "select_rows" && truth[0].Len() <= resultChunkValues {
				t.Fatalf("select_rows result has %d values; want > %d so the wire path spans chunks", truth[0].Len(), resultChunkValues)
			}

			check := func(path string, raw []byte) {
				t.Helper()
				p, err := DecodeResult(raw)
				if err != nil {
					t.Fatalf("%s: decode: %v", path, err)
				}
				if !exec.ResultsEqual(p.Values, truth) {
					t.Fatalf("%s: decoded values differ from the engine's", path)
				}
				if p.Meta.NumValues != len(truth) {
					t.Fatalf("%s: meta num_values %d, want %d", path, p.Meta.NumValues, len(truth))
				}
				again, err := EncodeResult(&p.Meta, p.Values)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(again, raw) {
					t.Fatalf("%s: wire bytes are not the canonical encoding", path)
				}
			}

			check("cold", postResultRaw(t, ts.URL, shape.req, false))
			body, _ := json.Marshal(shape.req)
			convergeQuery(t, s, body)
			check("hot", postResultRaw(t, ts.URL, shape.req, false))
			check("frozen", postResultRaw(t, ts.URL, shape.req, true))
			serialReq := shape.req
			serialReq.Mode = "serial"
			check("serial", postResultRaw(t, ts.URL, serialReq, false))
		})
	}
}

// ---- coalescing -----------------------------------------------------------

// holdShard occupies sh's engine-ownership semaphore so every request that
// arrives next must either queue on the lock or coalesce onto a flight —
// the deterministic stand-in for natural request overlap, which a
// single-CPU test host cannot be relied on to produce.
func holdShard(sh *shard) (release func()) {
	sh.sem <- struct{}{}
	var once sync.Once
	return func() { once.Do(func() { <-sh.sem }) }
}

// awaitParked waits until every one of n storm requests is accounted for:
// either inside doCtx (holding or queued on the engine lock) or joined onto
// a coalescing flight.
func awaitParked(t *testing.T, s *Server, sh *shard, base int64, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for int(sh.waiting.Load())+int(s.coalesced.Load()-base) < n {
		if time.Now().After(deadline) {
			t.Fatalf("storm never parked: %d waiting, %d coalesced of %d requests",
				sh.waiting.Load(), s.coalesced.Load()-base, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescingStorm is the single-flight acceptance test (run under -race
// in CI): N concurrent identical requests against a held shard produce far
// fewer engine runs than requests, every reply decodes to the same values,
// and /stats surfaces the coalesced count.
func TestCoalescingStorm(t *testing.T) {
	s, ts := newTestServer(t, Config{Benchmark: "tpch"})
	lo, hi := int64(1), int64(24)
	req := QueryRequest{SelectSum: &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Lo: &lo, Hi: &hi}, Results: true}
	body, _ := json.Marshal(QueryRequest{SelectSum: req.SelectSum})
	qr := serveOnce(t, s, body) // learn the fingerprint's shard
	sh := s.shards[qr.Shard]

	var st0 StatsResponse
	getJSON(t, ts.URL+"/stats", &st0)
	c0 := s.coalesced.Load()

	release := holdShard(sh)
	defer release()
	const storm = 16
	replies := make([][]byte, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i] = postResultRaw(t, ts.URL, req, false)
		}(i)
	}
	awaitParked(t, s, sh, c0, storm)
	release()
	wg.Wait()

	var st1 StatsResponse
	getJSON(t, ts.URL+"/stats", &st1)
	runs := (st1.Cache.Hits + st1.Cache.Misses) - (st0.Cache.Hits + st0.Cache.Misses)
	coalesced := st1.CoalescedRequests - st0.CoalescedRequests
	t.Logf("storm: %d requests, %d engine runs, %d coalesced", storm, runs, coalesced)
	if runs*2 > storm {
		t.Fatalf("%d engine runs for %d identical concurrent requests; coalescing should collapse most of the burst", runs, storm)
	}
	if runs+coalesced != storm {
		t.Fatalf("accounting: %d runs + %d coalesced != %d requests", runs, coalesced, storm)
	}
	if st1.ResultBytesSent <= st0.ResultBytesSent {
		t.Fatal("/stats result_bytes_sent did not grow across an APQRESULT storm")
	}
	first, err := DecodeResult(replies[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, raw := range replies {
		p, err := DecodeResult(raw)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if !exec.ResultsEqual(p.Values, first.Values) {
			t.Fatalf("reply %d decoded different values than reply 0", i)
		}
	}
}

// TestCoalescingEvictRetireRace pins the buffer-ownership rule the shared
// result path depends on: cache eviction (which retires plans and recycles
// arenas through the engine) must never release the value buffers coalesced
// waiters are still holding and streaming. Run under -race; the trailing
// goroutine check catches leaked waiters.
func TestCoalescingEvictRetireRace(t *testing.T) {
	s, _ := newTestServer(t, Config{Benchmark: "tpch"})
	lo, hi := int64(1), int64(24)
	req := QueryRequest{SelectSum: &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Lo: &lo, Hi: &hi}, Results: true}
	body, _ := json.Marshal(req)
	metaBody, _ := json.Marshal(QueryRequest{SelectSum: req.SelectSum})
	qr := serveOnce(t, s, metaBody)
	sh := s.shards[qr.Shard]
	fp := qr.Fingerprint

	goroutines := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		c0 := s.coalesced.Load()
		release := holdShard(sh)
		const storm = 8
		replies := make([][]byte, storm)
		var wg sync.WaitGroup
		for i := 0; i < storm; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rec := httptest.NewRecorder()
				hr := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
				s.Handler().ServeHTTP(rec, hr)
				if rec.Code == http.StatusOK {
					replies[i] = append([]byte{}, rec.Body.Bytes()...)
				}
			}(i)
		}
		awaitParked(t, s, sh, c0, storm)
		// Queue evictions behind the storm on the same engine lock: they
		// retire the session's plans and recycle its arenas while waiters
		// are still decoding and streaming the shared result values.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if err := s.do(sh, func() { sh.cache.Evict(fp) }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		release()
		wg.Wait()

		var want []exec.Value
		for i, raw := range replies {
			if raw == nil {
				t.Fatalf("round %d: reply %d failed", round, i)
			}
			p, err := DecodeResult(raw)
			if err != nil {
				t.Fatalf("round %d reply %d: %v", round, i, err)
			}
			if want == nil {
				want = p.Values
			} else if !exec.ResultsEqual(p.Values, want) {
				t.Fatalf("round %d reply %d: values diverged under eviction", round, i)
			}
		}
	}
	// No waiter may outlive its request: allow the runtime a moment to
	// retire finished goroutines, then compare against the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutines+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > goroutines+2 {
		t.Fatalf("goroutine leak: %d before the storms, %d after", goroutines, g)
	}
}

// TestStatsExposesCoalescing is the /stats contract for the new counters:
// coalesced_requests counts joins, result_bytes_sent counts APQRESULT bytes.
func TestStatsExposesCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Benchmark: "tpch"})
	lo, hi := int64(2), int64(9)
	req := QueryRequest{SelectSum: &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Lo: &lo, Hi: &hi}, Results: true}
	qr := serveOnce(t, s, mustJSON(t, QueryRequest{SelectSum: req.SelectSum}))
	sh := s.shards[qr.Shard]
	postResultRaw(t, ts.URL, req, false) // one APQRESULT reply so the byte counter is primed

	var st0 StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st0); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st0.ResultBytesSent <= 0 {
		t.Fatal("result_bytes_sent is zero after an APQRESULT reply")
	}

	release := holdShard(sh)
	defer release()
	const storm = 4
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postResultRaw(t, ts.URL, req, false)
		}()
	}
	awaitParked(t, s, sh, st0.CoalescedRequests, storm)
	release()
	wg.Wait()

	var st1 StatsResponse
	getJSON(t, ts.URL+"/stats", &st1)
	if st1.CoalescedRequests <= st0.CoalescedRequests {
		t.Fatalf("coalesced_requests did not grow: %d -> %d", st0.CoalescedRequests, st1.CoalescedRequests)
	}
	if st1.ResultBytesSent <= st0.ResultBytesSent {
		t.Fatalf("result_bytes_sent did not grow: %d -> %d", st0.ResultBytesSent, st1.ResultBytesSent)
	}
}

// ---- handler error headers ------------------------------------------------

// TestHandlerErrorContentType audits every handler's error path: the API
// contract says all bodies are JSON, so error replies must carry the JSON
// content type too (http.Error's text/plain broke clients that unmarshal
// every reply).
func TestHandlerErrorContentType(t *testing.T) {
	_, ts := newTestServer(t, Config{Benchmark: "tpch"})
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		code   int
	}{
		{"query_get", http.MethodGet, "/query", "", http.StatusMethodNotAllowed},
		{"query_bad_json", http.MethodPost, "/query", "{", http.StatusBadRequest},
		{"query_unknown_number", http.MethodPost, "/query", `{"query":99}`, http.StatusBadRequest},
		{"query_conflicting_shapes", http.MethodPost, "/query", `{"query":6,"select_sum":{"table":"lineitem","column":"l_quantity"}}`, http.StatusBadRequest},
		{"query_bad_table", http.MethodPost, "/query", `{"select_rows":{"table":"nope","column":"l_quantity"}}`, http.StatusBadRequest},
		{"query_unknown_tenant", http.MethodPost, "/query", `{"query":6,"tenant":"ghost"}`, http.StatusNotFound},
		{"sessions_post", http.MethodPost, "/sessions", "", http.StatusMethodNotAllowed},
		{"trace_unknown_session", http.MethodGet, "/sessions/nope/trace", "", http.StatusNotFound},
		{"trace_bad_route", http.MethodGet, "/sessions/nope/nope", "", http.StatusNotFound},
		{"stats_post", http.MethodPost, "/stats", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *bytes.Reader
			if tc.body != "" {
				body = bytes.NewReader([]byte(tc.body))
			} else {
				body = bytes.NewReader(nil)
			}
			hreq, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(hreq)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.code)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if er.Error == "" {
				t.Fatal("error body has no error field")
			}
		})
	}
}
