package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/tpch"
)

func newBenchServer(b *testing.B) *Server {
	b.Helper()
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	s, err := New(Config{
		Engine:     exec.NewEngine(cat, sim.TwoSocket(), cost.Default()),
		DBIdentity: "tpch:sf=0.5:seed=42",
		Benchmark:  "tpch",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

func serveOnce(b *testing.B, s *Server, body []byte) QueryResponse {
	b.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var qr QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		b.Fatal(err)
	}
	return qr
}

// BenchmarkServeHotRepeated measures serving a query whose plan-cache
// session has already converged: every request executes the learned
// global-minimum plan. The custom metric is the served query's virtual
// latency — the quantity that improves with caching.
func BenchmarkServeHotRepeated(b *testing.B) {
	s := newBenchServer(b)
	body := []byte(`{"query":6}`)
	var warm QueryResponse
	for i := 0; i < 400; i++ {
		warm = serveOnce(b, s, body)
		if warm.State == "converged" {
			break
		}
	}
	if warm.State != "converged" {
		b.Fatal("warmup never converged")
	}
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		qr := serveOnce(b, s, body)
		virt += qr.LatencyNs
	}
	b.ReportMetric(virt/float64(b.N), "virtual-ns/query")
}

// BenchmarkServeColdSerial is the baseline: every request executes the
// serial plan with no cached adaptive state.
func BenchmarkServeColdSerial(b *testing.B) {
	s := newBenchServer(b)
	body := []byte(`{"query":6,"mode":"serial"}`)
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		qr := serveOnce(b, s, body)
		virt += qr.LatencyNs
	}
	b.ReportMetric(virt/float64(b.N), "virtual-ns/query")
}
