package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/tpch"
)

func newBenchServer(tb testing.TB) *Server {
	tb.Helper()
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	s, err := New(Config{
		Engine:     exec.NewEngine(cat, sim.TwoSocket(), cost.Default()),
		DBIdentity: "tpch:sf=0.5:seed=42",
		Benchmark:  "tpch",
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(s.Close)
	return s
}

func serveOnce(tb testing.TB, s *Server, body []byte) QueryResponse {
	tb.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		tb.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var qr QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		tb.Fatal(err)
	}
	return qr
}

// convergeQuery drives one query body until its plan-cache session reports
// convergence, so hot-path measurements serve the learned plan only.
func convergeQuery(tb testing.TB, s *Server, body []byte) {
	tb.Helper()
	for i := 0; i < 600; i++ {
		if serveOnce(tb, s, body).State == "converged" {
			return
		}
	}
	tb.Fatal("warmup never converged")
}

// BenchmarkServeHotRepeated measures serving a query whose plan-cache
// session has already converged: every request executes the learned
// global-minimum plan. The custom metric is the served query's virtual
// latency — the quantity that improves with caching; allocs/op is the
// hot-path allocation budget the zero-copy exchange and pooled HTTP buffers
// gutted.
func BenchmarkServeHotRepeated(b *testing.B) {
	s := newBenchServer(b)
	body := []byte(`{"query":6}`)
	convergeQuery(b, s, body)
	b.ReportAllocs()
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		qr := serveOnce(b, s, body)
		virt += qr.LatencyNs
	}
	b.ReportMetric(virt/float64(b.N), "virtual-ns/query")
}

// BenchmarkServeHot is the acceptance benchmark for the zero-copy exchange:
// the §4.1 select_sum micro-benchmark served through a converged session —
// the workload ISSUE 3 requires to drop ≥50% in allocs/op versus the seed
// (131 engine allocations plus HTTP framing per request at this shape).
func BenchmarkServeHot(b *testing.B) {
	s := newBenchServer(b)
	body := []byte(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":24}}`)
	convergeQuery(b, s, body)
	b.ReportAllocs()
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		qr := serveOnce(b, s, body)
		virt += qr.LatencyNs
	}
	b.ReportMetric(virt/float64(b.N), "virtual-ns/query")
}

// BenchmarkServeAdaptiveWarmup is the ISSUE 4 cold path: each iteration
// drives a FRESH query fingerprint through its entire adaptive convergence,
// so every measured request is a converging step — plan mutation,
// (incremental) compilation, and a first-run execution drawing buffers from
// the engine recycler. steps/convergence reports how many requests one
// warmup costs; allocs/op is per CONVERGENCE (divide by steps for the
// per-step cold budget TestServeColdAllocBudget enforces).
func BenchmarkServeAdaptiveWarmup(b *testing.B) {
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	// CacheSize 2 evicts each finished session within two iterations: the
	// (lo,hi) fingerprint space below is finite (320), so an unbounded
	// cache would silently serve CONVERGED sessions once b.N exceeds it —
	// eviction guarantees every iteration converges from scratch (and
	// exercises the production eviction→Release→recycle path for free).
	s, err := New(Config{
		Engine:     exec.NewEngine(cat, sim.TwoSocket(), cost.Default()),
		DBIdentity: "tpch:sf=0.5:seed=42",
		Benchmark:  "tpch",
		CacheSize:  2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	// Warm the shard (pool, schedules, HTTP buffers) with one convergence.
	convergeQuery(b, s, []byte(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":2,"hi":3}}`))
	b.ReportAllocs()
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		// Distinct (lo,hi) per iteration = distinct fingerprint = fresh
		// adaptive session.
		lo := 1 + i%40
		hi := lo + 2 + (i/40)%8
		body := []byte(fmt.Sprintf(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":%d,"hi":%d}}`, lo, hi))
		for r := 0; r < 600; r++ {
			steps++
			if serveOnce(b, s, body).State == "converged" {
				break
			}
		}
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/convergence")
}

// BenchmarkServeColdSerial is the baseline: every request executes the
// serial plan with no cached adaptive state.
func BenchmarkServeColdSerial(b *testing.B) {
	s := newBenchServer(b)
	body := []byte(`{"query":6,"mode":"serial"}`)
	b.ReportAllocs()
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		qr := serveOnce(b, s, body)
		virt += qr.LatencyNs
	}
	b.ReportMetric(virt/float64(b.N), "virtual-ns/query")
}
