package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/tpch"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine == nil {
		cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
		cfg.Engine = exec.NewEngine(cat, sim.TwoSocket(), cost.Default())
	}
	if cfg.DBIdentity == "" {
		cfg.DBIdentity = "tpch:sf=0.5:seed=42"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postQuery(t *testing.T, url string, req QueryRequest) (QueryResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return qr, resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServeConcurrentConvergence is the subsystem's acceptance test: a
// loopback server takes the same query from many concurrent clients plus a
// mix of distinct queries, serves everything under admission control
// (exercised under -race in CI), and the repeated query's latency improves
// across invocations through the shared plan-cache session, with the
// convergence trace visible at /sessions/{id}/trace.
func TestServeConcurrentConvergence(t *testing.T) {
	s, ts := newTestServer(t, Config{Benchmark: "tpch", Admission: true})

	// Gate the first wave of requests so at least 4 hold admission slots
	// simultaneously — on a single-CPU machine natural overlap is not
	// guaranteed even with 12 client goroutines in flight.
	var admitted atomic.Int32
	release := make(chan struct{})
	s.admitHook = func() {
		if admitted.Add(1) == 4 {
			close(release)
		}
		<-release
	}

	// Phase 1: concurrent clients. 8 hammer q6; 4 issue distinct queries.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var q6Sessions []string
	var cappedCores atomic.Int32
	errs := make(chan error, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				qr, code := postQuery(t, ts.URL, QueryRequest{Query: 6})
				if code != http.StatusOK {
					errs <- fmt.Errorf("q6: status %d", code)
					return
				}
				mu.Lock()
				q6Sessions = append(q6Sessions, qr.Session)
				mu.Unlock()
				if qr.MaxCores > 0 && qr.MaxCores < 32 {
					cappedCores.Add(1)
				}
			}
		}()
	}
	distinct := []int{4, 14, 19, 22}
	for c, n := range distinct {
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, code := postQuery(t, ts.URL, QueryRequest{Query: n}); code != http.StatusOK {
					errs <- fmt.Errorf("q%d: status %d", n, code)
					return
				}
			}
		}(c, n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(q6Sessions) != 40 {
		t.Fatalf("expected 40 q6 responses, got %d", len(q6Sessions))
	}
	for _, id := range q6Sessions {
		if id != q6Sessions[0] {
			t.Fatalf("q6 requests split across sessions %q and %q — cache not shared", q6Sessions[0], id)
		}
	}

	if cappedCores.Load() == 0 {
		t.Fatal("admission control never capped a concurrent client's cores")
	}

	// Phase 2: keep re-submitting q6 until its shared session converges.
	s.admitHook = nil
	var last QueryResponse
	for i := 0; i < 400; i++ {
		qr, code := postQuery(t, ts.URL, QueryRequest{Query: 6})
		if code != http.StatusOK {
			t.Fatalf("status %d at sequential request %d", code, i)
		}
		if !qr.CacheHit {
			t.Fatalf("sequential request %d missed the cache", i)
		}
		last = qr
		if qr.State == "converged" {
			break
		}
	}
	if last.State != "converged" {
		t.Fatalf("q6 session never converged; last state %q at run %d", last.State, last.Run)
	}
	if last.BestLatencyNs >= last.SerialLatencyNs {
		t.Fatalf("no improvement: best %.0fns vs serial %.0fns", last.BestLatencyNs, last.SerialLatencyNs)
	}
	if last.Speedup <= 1 {
		t.Fatalf("speedup %.2f not > 1", last.Speedup)
	}

	// The convergence trace is visible and consistent.
	var trace TraceResponse
	if code := getJSON(t, ts.URL+"/sessions/"+last.Session+"/trace", &trace); code != http.StatusOK {
		t.Fatalf("trace status %d", code)
	}
	if trace.State != "converged" || len(trace.History) != trace.Runs {
		t.Fatalf("bad trace: state %q, %d history entries for %d runs", trace.State, len(trace.History), trace.Runs)
	}
	if trace.History[trace.GMERun] != trace.BestNs {
		t.Fatalf("history[%d] = %.0f != best %.0f", trace.GMERun, trace.History[trace.GMERun], trace.BestNs)
	}
	if trace.BestNs >= trace.History[0] {
		t.Fatalf("trace shows no improvement: best %.0f vs serial %.0f", trace.BestNs, trace.History[0])
	}
	if len(trace.Invocations) < trace.Runs {
		t.Fatalf("%d invocations < %d runs", len(trace.Invocations), trace.Runs)
	}

	// The session list covers the repeated query and all distinct ones.
	var sessions []SessionInfo
	if code := getJSON(t, ts.URL+"/sessions", &sessions); code != http.StatusOK {
		t.Fatalf("sessions status %d", code)
	}
	if len(sessions) != 1+len(distinct) {
		t.Fatalf("expected %d sessions, got %d", 1+len(distinct), len(sessions))
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Cache.Entries != 1+len(distinct) || stats.Cache.Misses != int64(1+len(distinct)) {
		t.Fatalf("unexpected cache stats: %+v", stats.Cache)
	}
	if stats.PeakClients < 4 {
		t.Fatalf("admission never saw the gated concurrency (peak %d, want >= 4)", stats.PeakClients)
	}
	if stats.QueryRequests < 52 {
		t.Fatalf("query_requests %d too low", stats.QueryRequests)
	}

	var health HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz: code %d, body %+v", code, health)
	}
}

func TestSerialModeBypassesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Benchmark: "tpch"})
	qr, code := postQuery(t, ts.URL, QueryRequest{Query: 6, Mode: "serial"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if qr.State != "serial" || qr.Session != "" || qr.Run != -1 || qr.DOP != 1 {
		t.Fatalf("unexpected serial response: %+v", qr)
	}
	var sessions []SessionInfo
	getJSON(t, ts.URL+"/sessions", &sessions)
	if len(sessions) != 0 {
		t.Fatalf("serial mode created a session: %+v", sessions)
	}
}

func TestSelectSumSpecQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{Benchmark: "tpch"})
	lo, hi := int64(10), int64(500)
	spec := &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Lo: &lo, Hi: &hi}
	first, code := postQuery(t, ts.URL, QueryRequest{SelectSum: spec})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.CacheHit {
		t.Fatal("first spec query cannot be a cache hit")
	}
	again, _ := postQuery(t, ts.URL, QueryRequest{SelectSum: spec})
	if !again.CacheHit || again.Session != first.Session {
		t.Fatalf("same spec did not share the session: %+v vs %+v", first, again)
	}
	// A different predicate is a different fingerprint.
	hi2 := int64(400)
	other, _ := postQuery(t, ts.URL, QueryRequest{SelectSum: &SelectSumSpec{
		Table: "lineitem", Column: "l_quantity", Lo: &lo, Hi: &hi2,
	}})
	if other.Session == first.Session {
		t.Fatal("different spec reused the session")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Benchmark: "tpch"})
	cases := []struct {
		name string
		req  QueryRequest
	}{
		{"unimplemented query", QueryRequest{Query: 3}},
		{"missing query", QueryRequest{}},
		{"wrong benchmark", QueryRequest{Benchmark: "tpcds", Query: 1}},
		{"bad mode", QueryRequest{Query: 6, Mode: "warp"}},
		{"both query and spec", QueryRequest{Query: 6, SelectSum: &SelectSumSpec{Table: "t", Column: "c"}}},
		{"spec missing column", QueryRequest{SelectSum: &SelectSumSpec{Table: "lineitem"}}},
		{"spec unknown table", QueryRequest{SelectSum: &SelectSumSpec{Table: "nope", Column: "c"}}},
		{"spec unknown column", QueryRequest{SelectSum: &SelectSumSpec{Table: "lineitem", Column: "nope"}}},
		{"spec wrong benchmark", QueryRequest{Benchmark: "tpcds", SelectSum: &SelectSumSpec{Table: "lineitem", Column: "l_quantity"}}},
	}
	for _, tc := range cases {
		if _, code := postQuery(t, ts.URL, tc.req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", resp.StatusCode)
	}
	var tr TraceResponse
	if code := getJSON(t, ts.URL+"/sessions/nope/trace", &tr); code != http.StatusNotFound {
		t.Errorf("unknown session trace: status %d, want 404", code)
	}
}

func TestCloseRejectsRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Benchmark: "tpch"})
	if _, code := postQuery(t, ts.URL, QueryRequest{Query: 6}); code != http.StatusOK {
		t.Fatalf("pre-close status %d", code)
	}
	s.Close()
	if _, code := postQuery(t, ts.URL, QueryRequest{Query: 6}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close status %d, want 503", code)
	}
	// A closed server must not look healthy to load balancers.
	var health HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusServiceUnavailable || health.OK {
		t.Fatalf("post-close healthz status %d (ok=%v), want 503", code, health.OK)
	}
	s.Close() // idempotent
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without an engine must fail")
	}
	cat := tpch.Generate(tpch.Config{SF: 0.1, Seed: 42})
	eng := exec.NewEngine(cat, sim.TwoSocket(), cost.Default())
	if _, err := New(Config{Engine: eng, Benchmark: "TPCH"}); err == nil {
		t.Fatal("New must reject an unknown benchmark at startup, not per request")
	}
}

func TestAdmissionSlots(t *testing.T) {
	var a admissionSlots
	i0, n0 := a.acquire()
	if i0 != 0 || n0 != 1 {
		t.Fatalf("first acquire: slot %d active %d", i0, n0)
	}
	i1, n1 := a.acquire()
	if i1 != 1 || n1 != 2 {
		t.Fatalf("second acquire: slot %d active %d", i1, n1)
	}
	a.release(i0)
	i2, n2 := a.acquire()
	if i2 != 0 || n2 != 2 {
		t.Fatalf("reacquire: slot %d active %d (lowest free slot must be reused)", i2, n2)
	}
	if a.peakActive() != 2 {
		t.Fatalf("peak %d", a.peakActive())
	}
}
