package server

import (
	"context"
	"net/http"
)

// ShardBackend is the transport-agnostic shard abstraction the federation
// layer routes over (ROADMAP: "promote the fingerprint-hash shard routing
// behind an interface so shards can be remote"). A backend is something that
// can execute query requests against its own engine pool and report its
// health — the in-process pool below (Server.Backend) and internal/cluster's
// HTTP remote node are the two implementations. The coordinator treats a
// whole peer daemon as one backend: fingerprint hashing picks the owning
// node first, and the owning node's own shardFor picks the engine replica,
// so a query's adaptive convergence still happens on exactly one
// deterministic virtual machine wherever it lands.
type ShardBackend interface {
	// Invoke executes one query request at full fidelity (adaptation,
	// exploration, staleness feedback — subject to the backend's own breaker
	// state). Failures that map to an HTTP status are *BackendError; anything
	// else is a transport-level failure the caller may retry elsewhere.
	Invoke(ctx context.Context, req *QueryRequest) (*QueryResponse, error)
	// InvokeFrozen serves the request from learned state only: the current
	// plan executes but no adaptation or staleness feedback happens — the
	// degraded fidelity a coordinator demands while it distrusts the
	// session's placement (mid-failover, mid-re-pin).
	InvokeFrozen(ctx context.Context, req *QueryRequest) (*QueryResponse, error)
	// Stats snapshots the backend's serving counters.
	Stats(ctx context.Context) (*StatsResponse, error)
	// Health reports whether the backend is serving at full fidelity; a
	// transport error means the node itself is unreachable.
	Health(ctx context.Context) (*HealthResponse, error)
	// Retire shuts the backend down: local pools drain and close, remote
	// clients release their connections (the remote daemon keeps running).
	Retire() error
}

// BackendError is an Invoke failure that carries its HTTP status mapping: a
// remote shard's non-200 reply, or the local dispatch path's coded error.
// Status codes below 500 are the request's own fault (unknown tenant, bad
// spec, over-quota) — a coordinator must proxy them back, never fail over,
// or a malformed request would cascade across every node in the ring.
type BackendError struct {
	// Code is the HTTP status the failure maps to.
	Code int
	// Msg is the error body.
	Msg string
	// RetryAfter is the jittered backoff hint in seconds ("" = none), set on
	// shed and over-quota rejections.
	RetryAfter string
}

func (e *BackendError) Error() string { return e.Msg }

// Temporary reports whether the failure is the node's condition rather than
// the request's: 5xx and 429 replies may succeed on another node or at
// another time, 4xx replies will not.
func (e *BackendError) Temporary() bool {
	return e.Code >= 500 || e.Code == http.StatusTooManyRequests
}

// localBackend adapts the in-process shard pool to the ShardBackend seam:
// every method is the corresponding HTTP handler's core below the framing
// layer, so a request dispatched through the backend computes the same
// bytes the handler would have written.
type localBackend struct{ s *Server }

// Backend returns the server's in-process ShardBackend: the local
// implementation of the seam internal/cluster routes over.
func (s *Server) Backend() ShardBackend { return localBackend{s} }

func (lb localBackend) invoke(ctx context.Context, req *QueryRequest, frozen bool) (*QueryResponse, error) {
	// The seam carries metadata only; a caller that wants the columnar
	// result bytes speaks HTTP to the owner (the coordinator's raw
	// APQRESULT proxy), so the wire bytes come from one encoder.
	resp, _, derr := lb.s.dispatch(ctx, "", req, frozen)
	if derr != nil {
		be := &BackendError{Code: derr.code, Msg: derr.err.Error()}
		if derr.retry {
			be.RetryAfter = lb.s.retryAfter()
		}
		return nil, be
	}
	return &resp, nil
}

func (lb localBackend) Invoke(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	return lb.invoke(ctx, req, false)
}

func (lb localBackend) InvokeFrozen(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	return lb.invoke(ctx, req, true)
}

func (lb localBackend) Stats(ctx context.Context) (*StatsResponse, error) {
	resp, err := lb.s.statsResponse()
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

func (lb localBackend) Health(ctx context.Context) (*HealthResponse, error) {
	resp := lb.s.healthResponse()
	return &resp, nil
}

func (lb localBackend) Retire() error {
	lb.s.Close()
	return nil
}

// RouteFingerprint resolves a request to its routing fingerprint without
// executing anything — the key the federation coordinator hashes to pick an
// owning node. hdrTenant is the X-APQ-Tenant header value ("" = none; the
// body field wins, same precedence as serving). Resolution failures (unknown
// tenant, malformed spec) are not routing decisions: the caller serves such
// requests locally so the canonical error reply comes from the full serve
// path.
func (s *Server) RouteFingerprint(hdrTenant string, req *QueryRequest) (string, error) {
	name := req.Tenant
	if name == "" {
		name = hdrTenant
	}
	tn, err := s.tenantByName(name)
	if err != nil {
		return "", err
	}
	_, fp, _, err := s.resolve(tn, req)
	return fp, err
}
