package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plancache"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// postTenant posts a query routed to a tenant, via the body field or the
// X-APQ-Tenant header.
func postTenant(t *testing.T, url, tenant string, req QueryRequest, viaHeader bool) (QueryResponse, int) {
	t.Helper()
	if !viaHeader {
		req.Tenant = tenant
	}
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if viaHeader {
		hr.Header.Set("X-APQ-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("POST /query (tenant %s): %v", tenant, err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return qr, resp.StatusCode
}

// convergeBaseline converges query q on a fresh single-tenant server over
// cat and returns the session's entry (history, attempts, results) for
// equivalence comparison.
func convergeBaseline(t *testing.T, cat *storage.Catalog, dbIdentity string, q int) *plancache.Entry {
	t.Helper()
	s, ts := newTestServer(t, Config{
		Engine:     exec.NewEngine(cat, sim.TwoSocket(), cost.Default()),
		DBIdentity: dbIdentity,
		Benchmark:  "tpch",
	})
	var last QueryResponse
	for i := 0; i < 400; i++ {
		qr, code := postQuery(t, ts.URL, QueryRequest{Query: q})
		if code != http.StatusOK {
			t.Fatalf("baseline %s: status %d at request %d", dbIdentity, code, i)
		}
		last = qr
		if qr.State == "converged" {
			break
		}
	}
	if last.State != "converged" {
		t.Fatalf("baseline %s never converged", dbIdentity)
	}
	e := s.shardFor(last.Fingerprint).cache.GetFingerprint(last.Fingerprint)
	if e == nil {
		t.Fatalf("baseline %s: converged session not in cache", dbIdentity)
	}
	return e
}

// TestTenantIsolationConcurrentConvergence is the multi-tenant acceptance
// test (exercised under -race in CI): the same TPC-H query number converges
// concurrently on two tenant datasets over one shared shard pool, producing
// distinct fingerprints and sessions, per-tenant results and convergence
// histories bit-identical to single-tenant servers over the same datasets,
// and a correct per-tenant /stats breakdown.
func TestTenantIsolationConcurrentConvergence(t *testing.T) {
	catA := tpch.Generate(tpch.Config{SF: 0.25, Seed: 1})
	catB := tpch.Generate(tpch.Config{SF: 0.25, Seed: 2})
	baseA := convergeBaseline(t, catA, "tpch:sf=0.25:seed=1", 6)
	baseB := convergeBaseline(t, catB, "tpch:sf=0.25:seed=2", 6)

	// The multi-tenant server: a 2-shard pool over the primary dataset,
	// with A and B as named tenants sharing the pool.
	primary := tpch.Generate(tpch.Config{SF: 0.25, Seed: 42})
	engines := []*exec.Engine{
		exec.NewEngine(primary, sim.TwoSocket(), cost.Default()),
		exec.NewEngine(primary, sim.TwoSocket(), cost.Default()),
	}
	s, ts := newTestServer(t, Config{
		Engines:    engines,
		DBIdentity: "tpch:sf=0.25:seed=42",
		Benchmark:  "tpch",
		Tenants: []Tenant{
			{Name: "a", Catalog: catA, DBIdentity: "tpch:sf=0.25:seed=1"},
			{Name: "b", Catalog: catB, DBIdentity: "tpch:sf=0.25:seed=2"},
		},
	})

	// Converge q6 on both tenants concurrently; tenant b routes by header
	// to cover both routing paths.
	finals := make([]QueryResponse, 2)
	steps := make([]int, 2)
	var wg sync.WaitGroup
	for i, tenant := range []string{"a", "b"} {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			for r := 0; r < 400; r++ {
				qr, code := postTenant(t, ts.URL, tenant, QueryRequest{Query: 6}, tenant == "b")
				if code != http.StatusOK {
					t.Errorf("tenant %s: status %d", tenant, code)
					return
				}
				finals[i] = qr
				steps[i]++
				if qr.State == "converged" {
					return
				}
			}
			t.Errorf("tenant %s never converged", tenant)
		}(i, tenant)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Same query number, distinct tenants: distinct fingerprints, sessions,
	// and tenant attribution.
	if finals[0].Fingerprint == finals[1].Fingerprint {
		t.Fatalf("tenants a and b share fingerprint %s", finals[0].Fingerprint)
	}
	if finals[0].Session == finals[1].Session {
		t.Fatalf("tenants a and b share session %s", finals[0].Session)
	}
	if finals[0].Tenant != "a" || finals[1].Tenant != "b" {
		t.Fatalf("tenant attribution: %q, %q", finals[0].Tenant, finals[1].Tenant)
	}

	// Per-tenant equivalence against the single-tenant baselines:
	// bit-identical results and convergence histories, even though the
	// multi-tenant sessions shared machines, recyclers and schedule caches
	// with each other and possibly interleaved on one shard.
	for i, base := range []*plancache.Entry{baseA, baseB} {
		e := s.shardFor(finals[i].Fingerprint).cache.GetFingerprint(finals[i].Fingerprint)
		if e == nil {
			t.Fatalf("tenant %s: session not in cache", finals[i].Tenant)
		}
		if e.Tenant != finals[i].Tenant {
			t.Fatalf("entry tenant tag %q, want %q", e.Tenant, finals[i].Tenant)
		}
		got, want := e.Session.Report(), base.Session.Report()
		if got.TotalRuns != want.TotalRuns || got.GMERun != want.GMERun {
			t.Fatalf("tenant %s: %d runs (GME at %d), baseline %d (GME at %d)",
				finals[i].Tenant, got.TotalRuns, got.GMERun, want.TotalRuns, want.GMERun)
		}
		for r := range want.History {
			if got.History[r] != want.History[r] {
				t.Fatalf("tenant %s: run %d latency %v != baseline %v",
					finals[i].Tenant, r, got.History[r], want.History[r])
			}
		}
		for r := range want.Attempts {
			if !exec.ResultsEqual(got.Attempts[r].Results, want.Attempts[r].Results) {
				t.Fatalf("tenant %s: run %d results diverge from single-tenant baseline", finals[i].Tenant, r)
			}
		}
	}

	// The two tenants' datasets differ (different seeds), so the same query
	// must produce different results — isolation is visible in the data.
	eA := s.shardFor(finals[0].Fingerprint).cache.GetFingerprint(finals[0].Fingerprint)
	eB := s.shardFor(finals[1].Fingerprint).cache.GetFingerprint(finals[1].Fingerprint)
	if exec.ResultsEqual(eA.Session.Attempts()[0].Results, eB.Session.Attempts()[0].Results) {
		t.Fatal("tenants a and b produced identical results over different datasets")
	}

	// Per-tenant /stats counters.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if len(stats.Tenants) != 3 || stats.Tenants[0].Tenant != "default" ||
		stats.Tenants[1].Tenant != "a" || stats.Tenants[2].Tenant != "b" {
		t.Fatalf("tenant rows: %+v", stats.Tenants)
	}
	for i, row := range stats.Tenants[1:] {
		if row.Requests != int64(steps[i]) {
			t.Fatalf("tenant %s: %d requests recorded, served %d", row.Tenant, row.Requests, steps[i])
		}
		if row.Cache.Entries != 1 || row.Cache.Converged != 1 || row.Cache.Misses != 1 {
			t.Fatalf("tenant %s cache stats: %+v", row.Tenant, row.Cache)
		}
		if row.Cache.Hits != int64(steps[i]-1) {
			t.Fatalf("tenant %s: %d cache hits, want %d", row.Tenant, row.Cache.Hits, steps[i]-1)
		}
	}
	if stats.Tenants[0].Requests != 0 || stats.Tenants[0].Cache.Entries != 0 {
		t.Fatalf("default tenant saw traffic it was never sent: %+v", stats.Tenants[0])
	}

	// /sessions?tenant= scopes the listing.
	for _, tc := range []struct {
		query string
		want  int
	}{{"a", 1}, {"b", 1}, {"default", 0}, {"", 0}} {
		var sessions []SessionInfo
		if code := getJSON(t, ts.URL+"/sessions?tenant="+tc.query, &sessions); code != http.StatusOK {
			t.Fatalf("sessions?tenant=%s status %d", tc.query, code)
		}
		if len(sessions) != tc.want {
			t.Fatalf("sessions?tenant=%s: %d sessions, want %d", tc.query, len(sessions), tc.want)
		}
	}
	var all []SessionInfo
	getJSON(t, ts.URL+"/sessions", &all)
	if len(all) != 2 {
		t.Fatalf("unfiltered sessions: %d, want 2", len(all))
	}
}

// TestTenantQuotaEviction: a tenant over its session quota evicts its own
// least-recently-used session and never another tenant's — the default
// tenant's converged session survives the offender's overflow.
func TestTenantQuotaEviction(t *testing.T) {
	cat := tpch.Generate(tpch.Config{SF: 0.25, Seed: 7})
	_, ts := newTestServer(t, Config{
		Benchmark: "tpch",
		Tenants:   []Tenant{{Name: "acme", Catalog: cat, DBIdentity: "acme-db", MaxSessions: 2}},
	})

	// A converged default-tenant session: the prime eviction candidate
	// under the old tenant-blind policy (converged LRU goes first).
	var def QueryResponse
	for i := 0; i < 400; i++ {
		qr, code := postQuery(t, ts.URL, QueryRequest{Query: 6})
		if code != http.StatusOK {
			t.Fatalf("default q6: status %d", code)
		}
		def = qr
		if qr.State == "converged" {
			break
		}
	}
	if def.State != "converged" {
		t.Fatal("default q6 never converged")
	}

	// Three distinct acme sessions against a quota of 2: the third insert
	// pushes acme over quota, and acme's own oldest session must go.
	var acme [3]QueryResponse
	for i := range acme {
		lo := int64(1 + i)
		qr, code := postTenant(t, ts.URL, "acme", QueryRequest{
			SelectSum: &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Lo: &lo},
		}, false)
		if code != http.StatusOK {
			t.Fatalf("acme spec %d: status %d", i, code)
		}
		acme[i] = qr
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	rows := map[string]TenantStatsInfo{}
	for _, row := range stats.Tenants {
		rows[row.Tenant] = row
	}
	if got := rows["acme"].Cache; got.Entries != 2 || got.Evictions != 1 {
		t.Fatalf("acme cache stats: %+v (want 2 entries, 1 eviction)", got)
	}
	if got := rows["default"].Cache; got.Entries != 1 || got.Converged != 1 || got.Evictions != 0 {
		t.Fatalf("default tenant's converged session was disturbed: %+v", got)
	}

	// The evicted session is acme's first (LRU); the default session and
	// acme's two newest survive.
	var sessions []SessionInfo
	getJSON(t, ts.URL+"/sessions", &sessions)
	alive := map[string]bool{}
	for _, si := range sessions {
		alive[si.Session] = true
	}
	if alive[acme[0].Session] {
		t.Fatal("acme's LRU session survived its own quota overflow")
	}
	if !alive[acme[1].Session] || !alive[acme[2].Session] || !alive[def.Session] {
		t.Fatalf("wrong eviction victim: alive=%v", alive)
	}
}

// TestTenantInFlightQuota: a tenant at its concurrency budget gets 429
// without queueing on shard locks; other tenants and later requests are
// unaffected.
func TestTenantInFlightQuota(t *testing.T) {
	cat := tpch.Generate(tpch.Config{SF: 0.25, Seed: 7})
	s, ts := newTestServer(t, Config{
		Benchmark: "tpch",
		Admission: true,
		Tenants:   []Tenant{{Name: "acme", Catalog: cat, MaxInFlight: 1}},
	})

	// Hold one acme request inside the handler (past the in-flight gate)
	// via the admission test seam.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.admitHook = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	done := make(chan int, 1)
	go func() {
		_, code := postTenant(t, ts.URL, "acme", QueryRequest{Query: 6}, false)
		done <- code
	}()
	<-entered
	s.admitHook = nil

	// Second acme request while the first is in flight: over quota, 429.
	if _, code := postTenant(t, ts.URL, "acme", QueryRequest{Query: 14}, false); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota acme request: status %d, want 429", code)
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("first acme request: status %d", code)
	}
	// The budget frees with the request.
	if _, code := postTenant(t, ts.URL, "acme", QueryRequest{Query: 6}, false); code != http.StatusOK {
		t.Fatalf("post-release acme request: status %d", code)
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	for _, row := range stats.Tenants {
		if row.Tenant == "acme" {
			if row.Rejected != 1 || row.PeakInFlight != 1 || row.MaxInFlight != 1 {
				t.Fatalf("acme quota counters: %+v", row)
			}
		}
	}

	// Unknown tenants are 404, before any engine work — on /query and on
	// the /sessions filter alike.
	if _, code := postTenant(t, ts.URL, "nope", QueryRequest{Query: 6}, false); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", code)
	}
	var sessions []SessionInfo
	if code := getJSON(t, ts.URL+"/sessions?tenant=nope", &sessions); code != http.StatusNotFound {
		t.Fatalf("sessions filter for unknown tenant: status %d, want 404", code)
	}
	// A tenant serves only its own benchmark.
	if _, code := postTenant(t, ts.URL, "acme", QueryRequest{Benchmark: "tpcds", Query: 1}, false); code != http.StatusBadRequest {
		t.Fatalf("wrong-benchmark tenant request: status %d, want 400", code)
	}
}

// TestNewRejectsBadTenants: tenant config errors surface at startup.
func TestNewRejectsBadTenants(t *testing.T) {
	cat := tpch.Generate(tpch.Config{SF: 0.1, Seed: 42})
	eng := func() *exec.Engine { return exec.NewEngine(cat, sim.TwoSocket(), cost.Default()) }
	cases := []struct {
		name    string
		tenants []Tenant
	}{
		{"reserved name", []Tenant{{Name: "default", Catalog: cat}}},
		{"empty name", []Tenant{{Catalog: cat}}},
		{"nil catalog", []Tenant{{Name: "a"}}},
		{"duplicate", []Tenant{{Name: "a", Catalog: cat}, {Name: "a", Catalog: cat}}},
		{"bad benchmark", []Tenant{{Name: "a", Catalog: cat, Benchmark: "tpce"}}},
		// Identity collisions would silently merge cache sessions across
		// tenants (fingerprints incorporate DBIdentity) — startup errors.
		{"duplicate identity", []Tenant{
			{Name: "a", Catalog: cat, DBIdentity: "x"},
			{Name: "b", Catalog: cat, DBIdentity: "x"},
		}},
		{"identity collides with default", []Tenant{{Name: "tpch", Catalog: cat}}},
	}
	for _, tc := range cases {
		if _, err := New(Config{Engine: eng(), Benchmark: "tpch", Tenants: tc.tenants}); err == nil {
			t.Errorf("%s: New accepted bad tenant config", tc.name)
		}
	}
}
