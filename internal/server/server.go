// Package server implements apqd's HTTP query service: a long-lived daemon
// that keeps adaptive-parallelization state alive between requests. The
// paper's workflow ("optimize once and execute many, adaptively") only pays
// off in a serving context — each request against a cached query is one
// adaptive run, so a query's latency drops request-over-request as its
// session converges on the global-minimum plan.
//
// Concurrency model: the engine shard pool. The discrete-event virtual-time
// machine underneath an execution engine is single-threaded: stepping it
// from two goroutines corrupts its event queue and clock. The seed server
// therefore owned ONE engine behind one run-loop goroutine and serialized
// every execution — so wall-clock throughput could not scale with host
// cores. The server now owns N independent engine replicas (shards), each
// with its own simulated machine and plan-session cache behind its own
// engine-ownership mutex, over one shared read-only catalog. A query is
// pinned to a shard by its fingerprint hash: a given session's adaptive
// convergence stays deterministic and single-threaded on its home shard,
// while distinct queries execute concurrently on distinct host cores.
//
// Admission control is layered per shard: concurrently arriving clients of
// the same shard take numbered slots and execute under a Vectorwise-style
// per-client core budget (vectorwise.AdmissionMaxCores, §4.2.4) — the first
// client keeps that shard's whole machine, later ones degrade toward
// serial.
//
// Multi-tenancy multiplexes independently-named datasets over that one shard
// pool (the IB-DWB shape): every tenant shares the machines, buffer
// recyclers, schedule caches and admission control, and a request differs
// only in which catalog its binds resolve against (exec.JobOptions.Catalog).
// Isolation is by fingerprint — cache keys incorporate the tenant's
// DBIdentity, so one plan-session cache per shard holds sessions from many
// tenants without collision — plus per-tenant quotas: a session-count quota
// enforced inside the cache (an over-quota tenant evicts only itself) and an
// in-flight quota that fails excess requests fast with 429. Ownership
// invariants are untouched by tenancy: sessions stay pinned to shards by
// fingerprint hash, engines are only touched under their shard's
// engine-ownership lock, and retired plans feed the shared recycler
// regardless of tenant (pooled buffers carry no data ownership — the next
// job fully rewrites them).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tpcds"
	"repro/internal/tpch"
	"repro/internal/vectorwise"
)

// ErrClosed reports a request against a server that has shut down.
var ErrClosed = errors.New("server: closed")

// Config configures a Server.
type Config struct {
	// Engine is a single execution engine — the one-shard configuration.
	// The server takes ownership: all executions must go through it.
	Engine *exec.Engine
	// Engines, when set, is the shard pool: one engine replica per shard,
	// each with its own simulated machine over the shared catalog. Takes
	// precedence over Engine.
	Engines []*exec.Engine
	// DBIdentity names the dataset for fingerprinting, e.g.
	// "tpch:sf=1:seed=42". Fingerprints must change when the data does.
	DBIdentity string
	// Benchmark is the loaded benchmark ("tpch" or "tpcds"); named-query
	// requests for the other benchmark are rejected up front.
	Benchmark string
	// Admission enables the Vectorwise-style admission-control scheme for
	// concurrent clients of one shard.
	Admission bool
	// CacheSize bounds each shard's plan-session cache (0 = unlimited).
	CacheSize int
	// Tenants are additional named datasets served over the same shard
	// pool; the Engine/Engines catalog remains the default tenant.
	Tenants []Tenant
	// Mutation and Convergence tune adaptive sessions (zero = defaults).
	Mutation    core.MutationConfig
	Convergence core.ConvergenceConfig
	// Store, when set, is the persistent convergence store: converged
	// sessions are written behind (batched by a background synchronizer,
	// never on the serving hot path) and rehydrated into the shard caches
	// at startup, so the first request after a restart is already served
	// from the learned plan. The server flushes the synchronizer on Close
	// but does not close the store — the opener owns its lifetime.
	Store *store.Store

	// Staleness arms post-convergence staleness detection on every cached
	// session: converged sessions whose full-budget serving latencies drift
	// out of the band reopen convergence instead of pinning a stale plan
	// (core.StalenessConfig semantics; zero = disabled).
	Staleness core.StalenessConfig
	// Drift arms workload-drift detection on every shard cache: converged
	// sessions whose serve latency no longer matches the query mix they
	// converged under proactively reopen at the observed budget
	// (plancache.DriftConfig semantics; zero = disabled).
	Drift plancache.DriftConfig
	// TenantFactory builds the tenant (catalog included) for a runtime
	// POST /admin/tenants request. nil disables runtime tenant addition —
	// the endpoint replies 503. The hook runs outside every server lock:
	// dataset generation may be slow.
	TenantFactory func(TenantSpec) (Tenant, error)
	// Faults is a deterministic fault schedule applied to every shard's
	// simulated machine at startup (each shard has its own virtual clock, so
	// each sees the same schedule relative to its own time axis). Chaos
	// testing only; zero = no faults.
	Faults sim.FaultPlan
	// RequestTimeout bounds one /query request's wait for its shard plus
	// dispatch; an expired deadline aborts with 503 before engine work
	// starts (0 = no deadline beyond the client's own context).
	RequestTimeout time.Duration
	// MaxShardQueue bounds the number of requests waiting on (or holding)
	// one shard's engine semaphore; arrivals beyond it are shed with 503 +
	// Retry-After (0 = unbounded).
	MaxShardQueue int
	// BreakerFailures is the consecutive full-fidelity failure count (errors
	// or anomalously slow runs) that trips a shard's health breaker into
	// degraded mode (0 = breaker disabled).
	BreakerFailures int
	// BreakerCooldown is how long a tripped breaker serves frozen before
	// admitting a half-open probe (0 = probe immediately).
	BreakerCooldown time.Duration
	// SlowFactor counts a converged invocation slower than SlowFactor × its
	// session's serial baseline as a breaker failure (0 = only hard errors
	// count).
	SlowFactor float64

	// OnRecord, when set, observes every convergence record the serving
	// layer produces — the same records the persistent store receives, fired
	// on convergence and converged eviction (cold events only, never the
	// converged serving path). The federation replicator subscribes here to
	// ship converged sessions to peer nodes; the hook must not block (hand
	// off to a queue).
	OnRecord func(store.Record)
	// ClusterStats, when set, supplies the GET /stats "cluster" block — the
	// federation coordinator's view of its peers. nil omits the block.
	ClusterStats func() any
}

// shard is one engine replica: a simulated machine, its plan-session cache,
// and its admission slots. The one-slot semaphore is the engine-ownership
// boundary: the single-threaded virtual-time machine is only ever touched
// while holding it, so handler goroutines execute engine work inline (one
// uncontended channel send) instead of paying two handoffs to a dedicated
// run-loop goroutine per request — the seed design's main fixed cost under
// concurrent clients. A semaphore rather than a mutex because acquisition
// must be abortable: request deadlines select against it, and the shed
// policy bounds the line forming behind it (resilience.go).
type shard struct {
	id    int
	eng   *exec.Engine
	cache *plancache.Cache
	adm   admissionSlots

	sem     chan struct{} // 1-slot engine-ownership semaphore
	waiting atomic.Int32  // requests holding or waiting on sem
	brk     breaker       // per-shard health breaker
}

// Server is the query-service daemon core: an HTTP handler set over a pool
// of engine shards.
type Server struct {
	cfg     Config
	shards  []*shard
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the panic-recovery middleware
	start   time.Time

	// tenants routes request tenant names; tenantList keeps /stats order
	// (default first, then config/addition order); defTenant is the primary
	// dataset. tenantMu guards the map and list — the tenant lifecycle API
	// mutates both at runtime. The tenantState values themselves are
	// internally synchronized (atomics); only membership needs the lock.
	tenantMu   sync.RWMutex
	tenants    map[string]*tenantState
	tenantList []*tenantState
	defTenant  *tenantState

	// life counts tenant-lifecycle and data-mutation admin operations.
	life struct {
		tenantsAdded   atomic.Int64
		tenantsRemoved atomic.Int64
		appends        atomic.Int64
		deletes        atomic.Int64
	}

	// randFn is the jitter source for Retry-After hints and breaker
	// cooldowns (nil = math/rand; tests pin it).
	randFn func() float64

	closeMu  sync.RWMutex
	closed   bool
	inflight sync.WaitGroup

	statMu     sync.Mutex
	queryCount int64
	errCount   int64

	// flights is the single-flight table behind /query coalescing: identical
	// adaptive requests arriving while their shard is busy join one in-flight
	// engine run (dispatch). coalesced counts requests served by joining;
	// resultBytes counts APQRESULT payload bytes written — both /stats rows.
	flightMu    sync.Mutex
	flights     map[flightKey]*flight
	coalesced   atomic.Int64
	resultBytes atomic.Int64

	// fpMu guards the fingerprint cache: resolving a request's cache key
	// hashes and hex-encodes identity strings, which the hot serve loop
	// would otherwise re-allocate on every request for the same query.
	fpMu    sync.Mutex
	fpCache map[string]fpEntry

	// admitHook, when non-nil, runs between admission-slot acquisition and
	// engine dispatch — a test seam that makes concurrent admission
	// observable deterministically on single-CPU machines. panicHook runs
	// inside the recovery middleware before routing — the seam panic-path
	// tests trip deliberately.
	admitHook func()
	panicHook func(*http.Request)

	// res holds the overload-hardening counters (resilience.go).
	res struct {
		deadlineExpiries atomic.Int64
		shed             atomic.Int64
		panics           atomic.Int64
	}

	// sync is the write-behind path to cfg.Store (nil without a store);
	// rehydrated/warmSeeded/skippedRecords count rehydration outcomes
	// (atomics: runtime tenant addition rehydrates concurrently with /stats
	// reads).
	sync           *store.Synchronizer
	rehydrated     atomic.Int64
	warmSeeded     atomic.Int64
	skippedRecords atomic.Int64
}

// New creates a Server over a pool of engine shards.
func New(cfg Config) (*Server, error) {
	engines := cfg.Engines
	if len(engines) == 0 && cfg.Engine != nil {
		engines = []*exec.Engine{cfg.Engine}
	}
	if len(engines) == 0 {
		return nil, errors.New("server: Config.Engine or Config.Engines is required")
	}
	for _, e := range engines {
		if e == nil {
			return nil, errors.New("server: nil engine in Config.Engines")
		}
	}
	switch cfg.Benchmark {
	case "":
		cfg.Benchmark = "tpch"
	case "tpch", "tpcds":
	default:
		return nil, fmt.Errorf("server: unknown benchmark %q (want tpch or tpcds)", cfg.Benchmark)
	}
	if cfg.DBIdentity == "" {
		cfg.DBIdentity = cfg.Benchmark
	}
	s := &Server{
		cfg:     cfg,
		start:   time.Now(),
		fpCache: make(map[string]fpEntry),
		flights: make(map[flightKey]*flight),
	}
	s.defTenant = newTenantState(Tenant{
		Name:       "default",
		Catalog:    engines[0].Catalog(),
		DBIdentity: cfg.DBIdentity,
		Benchmark:  cfg.Benchmark,
	}, true)
	s.tenants = map[string]*tenantState{}
	s.tenantList = []*tenantState{s.defTenant}
	// Identity uniqueness is load-bearing, not cosmetic: fingerprints
	// incorporate DBIdentity, so two tenants sharing one identity would
	// silently share cache sessions — merging their quotas, stats, and
	// (with different catalogs) their adaptive state. Reject at startup.
	identities := map[string]string{cfg.DBIdentity: "default"}
	for _, t := range cfg.Tenants {
		switch {
		case t.Name == "" || t.Name == "default":
			return nil, fmt.Errorf("server: tenant name %q reserved (the primary database is tenant \"default\")", t.Name)
		case t.Catalog == nil:
			return nil, fmt.Errorf("server: tenant %q has no catalog", t.Name)
		}
		if _, dup := s.tenants[t.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", t.Name)
		}
		switch t.Benchmark {
		case "":
			t.Benchmark = "tpch"
		case "tpch", "tpcds":
		default:
			return nil, fmt.Errorf("server: tenant %q: unknown benchmark %q (want tpch or tpcds)", t.Name, t.Benchmark)
		}
		if t.DBIdentity == "" {
			t.DBIdentity = t.Name
		}
		if owner, dup := identities[t.DBIdentity]; dup {
			return nil, fmt.Errorf("server: tenant %q shares DBIdentity %q with tenant %q — identities must be unique or fingerprints collide across tenants", t.Name, t.DBIdentity, owner)
		}
		identities[t.DBIdentity] = t.Name
		tn := newTenantState(t, false)
		s.tenants[t.Name] = tn
		s.tenantList = append(s.tenantList, tn)
	}
	if cfg.Store != nil {
		s.sync = store.NewSynchronizer(cfg.Store)
	}
	for i, eng := range engines {
		prefix := "s"
		if len(engines) > 1 {
			// Namespace ids per shard so /sessions/{id} stays unique.
			prefix = fmt.Sprintf("s%d.", i)
		}
		ccfg := plancache.Config{
			MaxEntries:  cfg.CacheSize,
			IDPrefix:    prefix,
			Mutation:    cfg.Mutation,
			Convergence: cfg.Convergence,
			Staleness:   cfg.Staleness,
			Drift:       cfg.Drift,
		}
		if s.sync != nil || cfg.OnRecord != nil {
			// Write-behind persistence: the hook fires on convergence and
			// converged eviction (cold events only — never the converged
			// serving path) and just snapshots + enqueues; the synchronizer
			// goroutine does the encoding batch-wise off the request path.
			// The same record feeds the OnRecord subscriber (the federation
			// replicator), which runs its own write-behind queue.
			shardEng := eng
			ccfg.Persist = func(e *plancache.Entry) {
				tn := s.tenantByTag(e.Tenant)
				if tn == nil {
					return
				}
				snap, err := e.Session.Snapshot()
				if err != nil {
					return
				}
				// The record carries the tenant's epoch AT PERSIST TIME: a
				// session that converged against epoch-N data and is flushed
				// after a bump to N+1 was reopened by that bump (non-done, not
				// persisted) — so a done session's history always belongs to
				// the live epoch.
				rec := store.NewRecord(e.Fingerprint, tn.DBIdentity, e.Tenant, e.Query, tn.epoch.Load(), snap, shardEng.Params())
				if s.sync != nil {
					s.sync.Enqueue(rec)
				}
				if cfg.OnRecord != nil {
					cfg.OnRecord(rec)
				}
			}
		}
		sh := &shard{
			id:    i,
			eng:   eng,
			cache: plancache.New(eng, ccfg),
			sem:   make(chan struct{}, 1),
		}
		if len(cfg.Faults) > 0 {
			eng.Machine().SetFaultPlan(cfg.Faults)
		}
		// Per-tenant session quotas live inside each shard's cache, tagged
		// by tenant, so the eviction policy can scope an over-quota tenant's
		// overflow to its own sessions.
		for _, tn := range s.tenantList {
			if tn.MaxSessions > 0 {
				sh.cache.SetTenantQuota(tn.tag(), tn.MaxSessions)
			}
		}
		s.shards = append(s.shards, sh)
	}
	if cfg.Store != nil {
		s.rehydrate(cfg.Store, nil)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/sessions", s.handleSessions)
	s.mux.HandleFunc("/sessions/", s.handleSessionTrace)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/admin/append", s.handleAppend)
	s.mux.HandleFunc("/admin/truncate", s.handleTruncate)
	s.mux.HandleFunc("/admin/tenants", s.handleTenants)
	s.handler = s.withRecovery(s.mux)
	return s, nil
}

// tenantByTag resolves a cache tenant tag ("" = default) to its state.
// Draining tenants still resolve: their evicted sessions persist with the
// right identity while the removal is in progress.
func (s *Server) tenantByTag(tag string) *tenantState {
	if tag == "" {
		return s.defTenant
	}
	s.tenantMu.RLock()
	defer s.tenantMu.RUnlock()
	return s.tenants[tag]
}

// rehydrate restores the persistent store's converged sessions into the
// shard caches — at startup (only == nil, before the server takes requests)
// and when a runtime-added tenant comes back (only == that tenant). Every
// record is identity-checked: its tenant must exist, the tenant's DBIdentity
// must match the record's (same data), and the engine's cost calibration
// must match the one the history was measured under (same machine model). A
// record whose dataset epoch no longer matches the live tenant's was learned
// on other data: its plan is still correct (partitions are binary-rational
// ranges) but its measurements are stale, so it rehydrates as a warm seed —
// a non-done session the request stream re-converges cheaply — never as
// served-converged. A mismatched or unrestorable record is skipped and
// counted — never merged, never fatal: the query it belonged to simply
// converges afresh.
func (s *Server) rehydrate(st *store.Store, only *tenantState) {
	for _, rec := range st.Records() {
		rec := rec
		var tn *tenantState
		if only != nil {
			if rec.Tenant != only.tag() {
				continue
			}
			tn = only
		} else if tn = s.tenantByTag(rec.Tenant); tn == nil {
			s.skippedRecords.Add(1)
			continue
		}
		if _, err := s.applyRecord(&rec, tn); err != nil {
			return // server closing mid-rehydration
		}
	}
}

// applyRecord identity-checks one convergence record and restores it into
// its owning shard's cache — the shared core of startup rehydration and
// peer-to-peer replication. It reports whether the session went live (a
// skipped record is not an error: the query it belonged to simply converges
// afresh) and errors only when the server is closing.
func (s *Server) applyRecord(rec *store.Record, tn *tenantState) (bool, error) {
	if tn.DBIdentity != rec.DBIdentity {
		s.skippedRecords.Add(1)
		return false, nil
	}
	sh := s.shardFor(rec.Fingerprint)
	if rec.HasCost && rec.CostParams != sh.eng.Params() {
		s.skippedRecords.Add(1)
		return false, nil
	}
	sess, err := rec.RestoreSession(sh.eng, s.cfg.Mutation)
	if err != nil {
		s.skippedRecords.Add(1)
		return false, nil
	}
	warm := rec.Epoch != tn.epoch.Load()
	var ok bool
	// Cache insertion under the shard's engine-ownership lock: at startup
	// it is uncontended; for runtime tenant addition and replicated records
	// it serializes against live serving on that shard.
	if err := s.do(sh, func() {
		if warm {
			ok = sess.ReopenForData(0) &&
				sh.cache.RestoreWarm(rec.Tenant, rec.Fingerprint, rec.Query, sess) != nil
		} else {
			ok = sh.cache.Restore(rec.Tenant, rec.Fingerprint, rec.Query, sess) != nil
		}
	}); err != nil {
		return false, err
	}
	switch {
	case !ok:
		s.skippedRecords.Add(1)
	case warm:
		s.warmSeeded.Add(1)
	default:
		s.rehydrated.Add(1)
	}
	return ok, nil
}

// ApplyRecord applies one replicated convergence record to the live serving
// state — the peer-to-peer equivalent of startup rehydration, with the same
// identity checks and warm-seed epoch semantics. A record whose fingerprint
// is already live in its shard's cache is left alone (the local session is
// at least as fresh). When a persistent store is configured the record is
// also written behind, so replicated plans survive this node's own restart.
// It reports whether the session went live.
func (s *Server) ApplyRecord(rec store.Record) bool {
	tn := s.tenantByTag(rec.Tenant)
	if tn == nil || tn.draining.Load() {
		s.skippedRecords.Add(1)
		return false
	}
	ok, err := s.applyRecord(&rec, tn)
	if err != nil || !ok {
		return false
	}
	if s.sync != nil {
		s.sync.Enqueue(rec)
	}
	return true
}

// Handler returns the HTTP handler tree (panic recovery outermost).
func (s *Server) Handler() http.Handler { return s.handler }

// Shards reports the pool width.
func (s *Server) Shards() int { return len(s.shards) }

// Close drains in-flight requests and releases the engines. Requests
// arriving afterwards fail with ErrClosed (503 over HTTP).
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	s.inflight.Wait()
	if s.sync != nil {
		// Drain the write-behind queue so every session that converged
		// before shutdown is durable. The store itself stays open — its
		// opener closes it after us.
		s.sync.Close()
	}
}

// shardFor pins a fingerprint to a shard. The hash is stable for a given
// fingerprint and pool width, so a query's session never migrates — its
// adaptive convergence happens on one deterministic virtual machine.
func (s *Server) shardFor(fp string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(fp))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// admissionSlots hands out client indices for the admission policy: a
// request takes the lowest free slot for its duration, so the "first
// client" of §4.2.4 is whoever currently holds slot 0 on that shard.
type admissionSlots struct {
	mu    sync.Mutex
	slots []bool
	peak  int
}

func (a *admissionSlots) acquire() (idx, active int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx = -1
	active = 1
	for i, used := range a.slots {
		if !used && idx < 0 {
			idx = i
		}
		if used {
			active++
		}
	}
	if idx < 0 {
		idx = len(a.slots)
		a.slots = append(a.slots, true)
	} else {
		a.slots[idx] = true
	}
	if active > a.peak {
		a.peak = active
	}
	return idx, active
}

func (a *admissionSlots) release(idx int) {
	a.mu.Lock()
	a.slots[idx] = false
	a.mu.Unlock()
}

func (a *admissionSlots) peakActive() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// QueryRequest is the POST /query body. Exactly one of Query (a named
// benchmark query) or SelectSum (an ad-hoc builder spec) must be set.
type QueryRequest struct {
	// Tenant routes the request to a named dataset (the X-APQ-Tenant header
	// is the equivalent; the body field wins). Empty or "default" queries
	// the server's primary database.
	Tenant string `json:"tenant,omitempty"`
	// Benchmark is "tpch" or "tpcds"; empty means the tenant's benchmark.
	Benchmark string `json:"benchmark,omitempty"`
	// Query is the named benchmark query number (e.g. 6 for TPC-H Q6).
	Query int `json:"query,omitempty"`
	// SelectSum builds the paper's §4.1 micro-benchmark shape ad hoc:
	// sum(column) over rows of table where lo ≤ column ≤ hi.
	SelectSum *SelectSumSpec `json:"select_sum,omitempty"`
	// Mode is "adaptive" (default: serve through the plan-session cache) or
	// "serial" (execute the serial plan cold, bypassing the cache — the
	// baseline the serving benchmark compares against).
	Mode string `json:"mode,omitempty"`
	// MaxCores is a client-declared core budget for this request (0 = no
	// limit): the execution runs as if admitted under that many cores. When
	// server-side admission control is on too, the smaller budget wins. A
	// converged session served persistently under a small client budget is
	// exactly the regime the workload-drift detector watches.
	MaxCores int `json:"max_cores,omitempty"`
	// SelectRows is SelectSum without the aggregation: fetch the matching
	// column values themselves. Its result is one column of every selected
	// row — the shape that exercises chunked APQRESULT streaming.
	SelectRows *SelectSumSpec `json:"select_rows,omitempty"`
	// Results asks for the columnar APQRESULT reply body (an Accept header
	// carrying ResultContentType is the equivalent). Off, the reply is the
	// JSON metadata only — existing clients are untouched.
	Results bool `json:"results,omitempty"`
}

// SelectSumSpec is the ad-hoc builder spec the service accepts over JSON.
type SelectSumSpec struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	Lo     *int64 `json:"lo,omitempty"`
	Hi     *int64 `json:"hi,omitempty"`
}

func (sp *SelectSumSpec) pred() algebra.Range {
	switch {
	case sp.Lo != nil && sp.Hi != nil:
		return algebra.Between(*sp.Lo, *sp.Hi)
	case sp.Lo != nil:
		return algebra.AtLeast(*sp.Lo)
	case sp.Hi != nil:
		return algebra.AtMost(*sp.Hi)
	default:
		return algebra.Between(algebra.NoLow, algebra.NoHigh)
	}
}

// key renders the spec's canonical identity for fingerprinting — the spec
// fields already determine the plan, so there is no need to build and
// render a plan per request just to compute the cache key. Built with
// append, not Sprintf: this runs on every select_sum/select_rows request.
// prefix namespaces the two query shapes sharing this spec type.
func (sp *SelectSumSpec) key(prefix string) string {
	buf := make([]byte, 0, 48+len(prefix)+len(sp.Table)+len(sp.Column))
	buf = append(buf, prefix...)
	buf = append(buf, sp.Table...)
	buf = append(buf, ':')
	buf = append(buf, sp.Column...)
	buf = append(buf, ':')
	buf = appendBound(buf, sp.Lo)
	buf = append(buf, ':')
	buf = appendBound(buf, sp.Hi)
	return string(buf)
}

func appendBound(buf []byte, p *int64) []byte {
	if p == nil {
		return append(buf, '-')
	}
	return strconv.AppendInt(buf, *p, 10)
}

// fpEntry is one cached (display name, fingerprint) resolution.
type fpEntry struct {
	name, fp string
}

// maxFPCache bounds the fingerprint cache; ad-hoc specs are unbounded in
// principle, so the cache resets rather than grow without limit.
const maxFPCache = 4096

// fingerprintFor memoizes the query-identity hash for a resolution key.
func (s *Server) fingerprintFor(key string, derive func() fpEntry) fpEntry {
	s.fpMu.Lock()
	e, ok := s.fpCache[key]
	s.fpMu.Unlock()
	if ok {
		return e
	}
	e = derive()
	s.fpMu.Lock()
	if len(s.fpCache) >= maxFPCache {
		s.fpCache = make(map[string]fpEntry)
	}
	s.fpCache[key] = e
	s.fpMu.Unlock()
	return e
}

func (sp *SelectSumSpec) build() *plan.Plan {
	b := plan.NewBuilder()
	col := b.Bind(sp.Table, sp.Column)
	sel := b.Select(col, sp.pred())
	vals := b.Fetch(sel, col)
	sum := b.Aggr(algebra.AggrSum, vals)
	b.Result(sum)
	return b.Plan()
}

// buildRows is the select_rows builder: the same scan predicate, but the
// fetched values are the result — no aggregation folds them down, so a wide
// selection yields a result column spanning many wire chunks.
func (sp *SelectSumSpec) buildRows() *plan.Plan {
	b := plan.NewBuilder()
	col := b.Bind(sp.Table, sp.Column)
	sel := b.Select(col, sp.pred())
	b.Result(b.Fetch(sel, col))
	return b.Plan()
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	Session     string `json:"session,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Query       string `json:"query"`
	// Tenant names the dataset served (omitted for the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Shard is the engine shard this query's fingerprint pins to.
	Shard int `json:"shard"`
	// State is "adapting", "converged", or "serial".
	State string `json:"state"`
	// Run is the adaptive run number this invocation executed. It is -1
	// for serial-mode requests, and for adapting requests served under a
	// throttled admission budget before the session's first adaptive run
	// (throttled invocations execute the current plan without counting as
	// adaptive runs).
	Run      int  `json:"run"`
	CacheHit bool `json:"cache_hit"`
	// LatencyNs is this invocation's virtual execution time.
	LatencyNs float64 `json:"latency_ns"`
	// BestLatencyNs is the session's global-minimum execution time so far.
	BestLatencyNs float64 `json:"best_latency_ns,omitempty"`
	// SerialLatencyNs is the session's run-0 baseline.
	SerialLatencyNs float64 `json:"serial_latency_ns,omitempty"`
	// Speedup is SerialLatencyNs / BestLatencyNs.
	Speedup float64 `json:"speedup,omitempty"`
	// DOP is the executed plan's degree of parallelism.
	DOP int `json:"dop"`
	// MaxCores is the admission-control budget applied (0 = unlimited).
	MaxCores  int `json:"max_cores"`
	NumValues int `json:"num_values"`
	// Degraded marks an invocation served frozen by an open shard breaker:
	// the learned plan executed, but no adaptation or staleness feedback
	// happened.
	Degraded bool `json:"degraded,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ioBuf is the pooled per-request I/O state: one buffer for draining the
// request body before decoding and for staging the JSON reply, plus an
// encoder bound to it. Request decoding dominates the serve hot path at
// small scale factors (ROADMAP), and json.NewDecoder/NewEncoder per request
// re-allocated both every time; the pool makes the HTTP framing
// allocation-free in steady state.
type ioBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var ioBufPool = sync.Pool{New: func() any {
	b := &ioBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// maxRequestBody bounds POST bodies (query specs are tiny); maxPooledBuf
// keeps an oversized buffer (huge trace reply, rejected large body) from
// being retained by the pool forever.
const (
	maxRequestBody = 1 << 20
	maxPooledBuf   = 1 << 20
)

func getIOBuf() *ioBuf {
	b := ioBufPool.Get().(*ioBuf)
	b.buf.Reset()
	return b
}

func putIOBuf(b *ioBuf) {
	if b.buf.Cap() <= maxPooledBuf {
		ioBufPool.Put(b)
	}
}

// reply stages v through the pooled buffer and writes it in one call.
func (b *ioBuf) reply(w http.ResponseWriter, code int, v any) {
	b.buf.Reset()
	if err := b.enc.Encode(v); err != nil {
		// Even the encode-failure fallback speaks the API's content type:
		// http.Error would answer text/plain, and clients that unmarshal
		// every body (the documented contract) would choke on the one reply
		// shape they can't parse.
		writeJSONError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	w.Write(b.buf.Bytes())
}

// retryAfter renders the shed reply's backoff hint: 1–3 seconds, jittered,
// so clients shed in one burst don't all come back on the same tick and
// re-create the overload they were shed from.
func (s *Server) retryAfter() string {
	r := s.randFn
	if r == nil {
		r = rand.Float64
	}
	secs := 1 + int(r()*3)
	if secs > 3 {
		secs = 3
	}
	return strconv.Itoa(secs)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, err error) {
	b := getIOBuf()
	defer putIOBuf(b)
	s.writeErrBuf(b, w, code, err)
}

// writeErrBuf is writeErr over a caller-held ioBuf: handleQuery reuses its
// body buffer for the reply instead of checking out a second one per
// request.
func (s *Server) writeErrBuf(b *ioBuf, w http.ResponseWriter, code int, err error) {
	s.statMu.Lock()
	s.errCount++
	s.statMu.Unlock()
	b.reply(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	b := getIOBuf()
	defer putIOBuf(b)
	b.reply(w, http.StatusOK, v)
}

// writeJSONError writes an errorResponse without a pooled buffer — the
// last-resort error path for when staging the real reply itself failed.
func writeJSONError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	msg, merr := json.Marshal(errorResponse{Error: err.Error()})
	if merr != nil {
		msg = []byte(`{"error":"internal error"}`)
	}
	w.Write(append(msg, '\n'))
}

// fpCacheKey namespaces a fingerprint-cache key by tenant. The default
// tenant keeps the bare key (no per-request concatenation on the
// single-tenant hot path); named tenants prefix their name.
func (s *Server) fpCacheKey(tn *tenantState, key string) string {
	if tn.def {
		return key
	}
	return tn.Name + "\x00" + key
}

// resolve maps a request to (query name, fingerprint, plan builder) against
// its tenant's dataset. The builder is deferred: plancache only calls it on
// a fingerprint miss, so the hot cached path never constructs a plan.
func (s *Server) resolve(tn *tenantState, req *QueryRequest) (name, fp string, build func() (*plan.Plan, error), err error) {
	bench := req.Benchmark
	if bench == "" {
		bench = tn.Benchmark
	}
	if bench != tn.Benchmark {
		return "", "", nil, fmt.Errorf("tenant %q serves %q, not %q", tn.displayName(), tn.Benchmark, bench)
	}
	if req.SelectSum != nil || req.SelectRows != nil {
		if req.Query != 0 || (req.SelectSum != nil && req.SelectRows != nil) {
			return "", "", nil, errors.New("set exactly one of query, select_sum, or select_rows")
		}
		shape, sel := "select_sum", req.SelectSum
		if req.SelectRows != nil {
			shape, sel = "select_rows", req.SelectRows
		}
		if sel.Table == "" || sel.Column == "" {
			return "", "", nil, fmt.Errorf("%s needs table and column", shape)
		}
		// Validate against the tenant's live catalog before the plan can
		// reach the cache: a bad spec must be a 400, not a cache insertion
		// (and possible eviction of a healthy session) followed by an
		// execution failure. Catalogs are immutable once published, so the
		// loaded pointer needs no lock.
		tbl, err := tn.curCatalog().Table(sel.Table)
		if err != nil {
			return "", "", nil, err
		}
		if _, err := tbl.Column(sel.Column); err != nil {
			return "", "", nil, err
		}
		spec, rows := *sel, req.SelectRows != nil
		e := s.fingerprintFor(s.fpCacheKey(tn, spec.key(shape+":")), func() fpEntry {
			return fpEntry{
				name: fmt.Sprintf("%s(%s.%s)", shape, spec.Table, spec.Column),
				fp:   plancache.Fingerprint(tn.DBIdentity, spec.key(shape+":")),
			}
		})
		if rows {
			return e.name, e.fp,
				func() (*plan.Plan, error) { return spec.buildRows(), nil }, nil
		}
		return e.name, e.fp,
			func() (*plan.Plan, error) { return spec.build(), nil }, nil
	}
	var (
		lookup  func(int) (*plan.Plan, error)
		numbers []int
	)
	switch bench {
	case "tpch":
		lookup, numbers = tpch.Query, tpch.QueryNumbers()
	case "tpcds":
		lookup, numbers = tpcds.Query, tpcds.QueryNumbers()
	}
	n := req.Query
	if n == 0 {
		return "", "", nil, errors.New("missing query number")
	}
	// Validate by number only — building the plan here would put full plan
	// construction on every cached request's path.
	if !slices.Contains(numbers, n) {
		return "", "", nil, fmt.Errorf("%s: query %d not implemented", bench, n)
	}
	e := s.fingerprintFor(s.fpCacheKey(tn, bench+":q"+strconv.Itoa(n)), func() fpEntry {
		name := fmt.Sprintf("%s:q%d", bench, n)
		return fpEntry{name: name, fp: plancache.Fingerprint(tn.DBIdentity, name)}
	})
	return e.name, e.fp,
		func() (*plan.Plan, error) { return lookup(n) }, nil
}

// FrozenHeader forces a request to serve from learned state only (the
// remote-shard InvokeFrozen transport); ForwardedHeader marks a request
// already routed by a peer's federation coordinator — the receiving node
// must serve it locally, never re-route it (no forwarding loops). Both are
// coordinator-to-node headers, exported for internal/cluster.
const (
	FrozenHeader    = "X-APQ-Frozen"
	ForwardedHeader = "X-APQ-Forwarded"
)

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	b := getIOBuf()
	defer putIOBuf(b)
	if _, err := b.buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxRequestBody)); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		s.writeErrBuf(b, w, code, fmt.Errorf("bad request body: %w", err))
		return
	}
	var req QueryRequest
	if err := json.Unmarshal(b.buf.Bytes(), &req); err != nil {
		s.writeErrBuf(b, w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	resp, vals, derr := s.dispatch(r.Context(), r.Header.Get("X-APQ-Tenant"), &req, r.Header.Get(FrozenHeader) == "1")
	if derr != nil {
		if derr.retry {
			// Shed and over-quota rejections both carry the jittered backoff
			// hint: clients bounced in one burst should not return in one.
			w.Header().Set("Retry-After", s.retryAfter())
		}
		s.writeErrBuf(b, w, derr.code, derr.err)
		return
	}
	if wantsResult(r.Header.Get("Accept"), &req) {
		// Columnar reply: the JSON metadata framed inside APQRESULT, then
		// every result value streamed chunk-by-chunk straight from the
		// published immutable buffers (result.go). Errors above still went
		// out as JSON — only success bodies change representation.
		meta, err := json.Marshal(&resp)
		if err != nil {
			s.writeErrBuf(b, w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", ResultContentType)
		n, _ := writeResult(w, meta, vals)
		// A mid-stream write error means the client hung up; the bytes that
		// made it out still count.
		s.resultBytes.Add(n)
		return
	}
	b.reply(w, http.StatusOK, resp)
}

// dispatchErr is a serve-path failure with its HTTP mapping: the status code
// and whether the reply should carry a Retry-After backoff hint.
type dispatchErr struct {
	code  int
	err   error
	retry bool
}

// flightKey identifies requests that may share one engine run: the
// fingerprint (which already encodes tenant, dataset identity, and the full
// query spec), the frozen-fidelity demand, and the client core budget —
// requests differing in any of these must not share a result.
type flightKey struct {
	fp     string
	frozen bool
	cores  int
}

// flight is one in-flight adaptive engine run. Waiters block on done, then
// share the leader's published result. The sharing is safe by the exec
// ownership contract: values reachable from a result instruction are
// allocated fresh per run and never pooled or rewritten, so a concurrent
// Evict/Retire on the session recycles only arenas and schedules, never the
// buffers waiters hold.
type flight struct {
	done chan struct{}
	resp QueryResponse
	vals []exec.Value
	derr *dispatchErr
}

// dispatch runs one decoded query request through the whole serve path below
// HTTP framing: tenant routing and admission, fingerprint resolution, shard
// pinning, single-flight coalescing, breaker fidelity, and engine
// invocation. It is the local implementation behind the ShardBackend seam —
// the HTTP handler and the in-process backend both call it, so a remote twin
// of this node computes bit-identical replies. forceFrozen overrides the
// breaker decision to serve learned state only (the InvokeFrozen fidelity).
// The returned values are the query's published result (shared, immutable;
// owned per the exec escape contract) — callers stream them as APQRESULT
// when the request negotiated it.
func (s *Server) dispatch(ctx context.Context, hdrTenant string, req *QueryRequest, forceFrozen bool) (QueryResponse, []exec.Value, *dispatchErr) {
	tenantName := req.Tenant
	if tenantName == "" {
		tenantName = hdrTenant
	}
	tn, err := s.tenantByName(tenantName)
	if err != nil {
		return QueryResponse{}, nil, &dispatchErr{code: http.StatusNotFound, err: err}
	}
	// The in-flight quota rejects before any engine work queues: a tenant
	// over its concurrency budget fails fast with 429 instead of stacking
	// requests on shard locks other tenants are waiting for. A tenant that
	// started draining between routing and admission is 404 — to the client
	// it no longer exists.
	if err := tn.acquire(); err != nil {
		tn.noteErr()
		code, retry := http.StatusTooManyRequests, true
		if errors.Is(err, errTenantDraining) {
			code, retry = http.StatusNotFound, false
		}
		return QueryResponse{}, nil, &dispatchErr{code: code, err: err, retry: retry}
	}
	defer tn.release()
	name, fp, build, err := s.resolve(tn, req)
	if err != nil {
		tn.noteErr()
		return QueryResponse{}, nil, &dispatchErr{code: http.StatusBadRequest, err: err}
	}
	s.statMu.Lock()
	s.queryCount++
	s.statMu.Unlock()

	// Shard pinning: the fingerprint decides the engine replica, so a
	// session's adaptive state lives (and converges deterministically) on
	// exactly one simulated machine. Tenants share the pool — the
	// fingerprint already incorporates the tenant's dataset identity.
	sh := s.shardFor(fp)

	// The request context carries the per-request deadline into shard
	// dispatch: a request that cannot reach its engine in time 503s instead
	// of queueing forever (the client's own cancellation flows through too).
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	switch req.Mode {
	case "", "adaptive":
		// Single-flight coalescing: when the shard is already busy (a request
		// holds or waits on its engine lock), an identical request joins the
		// in-flight run instead of queueing behind it — N concurrent clients
		// on one fingerprint cost one engine run, and every waiter shares the
		// leader's published immutable result. The busy gate keeps the
		// sequential hot path at one atomic load and zero allocations, and
		// means the first overlapping pair still runs twice (runs per burst ≈
		// contenders at the instant of arrival, far below total requests).
		if sh.waiting.Load() > 0 {
			k := flightKey{fp: fp, frozen: forceFrozen, cores: req.MaxCores}
			s.flightMu.Lock()
			if f, ok := s.flights[k]; ok {
				s.flightMu.Unlock()
				s.coalesced.Add(1)
				select {
				case <-f.done:
					if f.derr != nil {
						tn.noteErr()
						return QueryResponse{}, nil, f.derr
					}
					return f.resp, f.vals, nil
				case <-ctx.Done():
					// The waiter's own deadline expired before the leader
					// finished — same surface as a doCtx deadline expiry.
					s.res.deadlineExpiries.Add(1)
					tn.noteErr()
					return QueryResponse{}, nil, &dispatchErr{code: http.StatusServiceUnavailable, err: fmt.Errorf("server: %w", ctx.Err())}
				}
			}
			f := &flight{
				done: make(chan struct{}),
				// Pre-arm the failure outcome: if the leader panics out of
				// serveAdaptive, waiters must see an error, not a zero reply.
				derr: &dispatchErr{code: http.StatusInternalServerError, err: errors.New("server: coalesced engine run failed")},
			}
			s.flights[k] = f
			s.flightMu.Unlock()
			defer func() {
				s.flightMu.Lock()
				delete(s.flights, k)
				s.flightMu.Unlock()
				close(f.done)
			}()
			f.resp, f.vals, f.derr = s.serveAdaptive(ctx, tn, sh, req, fp, name, build, forceFrozen)
			return f.resp, f.vals, f.derr
		}
		return s.serveAdaptive(ctx, tn, sh, req, fp, name, build, forceFrozen)
	case "serial":
		// Serial mode is the cold baseline the serving benchmark compares
		// against — coalescing it would fabricate the very sharing the
		// baseline exists to exclude, so it always runs.
		opts := s.jobOpts(tn, sh, req)
		if s.cfg.Admission {
			defer sh.adm.release(opts.slot)
		}
		var (
			vals []exec.Value
			prof *exec.Profile
		)
		doErr := s.doCtx(ctx, sh, func() {
			var p *plan.Plan
			if p, err = build(); err == nil {
				vals, prof, err = sh.eng.ExecuteOpts(p, opts.JobOptions)
				// One-shot plan: retire it immediately so its compiled
				// schedule doesn't churn the engine cache and its buffers
				// feed the next cold request through the recycler. Result
				// values stay valid: they escape per the exec contract.
				sh.eng.Retire(p)
			}
		})
		if doErr != nil {
			tn.noteErr()
			return QueryResponse{}, nil, &dispatchErr{code: http.StatusServiceUnavailable, err: doErr, retry: sheddable(doErr)}
		}
		if err != nil {
			tn.noteErr()
			return QueryResponse{}, nil, &dispatchErr{code: http.StatusInternalServerError, err: err}
		}
		return QueryResponse{
			Query:     name,
			Tenant:    tn.tag(),
			Shard:     sh.id,
			State:     "serial",
			Run:       -1,
			LatencyNs: prof.Makespan(),
			DOP:       1,
			MaxCores:  opts.MaxCores,
			NumValues: len(vals),
		}, vals, nil
	default:
		tn.noteErr()
		return QueryResponse{}, nil, &dispatchErr{code: http.StatusBadRequest, err: fmt.Errorf("unknown mode %q", req.Mode)}
	}
}

// jobOptions is exec.JobOptions plus the admission slot that produced its
// core budget (slot is only meaningful when Config.Admission is on; the
// caller releases it after the engine run).
type jobOptions struct {
	exec.JobOptions
	slot int
}

// jobOpts binds a request's execution options: the tenant's catalog, the
// admission-control core budget (acquiring an admission slot the caller must
// release), and the client's own core cap — the smaller budget wins.
func (s *Server) jobOpts(tn *tenantState, sh *shard, req *QueryRequest) jobOptions {
	opts := jobOptions{JobOptions: exec.JobOptions{Catalog: tn.jobCatalog()}}
	if s.cfg.Admission {
		idx, active := sh.adm.acquire()
		opts.slot = idx
		cores := sh.eng.Machine().Config().LogicalCores()
		opts.MaxCores = vectorwise.AdmissionMaxCores(idx, active, cores)
		if s.admitHook != nil {
			s.admitHook()
		}
	}
	if req.MaxCores > 0 && (opts.MaxCores == 0 || req.MaxCores < opts.MaxCores) {
		opts.MaxCores = req.MaxCores
	}
	return opts
}

// serveAdaptive runs one adaptive invocation on its shard: admission,
// breaker fidelity, engine run, response assembly. Exactly one goroutine
// runs this per coalesced flight — waiters never reach it.
func (s *Server) serveAdaptive(ctx context.Context, tn *tenantState, sh *shard, req *QueryRequest, fp, name string, build func() (*plan.Plan, error), forceFrozen bool) (QueryResponse, []exec.Value, *dispatchErr) {
	opts := s.jobOpts(tn, sh, req)
	if s.cfg.Admission {
		defer sh.adm.release(opts.slot)
	}
	// The shard's health breaker decides the invocation's fidelity: a
	// degraded shard serves frozen (learned plans, no exploration) until
	// its cooldown admits a half-open probe. A forced-frozen request
	// (remote InvokeFrozen) is the degraded mode by demand — it never
	// feeds the breaker, exactly like breaker-frozen servings.
	mode := brkNormal
	if forceFrozen {
		mode = brkFrozen
	} else if s.cfg.BreakerFailures > 0 {
		mode = sh.brk.admit(s.cfg.BreakerCooldown)
	}
	var (
		res *plancache.Result
		sum core.Summary
		err error
	)
	doErr := s.doCtx(ctx, sh, func() {
		if mode == brkFrozen {
			res, err = sh.cache.InvokeTenantFrozen(tn.tag(), fp, name, build, opts.JobOptions)
		} else {
			res, err = sh.cache.InvokeTenant(tn.tag(), fp, name, build, opts.JobOptions)
		}
		if err == nil {
			// Snapshot under the shard lock: another request may step
			// this session the moment we release it.
			sum = res.Entry.Session.Summary()
		}
	})
	if doErr != nil {
		if s.cfg.BreakerFailures > 0 {
			// Shed, deadline-expired, or closed: the shard never answered
			// at full fidelity — a probe that hit this stays open.
			sh.brk.record(mode, true, s.cfg.BreakerFailures)
		}
		tn.noteErr()
		return QueryResponse{}, nil, &dispatchErr{code: http.StatusServiceUnavailable, err: doErr, retry: sheddable(doErr)}
	}
	if err != nil {
		if s.cfg.BreakerFailures > 0 {
			sh.brk.record(mode, true, s.cfg.BreakerFailures)
		}
		tn.noteErr()
		return QueryResponse{}, nil, &dispatchErr{code: http.StatusInternalServerError, err: err}
	}
	if s.cfg.BreakerFailures > 0 {
		slow := s.cfg.SlowFactor > 0 && sum.SerialNs > 0 &&
			res.Invocation.LatencyNs > s.cfg.SlowFactor*sum.SerialNs
		sh.brk.record(mode, slow, s.cfg.BreakerFailures)
	}
	resp := QueryResponse{
		Session:         res.Entry.ID,
		Fingerprint:     fp,
		Query:           name,
		Tenant:          tn.tag(),
		Shard:           sh.id,
		State:           "adapting",
		Run:             res.Invocation.Run,
		CacheHit:        !res.Created,
		LatencyNs:       res.Invocation.LatencyNs,
		BestLatencyNs:   sum.GMENs,
		SerialLatencyNs: sum.SerialNs,
		Speedup:         sum.Speedup(),
		DOP:             res.Invocation.DOP,
		MaxCores:        opts.MaxCores,
		NumValues:       len(res.Values),
	}
	if res.Invocation.Converged {
		resp.State = "converged"
	}
	resp.Degraded = res.Invocation.Frozen
	return resp, res.Values, nil
}

// SessionInfo is one GET /sessions list element.
type SessionInfo struct {
	Session     string  `json:"session"`
	Fingerprint string  `json:"fingerprint"`
	Query       string  `json:"query"`
	Tenant      string  `json:"tenant,omitempty"`
	Shard       int     `json:"shard"`
	State       string  `json:"state"`
	Runs        int     `json:"runs"`
	Hits        int64   `json:"hits"`
	BestNs      float64 `json:"best_latency_ns"`
	SerialNs    float64 `json:"serial_latency_ns"`
	Speedup     float64 `json:"speedup"`
	BestDOP     int     `json:"best_dop"`
}

func sessionInfo(sh *shard, e *plancache.Entry) SessionInfo {
	rep := e.Session.Report()
	info := SessionInfo{
		Session:     e.ID,
		Fingerprint: e.Fingerprint,
		Query:       e.Query,
		Tenant:      e.Tenant,
		Shard:       sh.id,
		State:       "adapting",
		Runs:        rep.TotalRuns,
		Hits:        e.Hits(),
		BestNs:      rep.GMENs,
		SerialNs:    rep.SerialNs,
		Speedup:     rep.Speedup(),
	}
	if rep.BestPlan != nil {
		info.BestDOP = rep.BestPlan.MaxDOP()
	}
	if e.Session.Done() {
		info.State = "converged"
	}
	return info
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	// ?tenant= scopes the listing to one tenant's sessions ("default" = the
	// primary database). Absent means every tenant; an unknown name is the
	// same 404 POST /query would give it.
	filter := ""
	filtered := false
	if v, ok := r.URL.Query()["tenant"]; ok {
		filtered = true
		name := ""
		if len(v) > 0 {
			name = v[0]
		}
		tn, err := s.tenantFor(r, name)
		if err != nil {
			s.writeErr(w, http.StatusNotFound, err)
			return
		}
		filter = tn.tag()
	}
	out := []SessionInfo{}
	for _, sh := range s.shards {
		// Report() walks session state that executions on this shard
		// mutate; read it under the shard lock.
		if err := s.do(sh, func() {
			for _, e := range sh.cache.List() {
				if filtered && e.Tenant != filter {
					continue
				}
				out = append(out, sessionInfo(sh, e))
			}
		}); err != nil {
			s.writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
	}
	writeJSON(w, out)
}

// TraceResponse is the GET /sessions/{id}/trace reply: the session's full
// convergence trace (Figure 18 quantities) plus the served-invocation log.
type TraceResponse struct {
	SessionInfo
	// History is the per-run execution time, index = run number.
	History []float64 `json:"history_ns"`
	// GMERun is the run that achieved the global minimum.
	GMERun int `json:"gme_run"`
	// Outliers are runs forgiven as noise peaks (§3.3.3).
	Outliers []int `json:"outliers,omitempty"`
	// Invocations logs every served request against this session.
	Invocations []plancache.Invocation `json:"invocations"`
}

func (s *Server) handleSessionTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
	id, tail, ok := strings.Cut(rest, "/")
	if !ok || tail != "trace" || id == "" {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("no route %q (want /sessions/{id}/trace)", r.URL.Path))
		return
	}
	var (
		resp  TraceResponse
		found bool
	)
	for _, sh := range s.shards {
		if sh.cache.Get(id) == nil {
			continue
		}
		if err := s.do(sh, func() {
			e := sh.cache.Get(id)
			if e == nil {
				return // evicted between lookup and loop entry
			}
			found = true
			rep := e.Session.Report()
			resp = TraceResponse{
				SessionInfo: sessionInfo(sh, e),
				History:     rep.History,
				GMERun:      rep.GMERun,
				Outliers:    rep.Outliers,
				Invocations: e.Trace(),
			}
		}); err != nil {
			s.writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		break
	}
	if !found {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	writeJSON(w, resp)
}

// ShardStats is one shard's slice of the GET /stats reply.
type ShardStats struct {
	Shard        int             `json:"shard"`
	VirtualNowNs float64         `json:"virtual_now_ns"`
	PeakClients  int             `json:"peak_concurrent_clients"`
	Cache        plancache.Stats `json:"cache"`
	// Recycler reports the shard engine's size-classed buffer pool (hit and
	// miss counters per size class); Compile counts full vs incremental
	// plan compilations. Both are atomic-counter snapshots.
	Recycler exec.RecyclerStats `json:"recycler"`
	Compile  exec.CompileStats  `json:"compile"`
	// Faults reports the shard machine's fault-injection counters.
	Faults sim.FaultStats `json:"faults"`
}

// StatsResponse is the GET /stats reply. Cache counters are aggregated
// across shards; VirtualNowNs and PeakClients report the busiest shard.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	VirtualNowNs  float64 `json:"virtual_now_ns"`
	Benchmark     string  `json:"benchmark"`
	DBIdentity    string  `json:"db_identity"`
	QueryRequests int64   `json:"query_requests"`
	Errors        int64   `json:"errors"`
	// CoalescedRequests counts /query requests served by joining another
	// identical in-flight engine run (single-flight coalescing) instead of
	// running the engine themselves; ResultBytesSent counts APQRESULT
	// payload bytes written to clients.
	CoalescedRequests int64           `json:"coalesced_requests"`
	ResultBytesSent   int64           `json:"result_bytes_sent"`
	Admission         bool            `json:"admission"`
	PeakClients       int             `json:"peak_concurrent_clients"`
	Cores             int             `json:"logical_cores"`
	Shards            int             `json:"shards"`
	Cache             plancache.Stats `json:"cache"`
	PerShard          []ShardStats    `json:"per_shard"`
	// Tenants breaks the serving counters down per tenant (default tenant
	// first, then config order); cache counters aggregate across shards.
	Tenants []TenantStatsInfo `json:"tenants"`
	// Store reports the persistent convergence store (absent when the
	// server runs without one).
	Store *StoreStatsInfo `json:"store,omitempty"`
	// Resilience aggregates fault-injection and overload-hardening counters
	// (resilience.go).
	Resilience ResilienceStats `json:"resilience"`
	// Lifecycle counts admin mutations and tenant churn (admin.go).
	Lifecycle LifecycleStats `json:"lifecycle"`
	// Cluster is the federation coordinator's block (Config.ClusterStats;
	// absent on an unfederated daemon).
	Cluster any `json:"cluster,omitempty"`
}

// LifecycleStats is the GET /stats "lifecycle" block: counters for the
// /admin mutation and tenant-lifecycle surface.
type LifecycleStats struct {
	// TenantsAdded / TenantsRemoved count runtime tenant churn.
	TenantsAdded   int64 `json:"tenants_added"`
	TenantsRemoved int64 `json:"tenants_removed"`
	// Appends / Deletes count dataset mutations (each bumped an epoch).
	Appends int64 `json:"appends"`
	Deletes int64 `json:"deletes"`
}

// StoreStatsInfo is the /stats view of the persistent convergence store:
// the store file's own counters plus the serving-side rehydration and
// write-behind state.
type StoreStatsInfo struct {
	store.Stats
	// RehydratedSessions counts sessions restored into the shard caches
	// (startup plus runtime tenant additions); WarmSeededSessions counts
	// records whose dataset epoch mismatched the live tenant's and came
	// back as warm seeds instead of served-converged; SkippedRecords counts
	// records refused by the identity, calibration, or integrity checks.
	RehydratedSessions int64 `json:"rehydrated_sessions"`
	WarmSeededSessions int64 `json:"warm_seeded_sessions,omitempty"`
	SkippedRecords     int64 `json:"skipped_records,omitempty"`
	// WriteBehindQueueDepth is the synchronizer backlog (records accepted
	// but not yet durable); RecordsWritten counts durable write-behind
	// records since start.
	WriteBehindQueueDepth int `json:"write_behind_queue_depth"`
	RecordsWritten        int `json:"records_written"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	resp, err := s.statsResponse()
	if err != nil {
		s.writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, resp)
}

// statsResponse assembles the GET /stats reply — shared by the HTTP handler
// and the in-process ShardBackend. It errors only when the server is closing
// mid-snapshot.
func (s *Server) statsResponse() (StatsResponse, error) {
	s.statMu.Lock()
	queries, errs := s.queryCount, s.errCount
	s.statMu.Unlock()
	resp := StatsResponse{
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Benchmark:         s.cfg.Benchmark,
		DBIdentity:        s.cfg.DBIdentity,
		QueryRequests:     queries,
		Errors:            errs,
		CoalescedRequests: s.coalesced.Load(),
		ResultBytesSent:   s.resultBytes.Load(),
		Admission:         s.cfg.Admission,
		Cores:             s.shards[0].eng.Machine().Config().LogicalCores(),
		Shards:            len(s.shards),
	}
	// Per-tenant rows start from the tenant request counters; shard-cache
	// slices merge in below under each shard's lock. The list is copied
	// under tenantMu — lifecycle operations mutate it at runtime.
	s.tenantMu.RLock()
	tenantList := slices.Clone(s.tenantList)
	s.tenantMu.RUnlock()
	tenantIdx := make(map[string]int, len(tenantList))
	for i, tn := range tenantList {
		resp.Tenants = append(resp.Tenants, tn.statsInfo())
		tenantIdx[tn.tag()] = i
	}
	for _, sh := range s.shards {
		st := ShardStats{
			Shard:       sh.id,
			PeakClients: sh.adm.peakActive(),
			// Atomic counters: readable without the engine-ownership lock.
			Recycler: sh.eng.RecyclerStats(),
			Compile:  sh.eng.CompileStats(),
		}
		var tstats map[string]plancache.Stats
		// The virtual clock, cache stats, and fault counters read state that
		// executions on this shard mutate; read them under the shard lock.
		if err := s.do(sh, func() {
			st.VirtualNowNs = sh.eng.Machine().Now()
			st.Cache = sh.cache.Stats()
			st.Faults = sh.eng.Machine().Faults()
			tstats = sh.cache.TenantStats()
		}); err != nil {
			return StatsResponse{}, err
		}
		for tag, tst := range tstats {
			if i, ok := tenantIdx[tag]; ok {
				tc := &resp.Tenants[i].Cache
				tc.Entries += tst.Entries
				tc.Hits += tst.Hits
				tc.Misses += tst.Misses
				tc.Evictions += tst.Evictions
				tc.Converged += tst.Converged
				tc.Rehydrated += tst.Rehydrated
				tc.Reconvergences += tst.Reconvergences
				tc.DataReopens += tst.DataReopens
				tc.DriftReopens += tst.DriftReopens
				tc.WarmSeeds += tst.WarmSeeds
			}
		}
		resp.PerShard = append(resp.PerShard, st)
		resp.Cache.Entries += st.Cache.Entries
		resp.Cache.Hits += st.Cache.Hits
		resp.Cache.Misses += st.Cache.Misses
		resp.Cache.Evictions += st.Cache.Evictions
		resp.Cache.Converged += st.Cache.Converged
		resp.Cache.Rehydrated += st.Cache.Rehydrated
		resp.Cache.Reconvergences += st.Cache.Reconvergences
		resp.Cache.DataReopens += st.Cache.DataReopens
		resp.Cache.DriftReopens += st.Cache.DriftReopens
		resp.Cache.WarmSeeds += st.Cache.WarmSeeds
		if st.VirtualNowNs > resp.VirtualNowNs {
			resp.VirtualNowNs = st.VirtualNowNs
		}
		if st.PeakClients > resp.PeakClients {
			resp.PeakClients = st.PeakClients
		}
		resp.Resilience.FaultsInjected += st.Faults.Injected
		resp.Resilience.CoresLost += st.Faults.CoresLost
		brState, brTrips, brFails := sh.brk.snapshot()
		resp.Resilience.Breakers = append(resp.Resilience.Breakers, BreakerInfo{
			Shard: sh.id, State: brState.String(), Trips: brTrips, Failures: brFails,
		})
	}
	resp.Resilience.Reconvergences = resp.Cache.Reconvergences
	resp.Resilience.DeadlineExpiries = s.res.deadlineExpiries.Load()
	resp.Resilience.ShedRequests = s.res.shed.Load()
	resp.Resilience.PanicsRecovered = s.res.panics.Load()
	if s.cfg.Store != nil {
		resp.Store = &StoreStatsInfo{
			Stats:                 s.cfg.Store.Stats(),
			RehydratedSessions:    s.rehydrated.Load(),
			WarmSeededSessions:    s.warmSeeded.Load(),
			SkippedRecords:        s.skippedRecords.Load(),
			WriteBehindQueueDepth: s.sync.QueueDepth(),
			RecordsWritten:        s.sync.Written(),
		}
	}
	resp.Lifecycle = LifecycleStats{
		TenantsAdded:   s.life.tenantsAdded.Load(),
		TenantsRemoved: s.life.tenantsRemoved.Load(),
		Appends:        s.life.appends.Load(),
		Deletes:        s.life.deletes.Load(),
	}
	if s.cfg.ClusterStats != nil {
		resp.Cluster = s.cfg.ClusterStats()
	}
	return resp, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := s.healthResponse()
	code := http.StatusOK
	if !resp.OK {
		code = http.StatusServiceUnavailable
	}
	b := getIOBuf()
	defer putIOBuf(b)
	b.reply(w, code, resp)
}

// healthResponse assembles the GET /healthz reply — shared by the HTTP
// handler and the in-process ShardBackend.
func (s *Server) healthResponse() HealthResponse {
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	resp := HealthResponse{OK: !closed}
	for _, sh := range s.shards {
		st, _, _ := sh.brk.snapshot()
		degraded := st != brkClosed
		if degraded {
			resp.OK = false
		}
		resp.Shards = append(resp.Shards, ShardHealth{
			Shard: sh.id, Breaker: st.String(), Degraded: degraded,
		})
	}
	if s.sync != nil {
		depth := s.sync.QueueDepth()
		resp.StoreQueueDepth = &depth
	}
	return resp
}
