// Package server implements apqd's HTTP query service: a long-lived daemon
// that keeps adaptive-parallelization state alive between requests. The
// paper's workflow ("optimize once and execute many, adaptively") only pays
// off in a serving context — each request against a cached query is one
// adaptive run, so a query's latency drops request-over-request as its
// session converges on the global-minimum plan.
//
// Concurrency model. The discrete-event virtual-time machine underneath the
// execution engine is single-threaded: stepping it from two goroutines
// corrupts its event queue and clock. The server therefore owns the engine
// behind a run-loop goroutine; handler goroutines enqueue closures and wait.
// Admission control is layered on top: concurrently arriving clients take
// numbered slots and their queries execute under a Vectorwise-style
// per-client core budget (vectorwise.AdmissionMaxCores, §4.2.4) — the first
// client keeps the whole machine, later ones degrade toward serial.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/tpcds"
	"repro/internal/tpch"
	"repro/internal/vectorwise"
)

// ErrClosed reports a request against a server that has shut down.
var ErrClosed = errors.New("server: closed")

// Config configures a Server.
type Config struct {
	// Engine is the execution engine over the loaded database. The server
	// takes ownership: all executions must go through the server.
	Engine *exec.Engine
	// DBIdentity names the dataset for fingerprinting, e.g.
	// "tpch:sf=1:seed=42". Fingerprints must change when the data does.
	DBIdentity string
	// Benchmark is the loaded benchmark ("tpch" or "tpcds"); named-query
	// requests for the other benchmark are rejected up front.
	Benchmark string
	// Admission enables the Vectorwise-style admission-control scheme for
	// concurrent clients.
	Admission bool
	// CacheSize bounds the plan-session cache (0 = unlimited).
	CacheSize int
	// Mutation and Convergence tune adaptive sessions (zero = defaults).
	Mutation    core.MutationConfig
	Convergence core.ConvergenceConfig
}

// Server is the query-service daemon core: an HTTP handler set over one
// engine, one plan-session cache, and one admission controller.
type Server struct {
	cfg   Config
	cache *plancache.Cache
	mux   *http.ServeMux
	start time.Time

	reqs     chan func()
	quit     chan struct{}
	loopDone chan struct{}

	closeMu  sync.RWMutex
	closed   bool
	inflight sync.WaitGroup

	adm admissionSlots

	statMu     sync.Mutex
	queryCount int64
	errCount   int64

	// admitHook, when non-nil, runs between admission-slot acquisition and
	// engine dispatch — a test seam that makes concurrent admission
	// observable deterministically on single-CPU machines.
	admitHook func()
}

// New creates a Server and starts its engine run-loop.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	switch cfg.Benchmark {
	case "":
		cfg.Benchmark = "tpch"
	case "tpch", "tpcds":
	default:
		return nil, fmt.Errorf("server: unknown benchmark %q (want tpch or tpcds)", cfg.Benchmark)
	}
	if cfg.DBIdentity == "" {
		cfg.DBIdentity = cfg.Benchmark
	}
	s := &Server{
		cfg: cfg,
		cache: plancache.New(cfg.Engine, plancache.Config{
			MaxEntries:  cfg.CacheSize,
			Mutation:    cfg.Mutation,
			Convergence: cfg.Convergence,
		}),
		start:    time.Now(),
		reqs:     make(chan func()),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/sessions", s.handleSessions)
	s.mux.HandleFunc("/sessions/", s.handleSessionTrace)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	go s.loop()
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the engine run-loop after draining in-flight requests.
// Requests arriving afterwards fail with ErrClosed (503 over HTTP).
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	s.inflight.Wait()
	close(s.quit)
	<-s.loopDone
}

// loop is the engine owner: the only goroutine that ever touches the
// single-threaded virtual-time machine.
func (s *Server) loop() {
	defer close(s.loopDone)
	for {
		select {
		case f := <-s.reqs:
			f()
		case <-s.quit:
			return
		}
	}
}

// do runs f on the engine run-loop and waits for it.
func (s *Server) do(f func()) error {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return ErrClosed
	}
	s.inflight.Add(1)
	s.closeMu.RUnlock()
	defer s.inflight.Done()
	done := make(chan struct{})
	s.reqs <- func() {
		defer close(done)
		f()
	}
	<-done
	return nil
}

// admissionSlots hands out client indices for the admission policy: a
// request takes the lowest free slot for its duration, so the "first
// client" of §4.2.4 is whoever currently holds slot 0.
type admissionSlots struct {
	mu    sync.Mutex
	slots []bool
	peak  int
}

func (a *admissionSlots) acquire() (idx, active int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx = -1
	active = 1
	for i, used := range a.slots {
		if !used && idx < 0 {
			idx = i
		}
		if used {
			active++
		}
	}
	if idx < 0 {
		idx = len(a.slots)
		a.slots = append(a.slots, true)
	} else {
		a.slots[idx] = true
	}
	if active > a.peak {
		a.peak = active
	}
	return idx, active
}

func (a *admissionSlots) release(idx int) {
	a.mu.Lock()
	a.slots[idx] = false
	a.mu.Unlock()
}

func (a *admissionSlots) peakActive() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// QueryRequest is the POST /query body. Exactly one of Query (a named
// benchmark query) or SelectSum (an ad-hoc builder spec) must be set.
type QueryRequest struct {
	// Benchmark is "tpch" or "tpcds"; empty means the server's benchmark.
	Benchmark string `json:"benchmark,omitempty"`
	// Query is the named benchmark query number (e.g. 6 for TPC-H Q6).
	Query int `json:"query,omitempty"`
	// SelectSum builds the paper's §4.1 micro-benchmark shape ad hoc:
	// sum(column) over rows of table where lo ≤ column ≤ hi.
	SelectSum *SelectSumSpec `json:"select_sum,omitempty"`
	// Mode is "adaptive" (default: serve through the plan-session cache) or
	// "serial" (execute the serial plan cold, bypassing the cache — the
	// baseline the serving benchmark compares against).
	Mode string `json:"mode,omitempty"`
}

// SelectSumSpec is the ad-hoc builder spec the service accepts over JSON.
type SelectSumSpec struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	Lo     *int64 `json:"lo,omitempty"`
	Hi     *int64 `json:"hi,omitempty"`
}

func (sp *SelectSumSpec) pred() algebra.Range {
	switch {
	case sp.Lo != nil && sp.Hi != nil:
		return algebra.Between(*sp.Lo, *sp.Hi)
	case sp.Lo != nil:
		return algebra.AtLeast(*sp.Lo)
	case sp.Hi != nil:
		return algebra.AtMost(*sp.Hi)
	default:
		return algebra.Between(algebra.NoLow, algebra.NoHigh)
	}
}

// key renders the spec's canonical identity for fingerprinting — the spec
// fields already determine the plan, so there is no need to build and
// render a plan per request just to compute the cache key.
func (sp *SelectSumSpec) key() string {
	bound := func(p *int64) string {
		if p == nil {
			return "-"
		}
		return fmt.Sprintf("%d", *p)
	}
	return fmt.Sprintf("select_sum:%s:%s:%s:%s", sp.Table, sp.Column, bound(sp.Lo), bound(sp.Hi))
}

func (sp *SelectSumSpec) build() *plan.Plan {
	b := plan.NewBuilder()
	col := b.Bind(sp.Table, sp.Column)
	sel := b.Select(col, sp.pred())
	vals := b.Fetch(sel, col)
	sum := b.Aggr(algebra.AggrSum, vals)
	b.Result(sum)
	return b.Plan()
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	Session     string `json:"session,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Query       string `json:"query"`
	// State is "adapting", "converged", or "serial".
	State string `json:"state"`
	// Run is the adaptive run number this invocation executed. It is -1
	// for serial-mode requests, and for adapting requests served under a
	// throttled admission budget before the session's first adaptive run
	// (throttled invocations execute the current plan without counting as
	// adaptive runs).
	Run      int  `json:"run"`
	CacheHit bool `json:"cache_hit"`
	// LatencyNs is this invocation's virtual execution time.
	LatencyNs float64 `json:"latency_ns"`
	// BestLatencyNs is the session's global-minimum execution time so far.
	BestLatencyNs float64 `json:"best_latency_ns,omitempty"`
	// SerialLatencyNs is the session's run-0 baseline.
	SerialLatencyNs float64 `json:"serial_latency_ns,omitempty"`
	// Speedup is SerialLatencyNs / BestLatencyNs.
	Speedup float64 `json:"speedup,omitempty"`
	// DOP is the executed plan's degree of parallelism.
	DOP int `json:"dop"`
	// MaxCores is the admission-control budget applied (0 = unlimited).
	MaxCores  int `json:"max_cores"`
	NumValues int `json:"num_values"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeErr(w http.ResponseWriter, code int, err error) {
	s.statMu.Lock()
	s.errCount++
	s.statMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// resolve maps a request to (query name, fingerprint, plan builder). The
// builder is deferred: plancache only calls it on a fingerprint miss, so
// the hot cached path never constructs a plan.
func (s *Server) resolve(req *QueryRequest) (name, fp string, build func() (*plan.Plan, error), err error) {
	bench := req.Benchmark
	if bench == "" {
		bench = s.cfg.Benchmark
	}
	if bench != s.cfg.Benchmark {
		return "", "", nil, fmt.Errorf("this daemon serves %q, not %q", s.cfg.Benchmark, bench)
	}
	if req.SelectSum != nil {
		if req.Query != 0 {
			return "", "", nil, errors.New("set either query or select_sum, not both")
		}
		if req.SelectSum.Table == "" || req.SelectSum.Column == "" {
			return "", "", nil, errors.New("select_sum needs table and column")
		}
		// Validate against the catalog before the plan can reach the cache:
		// a bad spec must be a 400, not a cache insertion (and possible
		// eviction of a healthy session) followed by an execution failure.
		tbl, err := s.cfg.Engine.Catalog().Table(req.SelectSum.Table)
		if err != nil {
			return "", "", nil, err
		}
		if _, err := tbl.Column(req.SelectSum.Column); err != nil {
			return "", "", nil, err
		}
		spec := *req.SelectSum
		name = fmt.Sprintf("select_sum(%s.%s)", spec.Table, spec.Column)
		return name, plancache.Fingerprint(s.cfg.DBIdentity, spec.key()),
			func() (*plan.Plan, error) { return spec.build(), nil }, nil
	}
	var (
		lookup  func(int) (*plan.Plan, error)
		numbers []int
	)
	switch bench {
	case "tpch":
		lookup, numbers = tpch.Query, tpch.QueryNumbers()
	case "tpcds":
		lookup, numbers = tpcds.Query, tpcds.QueryNumbers()
	}
	n := req.Query
	if n == 0 {
		return "", "", nil, errors.New("missing query number")
	}
	// Validate by number only — building the plan here would put full plan
	// construction on every cached request's path.
	if !slices.Contains(numbers, n) {
		return "", "", nil, fmt.Errorf("%s: query %d not implemented", bench, n)
	}
	name = fmt.Sprintf("%s:q%d", bench, n)
	return name, plancache.Fingerprint(s.cfg.DBIdentity, name),
		func() (*plan.Plan, error) { return lookup(n) }, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	name, fp, build, err := s.resolve(&req)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.statMu.Lock()
	s.queryCount++
	s.statMu.Unlock()

	var opts exec.JobOptions
	if s.cfg.Admission {
		idx, active := s.adm.acquire()
		defer s.adm.release(idx)
		cores := s.cfg.Engine.Machine().Config().LogicalCores()
		opts.MaxCores = vectorwise.AdmissionMaxCores(idx, active, cores)
		if s.admitHook != nil {
			s.admitHook()
		}
	}

	switch req.Mode {
	case "", "adaptive":
		var (
			res *plancache.Result
			rep *core.Report
		)
		doErr := s.do(func() {
			res, err = s.cache.Invoke(fp, name, build, opts)
			if err == nil {
				// Snapshot the report on the run-loop: another request may
				// step this session the moment we yield the loop.
				rep = res.Entry.Session.Report()
			}
		})
		if doErr != nil {
			s.writeErr(w, http.StatusServiceUnavailable, doErr)
			return
		}
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, err)
			return
		}
		resp := QueryResponse{
			Session:         res.Entry.ID,
			Fingerprint:     fp,
			Query:           name,
			State:           "adapting",
			Run:             res.Invocation.Run,
			CacheHit:        !res.Created,
			LatencyNs:       res.Invocation.LatencyNs,
			BestLatencyNs:   rep.GMENs,
			SerialLatencyNs: rep.SerialNs,
			Speedup:         rep.Speedup(),
			DOP:             res.Invocation.DOP,
			MaxCores:        opts.MaxCores,
			NumValues:       len(res.Values),
		}
		if res.Invocation.Converged {
			resp.State = "converged"
		}
		writeJSON(w, resp)
	case "serial":
		var (
			vals []exec.Value
			prof *exec.Profile
		)
		doErr := s.do(func() {
			var p *plan.Plan
			if p, err = build(); err == nil {
				vals, prof, err = s.cfg.Engine.ExecuteOpts(p, opts)
			}
		})
		if doErr != nil {
			s.writeErr(w, http.StatusServiceUnavailable, doErr)
			return
		}
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, QueryResponse{
			Query:     name,
			State:     "serial",
			Run:       -1,
			LatencyNs: prof.Makespan(),
			DOP:       1,
			MaxCores:  opts.MaxCores,
			NumValues: len(vals),
		})
	default:
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q", req.Mode))
	}
}

// SessionInfo is one GET /sessions list element.
type SessionInfo struct {
	Session     string  `json:"session"`
	Fingerprint string  `json:"fingerprint"`
	Query       string  `json:"query"`
	State       string  `json:"state"`
	Runs        int     `json:"runs"`
	Hits        int64   `json:"hits"`
	BestNs      float64 `json:"best_latency_ns"`
	SerialNs    float64 `json:"serial_latency_ns"`
	Speedup     float64 `json:"speedup"`
	BestDOP     int     `json:"best_dop"`
}

func (s *Server) sessionInfo(e *plancache.Entry) SessionInfo {
	rep := e.Session.Report()
	info := SessionInfo{
		Session:     e.ID,
		Fingerprint: e.Fingerprint,
		Query:       e.Query,
		State:       "adapting",
		Runs:        rep.TotalRuns,
		Hits:        e.Hits(),
		BestNs:      rep.GMENs,
		SerialNs:    rep.SerialNs,
		Speedup:     rep.Speedup(),
	}
	if rep.BestPlan != nil {
		info.BestDOP = rep.BestPlan.MaxDOP()
	}
	if e.Session.Done() {
		info.State = "converged"
	}
	return info
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	var out []SessionInfo
	// Report() walks session state the run-loop mutates; read it there.
	if err := s.do(func() {
		for _, e := range s.cache.List() {
			out = append(out, s.sessionInfo(e))
		}
	}); err != nil {
		s.writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	if out == nil {
		out = []SessionInfo{}
	}
	writeJSON(w, out)
}

// TraceResponse is the GET /sessions/{id}/trace reply: the session's full
// convergence trace (Figure 18 quantities) plus the served-invocation log.
type TraceResponse struct {
	SessionInfo
	// History is the per-run execution time, index = run number.
	History []float64 `json:"history_ns"`
	// GMERun is the run that achieved the global minimum.
	GMERun int `json:"gme_run"`
	// Outliers are runs forgiven as noise peaks (§3.3.3).
	Outliers []int `json:"outliers,omitempty"`
	// Invocations logs every served request against this session.
	Invocations []plancache.Invocation `json:"invocations"`
}

func (s *Server) handleSessionTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
	id, tail, ok := strings.Cut(rest, "/")
	if !ok || tail != "trace" || id == "" {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("no route %q (want /sessions/{id}/trace)", r.URL.Path))
		return
	}
	var (
		resp  TraceResponse
		found bool
	)
	if err := s.do(func() {
		e := s.cache.Get(id)
		if e == nil {
			return
		}
		found = true
		rep := e.Session.Report()
		resp = TraceResponse{
			SessionInfo: s.sessionInfo(e),
			History:     rep.History,
			GMERun:      rep.GMERun,
			Outliers:    rep.Outliers,
			Invocations: e.Trace(),
		}
	}); err != nil {
		s.writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	if !found {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	writeJSON(w, resp)
}

// StatsResponse is the GET /stats reply.
type StatsResponse struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	VirtualNowNs  float64         `json:"virtual_now_ns"`
	Benchmark     string          `json:"benchmark"`
	DBIdentity    string          `json:"db_identity"`
	QueryRequests int64           `json:"query_requests"`
	Errors        int64           `json:"errors"`
	Admission     bool            `json:"admission"`
	PeakClients   int             `json:"peak_concurrent_clients"`
	Cores         int             `json:"logical_cores"`
	Cache         plancache.Stats `json:"cache"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	s.statMu.Lock()
	queries, errs := s.queryCount, s.errCount
	s.statMu.Unlock()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Benchmark:     s.cfg.Benchmark,
		DBIdentity:    s.cfg.DBIdentity,
		QueryRequests: queries,
		Errors:        errs,
		Admission:     s.cfg.Admission,
		PeakClients:   s.adm.peakActive(),
		Cores:         s.cfg.Engine.Machine().Config().LogicalCores(),
	}
	// The virtual clock belongs to the run-loop, and cache stats read
	// session convergence state the loop mutates.
	if err := s.do(func() {
		resp.VirtualNowNs = s.cfg.Engine.Machine().Now()
		resp.Cache = s.cache.Stats()
	}); err != nil {
		s.writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if closed {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]bool{"ok": false})
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}
