package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// errTenantDraining reports a request routed to a tenant mid-removal. The
// HTTP layer maps it to 404 — from the client's view a draining tenant has
// already ceased to exist; only requests admitted before the drain started
// still complete.
var errTenantDraining = errors.New("tenant draining")

// Tenant configures one named dataset served by the daemon alongside its
// default database. Tenants multiplex over the same engine shard pool: the
// same simulated machines, engine buffer recyclers, schedule caches and
// per-shard admission control serve every tenant, and only bind resolution
// (exec.JobOptions.Catalog) differs per request. Isolation comes from the
// fingerprint: every cache key incorporates the tenant's DBIdentity, so one
// plan-session cache per shard safely holds sessions from many tenants.
type Tenant struct {
	// Name routes requests ("tenant" field or X-APQ-Tenant header). It must
	// be unique, non-empty, and not "default" (which names the server's
	// primary database).
	Name string
	// Catalog is the tenant's loaded dataset.
	Catalog *storage.Catalog
	// DBIdentity names the dataset for fingerprinting (empty = Name). It
	// must change when the tenant's data does.
	DBIdentity string
	// Benchmark is the tenant's named-query set ("tpch" or "tpcds"; empty =
	// tpch). Requests for the other benchmark are rejected per tenant.
	Benchmark string
	// MaxSessions bounds the tenant's live cached sessions on each shard
	// (0 = unlimited). The fingerprint hash spreads a tenant's queries
	// across shards, so the pool-wide bound is MaxSessions × shards. An
	// over-quota tenant evicts its own least-recently-used session
	// (converged first) — never another tenant's.
	MaxSessions int
	// MaxInFlight bounds the tenant's concurrently executing requests
	// across the whole pool (0 = unlimited); excess requests fail fast
	// with 429 instead of queueing on shard locks.
	MaxInFlight int
	// Epoch is the dataset's initial mutation epoch (0 = the dataset as
	// generated). Every append/delete through the admin mutation API bumps
	// it; persistent-store records carry the epoch they converged at, and
	// rehydration compares the two.
	Epoch int64
}

// tenantState is one tenant's runtime: its immutable config plus the
// in-flight gate and request counters. def marks the server's primary
// database, whose requests keep a nil JobOptions.Catalog (the engine's own
// catalog) — the single-tenant serve path is byte-for-byte the pre-tenancy
// one. Counters are atomics, not a mutex: every request of every shard
// touches its tenant's state, and a lock here would be a pool-wide
// serialization point on exactly the path the shard pool exists to spread.
type tenantState struct {
	Tenant
	def bool

	// epoch is the dataset's live mutation epoch; catalog is the live
	// catalog pointer (mutations swap in a new copy-on-write catalog, so
	// every loaded pointer stays valid and immutable for the request that
	// loaded it). mutated flips once the default tenant's data diverges
	// from the engines' built-in catalog — until then its requests keep a
	// nil JobOptions.Catalog, the byte-for-byte pre-tenancy hot path.
	// draining marks a tenant mid-removal: new requests 404, in-flight
	// ones finish. mutMu serializes data mutations per tenant.
	epoch    atomic.Int64
	catalog  atomic.Pointer[storage.Catalog]
	mutated  atomic.Bool
	draining atomic.Bool
	mutMu    sync.Mutex

	inFlight     atomic.Int64
	peakInFlight atomic.Int64
	requests     atomic.Int64
	errors       atomic.Int64
	rejected     atomic.Int64
}

// newTenantState wires a tenant config into its runtime state.
func newTenantState(t Tenant, def bool) *tenantState {
	tn := &tenantState{Tenant: t, def: def}
	tn.catalog.Store(t.Catalog)
	tn.epoch.Store(t.Epoch)
	return tn
}

// acquire takes one in-flight slot, or reports the over-quota rejection.
// The draining check sits AFTER the in-flight increment: the remover sets
// draining and then waits for inFlight to reach zero, so a request that
// slipped past tenantFor either bounces here or is visible to that wait —
// never silently executing against a tenant being torn down.
func (tn *tenantState) acquire() error {
	tn.requests.Add(1)
	n := tn.inFlight.Add(1)
	if tn.draining.Load() {
		tn.inFlight.Add(-1)
		return fmt.Errorf("tenant %q: %w", tn.displayName(), errTenantDraining)
	}
	if tn.MaxInFlight > 0 && n > int64(tn.MaxInFlight) {
		tn.inFlight.Add(-1)
		tn.rejected.Add(1)
		return fmt.Errorf("tenant %q over in-flight quota (%d)", tn.displayName(), tn.MaxInFlight)
	}
	for {
		peak := tn.peakInFlight.Load()
		if n <= peak || tn.peakInFlight.CompareAndSwap(peak, n) {
			return nil
		}
	}
}

func (tn *tenantState) release() { tn.inFlight.Add(-1) }

func (tn *tenantState) noteErr() { tn.errors.Add(1) }

// tag is the plancache tenant tag: "" for the default tenant (so existing
// single-tenant cache behavior and stats are unchanged), the name otherwise.
func (tn *tenantState) tag() string {
	if tn.def {
		return ""
	}
	return tn.Name
}

// displayName is the external name: the default tenant reads "default".
func (tn *tenantState) displayName() string {
	if tn.def {
		return "default"
	}
	return tn.Name
}

// curCatalog is the tenant's live catalog (post-mutation copies included).
func (tn *tenantState) curCatalog() *storage.Catalog {
	return tn.catalog.Load()
}

// jobCatalog is the per-job bind-resolution override: nil for the default
// tenant on unmutated data (the engine's own catalog — the single-tenant
// hot path), the tenant's live catalog otherwise.
func (tn *tenantState) jobCatalog() *storage.Catalog {
	if tn.def && !tn.mutated.Load() {
		return nil
	}
	return tn.catalog.Load()
}

// tenantFor routes a request to its tenant: the body's "tenant" field first,
// then the X-APQ-Tenant header. Empty and "default" name the server's
// primary database. A draining tenant is already gone from the client's
// perspective — same "unknown tenant" reply removal leaves behind.
func (s *Server) tenantFor(r *http.Request, name string) (*tenantState, error) {
	if name == "" {
		name = r.Header.Get("X-APQ-Tenant")
	}
	return s.tenantByName(name)
}

// tenantByName is tenantFor below the HTTP layer: the name is already
// resolved (header fallback applied by the caller, if any).
func (s *Server) tenantByName(name string) (*tenantState, error) {
	if name == "" || name == "default" {
		return s.defTenant, nil
	}
	s.tenantMu.RLock()
	tn, ok := s.tenants[name]
	s.tenantMu.RUnlock()
	if !ok || tn.draining.Load() {
		return nil, fmt.Errorf("unknown tenant %q", name)
	}
	return tn, nil
}

// TenantStatsInfo is one tenant's slice of the GET /stats reply. Cache
// counters aggregate the tenant's sessions across every shard.
type TenantStatsInfo struct {
	Tenant     string `json:"tenant"`
	Benchmark  string `json:"benchmark"`
	DBIdentity string `json:"db_identity"`
	// Requests counts every routed request (including rejected ones);
	// Rejected counts 429s from the in-flight quota.
	Requests     int64 `json:"requests"`
	Errors       int64 `json:"errors"`
	Rejected     int64 `json:"rejected_over_quota"`
	PeakInFlight int   `json:"peak_in_flight"`
	MaxInFlight  int   `json:"max_in_flight,omitempty"`
	// MaxSessions echoes the per-shard session quota (0 = unlimited).
	MaxSessions int `json:"max_sessions_per_shard,omitempty"`
	// Epoch is the dataset's live mutation epoch (0 = as generated);
	// Draining marks a tenant mid-removal (visible only in the narrow
	// window between the drain starting and the tenant unlinking).
	Epoch    int64 `json:"epoch"`
	Draining bool  `json:"draining,omitempty"`
	// Cache aggregates the tenant's plan-session cache counters across
	// shards: live sessions, hits, misses, evictions, converged.
	Cache struct {
		Entries        int   `json:"entries"`
		Hits           int64 `json:"hits"`
		Misses         int64 `json:"misses"`
		Evictions      int64 `json:"evictions"`
		Converged      int   `json:"converged"`
		Rehydrated     int64 `json:"rehydrated,omitempty"`
		Reconvergences int64 `json:"reconvergences,omitempty"`
		// DataReopens counts epoch-bump warm reopens, DriftReopens
		// workload-drift reopens, WarmSeeds epoch-mismatched store records
		// rehydrated as warm seeds.
		DataReopens  int64 `json:"data_reopens,omitempty"`
		DriftReopens int64 `json:"drift_reopens,omitempty"`
		WarmSeeds    int64 `json:"warm_seeds,omitempty"`
	} `json:"cache"`
}

// statsInfo snapshots the tenant's request counters (cache counters are
// merged in by handleStats, which holds the shard locks).
func (tn *tenantState) statsInfo() TenantStatsInfo {
	return TenantStatsInfo{
		Tenant:       tn.displayName(),
		Benchmark:    tn.Benchmark,
		DBIdentity:   tn.DBIdentity,
		Requests:     tn.requests.Load(),
		Errors:       tn.errors.Load(),
		Rejected:     tn.rejected.Load(),
		PeakInFlight: int(tn.peakInFlight.Load()),
		MaxInFlight:  tn.MaxInFlight,
		MaxSessions:  tn.MaxSessions,
		Epoch:        tn.epoch.Load(),
		Draining:     tn.draining.Load(),
	}
}
