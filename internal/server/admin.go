// Dataset mutation and zero-downtime tenant lifecycle — the /admin surface.
//
// Mutation model: catalogs are immutable. An append or tail-delete builds a
// copy-on-write catalog (storage.Catalog.AppendRows / DeleteTail), then the
// swap happens under EVERY shard's engine-ownership semaphore at once: the
// tenant's live catalog pointer and epoch advance together, and each shard
// cache reopens the tenant's sessions warm (plancache.ReopenTenantForData) —
// seeded from their learned plans, so re-convergence costs a bounded handful
// of runs instead of a cold restart. Requests already holding the old
// catalog pointer finish against the old (still-valid, immutable) snapshot;
// everything admitted after the swap sees the new data.
//
// Lifecycle model: tenants come and go without a restart. Addition builds
// the dataset outside every lock (Config.TenantFactory), links the tenant,
// and — when a persistent store is configured — rehydrates its surviving
// records (epoch-checked: stale epochs come back as warm seeds). Removal is
// a drain: mark draining (new traffic 404s at routing and at admission),
// wait for in-flight requests to finish, flush the tenant's converged
// sessions through the persistence hook under each shard's lock, make them
// durable, then unlink. In-flight requests always complete; nothing 500s.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"time"

	"repro/internal/storage"
)

// TenantSpec is the POST /admin/tenants body: what to call the tenant and
// how to build its dataset. The server hands it to Config.TenantFactory.
type TenantSpec struct {
	// Name routes requests to the new tenant (required, unique, not
	// "default").
	Name string `json:"name"`
	// Benchmark selects the dataset generator and named-query set: "tpch"
	// (default) or "tpcds".
	Benchmark string `json:"benchmark,omitempty"`
	// SF and Seed parameterize the generator (SF 0 = 1).
	SF   float64 `json:"sf,omitempty"`
	Seed int64   `json:"seed,omitempty"`
	// MaxSessions / MaxInFlight are the tenant quotas (0 = unlimited).
	MaxSessions int `json:"max_sessions,omitempty"`
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// ColumnAppendSpec is one column's slice of a POST /admin/append body:
// exactly one of ints or strs, matching the column's type.
type ColumnAppendSpec struct {
	Ints []int64  `json:"ints,omitempty"`
	Strs []string `json:"strs,omitempty"`
}

// appendRequest is the POST /admin/append body.
type appendRequest struct {
	Tenant  string                      `json:"tenant,omitempty"`
	Table   string                      `json:"table"`
	Columns map[string]ColumnAppendSpec `json:"columns"`
}

// truncateRequest is the POST /admin/truncate body: delete the last Rows
// rows of Table.
type truncateRequest struct {
	Tenant string `json:"tenant,omitempty"`
	Table  string `json:"table"`
	Rows   int    `json:"rows"`
}

// MutationResponse reports one admin data mutation: the tenant's new epoch
// and how many sessions the epoch bump reopened warm (or dropped, for
// sessions that had no learned plan to seed from).
type MutationResponse struct {
	Tenant string `json:"tenant"`
	Table  string `json:"table"`
	Epoch  int64  `json:"epoch"`
	Rows   int64  `json:"rows"`
	// SessionsReopened counts cached sessions re-seeded warm across shards;
	// SessionsDropped counts plan-less sessions evicted instead.
	SessionsReopened int `json:"sessions_reopened"`
	SessionsDropped  int `json:"sessions_dropped,omitempty"`
}

// TenantLifecycleResponse reports one tenant addition or removal.
type TenantLifecycleResponse struct {
	Tenant string `json:"tenant"`
	// Epoch is the tenant's dataset epoch (additions only).
	Epoch int64 `json:"epoch"`
	// SessionsFlushed counts converged sessions persisted during removal;
	// SessionsRehydrated / SessionsWarmSeeded count store records restored
	// during addition.
	SessionsFlushed    int   `json:"sessions_flushed,omitempty"`
	SessionsRehydrated int64 `json:"sessions_rehydrated,omitempty"`
	SessionsWarmSeeded int64 `json:"sessions_warm_seeded,omitempty"`
}

// errNoFactory reports a tenant addition without a configured factory.
var errNoFactory = errors.New("server: no tenant factory configured")

// beginAdmin registers an admin operation with the server's in-flight
// tracking, so Close drains a mutation mid-flight before flushing the
// write-behind store — a shutdown can never lose a mutation's session
// flushes or tear down engines under a catalog swap. The returned func ends
// the operation.
func (s *Server) beginAdmin() (func(), error) {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return nil, ErrClosed
	}
	s.inflight.Add(1)
	s.closeMu.RUnlock()
	return s.inflight.Done, nil
}

// lookupTenant resolves an admin request's tenant by display name.
func (s *Server) lookupTenant(name string) (*tenantState, error) {
	if name == "" || name == "default" {
		return s.defTenant, nil
	}
	s.tenantMu.RLock()
	tn, ok := s.tenants[name]
	s.tenantMu.RUnlock()
	if !ok || tn.draining.Load() {
		return nil, fmt.Errorf("unknown tenant %q", name)
	}
	return tn, nil
}

// mutateTenant runs one data mutation end to end: build the new catalog
// copy-on-write, then — holding every shard's engine-ownership semaphore at
// once — swap the tenant's catalog, bump its epoch, and reopen its cached
// sessions warm. Mutations of one tenant serialize on its mutMu; the build
// step runs outside the engine locks so serving stalls only for the swap.
func (s *Server) mutateTenant(name string, build func(*storage.Catalog) (*storage.Catalog, error)) (tn *tenantState, epoch int64, reopened, dropped int, err error) {
	done, err := s.beginAdmin()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer done()
	if tn, err = s.lookupTenant(name); err != nil {
		return nil, 0, 0, 0, err
	}
	tn.mutMu.Lock()
	defer tn.mutMu.Unlock()
	ncat, err := build(tn.curCatalog())
	if err != nil {
		return nil, 0, 0, 0, err
	}
	// Acquire shard semaphores in index order (every other path holds at
	// most one, so a fixed total order cannot deadlock). While held, no
	// request is executing anywhere: the catalog pointer, the epoch, and
	// the session reopens move as one atomic step from serving's view.
	for _, sh := range s.shards {
		sh.sem <- struct{}{}
	}
	tn.catalog.Store(ncat)
	tn.mutated.Store(true)
	epoch = tn.epoch.Add(1)
	for _, sh := range s.shards {
		r, d := sh.cache.ReopenTenantForData(tn.tag(), 0)
		reopened += r
		dropped += d
	}
	for _, sh := range s.shards {
		<-sh.sem
	}
	return tn, epoch, reopened, dropped, nil
}

// AppendRows appends rows to one table of a tenant's dataset ("" or
// "default" = the primary database), bumping its epoch and reopening its
// cached sessions warm. cols must cover every column of the table with
// equal, positive lengths (storage.Catalog.AppendRows semantics).
func (s *Server) AppendRows(tenant, table string, cols map[string]storage.ColumnAppend) (MutationResponse, error) {
	var rows int64
	tn, epoch, reopened, dropped, err := s.mutateTenant(tenant, func(cat *storage.Catalog) (*storage.Catalog, error) {
		ncat, err := cat.AppendRows(table, cols)
		if err != nil {
			return nil, err
		}
		rows = int64(ncat.MustTable(table).Rows())
		return ncat, nil
	})
	if err != nil {
		return MutationResponse{}, err
	}
	s.life.appends.Add(1)
	return MutationResponse{
		Tenant: tn.displayName(), Table: table, Epoch: epoch, Rows: rows,
		SessionsReopened: reopened, SessionsDropped: dropped,
	}, nil
}

// DeleteTail deletes the last n rows of one table of a tenant's dataset,
// bumping its epoch and reopening its cached sessions warm.
func (s *Server) DeleteTail(tenant, table string, n int) (MutationResponse, error) {
	var rows int64
	tn, epoch, reopened, dropped, err := s.mutateTenant(tenant, func(cat *storage.Catalog) (*storage.Catalog, error) {
		ncat, err := cat.DeleteTail(table, n)
		if err != nil {
			return nil, err
		}
		rows = int64(ncat.MustTable(table).Rows())
		return ncat, nil
	})
	if err != nil {
		return MutationResponse{}, err
	}
	s.life.deletes.Add(1)
	return MutationResponse{
		Tenant: tn.displayName(), Table: table, Epoch: epoch, Rows: rows,
		SessionsReopened: reopened, SessionsDropped: dropped,
	}, nil
}

// AddTenant links a factory-built tenant into the live server. The dataset
// builds outside every lock; linking is one map insert. When a persistent
// store is configured, the new tenant's surviving records rehydrate
// (epoch-mismatched ones as warm seeds) so a re-added tenant comes back with
// its learned plans.
func (s *Server) AddTenant(spec TenantSpec) (TenantLifecycleResponse, error) {
	done, err := s.beginAdmin()
	if err != nil {
		return TenantLifecycleResponse{}, err
	}
	defer done()
	if s.cfg.TenantFactory == nil {
		return TenantLifecycleResponse{}, errNoFactory
	}
	if spec.Name == "" || spec.Name == "default" {
		return TenantLifecycleResponse{}, fmt.Errorf("server: tenant name %q reserved", spec.Name)
	}
	t, err := s.cfg.TenantFactory(spec)
	if err != nil {
		return TenantLifecycleResponse{}, err
	}
	switch {
	case t.Name != spec.Name:
		return TenantLifecycleResponse{}, fmt.Errorf("server: tenant factory renamed %q to %q", spec.Name, t.Name)
	case t.Catalog == nil:
		return TenantLifecycleResponse{}, fmt.Errorf("server: tenant %q has no catalog", t.Name)
	}
	switch t.Benchmark {
	case "":
		t.Benchmark = "tpch"
	case "tpch", "tpcds":
	default:
		return TenantLifecycleResponse{}, fmt.Errorf("server: tenant %q: unknown benchmark %q (want tpch or tpcds)", t.Name, t.Benchmark)
	}
	if t.DBIdentity == "" {
		t.DBIdentity = t.Name
	}
	tn := newTenantState(t, false)
	s.tenantMu.Lock()
	if _, dup := s.tenants[t.Name]; dup {
		s.tenantMu.Unlock()
		return TenantLifecycleResponse{}, fmt.Errorf("server: duplicate tenant %q", t.Name)
	}
	if t.DBIdentity == s.defTenant.DBIdentity {
		s.tenantMu.Unlock()
		return TenantLifecycleResponse{}, fmt.Errorf("server: tenant %q shares DBIdentity %q with tenant \"default\"", t.Name, t.DBIdentity)
	}
	for _, other := range s.tenantList {
		if !other.def && other.DBIdentity == t.DBIdentity {
			s.tenantMu.Unlock()
			return TenantLifecycleResponse{}, fmt.Errorf("server: tenant %q shares DBIdentity %q with tenant %q", t.Name, t.DBIdentity, other.Name)
		}
	}
	s.tenants[t.Name] = tn
	s.tenantList = append(s.tenantList, tn)
	s.tenantMu.Unlock()
	if t.MaxSessions > 0 {
		for _, sh := range s.shards {
			shard := sh
			s.do(shard, func() { shard.cache.SetTenantQuota(tn.tag(), t.MaxSessions) })
		}
	}
	resp := TenantLifecycleResponse{Tenant: t.Name, Epoch: tn.epoch.Load()}
	if s.cfg.Store != nil {
		before, warmBefore := s.rehydrated.Load(), s.warmSeeded.Load()
		s.rehydrate(s.cfg.Store, tn)
		resp.SessionsRehydrated = s.rehydrated.Load() - before
		resp.SessionsWarmSeeded = s.warmSeeded.Load() - warmBefore
	}
	s.life.tenantsAdded.Add(1)
	return resp, nil
}

// RemoveTenant drains and unlinks a named tenant with zero downtime for
// everyone else: new traffic 404s immediately, in-flight requests complete,
// converged sessions flush to the persistent store, and only then do the
// tenant's cache entries, plans, quotas, and fingerprint-cache lines go
// away. The default tenant cannot be removed.
func (s *Server) RemoveTenant(name string) (TenantLifecycleResponse, error) {
	done, err := s.beginAdmin()
	if err != nil {
		return TenantLifecycleResponse{}, err
	}
	defer done()
	if name == "" || name == "default" {
		return TenantLifecycleResponse{}, errors.New("server: cannot remove the default tenant")
	}
	s.tenantMu.Lock()
	tn, ok := s.tenants[name]
	if !ok || tn.draining.Load() {
		s.tenantMu.Unlock()
		return TenantLifecycleResponse{}, fmt.Errorf("unknown tenant %q", name)
	}
	// Draining flips under the write lock: every later tenantFor (which
	// reads under the same lock) sees it, so no new request is admitted
	// from here on. The state stays linked until the flush is done —
	// the persistence hook still needs to resolve the tenant's identity.
	tn.draining.Store(true)
	s.tenantMu.Unlock()

	// Quiesce: requests admitted before the drain flag still hold in-flight
	// slots; wait them out. acquire() increments before checking draining,
	// so a racer either bounces (and decrements) or is visible here.
	for tn.inFlight.Load() > 0 {
		time.Sleep(200 * time.Microsecond)
	}

	// Flush and release per shard, under each shard's engine-ownership
	// lock: converged sessions persist through the cache's hook, every
	// entry (and its plans, via the cache's eviction path) is released.
	flushed := 0
	for _, sh := range s.shards {
		shard := sh
		if err := s.do(shard, func() {
			flushed += shard.cache.EvictTenant(tn.tag(), s.sync != nil)
		}); err != nil {
			return TenantLifecycleResponse{}, err
		}
	}
	// Make the flushed records durable before the tenant disappears from
	// routing: after this, a re-add can rehydrate them.
	if s.sync != nil {
		s.sync.Flush()
	}

	s.tenantMu.Lock()
	delete(s.tenants, name)
	s.tenantList = slices.DeleteFunc(s.tenantList, func(e *tenantState) bool { return e == tn })
	s.tenantMu.Unlock()

	// Drop the tenant's fingerprint-cache lines (keys are prefixed
	// name + NUL by fpCacheKey).
	prefix := name + "\x00"
	s.fpMu.Lock()
	for k := range s.fpCache {
		if strings.HasPrefix(k, prefix) {
			delete(s.fpCache, k)
		}
	}
	s.fpMu.Unlock()
	s.life.tenantsRemoved.Add(1)
	return TenantLifecycleResponse{Tenant: name, SessionsFlushed: flushed}, nil
}

// decodeAdminBody decodes one admin request's JSON body.
func decodeAdminBody(w http.ResponseWriter, r *http.Request, v any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	return dec.Decode(v)
}

// adminErrCode maps an admin-operation error to its HTTP status.
func adminErrCode(err error) int {
	msg := err.Error()
	switch {
	case errors.Is(err, ErrClosed), errors.Is(err, errNoFactory):
		return http.StatusServiceUnavailable
	case strings.HasPrefix(msg, "unknown tenant"):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req appendRequest
	if err := decodeAdminBody(w, r, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	cols := make(map[string]storage.ColumnAppend, len(req.Columns))
	for name, c := range req.Columns {
		cols[name] = storage.ColumnAppend{Ints: c.Ints, Strs: c.Strs}
	}
	resp, err := s.AppendRows(req.Tenant, req.Table, cols)
	if err != nil {
		s.writeErr(w, adminErrCode(err), err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleTruncate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req truncateRequest
	if err := decodeAdminBody(w, r, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	resp, err := s.DeleteTail(req.Tenant, req.Table, req.Rows)
	if err != nil {
		s.writeErr(w, adminErrCode(err), err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var spec TenantSpec
		if err := decodeAdminBody(w, r, &spec); err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		resp, err := s.AddTenant(spec)
		if err != nil {
			s.writeErr(w, adminErrCode(err), err)
			return
		}
		writeJSON(w, resp)
	case http.MethodDelete:
		name := r.URL.Query().Get("name")
		if name == "" {
			s.writeErr(w, http.StatusBadRequest, errors.New("missing ?name="))
			return
		}
		resp, err := s.RemoveTenant(name)
		if err != nil {
			s.writeErr(w, adminErrCode(err), err)
			return
		}
		writeJSON(w, resp)
	default:
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST or DELETE only"))
	}
}
