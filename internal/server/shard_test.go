package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/tpch"
)

// handlerPost drives the handler in-process (no listener): the sharded
// tests issue many requests and must stay fast under -race.
func handlerPost(t *testing.T, s *Server, req QueryRequest) (QueryResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	s.Handler().ServeHTTP(rec, r)
	var qr QueryResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return qr, rec.Code
}

func handlerGet(t *testing.T, s *Server, path string, out any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, path, nil)
	s.Handler().ServeHTTP(rec, r)
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return rec.Code
}

func newShardedServer(t *testing.T, shards int) (*Server, *Config) {
	t.Helper()
	cat := tpch.Generate(tpch.Config{SF: 0.2, Seed: 42})
	cfg := Config{
		DBIdentity: "tpch:sf=0.2:seed=42",
		Benchmark:  "tpch",
	}
	for i := 0; i < shards; i++ {
		cfg.Engines = append(cfg.Engines, exec.NewEngine(cat, sim.TwoSocket(), cost.Default()))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, &cfg
}

// TestShardPinningIsStable is the shard-pool invariant: one fingerprint
// never migrates shards, so a session's adaptive convergence happens on one
// deterministic virtual machine, while distinct fingerprints spread across
// the pool.
func TestShardPinningIsStable(t *testing.T) {
	s, _ := newShardedServer(t, 4)

	// Distinct select_sum predicates give distinct fingerprints.
	specs := make([]QueryRequest, 16)
	for i := range specs {
		hi := int64(100 + i)
		specs[i] = QueryRequest{SelectSum: &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Hi: &hi}}
	}

	shardOf := map[string]int{}      // fingerprint -> shard
	sessionOf := map[string]string{} // fingerprint -> session id
	used := map[int]bool{}
	for round := 0; round < 5; round++ {
		for i, req := range specs {
			qr := serveShardQuery(t, s, req)
			if qr.Shard < 0 || qr.Shard >= 4 {
				t.Fatalf("query %d: shard %d out of range", i, qr.Shard)
			}
			used[qr.Shard] = true
			if prev, ok := shardOf[qr.Fingerprint]; ok && prev != qr.Shard {
				t.Fatalf("fingerprint %s migrated shard %d -> %d on round %d",
					qr.Fingerprint, prev, qr.Shard, round)
			}
			shardOf[qr.Fingerprint] = qr.Shard
			if prev, ok := sessionOf[qr.Fingerprint]; ok && prev != qr.Session {
				t.Fatalf("fingerprint %s switched session %s -> %s", qr.Fingerprint, prev, qr.Session)
			}
			sessionOf[qr.Fingerprint] = qr.Session
		}
	}
	if len(used) < 2 {
		t.Fatalf("16 distinct fingerprints all landed on one shard: %v", used)
	}

	// Serial-mode requests pin by the same fingerprint hash.
	for i, req := range specs {
		req.Mode = "serial"
		qr := serveShardQuery(t, s, req)
		adaptive := specs[i]
		want := shardOf[fingerprintOf(t, s, &adaptive)]
		if qr.Shard != want {
			t.Fatalf("serial request %d landed on shard %d, adaptive sibling on %d", i, qr.Shard, want)
		}
	}
}

func fingerprintOf(t *testing.T, s *Server, req *QueryRequest) string {
	t.Helper()
	_, fp, _, err := s.resolve(s.defTenant, req)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func serveShardQuery(t *testing.T, s *Server, req QueryRequest) QueryResponse {
	t.Helper()
	qr, code := handlerPost(t, s, req)
	if code != 200 {
		t.Fatalf("status %d for %+v", code, req)
	}
	return qr
}

// TestShardedEndpoints: sessions and stats aggregate across shards with
// shard attribution, and traces are reachable under namespaced ids.
func TestShardedEndpoints(t *testing.T) {
	s, _ := newShardedServer(t, 3)
	var lastSession string
	for i := 0; i < 12; i++ {
		hi := int64(50 + i)
		qr := serveShardQuery(t, s, QueryRequest{SelectSum: &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Hi: &hi}})
		lastSession = qr.Session
	}

	var sessions []SessionInfo
	if code := handlerGet(t, s, "/sessions", &sessions); code != 200 {
		t.Fatalf("sessions status %d", code)
	}
	if len(sessions) != 12 {
		t.Fatalf("expected 12 sessions, got %d", len(sessions))
	}
	shardSeen := map[int]bool{}
	for _, info := range sessions {
		shardSeen[info.Shard] = true
		wantPrefix := fmt.Sprintf("s%d.", info.Shard)
		if len(info.Session) < len(wantPrefix) || info.Session[:len(wantPrefix)] != wantPrefix {
			t.Fatalf("session id %q not namespaced by shard %d", info.Session, info.Shard)
		}
	}
	if len(shardSeen) < 2 {
		t.Fatalf("sessions all on one shard: %v", shardSeen)
	}

	var trace TraceResponse
	if code := handlerGet(t, s, "/sessions/"+lastSession+"/trace", &trace); code != 200 {
		t.Fatalf("trace status %d for %s", code, lastSession)
	}
	if trace.Session != lastSession || len(trace.Invocations) == 0 {
		t.Fatalf("bad trace for %s: %+v", lastSession, trace)
	}

	var stats StatsResponse
	if code := handlerGet(t, s, "/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if stats.Shards != 3 || len(stats.PerShard) != 3 {
		t.Fatalf("stats shard breakdown wrong: shards=%d per_shard=%d", stats.Shards, len(stats.PerShard))
	}
	if stats.Cache.Entries != 12 || stats.Cache.Misses != 12 {
		t.Fatalf("aggregated cache stats wrong: %+v", stats.Cache)
	}
	var sumEntries int
	for _, ps := range stats.PerShard {
		sumEntries += ps.Cache.Entries
	}
	if sumEntries != 12 {
		t.Fatalf("per-shard entries sum to %d, want 12", sumEntries)
	}
}

// TestShardedConcurrentClients drives distinct queries from concurrent
// clients across a 4-shard pool under -race: the shard run-loops must
// isolate each engine's single-threaded machine.
func TestShardedConcurrentClients(t *testing.T) {
	s, _ := newShardedServer(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				hi := int64(200 + c) // one fingerprint per client
				qr, code := handlerPost(t, s, QueryRequest{SelectSum: &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Hi: &hi}})
				if code != 200 {
					errs <- fmt.Errorf("client %d: status %d", c, code)
					return
				}
				if qr.Run != i {
					errs <- fmt.Errorf("client %d: request %d executed run %d — session state lost", c, i, qr.Run)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
