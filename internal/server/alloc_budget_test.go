package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tpch"
)

// newBudgetServer is a STORE-BACKED bench server: both alloc budgets are
// enforced with persistence enabled, pinning the ISSUE 6 guarantee that the
// write-behind hook costs the converged hot path zero allocations (Persist
// fires only on the convergence done-transition and on converged eviction,
// never on a hot serve).
func newBudgetServer(t *testing.T) *Server {
	t.Helper()
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	st, err := store.Open(filepath.Join(t.TempDir(), "conv.apqs"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Engine:     exec.NewEngine(cat, sim.TwoSocket(), cost.Default()),
		DBIdentity: "tpch:sf=0.5:seed=42",
		Benchmark:  "tpch",
		Store:      st,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		st.Close()
	})
	return s
}

type allocBaseline struct {
	Benchmark        string  `json:"benchmark"`
	MaxAllocsPerOp   float64 `json:"max_allocs_per_op"`
	MeasuredAllocsOp float64 `json:"measured_allocs_per_op"`
	SeedAllocsPerOp  float64 `json:"seed_allocs_per_op"`
	// Cold budget: the CONVERGING serve loop, where every request is an
	// adaptive run that mutates the plan (ISSUE 4's cold path).
	ColdMaxAllocsPerOp float64 `json:"cold_max_allocs_per_op"`
	ColdMeasuredAllocs float64 `json:"cold_measured_allocs_per_op"`
	ColdPR3AllocsPerOp float64 `json:"cold_pr3_allocs_per_op"`
	// Results budget: the converged serve loop answering APQRESULT instead
	// of JSON. The wire encoder stages through a pooled buffer, so the only
	// per-request costs on top of the hot JSON path are the metadata
	// marshal and the single-flight gate (one atomic load, zero allocs).
	ResultsMaxAllocsPerOp float64 `json:"results_max_allocs_per_op"`
	ResultsMeasuredAllocs float64 `json:"results_measured_allocs_per_op"`
}

func loadAllocBaseline(t *testing.T) allocBaseline {
	t.Helper()
	raw, err := os.ReadFile("testdata/alloc_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base allocBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	return base
}

// TestServeHotAllocBudget is the -benchmem smoke gate: it replays the
// converged select_sum serve loop (the BenchmarkServeHot shape) and fails
// when allocs/op regress past the recorded baseline. The baseline is checked
// in as testdata/alloc_baseline.json so hot-path allocation creep breaks CI,
// not production.
func TestServeHotAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget measured in full (non -short) runs")
	}
	base := loadAllocBaseline(t)
	if base.MaxAllocsPerOp <= 0 {
		t.Fatal("baseline missing max_allocs_per_op")
	}

	s := newBudgetServer(t)
	body := []byte(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":24}}`)
	convergeQuery(t, s, body)
	// Let the write-behind queue drain so the measured loop races no store
	// I/O; a converged session's serving never enqueues again.
	s.sync.Flush()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serveOnce(b, s, body)
		}
	})
	got := float64(res.AllocsPerOp())
	t.Logf("hot serve loop: %.0f allocs/op (budget %.0f, seed %.0f)", got, base.MaxAllocsPerOp, base.SeedAllocsPerOp)
	if got > base.MaxAllocsPerOp {
		t.Fatalf("hot serve loop allocates %.0f/op, budget is %.0f/op (seed was %.0f/op) — "+
			"either a hot-path allocation regressed or testdata/alloc_baseline.json needs a deliberate bump",
			got, base.MaxAllocsPerOp, base.SeedAllocsPerOp)
	}
}

// TestServeResultAllocBudget gates the APQRESULT serving path: a converged
// select_sum served with "results":true must stay within its recorded
// allocation budget. The engine contributes zero additional per-request
// allocations on this path — result values stream straight from the
// published buffers through the pooled wire encoder — so the delta over the
// JSON budget is the metadata marshal plus the httptest harness.
func TestServeResultAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget measured in full (non -short) runs")
	}
	base := loadAllocBaseline(t)
	if base.ResultsMaxAllocsPerOp <= 0 {
		t.Fatal("baseline missing results_max_allocs_per_op")
	}
	s := newBudgetServer(t)
	convergeQuery(t, s, []byte(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":24}}`))
	s.sync.Flush()
	body := []byte(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":24},"results":true}`)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != ResultContentType {
				b.Fatalf("Content-Type %q", ct)
			}
		}
	})
	got := float64(res.AllocsPerOp())
	t.Logf("results serve loop: %.0f allocs/op (budget %.0f)", got, base.ResultsMaxAllocsPerOp)
	if got > base.ResultsMaxAllocsPerOp {
		t.Fatalf("results serve loop allocates %.0f/op, budget is %.0f/op — "+
			"either the wire path regressed or testdata/alloc_baseline.json needs a deliberate bump",
			got, base.ResultsMaxAllocsPerOp)
	}
}

// TestServeColdAllocBudget is the cold-step gate (ISSUE 4): it serves a
// query through its entire CONVERGENCE — every request an adaptive run that
// mutates, recompiles and executes a fresh plan object — and fails when the
// per-step allocation count regresses past the recorded budget. The budget
// (98/step) encodes the ISSUE 4 acceptance: at least 2x below the PR 3
// baseline of 197/step, where each converging step paid full plan cloning,
// whole-plan compilation and fresh buffer allocation. Malloc counts are
// exact (not GC-dependent), so the measurement is stable.
func TestServeColdAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget measured in full (non -short) runs")
	}
	base := loadAllocBaseline(t)
	if base.ColdMaxAllocsPerOp <= 0 {
		t.Fatal("baseline missing cold_max_allocs_per_op")
	}
	s := newBudgetServer(t)
	// Converge one query first so the engine pool, schedule machinery and
	// HTTP buffers are warm — the steady state of a serving shard. The
	// measured query is a distinct fingerprint: its whole convergence runs
	// on the warm shard.
	convergeQuery(t, s, []byte(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":2,"hi":3}}`))
	body := []byte(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":24}}`)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	steps := 0
	for ; steps < 600; steps++ {
		if serveOnce(t, s, body).State == "converged" {
			break
		}
	}
	runtime.ReadMemStats(&m1)
	if steps < 10 {
		t.Fatalf("query converged after only %d steps; measurement too small", steps)
	}
	got := float64(m1.Mallocs-m0.Mallocs) / float64(steps+1)
	t.Logf("converging serve loop: %.0f allocs/step over %d steps (budget %.0f, PR 3 baseline %.0f)",
		got, steps+1, base.ColdMaxAllocsPerOp, base.ColdPR3AllocsPerOp)
	if got > base.ColdMaxAllocsPerOp {
		t.Fatalf("converging serve loop allocates %.0f/step, budget is %.0f/step (PR 3 sat at %.0f/step) — "+
			"either the cold path regressed or testdata/alloc_baseline.json needs a deliberate bump",
			got, base.ColdMaxAllocsPerOp, base.ColdPR3AllocsPerOp)
	}
}
