package server

import (
	"encoding/json"
	"os"
	"testing"
)

type allocBaseline struct {
	Benchmark        string  `json:"benchmark"`
	MaxAllocsPerOp   float64 `json:"max_allocs_per_op"`
	MeasuredAllocsOp float64 `json:"measured_allocs_per_op"`
	SeedAllocsPerOp  float64 `json:"seed_allocs_per_op"`
}

// TestServeHotAllocBudget is the -benchmem smoke gate: it replays the
// converged select_sum serve loop (the BenchmarkServeHot shape) and fails
// when allocs/op regress past the recorded baseline. The baseline is checked
// in as testdata/alloc_baseline.json so hot-path allocation creep breaks CI,
// not production.
func TestServeHotAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget measured in full (non -short) runs")
	}
	raw, err := os.ReadFile("testdata/alloc_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base allocBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.MaxAllocsPerOp <= 0 {
		t.Fatal("baseline missing max_allocs_per_op")
	}

	s := newBenchServer(t)
	body := []byte(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":24}}`)
	convergeQuery(t, s, body)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serveOnce(b, s, body)
		}
	})
	got := float64(res.AllocsPerOp())
	t.Logf("hot serve loop: %.0f allocs/op (budget %.0f, seed %.0f)", got, base.MaxAllocsPerOp, base.SeedAllocsPerOp)
	if got > base.MaxAllocsPerOp {
		t.Fatalf("hot serve loop allocates %.0f/op, budget is %.0f/op (seed was %.0f/op) — "+
			"either a hot-path allocation regressed or testdata/alloc_baseline.json needs a deliberate bump",
			got, base.MaxAllocsPerOp, base.SeedAllocsPerOp)
	}
}
