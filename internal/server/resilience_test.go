package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestRequestBodyTooLarge413: the /query body cap rejects oversized posts
// with 413 before any decoding or engine work.
func TestRequestBodyTooLarge413(t *testing.T) {
	_, ts := newTestServer(t, Config{Benchmark: "tpch"})
	big := bytes.Repeat([]byte("x"), maxRequestBody+1)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	// A normal request still works afterwards.
	if _, code := postQuery(t, ts.URL, QueryRequest{Query: 6}); code != http.StatusOK {
		t.Fatalf("post-413 status %d", code)
	}
}

// TestDeadlineExpiryAborts503: a request whose deadline fires while it waits
// for its shard's engine semaphore gets a 503 and counts as a deadline
// expiry; the shard serves normally once free.
func TestDeadlineExpiryAborts503(t *testing.T) {
	s, ts := newTestServer(t, Config{Benchmark: "tpch", RequestTimeout: 100 * time.Millisecond})
	sh := s.shards[0]
	sh.sem <- struct{}{} // occupy the engine from outside
	if _, code := postQuery(t, ts.URL, QueryRequest{Query: 6}); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with the shard held, want 503", code)
	}
	<-sh.sem
	if got := s.res.deadlineExpiries.Load(); got == 0 {
		t.Fatal("deadline expiry not counted")
	}
	if _, code := postQuery(t, ts.URL, QueryRequest{Query: 6}); code != http.StatusOK {
		t.Fatalf("post-release status %d", code)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Resilience.DeadlineExpiries == 0 {
		t.Fatal("/stats resilience block missing the deadline expiry")
	}
}

// TestLoadSheddingRetryAfter: with the shard queue bounded, arrivals beyond
// the bound fail fast with 503 + Retry-After instead of stacking up.
func TestLoadSheddingRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Benchmark:      "tpch",
		RequestTimeout: 2 * time.Second,
		MaxShardQueue:  1,
	})
	sh := s.shards[0]
	sh.sem <- struct{}{}
	// First client queues (within the bound) and blocks on the semaphore.
	done := make(chan int, 1)
	go func() {
		_, code := postQuery(t, ts.URL, QueryRequest{Query: 6})
		done <- code
	}()
	for i := 0; sh.waiting.Load() == 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if sh.waiting.Load() == 0 {
		t.Fatal("first client never queued")
	}
	// Second client exceeds the bound and is shed immediately.
	body, _ := json.Marshal(QueryRequest{Query: 6})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	<-sh.sem // free the shard; the queued client completes normally
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued client finished with %d", code)
	}
	if s.res.shed.Load() == 0 {
		t.Fatal("shed request not counted")
	}
}

// TestBreakerCycle unit-tests the per-shard health breaker's full state
// cycle with a fake clock: consecutive failures trip it open, frozen
// outcomes never count, the cooldown admits exactly one probe, and the
// probe's outcome closes or reopens it.
func TestBreakerCycle(t *testing.T) {
	now := time.Unix(1000, 0)
	// randFn pinned to 0: the jittered cooldown collapses to exactly
	// cooldown, so the cycle's timing is deterministic (jitter bounds are
	// pinned separately in TestBreakerCooldownJitterBounds).
	b := &breaker{nowFn: func() time.Time { return now }, randFn: func() float64 { return 0 }}
	const threshold = 3
	cooldown := time.Minute

	for i := 0; i < threshold-1; i++ {
		if m := b.admit(cooldown); m != brkNormal {
			t.Fatalf("closed breaker admitted %v", m)
		}
		b.record(brkNormal, true, threshold)
	}
	// An intervening success resets the consecutive count.
	b.record(brkNormal, false, threshold)
	for i := 0; i < threshold-1; i++ {
		b.record(brkNormal, true, threshold)
	}
	if st, trips, _ := b.snapshot(); st != brkClosed || trips != 0 {
		t.Fatalf("breaker tripped early: %v trips %d", st, trips)
	}
	b.record(brkNormal, true, threshold)
	if st, trips, _ := b.snapshot(); st != brkOpen || trips != 1 {
		t.Fatalf("breaker did not trip: %v trips %d", st, trips)
	}

	// While open: frozen, and frozen outcomes are not evidence.
	if m := b.admit(cooldown); m != brkFrozen {
		t.Fatalf("open breaker admitted %v", m)
	}
	b.record(brkFrozen, true, threshold)
	if st, _, _ := b.snapshot(); st != brkOpen {
		t.Fatal("frozen failure moved the breaker")
	}

	// Cooldown elapses: one probe, everyone else stays frozen.
	now = now.Add(cooldown + time.Second)
	if m := b.admit(cooldown); m != brkProbe {
		t.Fatal("cooldown did not admit a probe")
	}
	if m := b.admit(cooldown); m != brkFrozen {
		t.Fatalf("second concurrent request got %v, want frozen", m)
	}
	// Probe fails: fully open again, cooldown restarted.
	b.record(brkProbe, true, threshold)
	if st, trips, _ := b.snapshot(); st != brkOpen || trips != 2 {
		t.Fatalf("failed probe: %v trips %d", st, trips)
	}
	if m := b.admit(cooldown); m != brkFrozen {
		t.Fatal("breaker half-opened again without a cooldown")
	}

	// Next probe succeeds: closed, failures reset.
	now = now.Add(cooldown + time.Second)
	if m := b.admit(cooldown); m != brkProbe {
		t.Fatal("second cooldown did not admit a probe")
	}
	b.record(brkProbe, false, threshold)
	if st, _, fails := b.snapshot(); st != brkClosed || fails != 0 {
		t.Fatalf("successful probe did not close: %v failures %d", st, fails)
	}
}

// TestBreakerDegradedServingHTTP trips a shard's breaker through the serve
// path (SlowFactor marks early adaptive runs as anomalously slow), then
// checks degraded serving, /healthz, and the /stats resilience block.
func TestBreakerDegradedServingHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Benchmark:       "tpch",
		BreakerFailures: 2,
		BreakerCooldown: time.Hour,
		SlowFactor:      0.3, // only a 3.3× speedup over serial counts as healthy
	})
	// Runs 0 and 1 serve at ≈serial latency — two consecutive "slow"
	// outcomes trip the breaker.
	for i := 0; i < 2; i++ {
		if qr, code := postQuery(t, ts.URL, QueryRequest{Query: 6}); code != http.StatusOK || qr.Degraded {
			t.Fatalf("run %d: code %d degraded %v", i, code, qr.Degraded)
		}
	}
	qr, code := postQuery(t, ts.URL, QueryRequest{Query: 6})
	if code != http.StatusOK || !qr.Degraded {
		t.Fatalf("open breaker did not serve degraded: code %d, %+v", code, qr)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a degraded shard: %d, want 503", hresp.StatusCode)
	}
	if health.OK || len(health.Shards) != 1 || !health.Shards[0].Degraded {
		t.Fatalf("healthz body: %+v", health)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	br := stats.Resilience.Breakers
	if len(br) != 1 || br[0].State != "open" || br[0].Trips != 1 {
		t.Fatalf("resilience breakers: %+v", br)
	}

	// Jump past the cooldown: the next request is the half-open probe and
	// runs at full fidelity (not degraded). Early in adaptation it is still
	// slow, so the breaker reopens behind it.
	s.shards[0].brk.nowFn = func() time.Time { return time.Now().Add(2 * time.Hour) }
	if qr, _ := postQuery(t, ts.URL, QueryRequest{Query: 6}); qr.Degraded {
		t.Fatalf("probe served degraded: %+v", qr)
	}
	if st, trips, _ := s.shards[0].brk.snapshot(); st != brkOpen || trips != 2 {
		t.Fatalf("slow probe did not reopen: %v trips %d", st, trips)
	}
}

// TestPanicRecoveryMiddleware: a handler panic becomes a 500 plus a counter,
// not a dead daemon.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s, ts := newTestServer(t, Config{Benchmark: "tpch"})
	s.panicHook = func(r *http.Request) {
		if r.URL.Path == "/query" {
			panic("deliberate test panic")
		}
	}
	if _, code := postQuery(t, ts.URL, QueryRequest{Query: 6}); code != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", code)
	}
	s.panicHook = nil
	if _, code := postQuery(t, ts.URL, QueryRequest{Query: 6}); code != http.StatusOK {
		t.Fatalf("post-panic status %d — daemon did not recover", code)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Resilience.PanicsRecovered != 1 {
		t.Fatalf("panics_recovered = %d, want 1", stats.Resilience.PanicsRecovered)
	}
}

// TestAdmissionSlotsConcurrentChurn hammers the admission slot allocator
// from many goroutines: no two concurrent holders may share a slot index,
// and the slot array must not grow past the true peak concurrency.
func TestAdmissionSlotsConcurrentChurn(t *testing.T) {
	var adm admissionSlots
	const workers, iters = 16, 200
	var held [workers * 2]atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				idx, active := adm.acquire()
				if idx < 0 || idx >= len(held) {
					errs <- fmt.Errorf("slot %d out of range", idx)
					return
				}
				if active < 1 || active > workers {
					errs <- fmt.Errorf("active %d out of range", active)
					return
				}
				if !held[idx].CompareAndSwap(false, true) {
					errs <- fmt.Errorf("slot %d double-acquired", idx)
					return
				}
				held[idx].Store(false)
				adm.release(idx)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if peak := adm.peakActive(); peak < 1 || peak > workers {
		t.Fatalf("peak %d out of range", peak)
	}
	adm.mu.Lock()
	slots := len(adm.slots)
	adm.mu.Unlock()
	if slots > workers {
		t.Fatalf("slot array grew to %d for %d workers", slots, workers)
	}
}

// TestServerChaosReconvergence is the end-to-end resilience path over HTTP:
// converge a query, lose most of the machine mid-run via InjectFault, watch
// the staleness detector reopen the session on the serving path, and verify
// the /stats resilience block reports the faults and the re-convergence.
func TestServerChaosReconvergence(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Benchmark: "tpch",
		Staleness: core.DefaultStalenessConfig(),
	})
	post := func() QueryResponse {
		t.Helper()
		qr, code := postQuery(t, ts.URL, QueryRequest{Query: 6})
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		return qr
	}
	var qr QueryResponse
	for i := 0; i < 400; i++ {
		if qr = post(); qr.State == "converged" {
			break
		}
	}
	if qr.State != "converged" {
		t.Fatal("never converged")
	}

	// Chaos: take the machine from 32 threads down to 4 mid-run.
	if err := s.InjectFault(0, sim.FaultEvent{Kind: sim.FaultCoreLoss, Socket: 0, Count: 16}); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectFault(0, sim.FaultEvent{Kind: sim.FaultCoreLoss, Socket: 1, Count: 12}); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectFault(2, sim.FaultEvent{}); err == nil {
		t.Fatal("InjectFault accepted an out-of-range shard")
	}

	// Serving runs on the shrunken machine trip staleness detection and the
	// session adapts again to a new convergence.
	var staleNs float64
	reconverged := false
	for i := 0; i < 400; i++ {
		qr = post()
		if qr.State == "adapting" && staleNs == 0 {
			staleNs = qr.LatencyNs // first re-exploration run ≈ the degraded serial
		}
		if staleNs > 0 && qr.State == "converged" {
			reconverged = true
			break
		}
	}
	if !reconverged {
		t.Fatal("session never re-converged after core loss")
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	res := stats.Resilience
	if res.FaultsInjected < 2 || res.CoresLost != 28 {
		t.Fatalf("faults injected %d cores lost %d, want >=2 and 28", res.FaultsInjected, res.CoresLost)
	}
	if res.Reconvergences != 1 {
		t.Fatalf("reconvergences = %d, want 1", res.Reconvergences)
	}
	// The breaker is disabled here, so chaos must not mark the shard down.
	var health HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz after re-convergence: %d %+v", code, health)
	}
}
