package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plancache"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tpch"
)

// appendBodyFor builds a POST /admin/append body growing table by n rows,
// recycling the table's own values so the append is schema-correct.
func appendBodyFor(t *testing.T, cat *storage.Catalog, tenant, table string, n int) []byte {
	t.Helper()
	tab := cat.MustTable(table)
	cols := map[string]ColumnAppendSpec{}
	for _, name := range tab.ColumnNames() {
		col := tab.MustColumn(name)
		if col.Data().IsString() {
			vals := make([]string, n)
			for i := range vals {
				vals[i] = col.Data().StringAt((i * 13) % col.Len())
			}
			cols[name] = ColumnAppendSpec{Strs: vals}
		} else {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = col.At((i * 13) % col.Len())
			}
			cols[name] = ColumnAppendSpec{Ints: vals}
		}
	}
	body, err := json.Marshal(appendRequest{Tenant: tenant, Table: table, Columns: cols})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postJSON fires one request and returns the status code plus decoded body.
func postJSON(t *testing.T, s *Server, method, path string, body []byte, out any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	s.Handler().ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
	}
	return rec.Code
}

// convergeCounting drives body until convergence, returning how many
// requests (= adaptive runs) it took.
func convergeCounting(t *testing.T, s *Server, body []byte) int {
	t.Helper()
	for i := 1; i <= 600; i++ {
		if serveOnce(t, s, body).State == "converged" {
			return i
		}
	}
	t.Fatal("query never converged")
	return 0
}

// bestPlanResults executes the converged session's learned plan for fp on
// its home shard against the tenant's live catalog, returning the values.
func bestPlanResults(t *testing.T, s *Server, fp string) []exec.Value {
	t.Helper()
	sh := s.shardFor(fp)
	var vals []exec.Value
	if err := s.do(sh, func() {
		e := sh.cache.GetFingerprint(fp)
		if e == nil || !e.Session.Done() {
			t.Errorf("session for %s not converged", fp)
			return
		}
		var err error
		vals, _, err = sh.eng.ExecuteOpts(e.Session.Best(), exec.JobOptions{Catalog: s.defTenant.jobCatalog()})
		if err != nil {
			t.Errorf("best-plan execution: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return vals
}

// TestAppendChurnWarmReconvergence is the churn acceptance test: an
// /admin/append bumps the default tenant's epoch and reopens its converged
// session warm; re-convergence takes at most HALF the runs a cold server
// needs on the mutated data, and the learned plan's results are
// bit-identical to a fresh server's on that data.
func TestAppendChurnWarmReconvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping churn e2e in -short mode")
	}
	cat := tpch.Generate(tpch.Config{SF: 0.5, Seed: 42})
	srv := newStoreServer(t, cat, nil, nil)
	defer srv.Close()
	q6 := []byte(`{"query":6}`)
	convergeQuery(t, srv, q6)

	grow := cat.MustTable("lineitem").Rows() * 2 / 5
	var mut MutationResponse
	if code := postJSON(t, srv, http.MethodPost, "/admin/append",
		appendBodyFor(t, cat, "", "lineitem", grow), &mut); code != http.StatusOK {
		t.Fatalf("/admin/append status %d", code)
	}
	if mut.Epoch != 1 || mut.SessionsReopened != 1 {
		t.Fatalf("append reply: %+v, want epoch 1 and 1 session reopened", mut)
	}
	st := statsOf(t, srv)
	if st.Lifecycle.Appends != 1 || st.Cache.DataReopens != 1 {
		t.Fatalf("stats after append: lifecycle=%+v data_reopens=%d", st.Lifecycle, st.Cache.DataReopens)
	}
	if len(st.Tenants) == 0 || st.Tenants[0].Epoch != 1 {
		t.Fatalf("default tenant epoch not bumped: %+v", st.Tenants)
	}

	// Warm re-convergence on the request stream vs a cold server on the
	// same mutated catalog.
	warmRuns := convergeCounting(t, srv, q6)
	ncat := srv.defTenant.curCatalog()
	cold := newStoreServer(t, ncat, nil, nil)
	defer cold.Close()
	coldRuns := convergeCounting(t, cold, q6)
	if warmRuns*2 > coldRuns {
		t.Fatalf("warm re-convergence took %d runs, cold %d — want warm <= cold/2", warmRuns, coldRuns)
	}

	// Bit-identical results: warm-reconverged learned plan vs cold-learned
	// plan vs the serial baseline, all on the mutated catalog.
	fp := plancache.Fingerprint("tpch:sf=0.5:seed=42", "tpch:q6")
	warmVals := bestPlanResults(t, srv, fp)
	coldVals := bestPlanResults(t, cold, fp)
	serial, _, err := exec.NewEngine(ncat, sim.TwoSocket(), cost.Default()).Execute(tpch.MustQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	if !exec.ResultsEqual(warmVals, serial) || !exec.ResultsEqual(coldVals, serial) {
		t.Fatal("post-churn results differ from a fresh server on the mutated data")
	}

	// Truncate back down: another epoch, another warm re-convergence.
	trunc, err := json.Marshal(truncateRequest{Table: "lineitem", Rows: grow})
	if err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, srv, http.MethodPost, "/admin/truncate", trunc, &mut); code != http.StatusOK {
		t.Fatalf("/admin/truncate status %d", code)
	}
	if mut.Epoch != 2 {
		t.Fatalf("truncate reply: %+v, want epoch 2", mut)
	}
	convergeQuery(t, srv, q6)
	if got := statsOf(t, srv); got.Lifecycle.Deletes != 1 || got.Cache.DataReopens != 2 {
		t.Fatalf("stats after truncate: lifecycle=%+v data_reopens=%d", got.Lifecycle, got.Cache.DataReopens)
	}
}

// TestAdminAppendValidation: malformed mutations are 400s (or 404 for an
// unknown tenant) and never bump an epoch.
func TestAdminAppendValidation(t *testing.T) {
	cat := tpch.Generate(tpch.Config{SF: 0.1, Seed: 42})
	srv := newStoreServer(t, cat, nil, nil)
	defer srv.Close()
	for _, tc := range []struct {
		name string
		body string
		code int
	}{
		{"bad json", `{"table":`, http.StatusBadRequest},
		{"unknown table", `{"table":"nope","columns":{"x":{"ints":[1]}}}`, http.StatusBadRequest},
		{"missing columns", `{"table":"lineitem","columns":{"l_shipdate":{"ints":[1]}}}`, http.StatusBadRequest},
		{"unknown tenant", `{"tenant":"ghost","table":"lineitem","columns":{}}`, http.StatusNotFound},
	} {
		if code := postJSON(t, srv, http.MethodPost, "/admin/append", []byte(tc.body), nil); code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		}
	}
	if st := statsOf(t, srv); st.Tenants[0].Epoch != 0 || st.Lifecycle.Appends != 0 {
		t.Fatalf("failed mutations moved state: %+v", st.Lifecycle)
	}
	srv.Close()
	if _, err := srv.AppendRows("", "lineitem", nil); err != ErrClosed {
		t.Fatalf("mutation after Close: %v, want ErrClosed", err)
	}
}

// TestTenantLifecycleOverLiveTraffic is the zero-downtime acceptance test:
// tenants are added and removed while request traffic hammers both the
// default tenant and the churned one. No request may ever see a 5xx — valid
// answers are 200 (served) and 404 (tenant gone at routing or admission).
func TestTenantLifecycleOverLiveTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping lifecycle race test in -short mode")
	}
	cat := tpch.Generate(tpch.Config{SF: 0.1, Seed: 42})
	srv, err := New(Config{
		Engine:     exec.NewEngine(cat, sim.TwoSocket(), cost.Default()),
		DBIdentity: "tpch:sf=0.1:seed=42",
		TenantFactory: func(spec TenantSpec) (Tenant, error) {
			return Tenant{
				Name:        spec.Name,
				Catalog:     tpch.Generate(tpch.Config{SF: 0.1, Seed: spec.Seed}),
				DBIdentity:  fmt.Sprintf("tpch:sf=0.1:seed=%d", spec.Seed),
				MaxSessions: spec.MaxSessions,
				MaxInFlight: spec.MaxInFlight,
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var bad atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammer := func(body []byte) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)))
			if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
				bad.Add(1)
				t.Errorf("live traffic got status %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}
	wg.Add(3)
	go hammer([]byte(`{"query":6}`))
	go hammer([]byte(`{"tenant":"churn","query":6}`))
	go hammer([]byte(`{"tenant":"churn","query":14}`))

	// Churn the tenant through three add/remove cycles under that traffic.
	for cycle := int64(0); cycle < 3 && bad.Load() == 0; cycle++ {
		spec, _ := json.Marshal(TenantSpec{Name: "churn", Seed: 100 + cycle})
		if code := postJSON(t, srv, http.MethodPost, "/admin/tenants", spec, nil); code != http.StatusOK {
			t.Errorf("add cycle %d: status %d", cycle, code)
			break
		}
		// Let some traffic land on the live tenant before tearing it down.
		for i := 0; i < 25; i++ {
			serveOnce(t, srv, []byte(`{"query":6}`))
		}
		var life TenantLifecycleResponse
		if code := postJSON(t, srv, http.MethodDelete, "/admin/tenants?name=churn", nil, &life); code != http.StatusOK {
			t.Errorf("remove cycle %d: status %d", cycle, code)
			break
		}
	}
	close(stop)
	wg.Wait()

	st := statsOf(t, srv)
	if st.Lifecycle.TenantsAdded != 3 || st.Lifecycle.TenantsRemoved != 3 {
		t.Fatalf("lifecycle counters: %+v, want 3 added / 3 removed", st.Lifecycle)
	}
	for _, row := range st.Tenants {
		if row.Tenant == "churn" {
			t.Fatal("removed tenant still present in /stats")
		}
	}
	// Routing is clean after churn: the tenant 404s, the default serves.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader([]byte(`{"tenant":"churn","query":6}`))))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("removed tenant answered %d", rec.Code)
	}
	serveOnce(t, srv, []byte(`{"query":6}`))
}

// TestTenantRemovalFlushesAndRehydrates: removing a tenant flushes its
// converged sessions to the store; re-adding the same tenant (same identity,
// same epoch) rehydrates them served-converged, while an epoch-mismatched
// record comes back as a warm seed only.
func TestTenantRemovalFlushesAndRehydrates(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping store lifecycle test in -short mode")
	}
	cat := tpch.Generate(tpch.Config{SF: 0.1, Seed: 42})
	tcat := tpch.Generate(tpch.Config{SF: 0.1, Seed: 7})
	st, err := store.Open(filepath.Join(t.TempDir(), "conv.apqs"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	epoch := int64(0)
	srv, err := New(Config{
		Engine:     exec.NewEngine(cat, sim.TwoSocket(), cost.Default()),
		DBIdentity: "tpch:sf=0.1:seed=42",
		Store:      st,
		TenantFactory: func(spec TenantSpec) (Tenant, error) {
			return Tenant{Name: spec.Name, Catalog: tcat, DBIdentity: "tpch:sf=0.1:seed=7", Epoch: epoch}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := srv.AddTenant(TenantSpec{Name: "t1"}); err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"tenant":"t1","query":6}`)
	convergeQuery(t, srv, body)
	life, err := srv.RemoveTenant("t1")
	if err != nil {
		t.Fatal(err)
	}
	if life.SessionsFlushed != 1 {
		t.Fatalf("removal flushed %d sessions, want 1", life.SessionsFlushed)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d records after removal, want 1", st.Len())
	}

	// Same epoch: the record comes back served-converged on the first hit.
	life, err = srv.AddTenant(TenantSpec{Name: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	if life.SessionsRehydrated != 1 || life.SessionsWarmSeeded != 0 {
		t.Fatalf("re-add rehydrated=%d warm=%d, want 1/0", life.SessionsRehydrated, life.SessionsWarmSeeded)
	}
	if qr := serveOnce(t, srv, body); qr.State != "converged" || !qr.CacheHit {
		t.Fatalf("first post-re-add request not served converged: %+v", qr)
	}
	if _, err := srv.RemoveTenant("t1"); err != nil {
		t.Fatal(err)
	}

	// Epoch mismatch: the tenant declares its dataset mutated since the
	// record was written — the record must come back warm, never
	// served-converged.
	epoch = 1
	life, err = srv.AddTenant(TenantSpec{Name: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	if life.SessionsRehydrated != 0 || life.SessionsWarmSeeded != 1 {
		t.Fatalf("mismatched re-add rehydrated=%d warm=%d, want 0/1", life.SessionsRehydrated, life.SessionsWarmSeeded)
	}
	qr := serveOnce(t, srv, body)
	if qr.State == "converged" || !qr.CacheHit {
		t.Fatalf("epoch-mismatched record served converged: %+v", qr)
	}
	convergeQuery(t, srv, body)
}
