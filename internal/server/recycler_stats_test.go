package server

import (
	"testing"
)

// TestStatsExposesRecycler drives a query through a full adaptive
// convergence (the workload that exercises the engine-level buffer pool and
// incremental compilation) and asserts /stats reports the per-shard
// recycler hit/miss counters by size class, plus the compile-kind split.
func TestStatsExposesRecycler(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := QueryRequest{SelectSum: &SelectSumSpec{Table: "lineitem", Column: "l_quantity", Lo: i64(1), Hi: i64(24)}}
	for i := 0; i < 600; i++ {
		qr, code := postQuery(t, ts.URL, body)
		if code != 200 {
			t.Fatalf("query status %d", code)
		}
		if qr.State == "converged" {
			break
		}
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if len(stats.PerShard) != 1 {
		t.Fatalf("expected 1 shard, got %d", len(stats.PerShard))
	}
	ps := stats.PerShard[0]

	// Incremental compilation: a converging session derives almost every
	// mutated plan from its parent; only the serial plan compiles fully.
	if ps.Compile.Derived == 0 {
		t.Fatalf("no incremental compilations recorded: %+v", ps.Compile)
	}
	if ps.Compile.Full == 0 {
		t.Fatalf("no full compilations recorded (the serial plan is one): %+v", ps.Compile)
	}
	if ps.Compile.Retired == 0 {
		t.Fatalf("no retired plans recorded (every superseded mutation is one): %+v", ps.Compile)
	}

	// The recycler must have served buffers (retired plans feed mutated
	// children), with per-size-class counters that sum to the totals.
	r := ps.Recycler
	if r.BufferHits == 0 {
		t.Fatalf("recycler recorded no buffer hits over a full convergence: %+v", r)
	}
	if r.Puts == 0 {
		t.Fatalf("recycler recorded no puts: %+v", r)
	}
	if len(r.Classes) == 0 {
		t.Fatalf("recycler reported no size classes: %+v", r)
	}
	var hits, misses int64
	prevSize := 0
	for _, c := range r.Classes {
		if c.Size <= prevSize {
			t.Fatalf("size classes not ascending: %+v", r.Classes)
		}
		prevSize = c.Size
		hits += c.Hits
		misses += c.Misses
	}
	if hits != r.BufferHits || misses != r.BufferMisses {
		t.Fatalf("class counters (%d hits, %d misses) do not sum to totals (%d, %d)",
			hits, misses, r.BufferHits, r.BufferMisses)
	}
}

func i64(v int64) *int64 { return &v }
