package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"sync"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vec"
)

// APQRESULT: the columnar result wire format POST /query streams when a
// client negotiates real results ("results":true in the body, or an Accept
// header containing ResultContentType). The reply frames the JSON metadata
// the plain path would have sent, followed by every result value encoded
// column-at-a-time straight from the published immutable vec buffers — no
// row-wise materialization anywhere between engine and socket.
//
// Layout (all integers little-endian):
//
//	magic   [9]byte  "APQRESULT"
//	version uint32   (currently 1)
//	metaLen uint32   + metaLen bytes of canonical JSON (QueryResponse)
//	nvalues uint32
//	value*           (see below)
//	crc32c  uint32   CRC-32 (Castagnoli) over every preceding byte
//
// One value is a kind tag byte followed by its payload:
//
//	1 scalar: int64
//	2 oids:   int-stream
//	3 column: nameLen uint32 + name, seq int64, dictFlag uint8,
//	          [dictN uint32, dictN × (strLen uint32 + bytes)],
//	          int-stream (raw values; dictionary codes when dictFlag=1)
//	4 groups: a column (the distinct keys) + an int-stream (per-row gids)
//
// An int-stream is total uint32 followed by chunk frames — count uint32 +
// count×8 payload bytes — where every count must equal
// min(resultChunkValues, remaining). The fixed chunk cap bounds encoder
// buffering (large results stream chunk-by-chunk, resultBufSize bytes at a
// time) and makes chunk boundaries deterministic: the same (metadata,
// values) pair encodes to the same bytes on every node, which is what lets
// the cluster layer proxy a remote owner's reply verbatim and still promise
// bit-identical payloads. The decoder enforces the canonical boundaries, so
// any APQRESULT that decodes also re-encodes bit-identically (the fuzz
// round-trip property).
//
// Ownership: the encoder only reads. Values reachable from a result escape
// the engine per the exec ownership contract — allocated fresh each run,
// never pooled, never rewritten — so streaming them after the shard lock is
// released (and sharing them across coalesced waiters) is safe without
// copies; Evict/Retire recycle only arenas and schedules.

// ResultContentType is the APQRESULT media type; requests carrying it in
// Accept negotiate the columnar reply.
const ResultContentType = "application/x-apqresult"

var resultMagic = [9]byte{'A', 'P', 'Q', 'R', 'E', 'S', 'U', 'L', 'T'}

const (
	resultVersion = 1
	// resultChunkValues caps one int-stream chunk frame at 64 KiB of
	// payload (8192 × 8 bytes) — the streaming byte cap.
	resultChunkValues = 8192
	// resultBufSize is the pooled staging buffer: one chunk frame plus
	// header slack, so the encoder never holds more than ~64 KiB of a
	// result in flight regardless of result size.
	resultBufSize = resultChunkValues*8 + 256
)

// Value kind tags on the wire.
const (
	resKindScalar byte = 1
	resKindOids   byte = 2
	resKindColumn byte = 3
	resKindGroups byte = 4
)

var resultCRC = crc32.MakeTable(crc32.Castagnoli)

var resultBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, resultBufSize)
	return &b
}}

// wantsResult reports whether a decoded /query request negotiated the
// columnar APQRESULT reply. Exported as WantsResult for the cluster
// coordinator, which must make the same decision before routing.
func wantsResult(accept string, req *QueryRequest) bool {
	return req.Results || strings.Contains(accept, ResultContentType)
}

// WantsResult is wantsResult for callers outside the package (the federation
// coordinator decides raw-proxy vs JSON routing with it).
func WantsResult(accept string, req *QueryRequest) bool { return wantsResult(accept, req) }

// resultWriter streams an APQRESULT document: writes stage through a pooled
// buffer, flushing a chunk at a time through the CRC into w.
type resultWriter struct {
	w   io.Writer
	buf []byte
	crc uint32
	n   int64
	err error
}

func (rw *resultWriter) flush() {
	if len(rw.buf) == 0 || rw.err != nil {
		rw.buf = rw.buf[:0]
		return
	}
	rw.crc = crc32.Update(rw.crc, resultCRC, rw.buf)
	n, err := rw.w.Write(rw.buf)
	rw.n += int64(n)
	if err != nil {
		rw.err = err
	}
	rw.buf = rw.buf[:0]
}

func (rw *resultWriter) ensure(n int) {
	if len(rw.buf)+n > cap(rw.buf) {
		rw.flush()
	}
}

func (rw *resultWriter) u8(v byte) { rw.ensure(1); rw.buf = append(rw.buf, v) }
func (rw *resultWriter) u32(v uint32) {
	rw.ensure(4)
	rw.buf = binary.LittleEndian.AppendUint32(rw.buf, v)
}
func (rw *resultWriter) i64(v int64) {
	rw.ensure(8)
	rw.buf = binary.LittleEndian.AppendUint64(rw.buf, uint64(v))
}

// raw writes arbitrary bytes (magic, metadata, dictionary strings).
func (rw *resultWriter) raw(p []byte) {
	for len(p) > 0 {
		room := cap(rw.buf) - len(rw.buf)
		if room == 0 {
			rw.flush()
			room = cap(rw.buf)
		}
		n := min(room, len(p))
		rw.buf = append(rw.buf, p[:n]...)
		p = p[n:]
	}
}

// ints writes one int-stream: the total, then canonical chunk frames
// streamed straight off the immutable backing slice.
func (rw *resultWriter) ints(vals []int64) {
	rw.u32(uint32(len(vals)))
	for off := 0; off < len(vals); off += resultChunkValues {
		chunk := vals[off:min(off+resultChunkValues, len(vals))]
		rw.u32(uint32(len(chunk)))
		for len(chunk) > 0 {
			room := (cap(rw.buf) - len(rw.buf)) / 8
			if room == 0 {
				rw.flush()
				room = cap(rw.buf) / 8
			}
			n := min(room, len(chunk))
			rw.buf = vec.AppendInt64LE(rw.buf, chunk[:n])
			chunk = chunk[n:]
		}
	}
}

func (rw *resultWriter) column(c *storage.Column) {
	name := c.Name()
	rw.u32(uint32(len(name)))
	rw.raw([]byte(name))
	rw.i64(c.Seq())
	if d := c.Dict(); d != nil {
		rw.u8(1)
		rw.u32(uint32(d.Len()))
		for i := 0; i < d.Len(); i++ {
			s := d.Value(int64(i))
			rw.u32(uint32(len(s)))
			rw.raw([]byte(s))
		}
	} else {
		rw.u8(0)
	}
	rw.ints(c.Values())
}

// writeResult streams the APQRESULT document for (meta, vals) to w and
// returns the bytes written. meta must be the canonical JSON encoding of the
// reply's QueryResponse (json.Marshal output) — the decoder rejects anything
// else, which is what pins decode→re-encode bit-identity.
func writeResult(w io.Writer, meta []byte, vals []exec.Value) (int64, error) {
	bp := resultBufPool.Get().(*[]byte)
	rw := &resultWriter{w: w, buf: (*bp)[:0]}
	rw.raw(resultMagic[:])
	rw.u32(resultVersion)
	rw.u32(uint32(len(meta)))
	rw.raw(meta)
	rw.u32(uint32(len(vals)))
	for _, v := range vals {
		switch v.Kind {
		case plan.KindScalar:
			rw.u8(resKindScalar)
			rw.i64(v.Scalar)
		case plan.KindOids:
			rw.u8(resKindOids)
			rw.ints(v.Oids)
		case plan.KindColumn:
			rw.u8(resKindColumn)
			rw.column(v.Col)
		case plan.KindGroups:
			rw.u8(resKindGroups)
			rw.column(v.Groups.Keys)
			rw.ints(v.Groups.GIDs)
		default:
			rw.err = fmt.Errorf("server: result: unencodable value kind %v", v.Kind)
		}
		if rw.err != nil {
			break
		}
	}
	rw.flush()
	if rw.err == nil {
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], rw.crc)
		n, err := rw.w.Write(trailer[:])
		rw.n += int64(n)
		rw.err = err
	}
	*bp = rw.buf[:0]
	resultBufPool.Put(bp)
	return rw.n, rw.err
}

// EncodeResult renders the APQRESULT document for (resp, vals) into a fresh
// byte slice — the non-streaming twin of the handler's writer, shared by
// tests, the fuzz round-trip property, and client-side tooling.
func EncodeResult(resp *QueryResponse, vals []exec.Value) ([]byte, error) {
	meta, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := writeResult(&buf, meta, vals); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ResultPayload is a decoded APQRESULT document: the reply metadata the JSON
// path would have carried, plus the typed result values.
type ResultPayload struct {
	Meta   QueryResponse
	Values []exec.Value
}

// resultReader walks a decode buffer with bounds-checked reads; every
// over-read is an error, never a panic, and every count is validated against
// the bytes actually remaining before anything is allocated.
type resultReader struct {
	data []byte
	pos  int
}

func (r *resultReader) remaining() int { return len(r.data) - r.pos }

func (r *resultReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("server: result: truncated at offset %d (want %d bytes, have %d)", r.pos, n, r.remaining())
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *resultReader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *resultReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *resultReader) i64() (int64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

// ints decodes one int-stream, enforcing the canonical chunk boundaries. The
// preallocation is capped by the payload bytes remaining, so a hostile total
// cannot make the decoder allocate past its input size.
func (r *resultReader) ints() ([]int64, error) {
	total, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(total)*8 > uint64(r.remaining()) {
		return nil, fmt.Errorf("server: result: int-stream claims %d values with %d bytes left", total, r.remaining())
	}
	out := make([]int64, 0, total)
	for len(out) < int(total) {
		want := min(int(total)-len(out), resultChunkValues)
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(n) != want {
			return nil, fmt.Errorf("server: result: chunk of %d values, want %d (non-canonical boundary)", n, want)
		}
		payload, err := r.bytes(int(n) * 8)
		if err != nil {
			return nil, err
		}
		out = append(out, vec.Int64LE(payload, int(n))...)
	}
	return out, nil
}

func (r *resultReader) column() (*storage.Column, error) {
	nameLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	nameBytes, err := r.bytes(int(nameLen))
	if err != nil {
		return nil, err
	}
	name := string(nameBytes)
	seq, err := r.i64()
	if err != nil {
		return nil, err
	}
	dictFlag, err := r.u8()
	if err != nil {
		return nil, err
	}
	var dict *vec.Dict
	switch dictFlag {
	case 0:
	case 1:
		dictN, err := r.u32()
		if err != nil {
			return nil, err
		}
		// Each entry is at least its 4-byte length prefix.
		if uint64(dictN)*4 > uint64(r.remaining()) {
			return nil, fmt.Errorf("server: result: dictionary claims %d entries with %d bytes left", dictN, r.remaining())
		}
		dict = vec.NewDict()
		for i := uint32(0); i < dictN; i++ {
			strLen, err := r.u32()
			if err != nil {
				return nil, err
			}
			sb, err := r.bytes(int(strLen))
			if err != nil {
				return nil, err
			}
			if dict.Code(string(sb)) != int64(i) {
				return nil, fmt.Errorf("server: result: duplicate dictionary entry %q", sb)
			}
		}
	default:
		return nil, fmt.Errorf("server: result: bad dictionary flag %d", dictFlag)
	}
	vals, err := r.ints()
	if err != nil {
		return nil, err
	}
	if dict != nil {
		for _, c := range vals {
			if c < 0 || c >= int64(dict.Len()) {
				return nil, fmt.Errorf("server: result: dictionary code %d out of range [0,%d)", c, dict.Len())
			}
		}
		return storage.NewColumn(name, seq, vec.NewDictCoded(vals, dict)), nil
	}
	return storage.NewColumn(name, seq, vec.NewInt64(vals)), nil
}

// DecodeResult parses an APQRESULT document. Hostile input — bad magic or
// version, corrupt framing, truncated columns, lying length prefixes —
// errors; it never panics and never allocates beyond a small multiple of the
// input size. Decode success implies the document is canonical: re-encoding
// the returned payload reproduces the input bit-for-bit.
func DecodeResult(data []byte) (*ResultPayload, error) {
	minLen := len(resultMagic) + 4 + 4 + 4 + 4 // magic, version, metaLen, nvalues, crc
	if len(data) < minLen {
		return nil, fmt.Errorf("server: result: %d bytes is too short for an APQRESULT document", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.Checksum(body, resultCRC); got != want {
		return nil, fmt.Errorf("server: result: CRC mismatch (document %08x, computed %08x)", got, want)
	}
	r := &resultReader{data: body}
	magic, err := r.bytes(len(resultMagic))
	if err != nil || !bytes.Equal(magic, resultMagic[:]) {
		return nil, errors.New("server: result: bad magic (not an APQRESULT document)")
	}
	version, err := r.u32()
	if err != nil {
		return nil, err
	}
	if version != resultVersion {
		return nil, fmt.Errorf("server: result: unsupported version %d (this decoder reads %d)", version, resultVersion)
	}
	metaLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	metaRaw, err := r.bytes(int(metaLen))
	if err != nil {
		return nil, err
	}
	p := &ResultPayload{}
	if err := json.Unmarshal(metaRaw, &p.Meta); err != nil {
		return nil, fmt.Errorf("server: result: bad metadata: %w", err)
	}
	// Canonical-form check: the metadata must be exactly what this package's
	// encoder would emit, so decode→re-encode is bit-identical.
	if canon, err := json.Marshal(&p.Meta); err != nil || !bytes.Equal(canon, metaRaw) {
		return nil, errors.New("server: result: non-canonical metadata encoding")
	}
	nvals, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Smallest possible value is an empty oids stream: 1 tag + 4 total.
	if uint64(nvals)*5 > uint64(r.remaining()) {
		return nil, fmt.Errorf("server: result: %d values claimed with %d bytes left", nvals, r.remaining())
	}
	p.Values = make([]exec.Value, 0, nvals)
	for i := uint32(0); i < nvals; i++ {
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch kind {
		case resKindScalar:
			v, err := r.i64()
			if err != nil {
				return nil, err
			}
			p.Values = append(p.Values, exec.ScalarValue(v))
		case resKindOids:
			oids, err := r.ints()
			if err != nil {
				return nil, err
			}
			p.Values = append(p.Values, exec.OidsValue(oids))
		case resKindColumn:
			col, err := r.column()
			if err != nil {
				return nil, err
			}
			p.Values = append(p.Values, exec.ColValue(col))
		case resKindGroups:
			keys, err := r.column()
			if err != nil {
				return nil, err
			}
			gids, err := r.ints()
			if err != nil {
				return nil, err
			}
			p.Values = append(p.Values, exec.GroupsValue(&algebra.Groups{Keys: keys, GIDs: gids}))
		default:
			return nil, fmt.Errorf("server: result: unknown value kind %d", kind)
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("server: result: %d trailing bytes after the last value", r.remaining())
	}
	return p, nil
}
