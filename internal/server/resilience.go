package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/sim"
)

// Overload hardening and failure isolation for the serve path (ROADMAP
// item: robustness). Three mechanisms compose, all scoped per shard so one
// sick engine replica cannot take the daemon down:
//
//   - Request deadlines: the request context flows into shard dispatch; a
//     request whose deadline fires while it waits for the engine-ownership
//     semaphore aborts with 503 instead of executing work the client has
//     abandoned.
//   - Load shedding: the waiting line in front of each shard is bounded
//     (Config.MaxShardQueue); excess arrivals fail fast with 503 and a
//     Retry-After header instead of stacking goroutines on the semaphore.
//   - A per-shard health breaker: consecutive failed or anomalously slow
//     invocations trip the shard into degraded mode, where it keeps serving
//     last-converged plans (plancache frozen invocations — no exploration,
//     no staleness feedback) until a cooldown elapses and a half-open probe
//     request succeeds at full fidelity.

// ErrOverloaded reports a request shed because its shard's queue was full.
var ErrOverloaded = errors.New("server: shard queue full")

// do runs f holding sh's engine-ownership semaphore: f is the only code
// touching the shard's machine, cache sessions, and virtual clock while it
// runs. Internal callers with no deadline of their own use it directly.
func (s *Server) do(sh *shard, f func()) error {
	return s.doCtx(context.Background(), sh, f)
}

// doCtx is do with a request context: acquisition of the engine-ownership
// semaphore is abortable (deadline, client disconnect) and bounded by the
// shard queue limit. Engine work, once started, always runs to completion —
// the virtual machine cannot be preempted mid-run — so the deadline governs
// the wait, and is re-checked once more between acquisition and dispatch.
func (s *Server) doCtx(ctx context.Context, sh *shard, f func()) error {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return ErrClosed
	}
	s.inflight.Add(1)
	s.closeMu.RUnlock()
	defer s.inflight.Done()
	queued := sh.waiting.Add(1)
	defer sh.waiting.Add(-1)
	if max := s.cfg.MaxShardQueue; max > 0 && int(queued) > max {
		s.res.shed.Add(1)
		return ErrOverloaded
	}
	select {
	case sh.sem <- struct{}{}:
	case <-ctx.Done():
		s.res.deadlineExpiries.Add(1)
		return fmt.Errorf("server: %w", ctx.Err())
	}
	defer func() { <-sh.sem }()
	if err := ctx.Err(); err != nil {
		// The deadline fired between acquisition and dispatch: don't start
		// engine work for a client that has already given up.
		s.res.deadlineExpiries.Add(1)
		return fmt.Errorf("server: %w", err)
	}
	f()
	return nil
}

// sheddable classifies a dispatch error for the HTTP reply: everything is a
// 503, but shed requests additionally carry Retry-After — the client should
// back off and come again, unlike a closed server.
func sheddable(err error) bool { return errors.Is(err, ErrOverloaded) }

// breakerState is one shard breaker's position in the closed → open →
// half-open cycle.
type breakerState int

const (
	brkClosed   breakerState = iota // healthy: invocations run at full fidelity
	brkOpen                         // degraded: serve frozen until the cooldown elapses
	brkHalfOpen                     // probing: one request runs normally; its outcome decides
)

func (st breakerState) String() string {
	switch st {
	case brkOpen:
		return "open"
	case brkHalfOpen:
		return "half-open"
	}
	return "closed"
}

// brkMode is the breaker's decision for one invocation.
type brkMode int

const (
	brkNormal brkMode = iota // full fidelity: adapt, explore, feed staleness
	brkFrozen                // degraded: serve learned state only
	brkProbe                 // half-open probe: full fidelity, outcome closes or reopens
)

// breaker is one shard's health breaker. Failures are consecutive full-
// fidelity invocations that errored or ran anomalously slowly; frozen
// servings never count (they are the degraded mode itself, not evidence).
type breaker struct {
	mu       sync.Mutex
	state    breakerState
	failures int // consecutive, while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int64
	// jitter scales this open period's cooldown, drawn from [1, 1.5) at
	// trip time: shards tripped by one correlated event probe back at
	// spread-out times instead of re-converging on the backend in lockstep.
	jitter float64
	nowFn  func() time.Time // test seam; nil = time.Now
	randFn func() float64   // test seam; nil = math/rand
}

func (b *breaker) now() time.Time {
	if b.nowFn != nil {
		return b.nowFn()
	}
	return time.Now()
}

func (b *breaker) rand() float64 {
	if b.randFn != nil {
		return b.randFn()
	}
	return rand.Float64()
}

// trip opens the breaker and draws the cooldown jitter for this open period.
// Callers hold b.mu.
func (b *breaker) trip() {
	b.state = brkOpen
	b.openedAt = b.now()
	b.jitter = 1 + 0.5*b.rand()
	b.trips++
}

// admit decides how the next invocation runs. Open breakers transition to
// half-open once the jittered cooldown has elapsed, admitting exactly one
// probe at a time; everything else in the meantime serves frozen.
func (b *breaker) admit(cooldown time.Duration) brkMode {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brkClosed:
		return brkNormal
	case brkOpen:
		scale := b.jitter
		if scale < 1 {
			scale = 1
		}
		if b.now().Sub(b.openedAt) < time.Duration(float64(cooldown)*scale) {
			return brkFrozen
		}
		b.state = brkHalfOpen
		b.probing = true
		return brkProbe
	default: // half-open
		if b.probing {
			return brkFrozen
		}
		b.probing = true
		return brkProbe
	}
}

// record feeds one invocation's outcome back. threshold is the consecutive-
// failure count that trips a closed breaker open.
func (b *breaker) record(mode brkMode, failed bool, threshold int) {
	if mode == brkFrozen {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if failed {
		if mode == brkProbe {
			// The probe failed: back to fully open, cooldown restarted
			// (with a freshly drawn jitter).
			b.probing = false
			b.trip()
			return
		}
		b.failures++
		if b.state == brkClosed && b.failures >= threshold {
			b.failures = 0
			b.trip()
		}
		return
	}
	if mode == brkProbe {
		b.state = brkClosed
		b.probing = false
	}
	b.failures = 0
}

// snapshot reads the breaker for /stats and /healthz.
func (b *breaker) snapshot() (state breakerState, trips int64, failures int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips, b.failures
}

// InjectFault schedules a machine fault on one shard — the chaos entry point
// the self-benchmark and tests drive mid-run core loss through. The event
// reaches the simulated machine under the shard's engine-ownership boundary;
// it takes effect at its virtual AtNs (a past AtNs means immediately, at the
// start of the next run).
func (s *Server) InjectFault(shard int, ev sim.FaultEvent) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("server: no shard %d (pool of %d)", shard, len(s.shards))
	}
	sh := s.shards[shard]
	return s.do(sh, func() { sh.eng.Machine().InjectFault(ev) })
}

// withRecovery is the outermost middleware: a panic anywhere in a handler
// becomes a 500 and a counter increment instead of a dead daemon. The
// engine-ownership semaphore and in-flight counters release on the way up
// (doCtx defers), so a recovered shard keeps serving.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.res.panics.Add(1)
				s.writeErr(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
			}
		}()
		if s.panicHook != nil {
			s.panicHook(r)
		}
		next.ServeHTTP(w, r)
	})
}

// BreakerInfo is one shard breaker's slice of the /stats resilience block.
type BreakerInfo struct {
	Shard int    `json:"shard"`
	State string `json:"state"`
	// Trips counts closed→open transitions (including failed probes).
	Trips int64 `json:"trips"`
	// Failures is the current consecutive-failure count while closed.
	Failures int `json:"consecutive_failures,omitempty"`
}

// ResilienceStats is the GET /stats "resilience" block: fault-injection and
// overload-hardening counters aggregated across the shard pool.
type ResilienceStats struct {
	// FaultsInjected and CoresLost aggregate the shard machines' fault
	// counters (scheduled plans and InjectFault both land here).
	FaultsInjected int `json:"faults_injected"`
	CoresLost      int `json:"cores_lost"`
	// Reconvergences counts staleness-triggered convergence reopens across
	// all shard caches.
	Reconvergences int64 `json:"reconvergences"`
	// DeadlineExpiries counts requests aborted by their deadline while
	// waiting for (or just after acquiring) a shard.
	DeadlineExpiries int64 `json:"deadline_expiries"`
	// ShedRequests counts requests refused because a shard queue was full.
	ShedRequests int64 `json:"shed_requests"`
	// PanicsRecovered counts handler panics converted to 500s.
	PanicsRecovered int64 `json:"panics_recovered"`
	// Breakers reports each shard's health breaker.
	Breakers []BreakerInfo `json:"breakers,omitempty"`
}

// ShardHealth is one shard's row in the GET /healthz reply.
type ShardHealth struct {
	Shard   int    `json:"shard"`
	Breaker string `json:"breaker"`
	// Degraded is true while the breaker is not closed: the shard serves
	// learned plans only.
	Degraded bool `json:"degraded"`
}

// HealthResponse is the GET /healthz reply. OK (and a 200) requires the
// server open and every shard breaker closed; a degraded shard flips the
// status to 503 so load balancers rotate traffic away while it recovers.
type HealthResponse struct {
	OK     bool          `json:"ok"`
	Shards []ShardHealth `json:"shards,omitempty"`
	// StoreQueueDepth is the write-behind synchronizer backlog (absent
	// without a persistent store).
	StoreQueueDepth *int `json:"store_queue_depth,omitempty"`
}
