package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/tpch"
)

// TestBreakerCooldownJitterBounds pins the jittered cooldown window: a
// tripped breaker stays frozen for at least the configured cooldown and
// admits its half-open probe no later than 1.5× it, with the scale drawn
// once per trip (not per admit).
func TestBreakerCooldownJitterBounds(t *testing.T) {
	cooldown := time.Minute
	for _, tc := range []struct {
		r     float64
		scale float64
	}{
		{0, 1},       // low edge: probe at exactly the cooldown
		{0.999, 1.5}, // high edge: probe just under 1.5× the cooldown
	} {
		now := time.Unix(0, 0)
		draws := 0
		b := &breaker{
			nowFn:  func() time.Time { return now },
			randFn: func() float64 { draws++; return tc.r },
		}
		b.mu.Lock()
		b.trip()
		b.mu.Unlock()
		window := time.Duration(float64(cooldown) * (1 + 0.5*tc.r))

		// Strictly inside the jittered window: frozen, always.
		now = now.Add(window - time.Millisecond)
		if m := b.admit(cooldown); m != brkFrozen {
			t.Fatalf("r=%v: breaker probed %v before its jittered cooldown", tc.r, window)
		}
		// At the window: the probe is admitted — never later than 1.5×.
		if limit := time.Duration(1.5 * float64(cooldown)); window > limit {
			t.Fatalf("r=%v: jittered window %v exceeds the 1.5× bound %v", tc.r, window, limit)
		}
		now = now.Add(time.Millisecond)
		if m := b.admit(cooldown); m != brkProbe {
			t.Fatalf("r=%v: breaker still frozen at its jittered cooldown (%v)", tc.r, window)
		}
		if draws != 1 {
			t.Fatalf("r=%v: jitter drawn %d times, want once per trip", tc.r, draws)
		}
	}
}

// TestBreakerZeroValueJitter: a breaker that never drew a jitter (zero
// value, as embedded in each shard) must treat the scale as 1, not 0 — an
// unjittered breaker must not probe instantly.
func TestBreakerZeroValueJitter(t *testing.T) {
	now := time.Unix(0, 0)
	b := &breaker{nowFn: func() time.Time { return now }}
	b.mu.Lock()
	b.state = brkOpen // forced open without trip(): jitter stays 0
	b.openedAt = now
	b.mu.Unlock()
	if m := b.admit(time.Minute); m != brkFrozen {
		t.Fatal("zero-jitter open breaker probed before its cooldown")
	}
	now = now.Add(time.Minute)
	if m := b.admit(time.Minute); m != brkProbe {
		t.Fatal("zero-jitter open breaker never probed")
	}
}

// TestRetryAfterJitterBounds pins the shed reply's backoff hint to 1–3
// seconds across the whole jitter range.
func TestRetryAfterJitterBounds(t *testing.T) {
	s := &Server{}
	for _, r := range []float64{0, 0.1, 0.33, 0.34, 0.5, 0.66, 0.67, 0.9, 0.999} {
		r := r
		s.randFn = func() float64 { return r }
		v, err := strconv.Atoi(s.retryAfter())
		if err != nil {
			t.Fatalf("r=%v: non-numeric Retry-After: %v", r, err)
		}
		if v < 1 || v > 3 {
			t.Fatalf("r=%v: Retry-After %d out of [1,3]", r, v)
		}
	}
	// Edges: 0 maps to 1, the top of the range maps to 3.
	s.randFn = func() float64 { return 0 }
	if got := s.retryAfter(); got != "1" {
		t.Fatalf("Retry-After at r=0: %s, want 1", got)
	}
	s.randFn = func() float64 { return 0.999 }
	if got := s.retryAfter(); got != "3" {
		t.Fatalf("Retry-After at r=0.999: %s, want 3", got)
	}
	// The default source (nil randFn) stays in bounds too.
	s.randFn = nil
	for i := 0; i < 100; i++ {
		if v, _ := strconv.Atoi(s.retryAfter()); v < 1 || v > 3 {
			t.Fatalf("default source produced Retry-After %d", v)
		}
	}
}

// TestOverQuota429RetryAfter: an over-quota tenant rejection is backpressure
// like a shed — the 429 reply carries the same jittered Retry-After hint the
// shed 503 does, drawn from the same seam.
func TestOverQuota429RetryAfter(t *testing.T) {
	cat := tpch.Generate(tpch.Config{SF: 0.1, Seed: 7})
	s, ts := newTestServer(t, Config{
		Benchmark: "tpch",
		Admission: true,
		Tenants:   []Tenant{{Name: "acme", Catalog: cat, MaxInFlight: 1}},
	})
	s.randFn = func() float64 { return 0.999 } // top of the window: hint is "3"

	// Hold one acme request past the in-flight gate via the admission seam.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.admitHook = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	done := make(chan int, 1)
	go func() {
		_, code := postTenant(t, ts.URL, "acme", QueryRequest{Query: 6}, false)
		done <- code
	}()
	<-entered
	s.admitHook = nil
	defer func() {
		close(release)
		<-done
	}()

	body, _ := json.Marshal(QueryRequest{Query: 14, Tenant: "acme"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: status %d, want 429", resp.StatusCode)
	}
	got := resp.Header.Get("Retry-After")
	if got != "3" {
		t.Fatalf("429 Retry-After = %q, want the pinned jitter's 3", got)
	}
	if v, err := strconv.Atoi(got); err != nil || v < 1 || v > 3 {
		t.Fatalf("429 Retry-After %q outside [1,3]", got)
	}
}
