package sim

import (
	"math"
	"testing"
)

// goldenCases spans both paper machines, noise on and off, admission-style
// job core budgets, and memory-bound pressure — the regimes in which the
// optimized event core's dirty-socket and lazy-rate bookkeeping must not
// change a single bit of the timeline.
func goldenCases() []struct {
	name string
	mach Config
	scen ScenarioConfig
} {
	return []struct {
		name string
		mach Config
		scen ScenarioConfig
	}{
		{"two-socket/clean", TwoSocket(), ScenarioConfig{Seed: 1, Jobs: 2, Roots: 60, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.5}},
		{"two-socket/noise", withNoise(TwoSocket(), 7), ScenarioConfig{Seed: 2, Jobs: 3, Roots: 80, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.6, Budgets: true}},
		{"two-socket/budgets", TwoSocket(), ScenarioConfig{Seed: 3, Jobs: 5, Roots: 100, MaxChain: 2, MaxFanout: 3, MemHeavy: 0.4, Budgets: true}},
		{"four-socket/clean", FourSocket(), ScenarioConfig{Seed: 4, Jobs: 2, Roots: 160, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.5}},
		{"four-socket/noise", withNoise(FourSocket(), 11), ScenarioConfig{Seed: 5, Jobs: 4, Roots: 200, MaxChain: 4, MaxFanout: 2, MemHeavy: 0.7, Budgets: true}},
		{"four-socket/budgets-noise", withNoise(FourSocket(), 13), ScenarioConfig{Seed: 6, Jobs: 6, Roots: 120, MaxChain: 2, MaxFanout: 4, MemHeavy: 0.5, Budgets: true}},
		{"smt1", smt1Config(), ScenarioConfig{Seed: 7, Jobs: 2, Roots: 40, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.5, Budgets: true}},
		{"two-socket-asym/clean", TwoSocketAsym(), ScenarioConfig{Seed: 8, Jobs: 2, Roots: 60, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.5}},
		{"two-socket-asym/noise", withNoise(TwoSocketAsym(), 17), ScenarioConfig{Seed: 9, Jobs: 3, Roots: 80, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.6, Budgets: true}},
		{"four-socket-asym/budgets", FourSocketAsym(), ScenarioConfig{Seed: 10, Jobs: 4, Roots: 120, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.5, Budgets: true}},
	}
}

func withNoise(c Config, seed int64) Config {
	c.Noise = DefaultNoise()
	c.Seed = seed
	return c
}

func smt1Config() Config {
	c := tinyConfig()
	c.SMT = 1
	c.NUMAFactor = 1.5
	c.BWPerSocket = 1
	return c
}

// TestGoldenTimelineEquivalence is the optimization's proof obligation: the
// optimized Machine must produce bit-identical virtual timelines (placement,
// start, end, final clock, busy accounting) to the seed event core preserved
// as Reference. Equality is exact — no epsilon — because the optimized core
// performs the same floating-point operations on the same values in the
// same order.
func TestGoldenTimelineEquivalence(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			sc := GenScenario(tc.name, tc.scen, tc.mach)
			opt := sc.Play(NewMachine(tc.mach))
			ref := sc.Play(NewReference(tc.mach))
			compareTimelines(t, sc, opt, ref)
		})
	}
}

func compareTimelines(t *testing.T, sc *Scenario, opt, ref *Timeline) {
	t.Helper()
	if got, want := len(opt.Events), len(ref.Events); got != want {
		t.Fatalf("%s: %d events, reference has %d", sc.Name, got, want)
	}
	for i := range opt.Events {
		o, r := opt.Events[i], ref.Events[i]
		if o != r {
			t.Fatalf("%s: event %d diverges:\n  optimized %+v\n  reference %+v", sc.Name, i, o, r)
		}
	}
	if opt.FinalNs != ref.FinalNs {
		t.Fatalf("%s: final clock %v != reference %v (delta %g)",
			sc.Name, opt.FinalNs, ref.FinalNs, math.Abs(opt.FinalNs-ref.FinalNs))
	}
	if opt.BusyNs != ref.BusyNs {
		t.Fatalf("%s: busy accounting %v != reference %v", sc.Name, opt.BusyNs, ref.BusyNs)
	}
}

// TestGoldenEdgeCases covers the Submit clamps (zero-length tasks, MemFrac
// outside [0,1]) and out-of-range home sockets on both cores.
func TestGoldenEdgeCases(t *testing.T) {
	sc := &Scenario{
		Name:       "edges",
		JobBudgets: []int{0, 1},
		Tasks: []TaskSpec{
			{Label: "zero", JobIdx: 0, BaseNs: 0},
			{Label: "clamp-hi", JobIdx: 0, BaseNs: 10, MemFrac: 42, Bytes: 100, HomeSocket: 0},
			{Label: "clamp-lo", JobIdx: 1, BaseNs: 10, MemFrac: -3, HomeSocket: 1},
			{Label: "far-home", JobIdx: 0, BaseNs: 25, HomeSocket: 9,
				Spawns: []TaskSpec{{Label: "chained", JobIdx: 1, BaseNs: 5}}},
		},
	}
	cfg := tinyConfig()
	compareTimelines(t, sc, sc.Play(NewMachine(cfg)), sc.Play(NewReference(cfg)))
}

// TestAsymPresetDeterminism pins each asymmetric preset: replaying the same
// scenario yields a bit-identical timeline, the slow sockets make the
// machine strictly slower than its symmetric sibling, and the speed vector
// is well-formed (validated at construction).
func TestAsymPresetDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name      string
		asym, sym Config
	}{
		{"two-socket-asym", TwoSocketAsym(), TwoSocket()},
		{"four-socket-asym", FourSocketAsym(), FourSocket()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if len(tc.asym.SocketSpeed) != tc.asym.Sockets {
				t.Fatalf("preset speed vector has %d entries for %d sockets",
					len(tc.asym.SocketSpeed), tc.asym.Sockets)
			}
			scen := ScenarioConfig{Seed: 21, Jobs: 3, Roots: 90, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.5}
			sc := GenScenario(tc.name, scen, tc.asym)
			a := sc.Play(NewMachine(tc.asym))
			b := sc.Play(NewMachine(tc.asym))
			compareTimelines(t, sc, a, b)
			sym := sc.Play(NewMachine(tc.sym))
			if a.FinalNs <= sym.FinalNs {
				t.Fatalf("asymmetric machine finished in %.0fns, not slower than symmetric %.0fns",
					a.FinalNs, sym.FinalNs)
			}
		})
	}
}

// TestSocketSpeedValidation: malformed speed vectors must be rejected at
// machine construction, not surface as index panics mid-simulation.
func TestSocketSpeedValidation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		speed []float64
	}{
		{"wrong length", []float64{1}},
		{"zero entry", []float64{1, 0}},
		{"negative entry", []float64{1, -0.5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := TwoSocket()
			cfg.SocketSpeed = tc.speed
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMachine accepted SocketSpeed %v", tc.speed)
				}
			}()
			NewMachine(cfg)
		})
	}
}

// TestScenarioTaskCount pins the generator's determinism: the same seed must
// generate the same scenario shape.
func TestScenarioTaskCount(t *testing.T) {
	cfg := ScenarioConfig{Seed: 42, Jobs: 2, Roots: 10, MaxChain: 2, MaxFanout: 2, MemHeavy: 0.5}
	a := GenScenario("a", cfg, TwoSocket())
	b := GenScenario("b", cfg, TwoSocket())
	if a.NumTasks() != b.NumTasks() || a.NumTasks() < 10 {
		t.Fatalf("generator not deterministic: %d vs %d tasks", a.NumTasks(), b.NumTasks())
	}
}
