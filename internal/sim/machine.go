// Package sim implements the discrete-event multi-core machine on which all
// query plans execute. It is the substitute for the paper's physical Xeon
// servers (DESIGN.md §2): cores grouped into sockets with SMT pairs, a
// processor-sharing model of the shared memory bandwidth per socket, NUMA
// remote-access penalties, and a seeded OS-noise model. Operators compute
// real results on the host; the simulator only decides how long each
// operator *takes* and when it runs, in virtual nanoseconds.
//
// The fluid model: every running task has `remaining` nanoseconds of
// unit-rate work and progresses at a rate determined by its core's SMT
// occupancy and the socket's bandwidth saturation. Rates are recomputed at
// every event (task start or completion), and the clock jumps to the next
// completion — a classic processor-sharing event simulation, deterministic
// for a fixed seed and submission order.
//
// Event-core performance. The seed implementation (preserved verbatim as
// Reference in reference.go) paid O(cores) several times per event: a fresh
// per-socket demand array and a full two-pass rate recomputation, an
// O(cores) idle-core scan per ready task, and full-array scans for the
// minimum completion and progress accounting. Machine keeps the same model
// but restructures the hot paths:
//
//   - pickCore uses bitset free-core indexes (idle cores, and idle cores
//     with an idle SMT sibling, per socket) — a placement is a few word
//     operations instead of an O(cores) scoring scan.
//   - Per-socket bandwidth demand is recomputed only for sockets whose
//     occupancy changed since the last event ("dirty" sockets), by scanning
//     just that socket's core range in core order.
//   - Task rates are recomputed only for tasks whose inputs changed: newly
//     placed tasks, tasks whose SMT sibling occupancy flipped, and tasks on
//     a socket whose demand value changed.
//   - The minimum-completion scan and the progress decrement iterate a
//     dense running-task list kept in core order, not the full core array.
//
// Equivalence is load-bearing, not aspirational: every floating-point
// operation above happens on the same values in the same order as the seed
// core (per-socket demand sums are re-summed in core order when dirty, the
// rate formula is evaluated on identical inputs, the global decrement loop
// is preserved), so virtual timelines are bit-identical to Reference. The
// golden test asserts exactly that. Note this is also why the event core
// deliberately does NOT replace the per-event progress decrement with
// lazily projected completion times in a priority queue: the seed model
// rounds every running task's remaining work at every event, so any scheme
// that skips those per-event roundings produces (slightly) different
// timelines and breaks reproducibility of every recorded experiment.
//
// Ownership invariants. A Machine is single-threaded: its event queue,
// clock, and core state may only be touched by one goroutine at a time
// (the server serializes through per-shard engine-ownership locks).
// Submitted Tasks are owned by the machine from Submit until their
// completion hook fires — callers must not mutate a task in flight; the
// exec layer embeds tasks in a per-plan slab and reuses an entry only after
// its completion delivered results.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
)

// Config describes a simulated machine. Byte capacities are scaled by the
// same factor as the datasets (1/100 of the paper's hardware) so that
// cache-residency crossovers land where the paper's do.
type Config struct {
	Name               string
	Sockets            int
	PhysCoresPerSocket int
	SMT                int     // hardware threads per physical core
	SpeedFactor        float64 // relative per-core speed (1.0 = 2.0 GHz class)
	L3PerSocket        int64   // bytes, scaled
	BWPerSocket        float64 // bytes per ns of memory bandwidth, scaled
	SMTFactor          float64 // per-thread rate when the SMT sibling is busy
	NUMAFactor         float64 // memory slowdown for remote-socket access
	// SocketSpeed holds per-socket core-speed multipliers for asymmetric
	// machines (heterogeneous clocks, one power-capped package). nil means
	// all sockets run at SpeedFactor — the symmetric presets keep nil so
	// their timelines stay bit-identical to earlier releases. When set, the
	// length must equal Sockets and every entry must be positive.
	SocketSpeed []float64
	Noise       NoiseConfig
	Seed        int64
}

// validateSocketSpeed panics when an asymmetric speed vector is malformed;
// both simulator cores call it so they can never disagree on the config.
func validateSocketSpeed(cfg Config) {
	if cfg.SocketSpeed == nil {
		return
	}
	if len(cfg.SocketSpeed) != cfg.Sockets {
		panic(fmt.Sprintf("sim: SocketSpeed has %d entries for %d sockets", len(cfg.SocketSpeed), cfg.Sockets))
	}
	for i, s := range cfg.SocketSpeed {
		if s <= 0 {
			panic(fmt.Sprintf("sim: SocketSpeed[%d]=%g must be positive", i, s))
		}
	}
}

// LogicalCores returns the number of schedulable hardware threads.
func (c Config) LogicalCores() int { return c.Sockets * c.PhysCoresPerSocket * c.SMT }

// PhysicalCores returns the number of physical cores.
func (c Config) PhysicalCores() int { return c.Sockets * c.PhysCoresPerSocket }

// TwoSocket mirrors the paper's 2-socket Intel Xeon E5-2650 machine
// (Table 1): 2×8 physical cores, 32 hyper-threads, 20 MB shared L3 per
// socket and 256 GB of RAM — L3 and bandwidth scaled 1/100 like the data.
func TwoSocket() Config {
	return Config{
		Name:               "2-socket E5-2650-class (32 threads)",
		Sockets:            2,
		PhysCoresPerSocket: 8,
		SMT:                2,
		SpeedFactor:        1.0,
		L3PerSocket:        200 << 10, // 20 MB scaled 1/100
		BWPerSocket:        40,        // ~4 GB/s per socket at 1/100 scale
		SMTFactor:          0.55,
		NUMAFactor:         1.35,
	}
}

// FourSocket mirrors the paper's 4-socket Intel Xeon E5-4657Lv2 machine
// (Table 1): 4×12 physical cores, 96 hyper-threads, 30 MB L3 per socket,
// 2.4 GHz (1.2× the two-socket machine's clock).
func FourSocket() Config {
	return Config{
		Name:               "4-socket E5-4657Lv2-class (96 threads)",
		Sockets:            4,
		PhysCoresPerSocket: 12,
		SMT:                2,
		SpeedFactor:        1.2,
		L3PerSocket:        300 << 10, // 30 MB scaled 1/100
		BWPerSocket:        40,
		SMTFactor:          0.55,
		NUMAFactor:         1.35,
	}
}

// TwoSocketAsym is the two-socket machine with socket 1 power-capped to 70%
// of socket 0's clock — the asymmetric-NUMA regime where uniform mitosis
// over-partitions the slow package and adaptive parallelization should learn
// a lopsided placement.
func TwoSocketAsym() Config {
	c := TwoSocket()
	c.Name = "2-socket asymmetric (socket 1 at 0.7×)"
	c.SocketSpeed = []float64{1.0, 0.7}
	return c
}

// FourSocketAsym is the four-socket machine with a stepped clock gradient
// across packages (1.0×, 0.9×, 0.75×, 0.6×), modelling a thermally
// imbalanced chassis.
func FourSocketAsym() Config {
	c := FourSocket()
	c.Name = "4-socket asymmetric (stepped 1.0/0.9/0.75/0.6×)"
	c.SocketSpeed = []float64{1.0, 0.9, 0.75, 0.6}
	return c
}

// NoiseConfig models run-time environment disturbance (§3.3.3): multiplicative
// jitter on every task and rare large spikes that mimic OS interference.
type NoiseConfig struct {
	Enabled   bool
	Jitter    float64 // uniform ±Jitter fraction on every task
	SpikeProb float64 // probability a task is hit by an interference spike
	SpikeMin  float64 // spike multiplier range
	SpikeMax  float64
}

// DefaultNoise is calibrated so that convergence traces show the occasional
// above-serial peak of Figure 11 without drowning the signal.
func DefaultNoise() NoiseConfig {
	return NoiseConfig{Enabled: true, Jitter: 0.03, SpikeProb: 0.004, SpikeMin: 4, SpikeMax: 10}
}

// TaskHooks is the allocation-free alternative to the OnStart/OnComplete
// closures: a submitter embeds Task in a per-operator struct implementing
// TaskHooks, so one allocation carries the task and both callbacks. Closure
// fields win when both are set.
type TaskHooks interface {
	TaskStarted(now float64, core int)
	TaskCompleted(now float64, core int)
}

// Task is one schedulable unit: an operator execution.
type Task struct {
	Label      string
	Job        *Job
	BaseNs     float64 // duration at unit rate on an uncontended core
	MemFrac    float64 // fraction of BaseNs bound on memory bandwidth
	Bytes      float64 // bytes moved; bandwidth demand = Bytes/BaseNs
	HomeSocket int     // socket owning the task's data partition
	OnStart    func(now float64, core int)
	OnComplete func(now float64, core int)
	Hooks      TaskHooks

	remaining float64
	rate      float64
	core      int
	rateDirty bool // optimized core only: rate inputs changed since last refresh
}

func (t *Task) started(now float64, core int) {
	if t.OnStart != nil {
		t.OnStart(now, core)
	} else if t.Hooks != nil {
		t.Hooks.TaskStarted(now, core)
	}
}

func (t *Task) completed(now float64, core int) {
	if t.OnComplete != nil {
		t.OnComplete(now, core)
	} else if t.Hooks != nil {
		t.Hooks.TaskCompleted(now, core)
	}
}

// Job groups tasks for admission control: at most MaxCores of a job's tasks
// run simultaneously (0 = unlimited). The Vectorwise comparator uses this to
// model its resource-allocation scheme (§4.2.4).
type Job struct {
	ID       int
	MaxCores int
	running  int
}

// coreSet is a bitset over core indices; with at most a few hundred logical
// cores it is one or two machine words per lookup.
type coreSet []uint64

func newCoreSet(n int) coreSet { return make(coreSet, (n+63)/64) }

func (s coreSet) set(i int)      { s[i>>6] |= 1 << (uint(i) & 63) }
func (s coreSet) clear(i int)    { s[i>>6] &^= 1 << (uint(i) & 63) }
func (s coreSet) has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// firstIn returns the lowest index present in both s and mask, or -1.
func (s coreSet) firstIn(mask coreSet) int {
	for w, b := range s {
		if b &= mask[w]; b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
	}
	return -1
}

// first returns the lowest index present in s, or -1.
func (s coreSet) first() int {
	for w, b := range s {
		if b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
	}
	return -1
}

// Machine is the simulated multi-core machine (optimized event core; see the
// package comment for the equivalence contract with Reference).
type Machine struct {
	cfg   Config
	rng   *rand.Rand
	now   float64
	ready []*Task
	// cores[i] holds the running task or nil. Core i lives on socket
	// i/(PhysCoresPerSocket*SMT); its SMT sibling is i^1 when SMT=2.
	cores   []*Task
	running int
	jobs    int

	// BusyNs accumulates core-busy virtual time for utilisation accounting.
	BusyNs float64

	tps      int     // hardware threads per socket
	run      []*Task // running tasks in ascending core order
	idle     coreSet // idle cores
	idleSib  coreSet // idle cores whose SMT sibling is also idle (SMT=2 only)
	homeMask []coreSet
	noHome   coreSet   // empty mask for out-of-range home sockets
	demand   []float64 // per-socket bandwidth demand, summed in core order
	dirty    []bool    // socket occupancy changed since last rate refresh

	// Fault-injection state (fault.go). All of it is nil/zero until a fault
	// is scheduled, and every hot-path touch is gated on that, so a machine
	// with no FaultPlan performs exactly the seed core's floating-point
	// operations and stays bit-identical to Reference.
	faults      []pendingFault // scheduled events, ascending time
	lost        coreSet        // permanently removed cores (nil until first loss)
	lostCount   int
	sockSpeed   []float64 // per-socket throttle multiplier (nil = all 1)
	burstFactor float64   // interference inflation on Submit while the window is open
	burstUntil  float64
	fstats      FaultStats
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) *Machine {
	if cfg.SMT != 1 && cfg.SMT != 2 {
		panic(fmt.Sprintf("sim: SMT=%d unsupported (1 or 2)", cfg.SMT))
	}
	if cfg.SpeedFactor <= 0 {
		cfg.SpeedFactor = 1
	}
	validateSocketSpeed(cfg)
	n := cfg.LogicalCores()
	m := &Machine{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cores:    make([]*Task, n),
		tps:      cfg.PhysCoresPerSocket * cfg.SMT,
		run:      make([]*Task, 0, n),
		idle:     newCoreSet(n),
		idleSib:  newCoreSet(n),
		homeMask: make([]coreSet, cfg.Sockets),
		noHome:   newCoreSet(n),
		demand:   make([]float64, cfg.Sockets),
		dirty:    make([]bool, cfg.Sockets),
	}
	for i := 0; i < n; i++ {
		m.idle.set(i)
		m.idleSib.set(i)
	}
	for s := 0; s < cfg.Sockets; s++ {
		m.homeMask[s] = newCoreSet(n)
		for c := s * m.tps; c < (s+1)*m.tps; c++ {
			m.homeMask[s].set(c)
		}
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the current virtual time in nanoseconds.
func (m *Machine) Now() float64 { return m.now }

// Busy returns the accumulated core-busy virtual time.
func (m *Machine) Busy() float64 { return m.BusyNs }

// NewJob allocates a job handle. maxCores of 0 means unlimited.
func (m *Machine) NewJob(maxCores int) *Job {
	m.jobs++
	return &Job{ID: m.jobs, MaxCores: maxCores}
}

// Submit queues a task; it starts when a core (and its job's core budget)
// becomes available. Submission order is preserved FIFO, which makes the
// whole simulation deterministic.
func (m *Machine) Submit(t *Task) {
	if t.Job == nil {
		panic("sim: task without job")
	}
	if t.BaseNs <= 0 {
		t.BaseNs = 1 // zero-length tasks still occupy a scheduling slot
	}
	if t.MemFrac < 0 {
		t.MemFrac = 0
	}
	if t.MemFrac > 1 {
		t.MemFrac = 1
	}
	t.remaining = t.BaseNs * m.noiseFactor()
	if m.burstFactor != 0 && m.now < m.burstUntil {
		t.remaining *= m.burstFactor // arriving inside an interference burst
	}
	m.ready = append(m.ready, t)
}

func (m *Machine) noiseFactor() float64 {
	n := m.cfg.Noise
	if !n.Enabled {
		return 1
	}
	f := 1 + n.Jitter*(2*m.rng.Float64()-1)
	if m.rng.Float64() < n.SpikeProb {
		f *= n.SpikeMin + m.rng.Float64()*(n.SpikeMax-n.SpikeMin)
	}
	return f
}

func (m *Machine) socketOf(core int) int { return core / m.tps }

// pickCore chooses an idle core for a task, preferring (1) an idle core with
// an idle SMT sibling on the task's home socket, (2) such a core anywhere,
// (3) any idle core on the home socket, (4) any idle core. Returns -1 when
// the machine is saturated. Ties break toward the lowest core index, exactly
// like the seed's ascending first-best scan.
func (m *Machine) pickCore(t *Task) int {
	sib := m.idleSib
	if m.cfg.SMT == 1 {
		sib = m.idle // every idle core trivially has an "idle sibling"
	}
	home := m.noHome
	if hs := t.HomeSocket % m.cfg.Sockets; hs >= 0 {
		home = m.homeMask[hs]
	}
	if c := sib.firstIn(home); c >= 0 {
		return c
	}
	if c := sib.first(); c >= 0 {
		return c
	}
	if c := m.idle.firstIn(home); c >= 0 {
		return c
	}
	return m.idle.first()
}

// insertRun adds t to the running list, keeping ascending core order so the
// progress/completion pass visits tasks exactly as the seed's core scan did.
func (m *Machine) insertRun(t *Task) {
	i := sort.Search(len(m.run), func(i int) bool { return m.run[i].core > t.core })
	m.run = append(m.run, nil)
	copy(m.run[i+1:], m.run[i:])
	m.run[i] = t
}

// place puts t on core, updating the free-core indexes and marking the
// affected socket (and any SMT sibling occupant) for rate refresh.
func (m *Machine) place(t *Task, core int) {
	t.core = core
	t.rateDirty = true
	m.cores[core] = t
	m.running++
	t.Job.running++
	m.idle.clear(core)
	m.dirty[core/m.tps] = true
	if m.cfg.SMT == 2 {
		sib := core ^ 1
		m.idleSib.clear(core)
		m.idleSib.clear(sib)
		if st := m.cores[sib]; st != nil {
			st.rateDirty = true // sibling loses its solo SMT rate
		}
	}
	m.insertRun(t)
	t.started(m.now, core)
}

// dispatch moves ready tasks onto idle cores, respecting job core budgets.
func (m *Machine) dispatch() {
	kept := m.ready[:0]
	for _, t := range m.ready {
		if t.Job.MaxCores > 0 && t.Job.running >= t.Job.MaxCores {
			kept = append(kept, t)
			continue
		}
		core := m.pickCore(t)
		if core < 0 {
			kept = append(kept, t)
			continue
		}
		m.place(t, core)
	}
	m.ready = kept
}

// refreshRates re-derives per-socket bandwidth demand for sockets whose
// occupancy changed, then recomputes rates for exactly the tasks whose
// inputs changed. Demand is re-summed over the socket's core range in
// ascending core order — the same floating-point additions in the same
// order as the seed's full recomputation — and a socket whose re-summed
// demand is unchanged triggers no rate work at all, which is sound because
// the rate formula is a pure function of (sibling occupancy, socket demand,
// task constants).
func (m *Machine) refreshRates() {
	for sock := range m.dirty {
		if !m.dirty[sock] {
			continue
		}
		m.dirty[sock] = false
		d := 0.0
		lo, hi := sock*m.tps, (sock+1)*m.tps
		for core := lo; core < hi; core++ {
			t := m.cores[core]
			if t == nil {
				continue
			}
			bw := 0.0
			if t.BaseNs > 0 {
				bw = t.Bytes / t.BaseNs * t.MemFrac
			}
			d += bw
		}
		if d != m.demand[sock] {
			m.demand[sock] = d
			for core := lo; core < hi; core++ {
				if t := m.cores[core]; t != nil {
					t.rateDirty = true
				}
			}
		}
	}
	for _, t := range m.run {
		if !t.rateDirty {
			continue
		}
		t.rateDirty = false
		core := t.core
		rate := m.cfg.SpeedFactor
		if m.cfg.SMT == 2 && m.cores[core^1] != nil {
			rate *= m.cfg.SMTFactor
		}
		sock := core / m.tps
		if m.cfg.SocketSpeed != nil {
			rate *= m.cfg.SocketSpeed[sock] // configured asymmetric clocks
		}
		if m.sockSpeed != nil {
			rate *= m.sockSpeed[sock] // fault-injection throttle (fault.go)
		}
		bwFactor := 1.0
		if m.demand[sock] > m.cfg.BWPerSocket && m.demand[sock] > 0 {
			bwFactor = m.cfg.BWPerSocket / m.demand[sock]
		}
		numa := 1.0
		if m.cfg.Sockets > 1 && sock != t.HomeSocket%m.cfg.Sockets && m.cfg.NUMAFactor > 1 {
			numa = 1 / m.cfg.NUMAFactor
		}
		memRate := bwFactor * numa
		t.rate = rate * ((1 - t.MemFrac) + t.MemFrac*memRate)
		if t.rate <= 0 {
			t.rate = 1e-9
		}
	}
}

// step advances the simulation by one event. It reports false when nothing
// is running and nothing could be dispatched.
func (m *Machine) step() bool {
	if m.faults != nil {
		m.applyFaultsDue() // before dispatch: a just-lost core is unplaceable
	}
	m.dispatch()
	if m.running == 0 {
		return false
	}
	m.refreshRates()
	// Find the earliest completion among running tasks.
	dt := math.Inf(1)
	for _, t := range m.run {
		if d := t.remaining / t.rate; d < dt {
			dt = d
		}
	}
	if m.faults != nil {
		// Never step past a scheduled fault: cap the advance at the fault
		// instant (running tasks take partial progress, none complete) so the
		// fault applies at exactly its scheduled virtual time next step.
		if rem := m.faults[0].at - m.now; rem < dt {
			dt = rem
		}
	}
	m.now += dt
	// Progress everyone; complete all tasks that finish at this instant, in
	// core order for determinism. Completion callbacks may Submit new work
	// (touching only the ready queue), never the running list.
	kept := m.run[:0]
	for _, t := range m.run {
		t.remaining -= dt * t.rate
		if t.remaining > 1e-9 {
			kept = append(kept, t)
			continue
		}
		core := t.core
		m.cores[core] = nil
		m.running--
		t.Job.running--
		m.idle.set(core)
		m.dirty[core/m.tps] = true
		if m.cfg.SMT == 2 {
			sib := core ^ 1
			if st := m.cores[sib]; st == nil {
				m.idleSib.set(core)
				if m.lost == nil || !m.lost.has(sib) {
					m.idleSib.set(sib) // a lost sibling stays unplaceable
				}
			} else {
				st.rateDirty = true // sibling regains its solo SMT rate
			}
		}
		m.BusyNs += t.BaseNs / m.cfg.SpeedFactor // busy time at nominal rate
		t.completed(m.now, core)
	}
	m.run = kept
	return true
}

// reportDeadlock panics when ready tasks remain that no core budget will
// ever admit — the machine drained with work still queued.
func (m *Machine) reportDeadlock() {
	if len(m.ready) > 0 {
		if m.lostCount > 0 {
			panic(fmt.Sprintf("sim: %d tasks remain undispatchable (%d of %d cores lost to faults)", len(m.ready), m.lostCount, len(m.cores)))
		}
		panic(fmt.Sprintf("sim: %d tasks remain undispatchable (job core budgets deadlocked?)", len(m.ready)))
	}
}

// Run processes events until the machine drains: no running tasks and no
// dispatchable ready tasks. Completion callbacks may submit further tasks.
func (m *Machine) Run() {
	for m.step() {
	}
	m.reportDeadlock()
}

// RunUntil processes events until done() reports true or the machine
// drains. It lets a caller wait for one job while unrelated work (e.g. a
// background load generator) keeps the machine busy. If the machine drains
// with undispatchable ready tasks before done() is satisfied, RunUntil
// surfaces the same core-budget-deadlock panic as Run instead of returning
// silently with the waited-for work permanently stuck.
func (m *Machine) RunUntil(done func() bool) {
	for !done() {
		if !m.step() {
			m.reportDeadlock()
			return
		}
	}
}

// L3SharePerSocket exposes the socket L3 size to the cost model.
func (m *Machine) L3SharePerSocket() int64 { return m.cfg.L3PerSocket }
