// Package sim implements the discrete-event multi-core machine on which all
// query plans execute. It is the substitute for the paper's physical Xeon
// servers (DESIGN.md §2): cores grouped into sockets with SMT pairs, a
// processor-sharing model of the shared memory bandwidth per socket, NUMA
// remote-access penalties, and a seeded OS-noise model. Operators compute
// real results on the host; the simulator only decides how long each
// operator *takes* and when it runs, in virtual nanoseconds.
//
// The fluid model: every running task has `remaining` nanoseconds of
// unit-rate work and progresses at a rate determined by its core's SMT
// occupancy and the socket's bandwidth saturation. Rates are recomputed at
// every event (task start or completion), and the clock jumps to the next
// completion — a classic processor-sharing event simulation, deterministic
// for a fixed seed and submission order.
package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Config describes a simulated machine. Byte capacities are scaled by the
// same factor as the datasets (1/100 of the paper's hardware) so that
// cache-residency crossovers land where the paper's do.
type Config struct {
	Name               string
	Sockets            int
	PhysCoresPerSocket int
	SMT                int     // hardware threads per physical core
	SpeedFactor        float64 // relative per-core speed (1.0 = 2.0 GHz class)
	L3PerSocket        int64   // bytes, scaled
	BWPerSocket        float64 // bytes per ns of memory bandwidth, scaled
	SMTFactor          float64 // per-thread rate when the SMT sibling is busy
	NUMAFactor         float64 // memory slowdown for remote-socket access
	Noise              NoiseConfig
	Seed               int64
}

// LogicalCores returns the number of schedulable hardware threads.
func (c Config) LogicalCores() int { return c.Sockets * c.PhysCoresPerSocket * c.SMT }

// PhysicalCores returns the number of physical cores.
func (c Config) PhysicalCores() int { return c.Sockets * c.PhysCoresPerSocket }

// TwoSocket mirrors the paper's 2-socket Intel Xeon E5-2650 machine
// (Table 1): 2×8 physical cores, 32 hyper-threads, 20 MB shared L3 per
// socket and 256 GB of RAM — L3 and bandwidth scaled 1/100 like the data.
func TwoSocket() Config {
	return Config{
		Name:               "2-socket E5-2650-class (32 threads)",
		Sockets:            2,
		PhysCoresPerSocket: 8,
		SMT:                2,
		SpeedFactor:        1.0,
		L3PerSocket:        200 << 10, // 20 MB scaled 1/100
		BWPerSocket:        40,        // ~4 GB/s per socket at 1/100 scale
		SMTFactor:          0.55,
		NUMAFactor:         1.35,
	}
}

// FourSocket mirrors the paper's 4-socket Intel Xeon E5-4657Lv2 machine
// (Table 1): 4×12 physical cores, 96 hyper-threads, 30 MB L3 per socket,
// 2.4 GHz (1.2× the two-socket machine's clock).
func FourSocket() Config {
	return Config{
		Name:               "4-socket E5-4657Lv2-class (96 threads)",
		Sockets:            4,
		PhysCoresPerSocket: 12,
		SMT:                2,
		SpeedFactor:        1.2,
		L3PerSocket:        300 << 10, // 30 MB scaled 1/100
		BWPerSocket:        40,
		SMTFactor:          0.55,
		NUMAFactor:         1.35,
	}
}

// NoiseConfig models run-time environment disturbance (§3.3.3): multiplicative
// jitter on every task and rare large spikes that mimic OS interference.
type NoiseConfig struct {
	Enabled   bool
	Jitter    float64 // uniform ±Jitter fraction on every task
	SpikeProb float64 // probability a task is hit by an interference spike
	SpikeMin  float64 // spike multiplier range
	SpikeMax  float64
}

// DefaultNoise is calibrated so that convergence traces show the occasional
// above-serial peak of Figure 11 without drowning the signal.
func DefaultNoise() NoiseConfig {
	return NoiseConfig{Enabled: true, Jitter: 0.03, SpikeProb: 0.004, SpikeMin: 4, SpikeMax: 10}
}

// Task is one schedulable unit: an operator execution.
type Task struct {
	Label      string
	Job        *Job
	BaseNs     float64 // duration at unit rate on an uncontended core
	MemFrac    float64 // fraction of BaseNs bound on memory bandwidth
	Bytes      float64 // bytes moved; bandwidth demand = Bytes/BaseNs
	HomeSocket int     // socket owning the task's data partition
	OnStart    func(now float64, core int)
	OnComplete func(now float64, core int)

	remaining float64
	rate      float64
	core      int
}

// Job groups tasks for admission control: at most MaxCores of a job's tasks
// run simultaneously (0 = unlimited). The Vectorwise comparator uses this to
// model its resource-allocation scheme (§4.2.4).
type Job struct {
	ID       int
	MaxCores int
	running  int
}

// Machine is the simulated multi-core machine.
type Machine struct {
	cfg   Config
	rng   *rand.Rand
	now   float64
	ready []*Task
	// cores[i] holds the running task or nil. Core i lives on socket
	// i/(PhysCoresPerSocket*SMT); its SMT sibling is i^1 when SMT=2.
	cores   []*Task
	running int
	jobs    int

	// BusyNs accumulates core-busy virtual time for utilisation accounting.
	BusyNs float64
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) *Machine {
	if cfg.SMT != 1 && cfg.SMT != 2 {
		panic(fmt.Sprintf("sim: SMT=%d unsupported (1 or 2)", cfg.SMT))
	}
	if cfg.SpeedFactor <= 0 {
		cfg.SpeedFactor = 1
	}
	return &Machine{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cores: make([]*Task, cfg.LogicalCores()),
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the current virtual time in nanoseconds.
func (m *Machine) Now() float64 { return m.now }

// NewJob allocates a job handle. maxCores of 0 means unlimited.
func (m *Machine) NewJob(maxCores int) *Job {
	m.jobs++
	return &Job{ID: m.jobs, MaxCores: maxCores}
}

// Submit queues a task; it starts when a core (and its job's core budget)
// becomes available. Submission order is preserved FIFO, which makes the
// whole simulation deterministic.
func (m *Machine) Submit(t *Task) {
	if t.Job == nil {
		panic("sim: task without job")
	}
	if t.BaseNs <= 0 {
		t.BaseNs = 1 // zero-length tasks still occupy a scheduling slot
	}
	if t.MemFrac < 0 {
		t.MemFrac = 0
	}
	if t.MemFrac > 1 {
		t.MemFrac = 1
	}
	t.remaining = t.BaseNs * m.noiseFactor()
	m.ready = append(m.ready, t)
}

func (m *Machine) noiseFactor() float64 {
	n := m.cfg.Noise
	if !n.Enabled {
		return 1
	}
	f := 1 + n.Jitter*(2*m.rng.Float64()-1)
	if m.rng.Float64() < n.SpikeProb {
		f *= n.SpikeMin + m.rng.Float64()*(n.SpikeMax-n.SpikeMin)
	}
	return f
}

func (m *Machine) socketOf(core int) int {
	return core / (m.cfg.PhysCoresPerSocket * m.cfg.SMT)
}

func (m *Machine) siblingOf(core int) int {
	if m.cfg.SMT == 1 {
		return -1
	}
	return core ^ 1
}

// pickCore chooses an idle core for a task, preferring (1) an idle core with
// an idle SMT sibling on the task's home socket, (2) such a core anywhere,
// (3) any idle core on the home socket, (4) any idle core. Returns -1 when
// the machine is saturated.
func (m *Machine) pickCore(t *Task) int {
	best := -1
	bestScore := -1
	for i, occ := range m.cores {
		if occ != nil {
			continue
		}
		score := 0
		if sib := m.siblingOf(i); sib < 0 || m.cores[sib] == nil {
			score += 2
		}
		if m.socketOf(i) == t.HomeSocket%m.cfg.Sockets {
			score++
		}
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	return best
}

// dispatch moves ready tasks onto idle cores, respecting job core budgets.
func (m *Machine) dispatch() {
	kept := m.ready[:0]
	for _, t := range m.ready {
		if t.Job.MaxCores > 0 && t.Job.running >= t.Job.MaxCores {
			kept = append(kept, t)
			continue
		}
		core := m.pickCore(t)
		if core < 0 {
			kept = append(kept, t)
			continue
		}
		t.core = core
		m.cores[core] = t
		m.running++
		t.Job.running++
		if t.OnStart != nil {
			t.OnStart(m.now, core)
		}
	}
	m.ready = kept
}

// recomputeRates refreshes every running task's progress rate from the
// current SMT occupancy and per-socket bandwidth saturation.
func (m *Machine) recomputeRates() {
	// Per-socket bandwidth demand of the memory-bound parts.
	demand := make([]float64, m.cfg.Sockets)
	for core, t := range m.cores {
		if t == nil {
			continue
		}
		bw := 0.0
		if t.BaseNs > 0 {
			bw = t.Bytes / t.BaseNs * t.MemFrac
		}
		demand[m.socketOf(core)] += bw
	}
	for core, t := range m.cores {
		if t == nil {
			continue
		}
		rate := m.cfg.SpeedFactor
		if sib := m.siblingOf(core); sib >= 0 && m.cores[sib] != nil {
			rate *= m.cfg.SMTFactor
		}
		sock := m.socketOf(core)
		bwFactor := 1.0
		if demand[sock] > m.cfg.BWPerSocket && demand[sock] > 0 {
			bwFactor = m.cfg.BWPerSocket / demand[sock]
		}
		numa := 1.0
		if m.cfg.Sockets > 1 && sock != t.HomeSocket%m.cfg.Sockets && m.cfg.NUMAFactor > 1 {
			numa = 1 / m.cfg.NUMAFactor
		}
		memRate := bwFactor * numa
		t.rate = rate * ((1 - t.MemFrac) + t.MemFrac*memRate)
		if t.rate <= 0 {
			t.rate = 1e-9
		}
	}
}

// step advances the simulation by one event. It reports false when nothing
// is running and nothing could be dispatched.
func (m *Machine) step() bool {
	m.dispatch()
	if m.running == 0 {
		return false
	}
	m.recomputeRates()
	// Find the earliest completion.
	dt := math.Inf(1)
	for _, t := range m.cores {
		if t == nil {
			continue
		}
		if d := t.remaining / t.rate; d < dt {
			dt = d
		}
	}
	m.now += dt
	// Progress everyone; complete all tasks that finish at this instant, in
	// core order for determinism.
	for core, t := range m.cores {
		if t == nil {
			continue
		}
		t.remaining -= dt * t.rate
		if t.remaining <= 1e-9 {
			m.cores[core] = nil
			m.running--
			t.Job.running--
			m.BusyNs += t.BaseNs / m.cfg.SpeedFactor // busy time at nominal rate
			if t.OnComplete != nil {
				t.OnComplete(m.now, core)
			}
		}
	}
	return true
}

// Run processes events until the machine drains: no running tasks and no
// dispatchable ready tasks. Completion callbacks may submit further tasks.
func (m *Machine) Run() {
	for m.step() {
	}
	if len(m.ready) > 0 {
		panic(fmt.Sprintf("sim: %d tasks remain undispatchable (job core budgets deadlocked?)", len(m.ready)))
	}
}

// RunUntil processes events until done() reports true or the machine
// drains. It lets a caller wait for one job while unrelated work (e.g. a
// background load generator) keeps the machine busy.
func (m *Machine) RunUntil(done func() bool) {
	for !done() && m.step() {
	}
}

// L3SharePerSocket exposes the socket L3 size to the cost model.
func (m *Machine) L3SharePerSocket() int64 { return m.cfg.L3PerSocket }
