package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Fault injection: deterministic, virtual-time-scheduled machine degradation
// (ROADMAP item 5, "drift, mutation, and hostile conditions"). A FaultPlan is
// a list of FaultEvents applied to the machine when its clock reaches their
// AtNs — the event core advances the clock *to* each pending fault time (with
// partial progress for every running task) before applying it, so a fault
// lands at exactly its scheduled instant regardless of what is running.
//
// The equivalence contract with the seed core is preserved by construction:
// every fault-handling path is gated on state that is nil/zero until a fault
// is scheduled, so with no FaultPlan the machine performs the same
// floating-point operations on the same values in the same order as before
// and stays bit-identical to Reference (the golden tests pin this).
//
// Fault semantics:
//
//   - FaultCoreLoss removes cores from the machine permanently. A task
//     running on a lost core is migrated: requeued at the ready-queue tail
//     with its remaining work preserved (no re-noising), exactly as an OS
//     would reschedule after a CPU offline. Lost cores never re-enter the
//     free-core indexes; a core whose SMT sibling is lost runs at solo rate
//     (the sibling is gone, not busy). The machine refuses to lose its last
//     available core (counted in FaultStats.Skipped).
//   - FaultSocketThrottle multiplies one socket's core speed by Factor
//     (e.g. 0.5 = thermal/power throttling to half clock) until DurationNs
//     elapses (0 = permanent). Restores are scheduled as synthetic events so
//     rates snap back at exactly AtNs+DurationNs.
//   - FaultInterference models an external load burst: running tasks'
//     remaining work is inflated by Factor once at AtNs, and tasks submitted
//     while the burst window [AtNs, AtNs+DurationNs) is open are inflated on
//     entry. A zero DurationNs hits only the tasks running at AtNs.
type FaultKind int

const (
	// FaultCoreLoss permanently removes cores (Cores explicitly, or Count
	// cores of socket Socket in ascending index order).
	FaultCoreLoss FaultKind = iota
	// FaultSocketThrottle scales socket Socket's core speed by Factor for
	// DurationNs (0 = permanently).
	FaultSocketThrottle
	// FaultInterference inflates running tasks' remaining work by Factor and
	// keeps inflating submissions for DurationNs.
	FaultInterference
)

// String names the fault kind for stats and logs.
func (k FaultKind) String() string {
	switch k {
	case FaultCoreLoss:
		return "core-loss"
	case FaultSocketThrottle:
		return "socket-throttle"
	case FaultInterference:
		return "interference"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultEvent is one scheduled machine fault.
type FaultEvent struct {
	// AtNs is the virtual time the fault lands. Events injected with a past
	// AtNs are clamped to the machine's current clock.
	AtNs float64
	Kind FaultKind
	// Socket targets FaultSocketThrottle, and selects the socket whose cores
	// FaultCoreLoss removes when Cores is empty. Out-of-range values wrap
	// (mod Sockets), matching Task.HomeSocket semantics.
	Socket int
	// Cores lists explicit core indices for FaultCoreLoss (overrides
	// Socket/Count). Out-of-range indices are skipped.
	Cores []int
	// Count is how many cores FaultCoreLoss removes when Cores is empty
	// (0 = 1). Cores are taken from socket Socket in ascending index order,
	// skipping already-lost ones.
	Count int
	// Factor is the throttle speed multiplier (<1 slows; clamped to (0,1])
	// or the interference work inflation (>1 inflates; clamped to >= 1).
	Factor float64
	// DurationNs bounds throttle and interference windows (0 = permanent
	// throttle / instantaneous interference).
	DurationNs float64
}

// FaultPlan is a schedule of machine faults, applied in AtNs order.
type FaultPlan []FaultEvent

// Sorted returns a copy of the plan in ascending AtNs order (stable, so
// same-instant faults keep their declaration order).
func (p FaultPlan) Sorted() FaultPlan {
	out := make(FaultPlan, len(p))
	copy(out, p)
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtNs < out[j].AtNs })
	return out
}

// GenFaultPlan derives a deterministic random fault plan from a seed: n
// events of mixed kinds uniformly spread over [0, horizonNs), never losing
// more than half the machine's cores in total. Two calls with the same
// arguments produce the same plan.
func GenFaultPlan(cfg Config, seed int64, n int, horizonNs float64) FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	plan := make(FaultPlan, 0, n)
	lossBudget := cfg.LogicalCores() / 2
	for i := 0; i < n; i++ {
		ev := FaultEvent{
			AtNs:   rng.Float64() * horizonNs,
			Socket: rng.Intn(maxInt(1, cfg.Sockets)),
		}
		switch rng.Intn(3) {
		case 0:
			if lossBudget > 0 {
				ev.Kind = FaultCoreLoss
				ev.Count = 1 + rng.Intn(maxInt(1, lossBudget/2))
				if ev.Count > lossBudget {
					ev.Count = lossBudget
				}
				lossBudget -= ev.Count
				break
			}
			fallthrough
		case 1:
			ev.Kind = FaultSocketThrottle
			ev.Factor = 0.3 + 0.5*rng.Float64()
			ev.DurationNs = horizonNs * (0.05 + 0.2*rng.Float64())
		default:
			ev.Kind = FaultInterference
			ev.Factor = 1.5 + 3*rng.Float64()
			ev.DurationNs = horizonNs * 0.1 * rng.Float64()
		}
		plan = append(plan, ev)
	}
	return plan.Sorted()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FaultStats counts the machine's applied faults and their effects.
type FaultStats struct {
	// Injected counts fault events applied (restores of a bounded throttle
	// are part of their throttle, not separate events).
	Injected int `json:"injected"`
	// CoresLost counts cores permanently removed.
	CoresLost int `json:"cores_lost"`
	// TasksMigrated counts running tasks requeued off lost cores.
	TasksMigrated int `json:"tasks_migrated"`
	// SocketThrottles and InterferenceBursts count events by kind.
	SocketThrottles    int `json:"socket_throttles"`
	InterferenceBursts int `json:"interference_bursts"`
	// Skipped counts refused fault effects (losing the last available core,
	// already-lost or out-of-range core indices).
	Skipped int `json:"skipped"`
}

// pendingFault is one scheduled entry of the machine's fault queue; restore
// entries are synthetic events that undo a bounded socket throttle.
type pendingFault struct {
	at      float64
	ev      FaultEvent
	restore bool
}

// SetFaultPlan replaces the machine's pending fault schedule. Events dated
// before the current clock apply at the next event-loop step. Passing an
// empty plan clears pending faults (already-applied ones persist).
func (m *Machine) SetFaultPlan(plan FaultPlan) {
	m.faults = m.faults[:0]
	for _, ev := range plan.Sorted() {
		m.queueFault(pendingFault{at: ev.AtNs, ev: ev})
	}
	if len(m.faults) == 0 {
		m.faults = nil
	}
}

// InjectFault schedules one fault event; an AtNs in the past is clamped to
// the current clock so the fault lands at the machine's next step.
func (m *Machine) InjectFault(ev FaultEvent) {
	if ev.AtNs < m.now {
		ev.AtNs = m.now
	}
	m.queueFault(pendingFault{at: ev.AtNs, ev: ev})
}

// queueFault inserts in ascending time order; ties go after existing entries
// so injection order is preserved at the same instant.
func (m *Machine) queueFault(f pendingFault) {
	i := sort.Search(len(m.faults), func(i int) bool { return m.faults[i].at > f.at })
	m.faults = append(m.faults, pendingFault{})
	copy(m.faults[i+1:], m.faults[i:])
	m.faults[i] = f
}

// Faults reports the machine's applied-fault counters.
func (m *Machine) Faults() FaultStats { return m.fstats }

// PendingFaults reports how many scheduled fault events (including synthetic
// throttle restores) have not yet applied.
func (m *Machine) PendingFaults() int { return len(m.faults) }

// LostCores reports how many cores have been removed by FaultCoreLoss.
func (m *Machine) LostCores() int { return m.lostCount }

// AvailableCores reports the schedulable core count (logical minus lost).
func (m *Machine) AvailableCores() int { return len(m.cores) - m.lostCount }

// applyFaultsDue applies every pending fault dated at or before the current
// clock, in schedule order. Called at the top of each event step, before
// dispatch, so placements never use a just-lost core.
func (m *Machine) applyFaultsDue() {
	for len(m.faults) > 0 && m.faults[0].at <= m.now {
		f := m.faults[0]
		copy(m.faults, m.faults[1:])
		m.faults = m.faults[:len(m.faults)-1]
		m.applyFault(f)
	}
	if len(m.faults) == 0 {
		m.faults = nil
	}
}

func (m *Machine) applyFault(f pendingFault) {
	if f.restore {
		m.setSocketSpeed(f.ev.Socket, 1)
		return
	}
	ev := f.ev
	switch ev.Kind {
	case FaultCoreLoss:
		m.fstats.Injected++
		if len(ev.Cores) > 0 {
			for _, c := range ev.Cores {
				m.loseCore(c)
			}
			return
		}
		count := ev.Count
		if count <= 0 {
			count = 1
		}
		sock := ev.Socket % m.cfg.Sockets
		if sock < 0 {
			sock += m.cfg.Sockets
		}
		for c := sock * m.tps; c < (sock+1)*m.tps && count > 0; c++ {
			if m.lost != nil && m.lost.has(c) {
				continue
			}
			if m.loseCore(c) {
				count--
			}
		}
		for ; count > 0; count-- {
			m.fstats.Skipped++
		}
	case FaultSocketThrottle:
		m.fstats.Injected++
		m.fstats.SocketThrottles++
		factor := ev.Factor
		if factor <= 0 || factor > 1 {
			factor = 0.5
		}
		sock := ev.Socket % m.cfg.Sockets
		if sock < 0 {
			sock += m.cfg.Sockets
		}
		m.setSocketSpeed(sock, factor)
		if ev.DurationNs > 0 {
			m.queueFault(pendingFault{
				at:      f.at + ev.DurationNs,
				ev:      FaultEvent{Socket: sock},
				restore: true,
			})
		}
	case FaultInterference:
		m.fstats.Injected++
		m.fstats.InterferenceBursts++
		factor := ev.Factor
		if factor < 1 {
			factor = 1.5
		}
		for _, t := range m.run {
			t.remaining *= factor
		}
		if ev.DurationNs > 0 {
			m.burstFactor = factor
			m.burstUntil = f.at + ev.DurationNs
		}
	default:
		m.fstats.Skipped++
	}
}

// loseCore permanently removes one core, migrating any running task back to
// the ready-queue tail with its remaining work preserved. It reports whether
// the core was actually lost (false: out of range, already lost, or it is
// the machine's last available core).
func (m *Machine) loseCore(c int) bool {
	if c < 0 || c >= len(m.cores) || m.lostCount >= len(m.cores)-1 {
		m.fstats.Skipped++
		return false
	}
	if m.lost == nil {
		m.lost = newCoreSet(len(m.cores))
	}
	if m.lost.has(c) {
		m.fstats.Skipped++
		return false
	}
	m.lost.set(c)
	m.lostCount++
	m.fstats.CoresLost++
	m.idle.clear(c)
	m.idleSib.clear(c)
	if t := m.cores[c]; t != nil {
		// Migrate: the task keeps its progress and re-enters the FIFO ready
		// queue, to be re-placed (possibly on another socket) next dispatch.
		m.cores[c] = nil
		m.running--
		t.Job.running--
		m.removeRun(t)
		m.dirty[c/m.tps] = true
		m.fstats.TasksMigrated++
		m.ready = append(m.ready, t)
	}
	if m.cfg.SMT == 2 {
		// The surviving sibling now runs solo: it keeps full SMT rate (the
		// rate formula sees an empty sibling slot), and if idle it regains
		// "idle with idle sibling" placement preference.
		sib := c ^ 1
		if st := m.cores[sib]; st != nil {
			st.rateDirty = true
		} else if m.idle.has(sib) {
			m.idleSib.set(sib)
		}
	}
	return true
}

// removeRun deletes t from the running list (kept in ascending core order).
func (m *Machine) removeRun(t *Task) {
	i := sort.Search(len(m.run), func(i int) bool { return m.run[i].core >= t.core })
	if i < len(m.run) && m.run[i] == t {
		m.run = append(m.run[:i], m.run[i+1:]...)
	}
}

// setSocketSpeed sets one socket's throttle multiplier and marks its running
// tasks for rate recomputation.
func (m *Machine) setSocketSpeed(sock int, factor float64) {
	if m.sockSpeed == nil {
		m.sockSpeed = make([]float64, m.cfg.Sockets)
		for i := range m.sockSpeed {
			m.sockSpeed[i] = 1
		}
	}
	if m.sockSpeed[sock] == factor {
		return
	}
	m.sockSpeed[sock] = factor
	for c := sock * m.tps; c < (sock+1)*m.tps; c++ {
		if t := m.cores[c]; t != nil {
			t.rateDirty = true
		}
	}
}
