package sim

import "testing"

// benchScenario is the standard event-core benchmark load: a 96-thread
// FourSocket machine saturated by several jobs' worth of partition waves
// with reduction chains — the shape a high-DOP adaptive plan produces.
func benchScenario() (*Scenario, Config) {
	mach := FourSocket()
	sc := GenScenario("bench", ScenarioConfig{
		Seed: 1, Jobs: 4, Roots: 400, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.6, Budgets: true,
	}, mach)
	return sc, mach
}

func BenchmarkEventCoreOptimized(b *testing.B) {
	sc, mach := benchScenario()
	b.ReportMetric(float64(sc.NumTasks()), "tasks")
	for i := 0; i < b.N; i++ {
		sc.Play(NewMachine(mach))
	}
}

func BenchmarkEventCoreReference(b *testing.B) {
	sc, mach := benchScenario()
	for i := 0; i < b.N; i++ {
		sc.Play(NewReference(mach))
	}
}
