package sim

import (
	"math"
	"reflect"
	"testing"
)

// TestFaultOffBitIdentical pins the gating contract: a machine with a fault
// plan whose events never fire (scheduled beyond the workload's horizon)
// produces a timeline bit-identical to a machine with no plan at all — the
// fault paths are comparisons only until an event actually lands.
func TestFaultOffBitIdentical(t *testing.T) {
	cfg := tinyConfig()
	cfg.Noise = DefaultNoise()
	cfg.Seed = 7
	sc := GenScenario("fault-off", ScenarioConfig{
		Seed: 11, Jobs: 3, Roots: 24, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.5, Budgets: true,
	}, cfg)

	base := sc.Play(NewMachine(cfg))
	armed := NewMachine(cfg)
	armed.SetFaultPlan(FaultPlan{{AtNs: 1e15, Kind: FaultCoreLoss, Count: 2}})
	got := sc.Play(armed)

	if base.FinalNs != got.FinalNs || base.BusyNs != got.BusyNs {
		t.Fatalf("pending-but-unfired fault changed the clock: %v/%v vs %v/%v",
			base.FinalNs, base.BusyNs, got.FinalNs, got.BusyNs)
	}
	if !reflect.DeepEqual(base.Events, got.Events) {
		t.Fatal("pending-but-unfired fault changed the timeline")
	}
	if armed.Faults().Injected != 0 || armed.PendingFaults() != 1 {
		t.Fatalf("stats = %+v pending = %d", armed.Faults(), armed.PendingFaults())
	}
}

// TestCoreLossMigratesRunningTasks loses all of socket 0 mid-run: its two
// running tasks migrate to socket 1 with progress preserved, everything
// completes, and the lost cores never host work again.
func TestCoreLossMigratesRunningTasks(t *testing.T) {
	m := NewMachine(tinyConfig()) // 2 sockets × 2 phys × SMT2; socket 0 = cores 0–3
	m.SetFaultPlan(FaultPlan{{AtNs: 50, Kind: FaultCoreLoss, Socket: 0, Count: 4}})
	job := m.NewJob(0)
	done := 0
	submitN(m, job, 4, 100, &done) // placed on cores 0,2 (socket 0) and 4,6 (socket 1)
	m.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	// 0–50: four solo physical cores at rate 1. At 50 the socket-0 pair
	// migrates onto cores 5 and 7; all four threads now share SMT pairs at
	// rate 0.5, so the remaining 50 ns of work takes 100 ns.
	if math.Abs(m.Now()-150) > 1e-6 {
		t.Fatalf("Now = %f, want 150", m.Now())
	}
	fs := m.Faults()
	if fs.Injected != 1 || fs.CoresLost != 4 || fs.TasksMigrated != 2 {
		t.Fatalf("stats = %+v", fs)
	}
	if m.LostCores() != 4 || m.AvailableCores() != 4 {
		t.Fatalf("lost/avail = %d/%d", m.LostCores(), m.AvailableCores())
	}
	// Post-loss work must avoid the dead socket.
	var cores []int
	for i := 0; i < 6; i++ {
		m.Submit(&Task{Job: job, BaseNs: 10, HomeSocket: 0,
			OnStart: func(now float64, c int) { cores = append(cores, c) }})
	}
	m.Run()
	for _, c := range cores {
		if c < 4 {
			t.Fatalf("task placed on lost core %d", c)
		}
	}
}

// TestCoreLossRefusesLastCore: the machine keeps one core alive no matter
// what the plan asks for.
func TestCoreLossRefusesLastCore(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sockets = 1
	cfg.PhysCoresPerSocket = 1
	cfg.SMT = 1
	m := NewMachine(cfg)
	m.SetFaultPlan(FaultPlan{{AtNs: 0, Kind: FaultCoreLoss, Count: 1}})
	job := m.NewJob(0)
	done := 0
	submitN(m, job, 2, 100, &done)
	m.Run()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	fs := m.Faults()
	if fs.CoresLost != 0 || fs.Skipped == 0 {
		t.Fatalf("stats = %+v", fs)
	}
}

// TestSocketThrottleSlowsAndRestores: a 0.5× throttle over [0,40) makes a
// 100 ns task take 120 ns (40 at half rate = 20 ns of progress, 80 at full).
func TestSocketThrottleSlowsAndRestores(t *testing.T) {
	m := NewMachine(tinyConfig())
	m.SetFaultPlan(FaultPlan{{AtNs: 0, Kind: FaultSocketThrottle, Socket: 0, Factor: 0.5, DurationNs: 40}})
	job := m.NewJob(0)
	m.Submit(&Task{Job: job, BaseNs: 100, HomeSocket: 0})
	m.Run()
	if math.Abs(m.Now()-120) > 1e-6 {
		t.Fatalf("Now = %f, want 120", m.Now())
	}
	if fs := m.Faults(); fs.SocketThrottles != 1 {
		t.Fatalf("stats = %+v", fs)
	}
	// Permanent throttle: no restore, the task runs at half rate throughout.
	m2 := NewMachine(tinyConfig())
	m2.SetFaultPlan(FaultPlan{{AtNs: 0, Kind: FaultSocketThrottle, Socket: 0, Factor: 0.5}})
	job2 := m2.NewJob(0)
	m2.Submit(&Task{Job: job2, BaseNs: 100, HomeSocket: 0})
	m2.Run()
	if math.Abs(m2.Now()-200) > 1e-6 {
		t.Fatalf("permanent throttle Now = %f, want 200", m2.Now())
	}
}

// TestInterferenceBurstInflatesWork: the burst doubles the running task's
// remaining work at 10 ns and doubles a task submitted inside the window.
func TestInterferenceBurstInflatesWork(t *testing.T) {
	m := NewMachine(tinyConfig())
	m.SetFaultPlan(FaultPlan{{AtNs: 10, Kind: FaultInterference, Factor: 2, DurationNs: 50}})
	job := m.NewJob(0)
	var secondEnd float64
	m.Submit(&Task{
		Job: job, BaseNs: 20, HomeSocket: 0,
		OnComplete: func(now float64, core int) {
			// now = 30 (10 + inflated 2×10), inside the [10,60) window: the
			// spawned 100 ns task is inflated on entry to 200 ns.
			m.Submit(&Task{Job: job, BaseNs: 100, HomeSocket: 0,
				OnComplete: func(now float64, core int) { secondEnd = now }})
		},
	})
	m.Run()
	if math.Abs(secondEnd-230) > 1e-6 {
		t.Fatalf("second task end = %f, want 230", secondEnd)
	}
	if fs := m.Faults(); fs.InterferenceBursts != 1 {
		t.Fatalf("stats = %+v", fs)
	}
}

// TestInjectFaultClampsPastTimes: an event dated before the clock lands at
// the machine's next step instead of being dropped.
func TestInjectFaultClampsPastTimes(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(0)
	done := 0
	submitN(m, job, 2, 100, &done)
	m.Run() // clock now at 100
	m.InjectFault(FaultEvent{AtNs: 0, Kind: FaultCoreLoss, Socket: 0, Count: 2})
	submitN(m, job, 2, 100, &done)
	m.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if m.LostCores() != 2 {
		t.Fatalf("lost = %d", m.LostCores())
	}
}

// TestFaultedRunDeterministic: the same seed, workload, and plan replay to
// the identical virtual timeline.
func TestFaultedRunDeterministic(t *testing.T) {
	run := func() *Timeline {
		cfg := tinyConfig()
		cfg.Noise = DefaultNoise()
		cfg.Seed = 42
		sc := GenScenario("chaos", ScenarioConfig{
			Seed: 5, Jobs: 2, Roots: 16, MaxChain: 2, MaxFanout: 2, MemHeavy: 0.4,
		}, cfg)
		m := NewMachine(cfg)
		m.SetFaultPlan(GenFaultPlan(cfg, 99, 4, 200000))
		return sc.Play(m)
	}
	a, b := run(), run()
	if a.FinalNs != b.FinalNs || !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("faulted run not deterministic: %f vs %f", a.FinalNs, b.FinalNs)
	}
}

// TestGenFaultPlanDeterministic: same arguments, same plan; and the loss
// budget never exceeds half the machine.
func TestGenFaultPlanDeterministic(t *testing.T) {
	cfg := TwoSocket()
	a := GenFaultPlan(cfg, 1, 12, 1e6)
	b := GenFaultPlan(cfg, 1, 12, 1e6)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenFaultPlan not deterministic")
	}
	loss := 0
	for _, ev := range a {
		if ev.Kind == FaultCoreLoss {
			loss += ev.Count
		}
	}
	if loss > cfg.LogicalCores()/2 {
		t.Fatalf("plan loses %d of %d cores", loss, cfg.LogicalCores())
	}
	for i := 1; i < len(a); i++ {
		if a[i].AtNs < a[i-1].AtNs {
			t.Fatal("plan not sorted")
		}
	}
}
