package sim

import (
	"math"
	"testing"
)

func TestRunUntilStopsEarly(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(1) // serial: tasks complete one by one
	done := 0
	for i := 0; i < 5; i++ {
		m.Submit(&Task{Job: job, BaseNs: 100,
			OnComplete: func(now float64, core int) { done++ }})
	}
	m.RunUntil(func() bool { return done >= 2 })
	if done != 2 {
		t.Fatalf("done = %d, want exactly 2", done)
	}
	if math.Abs(m.Now()-200) > 1e-6 {
		t.Fatalf("Now = %f, want 200", m.Now())
	}
	// Remaining work continues on the next drive.
	m.Run()
	if done != 5 {
		t.Fatalf("done after Run = %d", done)
	}
}

func TestRunUntilDrainsWhenConditionNeverTrue(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(0)
	done := 0
	submitN(m, job, 3, 50, &done)
	m.RunUntil(func() bool { return false })
	if done != 3 {
		t.Fatalf("done = %d, want all work drained", done)
	}
}

// TestRunUntilReportsBudgetDeadlock: when the machine drains with ready
// tasks no core budget will ever admit, RunUntil must surface the same
// deadlock panic as Run — not return silently with the waited-for work
// permanently stuck (the seed behavior, which made such bugs invisible).
func TestRunUntilReportsBudgetDeadlock(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(1)
	job.running = 1 // wedge the budget, as a leaked accounting bug would
	done := 0
	m.Submit(&Task{Job: job, BaseNs: 10, OnComplete: func(now float64, core int) { done++ }})
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil returned silently with undispatchable ready tasks")
		}
		if done != 0 {
			t.Fatalf("deadlocked task ran %d times", done)
		}
	}()
	m.RunUntil(func() bool { return done > 0 })
}

func TestZeroLengthTaskStillSchedules(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(0)
	ran := false
	m.Submit(&Task{Job: job, BaseNs: 0,
		OnComplete: func(now float64, core int) { ran = true }})
	m.Run()
	if !ran {
		t.Fatal("zero-length task never completed")
	}
}

func TestMemFracClamped(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(0)
	m.Submit(&Task{Job: job, BaseNs: 10, MemFrac: 42, Bytes: 1})
	m.Submit(&Task{Job: job, BaseNs: 10, MemFrac: -3})
	m.Run() // must not panic or hang
	if m.Now() <= 0 {
		t.Fatal("clock did not advance")
	}
}
