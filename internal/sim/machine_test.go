package sim

import (
	"math"
	"testing"
)

func tinyConfig() Config {
	return Config{
		Name:               "test",
		Sockets:            2,
		PhysCoresPerSocket: 2,
		SMT:                2,
		SpeedFactor:        1,
		L3PerSocket:        1 << 20,
		BWPerSocket:        1e12, // effectively unlimited unless a test lowers it
		SMTFactor:          0.5,
		NUMAFactor:         1,
	}
}

func TestConfigCoreCounts(t *testing.T) {
	c := tinyConfig()
	if c.LogicalCores() != 8 || c.PhysicalCores() != 4 {
		t.Fatalf("cores = %d/%d", c.LogicalCores(), c.PhysicalCores())
	}
	if TwoSocket().LogicalCores() != 32 || TwoSocket().PhysicalCores() != 16 {
		t.Fatal("TwoSocket core counts wrong")
	}
	if FourSocket().LogicalCores() != 96 {
		t.Fatal("FourSocket core counts wrong")
	}
}

func submitN(m *Machine, job *Job, n int, ns float64, done *int) {
	for i := 0; i < n; i++ {
		m.Submit(&Task{
			Label:  "t",
			Job:    job,
			BaseNs: ns,
			OnComplete: func(now float64, core int) {
				*done++
			},
		})
	}
}

func TestSerialTasksRunSequentiallyOnOneJobCore(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(1)
	done := 0
	submitN(m, job, 4, 100, &done)
	m.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if math.Abs(m.Now()-400) > 1e-6 {
		t.Fatalf("Now = %f, want 400 (serial due to MaxCores=1)", m.Now())
	}
}

func TestParallelTasksOverlap(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(0)
	done := 0
	submitN(m, job, 4, 100, &done) // 4 physical cores, all siblings idle
	m.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if math.Abs(m.Now()-100) > 1e-6 {
		t.Fatalf("Now = %f, want 100 (4 tasks on 4 physical cores)", m.Now())
	}
}

func TestSMTSlowdown(t *testing.T) {
	// 8 equal tasks on 4 physical cores (8 threads): 4 run at full rate
	// until siblings arrive; with all 8 running every thread runs at
	// SMTFactor=0.5, so elapsed is 200 ns, not 100.
	m := NewMachine(tinyConfig())
	job := m.NewJob(0)
	done := 0
	submitN(m, job, 8, 100, &done)
	m.Run()
	if done != 8 {
		t.Fatalf("done = %d", done)
	}
	if math.Abs(m.Now()-200) > 1e-6 {
		t.Fatalf("Now = %f, want 200 (SMT halves per-thread rate)", m.Now())
	}
}

func TestBandwidthContentionSlowsMemoryBoundTasks(t *testing.T) {
	cfg := tinyConfig()
	cfg.BWPerSocket = 1.0 // bytes/ns
	m := NewMachine(cfg)
	job := m.NewJob(0)
	// Two fully memory-bound tasks on socket 0, each demanding 1 B/ns:
	// combined demand 2 > 1 available, so both run at half rate.
	for i := 0; i < 2; i++ {
		m.Submit(&Task{Job: job, BaseNs: 100, MemFrac: 1, Bytes: 100, HomeSocket: 0})
	}
	m.Run()
	if math.Abs(m.Now()-200) > 1e-6 {
		t.Fatalf("Now = %f, want 200 (bandwidth-saturated)", m.Now())
	}
	// Compute-bound tasks are unaffected by the same pressure.
	m2 := NewMachine(cfg)
	job2 := m2.NewJob(0)
	for i := 0; i < 2; i++ {
		m2.Submit(&Task{Job: job2, BaseNs: 100, MemFrac: 0, Bytes: 100, HomeSocket: 0})
	}
	m2.Run()
	if math.Abs(m2.Now()-100) > 1e-6 {
		t.Fatalf("compute-bound Now = %f, want 100", m2.Now())
	}
}

func TestNUMARemotePenalty(t *testing.T) {
	cfg := tinyConfig()
	cfg.NUMAFactor = 2.0
	m := NewMachine(cfg)
	job := m.NewJob(0)
	// 5 memory-bound tasks homed on socket 0, but socket 0 has only 4
	// threads; one lands remote and runs at half memory rate.
	for i := 0; i < 5; i++ {
		m.Submit(&Task{Job: job, BaseNs: 100, MemFrac: 1, Bytes: 0.0001, HomeSocket: 0})
	}
	m.Run()
	// Socket-0 threads: two pairs at SMT 0.5 → 200ns each; the remote task
	// gets a full physical core but memory rate 0.5 → also 200ns.
	if math.Abs(m.Now()-200) > 1e-6 {
		t.Fatalf("Now = %f, want 200", m.Now())
	}
}

func TestJobMaxCoresLimitsConcurrency(t *testing.T) {
	m := NewMachine(tinyConfig())
	limited := m.NewJob(2)
	done := 0
	submitN(m, limited, 6, 100, &done)
	m.Run()
	if done != 6 {
		t.Fatalf("done = %d", done)
	}
	if math.Abs(m.Now()-300) > 1e-6 {
		t.Fatalf("Now = %f, want 300 (6 tasks, 2 at a time)", m.Now())
	}
}

func TestOnCompleteCanSubmitDependents(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(0)
	var order []string
	m.Submit(&Task{
		Job: job, BaseNs: 50, Label: "a",
		OnComplete: func(now float64, core int) {
			order = append(order, "a")
			m.Submit(&Task{Job: job, BaseNs: 50, Label: "b",
				OnComplete: func(now float64, core int) { order = append(order, "b") }})
		},
	})
	m.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if math.Abs(m.Now()-100) > 1e-6 {
		t.Fatalf("Now = %f, want 100 (dependency chain)", m.Now())
	}
}

func TestDeterminismForFixedSeed(t *testing.T) {
	run := func() float64 {
		cfg := tinyConfig()
		cfg.Noise = DefaultNoise()
		cfg.Seed = 42
		m := NewMachine(cfg)
		job := m.NewJob(0)
		done := 0
		submitN(m, job, 20, 100, &done)
		m.Run()
		return m.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %f vs %f", a, b)
	}
}

func TestNoiseChangesTimings(t *testing.T) {
	base := func(seed int64, noisy bool) float64 {
		cfg := tinyConfig()
		cfg.Seed = seed
		if noisy {
			cfg.Noise = DefaultNoise()
		}
		m := NewMachine(cfg)
		job := m.NewJob(0)
		done := 0
		submitN(m, job, 16, 100, &done)
		m.Run()
		return m.Now()
	}
	clean := base(1, false)
	noisy := base(1, true)
	if clean == noisy {
		t.Fatal("noise had no effect on timings")
	}
}

func TestBusyNsAccounting(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(0)
	done := 0
	submitN(m, job, 3, 100, &done)
	m.Run()
	if math.Abs(m.BusyNs-300) > 1e-6 {
		t.Fatalf("BusyNs = %f, want 300", m.BusyNs)
	}
}

func TestSubmitWithoutJobPanics(t *testing.T) {
	m := NewMachine(tinyConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Submit without job did not panic")
		}
	}()
	m.Submit(&Task{BaseNs: 1})
}

func TestHomeSocketPreference(t *testing.T) {
	m := NewMachine(tinyConfig())
	job := m.NewJob(0)
	var cores []int
	for i := 0; i < 2; i++ {
		home := i % 2
		m.Submit(&Task{Job: job, BaseNs: 100, HomeSocket: home,
			OnStart: func(now float64, core int) { cores = append(cores, core) }})
	}
	m.Run()
	if len(cores) != 2 {
		t.Fatalf("cores = %v", cores)
	}
	if m.socketOf(cores[0]) != 0 || m.socketOf(cores[1]) != 1 {
		t.Fatalf("tasks not placed on home sockets: cores %v", cores)
	}
}
