// scenario.go is the record/replay harness for event-core equivalence: a
// Scenario is a deterministic task-submission program (including tasks
// spawned from completion callbacks, the shape plan executions produce) that
// can be played on any event core, yielding a Timeline of every task's
// observed placement and start/end times. The golden test plays the same
// scenario on Machine and Reference and requires bit-identical timelines;
// the simulator benchmark plays large scenarios on both to measure the
// event-core speedup (BENCH_sim.json).
package sim

import "math/rand"

// TaskSpec describes one scenario task. Specs form a forest: Spawns are
// submitted, in order, when this task completes — modelling dataflow
// dependency chains.
type TaskSpec struct {
	Label      string
	JobIdx     int // index into the scenario's JobBudgets
	BaseNs     float64
	MemFrac    float64
	Bytes      float64
	HomeSocket int
	Spawns     []TaskSpec
}

// Scenario is a replayable submission program against one machine config.
type Scenario struct {
	Name       string
	JobBudgets []int // MaxCores per job, allocated in order
	Tasks      []TaskSpec
}

// NumTasks counts all tasks including completion-spawned ones.
func (sc *Scenario) NumTasks() int {
	var walk func(specs []TaskSpec) int
	walk = func(specs []TaskSpec) int {
		n := len(specs)
		for i := range specs {
			n += walk(specs[i].Spawns)
		}
		return n
	}
	return walk(sc.Tasks)
}

// TimelineEvent is one task's observed execution.
type TimelineEvent struct {
	Label   string
	Core    int
	StartNs float64
	EndNs   float64
}

// Timeline is the externally observable outcome of playing a scenario:
// every task's placement and timing (in start order), the final virtual
// clock, and the busy-time accounting.
type Timeline struct {
	Events  []TimelineEvent
	FinalNs float64
	BusyNs  float64
}

// Core is the event-core API surface scenarios drive; *Machine (optimized)
// and *Reference (seed) both implement it.
type Core interface {
	Config() Config
	NewJob(maxCores int) *Job
	Submit(*Task)
	Run()
	Now() float64
	Busy() float64
}

// Play submits the scenario to core and drives it to completion.
func (sc *Scenario) Play(core Core) *Timeline {
	jobs := make([]*Job, len(sc.JobBudgets))
	for i, b := range sc.JobBudgets {
		jobs[i] = core.NewJob(b)
	}
	tl := &Timeline{}
	var submit func(spec *TaskSpec)
	submit = func(spec *TaskSpec) {
		t := &Task{
			Label:      spec.Label,
			Job:        jobs[spec.JobIdx],
			BaseNs:     spec.BaseNs,
			MemFrac:    spec.MemFrac,
			Bytes:      spec.Bytes,
			HomeSocket: spec.HomeSocket,
		}
		idx := -1
		t.OnStart = func(now float64, c int) {
			idx = len(tl.Events)
			tl.Events = append(tl.Events, TimelineEvent{Label: spec.Label, Core: c, StartNs: now, EndNs: -1})
		}
		t.OnComplete = func(now float64, c int) {
			tl.Events[idx].EndNs = now
			for i := range spec.Spawns {
				submit(&spec.Spawns[i])
			}
		}
		core.Submit(t)
	}
	for i := range sc.Tasks {
		submit(&sc.Tasks[i])
	}
	core.Run()
	tl.FinalNs = core.Now()
	tl.BusyNs = core.Busy()
	return tl
}

// ScenarioConfig parameterizes GenScenario.
type ScenarioConfig struct {
	Seed      int64
	Jobs      int     // concurrent jobs; 0th is unbudgeted, others may be capped
	Roots     int     // initially submitted tasks
	MaxChain  int     // maximum depth of completion-spawned chains
	MaxFanout int     // maximum spawns per completion
	MemHeavy  float64 // fraction of tasks that are memory-bound
	Budgets   bool    // give some jobs Vectorwise-style core caps
}

// GenScenario deterministically generates a scenario shaped like real plan
// executions on mach: waves of parallel partition work (uniform sibling
// tasks homed on distinct sockets), reduction chains spawned on completion,
// and a mix of compute- and memory-bound operators — enough demand to
// saturate socket bandwidth sometimes, and enough tasks to saturate cores.
func GenScenario(name string, cfg ScenarioConfig, mach Config) *Scenario {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	sc := &Scenario{Name: name}
	for j := 0; j < cfg.Jobs; j++ {
		budget := 0
		if cfg.Budgets && j > 0 {
			// The §4.2.4 admission ladder: later jobs get smaller budgets.
			budget = mach.LogicalCores() / (1 << uint(j%5))
			if budget < 1 {
				budget = 1
			}
		}
		sc.JobBudgets = append(sc.JobBudgets, budget)
	}
	var gen func(depth int, label string) TaskSpec
	gen = func(depth int, label string) TaskSpec {
		base := 100 + rng.Float64()*50000
		memFrac := 0.0
		bytes := 0.0
		if rng.Float64() < cfg.MemHeavy {
			memFrac = 0.3 + rng.Float64()*0.7
			// Demand Bytes/BaseNs in [0.2, 3]× the per-socket bandwidth so
			// both saturated and unsaturated regimes occur.
			bytes = base * mach.BWPerSocket * (0.2 + rng.Float64()*2.8)
		}
		spec := TaskSpec{
			Label:      label,
			JobIdx:     rng.Intn(cfg.Jobs),
			BaseNs:     base,
			MemFrac:    memFrac,
			Bytes:      bytes,
			HomeSocket: rng.Intn(mach.Sockets),
		}
		if depth < cfg.MaxChain && cfg.MaxFanout > 0 {
			for i, n := 0, rng.Intn(cfg.MaxFanout+1); i < n; i++ {
				spec.Spawns = append(spec.Spawns, gen(depth+1, label+"."+string(rune('a'+i))))
			}
		}
		return spec
	}
	for i := 0; i < cfg.Roots; i++ {
		sc.Tasks = append(sc.Tasks, gen(0, "t"+itoa(i)))
	}
	return sc
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
