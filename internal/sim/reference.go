// reference.go preserves the original (seed) event core verbatim as the
// equivalence oracle for the optimized Machine. The optimized core in
// machine.go restructures every hot loop but is required to perform the
// exact same floating-point operations on the exact same values in the same
// order, so the two cores must produce bit-identical virtual timelines; the
// golden test (golden_test.go) asserts that on generated scenarios, and
// BENCH_sim.json tracks the wall-clock gap between them.
//
// Do not "improve" this file: its value is that it stays frozen.
package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Reference is the seed simulator: rates recomputed for every running task
// at every event, O(cores) scans for core picking, minimum-finding, and
// progress accounting. It shares Config, Task, and Job with the optimized
// Machine (a Task must only ever be submitted to one core implementation).
type Reference struct {
	cfg   Config
	rng   *rand.Rand
	now   float64
	ready []*Task
	// cores[i] holds the running task or nil. Core i lives on socket
	// i/(PhysCoresPerSocket*SMT); its SMT sibling is i^1 when SMT=2.
	cores   []*Task
	running int
	jobs    int

	// BusyNs accumulates core-busy virtual time for utilisation accounting.
	BusyNs float64
}

// NewReference builds a seed-core machine from cfg.
func NewReference(cfg Config) *Reference {
	if cfg.SMT != 1 && cfg.SMT != 2 {
		panic(fmt.Sprintf("sim: SMT=%d unsupported (1 or 2)", cfg.SMT))
	}
	if cfg.SpeedFactor <= 0 {
		cfg.SpeedFactor = 1
	}
	validateSocketSpeed(cfg)
	return &Reference{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cores: make([]*Task, cfg.LogicalCores()),
	}
}

// Config returns the machine configuration.
func (m *Reference) Config() Config { return m.cfg }

// Now returns the current virtual time in nanoseconds.
func (m *Reference) Now() float64 { return m.now }

// Busy returns the accumulated core-busy virtual time.
func (m *Reference) Busy() float64 { return m.BusyNs }

// NewJob allocates a job handle. maxCores of 0 means unlimited.
func (m *Reference) NewJob(maxCores int) *Job {
	m.jobs++
	return &Job{ID: m.jobs, MaxCores: maxCores}
}

// Submit queues a task; it starts when a core (and its job's core budget)
// becomes available. Submission order is preserved FIFO, which makes the
// whole simulation deterministic.
func (m *Reference) Submit(t *Task) {
	if t.Job == nil {
		panic("sim: task without job")
	}
	if t.BaseNs <= 0 {
		t.BaseNs = 1 // zero-length tasks still occupy a scheduling slot
	}
	if t.MemFrac < 0 {
		t.MemFrac = 0
	}
	if t.MemFrac > 1 {
		t.MemFrac = 1
	}
	t.remaining = t.BaseNs * m.noiseFactor()
	m.ready = append(m.ready, t)
}

func (m *Reference) noiseFactor() float64 {
	n := m.cfg.Noise
	if !n.Enabled {
		return 1
	}
	f := 1 + n.Jitter*(2*m.rng.Float64()-1)
	if m.rng.Float64() < n.SpikeProb {
		f *= n.SpikeMin + m.rng.Float64()*(n.SpikeMax-n.SpikeMin)
	}
	return f
}

func (m *Reference) socketOf(core int) int {
	return core / (m.cfg.PhysCoresPerSocket * m.cfg.SMT)
}

func (m *Reference) siblingOf(core int) int {
	if m.cfg.SMT == 1 {
		return -1
	}
	return core ^ 1
}

// pickCore chooses an idle core for a task, preferring (1) an idle core with
// an idle SMT sibling on the task's home socket, (2) such a core anywhere,
// (3) any idle core on the home socket, (4) any idle core. Returns -1 when
// the machine is saturated.
func (m *Reference) pickCore(t *Task) int {
	best := -1
	bestScore := -1
	for i, occ := range m.cores {
		if occ != nil {
			continue
		}
		score := 0
		if sib := m.siblingOf(i); sib < 0 || m.cores[sib] == nil {
			score += 2
		}
		if m.socketOf(i) == t.HomeSocket%m.cfg.Sockets {
			score++
		}
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	return best
}

// dispatch moves ready tasks onto idle cores, respecting job core budgets.
func (m *Reference) dispatch() {
	kept := m.ready[:0]
	for _, t := range m.ready {
		if t.Job.MaxCores > 0 && t.Job.running >= t.Job.MaxCores {
			kept = append(kept, t)
			continue
		}
		core := m.pickCore(t)
		if core < 0 {
			kept = append(kept, t)
			continue
		}
		t.core = core
		m.cores[core] = t
		m.running++
		t.Job.running++
		t.started(m.now, core)
	}
	m.ready = kept
}

// recomputeRates refreshes every running task's progress rate from the
// current SMT occupancy and per-socket bandwidth saturation.
func (m *Reference) recomputeRates() {
	// Per-socket bandwidth demand of the memory-bound parts.
	demand := make([]float64, m.cfg.Sockets)
	for core, t := range m.cores {
		if t == nil {
			continue
		}
		bw := 0.0
		if t.BaseNs > 0 {
			bw = t.Bytes / t.BaseNs * t.MemFrac
		}
		demand[m.socketOf(core)] += bw
	}
	for core, t := range m.cores {
		if t == nil {
			continue
		}
		rate := m.cfg.SpeedFactor
		if sib := m.siblingOf(core); sib >= 0 && m.cores[sib] != nil {
			rate *= m.cfg.SMTFactor
		}
		sock := m.socketOf(core)
		if m.cfg.SocketSpeed != nil {
			rate *= m.cfg.SocketSpeed[sock] // configured asymmetric clocks
		}
		bwFactor := 1.0
		if demand[sock] > m.cfg.BWPerSocket && demand[sock] > 0 {
			bwFactor = m.cfg.BWPerSocket / demand[sock]
		}
		numa := 1.0
		if m.cfg.Sockets > 1 && sock != t.HomeSocket%m.cfg.Sockets && m.cfg.NUMAFactor > 1 {
			numa = 1 / m.cfg.NUMAFactor
		}
		memRate := bwFactor * numa
		t.rate = rate * ((1 - t.MemFrac) + t.MemFrac*memRate)
		if t.rate <= 0 {
			t.rate = 1e-9
		}
	}
}

// step advances the simulation by one event. It reports false when nothing
// is running and nothing could be dispatched.
func (m *Reference) step() bool {
	m.dispatch()
	if m.running == 0 {
		return false
	}
	m.recomputeRates()
	// Find the earliest completion.
	dt := math.Inf(1)
	for _, t := range m.cores {
		if t == nil {
			continue
		}
		if d := t.remaining / t.rate; d < dt {
			dt = d
		}
	}
	m.now += dt
	// Progress everyone; complete all tasks that finish at this instant, in
	// core order for determinism.
	for core, t := range m.cores {
		if t == nil {
			continue
		}
		t.remaining -= dt * t.rate
		if t.remaining <= 1e-9 {
			m.cores[core] = nil
			m.running--
			t.Job.running--
			m.BusyNs += t.BaseNs / m.cfg.SpeedFactor // busy time at nominal rate
			t.completed(m.now, core)
		}
	}
	return true
}

// Run processes events until the machine drains: no running tasks and no
// dispatchable ready tasks. Completion callbacks may submit further tasks.
func (m *Reference) Run() {
	for m.step() {
	}
	if len(m.ready) > 0 {
		panic(fmt.Sprintf("sim: %d tasks remain undispatchable (job core budgets deadlocked?)", len(m.ready)))
	}
}

// RunUntil processes events until done() reports true or the machine
// drains. Like Run, it surfaces a core-budget deadlock (drained with
// undispatchable ready tasks, done still false) instead of returning
// silently.
func (m *Reference) RunUntil(done func() bool) {
	for !done() {
		if !m.step() {
			if len(m.ready) > 0 {
				panic(fmt.Sprintf("sim: %d tasks remain undispatchable (job core budgets deadlocked?)", len(m.ready)))
			}
			return
		}
	}
}

// L3SharePerSocket exposes the socket L3 size to the cost model.
func (m *Reference) L3SharePerSocket() int64 { return m.cfg.L3PerSocket }
