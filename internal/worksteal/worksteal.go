// Package worksteal builds the work-stealing-style configuration the paper
// compares against in Figure 12: a statically partitioned plan with many
// more partitions than worker threads (128 partitions on 8 threads), so
// that threads finishing early pick up remaining partitions while threads
// on skewed partitions stay busy [5].
//
// On the discrete-event machine, the dataflow scheduler's greedy dispatch of
// ready partition tasks onto idle cores is exactly list scheduling, which is
// what a work-stealing runtime converges to for independent equal-priority
// tasks; the comparison in Figure 12 is about partition granularity versus
// skew, not steal-queue mechanics (see DESIGN.md §2).
package worksteal

import (
	"repro/internal/heuristic"
	"repro/internal/plan"
	"repro/internal/storage"
)

// DefaultPartitions is the paper's configuration: 128 small partitions.
const DefaultPartitions = 128

// Plan statically over-partitions p for work-stealing execution.
func Plan(p *plan.Plan, cat *storage.Catalog, partitions int) (*plan.Plan, error) {
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	return heuristic.Parallelize(p, cat, heuristic.Config{Partitions: partitions})
}
