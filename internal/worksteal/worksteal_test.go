package worksteal

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

func catWithSkew(n int) *storage.Catalog {
	vals := make([]int64, n)
	for i := range vals {
		if i < n/2 {
			vals[i] = int64(i % 1000)
		} else {
			vals[i] = 42 // heavily clustered second half
		}
	}
	t := storage.NewTable("data")
	t.MustAddColumn(storage.NewIntColumn("v", vals))
	cat := storage.NewCatalog()
	cat.MustAdd(t)
	return cat
}

func scanPlan() *plan.Plan {
	b := plan.NewBuilder()
	v := b.Bind("data", "v")
	s := b.Select(v, algebra.Eq(42))
	f := b.Fetch(s, v)
	sum := b.Aggr(algebra.AggrSum, f)
	b.Result(sum)
	return b.Plan()
}

func eightThreads() sim.Config {
	return sim.Config{
		Name: "8t", Sockets: 1, PhysCoresPerSocket: 8, SMT: 1, SpeedFactor: 1,
		L3PerSocket: 200 << 10, BWPerSocket: 1e9, SMTFactor: 1, NUMAFactor: 1,
	}
}

func TestWorkstealPlanShape(t *testing.T) {
	cat := catWithSkew(100_000)
	p, err := Plan(scanPlan(), cat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxDOP() != DefaultPartitions {
		t.Fatalf("DOP = %d, want %d", p.MaxDOP(), DefaultPartitions)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkstealMatchesSerialResults(t *testing.T) {
	cat := catWithSkew(100_000)
	eng := exec.NewEngine(cat, eightThreads(), cost.Default())
	want, _, err := eng.Execute(scanPlan())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := Plan(scanPlan(), cat, 128)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := exec.NewEngine(cat, eightThreads(), cost.Default())
	got, _, err := eng2.Execute(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.ResultsEqual(want, got) {
		t.Fatal("work-stealing plan diverges from serial")
	}
}

func TestManySmallPartitionsBeatFewOnSkew(t *testing.T) {
	// The Figure 12 effect: on skewed data, 128 partitions on 8 threads
	// beat 8 static partitions on 8 threads because early finishers keep
	// working. (Skew here comes from selectivity clustering: the second
	// half of the column produces all the matches, so its partitions write
	// much more output.)
	cat := catWithSkew(400_000)
	ws, err := Plan(scanPlan(), cat, 128)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Plan(scanPlan(), cat, 8)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *plan.Plan) float64 {
		eng := exec.NewEngine(cat, eightThreads(), cost.Default())
		_, prof, err := eng.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		return prof.Makespan()
	}
	wsT, stT := run(ws), run(st)
	if wsT >= stT {
		t.Fatalf("128 parts (%.0f) not faster than 8 parts (%.0f) on skewed data", wsT, stT)
	}
}
