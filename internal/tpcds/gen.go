// Package tpcds provides a synthetic TPC-DS-like star schema with the
// property the paper's §4.2.2 experiments depend on: heavily skewed fact
// data. TPC-DS (unlike TPC-H's uniform distributions) ships skewed
// columns, which is what makes the statically range-partitioned heuristic
// plans up to five times slower than adaptive plans — static equi-range
// partitions put most of the matching work into a few partitions, while
// adaptive parallelization keeps splitting whichever partition stays
// expensive until expensiveness balances out (§4.1.1).
//
// The generator produces one store_sales fact table plus date_dim, item,
// store and customer dimensions at 1/100 linear scale. Skew has two
// components mirroring real sales data:
//
//   - item popularity follows a harmonic (Zipf-like) distribution: the top
//     items absorb most of the sales volume;
//   - sales are bursty: an item's sales arrive in sequential runs of
//     identical tuples (campaigns, restocks), the "sequential clusters of
//     identical tuples" shape of Figure 13 — this is what makes positional
//     equi-range partitions suffer execution skew on dimension-filtered
//     joins;
//   - fact rows are date-clustered: rows arrive in date order, so a date
//     filter hits a contiguous region of the fact table.
package tpcds

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/storage"
	"repro/internal/vec"
)

// Rows per scale factor (1/100 of a rough TPC-DS profile).
const (
	factPerSF     = 28_800
	itemsPerSF    = 180
	storesPerSF   = 2
	customerPerSF = 1_000
	dateDays      = 1826 // five years
)

// Categories used by the item dimension.
var categories = []string{"Books", "Electronics", "Home", "Jewelry", "Music",
	"Shoes", "Sports", "Women", "Men", "Children"}

var states = []string{"TN", "GA", "SC", "AL", "KY", "VA", "NC", "FL"}

// Config controls generation.
type Config struct {
	// SF is the scale factor: SF100 ≈ 2.88M fact rows at 1/100 scale.
	SF float64
	// Seed makes generation deterministic.
	Seed int64
	// SkewTheta controls item-popularity skew; 0 disables skew (uniform),
	// 1 is the default heavy skew.
	SkewTheta float64
}

// Generate builds the catalog.
func Generate(cfg Config) *storage.Catalog {
	if cfg.SF <= 0 {
		cfg.SF = 1
	}
	if cfg.SkewTheta == 0 {
		cfg.SkewTheta = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1ab1e))
	nFact := int(float64(factPerSF) * cfg.SF)
	nItem := int(float64(itemsPerSF) * cfg.SF)
	if nItem < 20 {
		nItem = 20
	}
	nStore := int(float64(storesPerSF) * cfg.SF)
	if nStore < 2 {
		nStore = 2
	}
	nCust := int(float64(customerPerSF) * cfg.SF)
	if nCust < 50 {
		nCust = 50
	}

	cat := storage.NewCatalog()
	cat.MustAdd(genDateDim())
	cat.MustAdd(genItem(rng, nItem))
	cat.MustAdd(genStore(rng, nStore))
	cat.MustAdd(genCustomer(rng, nCust))
	cat.MustAdd(genStoreSales(rng, nFact, nItem, nStore, nCust, cfg.SkewTheta))
	return cat
}

func genDateDim() *storage.Table {
	t := storage.NewTable("date_dim")
	sk := make([]int64, dateDays)
	year := make([]int64, dateDays)
	moy := make([]int64, dateDays)
	for i := 0; i < dateDays; i++ {
		sk[i] = int64(i)
		year[i] = 1999 + int64(i/365)
		moy[i] = int64((i%365)/31 + 1)
		if moy[i] > 12 {
			moy[i] = 12
		}
	}
	t.MustAddColumn(storage.NewIntColumn("d_date_sk", sk))
	t.MustAddColumn(storage.NewIntColumn("d_year", year))
	t.MustAddColumn(storage.NewIntColumn("d_moy", moy))
	return t
}

func genItem(rng *rand.Rand, n int) *storage.Table {
	t := storage.NewTable("item")
	sk := make([]int64, n)
	price := make([]int64, n)
	catDict := vec.NewDict()
	catCodes := make([]int64, n)
	brandDict := vec.NewDict()
	brandCodes := make([]int64, n)
	for i := 0; i < n; i++ {
		sk[i] = int64(i)
		price[i] = int64(100 + rng.Intn(9900))
		catCodes[i] = catDict.Code(categories[i%len(categories)])
		brandCodes[i] = brandDict.Code(fmt.Sprintf("brand#%03d", i%40))
	}
	t.MustAddColumn(storage.NewIntColumn("i_item_sk", sk))
	t.MustAddColumn(storage.NewIntColumn("i_current_price", price))
	t.MustAddColumn(storage.NewColumn("i_category", 0, vec.NewDictCoded(catCodes, catDict)))
	t.MustAddColumn(storage.NewColumn("i_brand", 0, vec.NewDictCoded(brandCodes, brandDict)))
	return t
}

func genStore(rng *rand.Rand, n int) *storage.Table {
	t := storage.NewTable("store")
	sk := make([]int64, n)
	stDict := vec.NewDict()
	st := make([]int64, n)
	for i := 0; i < n; i++ {
		sk[i] = int64(i)
		st[i] = stDict.Code(states[i%len(states)])
	}
	t.MustAddColumn(storage.NewIntColumn("s_store_sk", sk))
	t.MustAddColumn(storage.NewColumn("s_state", 0, vec.NewDictCoded(st, stDict)))
	return t
}

func genCustomer(rng *rand.Rand, n int) *storage.Table {
	t := storage.NewTable("customer")
	sk := make([]int64, n)
	for i := 0; i < n; i++ {
		sk[i] = int64(i)
	}
	t.MustAddColumn(storage.NewIntColumn("c_customer_sk", sk))
	return t
}

// zipfItem draws an item with harmonic popularity: item rank r has weight
// 1/r^theta. A small alias-free inversion keeps generation fast enough.
type zipfDraw struct {
	cum []float64
}

func newZipf(n int, theta float64) *zipfDraw {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / math.Pow(float64(i+1), theta)
		total += w
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipfDraw{cum: cum}
}

func (z *zipfDraw) draw(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func genStoreSales(rng *rand.Rand, n, nItem, nStore, nCust int, theta float64) *storage.Table {
	t := storage.NewTable("store_sales")
	date := make([]int64, n)
	item := make([]int64, n)
	store := make([]int64, n)
	cust := make([]int64, n)
	qty := make([]int64, n)
	price := make([]int64, n)
	z := newZipf(nItem, theta)
	// Burst length scales with skew so theta→0 degrades to near-uniform.
	maxBurst := int(400 * theta)
	if maxBurst < 1 {
		maxBurst = 1
	}
	// Popularity drifts over time: within each epoch the Zipf ranks map to
	// a rotated slice of the item space, so an item (and hence a category
	// or brand) is hot only during some epochs. Combined with date-ordered
	// rows this concentrates dimension-filtered matches into contiguous
	// regions of the fact table — the positional skew that static
	// equi-range partitioning mishandles (§4.2.2).
	const epochs = 16
	stride := nItem / epochs
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < n; {
		epoch := i * epochs / n
		rank := z.draw(rng)
		burstItem := int64((rank + epoch*stride) % nItem)
		burst := 1 + rng.Intn(maxBurst)
		for j := 0; j < burst && i < n; j++ {
			// Date-clustered: row order follows time, giving the contiguous
			// cluster shape of Figure 13.
			date[i] = int64(i * dateDays / n)
			item[i] = burstItem
			store[i] = int64(rng.Intn(nStore))
			cust[i] = int64(rng.Intn(nCust))
			qty[i] = int64(1 + rng.Intn(100))
			price[i] = qty[i] * int64(100+rng.Intn(9900))
			i++
		}
	}
	t.MustAddColumn(storage.NewIntColumn("ss_sold_date_sk", date))
	t.MustAddColumn(storage.NewIntColumn("ss_item_sk", item))
	t.MustAddColumn(storage.NewIntColumn("ss_store_sk", store))
	t.MustAddColumn(storage.NewIntColumn("ss_customer_sk", cust))
	t.MustAddColumn(storage.NewIntColumn("ss_quantity", qty))
	t.MustAddColumn(storage.NewIntColumn("ss_ext_sales_price", price))
	return t
}
