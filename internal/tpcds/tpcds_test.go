package tpcds

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/heuristic"
	"repro/internal/sim"
)

func testMachine() sim.Config {
	return sim.Config{
		Name: "test", Sockets: 2, PhysCoresPerSocket: 4, SMT: 2, SpeedFactor: 1,
		L3PerSocket: 64 << 10, BWPerSocket: 1e9, SMTFactor: 0.55, NUMAFactor: 1.2,
	}
}

var testCat = Generate(Config{SF: 5, Seed: 3})

func TestGenerateShapes(t *testing.T) {
	fact := testCat.MustTable("store_sales")
	if fact.Rows() != 5*factPerSF {
		t.Fatalf("fact rows = %d", fact.Rows())
	}
	if testCat.LargestTable().Name() != "store_sales" {
		t.Fatal("store_sales not largest")
	}
	nItem := testCat.MustTable("item").Rows()
	for _, v := range fact.MustColumn("ss_item_sk").Values() {
		if v < 0 || v >= int64(nItem) {
			t.Fatalf("ss_item_sk %d out of range", v)
		}
	}
	// Dates are clustered: the column must be non-decreasing (Figure 13's
	// contiguous-cluster shape).
	dates := fact.MustColumn("ss_sold_date_sk").Values()
	for i := 1; i < len(dates); i++ {
		if dates[i] < dates[i-1] {
			t.Fatal("fact dates not clustered")
		}
	}
}

func topShare(items []int64, nItem int) float64 {
	counts := make([]int, nItem)
	for _, v := range items {
		counts[v]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	for i := 0; i < nItem/10; i++ {
		top += counts[i]
	}
	return float64(top) / float64(len(items))
}

func TestItemSkewIsHeavy(t *testing.T) {
	fact := testCat.MustTable("store_sales")
	items := fact.MustColumn("ss_item_sk").Values()
	nItem := testCat.MustTable("item").Rows()
	// The best-selling 10% of items must hold far more than 10% of sales.
	if frac := topShare(items, nItem); frac < 0.3 {
		t.Fatalf("top-10%% items hold only %.2f of sales; skew too weak", frac)
	}
	// Sales are bursty: long runs of identical items (Figure 13 clusters).
	runs := 0
	for i := 1; i < len(items); i++ {
		if items[i] != items[i-1] {
			runs++
		}
	}
	if avgRun := float64(len(items)) / float64(runs+1); avgRun < 20 {
		t.Fatalf("average sales burst length %.1f; expected long clusters", avgRun)
	}
	// The near-uniform variant is much less concentrated.
	uni := Generate(Config{SF: 1, Seed: 3, SkewTheta: 0.0001})
	uitems := uni.MustTable("store_sales").MustColumn("ss_item_sk").Values()
	un := uni.MustTable("item").Rows()
	if f := topShare(uitems, un); f > 0.25 {
		t.Fatalf("uniform variant still skewed: %.2f", f)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{SF: 1, Seed: 9})
	b := Generate(Config{SF: 1, Seed: 9})
	av := a.MustTable("store_sales").MustColumn("ss_ext_sales_price").Values()
	bv := b.MustTable("store_sales").MustColumn("ss_ext_sales_price").Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestAllQueriesBuildValidateExecute(t *testing.T) {
	eng := exec.NewEngine(testCat, testMachine(), cost.Default())
	for _, n := range QueryNumbers() {
		p, err := Query(n)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Q%d invalid: %v", n, err)
		}
		res, prof, err := eng.Execute(p)
		if err != nil {
			t.Fatalf("Q%d execute: %v", n, err)
		}
		if len(res) == 0 || prof.Makespan() <= 0 {
			t.Fatalf("Q%d empty outcome", n)
		}
	}
	if _, err := Query(9); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestQ1GroundTruth(t *testing.T) {
	fact := testCat.MustTable("store_sales")
	dates := fact.MustColumn("ss_sold_date_sk").Values()
	items := fact.MustColumn("ss_item_sk").Values()
	price := fact.MustColumn("ss_ext_sales_price").Values()
	cats := testCat.MustTable("item").MustColumn("i_category")
	sums := map[string]int64{}
	for i := range dates {
		if dates[i] >= 365 && dates[i] < 730 {
			sums[cats.Data().StringAt(int(items[i]))] += price[i]
		}
	}
	eng := exec.NewEngine(testCat, testMachine(), cost.Default())
	res, _, err := eng.Execute(Q1())
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := res[0].Col, res[1].Col
	if keys.Len() != len(sums) {
		t.Fatalf("groups = %d, want %d", keys.Len(), len(sums))
	}
	for i := 0; i < keys.Len(); i++ {
		name := keys.Data().StringAt(i)
		if vals.At(i) != sums[name] {
			t.Fatalf("category %q = %d, want %d", name, vals.At(i), sums[name])
		}
	}
}

func TestQueriesHeuristicAndAdaptiveEquivalence(t *testing.T) {
	for _, n := range QueryNumbers() {
		serial := MustQuery(n)
		eng := exec.NewEngine(testCat, testMachine(), cost.Default())
		want, _, err := eng.Execute(serial)
		if err != nil {
			t.Fatalf("Q%d serial: %v", n, err)
		}
		hp, err := heuristic.Parallelize(serial, testCat, heuristic.Config{Partitions: 8})
		if err != nil {
			t.Fatalf("Q%d HP: %v", n, err)
		}
		eng2 := exec.NewEngine(testCat, testMachine(), cost.Default())
		got, _, err := eng2.Execute(hp)
		if err != nil {
			t.Fatalf("Q%d HP exec: %v", n, err)
		}
		if !exec.ResultsEqual(want, got) {
			t.Fatalf("Q%d: HP diverges", n)
		}

		eng3 := exec.NewEngine(testCat, testMachine(), cost.Default())
		s := core.NewSession(eng3, MustQuery(n), core.DefaultMutationConfig(),
			core.DefaultConvergenceConfig(4))
		s.VerifyResults = true
		for i := 0; i < 6; i++ {
			cont, err := s.Step()
			if err != nil {
				t.Fatalf("Q%d AP step %d: %v", n, i, err)
			}
			if !cont {
				break
			}
		}
	}
}
