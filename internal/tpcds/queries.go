package tpcds

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/plan"
)

// The five query templates of §4.2.2: subsets of official TPC-DS queries
// "chosen such that they contain the large tables and a few smaller
// dimension tables", modified to single-attribute group-bys like the
// paper's. Each is a star-join pattern: dimension filter → fact join →
// grouped aggregation, with the skewed fact columns exposed to the
// partitioner.

// QueryNumbers lists the implemented TPC-DS query template numbers.
func QueryNumbers() []int { return []int{1, 2, 3, 4, 5} }

// Query builds TPC-DS query template n.
func Query(n int) (*plan.Plan, error) {
	switch n {
	case 1:
		return Q1(), nil
	case 2:
		return Q2(), nil
	case 3:
		return Q3(), nil
	case 4:
		return Q4(), nil
	case 5:
		return Q5(), nil
	}
	return nil, fmt.Errorf("tpcds: query %d not implemented", n)
}

// MustQuery is Query that panics on unknown numbers.
func MustQuery(n int) *plan.Plan {
	p, err := Query(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Q1 — sales by category for one year: date filter on the clustered fact
// date column, item join, group by category (the skewed-item path).
func Q1() *plan.Plan {
	b := plan.NewBuilder()
	ssDate := b.Bind("store_sales", "ss_sold_date_sk")
	ssItem := b.Bind("store_sales", "ss_item_sk")
	ssPrice := b.Bind("store_sales", "ss_ext_sales_price")
	iSK := b.Bind("item", "i_item_sk")
	iCat := b.Bind("item", "i_category")

	dsel := b.Select(ssDate, algebra.HalfOpen(365, 730))
	items := b.Fetch(dsel, ssItem)
	price := b.Fetch(dsel, ssPrice)
	lo, ro := b.Join(items, iSK)
	cat := b.Fetch(ro, iCat)
	pricej := b.FetchPos(lo, price)
	g := b.GroupBy(cat)
	sums := b.AggrGrouped(algebra.AggrSum, pricej, g)
	keys := b.GroupKeys(g)
	b.Result(keys, sums)
	return b.Plan()
}

// Q2 — revenue by store state over a month window.
func Q2() *plan.Plan {
	b := plan.NewBuilder()
	ssDate := b.Bind("store_sales", "ss_sold_date_sk")
	ssStore := b.Bind("store_sales", "ss_store_sk")
	ssPrice := b.Bind("store_sales", "ss_ext_sales_price")
	stSK := b.Bind("store", "s_store_sk")
	stState := b.Bind("store", "s_state")

	dsel := b.Select(ssDate, algebra.HalfOpen(900, 960))
	stores := b.Fetch(dsel, ssStore)
	price := b.Fetch(dsel, ssPrice)
	lo, ro := b.Join(stores, stSK)
	state := b.Fetch(ro, stState)
	pricej := b.FetchPos(lo, price)
	g := b.GroupBy(state)
	sums := b.AggrGrouped(algebra.AggrSum, pricej, g)
	keys := b.GroupKeys(g)
	b.Result(keys, sums)
	return b.Plan()
}

// Q3 — revenue, quantity and discounted projections by brand for one
// category: the dimension filter compresses the fact join through the
// skewed item column, and several measures are reconstructed and combined
// per matched sale (the match-side work official Q3/Q7-style templates do).
func Q3() *plan.Plan {
	b := plan.NewBuilder()
	ssItem := b.Bind("store_sales", "ss_item_sk")
	ssPrice := b.Bind("store_sales", "ss_ext_sales_price")
	ssQty := b.Bind("store_sales", "ss_quantity")
	iSK := b.Bind("item", "i_item_sk")
	iCat := b.Bind("item", "i_category")
	iBrand := b.Bind("item", "i_brand")
	iPrice := b.Bind("item", "i_current_price")

	csel := b.LikeSelect(iCat, "Electronics", algebra.LikeContains, false)
	isk := b.Fetch(csel, iSK)
	lo, ro := b.Join(ssItem, isk)
	brandf := b.Fetch(csel, iBrand)
	brand := b.FetchPos(ro, brandf)
	listPricef := b.Fetch(csel, iPrice)
	listPrice := b.FetchPos(ro, listPricef)
	price := b.Fetch(lo, ssPrice)
	qty := b.Fetch(lo, ssQty)
	list := b.CalcVV(algebra.CalcMul, listPrice, qty)
	discount := b.CalcVV(algebra.CalcSub, list, price)
	g := b.GroupBy(brand)
	sums := b.AggrGrouped(algebra.AggrSum, price, g)
	qsums := b.AggrGrouped(algebra.AggrSum, qty, g)
	dsums := b.AggrGrouped(algebra.AggrSum, discount, g)
	keys := b.GroupKeys(g)
	b.Result(keys, sums, qsums, dsums)
	return b.Plan()
}

// Q4 — sales count by month of year across the full fact table.
func Q4() *plan.Plan {
	b := plan.NewBuilder()
	ssDate := b.Bind("store_sales", "ss_sold_date_sk")
	ssQty := b.Bind("store_sales", "ss_quantity")
	dSK := b.Bind("date_dim", "d_date_sk")
	dMoy := b.Bind("date_dim", "d_moy")

	lo, ro := b.Join(ssDate, dSK)
	moy := b.Fetch(ro, dMoy)
	qty := b.Fetch(lo, ssQty)
	g := b.GroupBy(moy)
	cnt := b.AggrGrouped(algebra.AggrCount, qty, g)
	sums := b.AggrGrouped(algebra.AggrSum, qty, g)
	keys := b.GroupKeys(g)
	b.Result(keys, cnt, sums)
	return b.Plan()
}

// Q5 — per-item revenue, volume and count for the heaviest category with a
// quantity filter: maximum exposure to the Zipf-skewed, temporally drifting
// item distribution, with multiple measures reconstructed per match.
func Q5() *plan.Plan {
	b := plan.NewBuilder()
	ssItem := b.Bind("store_sales", "ss_item_sk")
	ssQty := b.Bind("store_sales", "ss_quantity")
	ssPrice := b.Bind("store_sales", "ss_ext_sales_price")
	iSK := b.Bind("item", "i_item_sk")
	iCat := b.Bind("item", "i_category")

	qsel := b.Select(ssQty, algebra.AtLeast(20))
	items := b.Fetch(qsel, ssItem)
	price := b.Fetch(qsel, ssPrice)
	qty := b.Fetch(qsel, ssQty)
	csel := b.LikeSelect(iCat, "Books", algebra.LikeContains, false)
	isk := b.Fetch(csel, iSK)
	lo, ro := b.Join(items, isk)
	itemj := b.FetchPos(ro, isk)
	pricej := b.FetchPos(lo, price)
	qtyj := b.FetchPos(lo, qty)
	unit := b.CalcVV(algebra.CalcDiv, pricej, qtyj)
	g := b.GroupBy(itemj)
	sums := b.AggrGrouped(algebra.AggrSum, pricej, g)
	vols := b.AggrGrouped(algebra.AggrSum, qtyj, g)
	cnts := b.AggrGrouped(algebra.AggrCount, unit, g)
	keys := b.GroupKeys(g)
	b.Result(keys, sums, vols, cnts)
	return b.Plan()
}
