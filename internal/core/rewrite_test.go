package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testMachine() sim.Config {
	return sim.Config{
		Name:               "test",
		Sockets:            2,
		PhysCoresPerSocket: 4,
		SMT:                2,
		SpeedFactor:        1,
		L3PerSocket:        64 << 10,
		BWPerSocket:        1e9,
		SMTFactor:          0.55,
		NUMAFactor:         1.2,
	}
}

func testCatalog(n int) *storage.Catalog {
	ship := make([]int64, n)
	disc := make([]int64, n)
	price := make([]int64, n)
	key := make([]int64, n)
	for i := 0; i < n; i++ {
		ship[i] = int64(i % 365)
		disc[i] = int64(i % 11)
		price[i] = int64(100 + i%900)
		key[i] = int64(i % 7)
	}
	t := storage.NewTable("lineitem")
	t.MustAddColumn(storage.NewIntColumn("l_shipdate", ship))
	t.MustAddColumn(storage.NewIntColumn("l_discount", disc))
	t.MustAddColumn(storage.NewIntColumn("l_extendedprice", price))
	t.MustAddColumn(storage.NewIntColumn("l_key", key))

	m := 97
	pk := make([]int64, m)
	pv := make([]int64, m)
	for i := 0; i < m; i++ {
		pk[i] = int64(i)
		pv[i] = int64(i * 3)
	}
	pt := storage.NewTable("part")
	pt.MustAddColumn(storage.NewIntColumn("p_partkey", pk))
	pt.MustAddColumn(storage.NewIntColumn("p_value", pv))

	cat := storage.NewCatalog()
	cat.MustAdd(t)
	cat.MustAdd(pt)
	return cat
}

func executePlan(t *testing.T, cat *storage.Catalog, p *plan.Plan) []exec.Value {
	t.Helper()
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	res, _, err := eng.Execute(p)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res
}

// selectPlan: select + fetch + sum, the minimal basic-mutation target.
func selectPlan() *plan.Plan {
	b := plan.NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	price := b.Bind("lineitem", "l_extendedprice")
	s := b.Select(ship, algebra.Between(50, 250))
	pr := b.Fetch(s, price)
	sum := b.Aggr(algebra.AggrSum, pr)
	b.Result(sum)
	return b.Plan()
}

// joinPlan: select on lineitem, fk join to part, sum of fetched part values.
func joinPlan() *plan.Plan {
	b := plan.NewBuilder()
	key := b.Bind("lineitem", "l_key")
	pkey := b.Bind("part", "p_partkey")
	pval := b.Bind("part", "p_value")
	lo, ro := b.Join(key, pkey)
	_ = lo
	vals := b.Fetch(ro, pval)
	sum := b.Aggr(algebra.AggrSum, vals)
	b.Result(sum)
	return b.Plan()
}

// groupPlan: group-by with two aggregates and a keys output.
func groupPlan() *plan.Plan {
	b := plan.NewBuilder()
	key := b.Bind("lineitem", "l_key")
	price := b.Bind("lineitem", "l_extendedprice")
	g := b.GroupBy(key)
	sums := b.AggrGrouped(algebra.AggrSum, price, g)
	counts := b.AggrGrouped(algebra.AggrCount, price, g)
	keys := b.GroupKeys(g)
	b.Result(keys, sums, counts)
	return b.Plan()
}

func findOp(p *plan.Plan, op plan.OpCode) int {
	for i, in := range p.Instrs {
		if in.Op == op {
			return i
		}
	}
	return -1
}

func TestBasicMutationSelect(t *testing.T) {
	cat := testCatalog(10_000)
	p := selectPlan()
	want := executePlan(t, cat, p)

	np, kind, err := Parallelize(p, findOp(p, plan.OpSelect), 2)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MutationBasic {
		t.Fatalf("kind = %s", kind)
	}
	if err := np.Validate(); err != nil {
		t.Fatal(err)
	}
	if np.CountOps(plan.OpSelect) != 2 {
		t.Fatalf("selects = %d, want 2", np.CountOps(plan.OpSelect))
	}
	if np.CountOps(plan.OpPack) != 1 {
		t.Fatalf("packs = %d, want 1", np.CountOps(plan.OpPack))
	}
	if np.MaxDOP() != 2 {
		t.Fatalf("DOP = %d", np.MaxDOP())
	}
	got := executePlan(t, cat, np)
	if !exec.ResultsEqual(want, got) {
		t.Fatalf("mutated result %v != %v", got, want)
	}
	// Original untouched.
	if p.CountOps(plan.OpSelect) != 1 {
		t.Fatal("original plan was modified")
	}
}

func TestBasicMutationGrowsExistingPack(t *testing.T) {
	cat := testCatalog(10_000)
	p := selectPlan()
	want := executePlan(t, cat, p)

	np, _, err := Parallelize(p, findOp(p, plan.OpSelect), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Split the first select clone again: the pack must grow to 3 inputs,
	// not gain a nested pack (Figure 8's dynamic partitioning).
	np2, kind, err := Parallelize(np, findOp(np, plan.OpSelect), 2)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MutationBasic {
		t.Fatalf("kind = %s", kind)
	}
	if np2.CountOps(plan.OpSelect) != 3 || np2.CountOps(plan.OpPack) != 1 {
		t.Fatalf("selects=%d packs=%d, want 3/1", np2.CountOps(plan.OpSelect), np2.CountOps(plan.OpPack))
	}
	pk := np2.Instrs[findOp(np2, plan.OpPack)]
	if len(pk.Args) != 3 {
		t.Fatalf("pack arity = %d, want 3", len(pk.Args))
	}
	got := executePlan(t, cat, np2)
	if !exec.ResultsEqual(want, got) {
		t.Fatalf("twice-mutated result %v != %v", got, want)
	}
	// Partition ranges of the three selects cover [0,1) without overlap.
	var parts []plan.Part
	for _, in := range np2.Instrs {
		if in.Op == plan.OpSelect {
			parts = append(parts, in.Part)
		}
	}
	covered := make([]int, 1000)
	for _, part := range parts {
		lo, hi := part.Resolve(1000)
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("position %d covered %d times", i, c)
		}
	}
}

func TestJoinMutationPartitionsOuterOnly(t *testing.T) {
	cat := testCatalog(10_000)
	p := joinPlan()
	want := executePlan(t, cat, p)

	np, kind, err := Parallelize(p, findOp(p, plan.OpJoin), 2)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MutationBasic {
		t.Fatalf("kind = %s", kind)
	}
	if np.CountOps(plan.OpJoin) != 2 {
		t.Fatalf("joins = %d", np.CountOps(plan.OpJoin))
	}
	// Join has two results; only the consumed one needs packing, but both
	// clones must share the same inner variable (shared hash build).
	joins := []*plan.Instr{}
	for _, in := range np.Instrs {
		if in.Op == plan.OpJoin {
			joins = append(joins, in)
		}
	}
	if joins[0].Args[1] != joins[1].Args[1] {
		t.Fatal("join clones do not share the inner input")
	}
	if joins[0].Args[0] != joins[1].Args[0] {
		t.Fatal("join clones should share the outer var (sliced by Part)")
	}
	if joins[0].Part == joins[1].Part {
		t.Fatal("join clones have identical partitions")
	}
	got := executePlan(t, cat, np)
	if !exec.ResultsEqual(want, got) {
		t.Fatalf("join-mutated result %v != %v", got, want)
	}
}

func TestAdvancedMutationScalarAggr(t *testing.T) {
	cat := testCatalog(10_000)
	p := selectPlan()
	want := executePlan(t, cat, p)

	np, kind, err := Parallelize(p, findOp(p, plan.OpAggr), 2)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MutationAdvanced {
		t.Fatalf("kind = %s", kind)
	}
	if np.CountOps(plan.OpAggr) != 2 || np.CountOps(plan.OpMergeAggr) != 1 || np.CountOps(plan.OpPack) != 1 {
		t.Fatalf("aggr=%d merge=%d pack=%d", np.CountOps(plan.OpAggr), np.CountOps(plan.OpMergeAggr), np.CountOps(plan.OpPack))
	}
	got := executePlan(t, cat, np)
	if !exec.ResultsEqual(want, got) {
		t.Fatalf("aggr-mutated result %v != %v", got, want)
	}
	// Splitting one aggr clone again grows the partials pack to 3 without a
	// second merge.
	np2, _, err := Parallelize(np, findOp(np, plan.OpAggr), 2)
	if err != nil {
		t.Fatal(err)
	}
	if np2.CountOps(plan.OpAggr) != 3 || np2.CountOps(plan.OpMergeAggr) != 1 {
		t.Fatalf("second split: aggr=%d merge=%d", np2.CountOps(plan.OpAggr), np2.CountOps(plan.OpMergeAggr))
	}
	if got2 := executePlan(t, cat, np2); !exec.ResultsEqual(want, got2) {
		t.Fatal("second aggr split changed results")
	}
}

func TestAdvancedMutationGroupBy(t *testing.T) {
	cat := testCatalog(10_000)
	p := groupPlan()
	want := executePlan(t, cat, p)

	np, kind, err := Parallelize(p, findOp(p, plan.OpGroupBy), 2)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MutationAdvanced {
		t.Fatalf("kind = %s", kind)
	}
	if err := np.Validate(); err != nil {
		t.Fatal(err)
	}
	if np.CountOps(plan.OpGroupBy) != 2 {
		t.Fatalf("groupbys = %d", np.CountOps(plan.OpGroupBy))
	}
	if np.CountOps(plan.OpGroupMerge) != 2 { // one per aggregate
		t.Fatalf("groupmerges = %d", np.CountOps(plan.OpGroupMerge))
	}
	got := executePlan(t, cat, np)
	if !exec.ResultsEqual(want, got) {
		t.Fatalf("groupby-mutated results differ")
	}

	// Splitting a group-by clone splices into the existing packs.
	np2, _, err := Parallelize(np, findOp(np, plan.OpGroupBy), 2)
	if err != nil {
		t.Fatal(err)
	}
	if np2.CountOps(plan.OpGroupBy) != 3 || np2.CountOps(plan.OpGroupMerge) != 2 {
		t.Fatalf("second split: groupbys=%d merges=%d", np2.CountOps(plan.OpGroupBy), np2.CountOps(plan.OpGroupMerge))
	}
	if got2 := executePlan(t, cat, np2); !exec.ResultsEqual(want, got2) {
		t.Fatal("second groupby split changed results")
	}
}

func TestAdvancedMutationSort(t *testing.T) {
	cat := testCatalog(5_000)
	b := plan.NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	sorted, _ := b.Sort(ship, false)
	sum := b.Aggr(algebra.AggrSum, sorted)
	b.Result(sum, sorted)
	p := b.Plan()
	want := executePlan(t, cat, p)

	np, kind, err := Parallelize(p, findOp(p, plan.OpSort), 2)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MutationAdvanced {
		t.Fatalf("kind = %s", kind)
	}
	if np.CountOps(plan.OpSort) != 2 || np.CountOps(plan.OpMergeSorted) != 1 {
		t.Fatalf("sorts=%d merges=%d", np.CountOps(plan.OpSort), np.CountOps(plan.OpMergeSorted))
	}
	got := executePlan(t, cat, np)
	if !exec.ResultsEqual(want, got) {
		t.Fatal("sort-mutated results differ")
	}
}

func TestSortMutationRefusedWhenPermConsumed(t *testing.T) {
	b := plan.NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	price := b.Bind("lineitem", "l_extendedprice")
	sorted, perm := b.Sort(ship, false)
	pr := b.Fetch(perm, price)
	b.Result(sorted, pr)
	p := b.Plan()
	_, _, err := Parallelize(p, findOp(p, plan.OpSort), 2)
	if !errors.Is(err, errNotApplicable) {
		t.Fatalf("err = %v, want errNotApplicable", err)
	}
}

func TestMediumMutationRemovePack(t *testing.T) {
	cat := testCatalog(10_000)
	p := selectPlan()
	want := executePlan(t, cat, p)

	// First parallelize the select (creates the pack), then remove the pack
	// when it turns "expensive": its inputs propagate to the fetch.
	np, _, err := Parallelize(p, findOp(p, plan.OpSelect), 2)
	if err != nil {
		t.Fatal(err)
	}
	packIdx := findOp(np, plan.OpPack)
	np2, err := RemovePack(np, packIdx, 15)
	if err != nil {
		t.Fatal(err)
	}
	if err := np2.Validate(); err != nil {
		t.Fatal(err)
	}
	// The oids pack is gone; the fetch is cloned per input with a fresh
	// column pack combining the fetched values.
	if np2.CountOps(plan.OpFetch) != 2 {
		t.Fatalf("fetches = %d, want 2", np2.CountOps(plan.OpFetch))
	}
	got := executePlan(t, cat, np2)
	if !exec.ResultsEqual(want, got) {
		t.Fatalf("medium-mutated result %v != %v", got, want)
	}
}

func TestMediumMutationIntoScalarAggr(t *testing.T) {
	cat := testCatalog(10_000)
	// select → fetch → aggr; parallelize fetch, then remove its pack: the
	// aggr splits into partials + merge.
	p := selectPlan()
	want := executePlan(t, cat, p)
	np, _, err := Parallelize(p, findOp(p, plan.OpFetch), 2)
	if err != nil {
		t.Fatal(err)
	}
	np2, err := RemovePack(np, findOp(np, plan.OpPack), 15)
	if err != nil {
		t.Fatal(err)
	}
	if np2.CountOps(plan.OpAggr) != 2 || np2.CountOps(plan.OpMergeAggr) != 1 {
		t.Fatalf("aggr=%d merge=%d", np2.CountOps(plan.OpAggr), np2.CountOps(plan.OpMergeAggr))
	}
	got := executePlan(t, cat, np2)
	if !exec.ResultsEqual(want, got) {
		t.Fatal("medium-into-aggr changed results")
	}
}

func TestRemovePackSuppressedAboveThreshold(t *testing.T) {
	p := selectPlan()
	np, _, err := Parallelize(p, findOp(p, plan.OpSelect), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the pack beyond the threshold by repeated splitting.
	for np.CountOps(plan.OpSelect) <= 16 {
		np, _, err = Parallelize(np, findOp(np, plan.OpSelect), 2)
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err = RemovePack(np, findOp(np, plan.OpPack), 15)
	if !errors.Is(err, ErrSuppressed) {
		t.Fatalf("err = %v, want ErrSuppressed", err)
	}
}

func TestRemovePackFlattensIntoConsumerPack(t *testing.T) {
	cat := testCatalog(10_000)
	// Build a plan where a pack feeds another pack (pack of packs after
	// mixed mutations): removal must splice, not clone.
	b := plan.NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	s1 := b.Select(ship, algebra.Between(0, 100))
	s2 := b.Select(ship, algebra.Between(101, 200))
	p := b.Plan()
	inner := p.NewVar(plan.KindOids, "inner")
	p.Append(&plan.Instr{Op: plan.OpPack, Args: []plan.VarID{s1, s2}, Rets: []plan.VarID{inner}, Part: plan.FullPart()})
	s3 := p.NewVar(plan.KindOids, "s3")
	p.Append(&plan.Instr{Op: plan.OpSelect, Aux: plan.SelectAux{Pred: algebra.Between(201, 300)},
		Args: []plan.VarID{ship}, Rets: []plan.VarID{s3}, Part: plan.FullPart()})
	outer := p.NewVar(plan.KindOids, "outer")
	p.Append(&plan.Instr{Op: plan.OpPack, Args: []plan.VarID{inner, s3}, Rets: []plan.VarID{outer}, Part: plan.FullPart()})
	p.Append(&plan.Instr{Op: plan.OpResult, Args: []plan.VarID{outer}, Part: plan.FullPart()})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	want := executePlan(t, cat, p)

	innerIdx := -1
	for i, in := range p.Instrs {
		if in.Op == plan.OpPack && len(in.Args) == 2 && p.NameOf(in.Rets[0]) == "inner" {
			innerIdx = i
		}
	}
	np, err := RemovePack(p, innerIdx, 15)
	if err != nil {
		t.Fatal(err)
	}
	if np.CountOps(plan.OpPack) != 1 {
		t.Fatalf("packs = %d, want 1 (flattened)", np.CountOps(plan.OpPack))
	}
	outerPack := np.Instrs[findOp(np, plan.OpPack)]
	if len(outerPack.Args) != 3 {
		t.Fatalf("outer pack arity = %d, want 3", len(outerPack.Args))
	}
	got := executePlan(t, cat, np)
	if !exec.ResultsEqual(want, got) {
		t.Fatal("flattening changed results")
	}
}

// The central correctness property: ANY random sequence of applicable
// mutations leaves query results identical to the serial plan (invariant 1
// of DESIGN.md).
func TestRandomMutationSequencesPreserveResults(t *testing.T) {
	cat := testCatalog(8_000)
	plans := map[string]func() *plan.Plan{
		"select": selectPlan,
		"join":   joinPlan,
		"group":  groupPlan,
	}
	for name, mk := range plans {
		t.Run(name, func(t *testing.T) {
			base := mk()
			want := executePlan(t, cat, base)
			for seed := int64(0); seed < 6; seed++ {
				rng := rand.New(rand.NewSource(seed))
				p := base
				for step := 0; step < 7; step++ {
					// Pick a random mutatable instruction.
					var cands []int
					for i, in := range p.Instrs {
						if plan.BasicPartitionable(in.Op) || plan.AdvancedPartitionable(in.Op) || in.Op == plan.OpPack {
							cands = append(cands, i)
						}
					}
					if len(cands) == 0 {
						break
					}
					idx := cands[rng.Intn(len(cands))]
					var np *plan.Plan
					var err error
					if p.Instrs[idx].Op == plan.OpPack {
						np, err = RemovePack(p, idx, 15)
					} else {
						np, _, err = Parallelize(p, idx, 2)
					}
					if err != nil {
						continue // not applicable here; try another step
					}
					if verr := np.Validate(); verr != nil {
						t.Fatalf("seed %d step %d: invalid plan: %v\n%s", seed, step, verr, np)
					}
					p = np
				}
				got := executePlan(t, cat, p)
				if !exec.ResultsEqual(want, got) {
					t.Fatalf("seed %d: mutated plan diverged\n%s", seed, p)
				}
			}
		})
	}
}
