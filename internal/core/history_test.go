package core

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
)

func TestPlanCacheAdaptsThenServesGME(t *testing.T) {
	cat := testCatalog(200_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	pc := NewPlanCache(eng, DefaultMutationConfig(), DefaultConvergenceConfig(4))

	builds := 0
	builder := func() *plan.Plan {
		builds++
		return selectPlan()
	}

	var firstResult []exec.Value
	invocations := 0
	for i := 0; i < 200; i++ {
		vals, prof, state, err := pc.Execute("q6", builder)
		if err != nil {
			t.Fatal(err)
		}
		invocations++
		if prof.Makespan() <= 0 {
			t.Fatal("no makespan")
		}
		if i == 0 {
			firstResult = vals
		} else if !exec.ResultsEqual(firstResult, vals) {
			t.Fatalf("invocation %d diverged", i)
		}
		if state == StateConverged && pc.Converged("q6") {
			break
		}
	}
	if !pc.Converged("q6") {
		t.Fatalf("not converged after %d invocations", invocations)
	}
	if builds != 1 {
		t.Fatalf("serial plan built %d times, want 1", builds)
	}
	rep := pc.Report("q6")
	if rep == nil || rep.TotalRuns < 5 {
		t.Fatalf("report = %+v", rep)
	}

	// Post-convergence invocations serve the GME plan (fast) and still
	// return correct results.
	vals, prof, state, err := pc.Execute("q6", builder)
	if err != nil {
		t.Fatal(err)
	}
	if state != StateConverged {
		t.Fatalf("state = %s", state)
	}
	if !exec.ResultsEqual(firstResult, vals) {
		t.Fatal("converged plan diverged")
	}
	if prof.Makespan() >= rep.SerialNs {
		t.Fatalf("converged plan (%f) not faster than serial (%f)", prof.Makespan(), rep.SerialNs)
	}
	if builds != 1 {
		t.Fatal("builder re-invoked after caching")
	}
}

func TestPlanCacheIndependentTemplates(t *testing.T) {
	cat := testCatalog(30_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	pc := NewPlanCache(eng, DefaultMutationConfig(), DefaultConvergenceConfig(2))

	if _, _, _, err := pc.Execute("a", selectPlan); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := pc.Execute("b", joinPlan); err != nil {
		t.Fatal(err)
	}
	keys := pc.Keys()
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	if pc.Report("a") == nil || pc.Report("b") == nil || pc.Report("ghost") != nil {
		t.Fatal("reports wrong")
	}
	pc.Evict("a")
	if pc.Report("a") != nil || pc.Converged("a") {
		t.Fatal("evict failed")
	}
	if len(pc.Keys()) != 1 {
		t.Fatal("evict did not shrink keys")
	}
}

func TestInvocationStateString(t *testing.T) {
	if StateAdapting.String() != "adapting" || StateConverged.String() != "converged" {
		t.Fatal("state strings wrong")
	}
}

func TestPlanCacheDefaultsCoresFromMachine(t *testing.T) {
	cat := testCatalog(1_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	pc := NewPlanCache(eng, DefaultMutationConfig(), ConvergenceConfig{})
	if pc.ccfg.Cores != testMachine().LogicalCores() {
		t.Fatalf("cores = %d", pc.ccfg.Cores)
	}
}
