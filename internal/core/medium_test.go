package core

import (
	"errors"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
)

// calcPlan builds select → two fetches → calc → sum: the multi-column
// propagation-dependency shape of §2.2 (two sibling packs feeding one calc
// after parallelization).
func calcPlan() *plan.Plan {
	b := plan.NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	disc := b.Bind("lineitem", "l_discount")
	price := b.Bind("lineitem", "l_extendedprice")
	s := b.Select(ship, algebra.Between(50, 250))
	d := b.Fetch(s, disc)
	pr := b.Fetch(s, price)
	rev := b.CalcVV(algebra.CalcMul, pr, d)
	sum := b.Aggr(algebra.AggrSum, rev)
	b.Result(sum)
	return b.Plan()
}

func mustParallelize(t *testing.T, p *plan.Plan, idx, n int) *plan.Plan {
	t.Helper()
	np, _, err := Parallelize(p, idx, n)
	if err != nil {
		t.Fatalf("parallelize instr %d: %v", idx, err)
	}
	return np
}

func TestMediumMutationSiblingPacks(t *testing.T) {
	cat := testCatalog(10_000)
	p := calcPlan()
	want := executePlan(t, cat, p)

	// Parallelize both fetches: two sibling packs feed the calc.
	np := mustParallelize(t, p, findOp(p, plan.OpFetch), 2)
	second := -1
	for i, in := range np.Instrs {
		if in.Op == plan.OpFetch && in.Part.IsFull() {
			second = i
		}
	}
	if second < 0 {
		t.Fatal("second fetch not found")
	}
	np = mustParallelize(t, np, second, 2)
	if np.CountOps(plan.OpPack) != 2 {
		t.Fatalf("packs = %d, want 2 siblings", np.CountOps(plan.OpPack))
	}
	// Remove one pack: the calc must be cloned pairwise against the
	// sibling pack's inputs, and the dead sibling dropped.
	np2, err := RemovePack(np, findOp(np, plan.OpPack), 33)
	if err != nil {
		t.Fatal(err)
	}
	if err := np2.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := np2.CountOps(plan.OpCalcVV); got != 2 {
		t.Fatalf("calc clones = %d, want 2", got)
	}
	got := executePlan(t, cat, np2)
	if !exec.ResultsEqual(want, got) {
		t.Fatalf("sibling-pack propagation changed results\n%s", np2)
	}
}

func TestMediumMutationRefusesUnpairedSibling(t *testing.T) {
	cat := testCatalog(10_000)
	_ = cat
	p := calcPlan()
	// Parallelize only ONE fetch: the calc's other anchor is a plain
	// (unpartitioned) variable, so the pack cannot be removed through it.
	np := mustParallelize(t, p, findOp(p, plan.OpFetch), 2)
	_, err := RemovePack(np, findOp(np, plan.OpPack), 33)
	if !errors.Is(err, errNotApplicable) {
		t.Fatalf("err = %v, want errNotApplicable", err)
	}
}

func TestMediumMutationPartitionedConsumerFamily(t *testing.T) {
	cat := testCatalog(10_000)
	p := selectPlan()
	want := executePlan(t, cat, p)

	// Split the select, then split the fetch over the packed oids twice so
	// the pack's consumers are a positionally partitioned family.
	np := mustParallelize(t, p, findOp(p, plan.OpSelect), 2)
	np = mustParallelize(t, np, findOp(np, plan.OpFetch), 2)
	np = mustParallelize(t, np, findOp(np, plan.OpFetch), 2)

	// Find the oids pack (select-output pack).
	packIdx := -1
	for i, in := range np.Instrs {
		if in.Op == plan.OpPack && np.KindOf(in.Rets[0]) == plan.KindOids {
			packIdx = i
		}
	}
	if packIdx < 0 {
		t.Fatalf("no oids pack found:\n%s", np)
	}
	np2, err := RemovePack(np, packIdx, 33)
	if err != nil {
		t.Fatal(err)
	}
	if err := np2.Validate(); err != nil {
		t.Fatal(err)
	}
	// The family (3 partitioned fetch clones) is replaced by per-input
	// clones (2 select clones → 2 fetches).
	if got := np2.CountOps(plan.OpFetch); got != 2 {
		t.Fatalf("fetches = %d, want 2 per-input clones\n%s", got, np2)
	}
	got := executePlan(t, cat, np2)
	if !exec.ResultsEqual(want, got) {
		t.Fatal("family replacement changed results")
	}
}

func TestRemovePackIntoGroupBySubgraph(t *testing.T) {
	cat := testCatalog(10_000)
	p := groupPlan()
	want := executePlan(t, cat, p)

	// Build the state: keys fetched via a partitioned select (pack), then
	// advanced-parallelized group-by clones slicing the pack.
	b := plan.NewBuilder()
	key := b.Bind("lineitem", "l_key")
	price := b.Bind("lineitem", "l_extendedprice")
	s := b.Select(key, algebra.FullRange())
	keys := b.Fetch(s, key)
	vals := b.Fetch(s, price)
	g := b.GroupBy(keys)
	sums := b.AggrGrouped(algebra.AggrSum, vals, g)
	counts := b.AggrGrouped(algebra.AggrCount, vals, g)
	gk := b.GroupKeys(g)
	b.Result(gk, sums, counts)
	p2 := b.Plan()
	wantP2 := executePlan(t, cat, p2)

	np := mustParallelize(t, p2, findOp(p2, plan.OpFetch), 2) // keys fetch → pack
	// Second fetch (vals) becomes the sibling pack.
	idx := -1
	for i, in := range np.Instrs {
		if in.Op == plan.OpFetch && in.Part.IsFull() {
			idx = i
		}
	}
	np = mustParallelize(t, np, idx, 2)
	// Advanced mutation of the group-by over the packed keys.
	np = mustParallelize(t, np, findOp(np, plan.OpGroupBy), 2)

	// Now remove the keys pack: the group-by subgraph is re-cloned per
	// pack input.
	packIdx := -1
	for i, in := range np.Instrs {
		if in.Op != plan.OpPack {
			continue
		}
		for _, ci := range np.Consumers(in.Rets[0]) {
			if np.Instrs[ci].Op == plan.OpGroupBy {
				packIdx = i
			}
		}
	}
	if packIdx < 0 {
		t.Skipf("no pack feeds the group-by in this plan state:\n%s", np)
	}
	np2, err := RemovePack(np, packIdx, 33)
	if err != nil {
		t.Fatalf("remove groupby pack: %v\n%s", err, np)
	}
	if err := np2.Validate(); err != nil {
		t.Fatal(err)
	}
	got := executePlan(t, cat, np2)
	if !exec.ResultsEqual(wantP2, got) {
		t.Fatal("groupby-subgraph propagation changed results")
	}
	_ = want
}

// Deep adaptive sessions across all three plan shapes with verification on:
// a long random walk through every mutation path must preserve results.
func TestDeepSessionsPreserveResults(t *testing.T) {
	cat := testCatalog(60_000)
	for name, mk := range map[string]func() *plan.Plan{
		"select": selectPlan, "join": joinPlan, "group": groupPlan, "calc": calcPlan,
	} {
		t.Run(name, func(t *testing.T) {
			eng := exec.NewEngine(cat, testMachine(), cost.Default())
			s := NewSession(eng, mk(), DefaultMutationConfig(), DefaultConvergenceConfig(8))
			s.VerifyResults = true
			if _, err := s.Converge(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConvergenceFirstRunSpikeForgiven(t *testing.T) {
	c := NewConvergence(DefaultConvergenceConfig(8))
	c.Observe(100) // serial
	if !c.Observe(400) {
		t.Fatal("spiked first run halted adaptation")
	}
	if len(c.Outliers()) != 1 {
		t.Fatalf("outliers = %v", c.Outliers())
	}
	// Recovery and improvement continue normally.
	if !c.Observe(80) || !c.Observe(60) {
		t.Fatal("post-spike improvements rejected")
	}
	gme, _, ok := c.GME()
	if !ok || gme != 60 {
		t.Fatalf("GME = %v", gme)
	}
}
