package core

import "math"

// Staleness detection: the adaptivity claim under drift (ROADMAP item 5). A
// converged session pins its best plan and serves it forever — which turns
// the paper's headline artifact into a liability the moment the machine
// changes underneath it (core loss, throttling, sustained interference). A
// session with a StalenessConfig watches the execution times of its
// post-convergence serving runs: when they deviate from the converged
// expectation beyond the band for Window consecutive runs, the session
// *reopens* convergence — a fresh, bounded credit/debit instance whose
// serial baseline is the stale plan's performance on the machine as it now
// is — and adapts again instead of pinning the stale plan. The persistent
// store is updated only when the reopened instance converges (the
// plan-session cache persists on done-transitions, and a reopened session is
// not done).
//
// The band is symmetric: runs far *below* expectation also reopen, because a
// machine that got faster (throttle lifted, interference ended) changes the
// optimum too — the paper's adaptivity cuts both ways.

// StalenessConfig parameterizes post-convergence staleness detection.
type StalenessConfig struct {
	// Band is the tolerated relative deviation of an observed serving run
	// from the converged expectation (|observed − GME| / GME). 0.35 means a
	// run 35% off expectation counts as stale. Band <= 0 disables detection.
	Band float64
	// Window is how many *consecutive* stale runs trigger a reopen
	// (default 3) — single noise spikes are forgiven, sustained drift is not.
	Window int
	// ExtraRuns bounds the reopened convergence instance's post-threshold
	// search (ConvergenceConfig.ExtraRuns semantics; default 6, slightly
	// under the cold default of 8). The reopened instance is additionally
	// sized to the post-fault machine — its Cores is the surviving core
	// count — so both the leak threshold and the total bound shrink with
	// the hardware.
	ExtraRuns int
}

// DefaultStalenessConfig tolerates ±35% drift for up to 3 consecutive runs.
// The band sits far above the noise floor (±3% jitter) but well below the
// slowdown of losing cores or an SMT sibling's worth of throughput, and 3
// consecutive spikes at DefaultNoise rates are a ~10^-7 event.
func DefaultStalenessConfig() StalenessConfig {
	return StalenessConfig{Band: 0.35, Window: 3, ExtraRuns: 6}
}

// enabled reports whether detection is active.
func (c StalenessConfig) enabled() bool { return c.Band > 0 }

// withDefaults fills the zero fields of an enabled config.
func (c StalenessConfig) withDefaults() StalenessConfig {
	if !c.enabled() {
		return c
	}
	if c.Window <= 0 {
		c.Window = 3
	}
	if c.ExtraRuns <= 0 {
		c.ExtraRuns = 6
	}
	return c
}

// SetStaleness arms (or, with a zero Band, disarms) post-convergence
// staleness detection on the session. Safe to call at any point; it applies
// to subsequent ObserveServed calls.
func (s *Session) SetStaleness(cfg StalenessConfig) {
	s.stale = cfg.withDefaults()
	s.staleRun = 0
}

// Staleness returns the session's staleness configuration (zero = disabled).
func (s *Session) Staleness() StalenessConfig { return s.stale }

// Reconvergences reports how many times staleness detection has reopened
// this session's convergence.
func (s *Session) Reconvergences() int { return s.reopens }

// ObserveServed feeds the virtual execution time of one post-convergence
// serving run (an execution of Best outside the adaptation loop) into
// staleness detection. It reports whether the observation tripped the
// detector and reopened convergence — after a true return the session is no
// longer Done and the next Step re-explores from the previously-best plan.
//
// Not every serving run qualifies: runs executed under an admission-control
// core budget below the plan's needs reflect the budget, not the machine,
// and must not be fed here (the plan-session cache skips them).
func (s *Session) ObserveServed(execNs float64) bool {
	if !s.done.Load() || !s.stale.enabled() || execNs <= 0 {
		return false
	}
	expect := s.expectNs
	if expect <= 0 {
		// Session converged before expectations were tracked (or was built
		// by hand in a test): derive it from the convergence instance.
		if gme, _, ok := s.conv.GME(); ok {
			expect = gme
		} else {
			expect = s.conv.Serial()
		}
		s.expectNs = expect
	}
	if expect <= 0 {
		return false
	}
	if math.Abs(execNs-expect)/expect <= s.stale.Band {
		s.staleRun = 0
		return false
	}
	s.staleRun++
	if s.staleRun < s.stale.Window {
		return false
	}
	s.reopen(execNs)
	return true
}

// reopen restarts convergence: the finished credit/debit instance is folded
// into the report prefix and a fresh bounded instance takes over. Exploration
// restarts from the session's *serial* plan — the mutator only ever adds
// parallelism, so regrowing from serial is the only trajectory that can land
// on a lower-DOP optimum when the machine shrank (a session restored from a
// snapshot has no serial plan and restarts from its best instead). The
// previously-best plan stays in s.best and keeps serving via Best() until a
// run *better than the stale serving level* (staleNs, the observation that
// tripped the detector) dethrones it; if bounded re-exploration finds
// nothing below that bar, the session re-pins the old best with its
// expectation reset to the stale level — reopening never makes serving worse
// than the stale plan was, and a re-pin does not re-trip the detector.
//
// The reopened instance is sized to the machine as it now is: its Cores is
// the engine machine's post-fault available core count, so the leaking-debit
// threshold — and with it the re-convergence bound — shrinks with the
// machine.
func (s *Session) reopen(staleNs float64) {
	s.staleRun = 0
	s.reopens++
	s.foldInstance()
	ccfg := s.conv.Config()
	ccfg.ExtraRuns = s.stale.ExtraRuns
	if cores := s.eng.Machine().AvailableCores(); cores >= 1 {
		ccfg.Cores = cores
	}
	s.conv = NewConvergence(ccfg)
	if s.reopenFrom != nil {
		s.cur = s.reopenFrom
	} else if s.best != nil {
		s.cur = s.best
	}
	s.parent = nil
	s.nextMut = Mutation{}
	s.reopenBar = staleNs
	s.dethroned = false
	s.expectNs = 0
	s.done.Store(false)
}
