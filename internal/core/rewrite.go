// Package core implements the paper's contribution: adaptive
// parallelization. It contains the three plan-mutation schemes of §2.1
// (basic, medium, advanced), dynamic range partitioning with dyadic
// boundaries (§2.3), the exchange-union input threshold that suppresses plan
// explosion, the convergence algorithm of §3 (GME detection, ROI-driven
// credit/debit budget, leaking debit, outlier peaks), and the adaptation
// session that ties them to the execution engine.
package core

import (
	"errors"
	"fmt"
	"slices"
	"strconv"

	"repro/internal/plan"
)

// MutationKind labels the mutation scheme applied (§2.1).
type MutationKind int

const (
	// MutationNone: no mutation was possible; the plan is unchanged.
	MutationNone MutationKind = iota
	// MutationBasic: an expensive operator was cloned over a split range
	// (Figure 3 / Figure 4).
	MutationBasic
	// MutationMedium: an expensive exchange union was removed and its
	// inputs propagated to dataflow-dependent operators (Figure 5).
	MutationMedium
	// MutationAdvanced: a non-filtering operator (group-by, aggregate,
	// sort) was parallelized with partials and a merge (Figure 6).
	MutationAdvanced
)

func (k MutationKind) String() string {
	switch k {
	case MutationNone:
		return "none"
	case MutationBasic:
		return "basic"
	case MutationMedium:
		return "medium"
	case MutationAdvanced:
		return "advanced"
	}
	return fmt.Sprintf("mutation(%d)", int(k))
}

// ErrSuppressed reports that a pack's removal was suppressed because its
// input count crossed the threshold (§2.3, "Plan explosion"): the plan stops
// growing and convergence is left to drain.
var ErrSuppressed = errors.New("core: exchange union removal suppressed (input threshold)")

// errNotApplicable reports a mutation that cannot apply at this instruction;
// the mutator then tries the next most expensive operator.
var errNotApplicable = errors.New("core: mutation not applicable")

// kindOfPack returns the result kind a pack over args of kind k produces.
func kindOfPack(k plan.Kind) plan.Kind {
	if k == plan.KindOids {
		return plan.KindOids
	}
	return plan.KindColumn
}

// rewriteCtx accumulates one mutation's edits over a cloned plan and commits
// them in a single pass.
type rewriteCtx struct {
	p       *plan.Plan
	removed map[*plan.Instr]bool
	addend  []*plan.Instr
	rewires map[plan.VarID]plan.VarID
}

func newRewrite(p *plan.Plan) *rewriteCtx {
	return &rewriteCtx{p: p, removed: map[*plan.Instr]bool{}, rewires: map[plan.VarID]plan.VarID{}}
}

func (rw *rewriteCtx) remove(in *plan.Instr)         { rw.removed[in] = true }
func (rw *rewriteCtx) add(in *plan.Instr)            { rw.addend = append(rw.addend, in) }
func (rw *rewriteCtx) rewire(from, to plan.VarID)    { rw.rewires[from] = to }
func (rw *rewriteCtx) newVar(k plan.Kind) plan.VarID { return rw.p.NewVar(k, "") }

// commit assembles the final instruction list, applies variable rewires to
// surviving and added instructions, and restores topological order.
func (rw *rewriteCtx) commit() error {
	out := make([]*plan.Instr, 0, len(rw.p.Instrs)+len(rw.addend))
	for _, in := range rw.p.Instrs {
		if !rw.removed[in] {
			out = append(out, in)
		}
	}
	out = append(out, rw.addend...)
	if len(rw.rewires) > 0 {
		for _, in := range out {
			for i, a := range in.Args {
				if to, ok := rw.rewires[a]; ok {
					in.Args[i] = to
				}
			}
		}
	}
	rw.p.Instrs = out
	return rw.p.TopoSort()
}

// cloneOver creates nParts clones of t, each restricted to one sub-range of
// t's current partition, with fresh result variables. The clones inherit
// t's arguments (so join clones share the inner build, §2.1).
func (rw *rewriteCtx) cloneOver(t *plan.Instr, parts []plan.Part, comment string) []*plan.Instr {
	clones := make([]*plan.Instr, len(parts))
	for i, part := range parts {
		rets := make([]plan.VarID, len(t.Rets))
		for j, r := range t.Rets {
			rets[j] = rw.newVar(rw.p.KindOf(r))
		}
		clones[i] = &plan.Instr{
			Op:      t.Op,
			Args:    append([]plan.VarID(nil), t.Args...),
			Rets:    rets,
			Aux:     t.Aux,
			Part:    part,
			Comment: comment,
		}
		rw.add(clones[i])
	}
	return clones
}

// combineRet wires the ri-th results of the clones into every consumer of
// the original result variable r:
//
//   - consumers that are packs get the clone results spliced in place of r,
//     preserving partition order (the ordering invariant of §2.3);
//   - other consumers are rewired to a new pack over the clone results —
//     and, for scalar aggregates, to a merge over the packed partials
//     (aggr → pack → mergeaggr, the Figure 7 shape), or to a sorted-run
//     merge for sorts.
//
// origin is the instruction being replaced (its aux provides merge
// semantics).
func (rw *rewriteCtx) combineRet(origin *plan.Instr, r plan.VarID, ri int, clones []*plan.Instr) error {
	cloneRets := make([]plan.VarID, len(clones))
	for i, c := range clones {
		cloneRets[i] = c.Rets[ri]
	}
	var packConsumers []*plan.Instr
	needCombined := false
	for _, in := range rw.p.Instrs {
		if rw.removed[in] || in == origin {
			continue
		}
		uses := false
		for _, a := range in.Args {
			if a == r {
				uses = true
				break
			}
		}
		if !uses {
			continue
		}
		if in.Op == plan.OpPack || in.Op == plan.OpMergeSorted {
			packConsumers = append(packConsumers, in)
		} else {
			needCombined = true
		}
	}
	// Splice into existing packs in place (partition order preserved).
	for _, pk := range packConsumers {
		newArgs := make([]plan.VarID, 0, len(pk.Args)+len(cloneRets)-1)
		for _, a := range pk.Args {
			if a == r {
				newArgs = append(newArgs, cloneRets...)
			} else {
				newArgs = append(newArgs, a)
			}
		}
		pk.Args = newArgs
	}
	if !needCombined {
		return nil
	}

	retKind := rw.p.KindOf(r)
	switch {
	case origin.Op == plan.OpSort && ri == 0:
		// Sorted runs must merge, not concatenate.
		mv := rw.newVar(plan.KindColumn)
		rw.add(&plan.Instr{Op: plan.OpMergeSorted, Args: cloneRets, Rets: []plan.VarID{mv},
			Aux: origin.Aux, Part: plan.FullPart(), Comment: "merge of sorted runs"})
		rw.rewire(r, mv)
	case retKind == plan.KindScalar:
		// Scalar aggregate partials: pack then merge (Figure 7's
		// mat.pack + aggr.sum over partials).
		aux, ok := origin.Aux.(plan.AggrAux)
		if !ok {
			return errNotApplicable
		}
		pv := rw.newVar(plan.KindColumn)
		rw.add(&plan.Instr{Op: plan.OpPack, Args: cloneRets, Rets: []plan.VarID{pv},
			Part: plan.FullPart(), Comment: "pack of partial aggregates"})
		mv := rw.newVar(plan.KindScalar)
		rw.add(&plan.Instr{Op: plan.OpMergeAggr, Args: []plan.VarID{pv}, Rets: []plan.VarID{mv},
			Aux: aux, Part: plan.FullPart(), Comment: "merge of partial aggregates"})
		rw.rewire(r, mv)
	default:
		pv := rw.newVar(kindOfPack(retKind))
		rw.add(&plan.Instr{Op: plan.OpPack, Args: cloneRets, Rets: []plan.VarID{pv},
			Part: plan.FullPart(), Comment: "exchange union"})
		rw.rewire(r, pv)
	}
	return nil
}

// Parallelize applies the mutation appropriate for instruction idx of p,
// splitting its partition into nParts sub-ranges, and returns the mutated
// plan (p itself is never modified). Basic operators use the basic mutation;
// scalar aggregates and sorts the partial+merge scheme; group-bys the full
// advanced mutation. Packs must go through RemovePack instead.
func Parallelize(p *plan.Plan, idx, nParts int) (*plan.Plan, MutationKind, error) {
	if idx < 0 || idx >= len(p.Instrs) {
		return nil, MutationNone, fmt.Errorf("core: instruction %d out of range", idx)
	}
	op := p.Instrs[idx].Op
	switch {
	case op == plan.OpGroupBy:
		np, err := parallelizeGroupBy(p, idx, nParts)
		if err != nil {
			return nil, MutationNone, err
		}
		return np, MutationAdvanced, nil
	case op == plan.OpAggr || op == plan.OpSort:
		np, err := parallelizeBasic(p, idx, nParts)
		if err != nil {
			return nil, MutationNone, err
		}
		return np, MutationAdvanced, nil
	case plan.BasicPartitionable(op):
		np, err := parallelizeBasic(p, idx, nParts)
		if err != nil {
			return nil, MutationNone, err
		}
		return np, MutationBasic, nil
	}
	return nil, MutationNone, errNotApplicable
}

// parallelizeBasic is the basic mutation (Figure 3/4), also used for scalar
// aggregates and sorts whose combining stage differs only in the combiner
// operator emitted by combineRet.
func parallelizeBasic(p *plan.Plan, idx, nParts int) (*plan.Plan, error) {
	cp := p.Clone()
	t := cp.Instrs[idx]
	if t.Op == plan.OpSort {
		// The permutation result of a parallelized sort is not
		// reconstructible by concatenation; refuse if it is consumed.
		if len(cp.Consumers(t.Rets[1])) > 0 {
			return nil, errNotApplicable
		}
	}
	rw := newRewrite(cp)
	parts := t.Part.SplitN(nParts)
	clones := rw.cloneOver(t, parts, fmt.Sprintf("clone of %s", t.Op))
	rw.remove(t)
	for ri, r := range t.Rets {
		if t.Op == plan.OpSort && ri == 1 {
			continue // permutation unconsumed, checked above
		}
		if err := rw.combineRet(t, r, ri, clones); err != nil {
			return nil, err
		}
	}
	if err := rw.commit(); err != nil {
		return nil, err
	}
	return cp, nil
}

// parallelizeGroupBy is the advanced mutation for group-by (Figure 6): the
// group-by and its dataflow-dependent aggregates are cloned over the key
// partitions; per-partition keys and partial aggregates are packed; a
// group-merge combines them. On re-application to an already-cloned
// group-by the clone results are spliced into the existing packs and the
// existing merge is reused.
func parallelizeGroupBy(p *plan.Plan, idx, nParts int) (*plan.Plan, error) {
	cp := p.Clone()
	g := cp.Instrs[idx]
	gOut := g.Rets[0]

	// Collect and classify the group-by's dataflow-dependent operators.
	var aggrs []*plan.Instr
	var keyOps []*plan.Instr
	for _, ci := range cp.Consumers(gOut) {
		c := cp.Instrs[ci]
		switch c.Op {
		case plan.OpAggrGrouped:
			aggrs = append(aggrs, c)
		case plan.OpGroupKeys:
			keyOps = append(keyOps, c)
		default:
			return nil, errNotApplicable
		}
	}
	if len(aggrs) == 0 {
		return nil, errNotApplicable
	}
	// The vals inputs of the dependent aggregates must be positionally
	// co-partitioned with the keys; the builder guarantees both derive from
	// the same candidate list. (AggrGrouped validates lengths at runtime.)

	rw := newRewrite(cp)
	parts := g.Part.SplitN(nParts)
	gClones := rw.cloneOver(g, parts, "clone of groupby")
	rw.remove(g)

	// Clone each dependent aggregate per partition, co-partitioning its
	// values input.
	type aggrCombo struct {
		origin *plan.Instr
		clones []*plan.Instr
	}
	var combos []aggrCombo
	for _, a := range aggrs {
		clones := make([]*plan.Instr, len(parts))
		for i := range parts {
			rets := []plan.VarID{rw.newVar(plan.KindColumn)}
			args := append([]plan.VarID(nil), a.Args...)
			args[1] = gClones[i].Rets[0]
			clones[i] = &plan.Instr{Op: plan.OpAggrGrouped, Args: args, Rets: rets,
				Aux: a.Aux, Part: parts[i], Comment: "clone of aggrgrouped"}
			rw.add(clones[i])
		}
		rw.remove(a)
		combos = append(combos, aggrCombo{origin: a, clones: clones})
	}
	// Per-partition distinct keys.
	kClones := make([]*plan.Instr, len(parts))
	for i := range parts {
		kClones[i] = &plan.Instr{Op: plan.OpGroupKeys,
			Args: []plan.VarID{gClones[i].Rets[0]},
			Rets: []plan.VarID{rw.newVar(plan.KindColumn)},
			Part: plan.FullPart(), Comment: "clone of groupkeys"}
		rw.add(kClones[i])
	}
	for _, k := range keyOps {
		rw.remove(k)
	}

	// Existing downstream combiners? If the original aggregates fed packs
	// (a previous advanced mutation), splice; otherwise build the pack +
	// group-merge tail.
	spliceIntoExistingPacks := func(r plan.VarID, cloneRets []plan.VarID) bool {
		spliced := false
		for _, in := range cp.Instrs {
			if rw.removed[in] || in.Op != plan.OpPack {
				continue
			}
			for _, a := range in.Args {
				if a == r {
					newArgs := make([]plan.VarID, 0, len(in.Args)+len(cloneRets)-1)
					for _, a2 := range in.Args {
						if a2 == r {
							newArgs = append(newArgs, cloneRets...)
						} else {
							newArgs = append(newArgs, a2)
						}
					}
					in.Args = newArgs
					spliced = true
					break
				}
			}
		}
		return spliced
	}

	retsOf := func(instrs []*plan.Instr) []plan.VarID {
		out := make([]plan.VarID, len(instrs))
		for i, in := range instrs {
			out[i] = in.Rets[0]
		}
		return out
	}

	// Keys side.
	var keysPackVar plan.VarID
	keysPackNeeded := true
	if len(keyOps) > 0 {
		if spliceIntoExistingPacks(keyOps[0].Rets[0], retsOf(kClones)) {
			keysPackNeeded = false
		}
	}
	var firstMergeKeys plan.VarID = -1
	if keysPackNeeded {
		keysPackVar = rw.newVar(plan.KindColumn)
		rw.add(&plan.Instr{Op: plan.OpPack, Args: retsOf(kClones), Rets: []plan.VarID{keysPackVar},
			Part: plan.FullPart(), Comment: "pack of partial group keys"})
	}

	// Aggregate sides.
	for _, combo := range combos {
		r := combo.origin.Rets[0]
		if spliceIntoExistingPacks(r, retsOf(combo.clones)) {
			continue // existing merge downstream still applies
		}
		if !keysPackNeeded {
			// Mixed state: keys already packed upstream but this aggregate
			// was not — cannot happen with builder-produced plans.
			return nil, errNotApplicable
		}
		aux, ok := combo.origin.Aux.(plan.AggrAux)
		if !ok {
			return nil, errNotApplicable
		}
		aggPack := rw.newVar(plan.KindColumn)
		rw.add(&plan.Instr{Op: plan.OpPack, Args: retsOf(combo.clones), Rets: []plan.VarID{aggPack},
			Part: plan.FullPart(), Comment: "pack of partial aggregates"})
		mk := rw.newVar(plan.KindColumn)
		ma := rw.newVar(plan.KindColumn)
		rw.add(&plan.Instr{Op: plan.OpGroupMerge, Args: []plan.VarID{keysPackVar, aggPack},
			Rets: []plan.VarID{mk, ma}, Aux: aux, Part: plan.FullPart(), Comment: "group merge"})
		rw.rewire(r, ma)
		if firstMergeKeys < 0 {
			firstMergeKeys = mk
		}
	}
	// Rewire key consumers to the merged keys.
	for _, k := range keyOps {
		if len(cp.Consumers(k.Rets[0])) == 0 {
			continue
		}
		if keysPackNeeded {
			if firstMergeKeys < 0 {
				return nil, errNotApplicable
			}
			rw.rewire(k.Rets[0], firstMergeKeys)
		}
		// else: already spliced into the existing keys pack; the existing
		// merge's output serves downstream consumers.
	}

	if err := rw.commit(); err != nil {
		return nil, err
	}
	return cp, nil
}

// RemovePack is the medium mutation (Figure 5): the expensive exchange
// union at idx is removed and its inputs are propagated to its
// dataflow-dependent operators, which are "cloned to match the exchange
// union operator's input" (§2.1). Unpartitioned consumers are cloned once
// per input; a *family* of positionally partitioned consumer clones (from
// earlier basic mutations over the packed value) is replaced wholesale by
// per-input clones, its downstream packs rewired in partition order.
// Removal is suppressed (ErrSuppressed) when the pack has more than
// threshold inputs, capping plan explosion (§2.3).
func RemovePack(p *plan.Plan, idx int, threshold int) (*plan.Plan, error) {
	if idx < 0 || idx >= len(p.Instrs) || p.Instrs[idx].Op != plan.OpPack {
		return nil, errNotApplicable
	}
	if threshold > 0 && len(p.Instrs[idx].Args) > threshold {
		return nil, ErrSuppressed
	}
	cp := p.Clone()
	u := cp.Instrs[idx]
	inputs := u.Args
	out := u.Rets[0]

	consumers := cp.Consumers(out)
	if len(consumers) == 0 {
		return nil, errNotApplicable
	}
	for _, ci := range consumers {
		c := cp.Instrs[ci]
		if c.Op == plan.OpGroupBy {
			// A pack feeding a (possibly partitioned) group-by subgraph is
			// removed by re-cloning the whole group-by/aggregate/keys
			// pattern per pack input.
			return removePackIntoGroupBy(cp, u)
		}
		if c.Op == plan.OpAggrGrouped && c.Args[0] == out {
			// The pack feeds a grouped aggregate as its VALUES input; the
			// grouping itself hangs off a sibling pack. Remove the whole
			// subgraph through the groups-side pack (which treats this one
			// as a co-partitioned sibling).
			gi := cp.Producer(c.Args[1])
			if gi < 0 || cp.Instrs[gi].Op != plan.OpGroupBy {
				return nil, errNotApplicable
			}
			si := cp.Producer(cp.Instrs[gi].Args[0])
			if si < 0 || cp.Instrs[si].Op != plan.OpPack {
				return nil, errNotApplicable
			}
			return removePackIntoGroupBy(cp, cp.Instrs[si])
		}
	}

	// Group the consumers into families: sibling clones sharing opcode,
	// aux and arguments whose partitions together cover the full packed
	// range. An unpartitioned consumer is a family of one.
	type famKey struct {
		op   plan.OpCode
		aux  any
		args string
	}
	fams := map[famKey][]*plan.Instr{}
	var famOrder []famKey
	for _, ci := range consumers {
		c := cp.Instrs[ci]
		if c.Op == plan.OpPack {
			continue // handled by flattening below
		}
		ok := c.Op == plan.OpAggr || plan.BasicPartitionable(c.Op)
		if !ok {
			return nil, errNotApplicable
		}
		// Propagation substitutes pack inputs for the packed variable, so
		// the packed variable must cover the consumer's partitionable
		// anchor set: a non-anchor reference (a fetch target, a join inner)
		// would end up misaligned with the substituted partition. A second
		// anchor fed by a *sibling* pack — one whose inputs are
		// co-partitioned with ours, the multi-column dependency of §2.2 —
		// is resolved pairwise: clone i receives input i of both packs.
		anchors := map[int]bool{}
		for _, ai := range plan.SliceArgs(c.Op) {
			anchors[ai] = true
		}
		for ai, a := range c.Args {
			switch {
			case a == out && !anchors[ai]:
				return nil, errNotApplicable
			case a != out && anchors[ai]:
				if findSiblingPack(cp, a, inputs) == nil {
					return nil, errNotApplicable
				}
			}
		}
		k := famKey{op: c.Op, aux: c.Aux, args: argsKey(c.Args)}
		if _, seen := fams[k]; !seen {
			famOrder = append(famOrder, k)
		}
		fams[k] = append(fams[k], c)
	}
	for _, k := range famOrder {
		if !partsCoverFull(fams[k]) {
			return nil, errNotApplicable
		}
	}

	rw := newRewrite(cp)
	rw.remove(u)
	// Flatten into consuming packs: splice the removed pack's inputs.
	for _, ci := range consumers {
		c := cp.Instrs[ci]
		if c.Op != plan.OpPack {
			continue
		}
		newArgs := make([]plan.VarID, 0, len(c.Args)+len(inputs)-1)
		for _, a := range c.Args {
			if a == out {
				newArgs = append(newArgs, inputs...)
			} else {
				newArgs = append(newArgs, a)
			}
		}
		c.Args = newArgs
	}

	var siblingPacks []*plan.Instr
	for _, k := range famOrder {
		members := fams[k]
		proto := members[0]
		// Resolve sibling packs feeding other anchors of this consumer.
		siblings := map[plan.VarID]*plan.Instr{}
		for _, ai := range plan.SliceArgs(proto.Op) {
			if a := proto.Args[ai]; a != out {
				w := findSiblingPack(cp, a, inputs)
				if w == nil {
					return nil, errNotApplicable
				}
				siblings[a] = w
				siblingPacks = append(siblingPacks, w)
			}
		}
		// Clone the consumer once per pack input, substituting the input
		// for the packed variable (and the sibling pack's co-partitioned
		// input for its variable) — this is where plans can explode (§2.3).
		clones := make([]*plan.Instr, len(inputs))
		for i, inVar := range inputs {
			rets := make([]plan.VarID, len(proto.Rets))
			for j, r := range proto.Rets {
				rets[j] = rw.newVar(cp.KindOf(r))
			}
			args := append([]plan.VarID(nil), proto.Args...)
			for ai, a := range args {
				switch {
				case a == out:
					args[ai] = inVar
				default:
					if w, ok := siblings[a]; ok {
						args[ai] = w.Args[i]
					}
				}
			}
			clones[i] = &plan.Instr{Op: proto.Op, Args: args, Rets: rets, Aux: proto.Aux,
				Part: plan.FullPart(), Comment: fmt.Sprintf("propagated %s", proto.Op)}
			rw.add(clones[i])
		}
		for _, m := range members {
			rw.remove(m)
		}
		if len(members) == 1 {
			for ri, r := range proto.Rets {
				if err := rw.combineRet(proto, r, ri, clones); err != nil {
					return nil, err
				}
			}
			continue
		}
		// Partitioned family: every member result must feed exactly one
		// downstream pack, shared across the family for a given result
		// index; the family's entries there are replaced, in order, by the
		// new clone results.
		if err := rw.replaceFamilyInPacks(members, clones); err != nil {
			return nil, err
		}
	}
	// Sibling packs whose only consumers were the propagated operators are
	// now dead; drop them so they stop costing execution time.
	for _, w := range siblingPacks {
		alive := false
		for _, in := range cp.Instrs {
			if rw.removed[in] || in == w {
				continue
			}
			for _, a := range in.Args {
				if a == w.Rets[0] {
					alive = true
					break
				}
			}
		}
		if !alive {
			rw.remove(w)
		}
	}
	if err := rw.commit(); err != nil {
		return nil, err
	}
	return cp, nil
}

// argsKey renders an argument list as a comparable map key without fmt's
// boxing (RemovePack keys consumer families on it once per consumer).
func argsKey(args []plan.VarID) string {
	buf := make([]byte, 0, 4*len(args))
	for _, a := range args {
		buf = strconv.AppendInt(buf, int64(a), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// findSiblingPack returns the pack producing v when that pack's inputs are
// co-partitioned one-to-one with the given inputs (same count, and each
// pair of producing instructions shares its partition range and anchor
// argument). Used to resolve multi-column propagation dependencies (§2.2).
func findSiblingPack(p *plan.Plan, v plan.VarID, inputs []plan.VarID) *plan.Instr {
	src := p.Producer(v)
	if src < 0 {
		return nil
	}
	w := p.Instrs[src]
	if w.Op != plan.OpPack || len(w.Args) != len(inputs) {
		return nil
	}
	for i := range inputs {
		pa, pb := p.Producer(inputs[i]), p.Producer(w.Args[i])
		if pa < 0 || pb < 0 {
			return nil
		}
		ia, ib := p.Instrs[pa], p.Instrs[pb]
		if ia.Part != ib.Part {
			return nil
		}
		// Same anchor lineage: the first slice-arg variable must coincide
		// so that positions align pairwise.
		sa, sb := plan.SliceArgs(ia.Op), plan.SliceArgs(ib.Op)
		if len(sa) > 0 && len(sb) > 0 {
			if ia.Args[sa[0]] != ib.Args[sb[0]] {
				return nil
			}
		}
	}
	return w
}

// partsCoverFull reports whether the members' partitions tile the full
// [0,1) range exactly (no overlap, no gap). Members are checked in
// partition order, which can differ from plan order once clones of clones
// have been appended.
func partsCoverFull(members []*plan.Instr) bool {
	if len(members) == 1 {
		return members[0].Part.IsFull()
	}
	ordered := append([]*plan.Instr(nil), members...)
	slices.SortStableFunc(ordered, func(a, b *plan.Instr) int {
		switch {
		case a.Part.Before(b.Part):
			return -1
		case b.Part.Before(a.Part):
			return 1
		}
		return 0
	})
	prev := ordered[0].Part
	if prev.LoNum != 0 {
		return false
	}
	for _, m := range ordered[1:] {
		cur := m.Part
		// prev.Hi == cur.Lo under cross-multiplication.
		if prev.HiNum*cur.Den != cur.LoNum*prev.Den {
			return false
		}
		prev = cur
	}
	return prev.HiNum == prev.Den
}

// replaceFamilyInPacks rewires the downstream packs of a partitioned
// consumer family: for each result index, the members' results (which must
// all feed one shared pack and nothing else) are replaced by the new clone
// results in partition order.
func (rw *rewriteCtx) replaceFamilyInPacks(members, clones []*plan.Instr) error {
	for ri := range members[0].Rets {
		memberRets := map[plan.VarID]bool{}
		for _, m := range members {
			memberRets[m.Rets[ri]] = true
		}
		cloneRets := make([]plan.VarID, len(clones))
		for i, c := range clones {
			cloneRets[i] = c.Rets[ri]
		}
		var target *plan.Instr
		consumed := false
		for _, in := range rw.p.Instrs {
			if rw.removed[in] {
				continue
			}
			uses := false
			for _, a := range in.Args {
				if memberRets[a] {
					uses = true
					break
				}
			}
			if !uses {
				continue
			}
			consumed = true
			if in.Op != plan.OpPack || (target != nil && target != in) {
				return errNotApplicable
			}
			target = in
		}
		if !consumed {
			continue // dead result (e.g. unused join side)
		}
		newArgs := make([]plan.VarID, 0, len(target.Args)+len(cloneRets))
		spliced := false
		for _, a := range target.Args {
			if memberRets[a] {
				if !spliced {
					newArgs = append(newArgs, cloneRets...)
					spliced = true
				}
				continue
			}
			newArgs = append(newArgs, a)
		}
		target.Args = newArgs
	}
	return nil
}

// removePackIntoGroupBy removes an exchange union whose output feeds a
// group-by subgraph: the group-by clones (and their dependent grouped
// aggregates and key extractions) are re-cloned once per pack input, their
// downstream partial packs rewired, and the pack (plus any sibling packs
// carrying co-partitioned aggregate values) dropped. This is the medium
// mutation flowing into the advanced pattern — the paper's "operator
// parallelization occurs as a result of using the medium mutation, where the
// operator is in the data flow dependent path of the expensive exchange
// union operator" (§2.1).
func removePackIntoGroupBy(cp *plan.Plan, u *plan.Instr) (*plan.Plan, error) {
	inputs := u.Args
	out := u.Rets[0]

	// Classify consumers: group-by members and aggregates consuming the
	// packed value directly as their values input.
	var gMembers []*plan.Instr
	for _, ci := range cp.Consumers(out) {
		c := cp.Instrs[ci]
		switch c.Op {
		case plan.OpGroupBy:
			if c.Args[0] != out {
				return nil, errNotApplicable
			}
			gMembers = append(gMembers, c)
		case plan.OpAggrGrouped:
			// Handled through its group-by member below; it must consume
			// the pack as its values input.
			if c.Args[0] != out {
				return nil, errNotApplicable
			}
		default:
			return nil, errNotApplicable
		}
	}
	if len(gMembers) == 0 || !partsCoverFull(gMembers) {
		return nil, errNotApplicable
	}

	// Per member: collect its aggregates and key extractions; aggregates
	// must align across members (same order, aux and values source).
	type aggSlot struct {
		aux  plan.AggrAux
		vals plan.VarID // source values var: `out` or a sibling pack output
		pack *plan.Instr
	}
	var slots []aggSlot
	var keysPack *plan.Instr
	memberAggRets := make([][]plan.VarID, 0, len(gMembers)) // per member, per slot
	var memberKeyRets []plan.VarID

	solePack := func(r plan.VarID) (*plan.Instr, error) {
		cons := cp.Consumers(r)
		if len(cons) != 1 || cp.Instrs[cons[0]].Op != plan.OpPack {
			return nil, errNotApplicable
		}
		return cp.Instrs[cons[0]], nil
	}

	var removedMembers []*plan.Instr
	for mi, g := range gMembers {
		gRet := g.Rets[0]
		var aggRets []plan.VarID
		slot := 0
		var keyRet plan.VarID = -1
		for _, ci := range cp.Consumers(gRet) {
			c := cp.Instrs[ci]
			switch c.Op {
			case plan.OpAggrGrouped:
				aux, _ := c.Aux.(plan.AggrAux)
				vals := c.Args[0]
				if vals != out {
					// values must come from a sibling pack, co-partitioned
					// with ours.
					if findSiblingPack(cp, vals, inputs) == nil {
						return nil, errNotApplicable
					}
				}
				if mi == 0 {
					pk, err := solePack(c.Rets[0])
					if err != nil {
						return nil, err
					}
					slots = append(slots, aggSlot{aux: aux, vals: vals, pack: pk})
				} else {
					if slot >= len(slots) || slots[slot].aux != aux || slots[slot].vals != vals {
						return nil, errNotApplicable
					}
				}
				slot++
				aggRets = append(aggRets, c.Rets[0])
				removedMembers = append(removedMembers, c)
			case plan.OpGroupKeys:
				if keyRet >= 0 {
					return nil, errNotApplicable
				}
				keyRet = c.Rets[0]
				if mi == 0 {
					pk, err := solePack(keyRet)
					if err != nil {
						return nil, err
					}
					keysPack = pk
				}
				removedMembers = append(removedMembers, c)
			default:
				return nil, errNotApplicable
			}
		}
		if slot != len(slots) && mi > 0 {
			return nil, errNotApplicable
		}
		if (keyRet >= 0) != (keysPack != nil) {
			return nil, errNotApplicable
		}
		memberAggRets = append(memberAggRets, aggRets)
		if keyRet >= 0 {
			memberKeyRets = append(memberKeyRets, keyRet)
		}
		removedMembers = append(removedMembers, g)
	}

	rw := newRewrite(cp)
	rw.remove(u)
	for _, m := range removedMembers {
		rw.remove(m)
	}
	// Build the per-input clones.
	newAggRets := make([][]plan.VarID, len(slots)) // per slot, per input
	var newKeyRets []plan.VarID
	var siblings []*plan.Instr
	for i, inVar := range inputs {
		gv := rw.newVar(plan.KindGroups)
		rw.add(&plan.Instr{Op: plan.OpGroupBy, Args: []plan.VarID{inVar},
			Rets: []plan.VarID{gv}, Part: plan.FullPart(), Comment: "propagated groupby"})
		for si, s := range slots {
			valsArg := inVar
			if s.vals != out {
				w := findSiblingPack(cp, s.vals, inputs)
				if w == nil {
					return nil, errNotApplicable
				}
				valsArg = w.Args[i]
				siblings = append(siblings, w)
			}
			av := rw.newVar(plan.KindColumn)
			rw.add(&plan.Instr{Op: plan.OpAggrGrouped, Args: []plan.VarID{valsArg, gv},
				Rets: []plan.VarID{av}, Aux: s.aux, Part: plan.FullPart(),
				Comment: "propagated aggrgrouped"})
			newAggRets[si] = append(newAggRets[si], av)
		}
		if keysPack != nil {
			kv := rw.newVar(plan.KindColumn)
			rw.add(&plan.Instr{Op: plan.OpGroupKeys, Args: []plan.VarID{gv},
				Rets: []plan.VarID{kv}, Part: plan.FullPart(), Comment: "propagated groupkeys"})
			newKeyRets = append(newKeyRets, kv)
		}
	}
	// Rewire the partial packs: replace the member rets with the clone rets.
	replace := func(pk *plan.Instr, oldRets map[plan.VarID]bool, newRets []plan.VarID) {
		newArgs := make([]plan.VarID, 0, len(pk.Args)+len(newRets))
		spliced := false
		for _, a := range pk.Args {
			if oldRets[a] {
				if !spliced {
					newArgs = append(newArgs, newRets...)
					spliced = true
				}
				continue
			}
			newArgs = append(newArgs, a)
		}
		pk.Args = newArgs
	}
	for si, s := range slots {
		old := map[plan.VarID]bool{}
		for _, mrets := range memberAggRets {
			old[mrets[si]] = true
		}
		replace(s.pack, old, newAggRets[si])
	}
	if keysPack != nil {
		old := map[plan.VarID]bool{}
		for _, r := range memberKeyRets {
			old[r] = true
		}
		replace(keysPack, old, newKeyRets)
	}
	// Drop sibling packs that became dead.
	for _, w := range siblings {
		alive := false
		for _, in := range cp.Instrs {
			if rw.removed[in] || in == w {
				continue
			}
			for _, a := range in.Args {
				if a == w.Rets[0] {
					alive = true
					break
				}
			}
		}
		if !alive {
			rw.remove(w)
		}
	}
	if err := rw.commit(); err != nil {
		return nil, err
	}
	return cp, nil
}
