package core

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/plan"
)

// Snapshot is the persistent essence of a converged adaptation: the best
// plan plus everything needed to rebuild the convergence state machine by
// replay. Observe is a pure function of the execution-time sequence, so the
// history and the configuration together determine the credit/debit balance,
// the GME, and the outlier set — no internal counters need to be stored.
type Snapshot struct {
	Config   ConvergenceConfig
	History  []float64
	Outliers []int
	BestPlan *plan.Plan
}

// Snapshot captures the session's persistent state. Only converged sessions
// snapshot: an in-flight adaptation's next mutation depends on the last
// run's profile, which is engine state we deliberately do not serialize.
func (s *Session) Snapshot() (*Snapshot, error) {
	if !s.done.Load() {
		return nil, fmt.Errorf("core: snapshot of unconverged session (run %d)", s.conv.Run())
	}
	best := s.Best()
	if best == nil {
		return nil, fmt.Errorf("core: converged session has no plan")
	}
	return &Snapshot{
		Config:   s.conv.Config(),
		History:  s.conv.History(),
		Outliers: s.conv.Outliers(),
		BestPlan: best,
	}, nil
}

// RestoreSession rebuilds a converged session on eng from a snapshot. The
// convergence state machine is reconstructed by replaying the recorded
// history through Observe; the replay must terminate exactly at the last
// history entry, or the snapshot is rejected as corrupt (or produced by an
// incompatible convergence algorithm).
//
// The restored session serves exactly like the original — Done, Best,
// Summary, and Report agree with the pre-snapshot session — but per-run
// Attempt details beyond execution times (plans, profiles, result vectors)
// are not persisted: restored attempts carry only ExecNs.
func RestoreSession(eng *exec.Engine, mcfg MutationConfig, snap *Snapshot) (*Session, error) {
	if snap.BestPlan == nil {
		return nil, fmt.Errorf("core: restore: snapshot has no plan")
	}
	if len(snap.History) == 0 {
		return nil, fmt.Errorf("core: restore: snapshot has empty history")
	}
	conv := NewConvergence(snap.Config)
	for i, ns := range snap.History {
		if cont := conv.Observe(ns); cont == (i == len(snap.History)-1) {
			// Either the replay halted before the history's end (extra
			// trailing entries the algorithm would never have produced) or
			// the final entry did not halt it (a truncated history).
			return nil, fmt.Errorf("core: restore: history of %d runs does not replay to convergence at run %d", len(snap.History), i)
		}
	}
	if got := conv.Outliers(); len(got) != len(snap.Outliers) {
		return nil, fmt.Errorf("core: restore: replay flagged %d outliers, snapshot recorded %d", len(got), len(snap.Outliers))
	}
	attempts := make([]Attempt, len(snap.History))
	for i, ns := range snap.History {
		attempts[i] = Attempt{ExecNs: ns}
	}
	expect := conv.Serial()
	if gme, _, ok := conv.GME(); ok {
		expect = gme
	}
	sess := &Session{
		eng:       eng,
		mut:       NewMutator(mcfg),
		conv:      conv,
		cur:       snap.BestPlan,
		attempts:  attempts,
		best:      snap.BestPlan,
		expectNs:  expect,
		dethroned: true,
	}
	sess.done.Store(true)
	return sess, nil
}
