package core

import (
	"errors"
	"slices"

	"repro/internal/exec"
	"repro/internal/plan"
)

// MutationConfig tunes the plan-mutation policy.
type MutationConfig struct {
	// PackInputThreshold suppresses exchange-union removal above this input
	// count (15 in the paper's implementation, §2.3).
	PackInputThreshold int
	// MinPartTuples stops splitting operators whose input is already small;
	// partitioning a few hundred tuples only buys dispatch overhead.
	MinPartTuples int64
	// SplitFactor is how many clones replace an expensive operator per
	// mutation. The paper uses 2 ("a single new operator per invocation")
	// and discusses larger factors as the lever for faster convergence
	// (§4.3, "How to lower number of convergence runs?").
	SplitFactor int
}

// DefaultMutationConfig mirrors the paper's implementation choices, with
// one calibration difference: the exchange-union input threshold defaults
// to 33 (logical cores + 1) rather than the paper's 15 MAL parameters. Our
// packs gain exactly one input per binary split, so 15 would freeze plans
// at DOP 15 with the expensive pack still on the critical path; 33 lets the
// medium mutation fire all the way to machine-wide DOP while still capping
// plan explosion. Set PackInputThreshold to 15 to reproduce the paper's
// suppression behaviour exactly.
func DefaultMutationConfig() MutationConfig {
	return MutationConfig{PackInputThreshold: 33, MinPartTuples: 2048, SplitFactor: 2}
}

// Mutation describes what a mutation step did.
type Mutation struct {
	Kind  MutationKind
	Instr int         // index of the mutated instruction in the OLD plan
	Op    plan.OpCode // opcode of the mutated instruction
}

// Mutator turns execution feedback into plan mutations.
type Mutator struct {
	Cfg MutationConfig
}

// NewMutator returns a mutator with cfg (zero fields replaced by defaults).
func NewMutator(cfg MutationConfig) *Mutator {
	def := DefaultMutationConfig()
	if cfg.PackInputThreshold == 0 {
		cfg.PackInputThreshold = def.PackInputThreshold
	}
	if cfg.MinPartTuples == 0 {
		cfg.MinPartTuples = def.MinPartTuples
	}
	if cfg.SplitFactor < 2 {
		cfg.SplitFactor = def.SplitFactor
	}
	return &Mutator{Cfg: cfg}
}

// MutateMostExpensive applies one adaptation step: it walks the plan's
// operators from most to least expensive (per the profile) and applies the
// first applicable mutation — parallelizing the expensive operator (§2.1's
// guiding principle). When the most expensive operator is an exchange union
// over more inputs than the threshold, the step is a deliberate no-op
// (suppression): the plan stops growing, as in the paper, and the
// convergence budget drains.
//
// The returned plan is fresh; p is never modified. A MutationNone result
// with a nil error means no operator could be (or should be) mutated.
func (m *Mutator) MutateMostExpensive(p *plan.Plan, prof *exec.Profile) (*plan.Plan, Mutation, error) {
	type cand struct {
		instr    int
		dur      float64
		tuplesIn int64
	}
	cands := make([]cand, 0, len(prof.Ops))
	for _, o := range prof.Ops {
		cands = append(cands, cand{instr: o.Instr, dur: o.Duration(), tuplesIn: o.Work.TuplesIn})
	}
	slices.SortStableFunc(cands, func(a, b cand) int {
		switch {
		case a.dur > b.dur:
			return -1
		case a.dur < b.dur:
			return 1
		}
		return 0
	})

	for _, c := range cands {
		if c.instr < 0 || c.instr >= len(p.Instrs) {
			continue
		}
		in := p.Instrs[c.instr]
		switch {
		case in.Op == plan.OpPack:
			np, err := RemovePack(p, c.instr, m.Cfg.PackInputThreshold)
			if errors.Is(err, ErrSuppressed) {
				// Pack growth capped: the pack stays the most expensive
				// operator and adaptation stops changing the plan (§2.3).
				return p, Mutation{Kind: MutationNone, Instr: c.instr, Op: in.Op}, nil
			}
			if errors.Is(err, errNotApplicable) {
				continue
			}
			if err != nil {
				return nil, Mutation{}, err
			}
			return np, Mutation{Kind: MutationMedium, Instr: c.instr, Op: in.Op}, nil

		case plan.BasicPartitionable(in.Op) || plan.AdvancedPartitionable(in.Op):
			if c.tuplesIn < 2*m.Cfg.MinPartTuples {
				continue // too small to split profitably
			}
			np, kind, err := Parallelize(p, c.instr, m.Cfg.SplitFactor)
			if errors.Is(err, errNotApplicable) {
				continue
			}
			if err != nil {
				return nil, Mutation{}, err
			}
			return np, Mutation{Kind: kind, Instr: c.instr, Op: in.Op}, nil
		}
	}
	return p, Mutation{Kind: MutationNone, Instr: -1}, nil
}
