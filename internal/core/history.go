package core

import (
	"sync"

	"repro/internal/exec"
	"repro/internal/plan"
)

// PlanCache implements the paper's plan-administration component (§2,
// "Infrastructure components": "the plan administration policies to choose a
// suitable plan from the plan history"). Real deployments re-issue the same
// query templates with changing parameters; the cache keeps one adaptation
// per template key, drives it forward on each invocation until converged,
// and serves the global-minimum-execution plan afterwards — the paper's
// "optimize once and execute many, adaptively" workflow (Figure 2).
type PlanCache struct {
	mu      sync.Mutex
	eng     *exec.Engine
	mcfg    MutationConfig
	ccfg    ConvergenceConfig
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	session *Session
}

// NewPlanCache creates a cache that adapts plans on eng.
func NewPlanCache(eng *exec.Engine, mcfg MutationConfig, ccfg ConvergenceConfig) *PlanCache {
	if ccfg.Cores == 0 {
		ccfg = DefaultConvergenceConfig(eng.Machine().Config().LogicalCores())
	}
	return &PlanCache{
		eng:     eng,
		mcfg:    mcfg,
		ccfg:    ccfg,
		entries: map[string]*cacheEntry{},
	}
}

// InvocationState reports how the cache served one invocation.
type InvocationState int

const (
	// StateAdapting: the adaptation is still active; this invocation was an
	// adaptive run and contributed execution feedback.
	StateAdapting InvocationState = iota
	// StateConverged: the adaptation has finished; the GME plan served this
	// invocation.
	StateConverged
)

func (s InvocationState) String() string {
	if s == StateConverged {
		return "converged"
	}
	return "adapting"
}

// Execute serves one invocation of the query template identified by key.
// While the template's adaptation is active, the invocation IS an adaptive
// run (executing the current plan and feeding the convergence algorithm —
// exactly the paper's workflow where adaptation happens on the production
// query stream, not offline). Once converged, the cached global-minimum
// plan is executed directly.
//
// The serial plan builder is only invoked for the first call per key.
func (c *PlanCache) Execute(key string, serial func() *plan.Plan) ([]exec.Value, *exec.Profile, InvocationState, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{session: NewSession(c.eng, serial(), c.mcfg, c.ccfg)}
		c.entries[key] = e
	}
	c.mu.Unlock()

	if !e.session.Done() {
		if _, err := e.session.Step(); err != nil {
			return nil, nil, StateAdapting, err
		}
		att := e.session.Attempts()
		last := att[len(att)-1]
		state := StateAdapting
		if e.session.Done() {
			state = StateConverged
		}
		return last.Results, last.Profile, state, nil
	}
	best := e.session.Report().BestPlan
	vals, prof, err := c.eng.Execute(best)
	return vals, prof, StateConverged, err
}

// Report returns the adaptation report for a cached template, or nil when
// the key is unknown.
func (c *PlanCache) Report(key string) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e.session.Report()
	}
	return nil
}

// Converged reports whether the template's adaptation has finished.
func (c *PlanCache) Converged(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.session.Done()
}

// Keys returns the cached template keys.
func (c *PlanCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	return out
}

// Evict removes a template's adaptation state (e.g. after data volume
// changes invalidate the learned partitioning).
func (c *PlanCache) Evict(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
}
