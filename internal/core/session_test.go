package core

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
)

func TestSessionConvergesAndSpeedsUp(t *testing.T) {
	cat := testCatalog(400_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(),
		DefaultConvergenceConfig(8))
	s.VerifyResults = true

	rep, err := s.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRuns < 9 { // cores+1 lower bound
		t.Fatalf("TotalRuns = %d", rep.TotalRuns)
	}
	if rep.Speedup() < 2 {
		t.Fatalf("speedup = %.2f, want meaningful parallel gain", rep.Speedup())
	}
	if rep.GMERun <= 0 || rep.GMERun >= rep.TotalRuns {
		t.Fatalf("GMERun = %d of %d", rep.GMERun, rep.TotalRuns)
	}
	if rep.BestPlan.MaxDOP() < 2 {
		t.Fatalf("best plan DOP = %d", rep.BestPlan.MaxDOP())
	}
	if len(rep.History) != rep.TotalRuns {
		t.Fatalf("history len %d != runs %d", len(rep.History), rep.TotalRuns)
	}
	// The GME time matches the history entry at the GME run.
	if rep.History[rep.GMERun] != rep.GMENs {
		t.Fatalf("GME %f != history[%d] = %f", rep.GMENs, rep.GMERun, rep.History[rep.GMERun])
	}
}

func TestSessionEachRunAddsAtMostOneOperatorSplit(t *testing.T) {
	// §2: "plan parallelization introduces only a single new operator per
	// invocation" — DOP grows by at most one per run for basic mutations.
	cat := testCatalog(200_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(),
		DefaultConvergenceConfig(4))
	prevDOP := 1
	for i := 0; i < 10; i++ {
		cont, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		dop := s.Current().MaxDOP()
		if dop > prevDOP+1 {
			t.Fatalf("run %d: DOP jumped %d → %d", i, prevDOP, dop)
		}
		prevDOP = dop
		if !cont {
			break
		}
	}
}

func TestSessionTinyInputStaysSerial(t *testing.T) {
	// With input below MinPartTuples no mutation applies; convergence
	// drains quickly and the plan stays serial.
	cat := testCatalog(1_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(),
		DefaultConvergenceConfig(4))
	rep, err := s.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestPlan.MaxDOP() != 1 {
		t.Fatalf("tiny input was parallelized to DOP %d", rep.BestPlan.MaxDOP())
	}
}

func TestSessionGroupByQueryConverges(t *testing.T) {
	cat := testCatalog(300_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, groupPlan(), DefaultMutationConfig(),
		DefaultConvergenceConfig(8))
	s.VerifyResults = true
	rep, err := s.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup() < 1.5 {
		t.Fatalf("groupby speedup = %.2f", rep.Speedup())
	}
	if rep.BestPlan.CountOps(plan.OpGroupMerge) == 0 {
		t.Fatal("best plan has no group merge; advanced mutation never fired")
	}
}

func TestSessionJoinQueryConverges(t *testing.T) {
	cat := testCatalog(300_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, joinPlan(), DefaultMutationConfig(),
		DefaultConvergenceConfig(8))
	s.VerifyResults = true
	rep, err := s.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup() < 1.5 {
		t.Fatalf("join speedup = %.2f", rep.Speedup())
	}
	if rep.BestPlan.CountOps(plan.OpJoin) < 2 {
		t.Fatal("join never parallelized")
	}
}

func TestSessionDOPBoundedByUsefulParallelism(t *testing.T) {
	// The converged DOP should be in the vicinity of the core count, not
	// exploded into hundreds of partitions (the AP-vs-HP contrast of
	// Table 5).
	cat := testCatalog(400_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(),
		DefaultConvergenceConfig(8))
	rep, err := s.Converge()
	if err != nil {
		t.Fatal(err)
	}
	cores := eng.Machine().Config().LogicalCores()
	if dop := rep.BestPlan.MaxDOP(); dop > 2*cores {
		t.Fatalf("best DOP %d explodes past 2x cores (%d)", dop, cores)
	}
}

func TestReportBeforeAnyGME(t *testing.T) {
	cat := testCatalog(1_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(), DefaultConvergenceConfig(2))
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.TotalRuns != 1 || rep.GMERun != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Speedup() != 1 {
		t.Fatalf("speedup before adaptation = %f", rep.Speedup())
	}
}
