package core

import "math"

// ConvergenceConfig parameterizes the convergence algorithm of §3.
type ConvergenceConfig struct {
	// Cores is Number_Of_Cores: scales credit/debit, sets the leaking-debit
	// threshold run, and the lower bound of cores+1 convergence runs.
	Cores int
	// ExtraRuns bounds the post-threshold search: Remaining_Runs =
	// ExtraRuns × Cores (eight on the paper's platform, §3.3.2).
	ExtraRuns int
	// GMEThreshold is the improvement margin a run must beat the current
	// global minimum by to replace it (2%; the paper uses 5% in its §3.1 example — at our 1/100 scale late gains are finer-grained).
	GMEThreshold float64
}

// DefaultConvergenceConfig mirrors the paper's calibration for a machine
// with the given core count.
func DefaultConvergenceConfig(cores int) ConvergenceConfig {
	return ConvergenceConfig{Cores: cores, ExtraRuns: 8, GMEThreshold: 0.02}
}

// Convergence is the credit/debit state machine of §3.2. Feed it one
// execution time per adaptive run via Observe; it reports whether another
// run is allowed. Formulas, verbatim from the paper:
//
//	CurExecImprv = |SerialExec − CurExec| / SerialExec
//	GME := CurExec                  if CurExecImprv − GMEimprv > threshold
//	ROI  = (PrevExec − CurExec) / max(CurExec, PrevExec)
//	Credit += ROI·Cores (ROI > 0);  Debit += |ROI|·Cores (ROI < 0)
//	continue while Credit − Debit > 0
//
// plus the leaking debit after the threshold run (§3.3.2) and outlier-peak
// forgiveness in noisy environments (§3.3.3).
type Convergence struct {
	cfg ConvergenceConfig

	run        int
	serialExec float64
	prevExec   float64

	credit, debit float64
	leakingDebit  float64
	leaking       bool

	gme     float64
	gmeImpr float64
	gmeRun  int

	// skipNext marks that the previous run was an outlier peak: the debit
	// of the ascent and the credit of the descent cancel, so both runs are
	// excluded from the budget (§3.3.3).
	skipNext bool

	history  []float64
	outliers []int
}

// NewConvergence returns the state machine; the first Observe call must
// carry the serial (0th run) execution time.
func NewConvergence(cfg ConvergenceConfig) *Convergence {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.ExtraRuns <= 0 {
		cfg.ExtraRuns = 8
	}
	if cfg.GMEThreshold <= 0 {
		cfg.GMEThreshold = 0.05
	}
	return &Convergence{cfg: cfg, credit: 1, gme: math.Inf(1), gmeRun: -1}
}

// Run returns the number of runs observed so far (the serial run is run 0).
func (c *Convergence) Run() int { return c.run }

// Config returns the configuration the state machine runs with, after
// NewConvergence defaulting — the values a snapshot must persist so a replay
// reproduces this machine exactly.
func (c *Convergence) Config() ConvergenceConfig { return c.cfg }

// Serial returns the serial (run 0) baseline execution time, 0 before the
// first Observe.
func (c *Convergence) Serial() float64 { return c.serialExec }

// GME returns the global-minimum execution time observed, the run at which
// it occurred, and whether one exists yet.
func (c *Convergence) GME() (ns float64, run int, ok bool) {
	return c.gme, c.gmeRun, c.gmeRun >= 0
}

// History returns the observed execution times, index = run number.
func (c *Convergence) History() []float64 {
	return append([]float64(nil), c.history...)
}

// Outliers returns the runs flagged as noise peaks.
func (c *Convergence) Outliers() []int {
	return append([]int(nil), c.outliers...)
}

// Balance returns the current credit − debit.
func (c *Convergence) Balance() float64 { return c.credit - c.debit }

// Observe records the execution time of the current run and reports whether
// the adaptation should continue with another run.
func (c *Convergence) Observe(execNs float64) bool {
	c.history = append(c.history, execNs)
	defer func() { c.run++ }()

	if c.run == 0 {
		// Serial baseline: GME starts at the first run *after* serial
		// (§3.1), so only record the reference here.
		c.serialExec = execNs
		c.prevExec = execNs
		return true
	}

	// Global minimum tracking.
	curImpr := math.Abs(c.serialExec-execNs) / c.serialExec
	if c.gmeRun < 0 {
		if execNs < c.serialExec {
			c.gme, c.gmeImpr, c.gmeRun = execNs, curImpr, c.run
		}
	} else if execNs < c.gme && curImpr-c.gmeImpr > c.cfg.GMEThreshold {
		c.gme, c.gmeImpr, c.gmeRun = execNs, curImpr, c.run
	}

	// Outlier peaks: executions above the serial baseline in a converging
	// instance are marked as interference and forgiven — the next run's
	// descent credit is cancelled against this ascent's debit (§3.3.3).
	// This covers the first parallel run too: a spiked run 1 must not
	// drain the starting credit before adaptation has seen anything. A
	// peak requires a normal (at-or-below-serial) predecessor — "most peak
	// executions are followed and preceded by a normal execution" — so a
	// genuinely worsening trajectory still accumulates debits.
	isPeak := c.run >= 1 && execNs > c.serialExec && c.prevExec <= c.serialExec
	roi := (c.prevExec - execNs) / math.Max(execNs, c.prevExec)
	switch {
	case isPeak:
		c.outliers = append(c.outliers, c.run)
		c.skipNext = true
	case c.skipNext:
		c.skipNext = false // descent: cancels the forgiven ascent
	default:
		if roi > 0 {
			c.credit += roi * float64(c.cfg.Cores)
		} else {
			c.debit += -roi * float64(c.cfg.Cores)
		}
	}
	c.prevExec = execNs

	// Leaking debit after the threshold run (§3.3.2): the available credit
	// is spread over the remaining-run budget so the balance provably
	// drains. The leak is re-derived from the *current* credit and the
	// *shrinking* remaining budget each run — the paper notes its
	// Remaining_Runs "is just an approximate bound"; recomputing makes the
	// upper bound hard even when continued improvements keep adding credit.
	if c.run >= c.cfg.Cores {
		c.leaking = true
		used := float64(c.run - c.cfg.Cores)
		remaining := float64(c.cfg.ExtraRuns*c.cfg.Cores) - used
		if remaining < 1 {
			return false
		}
		leak := c.credit / remaining
		if leak > c.leakingDebit {
			c.leakingDebit = leak
		}
		if c.leakingDebit <= 0 {
			c.leakingDebit = 1.0 / remaining
		}
		c.debit += c.leakingDebit
	}

	return c.credit-c.debit > 0
}

// UpperBoundRuns returns the approximate upper bound on convergence runs
// (§3.3.4): cores+1 plus the post-threshold budget.
func (c *Convergence) UpperBoundRuns() int {
	return c.cfg.Cores + 1 + c.cfg.ExtraRuns*c.cfg.Cores
}
