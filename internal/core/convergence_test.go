package core

import (
	"math"
	"testing"
)

// drive feeds a synthetic execution-time curve and returns the number of
// runs the algorithm allowed.
func drive(c *Convergence, times []float64) int {
	for i, t := range times {
		if !c.Observe(t) {
			return i + 1
		}
	}
	return len(times)
}

// improving generates a serial time followed by a hyperbolic improvement
// curve flattening at floor — the typical adaptation profile (Figure 11).
func improving(serial, floor float64, n int) []float64 {
	out := make([]float64, n)
	out[0] = serial
	for i := 1; i < n; i++ {
		out[i] = floor + (serial-floor)/float64(i)
	}
	return out
}

func TestConvergenceTerminatesOnStableCurve(t *testing.T) {
	cfg := DefaultConvergenceConfig(8)
	c := NewConvergence(cfg)
	times := improving(1000, 100, 500)
	runs := drive(c, times)
	if runs >= 500 {
		t.Fatal("never converged on a stable improving curve")
	}
	// The paper's bound is approximate: continued improvement adds credit
	// beyond the first upper bound (§3.3.4), so allow a 2x slack.
	if runs > 2*c.UpperBoundRuns() {
		t.Fatalf("runs = %d far beyond upper bound %d", runs, c.UpperBoundRuns())
	}
	// Lower bound: at least Cores+1 runs (§3.3.4) so the search cannot
	// terminate before the threshold run.
	if runs < cfg.Cores+1 {
		t.Fatalf("runs = %d below the cores+1 lower bound", runs)
	}
	gme, gmeRun, ok := c.GME()
	if !ok {
		t.Fatal("no GME found")
	}
	if gme > 150 {
		t.Fatalf("GME = %f, want near the floor 100", gme)
	}
	if gmeRun <= 0 || gmeRun >= runs {
		t.Fatalf("GME run = %d out of [1,%d)", gmeRun, runs)
	}
}

func TestNoPrematureConvergenceThroughPlateau(t *testing.T) {
	// §3.3.1: a plateau and an up-hill right after the first improvements
	// must not halt the search — the first run's credit carries it.
	c := NewConvergence(DefaultConvergenceConfig(8))
	times := []float64{1000, 400, 400, 400, 410, 405, 400, 380, 200, 150, 120}
	times = append(times, improving(1000, 110, 60)[10:]...)
	runs := drive(c, times)
	if runs < 9 {
		t.Fatalf("converged after %d runs, before reaching the global minimum region", runs)
	}
	gme, _, _ := c.GME()
	if gme > 160 {
		t.Fatalf("GME %f missed the late minimum", gme)
	}
}

func TestNoExtendedConvergenceViaLeakingDebit(t *testing.T) {
	// §3.3.2: on a perfectly stable system (no variation at all after the
	// early gains) the credit would never drain without the leaking debit.
	cfg := DefaultConvergenceConfig(8)
	c := NewConvergence(cfg)
	times := make([]float64, 2000)
	times[0] = 1000
	for i := 1; i < len(times); i++ {
		if i < 8 {
			times[i] = 1000 / float64(i+1)
		} else {
			times[i] = 125 // perfectly flat: ROI exactly 0 forever
		}
	}
	runs := drive(c, times)
	if runs >= 2000 {
		t.Fatal("leaking debit failed: no convergence on a flat curve")
	}
	if runs > c.UpperBoundRuns() {
		t.Fatalf("runs = %d beyond upper bound %d", runs, c.UpperBoundRuns())
	}
}

func TestNoisyPeaksForgiven(t *testing.T) {
	// §3.3.3: a spike above the serial time must not halt the algorithm;
	// the peak and its descent cancel.
	cfg := DefaultConvergenceConfig(8)
	base := improving(1000, 100, 40)
	spiked := append([]float64(nil), base...)
	spiked[20] = 2500 // interference peak above serial
	cClean := NewConvergence(cfg)
	cSpiked := NewConvergence(cfg)
	cleanRuns := drive(cClean, base)
	spikedRuns := drive(cSpiked, spiked)
	if spikedRuns < 22 {
		t.Fatalf("spike halted the algorithm at run %d", spikedRuns)
	}
	if len(cSpiked.Outliers()) != 1 || cSpiked.Outliers()[0] != 20 {
		t.Fatalf("outliers = %v, want [20]", cSpiked.Outliers())
	}
	// The forgiven pair keeps the budget close to the clean trajectory.
	if diff := spikedRuns - cleanRuns; diff < -3 || diff > 3 {
		t.Fatalf("spike shifted convergence by %d runs (clean %d, spiked %d)", diff, cleanRuns, spikedRuns)
	}
	// The spike must not become the GME or corrupt it.
	gme, _, _ := cSpiked.GME()
	if gme > 160 {
		t.Fatalf("GME = %f corrupted by spike", gme)
	}
}

func TestGMEThresholdDiscardsMarginalImprovements(t *testing.T) {
	// A run only replaces the GME when it improves by more than the
	// threshold relative to serial (§3.1's 5%).
	c := NewConvergence(ConvergenceConfig{Cores: 4, ExtraRuns: 8, GMEThreshold: 0.05})
	c.Observe(1000) // serial
	c.Observe(500)  // GME = 500 (first run after serial)
	c.Observe(490)  // only 1% better than GME relative to serial: discarded
	gme, run, _ := c.GME()
	if gme != 500 || run != 1 {
		t.Fatalf("GME = (%f, %d), want (500, 1)", gme, run)
	}
	c.Observe(420) // 8% better relative to serial: accepted
	gme, run, _ = c.GME()
	if gme != 420 || run != 3 {
		t.Fatalf("GME = (%f, %d), want (420, 3)", gme, run)
	}
}

func TestGMENeverIncreases(t *testing.T) {
	c := NewConvergence(DefaultConvergenceConfig(4))
	times := []float64{1000, 300, 200, 600, 900, 250}
	for _, x := range times {
		c.Observe(x)
	}
	gme, _, ok := c.GME()
	if !ok || gme != 200 {
		t.Fatalf("GME = %f, want 200", gme)
	}
}

func TestWorseningParallelismConvergesQuickly(t *testing.T) {
	// When parallelism only hurts (tiny inputs), debits accumulate
	// immediately and the search stops fast.
	c := NewConvergence(DefaultConvergenceConfig(8))
	times := []float64{100, 120, 150, 180, 220, 260, 310, 370, 440, 520}
	runs := drive(c, times)
	if runs > 9 {
		t.Fatalf("runs = %d, want quick abandonment", runs)
	}
	if _, _, ok := c.GME(); ok {
		t.Fatal("a GME was claimed although no run beat serial")
	}
}

func TestHistoryAndBalanceAccessors(t *testing.T) {
	c := NewConvergence(DefaultConvergenceConfig(4))
	c.Observe(100)
	c.Observe(50)
	h := c.History()
	if len(h) != 2 || h[0] != 100 || h[1] != 50 {
		t.Fatalf("history = %v", h)
	}
	if c.Run() != 2 {
		t.Fatalf("Run = %d", c.Run())
	}
	if c.Balance() <= 0 {
		t.Fatalf("balance = %f after a strong improvement", c.Balance())
	}
	if math.IsInf(c.Balance(), 0) {
		t.Fatal("balance overflow")
	}
}

func TestConvergenceDefaultsSanitized(t *testing.T) {
	c := NewConvergence(ConvergenceConfig{})
	if !c.Observe(100) {
		t.Fatal("zero-config convergence rejected the serial run")
	}
	if c.UpperBoundRuns() < 2 {
		t.Fatalf("UpperBoundRuns = %d", c.UpperBoundRuns())
	}
}
