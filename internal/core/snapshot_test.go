package core

import (
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
)

// TestSnapshotRestoreTwinEquality converges a session, round-trips it
// through Snapshot + canonical plan encoding + RestoreSession on a fresh
// engine, and asserts the restored session is indistinguishable from the
// never-restarted twin: same convergence state, same report numbers, and
// bit-identical results when serving the best plan.
func TestSnapshotRestoreTwinEquality(t *testing.T) {
	cat := testCatalog(400_000)
	engA := exec.NewEngine(cat, testMachine(), cost.Default())
	twin := NewSession(engA, selectPlan(), DefaultMutationConfig(),
		DefaultConvergenceConfig(8))
	if _, err := twin.Converge(); err != nil {
		t.Fatal(err)
	}

	snap, err := twin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the plan through its canonical form, as the store does.
	decoded, err := plan.Decode(plan.Encode(snap.BestPlan))
	if err != nil {
		t.Fatal(err)
	}
	snap.BestPlan = decoded

	engB := exec.NewEngine(cat, testMachine(), cost.Default())
	restored, err := RestoreSession(engB, DefaultMutationConfig(), snap)
	if err != nil {
		t.Fatal(err)
	}

	if !restored.Done() {
		t.Fatal("restored session is not Done")
	}
	ra, rb := twin.Report(), restored.Report()
	if ra.TotalRuns != rb.TotalRuns || ra.GMERun != rb.GMERun ||
		ra.GMENs != rb.GMENs || ra.SerialNs != rb.SerialNs {
		t.Fatalf("report mismatch: twin %+v restored %+v", ra, rb)
	}
	if !reflect.DeepEqual(ra.History, rb.History) {
		t.Fatalf("history mismatch:\n twin     %v\n restored %v", ra.History, rb.History)
	}
	if !reflect.DeepEqual(ra.Outliers, rb.Outliers) {
		t.Fatalf("outliers mismatch: twin %v restored %v", ra.Outliers, rb.Outliers)
	}
	if got, want := rb.BestPlan.String(), ra.BestPlan.String(); got != want {
		t.Fatalf("best plan mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if twin.Summary() != restored.Summary() {
		t.Fatalf("summary mismatch: twin %+v restored %+v", twin.Summary(), restored.Summary())
	}

	// Serving: both best plans execute and agree bit-for-bit.
	resA, _, err := engA.Execute(twin.Best())
	if err != nil {
		t.Fatal(err)
	}
	resB, _, err := engB.Execute(restored.Best())
	if err != nil {
		t.Fatal(err)
	}
	if !exec.ResultsEqual(resA, resB) {
		t.Fatalf("results diverge: %v vs %v", resA, resB)
	}
}

func TestSnapshotRejectsUnconverged(t *testing.T) {
	cat := testCatalog(100_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(),
		DefaultConvergenceConfig(4))
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot accepted an unconverged session")
	}
}

func TestRestoreRejectsCorruptHistory(t *testing.T) {
	cat := testCatalog(200_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(),
		DefaultConvergenceConfig(4))
	if _, err := s.Converge(); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	truncated := *snap
	truncated.History = snap.History[:1]
	if _, err := RestoreSession(eng, DefaultMutationConfig(), &truncated); err == nil {
		t.Fatal("RestoreSession accepted a truncated history")
	}

	empty := *snap
	empty.History = nil
	if _, err := RestoreSession(eng, DefaultMutationConfig(), &empty); err == nil {
		t.Fatal("RestoreSession accepted an empty history")
	}

	noPlan := *snap
	noPlan.BestPlan = nil
	if _, err := RestoreSession(eng, DefaultMutationConfig(), &noPlan); err == nil {
		t.Fatal("RestoreSession accepted a snapshot without a plan")
	}
}
