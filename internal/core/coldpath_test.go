package core

import (
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/sim"
)

// The incremental-compilation equivalence pin (ISSUE 4): an adaptive session
// whose mutated plans compile incrementally (child schedule derived from the
// parent's cached compilation, arena buffers drawn from the engine pool)
// must be bit-for-bit indistinguishable from one that fully recompiles every
// plan — same results, same Work, same virtual timeline, on every single
// run. The convergence trajectory exercises both mutation shapes: the basic
// mutation (sliced clones) and the medium mutation (pack removal with
// propagated clones).
func TestIncrementalCompilationEquivalence(t *testing.T) {
	cat := zerocopyCatalog(60_000)
	mach := sim.TwoSocket()

	derived := NewSession(exec.NewEngine(cat, mach, cost.Default()), zerocopyPlan(), MutationConfig{}, ConvergenceConfig{})
	derived.VerifyResults = true
	full := NewSession(exec.NewEngine(cat, mach, cost.Default()), zerocopyPlan(), MutationConfig{}, ConvergenceConfig{})
	full.VerifyResults = true

	sawBasic, sawMedium := false, false
	for i := 0; i < 400 && (!derived.Done() || !full.Done()); i++ {
		if !derived.Done() {
			if _, err := derived.Step(); err != nil {
				t.Fatalf("derived step %d: %v", i, err)
			}
		}
		if !full.Done() {
			if _, err := full.StepWith(exec.JobOptions{FullRecompile: true}); err != nil {
				t.Fatalf("full-recompile step %d: %v", i, err)
			}
		}
	}
	if !derived.Done() || !full.Done() {
		t.Fatal("sessions did not converge")
	}
	da, fa := derived.Attempts(), full.Attempts()
	if len(da) != len(fa) {
		t.Fatalf("run counts diverge: derived %d, full %d", len(da), len(fa))
	}
	for r := range da {
		d, f := da[r], fa[r]
		switch d.Mutation.Kind {
		case MutationBasic:
			sawBasic = true
		case MutationMedium:
			sawMedium = true
		}
		if d.Mutation != f.Mutation {
			t.Fatalf("run %d: mutation diverges: %+v vs %+v", r, d.Mutation, f.Mutation)
		}
		if !exec.ResultsEqual(d.Results, f.Results) {
			t.Fatalf("run %d: results diverge: %v vs %v", r, d.Results, f.Results)
		}
		if d.ExecNs != f.ExecNs {
			t.Fatalf("run %d: virtual time diverges: %f vs %f", r, d.ExecNs, f.ExecNs)
		}
		if len(d.Profile.Ops) != len(f.Profile.Ops) {
			t.Fatalf("run %d: op counts diverge: %d vs %d", r, len(d.Profile.Ops), len(f.Profile.Ops))
		}
		for k := range d.Profile.Ops {
			do, fo := d.Profile.Ops[k], f.Profile.Ops[k]
			if do.Instr != fo.Instr || do.Op != fo.Op || do.StartNs != fo.StartNs ||
				do.EndNs != fo.EndNs || do.Core != fo.Core || do.Work != fo.Work {
				t.Fatalf("run %d op %d: timeline diverges:\n  derived: %+v\n  full:    %+v", r, k, do, fo)
			}
		}
	}
	if !sawBasic || !sawMedium {
		t.Fatalf("convergence exercised basic=%v medium=%v mutations; both shapes are required for the pin", sawBasic, sawMedium)
	}
	// The derived session must actually have compiled incrementally (and the
	// full-recompile session must not have).
	if st := derived.eng.CompileStats(); st.Derived == 0 {
		t.Fatalf("derived session never compiled incrementally: %+v", st)
	}
	if st := full.eng.CompileStats(); st.Derived != 0 {
		t.Fatalf("FullRecompile session compiled incrementally: %+v", st)
	}
}

// A converging session's steps must stay cheap: retired plans feed the
// engine recycler, mutated children derive schedules and adopt arenas from
// their parents, and column wrappers are memoized. The >= 2x reduction vs
// the PR 3 baseline is enforced end-to-end by the server's
// TestServeColdAllocBudget; here we pin the engine-side contributions: the
// incremental path must never allocate more than full recompilation, and
// the absolute per-step count must not creep back up (PR 3 sat at ~460
// allocs/step for this exact loop).
func TestConvergingStepAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation comparison measured in full runs")
	}
	cat := zerocopyCatalog(60_000)
	mach := sim.TwoSocket()

	run := func(full bool) (allocsPerStep float64) {
		eng := exec.NewEngine(cat, mach, cost.Default())
		sess := NewSession(eng, zerocopyPlan(), MutationConfig{}, ConvergenceConfig{})
		opts := exec.JobOptions{FullRecompile: full}
		// Warm the engine pool and HTTP-independent steady state: measure
		// from the second session on the same engine (a serving shard's
		// recycler is warm after its first converged query).
		for s := 0; s < 2; s++ {
			sess = NewSession(eng, zerocopyPlan(), MutationConfig{}, ConvergenceConfig{})
			steps := 0
			var stats0, stats1 runtime.MemStats
			runtime.ReadMemStats(&stats0)
			for i := 0; i < 400 && !sess.Done(); i++ {
				if _, err := sess.StepWith(opts); err != nil {
					t.Fatal(err)
				}
				steps++
			}
			runtime.ReadMemStats(&stats1)
			if s == 1 {
				allocsPerStep = float64(stats1.Mallocs-stats0.Mallocs) / float64(steps)
			}
			sess.Release()
		}
		return allocsPerStep
	}

	fullAllocs := run(true)
	derivedAllocs := run(false)
	t.Logf("converging step: derived %.0f allocs/step vs full-recompile %.0f allocs/step", derivedAllocs, fullAllocs)
	if derivedAllocs > fullAllocs {
		t.Fatalf("incremental cold path allocates %.0f/step, more than full recompilation's %.0f/step",
			derivedAllocs, fullAllocs)
	}
	// Absolute creep guard: measured ~88/step after ISSUE 4 (was ~460 at
	// PR 3); the margin absorbs runtime jitter, not regressions.
	if derivedAllocs > 140 {
		t.Fatalf("converging step allocates %.0f/step, budget is 140 (PR 3 sat at ~460)", derivedAllocs)
	}
}
