package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/plan"
)

// Attempt records one adaptive run: the plan executed, its measured
// execution time, the full profile, and the mutation that produced the plan
// (MutationNone for the serial 0th run).
type Attempt struct {
	Plan     *plan.Plan
	ExecNs   float64
	Profile  *exec.Profile
	Mutation Mutation
	Results  []exec.Value
}

// Report summarizes a converged adaptation (the quantities of Figure 18).
type Report struct {
	TotalRuns int
	GMERun    int
	GMENs     float64
	SerialNs  float64
	BestPlan  *plan.Plan
	History   []float64
	Outliers  []int
	Attempts  []Attempt
}

// Speedup returns serial time over GME time.
func (r *Report) Speedup() float64 {
	if r.GMENs <= 0 {
		return 1
	}
	return r.SerialNs / r.GMENs
}

// Session is one active adaptive-parallelization instance for a cached
// query (§2's workflow): execute → profile → mutate the most expensive
// operator → repeat, under control of the convergence algorithm.
type Session struct {
	eng  *exec.Engine
	mut  *Mutator
	conv *Convergence

	cur      *plan.Plan
	parent   *plan.Plan // plan cur was mutated from; seeds incremental compilation
	nextMut  Mutation
	attempts []Attempt
	best     *plan.Plan
	// done is atomic so cache bookkeeping on other goroutines (eviction
	// victim selection, /stats aggregation) can poll Done while the owning
	// goroutine steps the session; every other field stays single-owner.
	done atomic.Bool

	// Staleness detection and reopened convergence (staleness.go). A reopen
	// replaces conv with a fresh instance whose run counter restarts at 0;
	// runBase maps its runs back to absolute attempt indices, and the
	// prefixes carry the finished instances' traces for Report.
	stale         StalenessConfig
	staleRun      int        // consecutive out-of-band serving runs
	reopenFrom    *plan.Plan // serial plan re-exploration restarts from (nil: restored session)
	reopens       int
	runBase       int
	histPrefix    []float64
	outlierPrefix []int
	expectNs      float64 // converged serving expectation staleness is judged against
	reopenBar     float64 // post-reopen: the stale serving level a new best must beat
	dethroned     bool    // the current convergence instance produced s.best
	dataReopens   int     // reopens forced by dataset epoch bumps (reopen.go)
	driftReopens  int     // reopens forced by the workload-drift detector (reopen.go)

	// VerifyResults, when set, compares every run's results against the
	// serial run's — the central mutation-correctness invariant. Intended
	// for tests and examples; adds only comparison cost.
	VerifyResults bool
}

// NewSession starts an adaptation for serial plan p on eng. The convergence
// configuration defaults to the engine machine's logical core count.
func NewSession(eng *exec.Engine, p *plan.Plan, mcfg MutationConfig, ccfg ConvergenceConfig) *Session {
	if ccfg.Cores == 0 {
		ccfg = DefaultConvergenceConfig(eng.Machine().Config().LogicalCores())
	}
	return &Session{
		eng:        eng,
		mut:        NewMutator(mcfg),
		conv:       NewConvergence(ccfg),
		cur:        p,
		reopenFrom: p,
	}
}

// Current returns the plan the next Step will execute.
func (s *Session) Current() *plan.Plan { return s.cur }

// Convergence exposes the convergence state.
func (s *Session) Convergence() *Convergence { return s.conv }

// Attempts returns the runs so far.
func (s *Session) Attempts() []Attempt { return s.attempts }

// Done reports whether the adaptation has converged. Safe to call from any
// goroutine.
func (s *Session) Done() bool { return s.done.Load() }

// Step executes the current plan once, feeds the execution time to the
// convergence algorithm, and (if adaptation continues) mutates the plan for
// the next invocation. It returns false when converged.
func (s *Session) Step() (bool, error) { return s.StepWith(exec.JobOptions{}) }

// StepWith is Step with per-run job options: the query-service daemon uses
// it to apply admission-control core budgets to adaptive runs happening on
// the production request stream.
func (s *Session) StepWith(opts exec.JobOptions) (bool, error) {
	if s.done.Load() {
		return false, nil
	}
	// Hand the parent compilation to the child: s.cur was produced by
	// mutating s.parent, so the engine derives its schedule incrementally
	// from the parent's cached one instead of recompiling the whole plan.
	opts.DerivedFrom = s.parent
	results, prof, err := s.eng.ExecuteOpts(s.cur, opts)
	if err != nil {
		return false, fmt.Errorf("core: run %d: %w", s.conv.Run(), err)
	}
	execNs := prof.Makespan()
	s.attempts = append(s.attempts, Attempt{
		Plan: s.cur, ExecNs: execNs, Profile: prof, Mutation: s.nextMut, Results: results,
	})
	if s.VerifyResults && len(s.attempts) > 1 {
		if !exec.ResultsEqual(s.attempts[0].Results, results) {
			return false, fmt.Errorf("core: run %d: mutated plan results diverge from serial plan", s.conv.Run())
		}
	}
	cont := s.conv.Observe(execNs)
	if _, run, ok := s.conv.GME(); ok && s.runBase+run == len(s.attempts)-1 {
		// After a staleness reopen, beating the reopened instance's own
		// baseline is not enough: the incumbent best only falls to a run
		// that beats the stale serving level the reopen recorded.
		if s.reopenBar == 0 || execNs < s.reopenBar {
			if old := s.best; old != nil && old != s.cur && old != s.parent {
				// The dethroned global minimum will never execute again.
				s.eng.Retire(old)
			}
			s.best = s.cur
			s.dethroned = true
		}
	}
	if !cont {
		s.done.Store(true)
		// Fix the serving expectation staleness detection will judge future
		// runs against: the new global minimum when this instance produced
		// the best plan, else (re-pinned old best after a fruitless reopen)
		// the stale serving level itself, so the re-pin does not immediately
		// re-trip the detector on a permanently degraded machine.
		if gme, _, ok := s.conv.GME(); ok && s.dethroned {
			s.expectNs = gme
		} else if s.reopenBar > 0 {
			s.expectNs = s.reopenBar
		} else if ok {
			s.expectNs = gme
		} else {
			s.expectNs = s.conv.Serial()
		}
		s.reopenBar = 0
		// Exploration over: only Best() executes from here on. Drop the
		// tail plans' compilations back into the engine's buffer pool.
		best := s.Best()
		if s.parent != nil && s.parent != best {
			s.eng.Retire(s.parent)
		}
		if s.cur != best {
			s.eng.Retire(s.cur)
		}
		s.parent = nil
		return false, nil
	}
	np, mut, err := s.mut.MutateMostExpensive(s.cur, prof)
	if err != nil {
		return false, fmt.Errorf("core: run %d mutation: %w", s.conv.Run(), err)
	}
	if np != s.cur {
		// The grandparent's schedule has served its purpose (cur's own
		// compilation is cached now); retire it — its buffers feed the
		// freshly mutated plan's first run — unless it is the best-so-far
		// plan, which must stay executable.
		if s.parent != nil && s.parent != s.best {
			s.eng.Retire(s.parent)
		}
		s.parent = s.cur
		s.cur = np
	}
	s.nextMut = mut
	return true, nil
}

// Release hands the session's live plan compilations (current, parent, and
// best) back to the engine. The plan-session cache calls it on eviction so a
// long-gone session's arena buffers return to the engine pool instead of
// lingering until schedule-cache overflow. The session object itself remains
// readable (reports, attempts); executing it again just recompiles.
func (s *Session) Release() {
	for _, p := range []*plan.Plan{s.parent, s.cur, s.best} {
		if p != nil {
			s.eng.Retire(p)
		}
	}
}

// Converge drives Step until the convergence algorithm halts (or the safety
// cap of twice the theoretical upper bound trips, which would indicate a
// bug) and returns the report.
func (s *Session) Converge() (*Report, error) {
	cap := 2*s.conv.UpperBoundRuns() + 4
	for i := 0; i < cap; i++ {
		cont, err := s.Step()
		if err != nil {
			return nil, err
		}
		if !cont {
			return s.Report(), nil
		}
	}
	return nil, fmt.Errorf("core: convergence did not halt within %d runs", cap)
}

// Best returns the plan a post-convergence invocation should execute: the
// global-minimum plan once one exists, else the current plan. O(1). After a
// staleness reopen the previous global minimum keeps serving until the
// reopened convergence dethrones it (or re-pins it, if bounded
// re-exploration found nothing better).
func (s *Session) Best() *plan.Plan {
	if s.best != nil {
		return s.best
	}
	return s.cur
}

// Summary is the constant-time snapshot of an adaptation's headline
// numbers. Unlike Report it copies no history or attempt slices, so the
// serving hot path can read it per request without per-request allocation.
type Summary struct {
	Runs     int
	GMENs    float64
	SerialNs float64
	Done     bool
}

// Speedup returns serial time over GME time.
func (sm Summary) Speedup() float64 {
	if sm.GMENs <= 0 {
		return 1
	}
	return sm.SerialNs / sm.GMENs
}

// Summary snapshots the headline adaptation numbers in O(1).
func (s *Session) Summary() Summary {
	gme, _, ok := s.conv.GME()
	serial := 0.0
	if len(s.attempts) > 0 {
		serial = s.attempts[0].ExecNs
	}
	if !ok {
		gme = serial
	}
	return Summary{Runs: len(s.attempts), GMENs: gme, SerialNs: serial, Done: s.done.Load()}
}

// Report snapshots the adaptation outcome so far.
func (s *Session) Report() *Report {
	gme, gmeRun, ok := s.conv.GME()
	serial := 0.0
	if len(s.attempts) > 0 {
		serial = s.attempts[0].ExecNs
	}
	best := s.best
	if best == nil || !ok {
		best = s.cur
		gme, gmeRun = serial, -s.runBase // absolute run 0 after the shift below
	}
	// A reopened session's convergence instance counts runs from its own
	// baseline; the report stitches the finished instances' traces back on
	// and shifts indices to absolute attempt positions.
	history := s.conv.History()
	outliers := s.conv.Outliers()
	if s.runBase > 0 {
		history = append(append([]float64(nil), s.histPrefix...), history...)
		shifted := append([]int(nil), s.outlierPrefix...)
		for _, o := range outliers {
			shifted = append(shifted, o+s.runBase)
		}
		outliers = shifted
	}
	return &Report{
		TotalRuns: len(s.attempts),
		GMERun:    s.runBase + gmeRun,
		GMENs:     gme,
		SerialNs:  serial,
		BestPlan:  best,
		History:   history,
		Outliers:  outliers,
		Attempts:  s.attempts,
	}
}
