package core

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/storage"
)

// appendTestRows grows the fixture lineitem table by n rows and returns the
// mutated copy-on-write catalog.
func appendTestRows(t *testing.T, cat *storage.Catalog, n int) *storage.Catalog {
	t.Helper()
	ship := make([]int64, n)
	disc := make([]int64, n)
	price := make([]int64, n)
	key := make([]int64, n)
	for i := 0; i < n; i++ {
		ship[i] = int64((i * 13) % 365)
		disc[i] = int64(i % 11)
		price[i] = int64(150 + i%800)
		key[i] = int64(i % 7)
	}
	ncat, err := cat.AppendRows("lineitem", map[string]storage.ColumnAppend{
		"l_shipdate":      {Ints: ship},
		"l_discount":      {Ints: disc},
		"l_extendedprice": {Ints: price},
		"l_key":           {Ints: key},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ncat
}

// TestReopenForDataWarmBeatsCold is the dataset-epoch acceptance path: a
// converged session survives an append by re-converging warm — seeded from
// its learned plan — in at most half the runs of a cold convergence on the
// mutated data, and its post-churn results are bit-identical to a session
// converged from scratch on that data.
func TestReopenForDataWarmBeatsCold(t *testing.T) {
	cat := testCatalog(400_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(), ConvergenceConfig{})
	if _, err := s.Converge(); err != nil {
		t.Fatal(err)
	}

	ncat := appendTestRows(t, cat, 100_000)

	pre := len(s.Attempts())
	if !s.ReopenForData(0) {
		t.Fatal("ReopenForData refused a converged session")
	}
	if s.Done() {
		t.Fatal("session still done after data reopen")
	}
	if s.DataReopens() != 1 {
		t.Fatalf("DataReopens = %d, want 1", s.DataReopens())
	}
	for !s.Done() {
		if _, err := s.StepWith(exec.JobOptions{Catalog: ncat}); err != nil {
			t.Fatal(err)
		}
		if len(s.Attempts())-pre > 60 {
			t.Fatal("warm re-convergence did not halt within 60 runs")
		}
	}
	warm := len(s.Attempts()) - pre

	eng2 := exec.NewEngine(ncat, testMachine(), cost.Default())
	cold := NewSession(eng2, selectPlan(), DefaultMutationConfig(), ConvergenceConfig{})
	coldRep, err := cold.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if warm*2 > coldRep.TotalRuns {
		t.Fatalf("warm re-convergence took %d runs, cold took %d — want warm <= half", warm, coldRep.TotalRuns)
	}

	warmRes, _, err := eng.ExecuteOpts(s.Best(), exec.JobOptions{Catalog: ncat})
	if err != nil {
		t.Fatal(err)
	}
	coldRes, _, err := eng2.Execute(cold.Best())
	if err != nil {
		t.Fatal(err)
	}
	if !exec.ResultsEqual(warmRes, coldRes) {
		t.Fatal("post-churn results differ from a cold convergence on the mutated data")
	}
}

// TestReopenForDataFreshSessionNoop: a session that has never executed has
// nothing stale; the reopen must leave it untouched and valid.
func TestReopenForDataFreshSessionNoop(t *testing.T) {
	cat := testCatalog(10_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(), ConvergenceConfig{})
	if !s.ReopenForData(0) {
		t.Fatal("fresh session rejected")
	}
	if s.DataReopens() != 0 {
		t.Fatalf("fresh session counted a data reopen: %d", s.DataReopens())
	}
	if s.Done() {
		t.Fatal("fresh session marked done")
	}
	if _, err := s.Converge(); err != nil {
		t.Fatal(err)
	}
}

// TestReopenForDataMidAdaptation: an epoch bump that lands while a session is
// still converging folds the partial instance and restarts from the best plan
// so far; the session still converges and verifies results on the new data.
func TestReopenForDataMidAdaptation(t *testing.T) {
	cat := testCatalog(200_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(), ConvergenceConfig{})
	for i := 0; i < 5; i++ {
		cont, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !cont {
			t.Fatal("converged before the bump; fixture too small")
		}
	}
	ncat := appendTestRows(t, cat, 50_000)
	if !s.ReopenForData(0) {
		t.Fatal("mid-adaptation reopen refused")
	}
	runs := 0
	for !s.Done() {
		if _, err := s.StepWith(exec.JobOptions{Catalog: ncat}); err != nil {
			t.Fatal(err)
		}
		if runs++; runs > 60 {
			t.Fatal("did not halt")
		}
	}
	got, _, err := eng.ExecuteOpts(s.Best(), exec.JobOptions{Catalog: ncat})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := exec.NewEngine(ncat, testMachine(), cost.Default()).Execute(selectPlan())
	if err != nil {
		t.Fatal(err)
	}
	if !exec.ResultsEqual(got, want) {
		t.Fatal("results diverge from serial execution on the mutated data")
	}
}

// TestReopenForDrift: a session converged unthrottled serves under a small
// admission budget; the drift reopen restarts exploration from serial, sized
// to the observed budget, and lands on a plan that serves the budget at least
// as well as the throttled wide plan did.
func TestReopenForDrift(t *testing.T) {
	cat := testCatalog(400_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(), ConvergenceConfig{})
	if _, err := s.Converge(); err != nil {
		t.Fatal(err)
	}

	budget := 2
	_, prof, err := eng.ExecuteOpts(s.Best(), exec.JobOptions{MaxCores: budget})
	if err != nil {
		t.Fatal(err)
	}
	observed := prof.Makespan()
	if observed <= s.ExpectNs() {
		t.Fatalf("throttled serving (%.0f) not slower than converged expectation (%.0f)", observed, s.ExpectNs())
	}

	if !s.ReopenForDrift(observed, budget) {
		t.Fatal("drift reopen refused a converged session")
	}
	if s.DriftReopens() != 1 {
		t.Fatalf("DriftReopens = %d, want 1", s.DriftReopens())
	}
	if got := s.Convergence().Config().Cores; got != budget {
		t.Fatalf("reopened instance sized to %d cores, want the observed budget %d", got, budget)
	}
	runs := 0
	for !s.Done() {
		if _, err := s.StepWith(exec.JobOptions{MaxCores: budget}); err != nil {
			t.Fatal(err)
		}
		if runs++; runs > 60 {
			t.Fatal("drift re-convergence did not halt")
		}
	}
	_, prof, err = eng.ExecuteOpts(s.Best(), exec.JobOptions{MaxCores: budget})
	if err != nil {
		t.Fatal(err)
	}
	if post := prof.Makespan(); post > observed*1.01 {
		t.Fatalf("post-drift serving %.0f worse than the throttled wide plan %.0f", post, observed)
	}

	// A second reopen on the now-adapting session must refuse.
	s2 := NewSession(eng, selectPlan(), DefaultMutationConfig(), ConvergenceConfig{})
	if s2.ReopenForDrift(observed, budget) {
		t.Fatal("drift reopen accepted an unconverged session")
	}
}
