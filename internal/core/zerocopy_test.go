package core

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

func zerocopyCatalog(n int) *storage.Catalog {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	t := storage.NewTable("t")
	t.MustAddColumn(storage.NewIntColumn("v", vals))
	cat := storage.NewCatalog()
	cat.MustAdd(t)
	return cat
}

func zerocopyPlan() *plan.Plan {
	b := plan.NewBuilder()
	col := b.Bind("t", "v")
	sel := b.Select(col, algebra.AtLeast(100))
	vals := b.Fetch(sel, col)
	sum := b.Aggr(algebra.AggrSum, vals)
	b.Result(sum)
	return b.Plan()
}

// An adaptive session run entirely over the zero-copy exchange must keep the
// mutation-correctness invariant (every run's results equal the serial
// run's) and converge; and a session forced onto the copying exchange must
// produce the same per-run results — the exchange implementation is not
// allowed to influence query answers, only cost.
func TestAdaptationEquivalentAcrossExchangeModes(t *testing.T) {
	cat := zerocopyCatalog(40_000)
	mach := sim.TwoSocket()

	shared := NewSession(exec.NewEngine(cat, mach, cost.Default()), zerocopyPlan(), MutationConfig{}, ConvergenceConfig{})
	shared.VerifyResults = true
	copying := NewSession(exec.NewEngine(cat, mach, cost.Default()), zerocopyPlan(), MutationConfig{}, ConvergenceConfig{})
	copying.VerifyResults = true

	for i := 0; i < 400 && (!shared.Done() || !copying.Done()); i++ {
		if !shared.Done() {
			if _, err := shared.Step(); err != nil {
				t.Fatalf("shared step: %v", err)
			}
		}
		if !copying.Done() {
			if _, err := copying.StepWith(exec.JobOptions{CopyExchange: true}); err != nil {
				t.Fatalf("copying step: %v", err)
			}
		}
	}
	if !shared.Done() || !copying.Done() {
		t.Fatalf("sessions did not converge (shared=%v copying=%v)", shared.Done(), copying.Done())
	}
	sr, cr := shared.Report(), copying.Report()
	if !exec.ResultsEqual(sr.Attempts[0].Results, cr.Attempts[0].Results) {
		t.Fatal("serial baselines diverge between exchange modes")
	}
	// Every attempt of both sessions answers the query identically (the
	// per-session invariant is enforced by VerifyResults above; this pins
	// the cross-mode equality).
	for i := range sr.Attempts {
		if !exec.ResultsEqual(sr.Attempts[i].Results, cr.Attempts[0].Results) {
			t.Fatalf("shared run %d diverges from the copying baseline", i)
		}
	}
	for i := range cr.Attempts {
		if !exec.ResultsEqual(cr.Attempts[i].Results, sr.Attempts[0].Results) {
			t.Fatalf("copying run %d diverges from the shared baseline", i)
		}
	}
	// Note: the two searches may converge to different plans — pack cost
	// steers the greedy mutator — so best latencies are not comparable;
	// only answers are.
}

// Convergence must stay deterministic under the zero-copy exchange: two
// identical sessions produce identical traces (run-by-run latencies and the
// same best plan shape) — the arena and shared buffers never leak state
// between runs.
func TestAdaptationDeterministicWithZeroCopy(t *testing.T) {
	cat := zerocopyCatalog(40_000)
	run := func() *Report {
		s := NewSession(exec.NewEngine(cat, sim.TwoSocket(), cost.Default()), zerocopyPlan(), MutationConfig{}, ConvergenceConfig{})
		rep, err := s.Converge()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.History) != len(b.History) || a.GMERun != b.GMERun {
		t.Fatalf("traces diverge: %d runs (GME %d) vs %d runs (GME %d)",
			len(a.History), a.GMERun, len(b.History), b.GMERun)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("run %d latency %f != %f", i, a.History[i], b.History[i])
		}
	}
	if a.BestPlan.MaxDOP() != b.BestPlan.MaxDOP() {
		t.Fatalf("best DOP %d != %d", a.BestPlan.MaxDOP(), b.BestPlan.MaxDOP())
	}
}
