package core

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/sim"
)

// TestStalenessDetectsCoreLossAndReconverges is the acceptance path: a
// session converges, half the machine's cores are lost mid-flight, staleness
// detection trips after Window consecutive out-of-band serving runs, the
// session re-converges on the shrunken machine, and the re-converged
// steady state beats continuing on the stale plan.
func TestStalenessDetectsCoreLossAndReconverges(t *testing.T) {
	cat := testCatalog(400_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(), DefaultConvergenceConfig(8))
	s.VerifyResults = true
	if _, err := s.Converge(); err != nil {
		t.Fatal(err)
	}
	s.SetStaleness(DefaultStalenessConfig())

	serveBest := func() float64 {
		_, prof, err := eng.ExecuteOpts(s.Best(), exec.JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return prof.Makespan()
	}
	preNs := serveBest()
	if s.ObserveServed(preNs) || s.Reconvergences() != 0 {
		t.Fatal("in-band serving run tripped staleness detection")
	}

	// Lose all of socket 1 — half the machine — mid-run.
	eng.Machine().InjectFault(sim.FaultEvent{Kind: sim.FaultCoreLoss, Socket: 1, Count: 8})

	var staleNs float64
	trips := 0
	for i := 0; i < 10 && s.Done(); i++ {
		staleNs = serveBest()
		trips++
		if s.ObserveServed(staleNs) {
			break
		}
	}
	if s.Done() {
		t.Fatalf("staleness never tripped in %d post-fault servings (stale %.0f vs pre %.0f)", trips, staleNs, preNs)
	}
	if want := s.Staleness().Window; trips != want {
		t.Fatalf("reopened after %d servings, want the %d-run window", trips, want)
	}
	if s.Reconvergences() != 1 {
		t.Fatalf("reconvergences = %d", s.Reconvergences())
	}
	if staleNs < preNs*1.35 {
		t.Fatalf("core loss barely moved the stale plan: %.0f vs %.0f", staleNs, preNs)
	}

	// Re-exploration is bounded by the reopened instance sized to the 8
	// surviving cores (8+1+6·8 = 57 runs at most; ~33 in practice).
	reqs := 0
	for !s.Done() {
		cont, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		reqs++
		if reqs > 60 {
			t.Fatalf("re-convergence did not halt within 60 runs")
		}
		if !cont {
			break
		}
	}
	postNs := serveBest()
	if postNs >= staleNs {
		t.Fatalf("re-converged plan (%.0f ns) does not beat the stale plan (%.0f ns) after core loss", postNs, staleNs)
	}
	t.Logf("pre-fault %.0f ns, stale-on-degraded %.0f ns, re-converged %.0f ns in %d runs",
		preNs, staleNs, postNs, reqs)

	// The stitched report stays coherent across the reopen.
	rep := s.Report()
	if len(rep.History) != rep.TotalRuns {
		t.Fatalf("history len %d != total runs %d", len(rep.History), rep.TotalRuns)
	}
	if rep.GMERun < 0 || rep.GMERun >= rep.TotalRuns {
		t.Fatalf("GMERun = %d of %d", rep.GMERun, rep.TotalRuns)
	}
	if rep.History[rep.GMERun] != rep.GMENs {
		t.Fatalf("GME %f != history[%d] = %f", rep.GMENs, rep.GMERun, rep.History[rep.GMERun])
	}

	// The re-converged session snapshots and restores like any converged one
	// (the persistent store is updated only on the new convergence).
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(eng, DefaultMutationConfig(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Done() {
		t.Fatal("restored re-converged session not done")
	}
}

// TestStalenessForgivesIsolatedSpikes: a single out-of-band run (an
// interference spike) must not reopen convergence; the consecutive-run
// window resets on the next in-band run.
func TestStalenessForgivesIsolatedSpikes(t *testing.T) {
	cat := testCatalog(200_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(), DefaultConvergenceConfig(4))
	if _, err := s.Converge(); err != nil {
		t.Fatal(err)
	}
	s.SetStaleness(StalenessConfig{Band: 0.35, Window: 3})
	gme := s.Summary().GMENs
	for i := 0; i < 5; i++ {
		if s.ObserveServed(gme * 5) {
			t.Fatalf("spike %d alone reopened convergence", i)
		}
		if s.ObserveServed(gme) {
			t.Fatal("in-band run reopened convergence")
		}
	}
	if s.Reconvergences() != 0 || !s.Done() {
		t.Fatalf("reopened after alternating spikes: %d", s.Reconvergences())
	}
	// Window consecutive spikes do trip it.
	for i := 0; i < 3; i++ {
		s.ObserveServed(gme * 5)
	}
	if s.Done() || s.Reconvergences() != 1 {
		t.Fatalf("3 consecutive spikes did not reopen (reconv %d)", s.Reconvergences())
	}
}

// TestStalenessDisabledIsInert: without SetStaleness (or with a zero band)
// ObserveServed never reopens, whatever it sees.
func TestStalenessDisabledIsInert(t *testing.T) {
	cat := testCatalog(200_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(), DefaultConvergenceConfig(4))
	if _, err := s.Converge(); err != nil {
		t.Fatal(err)
	}
	gme := s.Summary().GMENs
	for i := 0; i < 10; i++ {
		if s.ObserveServed(gme * 100) {
			t.Fatal("disabled staleness reopened convergence")
		}
	}
	if !s.Done() {
		t.Fatal("session left done state with staleness disabled")
	}
	// Unconverged sessions ignore servings too.
	s2 := NewSession(eng, selectPlan(), DefaultMutationConfig(), DefaultConvergenceConfig(4))
	s2.SetStaleness(DefaultStalenessConfig())
	if s2.ObserveServed(1e9) {
		t.Fatal("unconverged session accepted a serving observation")
	}
}

// TestStalenessRepinsWhenNothingBetterExists: when re-exploration cannot
// improve on the old best (the machine did not actually change — the band
// was just configured absurdly tight), the session re-pins the previous
// best plan rather than serving something worse.
func TestStalenessRepinsWhenNothingBetterExists(t *testing.T) {
	cat := testCatalog(400_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	s := NewSession(eng, selectPlan(), DefaultMutationConfig(), DefaultConvergenceConfig(8))
	if _, err := s.Converge(); err != nil {
		t.Fatal(err)
	}
	oldBest := s.Best()
	oldGME := s.Summary().GMENs
	// A 0.1% band with an unchanged machine: normal servings "look stale".
	s.SetStaleness(StalenessConfig{Band: 0.001, Window: 1, ExtraRuns: 2})
	if !s.ObserveServed(oldGME * 1.01) {
		t.Fatal("tight band did not reopen")
	}
	if s.Done() {
		t.Fatal("session still done after reopen")
	}
	for i := 0; !s.Done() && i < 60; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Done() {
		t.Fatal("re-convergence did not halt")
	}
	// The machine is unchanged, so the re-converged plan must serve at least
	// as well as the old best did (same plan or an equivalent rediscovery).
	_, prof, err := eng.ExecuteOpts(s.Best(), exec.JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.Makespan(); got > oldGME*1.05 {
		t.Fatalf("re-pinned plan serves at %.0f ns, old best at %.0f ns", got, oldGME)
	}
	_ = oldBest
}
