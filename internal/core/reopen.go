package core

// Warm re-convergence for mutation events (ROADMAP item 5a/5b): dataset
// epochs and workload drift reuse the staleness-reopen machinery but differ
// in what they seed from and what bar the new best must clear.
//
// A dataset epoch bump invalidates a session's *measurements*, not its plan:
// plan partitions are binary-rational ranges over their anchor input (see
// internal/plan), so a learned plan re-executed against appended or truncated
// data still covers every tuple and produces correct results — only its cost
// expectations go stale. ReopenForData therefore seeds the fresh convergence
// instance from the learned best plan: run 0 re-baselines that plan on the
// new data, and the bounded instance only keeps exploring while mutation
// still pays. That is the "warm" in warm re-convergence — the session keeps
// everything it learned and spends a handful of runs re-validating it,
// instead of re-growing parallelism from the serial plan.
//
// Workload drift is the opposite case: the plan is the suspect, not the data.
// A session that converged under one admission regime (its query's share of
// the tenant mix) serves under another — wide plans throttled to small core
// budgets run far off their converged expectation. ReopenForDrift restarts
// from the serial plan, sized to the *observed* core budget, so bounded
// re-exploration can land on a narrower optimum; exactly the machine-shrank
// trajectory of staleness.reopen, with the budget standing in for lost cores.

// foldInstance folds the current convergence instance's trace into the
// report prefixes and advances runBase, so a fresh instance's run counter
// maps back to absolute attempt indices.
func (s *Session) foldInstance() {
	hist := s.conv.history
	s.histPrefix = append(s.histPrefix, hist...)
	for _, o := range s.conv.outliers {
		s.outlierPrefix = append(s.outlierPrefix, o+s.runBase)
	}
	s.runBase += len(hist)
}

// ExpectNs returns the converged serving expectation staleness and drift
// detection judge serving runs against (0 until the first convergence).
func (s *Session) ExpectNs() float64 { return s.expectNs }

// DataReopens reports how many dataset epoch bumps have reopened this
// session's convergence.
func (s *Session) DataReopens() int { return s.dataReopens }

// DriftReopens reports how many workload-drift trips have reopened this
// session's convergence.
func (s *Session) DriftReopens() int { return s.driftReopens }

// ReopenForData marks the session's measurements stale after a dataset epoch
// bump and reopens convergence warm, seeded from the learned best plan. It
// works on converged and still-adapting sessions alike (an epoch can bump
// mid-adaptation); a session that has never executed is already fresh and is
// left untouched. extraRuns bounds the reopened instance's post-threshold
// search (<= 0 uses the session's staleness ExtraRuns, or the default).
//
// Returns false only when the session has no plan to seed from — the caller
// should drop such a session rather than serve it against data it has never
// seen.
func (s *Session) ReopenForData(extraRuns int) bool {
	seed := s.Best()
	if seed == nil {
		return false
	}
	if len(s.attempts) == 0 {
		// Never executed: nothing measured, nothing stale. The next Step
		// runs against the new data as run 0.
		return true
	}
	if extraRuns <= 0 {
		if s.stale.enabled() {
			extraRuns = s.stale.ExtraRuns
		} else {
			extraRuns = DefaultStalenessConfig().ExtraRuns
		}
	}
	s.foldInstance()
	ccfg := s.conv.Config()
	ccfg.ExtraRuns = extraRuns
	// A warm instance re-validates a learned plan rather than re-growing
	// parallelism from serial, so it does not need the cold lower bound of
	// cores+1 doubling runs: sizing it to a quarter of the machine starts
	// the leaking debit almost immediately and shrinks the post-threshold
	// budget, while leaving enough headroom to chase an optimum the
	// mutation moved (one or two more doublings).
	if cores := s.eng.Machine().AvailableCores(); cores >= 1 {
		ccfg.Cores = cores / 4
		if ccfg.Cores < 2 {
			ccfg.Cores = 2
		}
	}
	s.conv = NewConvergence(ccfg)
	// The exploration tail of an interrupted adaptation will never execute
	// again; only the seed survives.
	if s.parent != nil && s.parent != seed {
		s.eng.Retire(s.parent)
	}
	if s.cur != nil && s.cur != seed && s.cur != s.parent {
		s.eng.Retire(s.cur)
	}
	s.cur = seed
	s.parent = nil
	s.nextMut = Mutation{}
	// Old-epoch measurements are incomparable with the new data: no bar to
	// beat — run 0 re-baselines the seed plan and GME tracking restarts.
	s.reopenBar = 0
	s.dethroned = false
	s.expectNs = 0
	s.staleRun = 0
	s.dataReopens++
	s.done.Store(false)
	return true
}

// ReopenForDrift reopens a converged session whose serving conditions no
// longer match what it converged under: observedNs is the serving latency
// that tripped the drift detector, cores the admission core budget the
// session actually serves with (<= 0 or above the machine uses the machine's
// available cores). Exploration restarts from the serial plan sized to that
// budget; the previously-best plan keeps serving until a run beats
// observedNs, exactly as in a staleness reopen. Returns false when the
// session is not converged (an adapting session will re-fit on its own).
func (s *Session) ReopenForDrift(observedNs float64, cores int) bool {
	if !s.done.Load() {
		return false
	}
	s.foldInstance()
	ccfg := s.conv.Config()
	if s.stale.enabled() {
		ccfg.ExtraRuns = s.stale.ExtraRuns
	} else {
		ccfg.ExtraRuns = DefaultStalenessConfig().ExtraRuns
	}
	if avail := s.eng.Machine().AvailableCores(); cores <= 0 || (avail >= 1 && cores > avail) {
		cores = avail
	}
	if cores >= 1 {
		ccfg.Cores = cores
	}
	s.conv = NewConvergence(ccfg)
	if s.reopenFrom != nil {
		s.cur = s.reopenFrom
	} else if s.best != nil {
		s.cur = s.best
	}
	s.parent = nil
	s.nextMut = Mutation{}
	s.reopenBar = observedNs
	s.dethroned = false
	s.expectNs = 0
	s.staleRun = 0
	s.driftReopens++
	s.done.Store(false)
	return true
}
