package cost

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/plan"
)

func TestScanCostScalesWithBytes(t *testing.T) {
	p := Default()
	small := p.ForWork(plan.OpSelect, algebra.Work{BytesSeqRead: 1 << 20}, 1<<20)
	large := p.ForWork(plan.OpSelect, algebra.Work{BytesSeqRead: 4 << 20}, 1<<20)
	if large.Ns <= small.Ns {
		t.Fatal("scan cost does not grow with bytes")
	}
	wantDelta := 3 * float64(1<<20) * p.ScanNsPerByte
	if got := large.Ns - small.Ns; got < wantDelta*0.99 || got > wantDelta*1.01 {
		t.Fatalf("delta = %f, want ~%f", got, wantDelta)
	}
}

func TestDispatchOverheadFloorsTinyOps(t *testing.T) {
	p := Default()
	e := p.ForWork(plan.OpConst, algebra.Work{}, 1<<20)
	if e.Ns < p.DispatchNs {
		t.Fatalf("tiny op cost %f below dispatch overhead %f", e.Ns, p.DispatchNs)
	}
}

func TestL3ResidencyDiscountsProbes(t *testing.T) {
	p := Default()
	w := algebra.Work{HashProbes: 1_000_000, FootprintBytes: 100 << 10}
	inCache := p.ForWork(plan.OpJoin, w, 200<<10)
	spilled := p.ForWork(plan.OpJoin, w, 50<<10)
	if inCache.Ns >= spilled.Ns {
		t.Fatal("L3-resident probes not cheaper than spilled probes")
	}
	ratio := spilled.Ns / inCache.Ns
	if ratio < 2 {
		t.Fatalf("cache effect too weak: ratio %f", ratio)
	}
}

func TestL3ResidencyDiscountsRandomAccess(t *testing.T) {
	p := Default()
	w := algebra.Work{BytesRandRead: 8 << 20, FootprintBytes: 100 << 10}
	inCache := p.ForWork(plan.OpFetch, w, 200<<10)
	spilled := p.ForWork(plan.OpFetch, w, 50<<10)
	if inCache.Ns >= spilled.Ns {
		t.Fatal("L3-resident random access not cheaper")
	}
}

func TestMemFracBounds(t *testing.T) {
	p := Default()
	streaming := p.ForWork(plan.OpSelect, algebra.Work{BytesSeqRead: 100 << 20}, 1<<20)
	if streaming.MemFrac < 0.8 {
		t.Fatalf("pure streaming MemFrac = %f, want near 1", streaming.MemFrac)
	}
	compute := p.ForWork(plan.OpSort, algebra.Work{CompareOps: 1 << 24}, 1<<20)
	if compute.MemFrac > 0.2 {
		t.Fatalf("pure compute MemFrac = %f, want near 0", compute.MemFrac)
	}
	if streaming.MemFrac > 1 || compute.MemFrac < 0 {
		t.Fatal("MemFrac out of [0,1]")
	}
}

func TestHashBuildChargedOnlyWhenBuilt(t *testing.T) {
	p := Default()
	built := p.ForWork(plan.OpJoin, algebra.Work{HashBuilds: 1_000_000, HashProbes: 10}, 1<<20)
	cached := p.ForWork(plan.OpJoin, algebra.Work{HashProbes: 10}, 1<<20)
	if built.Ns <= cached.Ns {
		t.Fatal("hash build not charged")
	}
}

func TestVectorwiseExchangeOverheadOnPackOnly(t *testing.T) {
	vw := Vectorwise()
	def := Default()
	w := algebra.Work{TuplesIn: 1_000_000, BytesSeqRead: 8_000_000, BytesWritten: 8_000_000}
	vwPack := vw.ForWork(plan.OpPack, w, 1<<20)
	defPack := def.ForWork(plan.OpPack, w, 1<<20)
	if vwPack.Ns <= defPack.Ns {
		t.Fatal("Vectorwise pack has no exchange overhead")
	}
	// Non-pack ops don't get the exchange surcharge.
	vwSel := vw.ForWork(plan.OpSelect, w, 1<<20)
	if vwSel.Ns >= vwPack.Ns {
		t.Fatal("exchange overhead leaked into non-pack op")
	}
}

func TestBytesReportedForBandwidthDemand(t *testing.T) {
	p := Default()
	// Working set fits L3: random accesses cost no memory traffic.
	w := algebra.Work{BytesSeqRead: 1000, BytesWritten: 500, BytesRandRead: 256, FootprintBytes: 100}
	e := p.ForWork(plan.OpSelect, w, 1<<20)
	if e.Bytes != 2000 { // 1000 + 2*500
		t.Fatalf("fitting Bytes = %f", e.Bytes)
	}
	// Spilled: each 8-byte random access pulls a 64-byte cache line.
	w.FootprintBytes = 1 << 30
	e = p.ForWork(plan.OpSelect, w, 1<<20)
	if e.Bytes != 2000+32*64 {
		t.Fatalf("spilled Bytes = %f", e.Bytes)
	}
}
