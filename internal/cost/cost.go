// Package cost converts the Work metrics reported by operator executions
// into virtual durations for the simulated machine. Parameters are
// calibrated against published per-core throughput of the Xeon generation in
// the paper's Table 1 and scaled consistently with the 1/100 data scale, so
// the *ratios* that drive every experiment (scan vs pack vs probe cost,
// L3-resident vs memory-resident hash probes, dispatch overhead vs operator
// cost) match the paper's platform.
package cost

import (
	"repro/internal/algebra"
	"repro/internal/plan"
)

// Params holds the cost-model coefficients. All times are virtual
// nanoseconds; rates are ns per byte / per tuple / per access.
type Params struct {
	// ScanNsPerByte charges sequential reads (~8 GB/s per core).
	ScanNsPerByte float64
	// WriteNsPerByte charges materialized output.
	WriteNsPerByte float64
	// RandNsL3 / RandNsMem charge one random 8-byte access when the target
	// working set fits / misses the shared L3.
	RandNsL3, RandNsMem float64
	// HashBuildNsPerTuple charges hash-table inserts.
	HashBuildNsPerTuple float64
	// HashProbeNsL3 / HashProbeNsMem charge probes by L3 residency of the
	// table — the mechanism behind the paper's 16 MB vs 64 MB inner-join
	// result (§4.1.2).
	HashProbeNsL3, HashProbeNsMem float64
	// CompareNs charges comparison-dominated work (sort, grouping).
	CompareNs float64
	// PackNsPerByte charges the exchange-union's data movement: pack is a
	// straight memcpy (~20 GB/s), far cheaper per byte than predicated
	// scans. Applied to a pack's total bytes in+out.
	PackNsPerByte float64
	// DispatchNs is the per-instruction interpreter/scheduler overhead; it
	// is what penalizes plan blow-up from over-partitioning.
	DispatchNs float64
	// ExchangeNsPerTuple adds per-tuple exchange-operator overhead on pack
	// operations; zero for the MonetDB-style engine, positive for the
	// Vectorwise comparator whose exchange operators the paper cites as a
	// speed-up limiter (§4.1.2).
	ExchangeNsPerTuple float64
}

// Default returns the MonetDB-style calibration. Predicated scans run at
// ~4 GB/s per core (predicate evaluation dominates pure streaming), writes
// slightly slower.
func Default() Params {
	return Params{
		ScanNsPerByte:       0.25,
		WriteNsPerByte:      0.35,
		RandNsL3:            3,
		RandNsMem:           25,
		HashBuildNsPerTuple: 14,
		HashProbeNsL3:       5,
		HashProbeNsMem:      22,
		CompareNs:           4,
		PackNsPerByte:       0.15,
		DispatchNs:          2_000,
		ExchangeNsPerTuple:  0,
	}
}

// Vectorwise returns the comparator calibration: pipelined vectorized
// execution is slightly faster per byte on scans, but exchange operators add
// per-tuple overhead and plan setup is costlier.
func Vectorwise() Params {
	p := Default()
	p.ScanNsPerByte = 0.22
	p.ExchangeNsPerTuple = 9
	p.DispatchNs = 6_000
	return p
}

// Estimate is a task-shaped cost: total duration at unit rate, the fraction
// of it bound on memory bandwidth, and the bytes moved (for bandwidth-demand
// accounting in the simulator).
type Estimate struct {
	Ns      float64
	MemFrac float64
	Bytes   float64
}

// ForWork estimates the execution of one operator given its Work metrics.
// l3Share is the simulated per-socket L3 capacity; an operator whose random
// working set fits keeps its random accesses cheap.
func (p Params) ForWork(op plan.OpCode, w algebra.Work, l3Share int64) Estimate {
	fits := w.FootprintBytes > 0 && w.FootprintBytes <= l3Share

	seqNs := float64(w.BytesSeqRead) * p.ScanNsPerByte
	writeNs := float64(w.BytesWritten) * p.WriteNsPerByte
	if op == plan.OpPack || op == plan.OpMergeSorted {
		moved := float64(w.BytesSeqRead + w.BytesWritten)
		seqNs = moved * p.PackNsPerByte
		writeNs = 0
	}

	randAccesses := float64(w.BytesRandRead) / 8
	randPer := p.RandNsMem
	if fits {
		randPer = p.RandNsL3
	}
	randNs := randAccesses * randPer

	probePer := p.HashProbeNsMem
	if fits {
		probePer = p.HashProbeNsL3
	}
	hashNs := float64(w.HashBuilds)*p.HashBuildNsPerTuple + float64(w.HashProbes)*probePer
	cmpNs := float64(w.CompareOps) * p.CompareNs

	exchangeNs := 0.0
	if op == plan.OpPack && p.ExchangeNsPerTuple > 0 {
		exchangeNs = float64(w.TuplesIn) * p.ExchangeNsPerTuple
	}

	total := seqNs + writeNs + randNs + hashNs + cmpNs + exchangeNs + p.DispatchNs

	// Memory-bound share: streaming bytes always, random accesses fully
	// when they miss cache, hash probes mostly when the table spills.
	memNs := seqNs + writeNs
	if fits {
		memNs += 0.15 * (randNs + hashNs)
	} else {
		memNs += 0.9 * (randNs + hashNs)
	}
	memFrac := 0.0
	if total > 0 {
		memFrac = memNs / total
	}
	if memFrac > 1 {
		memFrac = 1
	}

	// Bandwidth demand: writes cost double (read-for-ownership traffic on
	// write-allocate caches); random accesses that miss the L3 pull whole
	// cache lines (64 B per 8 B payload), while L3-resident accesses cost
	// no memory traffic at all — this asymmetry is what makes spilled hash
	// probes scale worse across many cores (§4.1.2).
	bytes := float64(w.BytesSeqRead + 2*w.BytesWritten)
	if !fits {
		bytes += (float64(w.BytesRandRead)/8 + float64(w.HashProbes)) * 64
	}
	return Estimate{Ns: total, MemFrac: memFrac, Bytes: bytes}
}
