// Package heuristic implements the paper's baseline: MonetDB-style static
// heuristic parallelization (HP, §4.2.1). A plan rewriter propagates a fixed
// number of range partitions — chosen up front from the thread count and the
// largest table — through every data-flow-dependent operator, parallelizing
// "all possible parallelizable operators" (unlike AP, which parallelizes
// only the observed-expensive ones). The result is the familiar mitosis +
// mergetable plan: k clones of the whole tainted pipeline with exchange
// unions only where a serial operator needs the combined value.
package heuristic

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/storage"
)

// Config controls the static parallelizer.
type Config struct {
	// Partitions is the fixed partition count (MonetDB uses the thread
	// count for in-memory data; the paper's experiments use 32).
	Partitions int
	// Table optionally names the partitioned table; empty selects the
	// largest table bound in the plan (the MonetDB heuristic).
	Table string
}

// Parallelize rewrites the serial plan into a statically parallelized plan
// with cfg.Partitions range partitions over the chosen table. The input
// plan is not modified.
func Parallelize(p *plan.Plan, cat *storage.Catalog, cfg Config) (*plan.Plan, error) {
	if cfg.Partitions < 2 {
		return p.Clone(), nil
	}
	target := cfg.Table
	if target == "" {
		target = largestBoundTable(p, cat)
	}
	if target == "" {
		return p.Clone(), nil
	}
	r := &rewriter{
		src:        p,
		cat:        cat,
		out:        plan.New(),
		k:          cfg.Partitions,
		target:     target,
		single:     map[plan.VarID]plan.VarID{},
		parted:     map[plan.VarID][]plan.VarID{},
		packed:     map[plan.VarID]plan.VarID{},
		taint:      map[plan.VarID]bool{},
		done:       map[int]bool{},
		localSpace: map[plan.VarID]bool{},
	}
	if err := r.run(); err != nil {
		return nil, err
	}
	if err := r.out.TopoSort(); err != nil {
		return nil, err
	}
	return r.out, nil
}

// largestBoundTable returns the largest-cardinality table referenced by the
// plan's binds.
func largestBoundTable(p *plan.Plan, cat *storage.Catalog) string {
	best := ""
	bestRows := -1
	for _, in := range p.Instrs {
		if in.Op != plan.OpBind {
			continue
		}
		aux := in.Aux.(plan.BindAux)
		t, err := cat.Table(aux.Table)
		if err != nil {
			continue
		}
		if t.Rows() > bestRows {
			bestRows = t.Rows()
			best = aux.Table
		}
	}
	return best
}

type rewriter struct {
	src    *plan.Plan
	cat    *storage.Catalog
	out    *plan.Plan
	k      int
	target string

	single map[plan.VarID]plan.VarID   // serial-value mapping
	parted map[plan.VarID][]plan.VarID // partitioned-value mapping
	packed map[plan.VarID]plan.VarID   // cache of materialized packs
	taint  map[plan.VarID]bool         // derived from the partitioned table
	done   map[int]bool                // source instrs already handled
	// localSpace marks parted source vars whose partition columns live in
	// partition-local row spaces (fresh zero-based heads with no global
	// offset): everything derived from pre-partitioned inputs. Row ids
	// produced in a local space can only be consumed by co-partitioned
	// clones and can never be packed — the alignment hazard of §2.3 made
	// explicit. Partitions created by slicing a single value (applyPart)
	// keep globally aligned heads and stay packable.
	localSpace map[plan.VarID]bool
}

func (r *rewriter) newVar(k plan.Kind) plan.VarID { return r.out.NewVar(k, "") }

// getSingle returns the serial variable for src var v, materializing an
// exchange union over its partitions if necessary (the mergetable step).
func (r *rewriter) getSingle(v plan.VarID) plan.VarID {
	if sv, ok := r.single[v]; ok {
		return sv
	}
	if pv, ok := r.packed[v]; ok {
		return pv
	}
	parts, ok := r.parted[v]
	if !ok {
		panic(fmt.Sprintf("heuristic: source var %d has no mapping", int(v)))
	}
	if r.localSpace[v] && r.src.KindOf(v) == plan.KindOids {
		panic(fmt.Sprintf("heuristic: var %d carries partition-local row ids and cannot be packed", int(v)))
	}
	kind := plan.KindColumn
	if r.src.KindOf(v) == plan.KindOids {
		kind = plan.KindOids
	}
	pv := r.newVar(kind)
	r.out.Append(&plan.Instr{Op: plan.OpPack, Args: parts, Rets: []plan.VarID{pv},
		Part: plan.FullPart(), Comment: "heuristic exchange union"})
	r.packed[v] = pv
	return pv
}

// isPartitioned reports whether any anchor argument of in carries partitions
// or taints from the target table.
func (r *rewriter) isPartitioned(in *plan.Instr) bool {
	for _, ai := range plan.SliceArgs(in.Op) {
		a := in.Args[ai]
		if _, ok := r.parted[a]; ok {
			return true
		}
		if r.taint[a] {
			return true
		}
	}
	return false
}

func (r *rewriter) run() error {
	for i, in := range r.src.Instrs {
		if r.done[i] {
			continue
		}
		if err := r.instr(i, in); err != nil {
			return err
		}
	}
	return nil
}

func (r *rewriter) instr(idx int, in *plan.Instr) error {
	switch in.Op {
	case plan.OpBind:
		aux := in.Aux.(plan.BindAux)
		nv := r.newVar(plan.KindColumn)
		r.out.Append(&plan.Instr{Op: plan.OpBind, Aux: aux, Rets: []plan.VarID{nv}, Part: plan.FullPart()})
		r.single[in.Rets[0]] = nv
		if aux.Table == r.target {
			r.taint[in.Rets[0]] = true
		}
		return nil

	case plan.OpGroupBy:
		if r.isPartitioned(in) {
			return r.groupByPartitioned(idx, in)
		}
		return r.copySerial(in)

	case plan.OpAggr:
		if r.isPartitioned(in) {
			return r.aggrPartitioned(in)
		}
		return r.copySerial(in)
	}

	if plan.BasicPartitionable(in.Op) && r.isPartitioned(in) {
		return r.basicPartitioned(in)
	}
	return r.copySerial(in)
}

// copySerial emits in unchanged, packing any partitioned argument first.
func (r *rewriter) copySerial(in *plan.Instr) error {
	args := make([]plan.VarID, len(in.Args))
	for i, a := range in.Args {
		args[i] = r.getSingle(a)
	}
	rets := make([]plan.VarID, len(in.Rets))
	for i, ret := range in.Rets {
		rets[i] = r.newVar(r.src.KindOf(ret))
		r.single[ret] = rets[i]
	}
	r.out.Append(&plan.Instr{Op: in.Op, Args: args, Rets: rets, Aux: in.Aux, Part: in.Part})
	return nil
}

// cloneArgs builds the argument list of clone i: anchor args use the i-th
// partition variable when partitioned upstream, or the serial variable with
// Part set when the partitioning starts at this operator. Returns the args
// and whether Part must be applied.
func (r *rewriter) cloneArgs(in *plan.Instr, i int) (args []plan.VarID, applyPart bool, err error) {
	anchors := map[int]bool{}
	for _, ai := range plan.SliceArgs(in.Op) {
		anchors[ai] = true
	}
	// When an anchor lives in a partition-local row space, every
	// partitioned argument of the clone must come from the same partition:
	// local row ids only make sense against their co-partitioned values.
	coPartition := false
	for _, ai := range plan.SliceArgs(in.Op) {
		if a := in.Args[ai]; r.localSpace[a] && r.parted[a] != nil {
			coPartition = true
		}
	}
	args = make([]plan.VarID, len(in.Args))
	partedAnchors, taintedAnchors := 0, 0
	for ai, a := range in.Args {
		switch {
		case anchors[ai] && r.parted[a] != nil:
			args[ai] = r.parted[a][i]
			partedAnchors++
		case anchors[ai] && r.taint[a]:
			args[ai] = r.getSingle(a)
			taintedAnchors++
		case coPartition && r.parted[a] != nil:
			args[ai] = r.parted[a][i]
		default:
			args[ai] = r.getSingle(a)
		}
	}
	if partedAnchors > 0 && taintedAnchors > 0 {
		// One anchor pre-partitioned, another needing Part slicing: the two
		// would disagree on ranges. Builder plans co-partition anchors, so
		// this indicates an unsupported shape.
		return nil, false, fmt.Errorf("heuristic: %s mixes partitioned and tainted anchors", in.Op)
	}
	return args, taintedAnchors > 0, nil
}

// basicPartitioned clones in per partition.
func (r *rewriter) basicPartitioned(in *plan.Instr) error {
	parts := plan.FullPart().SplitN(r.k)
	cloneRets := make([][]plan.VarID, len(in.Rets))
	for ri := range in.Rets {
		cloneRets[ri] = make([]plan.VarID, r.k)
	}
	sliced := false
	for i := 0; i < r.k; i++ {
		args, applyPart, err := r.cloneArgs(in, i)
		if err != nil {
			return err
		}
		sliced = applyPart
		rets := make([]plan.VarID, len(in.Rets))
		for ri, ret := range in.Rets {
			rets[ri] = r.newVar(r.src.KindOf(ret))
			cloneRets[ri][i] = rets[ri]
		}
		part := plan.FullPart()
		if applyPart {
			part = parts[i]
		}
		r.out.Append(&plan.Instr{Op: in.Op, Args: args, Rets: rets, Aux: in.Aux,
			Part: part, Comment: "heuristic clone"})
	}
	for ri, ret := range in.Rets {
		r.parted[ret] = cloneRets[ri]
		r.taint[ret] = true
		// Slice-partitioned clones keep globally aligned heads (the
		// interpreter re-seqs their outputs onto the base column, §2.3);
		// clones built from pre-partitioned inputs live in partition-local
		// row spaces, except a join's inner match list, whose values are
		// global oids into the shared inner.
		if !sliced && !(in.Op == plan.OpJoin && ri == 1) {
			r.localSpace[ret] = true
		}
	}
	return nil
}

// aggrPartitioned emits k scalar-aggregate clones, packs the partials and
// merges them.
func (r *rewriter) aggrPartitioned(in *plan.Instr) error {
	aux := in.Aux.(plan.AggrAux)
	parts := plan.FullPart().SplitN(r.k)
	partials := make([]plan.VarID, r.k)
	for i := 0; i < r.k; i++ {
		args, applyPart, err := r.cloneArgs(in, i)
		if err != nil {
			return err
		}
		part := plan.FullPart()
		if applyPart {
			part = parts[i]
		}
		pv := r.newVar(plan.KindScalar)
		partials[i] = pv
		r.out.Append(&plan.Instr{Op: plan.OpAggr, Args: args, Rets: []plan.VarID{pv},
			Aux: aux, Part: part, Comment: "heuristic partial aggregate"})
	}
	packed := r.newVar(plan.KindColumn)
	r.out.Append(&plan.Instr{Op: plan.OpPack, Args: partials, Rets: []plan.VarID{packed},
		Part: plan.FullPart(), Comment: "pack of partial aggregates"})
	merged := r.newVar(plan.KindScalar)
	r.out.Append(&plan.Instr{Op: plan.OpMergeAggr, Args: []plan.VarID{packed},
		Rets: []plan.VarID{merged}, Aux: aux, Part: plan.FullPart(), Comment: "merge of partial aggregates"})
	r.single[in.Rets[0]] = merged
	return nil
}

// groupByPartitioned emits the partial-grouping scheme for a group-by and
// absorbs its dependent aggregates and key extraction.
func (r *rewriter) groupByPartitioned(idx int, in *plan.Instr) error {
	gOut := in.Rets[0]
	var aggrs []*plan.Instr
	var aggrIdx []int
	var keyOps []*plan.Instr
	var keyIdx []int
	for _, ci := range r.src.Consumers(gOut) {
		c := r.src.Instrs[ci]
		switch c.Op {
		case plan.OpAggrGrouped:
			aggrs = append(aggrs, c)
			aggrIdx = append(aggrIdx, ci)
		case plan.OpGroupKeys:
			keyOps = append(keyOps, c)
			keyIdx = append(keyIdx, ci)
		default:
			// Unsupported consumer: fall back to a serial group-by over the
			// packed input.
			return r.copySerial(in)
		}
	}
	if len(aggrs) == 0 {
		return r.copySerial(in)
	}

	parts := plan.FullPart().SplitN(r.k)
	gClones := make([]plan.VarID, r.k)
	kClones := make([]plan.VarID, r.k)
	for i := 0; i < r.k; i++ {
		args, applyPart, err := r.cloneArgs(in, i)
		if err != nil {
			return err
		}
		part := plan.FullPart()
		if applyPart {
			part = parts[i]
		}
		gv := r.newVar(plan.KindGroups)
		gClones[i] = gv
		r.out.Append(&plan.Instr{Op: plan.OpGroupBy, Args: args, Rets: []plan.VarID{gv},
			Part: part, Comment: "heuristic partial groupby"})
		kv := r.newVar(plan.KindColumn)
		kClones[i] = kv
		r.out.Append(&plan.Instr{Op: plan.OpGroupKeys, Args: []plan.VarID{gv},
			Rets: []plan.VarID{kv}, Part: plan.FullPart()})
	}
	keysPack := r.newVar(plan.KindColumn)
	r.out.Append(&plan.Instr{Op: plan.OpPack, Args: kClones, Rets: []plan.VarID{keysPack},
		Part: plan.FullPart(), Comment: "pack of partial group keys"})

	firstKeys := plan.VarID(-1)
	for j, a := range aggrs {
		aux := a.Aux.(plan.AggrAux)
		partials := make([]plan.VarID, r.k)
		for i := 0; i < r.k; i++ {
			// vals arg co-partitioned like the group-by keys.
			var valsArg plan.VarID
			srcVals := a.Args[0]
			part := plan.FullPart()
			if pv, ok := r.parted[srcVals]; ok {
				valsArg = pv[i]
			} else {
				valsArg = r.getSingle(srcVals)
				part = parts[i]
			}
			av := r.newVar(plan.KindColumn)
			partials[i] = av
			r.out.Append(&plan.Instr{Op: plan.OpAggrGrouped,
				Args: []plan.VarID{valsArg, gClones[i]}, Rets: []plan.VarID{av},
				Aux: aux, Part: part, Comment: "heuristic partial grouped aggregate"})
		}
		aggPack := r.newVar(plan.KindColumn)
		r.out.Append(&plan.Instr{Op: plan.OpPack, Args: partials, Rets: []plan.VarID{aggPack},
			Part: plan.FullPart(), Comment: "pack of partial aggregates"})
		mk := r.newVar(plan.KindColumn)
		ma := r.newVar(plan.KindColumn)
		r.out.Append(&plan.Instr{Op: plan.OpGroupMerge, Args: []plan.VarID{keysPack, aggPack},
			Rets: []plan.VarID{mk, ma}, Aux: aux, Part: plan.FullPart(), Comment: "group merge"})
		r.single[a.Rets[0]] = ma
		if firstKeys < 0 {
			firstKeys = mk
		}
		r.done[aggrIdx[j]] = true
	}
	for j, kop := range keyOps {
		r.single[kop.Rets[0]] = firstKeys
		r.done[keyIdx[j]] = true
	}
	r.done[idx] = true
	return nil
}

// PlanStats summarizes a plan for Table 5-style reporting.
type PlanStats struct {
	Selects int
	Joins   int
	Packs   int
	Instrs  int
	MaxDOP  int
}

// Stats computes plan statistics.
func Stats(p *plan.Plan) PlanStats {
	return PlanStats{
		Selects: p.CountOps(plan.OpSelect) + p.CountOps(plan.OpSelectCand) + p.CountOps(plan.OpLikeSelect),
		Joins:   p.CountOps(plan.OpJoin),
		Packs:   p.CountOps(plan.OpPack),
		Instrs:  len(p.Instrs),
		MaxDOP:  p.MaxDOP(),
	}
}
