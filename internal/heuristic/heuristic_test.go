package heuristic

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testMachine() sim.Config {
	return sim.Config{
		Name: "test", Sockets: 2, PhysCoresPerSocket: 4, SMT: 2, SpeedFactor: 1,
		L3PerSocket: 64 << 10, BWPerSocket: 1e9, SMTFactor: 0.55, NUMAFactor: 1.2,
	}
}

func testCatalog(n int) *storage.Catalog {
	ship := make([]int64, n)
	disc := make([]int64, n)
	price := make([]int64, n)
	key := make([]int64, n)
	for i := 0; i < n; i++ {
		ship[i] = int64(i % 365)
		disc[i] = int64(i % 11)
		price[i] = int64(100 + i%900)
		key[i] = int64(i % 7)
	}
	t := storage.NewTable("lineitem")
	t.MustAddColumn(storage.NewIntColumn("l_shipdate", ship))
	t.MustAddColumn(storage.NewIntColumn("l_discount", disc))
	t.MustAddColumn(storage.NewIntColumn("l_extendedprice", price))
	t.MustAddColumn(storage.NewIntColumn("l_key", key))

	m := 97
	pk := make([]int64, m)
	pv := make([]int64, m)
	for i := 0; i < m; i++ {
		pk[i] = int64(i)
		pv[i] = int64(i * 3)
	}
	pt := storage.NewTable("part")
	pt.MustAddColumn(storage.NewIntColumn("p_partkey", pk))
	pt.MustAddColumn(storage.NewIntColumn("p_value", pv))

	cat := storage.NewCatalog()
	cat.MustAdd(t)
	cat.MustAdd(pt)
	return cat
}

func run(t *testing.T, cat *storage.Catalog, p *plan.Plan) ([]exec.Value, *exec.Profile) {
	t.Helper()
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	res, prof, err := eng.Execute(p)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, p)
	}
	return res, prof
}

// fullQuery exercises selects, candidate refinement, fetches, a join against
// a dimension table, vector arithmetic, group-by with aggregates, and a
// scalar sum — every rewriter path at once.
func fullQuery() *plan.Plan {
	b := plan.NewBuilder()
	ship := b.Bind("lineitem", "l_shipdate")
	disc := b.Bind("lineitem", "l_discount")
	price := b.Bind("lineitem", "l_extendedprice")
	key := b.Bind("lineitem", "l_key")
	pkey := b.Bind("part", "p_partkey")
	pval := b.Bind("part", "p_value")

	s1 := b.Select(ship, algebra.Between(50, 250))
	s2 := b.SelectCand(disc, s1, algebra.Between(2, 9))
	d := b.Fetch(s2, disc)
	pr := b.Fetch(s2, price)
	k := b.Fetch(s2, key)
	rev := b.CalcVV(algebra.CalcMul, pr, d)

	lo, ro := b.Join(k, pkey)
	pv := b.Fetch(ro, pval)
	revj := b.FetchPos(lo, rev)
	prof := b.CalcVV(algebra.CalcAdd, revj, pv)

	g := b.GroupBy(b.FetchPos(lo, k))
	sums := b.AggrGrouped(algebra.AggrSum, prof, g)
	keys := b.GroupKeys(g)
	total := b.Aggr(algebra.AggrSum, prof)
	b.Result(keys, sums, total)
	return b.Plan()
}

func TestHeuristicPreservesResults(t *testing.T) {
	cat := testCatalog(20_000)
	serial := fullQuery()
	want, _ := run(t, cat, serial)
	for _, k := range []int{2, 4, 8, 32} {
		hp, err := Parallelize(serial, cat, Config{Partitions: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := hp.Validate(); err != nil {
			t.Fatalf("k=%d invalid: %v\n%s", k, err, hp)
		}
		got, _ := run(t, cat, hp)
		if !exec.ResultsEqual(want, got) {
			t.Fatalf("k=%d: HP results diverge from serial", k)
		}
	}
}

func TestHeuristicParallelizesEverything(t *testing.T) {
	cat := testCatalog(20_000)
	serial := fullQuery()
	hp, err := Parallelize(serial, cat, Config{Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := Stats(hp)
	// All lineitem-lineage operators cloned 8 ways: select + selectcand.
	if s.Selects != 16 {
		t.Fatalf("selects = %d, want 16", s.Selects)
	}
	if s.Joins != 8 {
		t.Fatalf("joins = %d, want 8", s.Joins)
	}
	if hp.MaxDOP() != 8 {
		t.Fatalf("DOP = %d", hp.MaxDOP())
	}
	if hp.CountOps(plan.OpGroupMerge) != 1 {
		t.Fatalf("group merges = %d", hp.CountOps(plan.OpGroupMerge))
	}
	if hp.CountOps(plan.OpMergeAggr) != 1 {
		t.Fatalf("scalar merges = %d", hp.CountOps(plan.OpMergeAggr))
	}
	// Join clones share the serial inner variable (single hash build).
	var joinInner []plan.VarID
	for _, in := range hp.Instrs {
		if in.Op == plan.OpJoin {
			joinInner = append(joinInner, in.Args[1])
		}
	}
	for _, v := range joinInner[1:] {
		if v != joinInner[0] {
			t.Fatal("join clones use different inner variables")
		}
	}
}

func TestHeuristicSpeedsUpLargeScan(t *testing.T) {
	cat := testCatalog(400_000)
	serial := fullQuery()
	_, serialProf := run(t, cat, serial)
	hp, err := Parallelize(serial, cat, Config{Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, hpProf := run(t, cat, hp)
	speedup := serialProf.Makespan() / hpProf.Makespan()
	if speedup < 2 {
		t.Fatalf("HP speedup = %.2f, want > 2", speedup)
	}
}

func TestHeuristicUtilizationExceedsAdaptiveStyleDOP(t *testing.T) {
	// HP uses more partitions than needed — utilization should be clearly
	// higher than a serial run's (the Table 5 phenomenon is covered by the
	// benches; here we check the direction).
	cat := testCatalog(200_000)
	serial := fullQuery()
	_, sp := run(t, cat, serial)
	hp, _ := Parallelize(serial, cat, Config{Partitions: 32})
	_, hpp := run(t, cat, hp)
	if hpp.Utilization() <= sp.Utilization() {
		t.Fatalf("HP utilization %.3f not above serial %.3f", hpp.Utilization(), sp.Utilization())
	}
}

func TestHeuristicPartitionsRequestedTable(t *testing.T) {
	cat := testCatalog(5_000)
	b := plan.NewBuilder()
	pval := b.Bind("part", "p_value")
	s := b.Select(pval, algebra.AtLeast(10))
	f := b.Fetch(s, pval)
	sum := b.Aggr(algebra.AggrSum, f)
	b.Result(sum)
	serial := b.Plan()
	want, _ := run(t, cat, serial)

	hp, err := Parallelize(serial, cat, Config{Partitions: 4, Table: "part"})
	if err != nil {
		t.Fatal(err)
	}
	if hp.CountOps(plan.OpSelect) != 4 {
		t.Fatalf("selects = %d", hp.CountOps(plan.OpSelect))
	}
	got, _ := run(t, cat, hp)
	if !exec.ResultsEqual(want, got) {
		t.Fatal("results diverged")
	}
}

func TestHeuristicUntaintedPlanStaysSerial(t *testing.T) {
	cat := testCatalog(5_000)
	b := plan.NewBuilder()
	pval := b.Bind("part", "p_value")
	s := b.Select(pval, algebra.AtLeast(10))
	f := b.Fetch(s, pval)
	sum := b.Aggr(algebra.AggrSum, f)
	b.Result(sum)
	serial := b.Plan()

	// When the configured partition table is never bound by the plan, the
	// rewrite keeps everything serial.
	hp, err := Parallelize(serial, cat, Config{Partitions: 8, Table: "lineitem"})
	if err != nil {
		t.Fatal(err)
	}
	if hp.MaxDOP() != 1 {
		t.Fatalf("untainted plan got DOP %d", hp.MaxDOP())
	}
	// With no table named, the largest *bound* table (part) is partitioned.
	hp2, err := Parallelize(serial, cat, Config{Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if hp2.MaxDOP() != 8 {
		t.Fatalf("largest-bound-table heuristic gave DOP %d", hp2.MaxDOP())
	}
}

func TestHeuristicPartitionsLessThanTwoIsIdentity(t *testing.T) {
	cat := testCatalog(100)
	serial := fullQuery()
	hp, err := Parallelize(serial, cat, Config{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hp.Instrs) != len(serial.Instrs) {
		t.Fatal("k=1 should be a plain clone")
	}
}

func TestStats(t *testing.T) {
	p := fullQuery()
	s := Stats(p)
	if s.Selects != 2 || s.Joins != 1 || s.Instrs != len(p.Instrs) || s.MaxDOP != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
