package algebra

import (
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func TestGroupByFirstAppearanceOrder(t *testing.T) {
	keys := col(5, 3, 5, 9, 3, 5)
	g, w := GroupBy(keys)
	if g.NGroups() != 3 {
		t.Fatalf("NGroups = %d", g.NGroups())
	}
	wantKeys := []int64{5, 3, 9}
	for i, k := range wantKeys {
		if g.Keys.Data().At(i) != k {
			t.Fatalf("Keys[%d] = %d, want %d", i, g.Keys.Data().At(i), k)
		}
	}
	wantGids := []int64{0, 1, 0, 2, 1, 0}
	for i, gid := range wantGids {
		if g.GIDs[i] != gid {
			t.Fatalf("GIDs[%d] = %d, want %d", i, g.GIDs[i], gid)
		}
	}
	if w.TuplesIn != 6 || w.TuplesOut != 3 {
		t.Fatalf("work = %+v", w)
	}
}

func TestAggrGrouped(t *testing.T) {
	keys := col(1, 2, 1, 2, 1)
	vals := col(10, 20, 30, 40, 50)
	g, _ := GroupBy(keys)
	sums, _ := AggrGrouped(AggrSum, vals, g)
	if sums.Data().At(0) != 90 || sums.Data().At(1) != 60 {
		t.Fatalf("sums = %v", sums.Values())
	}
	counts, _ := AggrGrouped(AggrCount, vals, g)
	if counts.Data().At(0) != 3 || counts.Data().At(1) != 2 {
		t.Fatalf("counts = %v", counts.Values())
	}
	mins, _ := AggrGrouped(AggrMin, vals, g)
	if mins.Data().At(0) != 10 || mins.Data().At(1) != 20 {
		t.Fatalf("mins = %v", mins.Values())
	}
	maxs, _ := AggrGrouped(AggrMax, vals, g)
	if maxs.Data().At(0) != 50 || maxs.Data().At(1) != 40 {
		t.Fatalf("maxs = %v", maxs.Values())
	}
}

func TestAggrGroupedMisalignedPanics(t *testing.T) {
	g, _ := GroupBy(col(1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned AggrGrouped did not panic")
		}
	}()
	AggrGrouped(AggrSum, col(1, 2, 3), g)
}

func TestScalarAggr(t *testing.T) {
	c := col(4, -1, 7)
	if s, _ := Aggr(AggrSum, c); s != 10 {
		t.Fatalf("sum = %d", s)
	}
	if n, _ := Aggr(AggrCount, c); n != 3 {
		t.Fatalf("count = %d", n)
	}
	if m, _ := Aggr(AggrMin, c); m != -1 {
		t.Fatalf("min = %d", m)
	}
	if m, _ := Aggr(AggrMax, c); m != 7 {
		t.Fatalf("max = %d", m)
	}
	if s, _ := Aggr(AggrSum, col()); s != 0 {
		t.Fatalf("sum of empty = %d", s)
	}
}

func TestMergeScalarsIgnoresEmptySentinels(t *testing.T) {
	// Partition 2 was empty: its min partial is the identity sentinel.
	p, _ := PackScalars("mins", []int64{7, minEmpty, 3})
	got, _ := MergeScalars(AggrMin, p)
	if got != 3 {
		t.Fatalf("merged min = %d, want 3", got)
	}
	allEmpty, _ := PackScalars("mins", []int64{minEmpty})
	if got, _ := MergeScalars(AggrMin, allEmpty); got != minEmpty {
		t.Fatalf("merge of all-empty = %d, want the empty sentinel", got)
	}
	sums, _ := PackScalars("sums", []int64{5, 0, 7})
	if got, _ := MergeScalars(AggrSum, sums); got != 12 {
		t.Fatalf("merged sum = %d", got)
	}
	counts, _ := PackScalars("counts", []int64{2, 3})
	if got, _ := MergeScalars(AggrCount, counts); got != 5 {
		t.Fatalf("merged count = %d", got)
	}
}

// Property: scalar aggregation over partitions + merge equals single-pass
// aggregation (invariant 6 of DESIGN.md).
func TestScalarAggrPartitionEquivalence(t *testing.T) {
	f := func(vals []int64, cutRaw uint8) bool {
		c := storage.NewIntColumn("v", vals)
		cut := 0
		if len(vals) > 0 {
			cut = int(cutRaw) % (len(vals) + 1)
		}
		for _, fn := range []AggrFunc{AggrSum, AggrCount, AggrMin, AggrMax} {
			serial, _ := Aggr(fn, c)
			p1, _ := Aggr(fn, c.View(0, cut))
			p2, _ := Aggr(fn, c.View(cut, len(vals)))
			packed, _ := PackScalars("p", []int64{p1, p2})
			merged, _ := MergeScalars(fn, packed)
			if merged != serial {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: grouped aggregation over partitions + GroupMerge equals the
// serial grouped aggregation, including key order — the advanced-mutation
// correctness invariant (Figure 6).
func TestGroupedAggrPartitionEquivalence(t *testing.T) {
	f := func(pairs []uint8, cutRaw uint8) bool {
		n := len(pairs)
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i, p := range pairs {
			keys[i] = int64(p % 5)
			vals[i] = int64(p)
		}
		kc := storage.NewIntColumn("k", keys)
		vc := storage.NewIntColumn("v", vals)

		gs, _ := GroupBy(kc)
		serialAgg, _ := AggrGrouped(AggrSum, vc, gs)

		cut := 0
		if n > 0 {
			cut = int(cutRaw) % (n + 1)
		}
		var keyParts, aggParts []*storage.Column
		for _, span := range [][2]int{{0, cut}, {cut, n}} {
			gk, _ := GroupBy(kc.View(span[0], span[1]))
			ga, _ := AggrGrouped(AggrSum, vc.View(span[0], span[1]), gk)
			keyParts = append(keyParts, gk.Keys)
			aggParts = append(aggParts, ga)
		}
		pk, _ := PackColumns(keyParts)
		pa, _ := PackColumns(aggParts)
		mk, ma, _ := GroupMerge(AggrSum, pk, pa)

		if mk.Len() != gs.NGroups() {
			return false
		}
		for i := 0; i < mk.Len(); i++ {
			if mk.Data().At(i) != gs.Keys.Data().At(i) {
				return false
			}
			if ma.Data().At(i) != serialAgg.Data().At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupMergeMinMaxAndCount(t *testing.T) {
	keys, _ := PackScalars("k", []int64{1, 2, 1, 2})
	minP, _ := PackScalars("m", []int64{5, 9, 3, 11})
	k, m, _ := GroupMerge(AggrMin, keys, minP)
	if k.Len() != 2 || m.Data().At(0) != 3 || m.Data().At(1) != 9 {
		t.Fatalf("min merge: keys=%v vals=%v", k.Values(), m.Values())
	}
	cntP, _ := PackScalars("c", []int64{2, 3, 4, 5})
	_, c, _ := GroupMerge(AggrCount, keys, cntP)
	if c.Data().At(0) != 6 || c.Data().At(1) != 8 {
		t.Fatalf("count merge = %v", c.Values())
	}
	maxP, _ := PackScalars("x", []int64{5, 9, 3, 11})
	_, x, _ := GroupMerge(AggrMax, keys, maxP)
	if x.Data().At(0) != 5 || x.Data().At(1) != 11 {
		t.Fatalf("max merge = %v", x.Values())
	}
}

func TestGroupMergeMisalignedPanics(t *testing.T) {
	keys, _ := PackScalars("k", []int64{1})
	vals, _ := PackScalars("v", []int64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned GroupMerge did not panic")
		}
	}()
	GroupMerge(AggrSum, keys, vals)
}

func TestAggrFuncStringsAndMerge(t *testing.T) {
	if AggrSum.String() != "sum" || AggrCount.String() != "count" ||
		AggrMin.String() != "min" || AggrMax.String() != "max" {
		t.Fatal("aggregate names wrong")
	}
	if AggrCount.MergeFunc() != AggrSum {
		t.Fatal("count partials must merge by summation")
	}
	if AggrMin.MergeFunc() != AggrMin || AggrSum.MergeFunc() != AggrSum {
		t.Fatal("merge funcs wrong")
	}
}
