package algebra

import (
	"repro/internal/storage"
	"repro/internal/vec"
)

// PackColumns is the exchange-union operator (MonetDB's mat.pack) over
// materialized columns: it concatenates the partition outputs in argument
// order into one column with a fresh dense head. Argument order must be
// partition order; §2.3 shows why — the pack must "maintain the correct
// ordering to avoid the incorrect results". Its cost is pure data movement,
// which is why low-selectivity inputs make packs expensive and trigger the
// medium mutation.
func PackColumns(parts []*storage.Column) (*storage.Column, Work) {
	vecs := make([]*vec.Vector, len(parts))
	var tuplesIn int64
	name := "pack"
	for i, p := range parts {
		vecs[i] = p.Data()
		tuplesIn += int64(p.Len())
		if i == 0 {
			name = p.Name()
		}
	}
	data := vec.Concat(vecs...)
	w := Work{
		BytesSeqRead:  tuplesIn * 8,
		BytesWritten:  data.Bytes(),
		TuplesIn:      tuplesIn,
		TuplesOut:     int64(data.Len()),
		MemClaimBytes: data.Bytes(),
	}
	return storage.NewColumn(name, 0, data), w
}

// PackColumnsView is the zero-copy exchange fast path: when the executor had
// the pack's sibling partition clones write their disjoint ranges of one
// shared result buffer, the pack is an O(1) view over that buffer with a
// fresh dense head — "read only slices ... no data copying involved" (§2.3)
// applied to the union side of the exchange. data must be the fully written
// shared buffer, in partition order. The Work record reflects that no data
// moves: the cost model charges only dispatch (plus per-tuple exchange
// overhead on comparator calibrations), so adaptation sees the exchange for
// what it now costs.
func PackColumnsView(name string, data *vec.Vector, tuplesIn int64) (*storage.Column, Work) {
	w := Work{
		TuplesIn:  tuplesIn,
		TuplesOut: int64(data.Len()),
	}
	return storage.NewColumn(name, 0, data), w
}

// PackOids concatenates partition oid vectors in partition order.
func PackOids(parts [][]int64) ([]int64, Work) {
	return PackOidsInto(nil, parts)
}

// PackOidsInto is PackOids appending into dst's storage (dst[:0]); the
// executor passes the previous invocation's output buffer of the same cached
// instruction. A nil dst reproduces PackOids' allocation exactly.
func PackOidsInto(dst []int64, parts [][]int64) ([]int64, Work) {
	var tuplesIn int64
	for _, p := range parts {
		tuplesIn += int64(len(p))
	}
	out := dst[:0]
	if cap(out) < int(tuplesIn) {
		out = make([]int64, 0, tuplesIn)
	}
	for _, p := range parts {
		out = append(out, p...)
	}
	w := Work{
		BytesSeqRead:  tuplesIn * 8,
		BytesWritten:  int64(len(out)) * 8,
		TuplesIn:      tuplesIn,
		TuplesOut:     int64(len(out)),
		MemClaimBytes: int64(len(out)) * 8,
	}
	return out, w
}

// PackScalars packs partial scalar aggregates into a small column, the shape
// MonetDB's Q14 plan uses (mat.pack of partial aggr.sum results, Figure 7).
// It copies partials defensively: callers may reuse the slice afterwards.
func PackScalars(name string, partials []int64) (*storage.Column, Work) {
	out := make([]int64, len(partials))
	copy(out, partials)
	return PackScalarsOwned(name, out)
}

// PackScalarsOwned is PackScalars taking ownership of partials: the caller
// transfers the slice and must not write it afterwards (the column aliases
// it). The executor uses this for its freshly gathered partials so the hot
// aggregate-merge path copies the values once, not twice.
func PackScalarsOwned(name string, partials []int64) (*storage.Column, Work) {
	w := Work{
		BytesSeqRead:  int64(len(partials)) * 8,
		BytesWritten:  int64(len(partials)) * 8,
		TuplesIn:      int64(len(partials)),
		TuplesOut:     int64(len(partials)),
		MemClaimBytes: int64(len(partials)) * 8,
	}
	return storage.NewIntColumn(name, partials), w
}
