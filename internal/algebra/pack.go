package algebra

import (
	"repro/internal/storage"
	"repro/internal/vec"
)

// PackColumns is the exchange-union operator (MonetDB's mat.pack) over
// materialized columns: it concatenates the partition outputs in argument
// order into one column with a fresh dense head. Argument order must be
// partition order; §2.3 shows why — the pack must "maintain the correct
// ordering to avoid the incorrect results". Its cost is pure data movement,
// which is why low-selectivity inputs make packs expensive and trigger the
// medium mutation.
func PackColumns(parts []*storage.Column) (*storage.Column, Work) {
	vecs := make([]*vec.Vector, len(parts))
	var tuplesIn int64
	name := "pack"
	for i, p := range parts {
		vecs[i] = p.Data()
		tuplesIn += int64(p.Len())
		if i == 0 {
			name = p.Name()
		}
	}
	data := vec.Concat(vecs...)
	w := Work{
		BytesSeqRead:  tuplesIn * 8,
		BytesWritten:  data.Bytes(),
		TuplesIn:      tuplesIn,
		TuplesOut:     int64(data.Len()),
		MemClaimBytes: data.Bytes(),
	}
	return storage.NewColumn(name, 0, data), w
}

// PackOids concatenates partition oid vectors in partition order.
func PackOids(parts [][]int64) ([]int64, Work) {
	out := vec.ConcatInt64(parts...)
	var tuplesIn int64
	for _, p := range parts {
		tuplesIn += int64(len(p))
	}
	w := Work{
		BytesSeqRead:  tuplesIn * 8,
		BytesWritten:  int64(len(out)) * 8,
		TuplesIn:      tuplesIn,
		TuplesOut:     int64(len(out)),
		MemClaimBytes: int64(len(out)) * 8,
	}
	return out, w
}

// PackScalars packs partial scalar aggregates into a small column, the shape
// MonetDB's Q14 plan uses (mat.pack of partial aggr.sum results, Figure 7).
func PackScalars(name string, partials []int64) (*storage.Column, Work) {
	out := make([]int64, len(partials))
	copy(out, partials)
	w := Work{
		BytesSeqRead:  int64(len(partials)) * 8,
		BytesWritten:  int64(len(out)) * 8,
		TuplesIn:      int64(len(partials)),
		TuplesOut:     int64(len(out)),
		MemClaimBytes: int64(len(out)) * 8,
	}
	return storage.NewIntColumn(name, out), w
}
