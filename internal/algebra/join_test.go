package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(outerVals, innerVals []int64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Shrink the value domain so matches actually occur.
		for i := range outerVals {
			outerVals[i] = outerVals[i]%7 + 1
		}
		for i := range innerVals {
			innerVals[i] = innerVals[i]%7 + 1
		}
		outer := storage.NewIntColumn("o", outerVals)
		inner := storage.NewIntColumn("i", innerVals)
		inner.DropHashes()
		lo, ro, _ := HashJoin(outer, inner)
		nlo, nro := NestedLoopJoin(outer, inner)
		if len(lo) != len(nlo) {
			return false
		}
		// Hash join emits per outer tuple in scan order; inner match order
		// within one outer tuple follows insertion order, same as nested loop.
		for i := range lo {
			if lo[i] != nlo[i] || ro[i] != nro[i] {
				return false
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashJoinBuildCached(t *testing.T) {
	outer := storage.NewIntColumn("o", []int64{1, 2, 3, 2})
	inner := storage.NewIntColumn("i", []int64{2, 3})
	inner.DropHashes()
	_, _, w1 := HashJoin(outer, inner)
	if w1.HashBuilds != 2 {
		t.Fatalf("first join HashBuilds = %d, want 2", w1.HashBuilds)
	}
	_, _, w2 := HashJoin(outer, inner)
	if w2.HashBuilds != 0 {
		t.Fatalf("second join HashBuilds = %d, want 0 (cached)", w2.HashBuilds)
	}
	if w2.HashProbes != 4 {
		t.Fatalf("HashProbes = %d, want 4", w2.HashProbes)
	}
}

// Property: partitioning the outer input and packing the clone outputs in
// partition order reproduces the serial join — the join basic mutation
// (Figure 4).
func TestHashJoinOuterPartitionEquivalence(t *testing.T) {
	f := func(outerVals, innerVals []int64, cutRaw uint8) bool {
		for i := range outerVals {
			outerVals[i] = outerVals[i]%9 + 1
		}
		for i := range innerVals {
			innerVals[i] = innerVals[i]%9 + 1
		}
		outer := storage.NewIntColumn("o", outerVals)
		inner := storage.NewIntColumn("i", innerVals)
		inner.DropHashes()
		slo, sro, _ := HashJoin(outer, inner)
		cut := 0
		if len(outerVals) > 0 {
			cut = int(cutRaw) % (len(outerVals) + 1)
		}
		l1, r1, _ := HashJoin(outer.View(0, cut), inner)
		l2, r2, _ := HashJoin(outer.View(cut, len(outerVals)), inner)
		plo, _ := PackOids([][]int64{l1, l2})
		pro, _ := PackOids([][]int64{r1, r2})
		if len(plo) != len(slo) {
			return false
		}
		for i := range plo {
			if plo[i] != slo[i] || pro[i] != sro[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashJoinEmptyInputs(t *testing.T) {
	outer := storage.NewIntColumn("o", nil)
	inner := storage.NewIntColumn("i", []int64{1})
	inner.DropHashes()
	lo, ro, _ := HashJoin(outer, inner)
	if len(lo) != 0 || len(ro) != 0 {
		t.Fatalf("join of empty outer returned %v %v", lo, ro)
	}
	outer2 := storage.NewIntColumn("o2", []int64{1})
	inner2 := storage.NewIntColumn("i2", nil)
	inner2.DropHashes()
	lo2, ro2, _ := HashJoin(outer2, inner2)
	if len(lo2) != 0 || len(ro2) != 0 {
		t.Fatalf("join with empty inner returned %v %v", lo2, ro2)
	}
}

func TestHashFootprintScalesWithInner(t *testing.T) {
	small := storage.NewIntColumn("s", make([]int64, 10))
	large := storage.NewIntColumn("l", make([]int64, 1000))
	if hashFootprint(small) >= hashFootprint(large) {
		t.Fatal("hash footprint does not grow with inner size")
	}
}
