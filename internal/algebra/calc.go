package algebra

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/vec"
)

// CalcOp enumerates vectorized arithmetic operators (MonetDB's batcalc.*).
type CalcOp int

const (
	// CalcAdd computes a + b.
	CalcAdd CalcOp = iota
	// CalcSub computes a - b.
	CalcSub
	// CalcMul computes a * b.
	CalcMul
	// CalcDiv computes a / b (integer division; division by zero yields 0,
	// the nil-as-zero convention our fixed-point plans rely on).
	CalcDiv
)

func (op CalcOp) String() string {
	switch op {
	case CalcAdd:
		return "+"
	case CalcSub:
		return "-"
	case CalcMul:
		return "*"
	case CalcDiv:
		return "/"
	}
	return fmt.Sprintf("calc(%d)", int(op))
}

func (op CalcOp) apply(a, b int64) int64 {
	switch op {
	case CalcAdd:
		return a + b
	case CalcSub:
		return a - b
	case CalcMul:
		return a * b
	case CalcDiv:
		if b == 0 {
			return 0
		}
		return a / b
	}
	panic("algebra: unknown calc op")
}

// CalcVV applies op element-wise over two equally long column views and
// materializes the result with a fresh zero-based head.
func CalcVV(op CalcOp, a, b *storage.Column) (*storage.Column, Work) {
	out := make([]int64, a.Len())
	w := CalcVVInto(out, op, a, b)
	// The result is positionally aligned with its inputs, so it inherits
	// the view's head sequence: a partitioned calc over a column slice
	// stays aligned on the base column (§2.3).
	return storage.NewColumn(fmt.Sprintf("(%s%s%s)", a.Name(), op, b.Name()), a.Seq(), vec.NewInt64(out)), w
}

// CalcVVInto is CalcVV writing into a caller-owned destination of length
// a.Len() — the range variant the zero-copy exchange uses to let sibling
// calc clones fill disjoint slices of one shared result buffer. The Work
// record is identical to CalcVV's.
func CalcVVInto(dst []int64, op CalcOp, a, b *storage.Column) Work {
	av, bv := a.Values(), b.Values()
	if len(av) != len(bv) {
		panic(fmt.Sprintf("algebra: CalcVV length mismatch %d vs %d (%s %s %s)", len(av), len(bv), a.Name(), op, b.Name()))
	}
	for i := range av {
		dst[i] = op.apply(av[i], bv[i])
	}
	return Work{
		BytesSeqRead:  a.Bytes() + b.Bytes(),
		BytesWritten:  int64(len(av)) * 8,
		TuplesIn:      int64(len(av)) * 2,
		TuplesOut:     int64(len(av)),
		MemClaimBytes: int64(len(av)) * 8,
	}
}

// CalcSV applies op with a scalar operand: scalar op v[i] when scalarLeft,
// v[i] op scalar otherwise.
func CalcSV(op CalcOp, scalar int64, v *storage.Column, scalarLeft bool) (*storage.Column, Work) {
	out := make([]int64, v.Len())
	w := CalcSVInto(out, op, scalar, v, scalarLeft)
	// Positionally aligned with the input view; see CalcVV.
	return storage.NewColumn(fmt.Sprintf("(calc%s%s)", op, v.Name()), v.Seq(), vec.NewInt64(out)), w
}

// CalcSVInto is CalcSV writing into a caller-owned destination of length
// v.Len(); see CalcVVInto.
func CalcSVInto(dst []int64, op CalcOp, scalar int64, v *storage.Column, scalarLeft bool) Work {
	in := v.Values()
	if scalarLeft {
		for i, x := range in {
			dst[i] = op.apply(scalar, x)
		}
	} else {
		for i, x := range in {
			dst[i] = op.apply(x, scalar)
		}
	}
	return Work{
		BytesSeqRead:  v.Bytes(),
		BytesWritten:  int64(len(in)) * 8,
		TuplesIn:      int64(len(in)),
		TuplesOut:     int64(len(in)),
		MemClaimBytes: int64(len(in)) * 8,
	}
}
