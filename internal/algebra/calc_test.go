package algebra

import (
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/vec"
)

func TestCalcVV(t *testing.T) {
	a := col(10, 20, 30)
	b := col(1, 2, 3)
	sum, w := CalcVV(CalcAdd, a, b)
	if sum.At(0) != 11 || sum.At(2) != 33 {
		t.Fatalf("add = %v", sum.Values())
	}
	if w.TuplesOut != 3 {
		t.Fatalf("work = %+v", w)
	}
	if d, _ := CalcVV(CalcSub, a, b); d.At(1) != 18 {
		t.Fatalf("sub wrong")
	}
	if p, _ := CalcVV(CalcMul, a, b); p.At(2) != 90 {
		t.Fatalf("mul wrong")
	}
	if q, _ := CalcVV(CalcDiv, a, b); q.At(1) != 10 {
		t.Fatalf("div wrong")
	}
}

func TestCalcDivByZeroYieldsZero(t *testing.T) {
	q, _ := CalcVV(CalcDiv, col(5), col(0))
	if q.At(0) != 0 {
		t.Fatalf("5/0 = %d, want 0 (nil convention)", q.At(0))
	}
}

func TestCalcVVMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	CalcVV(CalcAdd, col(1), col(1, 2))
}

func TestCalcSV(t *testing.T) {
	v := col(10, 20)
	// scalar - v
	l, _ := CalcSV(CalcSub, 100, v, true)
	if l.At(0) != 90 || l.At(1) != 80 {
		t.Fatalf("scalar-left = %v", l.Values())
	}
	// v - scalar
	r, _ := CalcSV(CalcSub, 100, v, false)
	if r.At(0) != -90 || r.At(1) != -80 {
		t.Fatalf("scalar-right = %v", r.Values())
	}
}

// Property: partitioned CalcVV packs back to the serial result.
func TestCalcPartitionEquivalence(t *testing.T) {
	f := func(vals []int64, cutRaw uint8) bool {
		n := len(vals)
		a := storage.NewIntColumn("a", vals)
		bVals := make([]int64, n)
		for i := range bVals {
			bVals[i] = int64(i) + 1
		}
		b := storage.NewIntColumn("b", bVals)
		serial, _ := CalcVV(CalcMul, a, b)
		cut := 0
		if n > 0 {
			cut = int(cutRaw) % (n + 1)
		}
		p1, _ := CalcVV(CalcMul, a.View(0, cut), b.View(0, cut))
		p2, _ := CalcVV(CalcMul, a.View(cut, n), b.View(cut, n))
		packed, _ := PackColumns([]*storage.Column{p1, p2})
		return vec.Equal(packed.Data(), serial.Data())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCalcOpStrings(t *testing.T) {
	if CalcAdd.String() != "+" || CalcSub.String() != "-" || CalcMul.String() != "*" || CalcDiv.String() != "/" {
		t.Fatal("calc op names wrong")
	}
}
