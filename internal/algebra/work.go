// Package algebra implements the relational operators of the column store:
// selection (range and LIKE predicates, with candidate lists), tuple
// reconstruction (fetch join), hash join with cached builds, vectorized
// arithmetic, grouping and aggregation, sorting, and the exchange-union pack
// operator.
//
// Every operator does real work on real data and additionally reports a Work
// record describing that work in hardware-relevant units. The cost model
// (internal/cost) converts Work into virtual time on the simulated machine;
// this is what lets the engine execute "a 32-core server" faithfully on a
// single-core host while keeping results bit-exact.
package algebra

// Work describes the physical effort of one operator execution.
type Work struct {
	// BytesSeqRead counts sequentially scanned input bytes.
	BytesSeqRead int64
	// BytesRandRead counts randomly accessed input bytes (tuple
	// reconstruction, hash probes chasing values).
	BytesRandRead int64
	// BytesWritten counts materialized output bytes.
	BytesWritten int64
	// TuplesIn / TuplesOut count logical tuples consumed and produced.
	TuplesIn, TuplesOut int64
	// HashBuilds counts tuples inserted into a fresh hash index (zero when
	// the build was served from the column's hash cache).
	HashBuilds int64
	// HashProbes counts hash table lookups.
	HashProbes int64
	// CompareOps counts comparison-dominated work (sorting, grouping).
	CompareOps int64
	// FootprintBytes is the random-access working set (hash table or
	// dictionary size); the cost model uses it for L3-residency decisions —
	// the effect behind the 16 MB vs 64 MB join inner result (§4.1.2).
	FootprintBytes int64
	// MemClaimBytes is the peak transient allocation, profiled like
	// MonetDB's per-operator memory claims.
	MemClaimBytes int64
}

// Add accumulates other into w.
func (w *Work) Add(other Work) {
	w.BytesSeqRead += other.BytesSeqRead
	w.BytesRandRead += other.BytesRandRead
	w.BytesWritten += other.BytesWritten
	w.TuplesIn += other.TuplesIn
	w.TuplesOut += other.TuplesOut
	w.HashBuilds += other.HashBuilds
	w.HashProbes += other.HashProbes
	w.CompareOps += other.CompareOps
	if other.FootprintBytes > w.FootprintBytes {
		w.FootprintBytes = other.FootprintBytes
	}
	w.MemClaimBytes += other.MemClaimBytes
}
