package algebra

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/vec"
)

func TestFetchTupleReconstruction(t *testing.T) {
	// The Figure 10 example: row ids 2,4,5,7 probed into a column whose
	// values at those oids are 12, 11, 20, 13.
	target := storage.NewIntColumn("rt", []int64{0, 0, 12, 0, 11, 20, 0, 13})
	out, w, dropped := Fetch([]int64{2, 4, 5, 7}, target)
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	want := []int64{12, 11, 20, 13}
	for i, x := range want {
		if out.Data().At(i) != x {
			t.Fatalf("out[%d] = %d, want %d", i, out.Data().At(i), x)
		}
	}
	if out.Seq() != 0 {
		t.Fatal("fetched intermediate must have a fresh zero-based head")
	}
	if w.TuplesOut != 4 {
		t.Fatalf("work = %+v", w)
	}
}

func TestFetchAlignsMisalignedBoundaries(t *testing.T) {
	// Figure 10's misalignment: LT holds row id 8 but RH covers [1,8).
	target := storage.NewIntColumn("rt", make([]int64, 9)).View(1, 8)
	_, _, dropped := Fetch([]int64{2, 4, 5, 7, 8}, target)
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (row id 8 outside [1,8))", dropped)
	}
}

func TestFetchDictColumn(t *testing.T) {
	d := vec.NewDict()
	codes := []int64{d.Code("x"), d.Code("y"), d.Code("z")}
	target := storage.NewColumn("s", 0, vec.NewDictCoded(codes, d))
	out, _, _ := Fetch([]int64{2, 0}, target)
	if out.Data().StringAt(0) != "z" || out.Data().StringAt(1) != "x" {
		t.Fatalf("fetched strings: %q %q", out.Data().StringAt(0), out.Data().StringAt(1))
	}
}

func TestFetchPositions(t *testing.T) {
	c := storage.NewIntColumn("v", []int64{10, 20, 30})
	out, _ := FetchPositions([]int64{2, 2, 0}, c)
	if out.Data().At(0) != 30 || out.Data().At(1) != 30 || out.Data().At(2) != 10 {
		t.Fatalf("FetchPositions = %v", out.Values())
	}
}

// Property: fetch distributes over oid partitioning — fetching each oid
// partition then packing equals fetching the packed oids.
func TestFetchPartitionEquivalence(t *testing.T) {
	f := func(raw []uint8, cutRaw uint8) bool {
		target := storage.NewIntColumn("t", []int64{7, 13, 29, 31, 41, 53, 61, 71})
		oids := make([]int64, len(raw))
		for i, r := range raw {
			oids[i] = int64(r % 8)
		}
		serial, _, _ := Fetch(oids, target)
		cut := 0
		if len(oids) > 0 {
			cut = int(cutRaw) % (len(oids) + 1)
		}
		p1, _, _ := Fetch(oids[:cut], target)
		p2, _, _ := Fetch(oids[cut:], target)
		packed, _ := PackColumns([]*storage.Column{p1, p2})
		return vec.Equal(packed.Data(), serial.Data())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortStableWithPermutation(t *testing.T) {
	c := storage.NewIntColumn("v", []int64{3, 1, 3, 2}).View(0, 4)
	sorted, perm, w := Sort(c, false)
	wantVals := []int64{1, 2, 3, 3}
	wantPerm := []int64{1, 3, 0, 2} // stable: first 3 (oid 0) before second (oid 2)
	for i := range wantVals {
		if sorted.Data().At(i) != wantVals[i] || perm[i] != wantPerm[i] {
			t.Fatalf("sorted=%v perm=%v", sorted.Values(), perm)
		}
	}
	if w.CompareOps == 0 {
		t.Fatal("sort reported zero compare work")
	}
	desc, _, _ := Sort(c, true)
	if desc.Data().At(0) != 3 || desc.Data().At(3) != 1 {
		t.Fatalf("desc sort = %v", desc.Values())
	}
}

// Property: partitioned sort + merge equals serial sort.
func TestSortMergeEquivalence(t *testing.T) {
	f := func(vals []int64, cutRaw uint8) bool {
		c := storage.NewIntColumn("v", vals)
		serial, _, _ := Sort(c, false)
		cut := 0
		if len(vals) > 0 {
			cut = int(cutRaw) % (len(vals) + 1)
		}
		r1, _, _ := Sort(c.View(0, cut), false)
		r2, _, _ := Sort(c.View(cut, len(vals)), false)
		merged, _ := MergeSortedRuns([]*storage.Column{r1, r2}, false)
		if merged.Len() != serial.Len() {
			return false
		}
		for i := 0; i < merged.Len(); i++ {
			if merged.Data().At(i) != serial.Data().At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSortedRunsDesc(t *testing.T) {
	r1 := storage.NewIntColumn("a", []int64{9, 5, 1})
	r2 := storage.NewIntColumn("b", []int64{8, 2})
	merged, _ := MergeSortedRuns([]*storage.Column{r1, r2}, true)
	want := []int64{9, 8, 5, 2, 1}
	got := merged.Values()
	if len(got) != len(want) {
		t.Fatalf("merged = %v", got)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] > got[j] }) {
		t.Fatalf("not descending: %v", got)
	}
}

func TestPackColumnsOrderAndWork(t *testing.T) {
	a := storage.NewIntColumn("x", []int64{1, 2})
	b := storage.NewIntColumn("x", []int64{3})
	out, w := PackColumns([]*storage.Column{a, b})
	if out.Len() != 3 || out.Data().At(2) != 3 {
		t.Fatalf("packed = %v", out.Values())
	}
	if out.Seq() != 0 {
		t.Fatal("packed column must have fresh head")
	}
	if w.BytesWritten != 24 {
		t.Fatalf("work = %+v", w)
	}
}

func TestPackScalars(t *testing.T) {
	src := []int64{4, 5}
	out, _ := PackScalars("partials", src)
	src[0] = 99 // PackScalars must copy; partials may be reused by the caller
	if out.Data().At(0) != 4 || out.Data().At(1) != 5 {
		t.Fatalf("packed scalars = %v", out.Values())
	}
}

func TestWorkAdd(t *testing.T) {
	var w Work
	w.Add(Work{BytesSeqRead: 10, FootprintBytes: 100, TuplesIn: 1})
	w.Add(Work{BytesSeqRead: 5, FootprintBytes: 50, TuplesOut: 2, MemClaimBytes: 7})
	if w.BytesSeqRead != 15 || w.TuplesIn != 1 || w.TuplesOut != 2 || w.MemClaimBytes != 7 {
		t.Fatalf("accumulated = %+v", w)
	}
	if w.FootprintBytes != 100 {
		t.Fatalf("footprint should take max, got %d", w.FootprintBytes)
	}
}
