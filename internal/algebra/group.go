package algebra

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/vec"
)

// Groups is the result of a group-by over a key column view: the distinct
// keys in first-appearance (scan) order and, for every input row, the dense
// group id it belongs to. Because range partitions preserve scan order,
// first-appearance order over concatenated partitions equals the serial
// order — which keeps advanced-mutation plans result-identical to serial
// plans (§2.1, advanced mutation).
type Groups struct {
	Keys *storage.Column // distinct keys, head oids = dense group ids
	GIDs []int64         // group id per input row
}

// NGroups returns the number of distinct keys.
func (g *Groups) NGroups() int { return g.Keys.Len() }

// GroupBy groups the key column view by value.
func GroupBy(keys *storage.Column) (*Groups, Work) {
	vals := keys.Values()
	gids := make([]int64, len(vals))
	index := make(map[int64]int64, 64)
	var uniq []int64
	for i, v := range vals {
		gid, ok := index[v]
		if !ok {
			gid = int64(len(uniq))
			index[v] = gid
			uniq = append(uniq, v)
		}
		gids[i] = gid
	}
	var data *vec.Vector
	if d := keys.Dict(); d != nil {
		data = vec.NewDictCoded(uniq, d)
	} else {
		data = vec.NewInt64(uniq)
	}
	w := Work{
		BytesSeqRead:   keys.Bytes(),
		BytesWritten:   int64(len(gids)+len(uniq)) * 8,
		TuplesIn:       int64(len(vals)),
		TuplesOut:      int64(len(uniq)),
		HashProbes:     int64(len(vals)),
		CompareOps:     int64(len(vals)),
		FootprintBytes: int64(len(uniq)) * 24,
		MemClaimBytes:  int64(len(gids)+len(uniq))*8 + int64(len(uniq))*24,
	}
	return &Groups{Keys: storage.NewColumn(keys.Name(), 0, data), GIDs: gids}, w
}

// AggrFunc enumerates aggregate functions (MonetDB's aggr.*).
type AggrFunc int

const (
	// AggrSum sums values.
	AggrSum AggrFunc = iota
	// AggrCount counts rows.
	AggrCount
	// AggrMin takes the minimum.
	AggrMin
	// AggrMax takes the maximum.
	AggrMax
)

func (f AggrFunc) String() string {
	switch f {
	case AggrSum:
		return "sum"
	case AggrCount:
		return "count"
	case AggrMin:
		return "min"
	case AggrMax:
		return "max"
	}
	return fmt.Sprintf("aggr(%d)", int(f))
}

// MergeFunc returns the function that combines partial aggregates of f:
// partial counts are summed, the rest merge with themselves.
func (f AggrFunc) MergeFunc() AggrFunc {
	if f == AggrCount {
		return AggrSum
	}
	return f
}

// Aggregate-identity sentinels for empty partials, chosen so that merging
// ignores them (min of empty partition must not win the global min).
const (
	minEmpty = NoHigh
	maxEmpty = NoLow
)

func (f AggrFunc) identity() int64 {
	switch f {
	case AggrMin:
		return minEmpty
	case AggrMax:
		return maxEmpty
	default:
		return 0
	}
}

func (f AggrFunc) combine(acc, v int64) int64 {
	switch f {
	case AggrSum:
		return acc + v
	case AggrCount:
		return acc + 1
	case AggrMin:
		if v < acc {
			return v
		}
		return acc
	case AggrMax:
		if v > acc {
			return v
		}
		return acc
	}
	panic("algebra: unknown aggregate")
}

// AggrGrouped computes f over vals per group. vals must be positionally
// aligned with the rows the Groups were computed from (same view span).
func AggrGrouped(f AggrFunc, vals *storage.Column, g *Groups) (*storage.Column, Work) {
	v := vals.Values()
	if len(v) != len(g.GIDs) {
		panic(fmt.Sprintf("algebra: AggrGrouped misaligned: %d values vs %d gids", len(v), len(g.GIDs)))
	}
	out := make([]int64, g.NGroups())
	for i := range out {
		out[i] = f.identity()
	}
	for i, x := range v {
		out[g.GIDs[i]] = f.combine(out[g.GIDs[i]], x)
	}
	w := Work{
		BytesSeqRead:   vals.Bytes() + int64(len(g.GIDs))*8,
		BytesWritten:   int64(len(out)) * 8,
		TuplesIn:       int64(len(v)),
		TuplesOut:      int64(len(out)),
		FootprintBytes: int64(len(out)) * 8,
		MemClaimBytes:  int64(len(out)) * 8,
	}
	return storage.NewColumn(fmt.Sprintf("%s(%s)", f, vals.Name()), 0, vec.NewInt64(out)), w
}

// Aggr computes the scalar aggregate of f over the view. Empty inputs return
// the identity sentinel of f (0 for sum/count; the NoHigh/NoLow sentinels for
// min/max), which MergeScalars treats as an absent partial — so partitioned
// aggregation composes exactly with the serial result even through empty
// partitions.
func Aggr(f AggrFunc, vals *storage.Column) (int64, Work) {
	acc := f.identity()
	for _, x := range vals.Values() {
		acc = f.combine(acc, x)
	}
	w := Work{
		BytesSeqRead: vals.Bytes(),
		TuplesIn:     int64(vals.Len()),
		TuplesOut:    1,
	}
	return acc, w
}

// MergeScalars combines partial scalar aggregates produced by cloned Aggr
// operators (packed into a small column) into the final scalar, skipping
// empty-partition sentinels.
func MergeScalars(f AggrFunc, partials *storage.Column) (int64, Work) {
	m := f.MergeFunc()
	acc := m.identity()
	for _, x := range partials.Values() {
		if x == f.identity() && (f == AggrMin || f == AggrMax) {
			continue // empty partition sentinel
		}
		acc = m.combineMerge(acc, x)
	}
	w := Work{
		BytesSeqRead: partials.Bytes(),
		TuplesIn:     int64(partials.Len()),
		TuplesOut:    1,
	}
	return acc, w
}

// combineMerge merges two partial aggregates (as opposed to folding a raw
// value in): for sum that is addition, for min/max the same comparison.
func (f AggrFunc) combineMerge(acc, partial int64) int64 {
	switch f {
	case AggrSum, AggrCount:
		return acc + partial
	case AggrMin:
		if partial < acc {
			return partial
		}
		return acc
	case AggrMax:
		if partial > acc {
			return partial
		}
		return acc
	}
	panic("algebra: unknown aggregate")
}

// GroupMerge re-groups packed per-partition group keys with their packed
// partial aggregates into final (keys, aggregates) — the combining stage of
// the paper's advanced mutation. keys and partials must be positionally
// aligned and ordered by partition (pack order), which makes the output key
// order equal to the serial first-appearance order.
func GroupMerge(f AggrFunc, keys, partials *storage.Column) (*storage.Column, *storage.Column, Work) {
	kv, pv := keys.Values(), partials.Values()
	if len(kv) != len(pv) {
		panic(fmt.Sprintf("algebra: GroupMerge misaligned: %d keys vs %d partials", len(kv), len(pv)))
	}
	m := f.MergeFunc()
	index := make(map[int64]int, 64)
	var uniq []int64
	var aggs []int64
	for i, k := range kv {
		j, ok := index[k]
		if !ok {
			j = len(uniq)
			index[k] = j
			uniq = append(uniq, k)
			aggs = append(aggs, m.identity())
		}
		aggs[j] = m.combineMerge(aggs[j], pv[i])
	}
	var keyData *vec.Vector
	if d := keys.Dict(); d != nil {
		keyData = vec.NewDictCoded(uniq, d)
	} else {
		keyData = vec.NewInt64(uniq)
	}
	w := Work{
		BytesSeqRead:   keys.Bytes() + partials.Bytes(),
		BytesWritten:   int64(len(uniq)+len(aggs)) * 8,
		TuplesIn:       int64(len(kv)),
		TuplesOut:      int64(len(uniq)),
		HashProbes:     int64(len(kv)),
		FootprintBytes: int64(len(uniq)) * 24,
		MemClaimBytes:  int64(len(uniq)+len(aggs)) * 8,
	}
	return storage.NewColumn(keys.Name(), 0, keyData),
		storage.NewColumn(fmt.Sprintf("%s*", f), 0, vec.NewInt64(aggs)), w
}
